package netlist

import (
	"fmt"
	"math"
)

// This file is the parameter-rebinding layer: the value half of the
// compile-once/revalue-many split. A circuit's *topology* (nodes,
// element kinds, terminal wiring, aux-unknown layout) fixes every
// compiled artifact downstream — stamp programs, structural sparsity
// patterns, symbolic eliminations. Its *values* (resistances,
// capacitances, MOS model cards, source waveforms) are what a die
// Variation, a fault conductance or a stimulus slice actually moves. A
// Binding captures the value half so an already-compiled engine can be
// revalued in place instead of rebuilt.
//
// Slots are scoped by which side of the MNA system they reach:
//
//   - A-side slots (resistance, capacitance, MOS model) change matrix
//     entries; a consumer caching recorded A-side stamps must drop that
//     recording when one changes.
//   - B-side slots (source waveforms) only reach the right-hand side —
//     a source's A-side stamps are value-independent ±1 incidence
//     entries — so rebinding them leaves A-side recordings valid. This
//     generalises the engine's long-standing RetuneVSource rule.
//
// Rebind reports whether any A-side value actually changed (bitwise,
// math.Float64bits) so a B-only rebind — e.g. moving the ramp input
// between bisection slices — keeps every A-side cache warm.

// SlotKind says which value of an element a binding item rewrites.
type SlotKind uint8

const (
	// SlotR is a resistor's resistance (A-side).
	SlotR SlotKind = iota
	// SlotC is a capacitor's capacitance (A-side, via the transient
	// companion conductance).
	SlotC
	// SlotModel is a MOSFET's model card (A-side).
	SlotModel
	// SlotWave is an independent source's waveform, voltage or current
	// (B-side only).
	SlotWave
)

// bindItem is one slot assignment.
type bindItem struct {
	label string
	kind  SlotKind
	val   float64  // SlotR / SlotC
	model MOSModel // SlotModel
	wave  Waveform // SlotWave
}

// Binding is an ordered set of value assignments to element slots,
// addressed by element label. Bindings are built either by hand (a
// partial retune, e.g. one input source per ramp slice) or by running a
// circuit builder with Builder.Rec attached, which records one slot per
// element created — the complete value set of that build, guaranteed to
// match what the builder would have stamped because it *is* what the
// builder stamped.
type Binding struct {
	items []bindItem
}

// SetR assigns a resistance (A-side slot).
func (b *Binding) SetR(label string, ohms float64) {
	b.items = append(b.items, bindItem{label: label, kind: SlotR, val: ohms})
}

// SetC assigns a capacitance (A-side slot).
func (b *Binding) SetC(label string, farads float64) {
	b.items = append(b.items, bindItem{label: label, kind: SlotC, val: farads})
}

// SetModel assigns a MOSFET model card (A-side slot).
func (b *Binding) SetModel(label string, m MOSModel) {
	b.items = append(b.items, bindItem{label: label, kind: SlotModel, model: m})
}

// SetWave assigns an independent source waveform (B-side slot; the
// element may be a VSource or an ISource).
func (b *Binding) SetWave(label string, w Waveform) {
	b.items = append(b.items, bindItem{label: label, kind: SlotWave, wave: w})
}

// Len returns the number of slot assignments.
func (b *Binding) Len() int { return len(b.items) }

// Reset empties the binding, retaining capacity.
func (b *Binding) Reset() { b.items = b.items[:0] }

// Truncate drops every slot past the first n, retaining capacity. A
// caller holding a recorded base binding appends per-checkout slots
// (fault conductances) after the base and truncates back before the
// next checkout.
func (b *Binding) Truncate(n int) { b.items = b.items[:n] }

// Clone returns an independent copy of the binding. Checkout sessions
// clone a cached base binding before appending their per-fault slots,
// so the cached original is never mutated.
func (b *Binding) Clone() *Binding {
	return &Binding{items: append([]bindItem(nil), b.items...)}
}

// Covers reports whether the binding has exactly one slot per element
// of the circuit. A builder-recorded binding covers its own build by
// construction; checking coverage against a *pooled* circuit is the
// cheap structural guard that the pool key really did pin the same
// topology (element labels are unique, and Rebind fails on any unknown
// label, so equal counts plus successful application is a bijection).
func (b *Binding) Covers(c *Circuit) bool { return len(b.items) == len(c.Elems) }

// applySlot writes one slot assignment into its element. Returns
// whether an A-side value actually changed (bitwise).
func applySlot(el Element, it *bindItem) (aChanged bool, err error) {
	switch it.kind {
	case SlotR:
		r, ok := el.(*Resistor)
		if !ok {
			return false, fmt.Errorf("netlist: rebind %s: slot R on %T", it.label, el)
		}
		if math.Float64bits(r.R) != math.Float64bits(it.val) {
			r.R = it.val
			aChanged = true
		}
	case SlotC:
		c, ok := el.(*Capacitor)
		if !ok {
			return false, fmt.Errorf("netlist: rebind %s: slot C on %T", it.label, el)
		}
		if math.Float64bits(c.C) != math.Float64bits(it.val) {
			c.C = it.val
			aChanged = true
		}
	case SlotModel:
		m, ok := el.(*MOSFET)
		if !ok {
			return false, fmt.Errorf("netlist: rebind %s: slot model on %T", it.label, el)
		}
		if m.Model != it.model {
			m.Model = it.model
			aChanged = true
		}
	case SlotWave:
		// Waveform values never reach the matrix (source incidence
		// entries are value-independent), so a wave slot is always
		// assigned and never invalidates A-side state. No comparison:
		// waveforms may hold slices (PWL) and are cheap to swap.
		switch s := el.(type) {
		case *VSource:
			s.W = it.wave
		case *ISource:
			s.W = it.wave
		default:
			return false, fmt.Errorf("netlist: rebind %s: slot wave on %T", it.label, el)
		}
	}
	return aChanged, nil
}

// Rebind applies the binding to the circuit's elements in place and
// reports whether any A-side value changed. Unknown labels and
// kind-mismatched slots error; the circuit may then be partially
// revalued, so callers must treat an error as "discard this circuit"
// (the macro layer falls back to a fresh build).
//
// Rebinding rewrites numeric values only: it never adds or removes
// elements, never moves terminals, and therefore never invalidates
// node numbering, aux layout, compiled stamp programs or structural
// sparsity patterns.
func (c *Circuit) Rebind(b *Binding) (aChanged bool, err error) {
	for i := range b.items {
		it := &b.items[i]
		el := c.elemByName(it.label)
		if el == nil {
			return aChanged, fmt.Errorf("netlist: rebind: no element %q", it.label)
		}
		ch, err := applySlot(el, it)
		if err != nil {
			return aChanged, err
		}
		aChanged = aChanged || ch
	}
	return aChanged, nil
}

// Rebind applies the binding through a compiled stamp program: only
// elements the program dispatches are eligible. Mode-gated elements
// dropped at compile time (capacitors in a DCOp program) are unknown
// here — engines holding multiple per-mode programs should rebind at
// the circuit level instead, which this method exists to complement
// for callers that hold only a program.
func (p *StampProgram) Rebind(b *Binding) (aChanged bool, err error) {
	byName := make(map[string]Element, len(p.Items))
	for _, it := range p.Items {
		byName[it.El.Name()] = it.El
	}
	for i := range b.items {
		it := &b.items[i]
		el, ok := byName[it.label]
		if !ok {
			return aChanged, fmt.Errorf("netlist: rebind: no element %q in program", it.label)
		}
		ch, err := applySlot(el, it)
		if err != nil {
			return aChanged, err
		}
		aChanged = aChanged || ch
	}
	return aChanged, nil
}
