package netlist

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteSpice(t *testing.T) {
	b := NewBuilder()
	b.Vsrc("vdd", "vdd", "0", DC(5))
	b.Vsrc("vin", "in", "0", Pulse{V0: 0, V1: 5, Width: 1})
	b.R("r.load", "vdd", "out", 10e3)
	b.Cap("c1", "out", "0", 1e-12)
	b.NMOS("m1", "out", "in", "0", 10, 1)
	b.PMOS("m2", "out", "in", "vdd", "vdd", 20, 1)
	b.Isrc("ib", "vdd", "out", DC(1e-6))

	var buf bytes.Buffer
	if err := WriteSpice(&buf, "test deck", b.C); err != nil {
		t.Fatal(err)
	}
	deck := buf.String()
	for _, want := range []string{
		"* test deck",
		"Rr_load vdd out 10000",
		"Cc1 out 0 1e-12",
		"Vvdd vdd 0 DC 5",
		"Mm1 out in 0 0 mn_7500 W=10u L=1u",
		"Mm2 out in vdd vdd mp_7500 W=20u L=1u",
		".model mn_7500 NMOS",
		".model mp_7500 PMOS",
		"Iib vdd out DC 1e-06",
		".end",
	} {
		if !strings.Contains(deck, want) {
			t.Fatalf("deck missing %q:\n%s", want, deck)
		}
	}
	// Time-dependent source annotated.
	if !strings.Contains(deck, "time-dependent waveform") {
		t.Fatal("waveform note missing")
	}
}
