package netlist

// Builder wraps a Circuit with a name-based construction API used by the
// macro library. Node names are plain strings; "0" is ground.
type Builder struct {
	C *Circuit

	// Rec, when non-nil, records one value slot per element created —
	// the complete Binding of this build. Running a macro's circuit
	// builder with Rec attached and discarding the circuit yields the
	// exact value set a fresh build would stamp, which is what the
	// rebind layer applies to an already-compiled engine of the same
	// topology: the recorded values cannot drift from the built values
	// because they are the same values.
	Rec *Binding
}

// NewBuilder returns a builder over a fresh circuit.
func NewBuilder() *Builder { return &Builder{C: New()} }

// NewRecorder returns a builder that records the build's Binding in
// rec. The circuit is still fully built (recording must see the same
// construction path, and callers may want it for structure checks);
// the value of the run is the recorded binding.
func NewRecorder(rec *Binding) *Builder { return &Builder{C: New(), Rec: rec} }

// N resolves (creating if needed) a node by name.
func (b *Builder) N(name string) NodeID { return b.C.Node(name) }

// R adds a resistor of the given ohms between nodes a and bn.
func (b *Builder) R(name, a, bn string, ohms float64) *Resistor {
	r := &Resistor{Label: name, A: b.N(a), B: b.N(bn), R: ohms}
	b.C.Add(r)
	if b.Rec != nil {
		b.Rec.SetR(name, ohms)
	}
	return r
}

// Cap adds a capacitor of the given farads between nodes a and bn.
func (b *Builder) Cap(name, a, bn string, farads float64) *Capacitor {
	c := &Capacitor{Label: name, A: b.N(a), B: b.N(bn), C: farads}
	b.C.Add(c)
	if b.Rec != nil {
		b.Rec.SetC(name, farads)
	}
	return c
}

// Vsrc adds an independent voltage source with waveform w from p (+) to
// n (-).
func (b *Builder) Vsrc(name, p, n string, w Waveform) *VSource {
	v := &VSource{Label: name, P: b.N(p), N: b.N(n), W: w}
	b.C.Add(v)
	if b.Rec != nil {
		b.Rec.SetWave(name, w)
	}
	return v
}

// Isrc adds an independent current source with waveform w.
func (b *Builder) Isrc(name, p, n string, w Waveform) *ISource {
	i := &ISource{Label: name, P: b.N(p), N: b.N(n), W: w}
	b.C.Add(i)
	if b.Rec != nil {
		b.Rec.SetWave(name, w)
	}
	return i
}

// CoxPerUm2 is the gate-oxide capacitance per µm² used for the automatic
// gate capacitors (≈ 20 nm oxide).
const CoxPerUm2 = 1.7e-15

// CjPerUm is the junction capacitance per µm of device width used for the
// automatic drain/source capacitors.
const CjPerUm = 0.8e-15

// MOS adds a MOSFET (W, L in µm) together with its linear gate and
// junction capacitances (Cgs, Cgd to the channel terminals; Cdb, Csb to
// the bulk), so transient analyses see realistic charge storage.
func (b *Builder) MOS(name, d, g, s, bulk string, wUm, lUm float64, model MOSModel) *MOSFET {
	m := &MOSFET{
		Label: name,
		D:     b.N(d), G: b.N(g), S: b.N(s), B: b.N(bulk),
		Model: model,
		W:     wUm * 1e-6, L: lUm * 1e-6,
	}
	b.C.Add(m)
	cg := CoxPerUm2 * wUm * lUm / 2
	cj := CjPerUm * wUm
	b.C.Add(&Capacitor{Label: name + ".cgs", A: m.G, B: m.S, C: cg})
	b.C.Add(&Capacitor{Label: name + ".cgd", A: m.G, B: m.D, C: cg})
	b.C.Add(&Capacitor{Label: name + ".cdb", A: m.D, B: m.B, C: cj})
	b.C.Add(&Capacitor{Label: name + ".csb", A: m.S, B: m.B, C: cj})
	if b.Rec != nil {
		b.Rec.SetModel(name, model)
		b.Rec.SetC(name+".cgs", cg)
		b.Rec.SetC(name+".cgd", cg)
		b.Rec.SetC(name+".cdb", cj)
		b.Rec.SetC(name+".csb", cj)
	}
	return m
}

// NMOS adds an n-channel device with the default model.
func (b *Builder) NMOS(name, d, g, s string, wUm, lUm float64) *MOSFET {
	return b.MOS(name, d, g, s, "0", wUm, lUm, NMOS1())
}

// PMOS adds a p-channel device with the default model, bulk tied to the
// named well/supply node.
func (b *Builder) PMOS(name, d, g, s, bulk string, wUm, lUm float64) *MOSFET {
	return b.MOS(name, d, g, s, bulk, wUm, lUm, PMOS1())
}
