package netlist

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNodeCreation(t *testing.T) {
	c := New()
	if c.NumNodes() != 1 {
		t.Fatalf("fresh circuit nodes = %d", c.NumNodes())
	}
	a := c.Node("a")
	if a2 := c.Node("a"); a2 != a {
		t.Fatal("Node must be idempotent")
	}
	bID := c.Node("b")
	if a == Ground || bID == a {
		t.Fatal("distinct ids required")
	}
	if c.NodeName(a) != "a" {
		t.Fatalf("NodeName = %q", c.NodeName(a))
	}
	if _, ok := c.NodeByName("zz"); ok {
		t.Fatal("NodeByName must not create")
	}
	names := c.NodeNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("NodeNames = %v", names)
	}
}

func TestElementLookup(t *testing.T) {
	b := NewBuilder()
	b.R("r1", "a", "0", 100)
	if b.C.Element("r1") == nil || b.C.Element("nope") != nil {
		t.Fatal("Element lookup broken")
	}
}

func TestRetarget(t *testing.T) {
	b := NewBuilder()
	r := b.R("r1", "a", "b", 1)
	nb := b.N("c")
	r.Retarget(1, nb)
	if r.B != nb {
		t.Fatal("Retarget failed")
	}
	m := b.NMOS("m1", "d", "g", "s", 10, 1)
	m.Retarget(0, nb)
	m.Retarget(3, nb)
	if m.D != nb || m.B != nb {
		t.Fatal("MOSFET Retarget failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad terminal index must panic")
		}
	}()
	r.Retarget(5, nb)
}

func TestWaveforms(t *testing.T) {
	if DC(3).At(99) != 3 {
		t.Fatal("DC")
	}
	p := Pulse{V0: 0, V1: 5, Delay: 1, Rise: 1, Width: 2, Fall: 1, Period: 10}
	cases := []struct{ t, v float64 }{
		{0, 0}, {1, 0}, {1.5, 2.5}, {2, 5}, {3.9, 5}, {4.5, 2.5}, {5.1, 0},
		{11.5, 2.5}, // periodic repeat
	}
	for _, c := range cases {
		if got := p.At(c.t); math.Abs(got-c.v) > 1e-9 {
			t.Errorf("Pulse.At(%g) = %g, want %g", c.t, got, c.v)
		}
	}
	// Zero rise/fall edge case.
	sharp := Pulse{V0: 0, V1: 1, Width: 1}
	if sharp.At(0) != 1 || sharp.At(0.5) != 1 || sharp.At(1.5) != 0 {
		t.Error("sharp pulse")
	}
	w := PWL{T: []float64{0, 1, 3}, V: []float64{0, 10, 0}}
	if w.At(-1) != 0 || w.At(0.5) != 5 || w.At(2) != 5 || w.At(9) != 0 {
		t.Errorf("PWL: %g %g %g %g", w.At(-1), w.At(0.5), w.At(2), w.At(9))
	}
	if (PWL{}).At(1) != 0 {
		t.Error("empty PWL")
	}
	tri := Triangle{Lo: 1, Hi: 3, Period: 4}
	if tri.At(0) != 1 || tri.At(1) != 2 || tri.At(2) != 3 || tri.At(3) != 2 || tri.At(4) != 1 {
		t.Errorf("Triangle: %g %g %g %g %g", tri.At(0), tri.At(1), tri.At(2), tri.At(3), tri.At(4))
	}
	if (Triangle{Lo: 2, Hi: 9}).At(1) != 2 {
		t.Error("degenerate triangle must return Lo")
	}
}

func TestMOSRegionsNMOS(t *testing.T) {
	m := &MOSFET{Label: "m", Model: NMOS1(), W: 10e-6, L: 1e-6}
	// Cutoff: vgs = 0.
	if i := m.Ids(5, 0, 0, 0); math.Abs(i) > 1e-9 {
		t.Fatalf("cutoff Ids = %g", i)
	}
	// Saturation: vgs = 2, vds = 5 > vov = 1.25.
	isat := m.Ids(5, 2, 0, 0)
	want := 60e-6 * 10 / 2 * 1.25 * 1.25 * (1 + 0.04*5)
	if math.Abs(isat-want)/want > 0.01 {
		t.Fatalf("sat Ids = %g, want %g", isat, want)
	}
	// Triode: vds = 0.1 < vov.
	itri := m.Ids(0.1, 2, 0, 0)
	wantTri := 60e-6 * 10 * (1.25*0.1 - 0.005) * (1 + 0.04*0.1)
	if math.Abs(itri-wantTri)/wantTri > 0.01 {
		t.Fatalf("triode Ids = %g, want %g", itri, wantTri)
	}
	// Monotone in vgs.
	if m.Ids(5, 3, 0, 0) <= isat {
		t.Fatal("Ids must grow with vgs")
	}
	// Symmetry: swapped drain/source reverses sign.
	if fwd, rev := m.Ids(2, 5, 0, 0), m.Ids(0, 5, 2, 0); math.Abs(fwd+rev) > 1e-9 {
		t.Fatalf("symmetry: %g vs %g", fwd, rev)
	}
	// Body effect raises vth, lowering current.
	mb := &MOSFET{Label: "mb", Model: NMOS1(), W: 10e-6, L: 1e-6}
	if ib := mb.Ids(5, 2, 1, 0); ib >= m.Ids(5, 2, 1, 1) {
		t.Fatal("reverse body bias must reduce current")
	}
}

func TestMOSRegionsPMOS(t *testing.T) {
	m := &MOSFET{Label: "p", Model: PMOS1(), W: 10e-6, L: 1e-6}
	// On: source at 5, gate 0, drain 2 → current flows S→D, so D→S is negative.
	i := m.Ids(2, 0, 5, 5)
	if i >= 0 {
		t.Fatalf("PMOS on-current direction: %g", i)
	}
	// Off: gate at 5.
	if off := m.Ids(2, 5, 5, 5); math.Abs(off) > 1e-9 {
		t.Fatalf("PMOS off Ids = %g", off)
	}
}

func TestMOSLeakageContinuity(t *testing.T) {
	m := &MOSFET{Label: "m", Model: NMOS1(), W: 10e-6, L: 1e-6}
	// Across the cutoff boundary, current must be continuous at the
	// picoamp scale (the subthreshold leak must not jump).
	vth := m.Model.VT0
	below := m.Ids(5, vth-1e-4, 0, 0)
	above := m.Ids(5, vth+1e-4, 0, 0)
	if math.Abs(above-below) > 1e-8 {
		t.Fatalf("cutoff discontinuity: %g vs %g", below, above)
	}
}

func TestAtTemp(t *testing.T) {
	m := NMOS1()
	hot := m.AtTemp(100)
	if hot.VT0 >= m.VT0 {
		t.Fatal("NMOS vth must fall with temperature")
	}
	if hot.KP >= m.KP {
		t.Fatal("mobility must degrade with temperature")
	}
	if same := m.AtTemp(27); math.Abs(same.VT0-m.VT0) > 1e-12 || math.Abs(same.KP-m.KP) > 1e-12 {
		t.Fatal("27°C must be nominal")
	}
}

func TestBuilderMOSAddsCaps(t *testing.T) {
	b := NewBuilder()
	b.NMOS("m1", "d", "g", "s", 10, 1)
	var caps int
	for _, e := range b.C.Elems {
		if _, ok := e.(*Capacitor); ok {
			caps++
		}
	}
	if caps != 4 {
		t.Fatalf("MOS helper must add 4 caps, got %d", caps)
	}
	if b.C.Element("m1.cgs") == nil {
		t.Fatal("cgs missing")
	}
}

// Property: Ids is antisymmetric under source/drain exchange for any bias.
func TestQuickMOSAntisymmetry(t *testing.T) {
	m := &MOSFET{Label: "m", Model: NMOS1(), W: 10e-6, L: 1e-6}
	f := func(vdRaw, vgRaw, vsRaw int8) bool {
		vd := float64(vdRaw) / 25
		vg := float64(vgRaw) / 25
		vs := float64(vsRaw) / 25
		fwd := m.Ids(vd, vg, vs, math.Min(vd, vs))
		rev := m.Ids(vs, vg, vd, math.Min(vd, vs))
		return math.Abs(fwd+rev) <= 1e-9+1e-6*math.Abs(fwd)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Ids is monotone non-decreasing in Vgs at fixed Vds >= 0.
func TestQuickMOSMonotoneVgs(t *testing.T) {
	m := &MOSFET{Label: "m", Model: NMOS1(), W: 10e-6, L: 1e-6}
	f := func(vg1Raw, vg2Raw uint8, vdRaw uint8) bool {
		vd := float64(vdRaw%50) / 10
		g1 := float64(vg1Raw%50) / 10
		g2 := float64(vg2Raw%50) / 10
		if g1 > g2 {
			g1, g2 = g2, g1
		}
		return m.Ids(vd, g2, 0, 0) >= m.Ids(vd, g1, 0, 0)-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
