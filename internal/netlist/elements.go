package netlist

// Resistor is a linear two-terminal resistance.
type Resistor struct {
	Label string
	A, B  NodeID
	// R is the resistance in ohms; must be > 0.
	R float64
}

// Name implements Element.
func (r *Resistor) Name() string { return r.Label }

// Nodes implements Element.
func (r *Resistor) Nodes() []NodeID { return []NodeID{r.A, r.B} }

// Retarget implements Element.
func (r *Resistor) Retarget(i int, n NodeID) {
	switch i {
	case 0:
		r.A = n
	case 1:
		r.B = n
	default:
		panic(badTerminal(r.Label, i))
	}
}

// NumAux implements Element.
func (r *Resistor) NumAux() int { return 0 }

// Linear implements Element.
func (r *Resistor) Linear() bool { return true }

// Stamp implements Element.
func (r *Resistor) Stamp(ctx *Context, _ int) {
	ctx.StampG(r.A, r.B, 1/r.R)
}

// StampB implements BStamper: a resistor is pure conductance, so the
// B-side re-recording has nothing to do.
func (r *Resistor) StampB(*Context, int) {}

// ConductanceStamp implements GStamper: a resistor's stamp is the pure
// conductance 1/R between its terminals in every mode.
func (r *Resistor) ConductanceStamp(StampMode) (NodeID, NodeID, float64, bool) {
	return r.A, r.B, 1 / r.R, true
}

// Capacitor is a linear two-terminal capacitance. In DC it is an open
// circuit; in transient analysis it uses the backward-Euler companion
// model g = C/dt with an equivalent history current.
type Capacitor struct {
	Label string
	A, B  NodeID
	// C is the capacitance in farads.
	C float64
}

// Name implements Element.
func (c *Capacitor) Name() string { return c.Label }

// Nodes implements Element.
func (c *Capacitor) Nodes() []NodeID { return []NodeID{c.A, c.B} }

// Retarget implements Element.
func (c *Capacitor) Retarget(i int, n NodeID) {
	switch i {
	case 0:
		c.A = n
	case 1:
		c.B = n
	default:
		panic(badTerminal(c.Label, i))
	}
}

// NumAux implements Element.
func (c *Capacitor) NumAux() int { return 0 }

// Linear implements Element.
func (c *Capacitor) Linear() bool { return true }

// Stamp implements Element.
func (c *Capacitor) Stamp(ctx *Context, _ int) {
	if ctx.Mode == DCOp {
		return
	}
	g := c.C / ctx.Dt
	vPrev := ctx.XPrevAt(c.A) - ctx.XPrevAt(c.B)
	ctx.StampG(c.A, c.B, g)
	// History source: i_eq = g * vPrev flowing B -> A (charging current
	// continues in the established direction).
	ctx.StampI(c.B, c.A, g*vPrev)
}

// StampB implements BStamper: only the history current source, computed
// exactly as in Stamp, without the conductance writes.
func (c *Capacitor) StampB(ctx *Context, _ int) {
	if ctx.Mode == DCOp {
		return
	}
	g := c.C / ctx.Dt
	vPrev := ctx.XPrevAt(c.A) - ctx.XPrevAt(c.B)
	ctx.StampI(c.B, c.A, g*vPrev)
}

// Waveform is a time-dependent source value.
type Waveform interface {
	// At returns the source value at time t.
	At(t float64) float64
}

// DC is a constant waveform.
type DC float64

// At implements Waveform.
func (d DC) At(float64) float64 { return float64(d) }

// Pulse is a SPICE-style pulse waveform.
type Pulse struct {
	V0, V1                   float64
	Delay, Rise, Fall, Width float64
	Period                   float64 // 0 = single pulse
}

// At implements Waveform.
func (p Pulse) At(t float64) float64 {
	t -= p.Delay
	if t < 0 {
		return p.V0
	}
	if p.Period > 0 {
		for t >= p.Period {
			t -= p.Period
		}
	}
	switch {
	case t < p.Rise:
		if p.Rise == 0 {
			return p.V1
		}
		return p.V0 + (p.V1-p.V0)*t/p.Rise
	case t < p.Rise+p.Width:
		return p.V1
	case t < p.Rise+p.Width+p.Fall:
		if p.Fall == 0 {
			return p.V0
		}
		return p.V1 + (p.V0-p.V1)*(t-p.Rise-p.Width)/p.Fall
	default:
		return p.V0
	}
}

// PWL is a piecewise-linear waveform through (T[i], V[i]) points; constant
// extrapolation outside the range. T must be strictly increasing.
type PWL struct {
	T, V []float64
}

// At implements Waveform.
func (p PWL) At(t float64) float64 {
	if len(p.T) == 0 {
		return 0
	}
	if t <= p.T[0] {
		return p.V[0]
	}
	for i := 1; i < len(p.T); i++ {
		if t <= p.T[i] {
			f := (t - p.T[i-1]) / (p.T[i] - p.T[i-1])
			return p.V[i-1] + f*(p.V[i]-p.V[i-1])
		}
	}
	return p.V[len(p.V)-1]
}

// Triangle is a symmetric triangular waveform sweeping Lo..Hi..Lo with the
// given period, starting at Lo.
type Triangle struct {
	Lo, Hi, Period float64
}

// At implements Waveform.
func (w Triangle) At(t float64) float64 {
	if w.Period <= 0 {
		return w.Lo
	}
	ph := t / w.Period
	ph -= float64(int(ph))
	if ph < 0.5 {
		return w.Lo + (w.Hi-w.Lo)*2*ph
	}
	return w.Hi - (w.Hi-w.Lo)*2*(ph-0.5)
}

// VSource is an ideal independent voltage source from P (+) to N (-). Its
// branch current is an MNA aux unknown, which the engine exposes for the
// supply/input current measurements of the test methodology.
type VSource struct {
	Label string
	P, N  NodeID
	W     Waveform
}

// V returns a DC voltage source.
func V(label string, p, n NodeID, v float64) *VSource {
	return &VSource{Label: label, P: p, N: n, W: DC(v)}
}

// Name implements Element.
func (v *VSource) Name() string { return v.Label }

// Nodes implements Element.
func (v *VSource) Nodes() []NodeID { return []NodeID{v.P, v.N} }

// Retarget implements Element.
func (v *VSource) Retarget(i int, n NodeID) {
	switch i {
	case 0:
		v.P = n
	case 1:
		v.N = n
	default:
		panic(badTerminal(v.Label, i))
	}
}

// NumAux implements Element.
func (v *VSource) NumAux() int { return 1 }

// Linear implements Element.
func (v *VSource) Linear() bool { return true }

// Stamp implements Element.
func (v *VSource) Stamp(ctx *Context, auxBase int) {
	ctx.StampVS(v.P, v.N, auxBase, v.W.At(ctx.Time)*ctx.SrcScale)
}

// StampB implements BStamper: the branch-voltage right-hand side of
// StampVS, without the ±1 incidence entries.
func (v *VSource) StampB(ctx *Context, auxBase int) {
	ctx.AddB(auxBase, v.W.At(ctx.Time)*ctx.SrcScale)
}

// ISource is an ideal independent current source. Following the SPICE
// convention, a positive value drives current from P through the source
// to N.
type ISource struct {
	Label string
	P, N  NodeID
	W     Waveform
}

// I returns a DC current source.
func I(label string, p, n NodeID, i float64) *ISource {
	return &ISource{Label: label, P: p, N: n, W: DC(i)}
}

// Name implements Element.
func (s *ISource) Name() string { return s.Label }

// Nodes implements Element.
func (s *ISource) Nodes() []NodeID { return []NodeID{s.P, s.N} }

// Retarget implements Element.
func (s *ISource) Retarget(i int, n NodeID) {
	switch i {
	case 0:
		s.P = n
	case 1:
		s.N = n
	default:
		panic(badTerminal(s.Label, i))
	}
}

// NumAux implements Element.
func (s *ISource) NumAux() int { return 0 }

// Linear implements Element.
func (s *ISource) Linear() bool { return true }

// Stamp implements Element.
func (s *ISource) Stamp(ctx *Context, _ int) {
	ctx.StampI(s.P, s.N, s.W.At(ctx.Time)*ctx.SrcScale)
}

// StampB implements BStamper: an ideal current source stamps only the
// right-hand side, so this is Stamp verbatim.
func (s *ISource) StampB(ctx *Context, _ int) {
	ctx.StampI(s.P, s.N, s.W.At(ctx.Time)*ctx.SrcScale)
}
