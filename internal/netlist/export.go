package netlist

import (
	"fmt"
	"io"
	"strings"
)

// WriteSpice emits the circuit as a SPICE-compatible deck so the
// reproduction's netlists can be cross-checked in an external simulator
// (ngspice etc.). Time-dependent sources are emitted as their t=0 DC
// value with the waveform noted in a comment; the two MOS model cards are
// emitted as .model lines.
func WriteSpice(w io.Writer, title string, c *Circuit) error {
	var b strings.Builder
	fmt.Fprintf(&b, "* %s\n", title)
	fmt.Fprintf(&b, "* exported by the DATE-1995 defect-oriented test reproduction\n")

	models := map[string]MOSModel{}
	for _, el := range c.Elems {
		switch e := el.(type) {
		case *Resistor:
			fmt.Fprintf(&b, "R%s %s %s %g\n", sanitize(e.Label), node(c, e.A), node(c, e.B), e.R)
		case *Capacitor:
			fmt.Fprintf(&b, "C%s %s %s %g\n", sanitize(e.Label), node(c, e.A), node(c, e.B), e.C)
		case *VSource:
			fmt.Fprintf(&b, "V%s %s %s DC %g", sanitize(e.Label), node(c, e.P), node(c, e.N), e.W.At(0))
			if _, dc := e.W.(DC); !dc {
				fmt.Fprintf(&b, " ; time-dependent waveform %T", e.W)
			}
			fmt.Fprintln(&b)
		case *ISource:
			fmt.Fprintf(&b, "I%s %s %s DC %g\n", sanitize(e.Label), node(c, e.P), node(c, e.N), e.W.At(0))
		case *MOSFET:
			name := modelName(e.Model)
			models[name] = e.Model
			fmt.Fprintf(&b, "M%s %s %s %s %s %s W=%gu L=%gu\n",
				sanitize(e.Label), node(c, e.D), node(c, e.G), node(c, e.S), node(c, e.B),
				name, e.W*1e6, e.L*1e6)
		default:
			fmt.Fprintf(&b, "* unsupported element %s (%T)\n", el.Name(), el)
		}
	}
	for name, m := range models {
		kind := "NMOS"
		if m.PMOS {
			kind = "PMOS"
		}
		fmt.Fprintf(&b, ".model %s %s (LEVEL=1 VTO=%g KP=%g LAMBDA=%g GAMMA=%g PHI=%g)\n",
			name, kind, m.VT0, m.KP, m.Lambda, m.Gamma, m.Phi)
	}
	fmt.Fprintln(&b, ".end")
	_, err := io.WriteString(w, b.String())
	return err
}

// node renders a node name in SPICE syntax.
func node(c *Circuit, n NodeID) string {
	return sanitize(c.NodeName(n))
}

// sanitize replaces characters SPICE node/element names dislike.
func sanitize(s string) string {
	r := strings.NewReplacer(".", "_", "#", "_", "/", "_")
	return r.Replace(s)
}

// modelName derives a deterministic card name from the polarity and
// threshold magnitude (distinct variations get distinct cards).
func modelName(m MOSModel) string {
	kind := "n"
	vt := m.VT0
	if m.PMOS {
		kind = "p"
		vt = -vt
	}
	if vt < 0 {
		vt = -vt
	}
	return fmt.Sprintf("m%s_%d", kind, int(vt*1e4))
}
