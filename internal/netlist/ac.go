package netlist

// ACContext is the stamping target for the small-signal (AC) analysis:
// the circuit is linearised around a DC operating point and solved in the
// frequency domain.
type ACContext struct {
	// Omega is the angular frequency (rad/s).
	Omega float64
	// X returns the DC operating-point voltage of a node (the
	// linearisation point for nonlinear devices).
	X func(NodeID) float64
	// Source is the name of the element acting as the AC excitation
	// (unit magnitude); all other independent sources are quiesced.
	Source string
	// A adds to the complex MNA matrix; B to the right-hand side.
	A func(i, j int, v complex128)
	// B adds to the right-hand side.
	B func(i int, v complex128)
}

// StampACG stamps a complex admittance between two nodes.
func (ctx *ACContext) StampACG(a, b NodeID, y complex128) {
	ia, ib := idx(a), idx(b)
	if ia >= 0 {
		ctx.A(ia, ia, y)
	}
	if ib >= 0 {
		ctx.A(ib, ib, y)
	}
	if ia >= 0 && ib >= 0 {
		ctx.A(ia, ib, -y)
		ctx.A(ib, ia, -y)
	}
}

// ACStamper is implemented by every element that participates in the AC
// analysis. The engine requires it of all elements.
type ACStamper interface {
	// StampAC writes the small-signal contribution at the given
	// operating point into ctx.
	StampAC(ctx *ACContext, auxBase int)
}

// StampAC implements ACStamper.
func (r *Resistor) StampAC(ctx *ACContext, _ int) {
	ctx.StampACG(r.A, r.B, complex(1/r.R, 0))
}

// StampAC implements ACStamper.
func (c *Capacitor) StampAC(ctx *ACContext, _ int) {
	ctx.StampACG(c.A, c.B, complex(0, ctx.Omega*c.C))
}

// StampAC implements ACStamper: the designated AC source has unit
// magnitude; every other voltage source is an AC short (0 V).
func (v *VSource) StampAC(ctx *ACContext, auxBase int) {
	ia, ib := idx(v.P), idx(v.N)
	if ia >= 0 {
		ctx.A(ia, auxBase, 1)
		ctx.A(auxBase, ia, 1)
	}
	if ib >= 0 {
		ctx.A(ib, auxBase, -1)
		ctx.A(auxBase, ib, -1)
	}
	if v.Label == ctx.Source {
		ctx.B(auxBase, 1)
	}
}

// StampAC implements ACStamper: independent current sources are AC opens
// unless designated as the excitation.
func (s *ISource) StampAC(ctx *ACContext, _ int) {
	if s.Label != ctx.Source {
		return
	}
	if ia := idx(s.P); ia >= 0 {
		ctx.B(ia, -1)
	}
	if ib := idx(s.N); ib >= 0 {
		ctx.B(ib, 1)
	}
}

// StampAC implements ACStamper: the MOSFET is linearised at the DC
// operating point with numerically evaluated conductances (gm, gds, gmb),
// matching the large-signal Stamp's linearisation.
func (m *MOSFET) StampAC(ctx *ACContext, _ int) {
	vd, vg, vs, vb := ctx.X(m.D), ctx.X(m.G), ctx.X(m.S), ctx.X(m.B)
	const h = 1e-6
	i0, _, _, _ := m.eval(vd, vg, vs, vb)
	id1, _, _, _ := m.eval(vd+h, vg, vs, vb)
	ig1, _, _, _ := m.eval(vd, vg+h, vs, vb)
	is1, _, _, _ := m.eval(vd, vg, vs+h, vb)
	ib1, _, _, _ := m.eval(vd, vg, vs, vb+h)
	gdd := (id1 - i0) / h
	gdg := (ig1 - i0) / h
	gds := (is1 - i0) / h
	gdb := (ib1 - i0) / h
	stampRow := func(row int, sign float64) {
		if row < 0 {
			return
		}
		if j := idx(m.D); j >= 0 {
			ctx.A(row, j, complex(sign*gdd, 0))
		}
		if j := idx(m.G); j >= 0 {
			ctx.A(row, j, complex(sign*gdg, 0))
		}
		if j := idx(m.S); j >= 0 {
			ctx.A(row, j, complex(sign*gds, 0))
		}
		if j := idx(m.B); j >= 0 {
			ctx.A(row, j, complex(sign*gdb, 0))
		}
	}
	stampRow(idx(m.D), 1)
	stampRow(idx(m.S), -1)
}
