package netlist

import (
	"math"
	"testing"
)

// fakeSystem collects stamps into dense structures for inspection.
type fakeSystem struct {
	n   int
	a   [][]float64
	b   []float64
	sol []float64
}

func newFake(n int, sol []float64) *fakeSystem {
	f := &fakeSystem{n: n, b: make([]float64, n), sol: sol}
	f.a = make([][]float64, n)
	for i := range f.a {
		f.a[i] = make([]float64, n)
	}
	return f
}

func (f *fakeSystem) ctx(mode StampMode, dt float64, prev []float64) *Context {
	return &Context{
		Mode: mode,
		Dt:   dt,
		X: func(n NodeID) float64 {
			if n == Ground {
				return 0
			}
			return f.sol[int(n)-1]
		},
		XPrev: func(n NodeID) float64 {
			if n == Ground {
				return 0
			}
			return prev[int(n)-1]
		},
		SrcScale: 1,
		A:        func(i, j int, v float64) { f.a[i][j] += v },
		B:        func(i int, v float64) { f.b[i] += v },
	}
}

func TestStampG(t *testing.T) {
	f := newFake(2, []float64{0, 0})
	ctx := f.ctx(DCOp, 0, nil)
	ctx.StampG(1, 2, 0.5) // nodes 1,2 -> indices 0,1
	if f.a[0][0] != 0.5 || f.a[1][1] != 0.5 || f.a[0][1] != -0.5 || f.a[1][0] != -0.5 {
		t.Fatalf("G stamp: %v", f.a)
	}
	// Against ground: only the diagonal.
	f2 := newFake(1, []float64{0})
	f2.ctx(DCOp, 0, nil).StampG(1, Ground, 2)
	if f2.a[0][0] != 2 {
		t.Fatalf("ground G stamp: %v", f2.a)
	}
}

func TestStampI(t *testing.T) {
	f := newFake(2, []float64{0, 0})
	f.ctx(DCOp, 0, nil).StampI(1, 2, 1e-3) // current leaves node 1, enters node 2
	if f.b[0] != -1e-3 || f.b[1] != 1e-3 {
		t.Fatalf("I stamp: %v", f.b)
	}
}

func TestStampVS(t *testing.T) {
	f := newFake(3, []float64{0, 0, 0}) // 2 nodes + 1 aux
	f.ctx(DCOp, 0, nil).StampVS(1, 2, 2, 5)
	if f.a[0][2] != 1 || f.a[2][0] != 1 || f.a[1][2] != -1 || f.a[2][1] != -1 {
		t.Fatalf("VS incidence: %v", f.a)
	}
	if f.b[2] != 5 {
		t.Fatalf("VS rhs: %v", f.b)
	}
}

func TestStampTransG(t *testing.T) {
	f := newFake(4, make([]float64, 4))
	f.ctx(DCOp, 0, nil).StampTransG(1, 2, 3, 4, 1e-3)
	if f.a[0][2] != 1e-3 || f.a[0][3] != -1e-3 || f.a[1][2] != -1e-3 || f.a[1][3] != 1e-3 {
		t.Fatalf("transconductance stamp: %v", f.a)
	}
}

func TestCapacitorStampModes(t *testing.T) {
	c := &Capacitor{Label: "c", A: 1, B: Ground, C: 1e-9}
	// DC: no contribution.
	f := newFake(1, []float64{3})
	c.Stamp(f.ctx(DCOp, 0, []float64{3}), 0)
	if f.a[0][0] != 0 || f.b[0] != 0 {
		t.Fatal("cap must be open in DC")
	}
	// Transient: g = C/dt and history current g·vPrev.
	f2 := newFake(1, []float64{3})
	c.Stamp(f2.ctx(Transient, 1e-6, []float64{2}), 0)
	g := 1e-9 / 1e-6
	if math.Abs(f2.a[0][0]-g) > 1e-18 {
		t.Fatalf("cap conductance: %g", f2.a[0][0])
	}
	if math.Abs(f2.b[0]-g*2) > 1e-18 {
		t.Fatalf("cap history: %g", f2.b[0])
	}
}

func TestResistorStamp(t *testing.T) {
	r := &Resistor{Label: "r", A: 1, B: Ground, R: 100}
	f := newFake(1, []float64{0})
	r.Stamp(f.ctx(DCOp, 0, nil), 0)
	if math.Abs(f.a[0][0]-0.01) > 1e-15 {
		t.Fatalf("R stamp: %g", f.a[0][0])
	}
	if !r.Linear() || r.NumAux() != 0 || r.Name() != "r" {
		t.Fatal("resistor metadata")
	}
}

func TestISourceStampScale(t *testing.T) {
	s := I("i", 1, 2, 2e-3)
	f := newFake(2, []float64{0, 0})
	ctx := f.ctx(DCOp, 0, nil)
	ctx.SrcScale = 0.5
	s.Stamp(ctx, 0)
	if f.b[0] != -1e-3 || f.b[1] != 1e-3 {
		t.Fatalf("scaled I stamp: %v", f.b)
	}
}

func TestVSourceStampScaleAndHelper(t *testing.T) {
	v := V("v", 1, Ground, 4)
	if v.NumAux() != 1 || !v.Linear() {
		t.Fatal("vsource metadata")
	}
	f := newFake(2, []float64{0, 0}) // node1 + aux
	ctx := f.ctx(DCOp, 0, nil)
	ctx.SrcScale = 0.25
	v.Stamp(ctx, 1)
	if f.b[1] != 1 {
		t.Fatalf("scaled VS rhs: %v", f.b)
	}
}

// TestMOSFETStampConsistency checks the Norton companion: with the
// linearisation point exactly at the solution, A·x - b reproduces the
// device current at each terminal.
func TestMOSFETStampConsistency(t *testing.T) {
	m := &MOSFET{Label: "m", D: 1, G: 2, S: Ground, B: Ground, Model: NMOS1(), W: 10e-6, L: 1e-6}
	x := []float64{3.0, 2.0} // vd=3, vg=2
	f := newFake(2, x)
	m.Stamp(f.ctx(DCOp, 0, nil), 0)
	// KCL residual at the drain row: A[0]·x - b[0] should equal the
	// channel current entering the matrix (ids).
	res := f.a[0][0]*x[0] + f.a[0][1]*x[1] - f.b[0]
	ids := m.Ids(3, 2, 0, 0)
	if math.Abs(res-ids) > 1e-9 {
		t.Fatalf("drain residual %g vs ids %g", res, ids)
	}
}

// TestMOSFETStampGmin verifies the convergence-aid leak is applied.
func TestMOSFETStampGmin(t *testing.T) {
	m := &MOSFET{Label: "m", D: 1, G: 2, S: Ground, B: Ground, Model: NMOS1(), W: 10e-6, L: 1e-6}
	f := newFake(2, []float64{0, 0})
	ctx := f.ctx(DCOp, 0, nil)
	ctx.Gmin = 1e-9
	m.Stamp(ctx, 0)
	if f.a[0][0] < 1e-9 {
		t.Fatal("gmin missing at drain")
	}
}

func TestACStampRC(t *testing.T) {
	// Direct AC stamps: R in parallel with C to ground.
	r := &Resistor{Label: "r", A: 1, B: Ground, R: 1000}
	c := &Capacitor{Label: "c", A: 1, B: Ground, C: 1e-9}
	var aReal, aImag float64
	ctx := &ACContext{
		Omega: 2 * math.Pi * 1e6,
		A: func(i, j int, v complex128) {
			if i == 0 && j == 0 {
				aReal += real(v)
				aImag += imag(v)
			}
		},
		B: func(int, complex128) {},
	}
	r.StampAC(ctx, 0)
	c.StampAC(ctx, 0)
	if math.Abs(aReal-1e-3) > 1e-12 {
		t.Fatalf("AC real part: %g", aReal)
	}
	if math.Abs(aImag-2*math.Pi*1e6*1e-9) > 1e-12 {
		t.Fatalf("AC imag part: %g", aImag)
	}
}

func TestACStampSourceSelection(t *testing.T) {
	v := V("vx", 1, Ground, 5)
	got := map[int]complex128{}
	ctx := &ACContext{
		Source: "other",
		A:      func(int, int, complex128) {},
		B:      func(i int, val complex128) { got[i] += val },
	}
	v.StampAC(ctx, 1)
	if got[1] != 0 {
		t.Fatal("non-selected source must be quiesced")
	}
	ctx.Source = "vx"
	v.StampAC(ctx, 1)
	if got[1] != 1 {
		t.Fatalf("selected source rhs = %v", got[1])
	}
}
