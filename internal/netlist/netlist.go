// Package netlist represents analog circuits at the element level: nodes,
// two-terminal elements (resistors, capacitors, independent sources) and
// MOSFETs with a level-1 model. Circuits are built programmatically by the
// macro-cell library and mutated by the fault modeller (element insertion
// for shorts, terminal retargeting for opens).
//
// The package defines the element Stamp interface the MNA engine in
// internal/spice consumes; elements stamp their linearised companion models
// into a Context supplied by the engine.
package netlist

import (
	"fmt"
	"sort"
)

// NodeID identifies a circuit node. Ground is node 0 and is always named
// "0"; its voltage is the reference and it carries no MNA unknown.
type NodeID int

// Ground is the reference node.
const Ground NodeID = 0

// Circuit is a flat netlist.
type Circuit struct {
	names  []string
	byName map[string]NodeID
	Elems  []Element

	// elemIdx lazily indexes Elems by name for rebinding and lookups;
	// idxLen is how many of Elems it has absorbed. The index is only
	// materialised on first use, so circuits that are built once and
	// never rebound pay nothing.
	elemIdx map[string]Element
	idxLen  int
}

// New returns an empty circuit containing only the ground node "0".
func New() *Circuit {
	c := &Circuit{byName: map[string]NodeID{}}
	c.names = append(c.names, "0")
	c.byName["0"] = Ground
	return c
}

// Node returns the node with the given name, creating it if necessary.
func (c *Circuit) Node(name string) NodeID {
	if id, ok := c.byName[name]; ok {
		return id
	}
	id := NodeID(len(c.names))
	c.names = append(c.names, name)
	c.byName[name] = id
	return id
}

// NodeByName returns the node and whether it exists, without creating it.
func (c *Circuit) NodeByName(name string) (NodeID, bool) {
	id, ok := c.byName[name]
	return id, ok
}

// NodeName returns the name of node n.
func (c *Circuit) NodeName(n NodeID) string { return c.names[n] }

// NumNodes returns the node count including ground.
func (c *Circuit) NumNodes() int { return len(c.names) }

// Add appends an element.
func (c *Circuit) Add(e Element) { c.Elems = append(c.Elems, e) }

// Element returns the element with the given name, or nil.
func (c *Circuit) Element(name string) Element {
	return c.elemByName(name)
}

// elemByName looks an element up through the lazy index, extending it
// over any elements appended since the last lookup (fault injection
// adds elements after construction). Duplicate labels keep the first
// occurrence, matching the linear scan this replaced.
func (c *Circuit) elemByName(name string) Element {
	if c.idxLen < len(c.Elems) {
		if c.elemIdx == nil {
			c.elemIdx = make(map[string]Element, len(c.Elems))
		}
		for _, e := range c.Elems[c.idxLen:] {
			if _, dup := c.elemIdx[e.Name()]; !dup {
				c.elemIdx[e.Name()] = e
			}
		}
		c.idxLen = len(c.Elems)
	}
	return c.elemIdx[name]
}

// NodeNames returns the sorted names of all non-ground nodes.
func (c *Circuit) NodeNames() []string {
	out := append([]string(nil), c.names[1:]...)
	sort.Strings(out)
	return out
}

// StampMode selects the analysis context for stamping.
type StampMode int

const (
	// DCOp: capacitors are open circuits, sources at their t=0 value.
	DCOp StampMode = iota
	// Transient: capacitors use a backward-Euler companion model.
	Transient
)

// Context is the engine-provided stamping target for one Newton iteration.
type Context struct {
	Mode StampMode
	// Time is the current analysis time; Dt the timestep (Transient only).
	Time, Dt float64
	// X returns the present iterate's voltage at a node.
	X func(NodeID) float64
	// XPrev returns the previous accepted timestep's voltage (Transient).
	XPrev func(NodeID) float64
	// SrcScale scales all independent sources (source-stepping homotopy).
	SrcScale float64
	// Gmin is the convergence-aid conductance applied by nonlinear
	// elements from their terminals to ground.
	Gmin float64

	// A adds v to matrix entry (row i, col j) where i, j are MNA unknown
	// indices; B adds v to the right-hand side. Node n has index n-1;
	// aux variables have indices assigned by the engine.
	A func(i, j int, v float64)
	B func(i int, v float64)

	// ADense/BDense, when non-nil, are a dense row-major N×N matrix and
	// length-N right-hand side that AddA/AddB accumulate into directly,
	// bypassing the A/B closures on the stamping hot path. The engine
	// sets them for live (per-iteration) assembly; recording contexts
	// leave them nil so every op still flows through the closures. The
	// additions performed are identical either way.
	ADense, BDense []float64
	N              int

	// XDense/XPrevDense, when non-nil, back XAt/XPrevAt with direct
	// indexed reads (node n at index n-1) instead of the X/XPrev
	// closures. Values are identical either way.
	XDense, XPrevDense []float64
}

// XAt returns the present iterate's voltage at a node, preferring the
// dense fast path.
func (ctx *Context) XAt(n NodeID) float64 {
	if ctx.XDense != nil {
		if n == Ground {
			return 0
		}
		return ctx.XDense[int(n)-1]
	}
	return ctx.X(n)
}

// XPrevAt returns the previous accepted timestep's voltage at a node,
// preferring the dense fast path.
func (ctx *Context) XPrevAt(n NodeID) float64 {
	if ctx.XPrevDense != nil {
		if n == Ground {
			return 0
		}
		return ctx.XPrevDense[int(n)-1]
	}
	return ctx.XPrev(n)
}

// AddA accumulates v into matrix entry (i, j) via the dense fast path
// when available, else through the A closure.
func (ctx *Context) AddA(i, j int, v float64) {
	if ctx.ADense != nil {
		ctx.ADense[i*ctx.N+j] += v
		return
	}
	ctx.A(i, j, v)
}

// AddB accumulates v into right-hand-side row i via the dense fast path
// when available, else through the B closure.
func (ctx *Context) AddB(i int, v float64) {
	if ctx.BDense != nil {
		ctx.BDense[i] += v
		return
	}
	ctx.B(i, v)
}

// idx converts a node to its MNA index (-1 for ground).
func idx(n NodeID) int { return int(n) - 1 }

// StampG stamps a conductance g between nodes a and b.
func (ctx *Context) StampG(a, b NodeID, g float64) {
	ia, ib := idx(a), idx(b)
	if ia >= 0 {
		ctx.AddA(ia, ia, g)
	}
	if ib >= 0 {
		ctx.AddA(ib, ib, g)
	}
	if ia >= 0 && ib >= 0 {
		ctx.AddA(ia, ib, -g)
		ctx.AddA(ib, ia, -g)
	}
}

// StampI stamps a constant current i flowing from node a through the
// element to node b (leaving a, entering b).
func (ctx *Context) StampI(a, b NodeID, i float64) {
	if ia := idx(a); ia >= 0 {
		ctx.AddB(ia, -i)
	}
	if ib := idx(b); ib >= 0 {
		ctx.AddB(ib, i)
	}
}

// StampVS stamps an ideal voltage source v between a (+) and b (-) using
// the aux unknown (branch current) at index aux.
func (ctx *Context) StampVS(a, b NodeID, aux int, v float64) {
	ia, ib := idx(a), idx(b)
	if ia >= 0 {
		ctx.AddA(ia, aux, 1)
		ctx.AddA(aux, ia, 1)
	}
	if ib >= 0 {
		ctx.AddA(ib, aux, -1)
		ctx.AddA(aux, ib, -1)
	}
	ctx.AddB(aux, v)
}

// StampTransG stamps a transconductance: current g*(Vc-Vd) flowing from
// node a to node b.
func (ctx *Context) StampTransG(a, b, cp, cn NodeID, g float64) {
	ia, ib, ic, id := idx(a), idx(b), idx(cp), idx(cn)
	if ia >= 0 && ic >= 0 {
		ctx.AddA(ia, ic, g)
	}
	if ia >= 0 && id >= 0 {
		ctx.AddA(ia, id, -g)
	}
	if ib >= 0 && ic >= 0 {
		ctx.AddA(ib, ic, -g)
	}
	if ib >= 0 && id >= 0 {
		ctx.AddA(ib, id, g)
	}
}

// Element is anything that can stamp itself into the MNA system.
type Element interface {
	// Name returns the unique element name.
	Name() string
	// Nodes returns the element's terminal nodes in a fixed order.
	Nodes() []NodeID
	// Retarget reconnects terminal i (index into Nodes()) to node n;
	// used by the open-fault model.
	Retarget(i int, n NodeID)
	// NumAux returns how many MNA auxiliary unknowns (branch currents)
	// the element needs.
	NumAux() int
	// Stamp writes the element's linearised contribution for the current
	// iterate into ctx. auxBase is the index of the element's first aux
	// unknown (meaningless if NumAux() == 0).
	Stamp(ctx *Context, auxBase int)
	// Linear reports whether the element's stamp is independent of X.
	Linear() bool
}

// BStamper is an optional interface for linear elements whose A-side
// stamp does not depend on time or the previous timestep. StampB must
// perform exactly the AddB calls Stamp would perform — same values, same
// order — and skip all AddA calls. The engine invokes it instead of
// Stamp when re-recording only the right-hand side under a still-valid
// A-side recording, so elements avoid recomputing matrix entries that
// would be discarded anyway.
type BStamper interface {
	StampB(ctx *Context, auxBase int)
}

// GStamper is an optional interface for elements whose entire stamp in
// a given mode is a single two-node conductance — i.e. Stamp performs
// exactly StampG(a, b, g) and nothing else (no right-hand side, no aux
// rows). The low-rank fault-update path uses it to express an injected
// element as a rank-1 delta against the nominal matrix; an element that
// cannot make that promise for the mode returns ok == false and the
// caller falls back to a full refactor.
type GStamper interface {
	ConductanceStamp(mode StampMode) (a, b NodeID, g float64, ok bool)
}

// badTerminal formats the panic message for Retarget misuse.
func badTerminal(name string, i int) string {
	return fmt.Sprintf("netlist: element %s has no terminal %d", name, i)
}
