package netlist

// ModeGated is an optional Element refinement for elements whose Stamp is
// a no-op in some analysis modes (capacitors in DC, where they are open
// circuits). The stamp compiler drops inactive elements from the
// per-mode program so the engine never dispatches them at all.
type ModeGated interface {
	// InactiveIn reports that Stamp writes nothing in the given mode.
	InactiveIn(mode StampMode) bool
}

// InactiveIn implements ModeGated: a capacitor stamps nothing at DC.
func (c *Capacitor) InactiveIn(mode StampMode) bool { return mode == DCOp }

// StampItem is one element occurrence in a compiled stamp program.
type StampItem struct {
	El Element
	// BS is El's BStamper view when it implements one (nil otherwise),
	// resolved at compile time so the engine's B-side re-recording loop
	// avoids a per-solve type assertion.
	BS BStamper
	// AuxBase is the element's first MNA auxiliary index (as assigned by
	// the engine), passed through to Stamp.
	AuxBase int
	// Linear mirrors El.Linear(): the stamp is independent of the present
	// iterate X, so within one Newton solve — where time, timestep,
	// source scale and the previous-step state are all fixed — it is
	// constant and can be recorded once and replayed per iteration.
	Linear bool
}

// StampSeg is a maximal run of consecutive same-kind items. Segments let
// the engine replay recorded linear ops and dispatch nonlinear elements
// in the exact element order of the original netlist, which keeps the
// floating-point accumulation order — and therefore every simulation
// result — bit-identical to naive per-element stamping.
type StampSeg struct {
	Linear   bool
	From, To int // index range into Items
}

// StampProgram is the compiled per-(circuit, stamp-mode) form of the
// element list: a flat item slice partitioned into linear/nonlinear runs,
// with mode-inactive elements removed. The MNA engine assembles each
// Newton iteration by walking Segs instead of re-dispatching every
// device through the Element interface.
type StampProgram struct {
	Mode  StampMode
	Items []StampItem
	Segs  []StampSeg
}

// NumLinear returns how many items of the program are linear.
func (p *StampProgram) NumLinear() int {
	n := 0
	for _, it := range p.Items {
		if it.Linear {
			n++
		}
	}
	return n
}

// CompileStamps compiles the circuit's element list for one stamp mode.
// auxBase[i] is the first auxiliary-unknown index of c.Elems[i]. Elements
// appended to the circuit after compilation are not part of the program
// (the same construction-time constraint the engine already places on
// node and aux numbering); Retarget-ed terminals are picked up live,
// because stamps read their element's current node fields.
func CompileStamps(c *Circuit, mode StampMode, auxBase []int) *StampProgram {
	p := &StampProgram{Mode: mode}
	for i, el := range c.Elems {
		if g, ok := el.(ModeGated); ok && g.InactiveIn(mode) {
			continue
		}
		it := StampItem{El: el, AuxBase: auxBase[i], Linear: el.Linear()}
		if bs, ok := el.(BStamper); ok {
			it.BS = bs
		}
		if n := len(p.Segs); n == 0 || p.Segs[n-1].Linear != it.Linear {
			p.Segs = append(p.Segs, StampSeg{Linear: it.Linear, From: len(p.Items)})
		}
		p.Items = append(p.Items, it)
		p.Segs[len(p.Segs)-1].To = len(p.Items)
	}
	return p
}
