package netlist

import "math"

// MOSModel is a level-1 (Shichman–Hodges) MOSFET model card with simple
// body effect, channel-length modulation and temperature dependence. The
// defaults mirror a 1 µm CMOS process at 5 V.
type MOSModel struct {
	// PMOS selects the p-channel polarity.
	PMOS bool
	// VT0 is the zero-bias threshold voltage (positive for NMOS,
	// negative for PMOS).
	VT0 float64
	// KP is the transconductance parameter µCox (A/V²).
	KP float64
	// Lambda is the channel-length modulation (1/V).
	Lambda float64
	// Gamma is the body-effect coefficient (√V); Phi the surface
	// potential (V).
	Gamma, Phi float64
	// IOff is the drain-source off-state leakage per unit W/L (A); it
	// keeps IDDQ realistic without a full subthreshold model.
	IOff float64
	// TCV is the threshold temperature coefficient (V/°C, applied as
	// VT0 - TCV*(T-27)); BEX the mobility exponent for KP scaling.
	TCV, BEX float64
}

// NMOS1 returns the default 1 µm NMOS model card.
func NMOS1() MOSModel {
	return MOSModel{
		VT0: 0.75, KP: 60e-6, Lambda: 0.04, Gamma: 0.4, Phi: 0.65,
		IOff: 1e-12, TCV: 2e-3, BEX: -1.5,
	}
}

// PMOS1 returns the default 1 µm PMOS model card.
func PMOS1() MOSModel {
	return MOSModel{
		PMOS: true, VT0: -0.75, KP: 22e-6, Lambda: 0.05, Gamma: 0.5, Phi: 0.65,
		IOff: 1e-12, TCV: -2e-3, BEX: -1.5,
	}
}

// AtTemp returns the model adjusted to temperature tC (°C), relative to
// the nominal 27 °C.
func (m MOSModel) AtTemp(tC float64) MOSModel {
	dt := tC - 27
	m.VT0 -= m.TCV * dt
	m.KP *= math.Pow((tC+273.15)/300.15, m.BEX)
	return m
}

// MOSFET is a four-terminal MOS transistor using MOSModel. Gate
// capacitances are not part of the stamp; the macro builder adds explicit
// linear capacitors (see AddMOS in the builder helpers) so the transient
// engine sees charge storage while the DC stamp stays purely resistive.
type MOSFET struct {
	Label      string
	D, G, S, B NodeID
	Model      MOSModel
	// W and L are the channel width and length in metres.
	W, L float64
}

// Name implements Element.
func (m *MOSFET) Name() string { return m.Label }

// Nodes implements Element. Order: D, G, S, B.
func (m *MOSFET) Nodes() []NodeID { return []NodeID{m.D, m.G, m.S, m.B} }

// Retarget implements Element.
func (m *MOSFET) Retarget(i int, n NodeID) {
	switch i {
	case 0:
		m.D = n
	case 1:
		m.G = n
	case 2:
		m.S = n
	case 3:
		m.B = n
	default:
		panic(badTerminal(m.Label, i))
	}
}

// NumAux implements Element.
func (m *MOSFET) NumAux() int { return 0 }

// Linear implements Element.
func (m *MOSFET) Linear() bool { return false }

// eval computes the drain current and small-signal conductances of the
// intrinsic device for terminal voltages vd, vg, vs, vb (all relative to
// ground), in the NMOS frame. Returns ids (current flowing D->S inside
// the device), gm = ∂I/∂Vgs, gds = ∂I/∂Vds, gmb = ∂I/∂Vbs.
func (m *MOSFET) eval(vd, vg, vs, vb float64) (ids, gm, gds, gmb float64) {
	mod := m.Model
	sign := 1.0
	if mod.PMOS {
		// Evaluate the PMOS as an NMOS with inverted voltages.
		vd, vg, vs, vb = -vd, -vg, -vs, -vb
		sign = -1
	}
	// Source-drain symmetry: operate with vds >= 0.
	flip := false
	if vd < vs {
		vd, vs = vs, vd
		flip = true
	}
	vgs := vg - vs
	vds := vd - vs
	vbs := vb - vs

	vt0 := mod.VT0
	if mod.PMOS {
		vt0 = -mod.VT0 // in the NMOS frame the threshold is positive
	}
	// Body effect (clamp the sqrt arguments).
	phi := mod.Phi
	sb := phi - vbs
	if sb < 0.05 {
		sb = 0.05
	}
	vth := vt0 + mod.Gamma*(math.Sqrt(sb)-math.Sqrt(phi))
	dvthdvbs := -mod.Gamma / (2 * math.Sqrt(sb))

	beta := mod.KP * m.W / m.L
	vov := vgs - vth
	// Off-state leakage, present in every region for continuity at the
	// cutoff boundary; tanh rolls it off smoothly through vds = 0.
	leak := mod.IOff * (m.W / m.L) * math.Tanh(vds/0.1)
	switch {
	case vov <= 0:
		// Cutoff: leakage only.
		ids = leak
		gds = mod.IOff * (m.W / m.L) / 0.1 * (1 - math.Tanh(vds/0.1)*math.Tanh(vds/0.1))
		gm = 0
		gmb = 0
	case vds < vov:
		// Linear (triode).
		cm := 1 + mod.Lambda*vds
		ids = beta*(vov*vds-vds*vds/2)*cm + leak
		gm = beta * vds * cm
		gds = beta*(vov-vds)*cm + beta*(vov*vds-vds*vds/2)*mod.Lambda
		gmb = gm * (-dvthdvbs)
	default:
		// Saturation.
		cm := 1 + mod.Lambda*vds
		ids = beta/2*vov*vov*cm + leak
		gm = beta * vov * cm
		gds = beta / 2 * vov * vov * mod.Lambda
		gmb = gm * (-dvthdvbs)
	}
	if flip {
		ids = -ids
		// After flipping, gm/gds/gmb refer to the swapped frame; the
		// caller-side stamp uses the original terminals, so express
		// derivatives versus the original voltages:
		// I(D,S swapped) = -I'(...), handled in Stamp via re-eval.
	}
	ids *= sign
	return ids, gm, gds, gmb
}

// Stamp implements Element with a Norton companion linearisation around
// the present iterate. Derivatives are taken numerically from eval, which
// sidesteps the sign bookkeeping of the polarity/source-swap frames and is
// robust for a model this cheap.
func (m *MOSFET) Stamp(ctx *Context, _ int) {
	vd, vg, vs, vb := ctx.X(m.D), ctx.X(m.G), ctx.X(m.S), ctx.X(m.B)
	const h = 1e-6
	i0, _, _, _ := m.eval(vd, vg, vs, vb)
	id1, _, _, _ := m.eval(vd+h, vg, vs, vb)
	ig1, _, _, _ := m.eval(vd, vg+h, vs, vb)
	is1, _, _, _ := m.eval(vd, vg, vs+h, vb)
	ib1, _, _, _ := m.eval(vd, vg, vs, vb+h)
	gdd := (id1 - i0) / h
	gdg := (ig1 - i0) / h
	gds := (is1 - i0) / h
	gdb := (ib1 - i0) / h

	// Current flows D->S through the channel. MNA: I_D = +ids at drain
	// (leaving node into channel), I_S = -ids.
	// Linearised: i = i0 + gdd*(Vd-vd) + gdg*(Vg-vg) + gds*(Vs-vs) + gdb*(Vb-vb).
	ieq := i0 - gdd*vd - gdg*vg - gds*vs - gdb*vb

	dIdx := idx(m.D)
	sIdx := idx(m.S)
	stampRow := func(row int, signv float64) {
		if row < 0 {
			return
		}
		if j := idx(m.D); j >= 0 {
			ctx.A(row, j, signv*gdd)
		}
		if j := idx(m.G); j >= 0 {
			ctx.A(row, j, signv*gdg)
		}
		if j := idx(m.S); j >= 0 {
			ctx.A(row, j, signv*gds)
		}
		if j := idx(m.B); j >= 0 {
			ctx.A(row, j, signv*gdb)
		}
		ctx.B(row, -signv*ieq)
	}
	stampRow(dIdx, 1)
	stampRow(sIdx, -1)

	// Convergence aid: gmin from drain and source to ground.
	if ctx.Gmin > 0 {
		ctx.StampG(m.D, Ground, ctx.Gmin)
		ctx.StampG(m.S, Ground, ctx.Gmin)
	}
}

// Ids returns the channel current at the given solved node voltages
// (positive flowing D->S), for measurement purposes.
func (m *MOSFET) Ids(vd, vg, vs, vb float64) float64 {
	i, _, _, _ := m.eval(vd, vg, vs, vb)
	return i
}
