package netlist

import "math"

// MOSModel is a level-1 (Shichman–Hodges) MOSFET model card with simple
// body effect, channel-length modulation and temperature dependence. The
// defaults mirror a 1 µm CMOS process at 5 V.
type MOSModel struct {
	// PMOS selects the p-channel polarity.
	PMOS bool
	// VT0 is the zero-bias threshold voltage (positive for NMOS,
	// negative for PMOS).
	VT0 float64
	// KP is the transconductance parameter µCox (A/V²).
	KP float64
	// Lambda is the channel-length modulation (1/V).
	Lambda float64
	// Gamma is the body-effect coefficient (√V); Phi the surface
	// potential (V).
	Gamma, Phi float64
	// IOff is the drain-source off-state leakage per unit W/L (A); it
	// keeps IDDQ realistic without a full subthreshold model.
	IOff float64
	// TCV is the threshold temperature coefficient (V/°C, applied as
	// VT0 - TCV*(T-27)); BEX the mobility exponent for KP scaling.
	TCV, BEX float64
}

// NMOS1 returns the default 1 µm NMOS model card.
func NMOS1() MOSModel {
	return MOSModel{
		VT0: 0.75, KP: 60e-6, Lambda: 0.04, Gamma: 0.4, Phi: 0.65,
		IOff: 1e-12, TCV: 2e-3, BEX: -1.5,
	}
}

// PMOS1 returns the default 1 µm PMOS model card.
func PMOS1() MOSModel {
	return MOSModel{
		PMOS: true, VT0: -0.75, KP: 22e-6, Lambda: 0.05, Gamma: 0.5, Phi: 0.65,
		IOff: 1e-12, TCV: -2e-3, BEX: -1.5,
	}
}

// AtTemp returns the model adjusted to temperature tC (°C), relative to
// the nominal 27 °C.
func (m MOSModel) AtTemp(tC float64) MOSModel {
	dt := tC - 27
	m.VT0 -= m.TCV * dt
	m.KP *= math.Pow((tC+273.15)/300.15, m.BEX)
	return m
}

// MOSFET is a four-terminal MOS transistor using MOSModel. Gate
// capacitances are not part of the stamp; the macro builder adds explicit
// linear capacitors (see AddMOS in the builder helpers) so the transient
// engine sees charge storage while the DC stamp stays purely resistive.
type MOSFET struct {
	Label      string
	D, G, S, B NodeID
	Model      MOSModel
	// W and L are the channel width and length in metres.
	W, L float64
}

// Name implements Element.
func (m *MOSFET) Name() string { return m.Label }

// Nodes implements Element. Order: D, G, S, B.
func (m *MOSFET) Nodes() []NodeID { return []NodeID{m.D, m.G, m.S, m.B} }

// Retarget implements Element.
func (m *MOSFET) Retarget(i int, n NodeID) {
	switch i {
	case 0:
		m.D = n
	case 1:
		m.G = n
	case 2:
		m.S = n
	case 3:
		m.B = n
	default:
		panic(badTerminal(m.Label, i))
	}
}

// NumAux implements Element.
func (m *MOSFET) NumAux() int { return 0 }

// Linear implements Element.
func (m *MOSFET) Linear() bool { return false }

// mosParams caches the bias-independent quantities of eval so a stamp
// that evaluates the device several times (finite-difference Jacobian)
// computes them once. Every field is produced by exactly the expression
// eval historically used inline, so going through the cache leaves all
// results bit-identical.
type mosParams struct {
	sign     float64 // +1 NMOS frame, -1 PMOS
	vt0      float64 // threshold in the NMOS frame
	phi      float64
	sqrtPhi  float64 // math.Sqrt(Phi)
	gamma    float64
	lambda   float64
	beta     float64 // KP * W / L
	iwol     float64 // IOff * (W / L)
	pmosFlip bool
}

// params derives the evaluation constants from the model card and
// geometry. Called once per Stamp (or per standalone eval).
func (m *MOSFET) params() mosParams {
	mod := m.Model
	p := mosParams{
		sign:    1,
		vt0:     mod.VT0,
		phi:     mod.Phi,
		sqrtPhi: math.Sqrt(mod.Phi),
		gamma:   mod.Gamma,
		lambda:  mod.Lambda,
		beta:    mod.KP * m.W / m.L,
		iwol:    mod.IOff * (m.W / m.L),
	}
	if mod.PMOS {
		p.sign = -1
		p.vt0 = -mod.VT0 // in the NMOS frame the threshold is positive
		p.pmosFlip = true
	}
	return p
}

// thMemo is a one-entry memo for math.Tanh. Within one Stamp the
// gate- and bulk-perturbed finite-difference evaluations keep vds — and
// therefore the tanh argument — unchanged, so the memo collapses those
// transcendental calls. Identical argument, identical value: results
// stay bit-for-bit the same.
type thMemo struct {
	arg, val float64
	ok       bool
}

func (c *thMemo) tanh(x float64) float64 {
	if c.ok && x == c.arg {
		return c.val
	}
	c.arg, c.val, c.ok = x, math.Tanh(x), true
	return c.val
}

// idsP computes only the drain current for one bias point — the quantity
// the finite-difference stamp consumes from every evaluation. It is the
// ids computation of evalP with the small-signal branches removed; every
// expression it does evaluate is written (and ordered) exactly as in
// evalP, so the current is bit-identical.
func (m *MOSFET) idsP(p *mosParams, th *thMemo, vd, vg, vs, vb float64) float64 {
	if p.pmosFlip {
		vd, vg, vs, vb = -vd, -vg, -vs, -vb
	}
	flip := false
	if vd < vs {
		vd, vs = vs, vd
		flip = true
	}
	vgs := vg - vs
	vds := vd - vs
	vbs := vb - vs

	sb := p.phi - vbs
	if sb < 0.05 {
		sb = 0.05
	}
	vth := p.vt0 + p.gamma*(math.Sqrt(sb)-p.sqrtPhi)
	vov := vgs - vth
	leak := p.iwol * th.tanh(vds/0.1)
	ids := leak
	switch {
	case vov <= 0:
		// Cutoff: leakage only.
	case vds < vov:
		cm := 1 + p.lambda*vds
		ids = p.beta*(vov*vds-vds*vds/2)*cm + leak
	default:
		cm := 1 + p.lambda*vds
		ids = p.beta/2*vov*vov*cm + leak
	}
	if flip {
		ids = -ids
	}
	return ids * p.sign
}

// eval computes the drain current and small-signal conductances of the
// intrinsic device for terminal voltages vd, vg, vs, vb (all relative to
// ground), in the NMOS frame. Returns ids (current flowing D->S inside
// the device), gm = ∂I/∂Vgs, gds = ∂I/∂Vds, gmb = ∂I/∂Vbs.
func (m *MOSFET) eval(vd, vg, vs, vb float64) (ids, gm, gds, gmb float64) {
	p := m.params()
	var th thMemo
	return m.evalP(&p, &th, vd, vg, vs, vb)
}

// evalP is eval with the derived constants and tanh memo supplied by the
// caller; the arithmetic (expressions and their order) matches the
// original inline form exactly.
func (m *MOSFET) evalP(p *mosParams, th *thMemo, vd, vg, vs, vb float64) (ids, gm, gds, gmb float64) {
	if p.pmosFlip {
		// Evaluate the PMOS as an NMOS with inverted voltages.
		vd, vg, vs, vb = -vd, -vg, -vs, -vb
	}
	// Source-drain symmetry: operate with vds >= 0.
	flip := false
	if vd < vs {
		vd, vs = vs, vd
		flip = true
	}
	vgs := vg - vs
	vds := vd - vs
	vbs := vb - vs

	// Body effect (clamp the sqrt arguments).
	sb := p.phi - vbs
	if sb < 0.05 {
		sb = 0.05
	}
	vth := p.vt0 + p.gamma*(math.Sqrt(sb)-p.sqrtPhi)
	dvthdvbs := -p.gamma / (2 * math.Sqrt(sb))

	vov := vgs - vth
	// Off-state leakage, present in every region for continuity at the
	// cutoff boundary; tanh rolls it off smoothly through vds = 0.
	t := th.tanh(vds / 0.1)
	leak := p.iwol * t
	switch {
	case vov <= 0:
		// Cutoff: leakage only.
		ids = leak
		gds = p.iwol / 0.1 * (1 - t*t)
		gm = 0
		gmb = 0
	case vds < vov:
		// Linear (triode).
		cm := 1 + p.lambda*vds
		ids = p.beta*(vov*vds-vds*vds/2)*cm + leak
		gm = p.beta * vds * cm
		gds = p.beta*(vov-vds)*cm + p.beta*(vov*vds-vds*vds/2)*p.lambda
		gmb = gm * (-dvthdvbs)
	default:
		// Saturation.
		cm := 1 + p.lambda*vds
		ids = p.beta/2*vov*vov*cm + leak
		gm = p.beta * vov * cm
		gds = p.beta / 2 * vov * vov * p.lambda
		gmb = gm * (-dvthdvbs)
	}
	if flip {
		ids = -ids
		// After flipping, gm/gds/gmb refer to the swapped frame; the
		// caller-side stamp uses the original terminals, so express
		// derivatives versus the original voltages:
		// I(D,S swapped) = -I'(...), handled in Stamp via re-eval.
	}
	ids *= p.sign
	return ids, gm, gds, gmb
}

// Stamp implements Element with a Norton companion linearisation around
// the present iterate. Derivatives are taken numerically from eval, which
// sidesteps the sign bookkeeping of the polarity/source-swap frames and is
// robust for a model this cheap.
func (m *MOSFET) Stamp(ctx *Context, _ int) {
	vd, vg, vs, vb := ctx.XAt(m.D), ctx.XAt(m.G), ctx.XAt(m.S), ctx.XAt(m.B)
	const h = 1e-6
	// One parameter derivation and one tanh memo serve all five
	// evaluations. The gate- and bulk-perturbed points keep vds unchanged,
	// so evaluating them right after the base point lets the memo skip
	// their tanh; the drain/source perturbations shift vds and miss. Each
	// evaluation is a pure function, so reordering them changes nothing.
	p := m.params()
	var th thMemo
	i0 := m.idsP(&p, &th, vd, vg, vs, vb)
	ig1 := m.idsP(&p, &th, vd, vg+h, vs, vb)
	ib1 := m.idsP(&p, &th, vd, vg, vs, vb+h)
	id1 := m.idsP(&p, &th, vd+h, vg, vs, vb)
	is1 := m.idsP(&p, &th, vd, vg, vs+h, vb)
	gdd := (id1 - i0) / h
	gdg := (ig1 - i0) / h
	gds := (is1 - i0) / h
	gdb := (ib1 - i0) / h

	// Current flows D->S through the channel. MNA: I_D = +ids at drain
	// (leaving node into channel), I_S = -ids.
	// Linearised: i = i0 + gdd*(Vd-vd) + gdg*(Vg-vg) + gds*(Vs-vs) + gdb*(Vb-vb).
	ieq := i0 - gdd*vd - gdg*vg - gds*vs - gdb*vb

	dIdx := idx(m.D)
	sIdx := idx(m.S)
	stampRow := func(row int, signv float64) {
		if row < 0 {
			return
		}
		if j := idx(m.D); j >= 0 {
			ctx.AddA(row, j, signv*gdd)
		}
		if j := idx(m.G); j >= 0 {
			ctx.AddA(row, j, signv*gdg)
		}
		if j := idx(m.S); j >= 0 {
			ctx.AddA(row, j, signv*gds)
		}
		if j := idx(m.B); j >= 0 {
			ctx.AddA(row, j, signv*gdb)
		}
		ctx.AddB(row, -signv*ieq)
	}
	stampRow(dIdx, 1)
	stampRow(sIdx, -1)

	// Convergence aid: gmin from drain and source to ground.
	if ctx.Gmin > 0 {
		ctx.StampG(m.D, Ground, ctx.Gmin)
		ctx.StampG(m.S, Ground, ctx.Gmin)
	}
}

// Ids returns the channel current at the given solved node voltages
// (positive flowing D->S), for measurement purposes.
func (m *MOSFET) Ids(vd, vg, vs, vb float64) float64 {
	i, _, _, _ := m.eval(vd, vg, vs, vb)
	return i
}
