package digital

import (
	"testing"
	"testing/quick"
)

// halfAdder builds sum = a xor b, carry = a and b.
func halfAdder() *Circuit {
	c := &Circuit{Inputs: []string{"a", "b"}, Outputs: []string{"sum", "carry"}}
	c.AddGate("g1", Xor, "sum", "a", "b")
	c.AddGate("g2", And, "carry", "a", "b")
	return c
}

func TestGateFunctions(t *testing.T) {
	cases := []struct {
		ty   GateType
		in   []bool
		want bool
	}{
		{Buf, []bool{true}, true},
		{Not, []bool{true}, false},
		{And, []bool{true, true}, true},
		{And, []bool{true, false}, false},
		{Or, []bool{false, false}, false},
		{Or, []bool{true, false}, true},
		{Nand, []bool{true, true}, false},
		{Nor, []bool{false, false}, true},
		{Xor, []bool{true, true}, false},
		{Xor, []bool{true, false}, true},
	}
	for _, cse := range cases {
		c := &Circuit{Inputs: []string{"a", "b"}, Outputs: []string{"o"}}
		c.AddGate("g", cse.ty, "o", "a", "b")
		in := map[string]bool{"a": cse.in[0]}
		if len(cse.in) > 1 {
			in["b"] = cse.in[1]
		}
		res, err := c.Eval(in, Fault{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Values["o"] != cse.want {
			t.Errorf("%v(%v) = %v, want %v", cse.ty, cse.in, res.Values["o"], cse.want)
		}
	}
	if GateType(99).String() == "" || And.String() != "and" {
		t.Error("String")
	}
}

func TestHalfAdderTruthTable(t *testing.T) {
	c := halfAdder()
	for _, tc := range []struct{ a, b, sum, carry bool }{
		{false, false, false, false},
		{true, false, true, false},
		{false, true, true, false},
		{true, true, false, true},
	} {
		res, err := c.Eval(map[string]bool{"a": tc.a, "b": tc.b}, Fault{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Values["sum"] != tc.sum || res.Values["carry"] != tc.carry {
			t.Errorf("(%v,%v) -> %v,%v", tc.a, tc.b, res.Values["sum"], res.Values["carry"])
		}
		if res.IDDQ || res.Unstable {
			t.Error("fault-free eval must be quiet and stable")
		}
	}
}

func TestTopoOrderIndependent(t *testing.T) {
	// Gates added out of order must still evaluate correctly.
	c := &Circuit{Inputs: []string{"a"}, Outputs: []string{"o"}}
	c.AddGate("g2", Not, "o", "mid") // consumer first
	c.AddGate("g1", Not, "mid", "a")
	res, err := c.Eval(map[string]bool{"a": true}, Fault{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["o"] != true {
		t.Fatal("double inversion")
	}
}

func TestCombinationalLoopDetected(t *testing.T) {
	c := &Circuit{Inputs: []string{"a"}, Outputs: []string{"x"}}
	c.AddGate("g1", Not, "x", "y")
	c.AddGate("g2", Not, "y", "x")
	if _, err := c.Eval(map[string]bool{"a": true}, Fault{}); err == nil {
		t.Fatal("loop must be detected")
	}
}

func TestStuckAtInput(t *testing.T) {
	c := halfAdder()
	res, err := c.Eval(map[string]bool{"a": true, "b": false},
		Fault{Kind: StuckAt, Net: "a", Val: false})
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["sum"] != false {
		t.Fatal("stuck-at-0 on a must force sum low")
	}
}

func TestStuckAtOutputNet(t *testing.T) {
	c := halfAdder()
	res, err := c.Eval(map[string]bool{"a": true, "b": true},
		Fault{Kind: StuckAt, Net: "carry", Val: false})
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["carry"] != false {
		t.Fatal("stuck-at on gate output must hold")
	}
}

func TestBridgeIDDQ(t *testing.T) {
	c := halfAdder()
	// a=1, b=0: sum=1, carry=0 → bridging sum/carry drives opposite
	// values → IDDQ flag and wired-AND pulls both low.
	res, err := c.Eval(map[string]bool{"a": true, "b": false},
		Fault{Kind: Bridge, Net: "sum", Net2: "carry"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.IDDQ {
		t.Fatal("opposing bridge must raise IDDQ")
	}
	if res.Values["sum"] != false || res.Values["carry"] != false {
		t.Fatal("wired-AND must pull both low")
	}
	// a=b=1: sum=0, carry=1 → also opposing.
	res2, _ := c.Eval(map[string]bool{"a": true, "b": true},
		Fault{Kind: Bridge, Net: "sum", Net2: "carry"})
	if !res2.IDDQ {
		t.Fatal("opposing values second case")
	}
	// a=b=0: sum=0, carry=0 → agreeing: no IDDQ, no logic change.
	res3, _ := c.Eval(map[string]bool{"a": false, "b": false},
		Fault{Kind: Bridge, Net: "sum", Net2: "carry"})
	if res3.IDDQ {
		t.Fatal("agreeing bridge must be quiet")
	}
}

func TestBridgeFeedbackUnstable(t *testing.T) {
	// Bridging a net to its own inversion cannot settle.
	c := &Circuit{Inputs: []string{"a"}, Outputs: []string{"o"}}
	c.AddGate("g1", Not, "o", "a")
	res, err := c.Eval(map[string]bool{"a": true},
		Fault{Kind: Bridge, Net: "a", Net2: "o"})
	if err != nil {
		t.Fatal(err)
	}
	// a=1 → o=0 → bridge pulls a to 0 → o=1 → conflict again.
	if !res.IDDQ {
		t.Fatal("oscillating bridge must raise IDDQ")
	}
	_ = res.Unstable // oscillation may or may not settle via wired-AND; IDDQ is the guarantee
}

func TestIDDQOnlyFault(t *testing.T) {
	c := halfAdder()
	res, err := c.Eval(map[string]bool{"a": true, "b": true}, Fault{IDDQOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.IDDQ {
		t.Fatal("IDDQ-only fault must flag")
	}
	if res.Values["sum"] != false || res.Values["carry"] != true {
		t.Fatal("IDDQ-only fault must not change logic")
	}
}

func TestNets(t *testing.T) {
	c := halfAdder()
	nets := c.Nets()
	want := []string{"a", "b", "carry", "sum"}
	if len(nets) != len(want) {
		t.Fatalf("Nets = %v", nets)
	}
	for i := range want {
		if nets[i] != want[i] {
			t.Fatalf("Nets = %v", nets)
		}
	}
}

// Property: for a chain of inverters, output parity matches chain length,
// and a stuck-at anywhere forces a computable value.
func TestQuickInverterChain(t *testing.T) {
	f := func(nRaw uint8, in bool, stuckPos uint8, stuckVal bool) bool {
		n := int(nRaw%10) + 1
		c := &Circuit{Inputs: []string{netN(0)}, Outputs: []string{netN(n)}}
		for i := 0; i < n; i++ {
			c.AddGate(netN(i+1)+"g", Not, netN(i+1), netN(i))
		}
		res, err := c.Eval(map[string]bool{netN(0): in}, Fault{})
		if err != nil {
			return false
		}
		want := in != (n%2 == 1)
		if res.Values[netN(n)] != want {
			return false
		}
		// Stuck-at at position p: downstream value determined by parity
		// from there.
		p := int(stuckPos) % (n + 1)
		res2, err := c.Eval(map[string]bool{netN(0): in},
			Fault{Kind: StuckAt, Net: netN(p), Val: stuckVal})
		if err != nil {
			return false
		}
		want2 := stuckVal != ((n-p)%2 == 1)
		return res2.Values[netN(n)] == want2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func netN(i int) string {
	return "n" + string(rune('0'+i/10)) + string(rune('0'+i%10))
}
