// Package digital is a small gate-level logic simulator with the fault
// models the decoder macro's defect-oriented analysis needs: stuck-at
// faults (from opens and supply shorts) and bridging faults between
// signal nets (from extra-material defects), the latter flagging an IDDQ
// violation whenever the bridged nets are driven to opposite values — the
// classic quiescent-current detection mechanism for digital CMOS.
package digital

import (
	"fmt"
	"sort"
	"sync"
)

// GateType enumerates the supported gate functions.
type GateType int

// Gate functions. Inputs beyond the gate's arity are ignored.
const (
	Buf GateType = iota
	Not
	And
	Or
	Nand
	Nor
	Xor
)

// String implements fmt.Stringer.
func (g GateType) String() string {
	switch g {
	case Buf:
		return "buf"
	case Not:
		return "not"
	case And:
		return "and"
	case Or:
		return "or"
	case Nand:
		return "nand"
	case Nor:
		return "nor"
	case Xor:
		return "xor"
	}
	return fmt.Sprintf("gate(%d)", int(g))
}

// Gate drives one output net from input nets.
type Gate struct {
	Name string
	Type GateType
	Out  string
	In   []string
}

// eval computes the gate function.
func (g *Gate) eval(v map[string]bool) bool {
	switch g.Type {
	case Buf:
		return v[g.In[0]]
	case Not:
		return !v[g.In[0]]
	case And, Nand:
		out := true
		for _, in := range g.In {
			out = out && v[in]
		}
		if g.Type == Nand {
			return !out
		}
		return out
	case Or, Nor:
		out := false
		for _, in := range g.In {
			out = out || v[in]
		}
		if g.Type == Nor {
			return !out
		}
		return out
	case Xor:
		out := false
		for _, in := range g.In {
			out = out != v[in]
		}
		return out
	}
	return false
}

// FaultKind selects the digital fault model.
type FaultKind int

const (
	// FaultNone: fault-free evaluation.
	FaultNone FaultKind = iota
	// StuckAt forces net Net to Val.
	StuckAt
	// Bridge wire-ANDs nets Net and Net2 and raises the IDDQ flag when
	// they are driven to opposite values.
	Bridge
)

// Fault is a digital fault instance.
type Fault struct {
	Kind FaultKind
	Net  string
	Net2 string
	Val  bool
	// IDDQOnly marks a defect (junction pinhole, parasitic device) that
	// raises quiescent current without any logic effect.
	IDDQOnly bool
}

// Circuit is a feed-forward gate network. Once built, a Circuit is safe
// for concurrent Eval calls: the lazily computed topological order is
// mutex-guarded (the decoder macro shares one Circuit across parallel
// fault-class analyses).
type Circuit struct {
	Inputs  []string
	Outputs []string
	Gates   []*Gate

	mu      sync.Mutex
	ordered []*Gate
}

// AddGate appends a gate.
func (c *Circuit) AddGate(name string, t GateType, out string, in ...string) {
	c.Gates = append(c.Gates, &Gate{Name: name, Type: t, Out: out, In: in})
	c.mu.Lock()
	c.ordered = nil
	c.mu.Unlock()
}

// Nets returns the sorted names of all nets (inputs and gate outputs).
func (c *Circuit) Nets() []string {
	set := map[string]bool{}
	for _, in := range c.Inputs {
		set[in] = true
	}
	for _, g := range c.Gates {
		set[g.Out] = true
		for _, in := range g.In {
			set[in] = true
		}
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// topo orders gates so that every gate follows its drivers and returns
// the order. Returns an error on combinational loops (which cannot occur
// in a well-formed decoder but can be created by severe faults
// elsewhere).
func (c *Circuit) topo() ([]*Gate, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ordered != nil {
		return c.ordered, nil
	}
	driver := map[string]*Gate{}
	for _, g := range c.Gates {
		driver[g.Out] = g
	}
	state := map[*Gate]int{} // 0 unseen, 1 visiting, 2 done
	var order []*Gate
	var visit func(g *Gate) error
	visit = func(g *Gate) error {
		switch state[g] {
		case 1:
			return fmt.Errorf("digital: combinational loop at %s", g.Name)
		case 2:
			return nil
		}
		state[g] = 1
		for _, in := range g.In {
			if d, ok := driver[in]; ok {
				if err := visit(d); err != nil {
					return err
				}
			}
		}
		state[g] = 2
		order = append(order, g)
		return nil
	}
	for _, g := range c.Gates {
		if err := visit(g); err != nil {
			return nil, err
		}
	}
	c.ordered = order
	return order, nil
}

// Result of one faulty evaluation.
type Result struct {
	// Values maps every net to its settled value.
	Values map[string]bool
	// IDDQ reports an elevated quiescent current (bridge driven to
	// opposite values, or an IDDQ-only defect).
	IDDQ bool
	// Unstable reports that the bridge created an unresolvable conflict
	// (values did not settle); outputs are then unreliable.
	Unstable bool
}

// Eval computes the circuit response to the given input assignment under
// fault f (pass Fault{} for fault-free). Bridges are wired-AND and
// evaluated to a fixpoint.
func (c *Circuit) Eval(in map[string]bool, f Fault) (*Result, error) {
	ordered, err := c.topo()
	if err != nil {
		return nil, err
	}
	v := map[string]bool{}
	for _, name := range c.Inputs {
		v[name] = in[name]
	}
	res := &Result{}
	if f.IDDQOnly {
		res.IDDQ = true
	}
	apply := func() {
		if f.Kind == StuckAt {
			v[f.Net] = f.Val
		}
	}
	apply()
	const maxPasses = 4
	for pass := 0; pass < maxPasses; pass++ {
		changed := false
		for _, g := range ordered {
			nv := g.eval(v)
			// Stuck-at overrides gate outputs too.
			if f.Kind == StuckAt && g.Out == f.Net {
				nv = f.Val
			}
			if old, ok := v[g.Out]; !ok || old != nv {
				v[g.Out] = nv
				changed = true
			}
		}
		if f.Kind == Bridge {
			a, b := v[f.Net], v[f.Net2]
			if a != b {
				res.IDDQ = true
				// Wired-AND resolution.
				v[f.Net] = a && b
				v[f.Net2] = a && b
				changed = true
			}
		}
		if !changed {
			res.Values = v
			return res, nil
		}
	}
	res.Values = v
	res.Unstable = true
	return res, nil
}
