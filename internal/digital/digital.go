// Package digital is a small gate-level logic simulator with the fault
// models the decoder macro's defect-oriented analysis needs: stuck-at
// faults (from opens and supply shorts) and bridging faults between
// signal nets (from extra-material defects), the latter flagging an IDDQ
// violation whenever the bridged nets are driven to opposite values — the
// classic quiescent-current detection mechanism for digital CMOS.
package digital

import (
	"fmt"
	"sort"
	"sync"
)

// GateType enumerates the supported gate functions.
type GateType int

// Gate functions. Inputs beyond the gate's arity are ignored.
const (
	Buf GateType = iota
	Not
	And
	Or
	Nand
	Nor
	Xor
)

// String implements fmt.Stringer.
func (g GateType) String() string {
	switch g {
	case Buf:
		return "buf"
	case Not:
		return "not"
	case And:
		return "and"
	case Or:
		return "or"
	case Nand:
		return "nand"
	case Nor:
		return "nor"
	case Xor:
		return "xor"
	}
	return fmt.Sprintf("gate(%d)", int(g))
}

// Gate drives one output net from input nets.
type Gate struct {
	Name string
	Type GateType
	Out  string
	In   []string
}

// FaultKind selects the digital fault model.
type FaultKind int

const (
	// FaultNone: fault-free evaluation.
	FaultNone FaultKind = iota
	// StuckAt forces net Net to Val.
	StuckAt
	// Bridge wire-ANDs nets Net and Net2 and raises the IDDQ flag when
	// they are driven to opposite values.
	Bridge
)

// Fault is a digital fault instance.
type Fault struct {
	Kind FaultKind
	Net  string
	Net2 string
	Val  bool
	// IDDQOnly marks a defect (junction pinhole, parasitic device) that
	// raises quiescent current without any logic effect.
	IDDQOnly bool
}

// Circuit is a feed-forward gate network. Once built, a Circuit is safe
// for concurrent Eval calls: the lazily computed topological order and
// compiled index program are mutex-guarded (the decoder macro shares
// one Circuit across parallel fault-class analyses).
type Circuit struct {
	Inputs  []string
	Outputs []string
	Gates   []*Gate

	mu      sync.Mutex
	ordered []*Gate
	prog    *program
}

// AddGate appends a gate.
func (c *Circuit) AddGate(name string, t GateType, out string, in ...string) {
	c.Gates = append(c.Gates, &Gate{Name: name, Type: t, Out: out, In: in})
	c.mu.Lock()
	c.ordered = nil
	c.prog = nil
	c.mu.Unlock()
}

// Nets returns the sorted names of all nets (inputs and gate outputs).
func (c *Circuit) Nets() []string {
	set := map[string]bool{}
	for _, in := range c.Inputs {
		set[in] = true
	}
	for _, g := range c.Gates {
		set[g.Out] = true
		for _, in := range g.In {
			set[in] = true
		}
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// topo orders gates so that every gate follows its drivers and returns
// the order. Returns an error on combinational loops (which cannot occur
// in a well-formed decoder but can be created by severe faults
// elsewhere).
func (c *Circuit) topo() ([]*Gate, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ordered != nil {
		return c.ordered, nil
	}
	driver := map[string]*Gate{}
	for _, g := range c.Gates {
		driver[g.Out] = g
	}
	state := map[*Gate]int{} // 0 unseen, 1 visiting, 2 done
	var order []*Gate
	var visit func(g *Gate) error
	visit = func(g *Gate) error {
		switch state[g] {
		case 1:
			return fmt.Errorf("digital: combinational loop at %s", g.Name)
		case 2:
			return nil
		}
		state[g] = 1
		for _, in := range g.In {
			if d, ok := driver[in]; ok {
				if err := visit(d); err != nil {
					return err
				}
			}
		}
		state[g] = 2
		order = append(order, g)
		return nil
	}
	for _, g := range c.Gates {
		if err := visit(g); err != nil {
			return nil, err
		}
	}
	c.ordered = order
	return order, nil
}

// program is the compiled, index-addressed form of the network — the
// gate-level analogue of the analog side's compile-once/revalue-many
// split. Net names resolve to dense slot indices once; evaluation then
// runs over slices with no map traffic and no name formatting.
type program struct {
	index map[string]int // net name → slot
	nets  []string       // slot → net name (Values reconstruction)
	in    []int          // slot per Circuit.Inputs entry, in order
	gates []pgate        // topological order, index-resolved
}

type pgate struct {
	typ GateType
	out int32
	in  []int32
}

// compiled returns the circuit's index program, building it on first
// use (invalidated by AddGate, like the topological order).
func (c *Circuit) compiled() (*program, error) {
	ordered, err := c.topo()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.prog != nil {
		return c.prog, nil
	}
	p := &program{index: map[string]int{}}
	slot := func(name string) int32 {
		i, ok := p.index[name]
		if !ok {
			i = len(p.nets)
			p.index[name] = i
			p.nets = append(p.nets, name)
		}
		return int32(i)
	}
	for _, name := range c.Inputs {
		p.in = append(p.in, int(slot(name)))
	}
	p.gates = make([]pgate, len(ordered))
	for gi, g := range ordered {
		pg := pgate{typ: g.Type, out: slot(g.Out), in: make([]int32, len(g.In))}
		for i, in := range g.In {
			pg.in[i] = slot(in)
		}
		p.gates[gi] = pg
	}
	c.prog = p
	return p, nil
}

// NetIndex resolves a net name to its evaluation slot (-1, false when
// the circuit has no such net). The index is stable until AddGate.
func (c *Circuit) NetIndex(name string) (int, bool) {
	p, err := c.compiled()
	if err != nil {
		return -1, false
	}
	i, ok := p.index[name]
	if !ok {
		return -1, false
	}
	return i, ok
}

// Scratch is reusable single-goroutine evaluation state for EvalInto.
// Reset it, set the input slots, evaluate, read output slots — no
// allocation after construction.
type Scratch struct {
	val []bool
	def []bool
}

// NewScratch returns a scratch sized for the circuit's current net set.
func (c *Circuit) NewScratch() (*Scratch, error) {
	p, err := c.compiled()
	if err != nil {
		return nil, err
	}
	return &Scratch{val: make([]bool, len(p.nets)), def: make([]bool, len(p.nets))}, nil
}

// Reset clears every slot to undefined/false.
func (s *Scratch) Reset() {
	for i := range s.val {
		s.val[i] = false
		s.def[i] = false
	}
}

// Set assigns slot idx (use before EvalInto for input nets).
func (s *Scratch) Set(idx int, v bool) {
	s.val[idx] = v
	s.def[idx] = true
}

// Val reads slot idx after EvalInto.
func (s *Scratch) Val(idx int) bool { return s.val[idx] }

func (p *pgate) eval(val []bool) bool {
	switch p.typ {
	case Buf:
		return val[p.in[0]]
	case Not:
		return !val[p.in[0]]
	case And, Nand:
		out := true
		for _, in := range p.in {
			out = out && val[in]
		}
		if p.typ == Nand {
			return !out
		}
		return out
	case Or, Nor:
		out := false
		for _, in := range p.in {
			out = out || val[in]
		}
		if p.typ == Nor {
			return !out
		}
		return out
	case Xor:
		out := false
		for _, in := range p.in {
			out = out != val[in]
		}
		return out
	}
	return false
}

// EvalInto evaluates the circuit over the scratch's slots under fault f:
// the allocation-free core of Eval. Input slots must be Set by the
// caller (an unset input reads false, as Eval's missing map key does);
// gate outputs land in the scratch for Val. The returned flags mirror
// Result.IDDQ and Result.Unstable. Fault nets absent from the circuit
// read false and absorb writes, matching the map semantics for every
// observable output.
func (c *Circuit) EvalInto(s *Scratch, f Fault) (iddq, unstable bool, err error) {
	p, err := c.compiled()
	if err != nil {
		return false, false, err
	}
	slot := func(name string) int {
		if i, ok := p.index[name]; ok {
			return i
		}
		return -1
	}
	read := func(idx int) bool { return idx >= 0 && s.val[idx] }
	write := func(idx int, v bool) {
		if idx >= 0 {
			s.val[idx] = v
			s.def[idx] = true
		}
	}
	fNet, fNet2 := -1, -1
	if f.Kind != FaultNone {
		fNet = slot(f.Net)
		if f.Kind == Bridge {
			fNet2 = slot(f.Net2)
		}
	}
	if f.IDDQOnly {
		iddq = true
	}
	if f.Kind == StuckAt {
		write(fNet, f.Val)
	}
	const maxPasses = 4
	for pass := 0; pass < maxPasses; pass++ {
		changed := false
		for gi := range p.gates {
			g := &p.gates[gi]
			nv := g.eval(s.val)
			if f.Kind == StuckAt && g.out == int32(fNet) {
				nv = f.Val
			}
			if !s.def[g.out] || s.val[g.out] != nv {
				s.val[g.out] = nv
				s.def[g.out] = true
				changed = true
			}
		}
		if f.Kind == Bridge {
			a, b := read(fNet), read(fNet2)
			if a != b {
				iddq = true
				// Wired-AND resolution.
				write(fNet, a && b)
				write(fNet2, a && b)
				changed = true
			}
		}
		if !changed {
			return iddq, false, nil
		}
	}
	return iddq, true, nil
}

// Result of one faulty evaluation.
type Result struct {
	// Values maps every net to its settled value.
	Values map[string]bool
	// IDDQ reports an elevated quiescent current (bridge driven to
	// opposite values, or an IDDQ-only defect).
	IDDQ bool
	// Unstable reports that the bridge created an unresolvable conflict
	// (values did not settle); outputs are then unreliable.
	Unstable bool
}

// Eval computes the circuit response to the given input assignment under
// fault f (pass Fault{} for fault-free). Bridges are wired-AND and
// evaluated to a fixpoint. Eval is the map-shaped convenience wrapper
// over EvalInto; hot paths (the decoder's per-level sweep) hold a
// Scratch and call EvalInto directly.
func (c *Circuit) Eval(in map[string]bool, f Fault) (*Result, error) {
	s, err := c.NewScratch()
	if err != nil {
		return nil, err
	}
	p, _ := c.compiled()
	for _, idx := range p.in {
		s.Set(idx, in[p.nets[idx]])
	}
	iddq, unstable, err := c.EvalInto(s, f)
	if err != nil {
		return nil, err
	}
	res := &Result{Values: map[string]bool{}, IDDQ: iddq, Unstable: unstable}
	for idx, def := range s.def {
		if def {
			res.Values[p.nets[idx]] = s.val[idx]
		}
	}
	// A stuck-at on a net the circuit does not contain still lands in
	// the value map (it just drives nothing), as it always has.
	if f.Kind == StuckAt {
		if _, ok := p.index[f.Net]; !ok {
			res.Values[f.Net] = f.Val
		}
	}
	return res, nil
}
