package process

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDefaultProcessSane(t *testing.T) {
	p := Default()
	if p.Name == "" || p.Lambda <= 0 {
		t.Fatal("missing name or lambda")
	}
	if len(p.Defects) == 0 {
		t.Fatal("no defect mechanisms")
	}
	for _, d := range p.Defects {
		if d.Density <= 0 {
			t.Errorf("%v: non-positive density", d.Type)
		}
		if d.D0 <= 0 || d.Dmax <= d.D0 {
			t.Errorf("%v: bad size params D0=%g Dmax=%g", d.Type, d.D0, d.Dmax)
		}
	}
	for _, l := range []Layer{Metal1, Metal2, Poly, NDiff, PDiff} {
		if p.ShortRes[l] <= 0 {
			t.Errorf("no short resistance for %v", l)
		}
	}
	// Paper values.
	if p.ShortRes[Metal1] != 0.2 {
		t.Errorf("metal short = %g, want 0.2", p.ShortRes[Metal1])
	}
	if p.ExtraContactRes != 2 {
		t.Errorf("extra contact = %g, want 2", p.ExtraContactRes)
	}
	if p.PinholeRes != 2000 {
		t.Errorf("pinhole = %g, want 2000", p.PinholeRes)
	}
	if p.NonCatRes != 500 || p.NonCatCap != 1e-15 {
		t.Errorf("non-cat model = %g/%g, want 500/1e-15", p.NonCatRes, p.NonCatCap)
	}
}

func TestMetallisationDominates(t *testing.T) {
	p := Default()
	var metal, total float64
	for _, d := range p.Defects {
		total += d.Density
		if d.Type == ExtraMaterial && (d.Layer == Metal1 || d.Layer == Metal2) {
			metal += d.Density
		}
	}
	if metal/total < 0.5 {
		t.Fatalf("extra metal density fraction = %.2f, want > 0.5 (paper: metallisation dominates)", metal/total)
	}
}

func TestLayerString(t *testing.T) {
	for l := Layer(0); int(l) < NumLayers; l++ {
		if s := l.String(); s == "" || s[0] == 'l' && s != "layer(…)" && len(s) > 8 && s[:6] == "layer(" {
			t.Errorf("layer %d has placeholder name %q", int(l), s)
		}
	}
	if Layer(99).String() != "layer(99)" {
		t.Error("unknown layer formatting")
	}
	if DefectType(99).String() != "defect(99)" {
		t.Error("unknown defect formatting")
	}
}

func TestConducting(t *testing.T) {
	want := map[Layer]bool{
		NDiff: true, PDiff: true, Poly: true, Metal1: true, Metal2: true,
		Contact: false, Via: false, NWell: false,
	}
	for l, w := range want {
		if l.Conducting() != w {
			t.Errorf("%v.Conducting() = %v, want %v", l, !w, w)
		}
	}
}

func TestPickDefectDistribution(t *testing.T) {
	p := Default()
	rng := rand.New(rand.NewSource(7))
	counts := map[DefectType]int{}
	const n = 200000
	for i := 0; i < n; i++ {
		counts[p.PickDefect(rng).Type]++
	}
	// Empirical frequencies must match density ratios within 2%.
	densByType := map[DefectType]float64{}
	for _, d := range p.Defects {
		densByType[d.Type] += d.Density
	}
	total := p.TotalDensity()
	for ty, dens := range densByType {
		want := dens / total
		got := float64(counts[ty]) / n
		if math.Abs(got-want) > 0.02 {
			t.Errorf("%v: freq %.4f, want %.4f", ty, got, want)
		}
	}
}

func TestSampleDiameterBounds(t *testing.T) {
	spec := DefectSpec{Type: ExtraMaterial, Layer: Metal1, Density: 1, D0: 1.2, Dmax: 12}
	rng := rand.New(rand.NewSource(3))
	var below, above int
	for i := 0; i < 100000; i++ {
		d := spec.SampleDiameter(rng)
		if d <= 0 || d > spec.Dmax {
			t.Fatalf("diameter %g outside (0,%g]", d, spec.Dmax)
		}
		if d < spec.D0 {
			below++
		}
		if d > 3*spec.D0 {
			above++
		}
	}
	// Half the mass sits below the peak.
	if f := float64(below) / 100000; math.Abs(f-0.5) > 0.02 {
		t.Errorf("mass below peak = %.3f, want ~0.5", f)
	}
	// The 1/x³ tail decays: beyond 3×D0 only 1/9 of the tail mass remains
	// (before truncation), i.e. ~5.6% of total.
	if f := float64(above) / 100000; f > 0.09 || f < 0.02 {
		t.Errorf("tail mass beyond 3*D0 = %.3f, want ≈ 0.056", f)
	}
}

// Property: sampled diameters always respect (0, Dmax] for arbitrary valid
// spec parameters.
func TestQuickSampleDiameter(t *testing.T) {
	f := func(seed int64, d0raw, spanRaw uint8) bool {
		d0 := 0.1 + float64(d0raw%40)/10
		dmax := d0 * (1.5 + float64(spanRaw%80)/10)
		spec := DefectSpec{D0: d0, Dmax: dmax}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 50; i++ {
			x := spec.SampleDiameter(rng)
			if !(x > 0) || x > dmax+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPickDefectDeterministic(t *testing.T) {
	p := Default()
	a := rand.New(rand.NewSource(42))
	b := rand.New(rand.NewSource(42))
	for i := 0; i < 100; i++ {
		da, db := p.PickDefect(a), p.PickDefect(b)
		if da != db {
			t.Fatal("same seed must give same defect sequence")
		}
	}
}
