// Package process describes the fabrication process the defect simulator
// needs: the layer stack, material resistances for short/contact/pinhole
// fault models, per-defect-type densities, and the spot-defect size
// distribution.
//
// The default process mirrors the paper's setting: a 1 µm double-metal CMOS
// process in which the majority of spot defects are extra-material defects
// in the metallisation steps, and the fault-model resistances follow the
// paper's Table of values (0.2 Ω metal shorts, higher-ohmic polysilicon and
// diffusion shorts, 2 Ω extra contacts, 2 kΩ oxide/junction pinholes).
package process

import (
	"fmt"
	"math"
	"math/rand"
)

// Layer identifies a mask/physical layer of the layout.
type Layer int

// The layer stack of the default double-metal CMOS process. NDiff and PDiff
// are the active areas of NMOS and PMOS devices; Poly forms gates and local
// interconnect; Metal1/Metal2 carry most routing; Contact and Via are the
// vertical connections.
const (
	NDiff Layer = iota
	PDiff
	Poly
	Metal1
	Metal2
	Contact // metal1 to poly/diffusion
	Via     // metal1 to metal2
	NWell
	numLayers
)

// NumLayers is the number of distinct layers.
const NumLayers = int(numLayers)

// String implements fmt.Stringer.
func (l Layer) String() string {
	switch l {
	case NDiff:
		return "ndiff"
	case PDiff:
		return "pdiff"
	case Poly:
		return "poly"
	case Metal1:
		return "metal1"
	case Metal2:
		return "metal2"
	case Contact:
		return "contact"
	case Via:
		return "via"
	case NWell:
		return "nwell"
	}
	return fmt.Sprintf("layer(%d)", int(l))
}

// Conducting reports whether the layer is a conductor on which extra
// material causes bridges and missing material causes opens.
func (l Layer) Conducting() bool {
	switch l {
	case NDiff, PDiff, Poly, Metal1, Metal2:
		return true
	}
	return false
}

// DefectType enumerates the spot-defect mechanisms of the VLASIC
// catastrophic defect simulator reproduced here. The list is exactly the
// fault-mechanism breakdown of the paper's Table 1.
type DefectType int

const (
	// ExtraMaterial is a disk of unwanted conductor on one layer; it
	// causes shorts between nets routed close together.
	ExtraMaterial DefectType = iota
	// MissingMaterial is a disk of absent conductor; it causes opens when
	// it severs a wire, and shorted devices when it removes gate poly.
	MissingMaterial
	// GateOxidePinhole is a rupture of the thin gate oxide, connecting a
	// transistor gate resistively to the channel/source/drain.
	GateOxidePinhole
	// JunctionPinhole is a leaky source/drain junction, connecting the
	// diffusion resistively to the bulk (substrate or well).
	JunctionPinhole
	// ThickOxidePinhole is a rupture of the field/inter-level oxide,
	// connecting vertically adjacent conductors.
	ThickOxidePinhole
	// ExtraContact is an unwanted vertical connection at a spot where two
	// conductors cross (a parasitic contact/via).
	ExtraContact
	// ExtraPoly over diffusion splits the diffusion and creates a new
	// parasitic device ("new device" in the paper).
	ExtraPoly
	numDefectTypes
)

// NumDefectTypes is the number of distinct defect mechanisms.
const NumDefectTypes = int(numDefectTypes)

// String implements fmt.Stringer.
func (t DefectType) String() string {
	switch t {
	case ExtraMaterial:
		return "extra-material"
	case MissingMaterial:
		return "missing-material"
	case GateOxidePinhole:
		return "gate-oxide-pinhole"
	case JunctionPinhole:
		return "junction-pinhole"
	case ThickOxidePinhole:
		return "thick-oxide-pinhole"
	case ExtraContact:
		return "extra-contact"
	case ExtraPoly:
		return "extra-poly"
	}
	return fmt.Sprintf("defect(%d)", int(t))
}

// DefectSpec describes one defect mechanism: which layer it attacks, its
// relative density (defects per unit area, arbitrary consistent units) and
// its size distribution parameters.
type DefectSpec struct {
	Type  DefectType
	Layer Layer // the attacked conductor (for pinholes: the upper conductor / diffusion)
	// Density is the relative likelihood of this mechanism per unit layout
	// area. Only ratios matter for fault statistics.
	Density float64
	// D0 is the most likely defect diameter (µm); Dmax bounds the tail.
	D0, Dmax float64
}

// Process bundles everything the defect simulator and fault modeller need.
type Process struct {
	// Name identifies the process.
	Name string
	// Lambda is the feature half-pitch in µm (layout DSL uses multiples).
	Lambda float64
	// Defects lists the active defect mechanisms with densities.
	Defects []DefectSpec
	// ShortRes maps a conductor layer to the resistance (Ω) of an
	// extra-material bridge on that layer.
	ShortRes map[Layer]float64
	// ExtraContactRes is the resistance of a parasitic vertical contact.
	ExtraContactRes float64
	// PinholeRes is the resistance of gate-oxide/junction/thick-oxide
	// pinholes.
	PinholeRes float64
	// ShortedDeviceRes is the drain-source resistance of a "shorted
	// device" fault (missing gate poly).
	ShortedDeviceRes float64
	// NonCatRes and NonCatCap define the near-miss (non-catastrophic)
	// fault model evolved from catastrophic shorts and extra contacts:
	// a parallel R-C of 500 Ω and 1 fF in the paper.
	NonCatRes float64
	NonCatCap float64
}

// Default returns the 1 µm double-metal CMOS process used throughout the
// reproduction. Densities follow the qualitative statement of the paper:
// "the majority of the spot defects in the fabrication process consist of
// extra material defects in the metallization steps"; gate-oxide and
// junction pinholes are the next most important mechanisms, opens are rare.
func Default() *Process {
	return &Process{
		Name:   "cmos1um-2m",
		Lambda: 0.5,
		Defects: []DefectSpec{
			// Extra material: metallisation dominates.
			{Type: ExtraMaterial, Layer: Metal1, Density: 38, D0: 1.2, Dmax: 12},
			{Type: ExtraMaterial, Layer: Metal2, Density: 30, D0: 1.5, Dmax: 14},
			{Type: ExtraMaterial, Layer: Poly, Density: 7, D0: 0.9, Dmax: 8},
			{Type: ExtraMaterial, Layer: NDiff, Density: 2.0, D0: 0.9, Dmax: 8},
			{Type: ExtraMaterial, Layer: PDiff, Density: 2.0, D0: 0.9, Dmax: 8},
			// Missing material: far less likely to cause faults (a
			// fault needs the full wire width covered).
			{Type: MissingMaterial, Layer: Metal1, Density: 3.0, D0: 1.1, Dmax: 10},
			{Type: MissingMaterial, Layer: Metal2, Density: 2.5, D0: 1.4, Dmax: 10},
			{Type: MissingMaterial, Layer: Poly, Density: 1.2, D0: 0.9, Dmax: 6},
			// Oxide and junction pinholes.
			{Type: GateOxidePinhole, Layer: Poly, Density: 2.2, D0: 0.3, Dmax: 1},
			{Type: JunctionPinhole, Layer: NDiff, Density: 1.4, D0: 0.3, Dmax: 1},
			{Type: ThickOxidePinhole, Layer: Metal1, Density: 0.5, D0: 0.3, Dmax: 1},
			// Parasitic contacts and parasitic devices.
			{Type: ExtraContact, Layer: Contact, Density: 0.8, D0: 0.4, Dmax: 2},
			{Type: ExtraPoly, Layer: Poly, Density: 0.6, D0: 1.0, Dmax: 6},
		},
		ShortRes: map[Layer]float64{
			Metal1: 0.2,
			Metal2: 0.2,
			Poly:   25, // polysilicon bridge
			NDiff:  60, // diffusion bridge
			PDiff:  80,
		},
		ExtraContactRes:  2,
		PinholeRes:       2000,
		ShortedDeviceRes: 8,
		NonCatRes:        500,
		NonCatCap:        1e-15,
	}
}

// TotalDensity returns the sum of all mechanism densities; used to pick a
// mechanism proportionally during Monte Carlo sprinkling.
func (p *Process) TotalDensity() float64 {
	var s float64
	for _, d := range p.Defects {
		s += d.Density
	}
	return s
}

// PickDefect selects a defect mechanism with probability proportional to
// its density, using rng.
func (p *Process) PickDefect(rng *rand.Rand) DefectSpec {
	u := rng.Float64() * p.TotalDensity()
	for _, d := range p.Defects {
		u -= d.Density
		if u <= 0 {
			return d
		}
	}
	return p.Defects[len(p.Defects)-1]
}

// SampleDiameter draws a defect diameter from the classical spot-defect
// size distribution: linear rise below the peak D0 and a 1/x³ tail above
// it, truncated at Dmax. The distribution is sampled by inversion.
func (s DefectSpec) SampleDiameter(rng *rand.Rand) float64 {
	// Split probability mass: rise carries pRise, tail carries 1-pRise.
	// For f(x) = 2x/D0² on (0,D0] and f(x) = 2D0²/x³ on (D0,∞) the mass
	// below the peak is 1/2 of total before truncation; keep that split.
	const pRise = 0.5
	u := rng.Float64()
	if u < pRise {
		// CDF of rise: (x/D0)², inverse: D0*sqrt(u').
		return s.D0 * math.Sqrt(u/pRise)
	}
	// Tail CDF on (D0, Dmax]: (1 - D0²/x²)/(1 - D0²/Dmax²).
	v := (u - pRise) / (1 - pRise)
	k := 1 - s.D0*s.D0/(s.Dmax*s.Dmax)
	x := s.D0 / math.Sqrt(1-v*k)
	if x > s.Dmax {
		x = s.Dmax
	}
	return x
}
