// Package worker is the remote campaign worker behind cmd/campaignw: it
// connects to a campaignd daemon, long-polls the lease endpoint for
// unit keys, reconstructs the pipeline locally from the granted
// core.JobSpec, executes each unit with core.ExecuteUnit, and posts the
// marshalled result back. Determinism makes this safe: a unit key plus
// the spec fully determines the unit's bytes, so a worker's result is
// indistinguishable from a local run of the same unit — the daemon
// merges it through the restored-unit decode path and the job output
// stays byte-identical whether zero, one or many workers participate.
//
// The failure contract is lease-shaped. The worker heartbeats each
// lease at a third of its TTL; if the worker dies, the daemon expires
// the lease and re-runs the unit locally, and any late result posts are
// answered 410 Gone and discarded — work is never lost and never merged
// twice. Conversely the worker survives the daemon: connection errors
// back off exponentially (capped, deterministically jittered) and the
// worker reconnects when the daemon returns, including to a restarted
// daemon that resumed the job from its checkpoint store.
package worker

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/jobserver"
)

// Options configures a Worker.
type Options struct {
	// Base is the daemon's base URL (e.g. http://127.0.0.1:8120).
	Base string
	// ID identifies this worker to the daemon (required; stable across
	// its lease calls, shown by `campaignctl workers`).
	ID string
	// Job scopes leasing to one job id ("" leases from any job).
	Job string
	// Slots is the number of units executed concurrently (<= 0 is 1).
	Slots int
	// MaxBatch caps how many units one lease round-trip may grant
	// (?max=K on the lease endpoint). <= 0 lets the free-slot count
	// bound the batch — the worker never leases more than it can start
	// executing immediately.
	MaxBatch int
	// Wait bounds each lease long-poll (0 selects 30 s).
	Wait time.Duration
	// BackoffBase/BackoffMax shape the capped exponential retry backoff
	// for daemon connection errors (defaults 200 ms / 5 s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Client overrides the HTTP client (nil builds one without a global
	// timeout — the long-poll outlives any sane fixed timeout; every
	// request carries a context deadline instead).
	Client *http.Client
	// Logf, if non-nil, receives worker lifecycle log lines.
	Logf func(format string, args ...any)
}

// Stats counts a worker's lifetime activity.
type Stats struct {
	// Leased counts granted units; Results the ones whose result the
	// daemon accepted; Failed the ones whose execution errored (the
	// error was posted, the daemon re-runs them locally); Abandoned the
	// ones dropped because the lease died under us (410 on heartbeat or
	// result); Released the ones handed back on graceful shutdown.
	Leased, Results, Failed, Abandoned, Released int64
	// Batched counts the units among Leased that arrived through a
	// batched (?max=K, K > 1) lease response.
	Batched int64
}

// Worker is one remote campaign worker. Create with New, drive with
// Run; all methods are safe for concurrent use.
type Worker struct {
	opts   Options
	client *http.Client

	mu        sync.Mutex
	pipelines map[string]*core.Pipeline // by job fingerprint

	leased, results, failed, abandoned, released, batched atomic.Int64
}

// New validates the options and builds a worker.
func New(opts Options) (*Worker, error) {
	if opts.Base == "" {
		return nil, errors.New("worker: no daemon base URL")
	}
	if opts.ID == "" {
		return nil, errors.New("worker: no worker id")
	}
	if opts.Slots <= 0 {
		opts.Slots = 1
	}
	if opts.Wait <= 0 {
		opts.Wait = 30 * time.Second
	}
	if opts.BackoffBase <= 0 {
		opts.BackoffBase = 200 * time.Millisecond
	}
	if opts.BackoffMax < opts.BackoffBase {
		opts.BackoffMax = 5 * time.Second
	}
	w := &Worker{opts: opts, client: opts.Client, pipelines: map[string]*core.Pipeline{}}
	if w.client == nil {
		w.client = &http.Client{}
	}
	return w, nil
}

// Stats snapshots the lifetime counters.
func (w *Worker) Stats() Stats {
	return Stats{
		Leased:    w.leased.Load(),
		Results:   w.results.Load(),
		Failed:    w.failed.Load(),
		Abandoned: w.abandoned.Load(),
		Released:  w.released.Load(),
		Batched:   w.batched.Load(),
	}
}

func (w *Worker) logf(format string, args ...any) {
	if w.opts.Logf != nil {
		w.opts.Logf(format, args...)
	}
}

// backoff computes the capped exponential delay of the given retry
// attempt, jittered deterministically (FNV of worker id + attempt, so a
// fleet of workers desynchronises without any bare randomness): the
// delay lands in [d/2, d) for d = min(base << attempt, max).
func (w *Worker) backoff(attempt int) time.Duration {
	shift := attempt
	if shift > 16 {
		shift = 16
	}
	d := w.opts.BackoffBase << shift
	if d <= 0 || d > w.opts.BackoffMax {
		d = w.opts.BackoffMax
	}
	h := fnv.New64a()
	io.WriteString(h, w.opts.ID)
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(attempt))
	h.Write(b[:])
	frac := h.Sum64() % 1024
	half := uint64(d) / 2
	return time.Duration(half + half*frac/1024)
}

// sleep waits d or until ctx cancels.
func sleep(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// Run executes the lease loop until ctx cancels — the graceful-shutdown
// path: an in-flight unit's lease is released so the daemon re-queues
// it immediately instead of waiting out the TTL. Run returns nil on
// cancellation.
//
// One leaser goroutine long-polls on behalf of every slot, asking for
// as many units as it has free slots (?max=K); each granted unit runs
// on its own executor goroutine holding one slot token. A single-slot
// worker therefore makes exactly the requests the old per-slot loop
// did, while a wide worker fills all its slots in one round-trip.
func (w *Worker) Run(ctx context.Context) error {
	slots := w.opts.Slots
	sem := make(chan struct{}, slots)
	for i := 0; i < slots; i++ {
		sem <- struct{}{}
	}
	var wg sync.WaitGroup
	attempt := 0
	for ctx.Err() == nil {
		// Block until at least one slot is free, then sweep up the rest:
		// the batch bound is exactly the capacity we can start now.
		select {
		case <-sem:
		case <-ctx.Done():
		}
		if ctx.Err() != nil {
			break
		}
		free := 1
	drain:
		for free < slots {
			select {
			case <-sem:
				free++
			default:
				break drain
			}
		}
		max := free
		if w.opts.MaxBatch > 0 && max > w.opts.MaxBatch {
			max = w.opts.MaxBatch
		}
		gs, err := w.leaseN(ctx, max)
		if err != nil {
			for i := 0; i < free; i++ {
				sem <- struct{}{}
			}
			if ctx.Err() != nil {
				break
			}
			// Daemon down or refusing: back off and retry forever — a
			// restarted daemon resumes its jobs from the checkpoint
			// store, and this worker should be parked on it when it
			// does.
			if attempt == 0 || attempt%10 == 9 {
				w.logf("lease: %v (retrying)", err)
			}
			sleep(ctx, w.backoff(attempt))
			attempt++
			continue
		}
		attempt = 0
		for i := len(gs); i < free; i++ {
			sem <- struct{}{} // slots the grant did not fill
		}
		for _, g := range gs {
			w.leased.Add(1)
			wg.Add(1)
			go func(g *jobserver.Grant) {
				defer wg.Done()
				defer func() { sem <- struct{}{} }()
				w.execute(ctx, g)
			}(g)
		}
	}
	wg.Wait()
	return nil
}

// leaseN long-polls for up to max grants: (nil, nil) means no work
// within the wait. max <= 1 speaks the original single-grant wire
// shape, so this worker stays compatible with pre-batching daemons.
func (w *Worker) leaseN(ctx context.Context, max int) ([]*jobserver.Grant, error) {
	path := "/api/v1/lease"
	if w.opts.Job != "" {
		path = "/api/v1/jobs/" + url.PathEscape(w.opts.Job) + "/lease"
	}
	if max > 1 {
		path += "?max=" + strconv.Itoa(max)
	}
	body, _ := json.Marshal(jobserver.LeaseRequest{
		Worker:     w.opts.ID,
		WaitMillis: w.opts.Wait.Milliseconds(),
	})
	// Guard the request at double the server-side wait: a healthy
	// daemon answers 204 at the wait bound, so anything slower is a
	// dead connection.
	rctx, cancel := context.WithTimeout(ctx, 2*w.opts.Wait)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, w.opts.Base+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		if max <= 1 {
			var g jobserver.Grant
			if err := json.NewDecoder(resp.Body).Decode(&g); err != nil {
				return nil, fmt.Errorf("worker: bad grant: %w", err)
			}
			return []*jobserver.Grant{&g}, nil
		}
		var b jobserver.GrantBatch
		if err := json.NewDecoder(resp.Body).Decode(&b); err != nil {
			return nil, fmt.Errorf("worker: bad grant batch: %w", err)
		}
		if len(b.Grants) == 0 {
			return nil, fmt.Errorf("worker: empty grant batch")
		}
		gs := make([]*jobserver.Grant, len(b.Grants))
		for i := range b.Grants {
			gs[i] = &b.Grants[i]
		}
		w.batched.Add(int64(len(gs)))
		return gs, nil
	case http.StatusNoContent:
		return nil, nil
	default:
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("worker: lease: %s", resp.Status)
	}
}

// pipeline returns (building and caching if needed) the pipeline of the
// grant's job. Pipelines cache per job fingerprint, so every unit of a
// job shares one engine pool, baseline cache and discovery cache — the
// same amortisation the daemon's local path enjoys.
func (w *Worker) pipeline(g *jobserver.Grant) *core.Pipeline {
	w.mu.Lock()
	defer w.mu.Unlock()
	p, ok := w.pipelines[g.Fingerprint]
	if !ok {
		p = core.NewPipeline(g.Spec.Config())
		w.pipelines[g.Fingerprint] = p
	}
	return p
}

// execute runs one granted unit: heartbeats at TTL/3 for its duration,
// executes the unit on the locally reconstructed pipeline, and posts
// the outcome. Cancellation of ctx (worker shutdown) releases the lease
// so the daemon re-queues the unit without waiting out the TTL.
func (w *Worker) execute(ctx context.Context, g *jobserver.Grant) {
	uctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Heartbeat until the unit is fully posted; a 410 means the daemon
	// no longer considers the lease ours (expired, or the daemon
	// restarted and knows nothing of it) — abandon the unit mid-solve,
	// its result would be discarded anyway.
	var abandoned atomic.Bool
	hbDone := make(chan struct{})
	hbStop := make(chan struct{})
	go func() {
		defer close(hbDone)
		interval := time.Duration(g.TTLMillis) * time.Millisecond / 3
		if interval <= 0 {
			interval = time.Second
		}
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-uctx.Done():
				return
			case <-t.C:
				if !w.heartbeat(uctx, g.Lease) {
					abandoned.Store(true)
					cancel()
					return
				}
			}
		}
	}()

	res, err := w.pipeline(g).ExecuteUnit(uctx, g.Key, g.DfT == "post")

	if ctx.Err() != nil && !abandoned.Load() {
		// Graceful shutdown mid-unit: hand the lease back so the unit
		// re-queues immediately.
		close(hbStop)
		<-hbDone
		w.release(g)
		w.released.Add(1)
		w.logf("released %s (shutdown)", g.Key)
		return
	}
	if abandoned.Load() {
		w.abandoned.Add(1)
		w.logf("abandoned %s (lease gone)", g.Key)
		return
	}

	var req jobserver.ResultRequest
	req.Lease = g.Lease
	if err != nil {
		req.Error = err.Error()
	} else if req.Result, err = json.Marshal(res); err != nil {
		req.Error = fmt.Sprintf("marshal result: %v", err)
	}
	accepted := w.postResult(uctx, g, &req)
	close(hbStop)
	<-hbDone
	switch {
	case !accepted:
		w.abandoned.Add(1)
		w.logf("abandoned %s (result refused)", g.Key)
	case req.Error != "":
		w.failed.Add(1)
		w.logf("failed %s: %s", g.Key, req.Error)
	default:
		w.results.Add(1)
		w.logf("completed %s", g.Key)
	}
}

// heartbeat renews the lease; false means the lease is gone.
func (w *Worker) heartbeat(ctx context.Context, leaseID string) bool {
	rctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost,
		w.opts.Base+"/api/v1/leases/"+url.PathEscape(leaseID)+"/heartbeat", nil)
	if err != nil {
		return true
	}
	resp, err := w.client.Do(req)
	if err != nil {
		// Connection trouble is not proof the lease is gone: keep
		// computing, keep trying. If the daemon really lost us, the TTL
		// expires server-side and the result post gets its 410.
		return true
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode != http.StatusGone
}

// release hands an unfinished lease back (best-effort, outside the
// worker's cancelled context).
func (w *Worker) release(g *jobserver.Grant) {
	rctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodDelete,
		w.opts.Base+"/api/v1/leases/"+url.PathEscape(g.Lease), nil)
	if err != nil {
		return
	}
	if resp, err := w.client.Do(req); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// postResult delivers the unit's outcome with bounded capped-backoff
// retries (transient daemon trouble must not discard a computed
// result). False means the daemon refused it — the lease is gone.
func (w *Worker) postResult(ctx context.Context, g *jobserver.Grant, res *jobserver.ResultRequest) bool {
	body, err := json.Marshal(res)
	if err != nil {
		return false
	}
	u := w.opts.Base + "/api/v1/jobs/" + url.PathEscape(g.Job) +
		"/units/" + url.PathEscape(g.Key) + "/result"
	for attempt := 0; attempt < 8; attempt++ {
		if attempt > 0 {
			sleep(ctx, w.backoff(attempt))
		}
		if ctx.Err() != nil {
			return false
		}
		rctx, cancel := context.WithTimeout(ctx, 30*time.Second)
		req, rerr := http.NewRequestWithContext(rctx, http.MethodPost, u, bytes.NewReader(body))
		if rerr != nil {
			cancel()
			return false
		}
		req.Header.Set("Content-Type", "application/json")
		resp, derr := w.client.Do(req)
		cancel()
		if derr != nil {
			continue // daemon briefly away; the heartbeats keep the lease alive
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode/100 == 2:
			return true
		case resp.StatusCode == http.StatusGone:
			return false
		}
	}
	return false
}
