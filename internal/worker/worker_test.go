package worker

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/jobserver"
	"repro/internal/report"
)

// testSpec mirrors the jobserver tests: small enough to finish in
// seconds, big enough to produce a double-digit unit count to lease.
var testSpec = core.JobSpec{
	Quick: true, Defects: 400, MCSamples: 3,
	MaxClassesPerMacro: 1, SkipNonCat: true, DfT: "pre",
}

var (
	refOnce  sync.Once
	refBytes []byte
	refErr   error
)

// referenceResult is the direct local run of testSpec — the bytes every
// remote topology must reproduce exactly.
func referenceResult(t *testing.T) []byte {
	t.Helper()
	refOnce.Do(func() {
		run, _, err := core.RunParallel(context.Background(),
			testSpec.Config(), false, campaign.Options{Workers: 4})
		if err != nil {
			refErr = err
			return
		}
		refBytes, refErr = report.JSON(run)
	})
	if refErr != nil {
		t.Fatalf("reference run: %v", refErr)
	}
	return refBytes
}

// newDaemon builds a jobserver plus HTTP front end, torn down with the
// test.
func newDaemon(t *testing.T, opts jobserver.Options) (*jobserver.Server, *httptest.Server) {
	t.Helper()
	srv := jobserver.New(opts)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, hs
}

// startWorker runs a worker against base until the test (or the
// returned stop) cancels it.
func startWorker(t *testing.T, opts Options) (*Worker, context.CancelFunc) {
	t.Helper()
	w, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	return w, cancel
}

// waitParked polls the worker registry until want workers report a
// parked long-poll — the deterministic "workers are ready" barrier the
// remote tests submit behind.
func waitParked(t *testing.T, base string, want int) {
	t.Helper()
	deadline := time.NewTimer(15 * time.Second)
	defer deadline.Stop()
	for {
		ws := fetchWorkers(t, base)
		parked := 0
		for _, w := range ws {
			if w.Waiting {
				parked++
			}
		}
		if parked >= want {
			return
		}
		select {
		case <-deadline.C:
			t.Fatalf("only %d/%d workers parked", parked, want)
		case <-time.After(20 * time.Millisecond):
		}
	}
}

func fetchWorkers(t *testing.T, base string) []jobserver.WorkerStatus {
	t.Helper()
	resp, err := http.Get(base + "/api/v1/workers")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ws []jobserver.WorkerStatus
	if err := json.NewDecoder(resp.Body).Decode(&ws); err != nil {
		t.Fatal(err)
	}
	return ws
}

func waitResult(t *testing.T, srv *jobserver.Server, j *jobserver.Job) []byte {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(5 * time.Minute):
		t.Fatal("job did not finish")
	}
	if st := j.State(); st != jobserver.StateDone {
		t.Fatalf("job state %s: %+v", st, j.Status())
	}
	data, ok := j.Result("pre")
	if !ok {
		t.Fatal("no pre result")
	}
	return data
}

// TestRemoteWorkersByteIdentity is the scale-out contract: two remote
// workers, parked before submission so units demonstrably lease out,
// and the job's result bytes equal the direct local run exactly.
func TestRemoteWorkersByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real campaign")
	}
	srv, hs := newDaemon(t, jobserver.Options{Budget: 2, LeaseTTL: 5 * time.Second})
	w1, _ := startWorker(t, Options{Base: hs.URL, ID: "wa", Wait: 2 * time.Second, Logf: t.Logf})
	w2, _ := startWorker(t, Options{Base: hs.URL, ID: "wb", Wait: 2 * time.Second, Logf: t.Logf})
	waitParked(t, hs.URL, 2)

	j, _, err := srv.Submit(testSpec)
	if err != nil {
		t.Fatal(err)
	}
	data := waitResult(t, srv, j)
	if !bytes.Equal(data, referenceResult(t)) {
		t.Fatal("remote-assisted result diverges from the local run")
	}
	// The workers' own counters must catch up to the registry: the job
	// can finish — the daemon merges the final payload — a beat before
	// the posting worker's HTTP call returns and bumps its Results, so
	// poll briefly instead of snapshotting once.
	deadline := time.Now().Add(5 * time.Second)
	for {
		remote := w1.Stats().Results + w2.Stats().Results
		var leased, results int64
		for _, ws := range fetchWorkers(t, hs.URL) {
			leased += ws.Leased
			results += ws.Results
		}
		if remote > 0 && leased > 0 && results == remote {
			t.Logf("remote units: %d (wa %+v, wb %+v)", remote, w1.Stats(), w2.Stats())
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("registry says %d leased / %d results, workers say %d",
				leased, results, remote)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestBatchedWorkerByteIdentity pins satellite byte-identity at K > 1:
// a four-slot worker leases through ?max=K round-trips (its first poll
// necessarily asks for 4, so the batched wire shape is exercised), and
// the job's merged result bytes still equal the direct local run
// exactly — grouping grants changes round-trip count and nothing else.
func TestBatchedWorkerByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real campaign")
	}
	srv, hs := newDaemon(t, jobserver.Options{Budget: 2, LeaseTTL: 5 * time.Second})
	w, _ := startWorker(t, Options{Base: hs.URL, ID: "wide", Slots: 4, Wait: 2 * time.Second, Logf: t.Logf})
	waitParked(t, hs.URL, 1)

	j, _, err := srv.Submit(testSpec)
	if err != nil {
		t.Fatal(err)
	}
	data := waitResult(t, srv, j)
	if !bytes.Equal(data, referenceResult(t)) {
		t.Fatal("batched-worker result diverges from the local run")
	}
	// The registry/result beat race (see TestRemoteWorkersByteIdentity):
	// poll briefly for the worker's own counters to settle.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := w.Stats()
		if st.Results > 0 && st.Batched > 0 {
			t.Logf("batched worker stats: %+v", st)
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker stats %+v: want results > 0 and batched > 0 "+
				"(an idle 4-slot worker's first granted poll is always a ?max>1 batch)", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestLeaseExpiryRequeues is the dead-worker contract: a worker leases
// a unit and goes silent, the daemon expires the lease after the TTL
// and re-runs the unit locally, the job finishes byte-identically, and
// the zombie's late result is answered 410 and discarded — the unit is
// neither lost nor merged twice.
func TestLeaseExpiryRequeues(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real campaign")
	}
	srv, hs := newDaemon(t, jobserver.Options{Budget: 2, LeaseTTL: 300 * time.Millisecond})

	// Park a hand-rolled lease call (no heartbeats ever), then submit.
	grantC := make(chan jobserver.Grant, 1)
	go func() {
		body, _ := json.Marshal(jobserver.LeaseRequest{Worker: "zombie", WaitMillis: 20000})
		resp, err := http.Post(hs.URL+"/api/v1/lease", "application/json", bytes.NewReader(body))
		if err != nil {
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			var g jobserver.Grant
			if json.NewDecoder(resp.Body).Decode(&g) == nil {
				grantC <- g
			}
		}
	}()
	waitParked(t, hs.URL, 1)
	j, _, err := srv.Submit(testSpec)
	if err != nil {
		t.Fatal(err)
	}
	var g jobserver.Grant
	select {
	case g = <-grantC:
	case <-time.After(30 * time.Second):
		t.Fatal("zombie was never granted a unit")
	}

	// The job must finish without the zombie: its lease expires after
	// one TTL and the unit re-runs locally.
	data := waitResult(t, srv, j)
	if !bytes.Equal(data, referenceResult(t)) {
		t.Fatal("result diverges after a lease expiry")
	}
	for _, ws := range fetchWorkers(t, hs.URL) {
		if ws.ID == "zombie" && ws.Expired != 1 {
			t.Fatalf("zombie registry row: %+v, want 1 expired", ws)
		}
	}

	// The zombie wakes up and posts garbage under its dead lease: the
	// daemon must refuse it (410), keeping the merged result intact.
	body, _ := json.Marshal(jobserver.ResultRequest{Lease: g.Lease, Result: json.RawMessage(`{"corrupt":true}`)})
	resp, err := http.Post(hs.URL+"/api/v1/jobs/"+g.Job+"/units/"+url.PathEscape(g.Key)+"/result",
		"application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("stale result answered %d, want 410", resp.StatusCode)
	}
}

// TestManualLeaseRelease: DELETE on a live lease re-queues the unit
// immediately. The daemon's lease TTL is far longer than the test
// timeout, so the job finishing at all proves the release path (not the
// expiry path) handed the unit back.
func TestManualLeaseRelease(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real campaign")
	}
	srv, hs := newDaemon(t, jobserver.Options{Budget: 2, LeaseTTL: 10 * time.Minute})
	grantC := make(chan jobserver.Grant, 1)
	go func() {
		body, _ := json.Marshal(jobserver.LeaseRequest{Worker: "quitter", WaitMillis: 20000})
		resp, err := http.Post(hs.URL+"/api/v1/lease", "application/json", bytes.NewReader(body))
		if err != nil {
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			var g jobserver.Grant
			if json.NewDecoder(resp.Body).Decode(&g) == nil {
				grantC <- g
			}
		}
	}()
	waitParked(t, hs.URL, 1)
	j, _, err := srv.Submit(testSpec)
	if err != nil {
		t.Fatal(err)
	}
	var g jobserver.Grant
	select {
	case g = <-grantC:
	case <-time.After(30 * time.Second):
		t.Fatal("no grant")
	}
	req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/api/v1/leases/"+url.PathEscape(g.Lease), nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("release answered %d", resp.StatusCode)
	}
	if data := waitResult(t, srv, j); !bytes.Equal(data, referenceResult(t)) {
		t.Fatal("result diverges after a lease release")
	}
}

// TestDaemonRestartMidLease: the daemon dies while a worker holds a
// lease, restarts on the same address and checkpoint store, and the
// resubmitted job resumes and finishes byte-identically — the worker
// rides out the outage on its retry backoff and re-attaches to the new
// daemon.
func TestDaemonRestartMidLease(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real campaign")
	}
	store := campaign.DirStore{Dir: t.TempDir()}

	// First daemon on an explicit listener so the second can take over
	// the same address.
	srv1 := jobserver.New(jobserver.Options{Budget: 1, LeaseTTL: 2 * time.Second, Store: store})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	hs1 := &http.Server{Handler: srv1.Handler()}
	go hs1.Serve(ln)
	base := "http://" + addr

	w, _ := startWorker(t, Options{
		Base: base, ID: "survivor", Wait: time.Second,
		BackoffBase: 50 * time.Millisecond, BackoffMax: 300 * time.Millisecond,
		Logf: t.Logf,
	})
	waitParked(t, base, 1)
	j1, _, err := srv1.Submit(testSpec)
	if err != nil {
		t.Fatal(err)
	}

	// Let the campaign get going (and the worker lease something), then
	// kill the daemon mid-run.
	deadline := time.NewTimer(time.Minute)
	for w.Stats().Leased == 0 {
		select {
		case <-deadline.C:
			t.Fatal("worker never leased a unit")
		case <-j1.Done():
			t.Skip("campaign finished before the restart could interrupt it")
		case <-time.After(10 * time.Millisecond):
		}
	}
	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	srv1.Shutdown(sctx)
	cancel()
	hs1.Close()

	// Second daemon, same address, same store.
	var ln2 net.Listener
	for i := 0; i < 50; i++ {
		if ln2, err = net.Listen("tcp", addr); err == nil {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	srv2, hs2 := jobserver.New(jobserver.Options{Budget: 1, LeaseTTL: 2 * time.Second, Store: store}), &http.Server{}
	hs2.Handler = srv2.Handler()
	go hs2.Serve(ln2)
	t.Cleanup(func() {
		hs2.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv2.Shutdown(ctx)
	})

	j2, _, err := srv2.Submit(testSpec)
	if err != nil {
		t.Fatal(err)
	}
	data := waitResult(t, srv2, j2)
	if !bytes.Equal(data, referenceResult(t)) {
		t.Fatal("post-restart result diverges from the local run")
	}
	t.Logf("worker stats across restart: %+v", w.Stats())
}

// TestBackoffDeterministicJitter: the retry backoff is capped
// exponential with jitter that is a pure function of (worker id,
// attempt) — reproducible runs, desynchronised fleets.
func TestBackoffDeterministicJitter(t *testing.T) {
	mk := func(id string) *Worker {
		w, err := New(Options{Base: "http://x", ID: id})
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	a1, a2, b := mk("wa"), mk("wa"), mk("wb")
	differ := false
	for i := 0; i < 12; i++ {
		da := a1.backoff(i)
		if da != a2.backoff(i) {
			t.Fatalf("attempt %d: same worker, different delays", i)
		}
		if da != b.backoff(i) {
			differ = true
		}
		lo, hi := a1.opts.BackoffBase/2, a1.opts.BackoffMax
		if da < lo || da >= hi {
			t.Fatalf("attempt %d: delay %v outside [%v, %v)", i, da, lo, hi)
		}
	}
	if !differ {
		t.Fatal("two worker ids never diverged — jitter is not seeded by id")
	}
	// Monotone growth until the cap.
	if a1.backoff(0) >= a1.opts.BackoffMax || a1.backoff(20) < a1.opts.BackoffMax/2 {
		t.Fatalf("backoff shape wrong: first %v, capped %v", a1.backoff(0), a1.backoff(20))
	}
}

// TestWorkerOptionValidation: the constructor rejects unusable options.
func TestWorkerOptionValidation(t *testing.T) {
	if _, err := New(Options{ID: "w"}); err == nil {
		t.Fatal("no base URL must be rejected")
	}
	if _, err := New(Options{Base: "http://x"}); err == nil {
		t.Fatal("no id must be rejected")
	}
	w, err := New(Options{Base: "http://x", ID: "w"})
	if err != nil || w.opts.Slots != 1 || w.opts.Wait <= 0 {
		t.Fatalf("defaults not applied: %+v, %v", w.opts, err)
	}
}
