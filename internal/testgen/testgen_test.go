package testgen

import (
	"testing"
	"testing/quick"
	"time"
)

func TestDefaultPlanTimes(t *testing.T) {
	p := Default()
	// 1000 samples at 20 MS/s = 50 µs.
	if got := p.MissingCodeTime(); got != 50*time.Microsecond {
		t.Fatalf("missing-code time = %v", got)
	}
	// 6 × 100 µs = 600 µs.
	if got := p.CurrentTestTime(); got != 600*time.Microsecond {
		t.Fatalf("current-test time = %v", got)
	}
	if got := p.Total(); got != 650*time.Microsecond {
		t.Fatalf("total = %v", got)
	}
	if p.String() == "" {
		t.Fatal("String")
	}
}

func TestZeroRate(t *testing.T) {
	p := Plan{Samples: 100}
	if p.MissingCodeTime() != 0 {
		t.Fatal("zero rate must not divide by zero")
	}
}

func TestTriangleStimulusCoversRange(t *testing.T) {
	p := Default()
	lo, hi := 1.0, 3.0
	min, max := 99.0, -99.0
	for i := 0; i < p.Samples; i++ {
		v := p.TriangleStimulus(i, lo, hi)
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if min > lo || max < hi {
		t.Fatalf("sweep [%g, %g] must cover [%g, %g]", min, max, lo, hi)
	}
	// Overdrive beyond the range ends (so the end codes are exercised).
	if min >= lo || max <= hi {
		t.Fatal("sweep must overdrive both ends")
	}
}

// Property: the triangular stimulus is bounded by the overdriven range
// and piecewise monotone (up then down).
func TestQuickTriangleShape(t *testing.T) {
	p := Default()
	f := func(iRaw uint16) bool {
		i := int(iRaw) % p.Samples
		v := p.TriangleStimulus(i, 1, 3)
		return v >= 1-0.05 && v <= 3+0.05
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Monotone on the rising half.
	prev := p.TriangleStimulus(0, 1, 3)
	for i := 1; i < p.Samples/2; i++ {
		v := p.TriangleStimulus(i, 1, 3)
		if v < prev {
			t.Fatalf("rising half must be monotone at %d", i)
		}
		prev = v
	}
}

func TestCurrentStimuli(t *testing.T) {
	below, above := CurrentStimuli(1, 3)
	if below >= 1 || above <= 3 {
		t.Fatalf("stimuli = %g, %g", below, above)
	}
}
