// Package testgen models the production test stimuli and their cost: the
// missing-code test (a triangular waveform sampled at full conversion
// rate) and the DC current test (settled measurements of IVdd, IDDQ and
// Iinput in each clock phase at two input levels). The paper's headline
// is that this simple test pair reaches its coverage in well under a
// millisecond of tester time, "which compares favourably with
// specification-oriented tests".
package testgen

import (
	"fmt"
	"time"

	"repro/internal/macros"
)

// Plan describes the simple production test of the paper.
type Plan struct {
	// Samples is the number of conversions in the missing-code test
	// (1 000 in the paper).
	Samples int
	// SampleRate is the converter's full-speed conversion rate (Hz).
	SampleRate float64
	// CurrentMeasurements counts the settled DC measurements: three
	// phases × two input levels in the paper.
	CurrentMeasurements int
	// SettleTime is the wait for transient currents to die before each
	// current measurement (≈100 µs in the paper).
	SettleTime time.Duration
}

// Default returns the paper's test plan: 1 000 samples at video rate and
// six settled current measurements.
func Default() Plan {
	return Plan{
		Samples:             1000,
		SampleRate:          20e6, // 20 MS/s video converter
		CurrentMeasurements: 6,
		SettleTime:          100 * time.Microsecond,
	}
}

// ForVehicle returns the test plan of the given vehicle: the default
// plan with the missing-code stimulus scaled to the vehicle's resolution
// (Vehicle.TestSamples — the paper's 1 000 conversions at the 8-bit
// member, proportionally longer above so every code stays reachable).
func ForVehicle(v macros.Vehicle) Plan {
	p := Default()
	p.Samples = v.TestSamples()
	return p
}

// MissingCodeTime returns the duration of the missing-code test.
func (p Plan) MissingCodeTime() time.Duration {
	if p.SampleRate <= 0 {
		return 0
	}
	return time.Duration(float64(p.Samples) / p.SampleRate * float64(time.Second))
}

// CurrentTestTime returns the duration of the current test.
func (p Plan) CurrentTestTime() time.Duration {
	return time.Duration(p.CurrentMeasurements) * p.SettleTime
}

// Total returns the complete simple-test time.
func (p Plan) Total() time.Duration {
	return p.MissingCodeTime() + p.CurrentTestTime()
}

// String summarises the plan.
func (p Plan) String() string {
	return fmt.Sprintf("missing-code: %d samples @ %.0f MS/s = %v; current: %d × %v = %v; total %v",
		p.Samples, p.SampleRate/1e6, p.MissingCodeTime(),
		p.CurrentMeasurements, p.SettleTime, p.CurrentTestTime(), p.Total())
}

// TriangleStimulus returns the analog input voltage for sample i of the
// missing-code test: a triangular sweep slightly beyond [vlo, vhi].
func (p Plan) TriangleStimulus(i int, vlo, vhi float64) float64 {
	span := vhi - vlo
	over := 0.02 * span
	ph := 2 * float64(i%p.Samples) / float64(p.Samples)
	if ph <= 1 {
		return vlo - over + ph*(span+2*over)
	}
	return vhi + over - (ph-1)*(span+2*over)
}

// CurrentStimuli returns the two DC input levels of the current test: one
// above the highest reference voltage and one below the lowest.
func CurrentStimuli(vlo, vhi float64) (below, above float64) {
	return vlo - 0.5, vhi + 0.5
}
