package spectest

import (
	"testing"
	"time"

	"repro/internal/signature"
)

func TestPlanTimes(t *testing.T) {
	p := DefaultPlan()
	// (64·257 + 8192)/20e6 s + 4·100µs + 2ms ≈ 3.6 ms.
	tot := p.Total()
	if tot < 2*time.Millisecond || tot > 10*time.Millisecond {
		t.Fatalf("spec test total = %v", tot)
	}
	if p.String() == "" {
		t.Fatal("String")
	}
}

func TestSpecSlowerThanSimpleTest(t *testing.T) {
	// The paper's claim: the defect-oriented simple test is cheaper.
	// Simple test ≈ 650 µs, specification test milliseconds.
	if DefaultPlan().Total() < 2*650*time.Microsecond {
		t.Fatal("spec test must cost several times the simple test")
	}
}

func TestDetects(t *testing.T) {
	lim := DefaultLimits()
	cases := []struct {
		name string
		resp *signature.Response
		want bool
	}{
		{"nil", nil, false},
		{"missing code", &signature.Response{MissingCode: true}, true},
		{"stuck", &signature.Response{Voltage: signature.VSigStuck}, true},
		{"mixed", &signature.Response{Voltage: signature.VSigMixed}, true},
		{"big slice offset", &signature.Response{Voltage: signature.VSigOffset, OffsetV: 6e-3}, true},
		{"sub-LSB slice offset above DNL limit", &signature.Response{Voltage: signature.VSigNone, OffsetV: 5e-3}, true},
		{"tiny offset", &signature.Response{Voltage: signature.VSigNone, OffsetV: 1e-3}, false},
		{"clock value only", &signature.Response{Voltage: signature.VSigClock}, false},
		{"common-mode small", &signature.Response{Voltage: signature.VSigOffset, OffsetV: 3e-3, CommonMode: true}, false},
		{"common-mode large", &signature.Response{Voltage: signature.VSigOffset, OffsetV: 9e-3, CommonMode: true}, true},
	}
	for _, c := range cases {
		if got := Detects(c.resp, lim); got != c.want {
			t.Errorf("%s: Detects = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestSpecBlindToCurrentOnlyFaults(t *testing.T) {
	// The structural point: an IDDQ-only fault (clock-line short that
	// leaves the transfer curve intact) escapes the specification test.
	resp := &signature.Response{
		Voltage:  signature.VSigClock,
		Currents: map[string]float64{"iddq.samp.lo": 5e-3},
	}
	if Detects(resp, DefaultLimits()) {
		t.Fatal("spec test must not see quiescent-current-only faults")
	}
}
