// Package spectest models the specification-oriented production test the
// paper argues against: a full static-performance verification of the
// converter (offset error, gain error, INL, DNL, missing codes via a
// dense histogram test, plus a dynamic SNR test). It serves as the
// baseline for the paper's §1/§4 claim that the defect-oriented simple
// test reaches *higher* defect coverage at *lower* test cost:
// specification tests are blind to faults that only disturb quiescent
// currents (the IDDQ-detected population) while costing far more tester
// time.
package spectest

import (
	"fmt"
	"math"
	"time"

	"repro/internal/signature"
)

// Limits are the data-sheet acceptance limits of the static test.
type Limits struct {
	// INL and DNL limits in LSB.
	INL, DNL float64
	// OffsetLSB is the allowed transfer-curve offset error in LSB.
	OffsetLSB float64
	// MissingCodes rejects any missing code.
	MissingCodes bool
}

// DefaultLimits returns typical 8-bit video-ADC data-sheet limits.
func DefaultLimits() Limits {
	return Limits{INL: 0.5, DNL: 0.5, OffsetLSB: 0.5, MissingCodes: true}
}

// Plan models the tester cost of the specification-oriented flow.
type Plan struct {
	// HistogramSamples drives the INL/DNL/missing-code histogram test.
	HistogramSamples int
	// SNRSamples drives the dynamic (FFT) test.
	SNRSamples int
	// SampleRate is the conversion rate (Hz).
	SampleRate float64
	// StaticMeasurements counts settled DC spec measurements (offset,
	// gain, reference currents).
	StaticMeasurements int
	// SettleTime per static measurement.
	SettleTime time.Duration
	// ProcessingTime is the tester-side computation (histogram + FFT).
	ProcessingTime time.Duration
}

// DefaultPlan returns a representative specification test plan: a 64×
// oversampled histogram plus an 8 k-point FFT and four settled static
// measurements.
func DefaultPlan() Plan {
	return Plan{
		HistogramSamples:   64 * 257,
		SNRSamples:         8192,
		SampleRate:         20e6,
		StaticMeasurements: 4,
		SettleTime:         100 * time.Microsecond,
		ProcessingTime:     2 * time.Millisecond,
	}
}

// Total returns the specification test time.
func (p Plan) Total() time.Duration {
	conv := time.Duration(float64(p.HistogramSamples+p.SNRSamples) / p.SampleRate * float64(time.Second))
	return conv + time.Duration(p.StaticMeasurements)*p.SettleTime + p.ProcessingTime
}

// String summarises the plan.
func (p Plan) String() string {
	return fmt.Sprintf("histogram %d + FFT %d samples @ %.0f MS/s, %d static meas × %v, %v processing = %v",
		p.HistogramSamples, p.SNRSamples, p.SampleRate/1e6,
		p.StaticMeasurements, p.SettleTime, p.ProcessingTime, p.Total())
}

// lsb of the case-study converter (2 V / 256).
const lsb = 2.0 / 256

// Detects decides whether the specification-oriented static test catches
// a fault with the given macro-level response. The specification test
// observes only the converter's transfer curve: missing codes, INL/DNL
// beyond limits, and offset error. It cannot observe supply or input
// currents — the faults the paper found detectable *only* by IVdd/IDDQ
// measurements escape it.
func Detects(resp *signature.Response, lim Limits) bool {
	if resp == nil {
		return false
	}
	if lim.MissingCodes && resp.MissingCode {
		return true
	}
	switch resp.Voltage {
	case signature.VSigStuck, signature.VSigMixed:
		// Gross transfer-curve corruption always violates INL/DNL.
		return true
	case signature.VSigOffset:
		off := math.Abs(resp.OffsetV) / lsb
		if resp.CommonMode {
			// A common shift is an offset error.
			return off > lim.OffsetLSB
		}
		// A single-slice offset is a local INL/DNL error.
		return off > lim.DNL
	case signature.VSigNone:
		// Sub-threshold offsets may still trip the tighter INL/DNL
		// limits of the specification test.
		off := math.Abs(resp.OffsetV) / lsb
		if resp.CommonMode {
			return off > lim.OffsetLSB
		}
		return off > lim.DNL
	}
	// Clock-value deviations don't move the (static) transfer curve.
	return false
}
