package solver

import (
	"fmt"
	"math/cmplx"
)

// CMatrix is a dense row-major complex matrix for the AC (small-signal)
// analysis.
type CMatrix struct {
	N int
	A []complex128
}

// NewCMatrix returns an n×n zero complex matrix.
func NewCMatrix(n int) *CMatrix {
	return &CMatrix{N: n, A: make([]complex128, n*n)}
}

// At returns element (i, j).
func (m *CMatrix) At(i, j int) complex128 { return m.A[i*m.N+j] }

// Add accumulates into element (i, j).
func (m *CMatrix) Add(i, j int, v complex128) { m.A[i*m.N+j] += v }

// Zero clears all entries.
func (m *CMatrix) Zero() {
	for i := range m.A {
		m.A[i] = 0
	}
}

// CSolve factors m in place (with partial pivoting) and solves m·x = b.
// m and b are both clobbered; x aliases b's storage.
func CSolve(m *CMatrix, b []complex128) ([]complex128, error) {
	n := m.N
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	a := m.A
	const tiny = 1e-300
	for k := 0; k < n; k++ {
		p, max := k, cmplx.Abs(a[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := cmplx.Abs(a[i*n+k]); v > max {
				p, max = i, v
			}
		}
		if max < tiny {
			return nil, fmt.Errorf("%w: complex pivot %d", ErrSingular, k)
		}
		if p != k {
			for j := 0; j < n; j++ {
				a[k*n+j], a[p*n+j] = a[p*n+j], a[k*n+j]
			}
			b[k], b[p] = b[p], b[k]
		}
		pivot := a[k*n+k]
		for i := k + 1; i < n; i++ {
			l := a[i*n+k] / pivot
			if l == 0 {
				continue
			}
			a[i*n+k] = l
			for j := k + 1; j < n; j++ {
				a[i*n+j] -= l * a[k*n+j]
			}
			b[i] -= l * b[k]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < n; j++ {
			s -= a[i*n+j] * b[j]
		}
		b[i] = s / a[i*n+i]
	}
	return b, nil
}
