package solver

import (
	"fmt"
	"math/cmplx"
)

// CMatrix is a dense row-major complex matrix for the AC (small-signal)
// analysis.
type CMatrix struct {
	N int
	A []complex128
}

// NewCMatrix returns an n×n zero complex matrix.
func NewCMatrix(n int) *CMatrix {
	return &CMatrix{N: n, A: make([]complex128, n*n)}
}

// At returns element (i, j).
func (m *CMatrix) At(i, j int) complex128 { return m.A[i*m.N+j] }

// Add accumulates into element (i, j).
func (m *CMatrix) Add(i, j int, v complex128) { m.A[i*m.N+j] += v }

// Zero clears all entries.
func (m *CMatrix) Zero() {
	for i := range m.A {
		m.A[i] = 0
	}
}

// CLU is a reusable complex factorisation workspace, the AC analogue of
// the real LU: the triangular factors, multipliers and pivot sequence
// live in cached buffers so a frequency sweep performs no per-point
// allocations. The elimination is operation-for-operation the one
// CSolve performs, and SolveInto replays the right-hand-side updates in
// CSolve's interleaved order, so factoring once and solving separately
// is bit-identical to the combined CSolve.
type CLU struct {
	n    int
	lu   []complex128
	step []int32 // per-step pivot row (p == k: no interchange)
	// lmul stores the multiplier of elimination step k acting on
	// working row i at cell (i, k) — and is never row-swapped. CSolve
	// applies each right-hand-side update at the moment of elimination,
	// when the multiplier sits at its working-time row; interchanges of
	// later steps then relocate it inside the in-place array, so the
	// replay must read from this positionally-frozen copy.
	lmul []complex128
}

// NewCLU returns a workspace for n×n complex systems.
func NewCLU(n int) *CLU {
	return &CLU{n: n, lu: make([]complex128, n*n), step: make([]int32, n), lmul: make([]complex128, n*n)}
}

// Refactor factors m with partial pivoting into the workspace's cached
// buffers, allocation-free. m is not modified.
func (f *CLU) Refactor(m *CMatrix) error {
	n := f.n
	if m.N != n {
		return fmt.Errorf("solver: complex refactor size %d into workspace of size %d", m.N, n)
	}
	a := f.lu
	copy(a, m.A)
	const tiny = 1e-300
	for k := 0; k < n; k++ {
		p, max := k, cmplx.Abs(a[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := cmplx.Abs(a[i*n+k]); v > max {
				p, max = i, v
			}
		}
		if max < tiny {
			return fmt.Errorf("%w: complex pivot %d", ErrSingular, k)
		}
		f.step[k] = int32(p)
		if p != k {
			for j := 0; j < n; j++ {
				a[k*n+j], a[p*n+j] = a[p*n+j], a[k*n+j]
			}
		}
		pivot := a[k*n+k]
		for i := k + 1; i < n; i++ {
			l := a[i*n+k] / pivot
			// A zero multiplier is stored too; SolveInto skips zero
			// multipliers exactly as CSolve skips the corresponding
			// right-hand-side updates.
			f.lmul[i*n+k] = l
			if l == 0 {
				continue
			}
			a[i*n+k] = l
			for j := k + 1; j < n; j++ {
				a[i*n+j] -= l * a[k*n+j]
			}
		}
	}
	return nil
}

// SolveInto solves A·x = b for the factored A into the caller-provided
// x (len n), allocation-free. b is not modified; x must not alias b.
func (f *CLU) SolveInto(x, b []complex128) []complex128 {
	n := f.n
	a := f.lu
	copy(x, b)
	// Forward pass in CSolve's interleaved order: per elimination step,
	// the interchange then the row updates, ascending, with each
	// multiplier read at its working-time position.
	for k := 0; k < n; k++ {
		if p := int(f.step[k]); p != k {
			x[k], x[p] = x[p], x[k]
		}
		for i := k + 1; i < n; i++ {
			l := f.lmul[i*n+k]
			if l == 0 {
				continue
			}
			x[i] -= l * x[k]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= a[i*n+j] * x[j]
		}
		x[i] = s / a[i*n+i]
	}
	return x
}

// CSolve factors m in place (with partial pivoting) and solves m·x = b.
// m and b are both clobbered; x aliases b's storage.
func CSolve(m *CMatrix, b []complex128) ([]complex128, error) {
	n := m.N
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	a := m.A
	const tiny = 1e-300
	for k := 0; k < n; k++ {
		p, max := k, cmplx.Abs(a[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := cmplx.Abs(a[i*n+k]); v > max {
				p, max = i, v
			}
		}
		if max < tiny {
			return nil, fmt.Errorf("%w: complex pivot %d", ErrSingular, k)
		}
		if p != k {
			for j := 0; j < n; j++ {
				a[k*n+j], a[p*n+j] = a[p*n+j], a[k*n+j]
			}
			b[k], b[p] = b[p], b[k]
		}
		pivot := a[k*n+k]
		for i := k + 1; i < n; i++ {
			l := a[i*n+k] / pivot
			if l == 0 {
				continue
			}
			a[i*n+k] = l
			for j := k + 1; j < n; j++ {
				a[i*n+j] -= l * a[k*n+j]
			}
			b[i] -= l * b[k]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < n; j++ {
			s -= a[i*n+j] * b[j]
		}
		b[i] = s / a[i*n+i]
	}
	return b, nil
}
