package solver

import (
	"errors"
	"fmt"
	"math"
)

// ErrIllConditioned is returned by NewUpdatedSolver when the Woodbury
// capacitance matrix is singular or too close to it for the correction
// to be trustworthy. Callers treat it as "this fault needs the full
// refactor path", not as a failure of the underlying system: the
// updated matrix may be perfectly solvable from scratch even when the
// low-rank correction against this particular base is not.
var ErrIllConditioned = errors.New("solver: low-rank update ill-conditioned")

// GroundTerm marks the ground side of an UpdateTerm: the corresponding
// unit vector is dropped, leaving a conductance from unknown I to the
// reference.
const GroundTerm = -1

// UpdateTerm is one conductance delta g between MNA unknowns I and J —
// exactly the four-cell stamp a resistor writes: +g at (I,I) and (J,J),
// −g at (I,J) and (J,I). As a matrix it is the symmetric rank-1 term
// g·(e_I−e_J)(e_I−e_J)ᵀ; with J == GroundTerm the e_J part vanishes.
type UpdateTerm struct {
	I, J int
	G    float64
}

// LowRankUpdate is a set of conductance deltas against a nominal
// matrix: ΔA = Σ_t g_t·u_t·u_tᵀ with u_t = e_It − e_Jt, i.e. ΔA = U·Vᵀ
// with U's columns the u_t and V's columns g_t·u_t. Fault models that
// only add resistive bridges between existing nets reduce to exactly
// this shape, one term per bridge.
type LowRankUpdate struct {
	Terms []UpdateTerm
}

// Rank returns the number of terms (the k of the k×k capacitance
// matrix; individual terms are each rank 1).
func (u LowRankUpdate) Rank() int { return len(u.Terms) }

// condLimit is the κ∞ threshold above which the capacitance matrix is
// declared ill-conditioned. The guard protects the correction step
// z = C⁻¹·Vᵀy: at κ∞ ≈ 1e12 roughly twelve of the sixteen significant
// digits of z are noise, which is where the post-solve residual check
// in the consumers starts failing anyway — beyond it the fallback
// refactor path is both safer and barely slower.
const condLimit = 1e12

// UpdatedSolver solves (A + U·Vᵀ)x = b through the Sherman–Morrison–
// Woodbury identity against an already-factored nominal A:
//
//	x = y − W·C⁻¹·Vᵀy,  y = A⁻¹b,  W = A⁻¹U,  C = I + VᵀW
//
// The nominal SparseLU is used strictly read-only (SolveInto only), so
// any number of UpdatedSolvers — across goroutines — may share one
// factorization; each solver owns its own W, capacitance factor and
// scratch. Construction performs the k nominal solves for W and the
// dense k×k factorization; each SolveInto then costs one nominal solve
// plus O(n·k), with one residual-refinement pass (see Refine) to pull
// the SMW result to the accuracy of a direct factorization.
type UpdatedSolver struct {
	base *SparseLU
	// nom holds the nominal matrix values; together with base's stamp
	// pattern it computes residuals r = b − (A+UVᵀ)x sparsely for the
	// refinement pass, touching only pattern cells.
	nom   *Matrix
	terms []UpdateTerm
	k     int
	// w is W = A⁻¹U, column-major: column t at w[t*n : (t+1)*n].
	w    []float64
	capM *Matrix
	capF *LU
	// capScale is the ∞-norm of C's summands (|I| + |VᵀW| elementwise):
	// the magnitude the entries of C were formed from. Conditioning is
	// judged as capScale·‖C⁻¹‖∞ rather than ‖C‖∞·‖C⁻¹‖∞ — the two agree
	// up to the cancellation in C's sum, which is exactly what the guard
	// must see: a rank-1 C that cancels to 1e-14 has κ∞(C) = 1 but
	// amplifies the correction by 1e14.
	capScale float64
	// Refine is the number of iterative-refinement passes SolveInto
	// runs after the plain SMW correction (default 1). Each pass costs
	// one sparse residual, one nominal solve and one k×k solve, and
	// squares down the correction error; 1 pass brings the solution to
	// within a few ulps of the direct factorization for conductance
	// updates far from the condition guard.
	Refine int
	y, r   []float64
	t, z   []float64
}

// NewUpdatedSolver prepares the Woodbury correction of upd against the
// factored nominal system. base must hold a successful factorization of
// nom (they are not cross-checked beyond size). Returns
// ErrIllConditioned (wrapped) when a term is non-finite, a term index
// is out of range, or the capacitance matrix is singular or has
// κ∞ > 1e12 — the caller's cue to refactor from scratch instead.
func NewUpdatedSolver(base *SparseLU, nom *Matrix, upd LowRankUpdate) (*UpdatedSolver, error) {
	n := base.N()
	if nom.N != n {
		return nil, fmt.Errorf("solver: updated solver: nominal matrix is %d×%d, factorization is %d×%d", nom.N, nom.N, n, n)
	}
	k := len(upd.Terms)
	s := &UpdatedSolver{
		base:   base,
		nom:    nom,
		terms:  append([]UpdateTerm(nil), upd.Terms...),
		k:      k,
		Refine: 1,
		y:      make([]float64, n),
		r:      make([]float64, n),
	}
	if k == 0 {
		return s, nil // the update is empty; SolveInto degenerates to base
	}
	for _, t := range upd.Terms {
		if t.I < 0 || t.I >= n || t.J < GroundTerm || t.J >= n || t.I == t.J {
			return nil, fmt.Errorf("%w: term (%d,%d) out of range for n=%d", ErrIllConditioned, t.I, t.J, n)
		}
		if math.IsNaN(t.G) || math.IsInf(t.G, 0) {
			return nil, fmt.Errorf("%w: non-finite conductance %g", ErrIllConditioned, t.G)
		}
	}
	s.w = make([]float64, n*k)
	s.t = make([]float64, k)
	s.z = make([]float64, k)
	// W = A⁻¹U, one nominal solve per column; e is the ±1 column of U,
	// rebuilt (and re-zeroed) in place.
	e := s.r
	for t, term := range upd.Terms {
		e[term.I] = 1
		if term.J != GroundTerm {
			e[term.J] = -1
		}
		s.base.SolveInto(s.w[t*n:(t+1)*n], e)
		e[term.I] = 0
		if term.J != GroundTerm {
			e[term.J] = 0
		}
	}
	// C = I + VᵀW with v_s = g_s·(e_Is − e_Js):
	// C[s][t] = δ_st + g_s·(W_t[I_s] − W_t[J_s]).
	s.capM = NewMatrix(k)
	for row, vs := range upd.Terms {
		rowAbs := 0.0
		for col := 0; col < k; col++ {
			wc := s.w[col*n : (col+1)*n]
			d := wc[vs.I]
			if vs.J != GroundTerm {
				d -= wc[vs.J]
			}
			c := vs.G * d
			rowAbs += math.Abs(c)
			if row == col {
				c += 1
				rowAbs += 1
			}
			s.capM.Set(row, col, c)
		}
		s.capScale = math.Max(s.capScale, rowAbs)
	}
	s.capF = NewLU(k)
	if err := s.capF.Refactor(s.capM); err != nil {
		return nil, fmt.Errorf("%w: capacitance matrix: %v", ErrIllConditioned, err)
	}
	if cond := s.capCondInf(); cond > condLimit {
		return nil, fmt.Errorf("%w: capacitance matrix κ∞ ≈ %.3g", ErrIllConditioned, cond)
	}
	return s, nil
}

// capCondInf bounds the correction's amplification as capScale·‖C⁻¹‖∞,
// with C⁻¹ built column by column from the factored C — k is a handful,
// so the k² solve cost is noise next to the nominal solves. Using the
// summand scale rather than ‖C‖∞ makes the bound ≥ κ∞(C) and, unlike
// κ∞, sensitive to cancellation inside C itself (the near-singular
// updated-matrix case, where C's entries are tiny differences of
// O(1)-or-larger summands).
func (s *UpdatedSolver) capCondInf() float64 {
	k := s.k
	inv := make([]float64, k*k) // column-major C⁻¹
	e := make([]float64, k)
	for j := 0; j < k; j++ {
		e[j] = 1
		s.capF.SolveInto(inv[j*k:(j+1)*k], e)
		e[j] = 0
	}
	var normInv float64
	for i := 0; i < k; i++ {
		var row float64
		for j := 0; j < k; j++ {
			row += math.Abs(inv[j*k+i])
		}
		normInv = math.Max(normInv, row)
	}
	return s.capScale * normInv
}

// Rank returns the update's term count.
func (s *UpdatedSolver) Rank() int { return s.k }

// correct applies the Woodbury correction in place: given x = A⁻¹rhs,
// it subtracts W·C⁻¹·Vᵀx so that x becomes (A+UVᵀ)⁻¹rhs.
func (s *UpdatedSolver) correct(x []float64) {
	n := s.base.N()
	for i, term := range s.terms {
		d := x[term.I]
		if term.J != GroundTerm {
			d -= x[term.J]
		}
		s.t[i] = term.G * d
	}
	s.capF.SolveInto(s.z, s.t)
	for t := 0; t < s.k; t++ {
		if s.z[t] == 0 {
			continue
		}
		zt := s.z[t]
		wc := s.w[t*n : (t+1)*n]
		for i, wv := range wc {
			x[i] -= zt * wv
		}
	}
}

// residualInto writes r = b − (A+UVᵀ)·x using the nominal values over
// the stamp pattern plus the update terms — no dense n² pass.
func (s *UpdatedSolver) residualInto(r, x, b []float64) {
	n := s.base.N()
	copy(r, b)
	a := s.nom.A
	for _, f := range s.base.patIdx {
		i, j := int(f)/n, int(f)%n
		r[i] -= a[f] * x[j]
	}
	for _, term := range s.terms {
		d := x[term.I]
		if term.J != GroundTerm {
			d -= x[term.J]
		}
		d *= term.G
		r[term.I] -= d
		if term.J != GroundTerm {
			r[term.J] += d
		}
	}
}

// ResidualInf returns ‖b − (A+UVᵀ)x‖∞ — the consumers' cheap
// post-solve sanity check before trusting an updated solution.
func (s *UpdatedSolver) ResidualInf(x, b []float64) float64 {
	s.residualInto(s.r, x, b)
	return NormInf(s.r)
}

// SolveInto solves (A + UVᵀ)·x = b into the caller-provided x (len n),
// then runs Refine refinement passes. b is not modified; x must not
// alias b (panics on the exact-overlap case) and must not alias the
// solver's own scratch. Safe for concurrent use only in the sense that
// distinct UpdatedSolvers never interfere; one solver is single-
// goroutine, like the LU workspaces.
func (s *UpdatedSolver) SolveInto(x, b []float64) []float64 {
	checkNoAlias(x, b)
	s.base.SolveInto(x, b)
	if s.k == 0 {
		return x
	}
	s.correct(x)
	for pass := 0; pass < s.Refine; pass++ {
		s.residualInto(s.r, x, b)
		s.base.SolveInto(s.y, s.r)
		s.correct(s.y)
		for i := range x {
			x[i] += s.y[i]
		}
	}
	return x
}

// Solve returns x with (A + UVᵀ)·x = b. b is not modified.
func (s *UpdatedSolver) Solve(b []float64) []float64 {
	return s.SolveInto(make([]float64, s.base.N()), b)
}
