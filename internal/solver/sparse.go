package solver

import (
	"fmt"
	"math"
)

// Pattern is the structural nonzero pattern of an n×n MNA matrix: the
// set of cells any stamp of the circuit can ever touch. The engine
// records it once per (circuit, stamp mode) by replaying the compiled
// stamp program into a probing context; stamp positions depend only on
// element terminals and aux numbering — never on the iterate — so the
// pattern is valid for every Newton iteration and timestep.
//
// A pattern may safely over-approximate (extra marked cells merely cost
// a few arithmetic operations on exact zeros); it must never miss a
// cell a stamp can write, because the sparse factorisation relies on
// unmarked cells holding exact +0.
type Pattern struct {
	N  int
	nz []bool
	// idx lists the flat index of every marked cell, in first-mark
	// order; maintained incrementally so NewSparseLU never has to scan
	// the n² cells to enumerate the pattern.
	idx []int32
}

// NewPattern returns an empty n×n pattern.
func NewPattern(n int) *Pattern {
	return &Pattern{N: n, nz: make([]bool, n*n)}
}

// Mark adds cell (i, j) to the pattern.
func (p *Pattern) Mark(i, j int) {
	f := i*p.N + j
	if !p.nz[f] {
		p.nz[f] = true
		p.idx = append(p.idx, int32(f))
	}
}

// Has reports whether cell (i, j) is in the pattern.
func (p *Pattern) Has(i, j int) bool { return p.nz[i*p.N+j] }

// Count returns the number of marked cells. Mark maintains idx
// incrementally (one entry per first-time mark), so the count is just
// its length — no n² scan.
func (p *Pattern) Count() int { return len(p.idx) }

// FactorPath reports which implementation a SparseLU.Refactor call used.
type FactorPath int

const (
	// FactorSparse: the cached pivot sequence was verified cell by cell
	// and the factorisation ran over the symbolic pattern only.
	FactorSparse FactorPath = iota
	// FactorDense: the dense LU ran — either first-time pattern
	// learning or a pivot-cache mismatch — and the symbolic analysis
	// was (re)built from the pivot sequence it recorded.
	FactorDense
)

// symbolic is the cached elimination analysis for one (pattern, pivot
// sequence) pair: the structural result of simulating Gaussian
// elimination with the recorded interchanges, including fill-in.
type symbolic struct {
	// piv[k] is the cached pivot row of step k (the row swapped up to
	// position k; piv[k] == k when no interchange happened).
	piv []int32
	// search[k] lists the rows i > k with a structural nonzero in
	// column k before step k's interchange. Together with the diagonal
	// cell (k, k) these are the only rows whose magnitude can exceed
	// zero in the dense pivot search, so scanning them reproduces the
	// dense argmax exactly.
	search [][]int32
	// elim[k] lists the rows i > k with a structural nonzero at (i, k)
	// after the interchange — the rows the update loop eliminates.
	elim [][]int32
	// utail[k] lists the columns j > k structurally nonzero in pivot
	// row k at step k (prior fill included) — the update columns.
	utail [][]int32
	// lrow[i]/urow[i] are the final factored structure per row:
	// columns j < i of L (unit diagonal implied) and j > i of U, both
	// ascending, for the sparse triangular solves.
	lrow [][]int32
	urow [][]int32
	// zero lists flat original-frame cell indices the numeric replay
	// must initialise to exact +0 before eliminating: fill-in targets
	// (read-modified before ever being written from the input) and
	// unmarked working diagonals (read by the pivot search, where the
	// dense scan sees +0). Everything else the replay touches is a
	// pattern cell, initialised from the input matrix. Recording uses
	// original-frame positions — the row interchanges then carry the
	// zeros to their working positions exactly as they carry the
	// pattern values.
	zero []int32
	// nnz is the filled nonzero count (diagnostics).
	nnz int
}

// buildSymbolic simulates the elimination on the pattern under the given
// per-step pivot sequence, recording per-step structure and fill-in.
// w is caller-provided scratch of length n*n, overwritten wholesale.
func buildSymbolic(pat []bool, n int, step []int32, w []bool) *symbolic {
	copy(w, pat)
	sym := &symbolic{
		piv:    make([]int32, n),
		search: make([][]int32, n),
		elim:   make([][]int32, n),
		utail:  make([][]int32, n),
		lrow:   make([][]int32, n),
		urow:   make([][]int32, n),
	}
	copy(sym.piv, step)
	// perm[i] is the original row currently at working position i; it
	// maps zero-initialisation targets back to the input frame.
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	for k := 0; k < n; k++ {
		var rows []int32
		for i := k + 1; i < n; i++ {
			if w[i*n+k] {
				rows = append(rows, int32(i))
			}
		}
		sym.search[k] = rows
		// The pivot search also reads the working diagonal; when it is
		// structurally zero the dense scan sees exact +0 there.
		if !w[k*n+k] {
			sym.zero = append(sym.zero, perm[k]*int32(n)+int32(k))
		}
		if p := int(step[k]); p != k {
			for j := 0; j < n; j++ {
				w[k*n+j], w[p*n+j] = w[p*n+j], w[k*n+j]
			}
			perm[k], perm[p] = perm[p], perm[k]
		}
		var er, uc []int32
		for i := k + 1; i < n; i++ {
			if w[i*n+k] {
				er = append(er, int32(i))
			}
		}
		for j := k + 1; j < n; j++ {
			if w[k*n+j] {
				uc = append(uc, int32(j))
			}
		}
		sym.elim[k], sym.utail[k] = er, uc
		// Fill-in: eliminating row i against pivot row k writes every
		// update column of the pivot row. (The numeric loop may skip a
		// row whose multiplier is exactly zero; the superset is safe.)
		// A first-time fill cell is read-modified by the update before
		// anything wrote it, so it must start as the +0 the dense path
		// would hold there.
		for _, i := range er {
			ri := w[int(i)*n : int(i)*n+n]
			oi := perm[int(i)] * int32(n)
			for _, j := range uc {
				if !ri[j] {
					ri[j] = true
					sym.zero = append(sym.zero, oi+int32(j))
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		var lr, ur []int32
		for j := 0; j < i; j++ {
			if w[i*n+j] {
				lr = append(lr, int32(j))
			}
		}
		for j := i + 1; j < n; j++ {
			if w[i*n+j] {
				ur = append(ur, int32(j))
			}
		}
		sym.lrow[i], sym.urow[i] = lr, ur
		sym.nnz += len(lr) + len(ur) + 1
	}
	return sym
}

// SparseLU is a factorisation workspace that exploits the structural
// sparsity of MNA matrices. The first Refactor runs the dense LU and
// records its pivot sequence; a symbolic pass then simulates the
// elimination on the stamp pattern under that sequence, computing
// fill-in and the per-step structure. Subsequent Refactors run only
// over the symbolic structure, skipping every structurally-zero
// multiply-add — bit-identical to the dense path provided the numeric
// pivot choice still matches the cached sequence, which each step
// verifies before committing; on a mismatch (or on the first call) the
// call falls back to the dense LU and re-learns the sequence, so the
// result is the dense result either way.
//
// The bit-identity argument: cells outside the filled pattern hold
// exact +0 throughout the dense elimination (MNA assembly accumulates
// from +0 and IEEE-754 addition/subtraction of non-negative-zero terms
// never produces -0), so the multiply-adds the sparse path skips would
// have contributed exactly ±0 to sums that are themselves never -0.
// The one place the two factored arrays differ is the dense path's
// ±0 multipliers stored at structurally-zero L cells; those never
// reach an arithmetic result, which the solver's property tests pin
// down by comparing solve outputs and determinants bit for bit.
type SparseLU struct {
	n     int
	dense *LU
	pat   []bool
	// patIdx lists the flat indices of the pattern cells; the numeric
	// replay initialises exactly these from the input matrix (plus the
	// analysis's zero cells) instead of copying all n² cells — for the
	// banded ladder system that turns a half-megabyte copy per
	// factorisation into a few thousand indexed moves.
	patIdx []int32
	sym    *symbolic
	// cands holds every symbolic analysis learned so far, keyed by a
	// hash of its pivot sequence (hash collisions resolved by exact
	// comparison). Newton solves revisit the same sequences over and
	// over (device operating regions shift the column magnitudes, the
	// convergence aids shift the diagonals — a transient walks through
	// a few hundred distinct sequences and then repeats them), so a
	// dense fallback first looks for an existing analysis of the
	// sequence it just recorded before paying for a new one — steady
	// state then re-analyses nothing, no matter how often the pivots
	// flip.
	cands  map[uint64][]*symbolic
	nCands int
	// mru holds the most recently used analyses, most recent first. A
	// transient's pivot sequences flip within a small working set, so
	// on a mismatch at step k with observed pivot p the right analysis
	// is almost always one of these: any candidate agreeing with the
	// verified prefix and choosing p at step k can be retried sparsely
	// instead of falling back to the dense path.
	mru [8]*symbolic
	// lastSparse selects the triangular-solve structure matching the
	// most recent factorisation (the dense fallback fills L cells the
	// symbolic structure does not track).
	lastSparse bool
	// symW is the scratch working pattern for buildSymbolic, reused
	// across analyses (the build overwrites it wholesale).
	symW []bool
}

// maxSymbolicCands bounds the per-workspace analysis cache; reaching it
// drops the whole cache and re-learns (an epoch reset — rare, and far
// cheaper than the per-call thrash of evicting from a live working
// set). A transient walks through a few hundred distinct sequences as
// devices switch regions, so the bound sits well above that; an
// analysis is a few kilobytes.
const maxSymbolicCands = 1024

// NewSparseLU returns a workspace for matrices with the given stamp
// pattern. The pattern is captured by value; later Marks are ignored.
func NewSparseLU(p *Pattern) *SparseLU {
	pat := make([]bool, len(p.nz))
	copy(pat, p.nz)
	return &SparseLU{
		n:      p.N,
		dense:  NewLU(p.N),
		pat:    pat,
		patIdx: append([]int32(nil), p.idx...),
	}
}

// N returns the system size.
func (s *SparseLU) N() int { return s.n }

// FillNNZ returns the filled nonzero count of the current symbolic
// analysis (0 before the first factorisation).
func (s *SparseLU) FillNNZ() int {
	if s.sym == nil {
		return 0
	}
	return s.sym.nnz
}

// Refactor factors m, preferring the symbolic path and falling back to
// the dense LU on first use or on a pivot-cache mismatch. m must have
// its nonzeros inside the workspace's pattern (unmarked cells exactly
// +0), which holds by construction for MNA-assembled matrices. The
// returned path reports which implementation ran; the numeric result
// is identical either way. Errors match the dense LU's.
func (s *SparseLU) Refactor(m *Matrix) (FactorPath, error) {
	if m.N != s.n {
		return FactorDense, fmt.Errorf("solver: refactor size %d into sparse workspace of size %d", m.N, s.n)
	}
	if s.sym != nil {
		// Up to three sparse attempts: the cached sequence, then known
		// sequences that agree with the prefix verified so far and the
		// pivot observed at the failing step. Each retry strictly extends
		// the verified prefix, so the loop cannot revisit a candidate.
		for attempt := 0; attempt < 3; attempt++ {
			ok, failK, failP, err := s.refactorSparse(m)
			if err != nil {
				// The sparse path is arithmetic-identical up to the
				// failing step, so the dense path would report the same
				// singularity.
				return FactorSparse, err
			}
			if ok {
				s.lastSparse = true
				s.touch(s.sym)
				return FactorSparse, nil
			}
			alt := s.altCandidate(s.sym, failK, failP)
			if alt == nil {
				break
			}
			s.sym = alt
		}
	}
	s.lastSparse = false
	if err := s.dense.Refactor(m); err != nil {
		// The recorded step sequence is partial; drop any stale
		// analysis so the next call re-learns from scratch.
		s.sym = nil
		return FactorDense, err
	}
	s.sym = s.analysisFor(s.dense.step)
	s.touch(s.sym)
	return FactorDense, nil
}

// touch promotes sym to the front of the MRU list.
func (s *SparseLU) touch(sym *symbolic) {
	if s.mru[0] == sym {
		return
	}
	prev := sym
	for i := range s.mru {
		s.mru[i], prev = prev, s.mru[i]
		if prev == sym {
			break
		}
	}
}

// altCandidate returns a recently used analysis whose pivot sequence
// agrees with cur on the verified prefix [0, k) and chooses pivot p at
// step k — the sequence the numeric factorisation is following, if it
// is a known one.
func (s *SparseLU) altCandidate(cur *symbolic, k int, p int32) *symbolic {
	for _, c := range s.mru {
		if c == nil || c == cur {
			continue
		}
		if c.piv[k] == p && int32sEqual(c.piv[:k], cur.piv[:k]) {
			return c
		}
	}
	return nil
}

// analysisFor returns the cached symbolic analysis of the given pivot
// sequence, building (and remembering) it on first sight.
func (s *SparseLU) analysisFor(step []int32) *symbolic {
	h := hashInt32s(step)
	for _, c := range s.cands[h] {
		if int32sEqual(c.piv, step) {
			return c
		}
	}
	if s.symW == nil {
		s.symW = make([]bool, s.n*s.n)
	}
	sym := buildSymbolic(s.pat, s.n, step, s.symW)
	if s.nCands >= maxSymbolicCands {
		s.cands, s.nCands = nil, 0
	}
	if s.cands == nil {
		s.cands = make(map[uint64][]*symbolic)
	}
	s.cands[h] = append(s.cands[h], sym)
	s.nCands++
	return sym
}

// hashInt32s is FNV-1a over the sequence's little-endian bytes.
func hashInt32s(a []int32) uint64 {
	h := uint64(14695981039346656037)
	for _, v := range a {
		u := uint32(v)
		for sh := 0; sh < 32; sh += 8 {
			h ^= uint64(byte(u >> sh))
			h *= 1099511628211
		}
	}
	return h
}

func int32sEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// refactorSparse replays the elimination over the symbolic structure,
// verifying the pivot choice of every step against the cache. Returns
// ok=false (workspace contents undefined) when the numeric pivot
// diverges from the cached sequence, along with the failing step and
// the pivot row the dense argmax would have chosen there.
func (s *SparseLU) refactorSparse(m *Matrix) (ok bool, failK int, failP int32, err error) {
	n := s.n
	f := s.dense
	sym := s.sym
	lu := f.lu
	// Initialise only the cells the replay will touch: pattern cells
	// carry the input values, fill/diagonal targets the exact +0 the
	// dense elimination would find there. Cells outside both sets keep
	// stale garbage — the structure guarantees they are never read, and
	// the row interchanges only shuffle them among equally-unread cells.
	a := m.A
	for _, idx := range s.patIdx {
		lu[idx] = a[idx]
	}
	for _, idx := range sym.zero {
		lu[idx] = 0
	}
	f.sign = 1
	for i := range f.piv {
		f.piv[i] = i
	}
	const tiny = 1e-300
	for k := 0; k < n; k++ {
		// Pivot search over the structural column only: unmarked cells
		// hold exact +0 and can never strictly exceed max ≥ 0, so the
		// argmax equals the dense scan's.
		p, max := k, math.Abs(lu[k*n+k])
		for _, ii := range sym.search[k] {
			if a := math.Abs(lu[int(ii)*n+k]); a > max {
				p, max = int(ii), a
			}
		}
		if max < tiny {
			return false, 0, 0, fmt.Errorf("%w: pivot %d (|p|=%g)", ErrSingular, k, max)
		}
		if p != int(sym.piv[k]) {
			return false, k, int32(p), nil
		}
		if p != k {
			for j := 0; j < n; j++ {
				lu[k*n+j], lu[p*n+j] = lu[p*n+j], lu[k*n+j]
			}
			f.piv[k], f.piv[p] = f.piv[p], f.piv[k]
			f.sign = -f.sign
		}
		f.step[k] = int32(p)
		rowk := lu[k*n : k*n+n]
		pivot := rowk[k]
		for _, ii := range sym.elim[k] {
			i := int(ii)
			rowi := lu[i*n : i*n+n]
			l := rowi[k] / pivot
			rowi[k] = l
			if l == 0 {
				continue
			}
			for _, jj := range sym.utail[k] {
				j := int(jj)
				rowi[j] -= l * rowk[j]
			}
		}
	}
	return true, 0, 0, nil
}

// SolveInto solves A·x = b for the factored A into the caller-provided
// x (len n), allocation-free; b is not modified and x must not alias
// it (panics on the exact-overlap case, like LU.SolveInto). After a
// sparse factorisation the triangular solves run over the symbolic
// structure only, which is bit-identical to the dense solve (the
// skipped coefficients are ±0 and the partial sums they would join
// are never -0).
func (s *SparseLU) SolveInto(x, b []float64) []float64 {
	if !s.lastSparse {
		return s.dense.SolveInto(x, b)
	}
	checkNoAlias(x, b)
	n := s.n
	f := s.dense
	lu := f.lu
	sym := s.sym
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	for i := 1; i < n; i++ {
		var sum float64
		row := lu[i*n : i*n+n]
		for _, j := range sym.lrow[i] {
			sum += row[j] * x[j]
		}
		x[i] -= sum
	}
	for i := n - 1; i >= 0; i-- {
		var sum float64
		row := lu[i*n : i*n+n]
		for _, j := range sym.urow[i] {
			sum += row[j] * x[j]
		}
		x[i] = (x[i] - sum) / row[i]
	}
	return x
}

// Solve returns x with A·x = b for the factored A. b is not modified.
func (s *SparseLU) Solve(b []float64) []float64 {
	return s.SolveInto(make([]float64, s.n), b)
}

// Det returns the determinant of the factored matrix.
func (s *SparseLU) Det() float64 { return s.dense.Det() }
