package solver

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// mnaSystem is a randomized MNA-shaped test system: a pattern recorded
// from synthetic "stamps" (conductances between node pairs, ideal
// sources on aux rows) and an assembler that accumulates the numeric
// values the same way the engine does — starting from +0, additions
// only — so matrices are representative of what the sparse path sees.
type mnaSystem struct {
	n     int
	pat   *Pattern
	conds [][2]int // node-pair conductance stamps (-1 = ground)
	gvals []float64
	srcs  [][2]int // (node, auxRow) ideal-source stamps
}

func randMNA(rng *rand.Rand) *mnaSystem {
	nodes := 3 + rng.Intn(12)
	aux := rng.Intn(3)
	s := &mnaSystem{n: nodes + aux, pat: NewPattern(nodes + aux)}
	for c := 0; c < 2*nodes; c++ {
		i := rng.Intn(nodes + 1)
		j := rng.Intn(nodes + 1)
		for j == i {
			j = rng.Intn(nodes + 1)
		}
		// Index nodes 1..nodes as MNA vars 0..nodes-1; 0 is ground.
		s.conds = append(s.conds, [2]int{i - 1, j - 1})
		s.gvals = append(s.gvals, math.Exp(rng.NormFloat64()*2))
	}
	for a := 0; a < aux; a++ {
		s.srcs = append(s.srcs, [2]int{rng.Intn(nodes), nodes + a})
	}
	for _, c := range s.conds {
		i, j := c[0], c[1]
		if i >= 0 {
			s.pat.Mark(i, i)
		}
		if j >= 0 {
			s.pat.Mark(j, j)
		}
		if i >= 0 && j >= 0 {
			s.pat.Mark(i, j)
			s.pat.Mark(j, i)
		}
	}
	for _, sv := range s.srcs {
		i, a := sv[0], sv[1]
		s.pat.Mark(i, a)
		s.pat.Mark(a, i)
	}
	// Leak diagonal on the node vars, as assemble applies.
	for i := 0; i < nodes; i++ {
		s.pat.Mark(i, i)
	}
	return s
}

// assemble builds the numeric matrix with every conductance scaled; the
// accumulation order is fixed so two calls with the same scale produce
// identical bits.
func (s *mnaSystem) assemble(m *Matrix, scale float64) {
	m.Zero()
	for ci, c := range s.conds {
		g := s.gvals[ci] * scale
		i, j := c[0], c[1]
		if i >= 0 {
			m.Add(i, i, g)
		}
		if j >= 0 {
			m.Add(j, j, g)
		}
		if i >= 0 && j >= 0 {
			m.Add(i, j, -g)
			m.Add(j, i, -g)
		}
	}
	for _, sv := range s.srcs {
		i, a := sv[0], sv[1]
		m.Add(i, a, 1)
		m.Add(a, i, 1)
	}
	nodes := s.n - len(s.srcs)
	for i := 0; i < nodes; i++ {
		m.Add(i, i, 1e-12)
	}
}

func bitsEqual(t *testing.T, what string, got, want []float64) {
	t.Helper()
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s[%d]: got %x (%g), want %x (%g)",
				what, i, math.Float64bits(got[i]), got[i],
				math.Float64bits(want[i]), want[i])
		}
	}
}

// TestSparseMatchesDenseBitForBit is the property test of the tentpole
// contract: over randomized MNA-shaped sparse systems, the sparse path
// (learn, then symbolic refactors across perturbed values) solves and
// computes determinants bit-identically to a fresh dense factorisation.
func TestSparseMatchesDenseBitForBit(t *testing.T) {
	rng := rand.New(rand.NewSource(1995))
	var sparseRuns int
	for trial := 0; trial < 60; trial++ {
		s := randMNA(rng)
		n := s.n
		slu := NewSparseLU(s.pat)
		dm := NewMatrix(n)
		ref := NewLU(n)
		b := make([]float64, n)
		xs := make([]float64, n)
		xd := make([]float64, n)
		for rep := 0; rep < 7; rep++ {
			// Gentle value drift: pivots usually stay on the cached
			// sequence so the symbolic path is exercised.
			s.assemble(dm, 1+float64(rep)*1e-3)
			path, err := slu.Refactor(dm)
			errD := ref.Refactor(dm)
			if (err == nil) != (errD == nil) {
				t.Fatalf("trial %d rep %d: sparse err %v vs dense err %v", trial, rep, err, errD)
			}
			if err != nil {
				if err.Error() != errD.Error() {
					t.Fatalf("singular error text diverged: %q vs %q", err, errD)
				}
				continue
			}
			if rep == 0 && path != FactorDense {
				t.Fatalf("first factorisation must learn through the dense path")
			}
			if path == FactorSparse {
				sparseRuns++
			}
			if db, sb := math.Float64bits(ref.Det()), math.Float64bits(slu.Det()); db != sb {
				t.Fatalf("trial %d rep %d: det bits %x vs %x", trial, rep, sb, db)
			}
			for bt := 0; bt < 3; bt++ {
				for i := range b {
					b[i] = 0
					b[i] += rng.NormFloat64()
				}
				bitsEqual(t, "x", slu.SolveInto(xs, b), ref.SolveInto(xd, b))
			}
		}
	}
	if sparseRuns == 0 {
		t.Fatal("property test never exercised the symbolic path")
	}
}

// TestSparsePivotMismatchFallsBack forces a pivot-sequence change and
// proves the dense fallback engages with bit-identical results, then
// that the re-learned sequence restores the symbolic path.
func TestSparsePivotMismatchFallsBack(t *testing.T) {
	pat := NewPattern(2)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			pat.Mark(i, j)
		}
	}
	slu := NewSparseLU(pat)
	ref := NewLU(2)
	set := func(m *Matrix, a, b, c, d float64) {
		m.Zero()
		m.Add(0, 0, a)
		m.Add(0, 1, b)
		m.Add(1, 0, c)
		m.Add(1, 1, d)
	}
	m := NewMatrix(2)
	check := func(wantPath FactorPath, step string) {
		t.Helper()
		path, err := slu.Refactor(m)
		if err != nil {
			t.Fatalf("%s: %v", step, err)
		}
		if path != wantPath {
			t.Fatalf("%s: path = %v, want %v", step, path, wantPath)
		}
		if err := ref.Refactor(m); err != nil {
			t.Fatal(err)
		}
		b := []float64{1, -2}
		xs := make([]float64, 2)
		xd := make([]float64, 2)
		bitsEqual(t, step, slu.SolveInto(xs, b), ref.SolveInto(xd, b))
		if math.Float64bits(slu.Det()) != math.Float64bits(ref.Det()) {
			t.Fatalf("%s: det diverged", step)
		}
	}

	set(m, 1, 2, 3, 4) // |3| > |1|: pivot row 1 at step 0
	check(FactorDense, "learn")
	set(m, 1.001, 2, 3, 4)
	check(FactorSparse, "replay")
	set(m, 5, 2, 3, 4) // |5| > |3|: pivot row 0 — cache mismatch
	check(FactorDense, "fallback")
	set(m, 5.001, 2, 3, 4)
	check(FactorSparse, "relearned replay")
}

// TestSparseSingularMatchesDense pins the error contract: a singular
// system reports the same error through either path.
func TestSparseSingularMatchesDense(t *testing.T) {
	pat := NewPattern(2)
	pat.Mark(0, 0)
	pat.Mark(0, 1)
	pat.Mark(1, 0)
	pat.Mark(1, 1)
	slu := NewSparseLU(pat)
	m := NewMatrix(2)
	m.Add(0, 0, 1)
	m.Add(0, 1, 2)
	m.Add(1, 0, 2)
	m.Add(1, 1, 4)
	if _, err := slu.Refactor(m); !errors.Is(err, ErrSingular) {
		t.Fatalf("learning path: err = %v, want ErrSingular", err)
	}
	// Learn on a non-singular system, then hit the singular one through
	// the symbolic path: same error text as the dense factorisation.
	m2 := NewMatrix(2)
	m2.Add(0, 0, 1)
	m2.Add(0, 1, 2)
	m2.Add(1, 0, 2)
	m2.Add(1, 1, 5)
	if _, err := slu.Refactor(m2); err != nil {
		t.Fatal(err)
	}
	_, errS := slu.Refactor(m)
	errD := NewLU(2).Refactor(m)
	if errS == nil || errD == nil || errS.Error() != errD.Error() {
		t.Fatalf("singular errors diverged: %v vs %v", errS, errD)
	}
}

// TestSparseLadderBand exercises a tridiagonal (resistor-ladder-like)
// system where fill-in stays narrow, and checks the symbolic path runs
// and keeps bit-identity at a realistic size.
func TestSparseLadderBand(t *testing.T) {
	n := 257
	pat := NewPattern(n)
	m := NewMatrix(n)
	assemble := func(scale float64) {
		m.Zero()
		for i := 0; i < n; i++ {
			if i > 0 {
				g := scale * (1 + float64(i%7)*0.1)
				m.Add(i, i, g)
				m.Add(i-1, i-1, g)
				m.Add(i, i-1, -g)
				m.Add(i-1, i, -g)
			}
			m.Add(i, i, 1e-12)
		}
	}
	for i := 0; i < n; i++ {
		pat.Mark(i, i)
		if i > 0 {
			pat.Mark(i, i-1)
			pat.Mark(i-1, i)
		}
	}
	slu := NewSparseLU(pat)
	ref := NewLU(n)
	b := make([]float64, n)
	for i := range b {
		b[i] = math.Sin(float64(i))
	}
	xs := make([]float64, n)
	xd := make([]float64, n)
	for rep := 0; rep < 3; rep++ {
		assemble(1 + float64(rep)*1e-6)
		path, err := slu.Refactor(m)
		if err != nil {
			t.Fatal(err)
		}
		if rep > 0 && path != FactorSparse {
			t.Fatalf("rep %d: banded system fell off the symbolic path", rep)
		}
		if err := ref.Refactor(m); err != nil {
			t.Fatal(err)
		}
		bitsEqual(t, "x", slu.SolveInto(xs, b), ref.SolveInto(xd, b))
	}
	// Diagonal dominance keeps elimination pivot-free here, so the fill
	// stays tridiagonal: well under 1% of the dense cell count.
	if nnz := slu.FillNNZ(); nnz == 0 || nnz > 4*n {
		t.Fatalf("fill nnz = %d, want (0, %d]", nnz, 4*n)
	}
}

// TestCLUMatchesCSolve pins the AC workspace contract: Refactor +
// SolveInto reproduces the combined CSolve bit for bit, across reuse.
func TestCLUMatchesCSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(20)
		m := NewCMatrix(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if rng.Float64() < 0.4 || i == j {
					m.Add(i, j, complex(rng.NormFloat64(), rng.NormFloat64()))
				}
			}
		}
		clu := NewCLU(n)
		if err := clu.Refactor(m); err != nil {
			continue // singular draw; CSolve would fail identically
		}
		x := make([]complex128, n)
		for bt := 0; bt < 3; bt++ {
			b := make([]complex128, n)
			for i := range b {
				b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			}
			mc := NewCMatrix(n)
			copy(mc.A, m.A)
			want, err := CSolve(mc, append([]complex128(nil), b...))
			if err != nil {
				t.Fatal(err)
			}
			clu.SolveInto(x, b)
			for i := range want {
				if math.Float64bits(real(x[i])) != math.Float64bits(real(want[i])) ||
					math.Float64bits(imag(x[i])) != math.Float64bits(imag(want[i])) {
					t.Fatalf("trial %d x[%d] = %v, want %v", trial, i, x[i], want[i])
				}
			}
		}
	}
}

func TestCLUSingular(t *testing.T) {
	m := NewCMatrix(2)
	m.Add(0, 0, 1)
	m.Add(0, 1, 1)
	m.Add(1, 0, 2)
	m.Add(1, 1, 2)
	if err := NewCLU(2).Refactor(m); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

// TestPatternCountInterleavedDuplicates pins the incremental-index
// contract behind Count: idx records each cell exactly once in
// first-mark order, no matter how marks and duplicates interleave, so
// Count (= len(idx)) matches the number of distinct marked cells — the
// value the n²-scan definition would produce.
func TestPatternCountInterleavedDuplicates(t *testing.T) {
	p := NewPattern(5)
	marks := [][2]int{
		{0, 0}, {1, 3}, {0, 0}, {2, 2}, {1, 3}, {3, 1},
		{2, 2}, {4, 4}, {0, 0}, {3, 1}, {0, 4}, {1, 3},
	}
	distinct := map[[2]int]bool{}
	for step, mk := range marks {
		p.Mark(mk[0], mk[1])
		distinct[mk] = true
		scan := 0
		for i := 0; i < p.N; i++ {
			for j := 0; j < p.N; j++ {
				if p.Has(i, j) {
					scan++
				}
			}
		}
		if p.Count() != scan || p.Count() != len(distinct) {
			t.Fatalf("step %d: Count = %d, scan = %d, distinct = %d",
				step, p.Count(), scan, len(distinct))
		}
	}
}
