package solver

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// randPatterned builds a random sparse, diagonally dominant n×n system:
// a pattern with the full diagonal plus random symmetric off-diagonal
// pairs, and a matrix assembled with bounded off-diagonal values under
// a dominant diagonal — well-conditioned by construction, so solution
// comparisons between algorithms are meaningful at fixed tolerance.
func randPatterned(rng *rand.Rand, n int) (*Pattern, *Matrix) {
	pat := NewPattern(n)
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		pat.Mark(i, i)
		m.Set(i, i, float64(n)+rng.Float64())
	}
	for c := 0; c < 3*n; c++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		pat.Mark(i, j)
		pat.Mark(j, i)
		v := rng.Float64()*2 - 1
		m.Set(i, j, v)
		m.Set(j, i, v)
	}
	return pat, m
}

// armedSparseLU factors m twice so the workspace has learnt the pivot
// sequence and armed the sparse triangular solves — the state a shared
// nominal factorization is in.
func armedSparseLU(t *testing.T, pat *Pattern, m *Matrix) *SparseLU {
	t.Helper()
	s := NewSparseLU(pat)
	for i := 0; i < 2; i++ {
		if _, err := s.Refactor(m); err != nil {
			t.Fatalf("nominal refactor: %v", err)
		}
	}
	return s
}

// applyUpdate stamps the conductance terms of upd into m the way a
// resistor stamp would, producing the from-scratch reference matrix.
func applyUpdate(m *Matrix, upd LowRankUpdate) {
	for _, term := range upd.Terms {
		m.Add(term.I, term.I, term.G)
		if term.J != GroundTerm {
			m.Add(term.J, term.J, term.G)
			m.Add(term.I, term.J, -term.G)
			m.Add(term.J, term.I, -term.G)
		}
	}
}

// TestUpdatedSolverMatchesDirectFactor is the tentpole property test:
// over randomized patterned systems and randomized rank-1/rank-2
// conductance perturbations, the Sherman–Morrison–Woodbury path against
// the shared nominal factorization must agree with a from-scratch dense
// factorization of the perturbed matrix — both through the solution
// itself and through the perturbed-system residual.
func TestUpdatedSolverMatchesDirectFactor(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	solved := 0
	for trial := 0; trial < 300; trial++ {
		n := 4 + rng.Intn(24)
		pat, m := randPatterned(rng, n)
		base := armedSparseLU(t, pat, m)

		k := 1 + rng.Intn(2)
		var upd LowRankUpdate
		for s := 0; s < k; s++ {
			i := rng.Intn(n)
			j := rng.Intn(n+1) - 1 // -1 = ground side
			for j == i {
				j = rng.Intn(n+1) - 1
			}
			// Positive and negative deltas across many decades: shorts
			// are huge conductances, near-misses tiny ones, and negative
			// terms model a resistance increase.
			g := math.Exp(rng.NormFloat64() * 3)
			if rng.Intn(4) == 0 {
				g = -g / float64(n) // keep dominance: small negatives only
			}
			upd.Terms = append(upd.Terms, UpdateTerm{I: i, J: j, G: g})
		}

		us, err := NewUpdatedSolver(base, m, upd)
		if err != nil {
			if !errors.Is(err, ErrIllConditioned) {
				t.Fatalf("trial %d: unexpected error class: %v", trial, err)
			}
			continue // the guard declined; the fallback path would handle it
		}

		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x := us.Solve(b)

		ref := m.Clone()
		applyUpdate(ref, upd)
		want, err := SolveSystem(ref.Clone(), b)
		if err != nil {
			t.Fatalf("trial %d: reference factor failed where the guard passed: %v", trial, err)
		}
		tol := 1e-8 * (1 + NormInf(want))
		for i := range x {
			if d := math.Abs(x[i] - want[i]); !(d <= tol) {
				t.Fatalf("trial %d (n=%d, k=%d): x[%d] = %g, direct %g (Δ %.3g > %.3g)",
					trial, n, k, i, x[i], want[i], d, tol)
			}
		}
		if res := us.ResidualInf(x, b); !(res <= tol) {
			t.Fatalf("trial %d: perturbed-system residual %.3g > %.3g", trial, res, tol)
		}
		solved++
	}
	if solved < 250 {
		t.Fatalf("only %d/300 trials exercised the update path; the guard is over-firing", solved)
	}
}

// TestUpdatedSolverSingularCapacitanceFallsBack drives the capacitance
// matrix to exact singularity: for a ground-referenced rank-1 term,
// C = 1 + g·(A⁻¹)_II, so g = −1/(A⁻¹)_II makes the updated matrix —
// and C with it — singular. The constructor must refuse with
// ErrIllConditioned (the caller's fallback cue), never return a solver
// that would divide by the vanishing pivot. Nearby values within the
// κ∞ guard band must be refused too.
func TestUpdatedSolverSingularCapacitanceFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	pat, m := randPatterned(rng, 12)
	base := armedSparseLU(t, pat, m)

	// (A⁻¹)_II via one unit solve.
	e := make([]float64, 12)
	w := make([]float64, 12)
	const node = 5
	e[node] = 1
	base.SolveInto(w, e)
	gSing := -1 / w[node]

	for _, scale := range []float64{1, 1 + 1e-14, 1 - 1e-14} {
		upd := LowRankUpdate{Terms: []UpdateTerm{{I: node, J: GroundTerm, G: gSing * scale}}}
		if _, err := NewUpdatedSolver(base, m, upd); !errors.Is(err, ErrIllConditioned) {
			t.Fatalf("scale %v: singular capacitance accepted (err = %v)", scale, err)
		}
	}

	// Far from the singular value the same term must be accepted.
	upd := LowRankUpdate{Terms: []UpdateTerm{{I: node, J: GroundTerm, G: math.Abs(gSing)}}}
	if _, err := NewUpdatedSolver(base, m, upd); err != nil {
		t.Fatalf("well-conditioned term refused: %v", err)
	}
}

// TestUpdatedSolverRejectsBadTerms pins the constructor's validation:
// out-of-range indices, self-loops and non-finite conductances are
// ErrIllConditioned (fallback), not panics or silent acceptance.
func TestUpdatedSolverRejectsBadTerms(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pat, m := randPatterned(rng, 6)
	base := armedSparseLU(t, pat, m)
	bad := []UpdateTerm{
		{I: -1, J: 2, G: 1},
		{I: 6, J: 2, G: 1},
		{I: 2, J: 6, G: 1},
		{I: 2, J: -2, G: 1},
		{I: 3, J: 3, G: 1},
		{I: 0, J: 1, G: math.NaN()},
		{I: 0, J: 1, G: math.Inf(1)},
	}
	for _, term := range bad {
		upd := LowRankUpdate{Terms: []UpdateTerm{term}}
		if _, err := NewUpdatedSolver(base, m, upd); !errors.Is(err, ErrIllConditioned) {
			t.Fatalf("term %+v accepted (err = %v)", term, err)
		}
	}
}

// TestUpdatedSolverEmptyUpdate pins the degenerate case: zero terms
// means (A+0)x = b, so SolveInto must reduce to the base solve exactly.
func TestUpdatedSolverEmptyUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pat, m := randPatterned(rng, 8)
	base := armedSparseLU(t, pat, m)
	us, err := NewUpdatedSolver(base, m, LowRankUpdate{})
	if err != nil {
		t.Fatal(err)
	}
	if us.Rank() != 0 {
		t.Fatalf("Rank = %d", us.Rank())
	}
	b := make([]float64, 8)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	got := us.Solve(b)
	want := base.Solve(b)
	bitsEqual(t, "empty-update solve", got, want)
}
