// Package solver provides the dense linear-algebra kernel of the analog
// simulator: LU factorisation with partial pivoting and triangular solves.
// MNA matrices of macro-cell circuits are small (tens of unknowns), so a
// dense solver is both simpler and faster than a sparse one here.
package solver

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when factorisation encounters a pivot that is
// numerically zero.
var ErrSingular = errors.New("solver: matrix is singular")

// Matrix is a dense row-major square matrix.
type Matrix struct {
	N int
	A []float64
}

// NewMatrix returns an n×n zero matrix.
func NewMatrix(n int) *Matrix {
	return &Matrix{N: n, A: make([]float64, n*n)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.A[i*m.N+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.A[i*m.N+j] = v }

// Add accumulates into element (i, j).
func (m *Matrix) Add(i, j int, v float64) { m.A[i*m.N+j] += v }

// Zero clears all entries (retaining the allocation).
func (m *Matrix) Zero() {
	for i := range m.A {
		m.A[i] = 0
	}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.N)
	copy(c.A, m.A)
	return c
}

// MulVec computes y = m·x.
func (m *Matrix) MulVec(x []float64) []float64 {
	y := make([]float64, m.N)
	for i := 0; i < m.N; i++ {
		var s float64
		row := m.A[i*m.N : (i+1)*m.N]
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// String formats the matrix for debugging.
func (m *Matrix) String() string {
	s := ""
	for i := 0; i < m.N; i++ {
		for j := 0; j < m.N; j++ {
			s += fmt.Sprintf("%12.4g ", m.At(i, j))
		}
		s += "\n"
	}
	return s
}

// LU holds an in-place LU factorisation with a pivot permutation.
type LU struct {
	n    int
	lu   []float64
	piv  []int
	sign int
}

// Factor computes the LU factorisation of m with partial pivoting. m is not
// modified. Returns ErrSingular if a pivot magnitude falls below tiny.
func Factor(m *Matrix) (*LU, error) {
	n := m.N
	f := &LU{n: n, lu: make([]float64, n*n), piv: make([]int, n), sign: 1}
	copy(f.lu, m.A)
	for i := range f.piv {
		f.piv[i] = i
	}
	const tiny = 1e-300
	for k := 0; k < n; k++ {
		// Pivot search in column k.
		p, max := k, math.Abs(f.lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if a := math.Abs(f.lu[i*n+k]); a > max {
				p, max = i, a
			}
		}
		if max < tiny {
			return nil, fmt.Errorf("%w: pivot %d (|p|=%g)", ErrSingular, k, max)
		}
		if p != k {
			for j := 0; j < n; j++ {
				f.lu[k*n+j], f.lu[p*n+j] = f.lu[p*n+j], f.lu[k*n+j]
			}
			f.piv[k], f.piv[p] = f.piv[p], f.piv[k]
			f.sign = -f.sign
		}
		pivot := f.lu[k*n+k]
		for i := k + 1; i < n; i++ {
			l := f.lu[i*n+k] / pivot
			f.lu[i*n+k] = l
			if l == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				f.lu[i*n+j] -= l * f.lu[k*n+j]
			}
		}
	}
	return f, nil
}

// Solve returns x with A·x = b for the factored A. b is not modified.
func (f *LU) Solve(b []float64) []float64 {
	n := f.n
	x := make([]float64, n)
	// Apply permutation.
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution (L has unit diagonal).
	for i := 1; i < n; i++ {
		var s float64
		for j := 0; j < i; j++ {
			s += f.lu[i*n+j] * x[j]
		}
		x[i] -= s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		var s float64
		for j := i + 1; j < n; j++ {
			s += f.lu[i*n+j] * x[j]
		}
		x[i] = (x[i] - s) / f.lu[i*n+i]
	}
	return x
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.n; i++ {
		d *= f.lu[i*f.n+i]
	}
	return d
}

// SolveSystem factors m and solves m·x = b in one call.
func SolveSystem(m *Matrix, b []float64) ([]float64, error) {
	f, err := Factor(m)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}

// NormInf returns the infinity norm of the vector v.
func NormInf(v []float64) float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}
