// Package solver provides the dense linear-algebra kernel of the analog
// simulator: LU factorisation with partial pivoting and triangular solves.
// MNA matrices of macro-cell circuits are small (tens of unknowns), so a
// dense solver is both simpler and faster than a sparse one here.
package solver

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when factorisation encounters a pivot that is
// numerically zero.
var ErrSingular = errors.New("solver: matrix is singular")

// Matrix is a dense row-major square matrix.
type Matrix struct {
	N int
	A []float64
}

// NewMatrix returns an n×n zero matrix.
func NewMatrix(n int) *Matrix {
	return &Matrix{N: n, A: make([]float64, n*n)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.A[i*m.N+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.A[i*m.N+j] = v }

// Add accumulates into element (i, j).
func (m *Matrix) Add(i, j int, v float64) { m.A[i*m.N+j] += v }

// Zero clears all entries (retaining the allocation).
func (m *Matrix) Zero() {
	for i := range m.A {
		m.A[i] = 0
	}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.N)
	copy(c.A, m.A)
	return c
}

// MulVec computes y = m·x.
func (m *Matrix) MulVec(x []float64) []float64 {
	return m.MulVecInto(make([]float64, m.N), x)
}

// MulVecInto computes y = m·x into the caller-provided y (len m.N),
// allocation-free. y must not alias x.
func (m *Matrix) MulVecInto(y, x []float64) []float64 {
	for i := 0; i < m.N; i++ {
		var s float64
		row := m.A[i*m.N : (i+1)*m.N]
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// String formats the matrix for debugging.
func (m *Matrix) String() string {
	s := ""
	for i := 0; i < m.N; i++ {
		for j := 0; j < m.N; j++ {
			s += fmt.Sprintf("%12.4g ", m.At(i, j))
		}
		s += "\n"
	}
	return s
}

// LU holds an in-place LU factorisation with a pivot permutation.
type LU struct {
	n    int
	lu   []float64
	piv  []int
	sign int
	// step records, per elimination step k, which row p ≥ k was chosen
	// as the pivot (p == k when no interchange happened). It is the
	// sequence the sparse path caches and later verifies against; the
	// permutation in piv is its composed form.
	step []int32
}

// NewLU returns a reusable factorisation workspace for n×n systems. A
// single workspace amortises the pivot/permutation and triangular-factor
// buffers across every Refactor/SolveInto of a Newton iteration loop.
func NewLU(n int) *LU {
	return &LU{n: n, lu: make([]float64, n*n), piv: make([]int, n), sign: 1, step: make([]int32, n)}
}

// Factor computes the LU factorisation of m with partial pivoting. m is not
// modified. Returns ErrSingular if a pivot magnitude falls below tiny.
func Factor(m *Matrix) (*LU, error) {
	f := NewLU(m.N)
	if err := f.Refactor(m); err != nil {
		return nil, err
	}
	return f, nil
}

// Refactor recomputes the factorisation of m in the workspace's cached
// buffers, allocation-free. m must be n×n for the workspace's n; m is not
// modified. The arithmetic is identical to Factor, so refactoring through
// a reused workspace is bit-for-bit equivalent to a fresh factorisation.
func (f *LU) Refactor(m *Matrix) error {
	n := f.n
	if m.N != n {
		return fmt.Errorf("solver: refactor size %d into workspace of size %d", m.N, n)
	}
	copy(f.lu, m.A)
	f.sign = 1
	for i := range f.piv {
		f.piv[i] = i
	}
	const tiny = 1e-300
	for k := 0; k < n; k++ {
		// Pivot search in column k.
		p, max := k, math.Abs(f.lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if a := math.Abs(f.lu[i*n+k]); a > max {
				p, max = i, a
			}
		}
		if max < tiny {
			return fmt.Errorf("%w: pivot %d (|p|=%g)", ErrSingular, k, max)
		}
		f.step[k] = int32(p)
		if p != k {
			for j := 0; j < n; j++ {
				f.lu[k*n+j], f.lu[p*n+j] = f.lu[p*n+j], f.lu[k*n+j]
			}
			f.piv[k], f.piv[p] = f.piv[p], f.piv[k]
			f.sign = -f.sign
		}
		// Row slices let the compiler drop bounds checks in the update
		// loop; the arithmetic and its order are unchanged.
		rowk := f.lu[k*n : k*n+n]
		pivot := rowk[k]
		tail := rowk[k+1:]
		for i := k + 1; i < n; i++ {
			rowi := f.lu[i*n : i*n+n]
			l := rowi[k] / pivot
			rowi[k] = l
			if l == 0 {
				continue
			}
			ri := rowi[k+1:]
			for j, v := range tail {
				ri[j] -= l * v
			}
		}
	}
	return nil
}

// Solve returns x with A·x = b for the factored A. b is not modified.
func (f *LU) Solve(b []float64) []float64 {
	return f.SolveInto(make([]float64, f.n), b)
}

// SolveInto solves A·x = b for the factored A into the caller-provided x
// (len n), allocation-free. b is not modified; x must not alias b —
// the permutation pass reads b[piv[i]] after writing x[i], so an
// aliased call would fold already-permuted values back into the
// source. The overlap is a programming error, so it panics (same
// contract as an out-of-range index) rather than returning an error.
func (f *LU) SolveInto(x, b []float64) []float64 {
	checkNoAlias(x, b)
	n := f.n
	// Apply permutation.
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution (L has unit diagonal).
	for i := 1; i < n; i++ {
		var s float64
		row := f.lu[i*n : i*n+i]
		for j, v := range row {
			s += v * x[j]
		}
		x[i] -= s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		var s float64
		row := f.lu[i*n+i : i*n+n]
		for j, v := range row[1:] {
			s += v * x[i+1+j]
		}
		x[i] = (x[i] - s) / row[0]
	}
	return x
}

// checkNoAlias panics when x and b share a backing array at index 0 —
// the cheap exact test for the "x must not alias b" contract of the
// SolveInto methods. Partial overlaps of distinct slices are not
// detected (the check is one pointer comparison on the hot path), but
// the reuse bug this guards against is passing the same workspace for
// both arguments, which it catches exactly.
func checkNoAlias(x, b []float64) {
	if len(x) > 0 && len(b) > 0 && &x[0] == &b[0] {
		panic("solver: SolveInto x aliases b")
	}
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.n; i++ {
		d *= f.lu[i*f.n+i]
	}
	return d
}

// SolveSystem factors m and solves m·x = b in one call.
func SolveSystem(m *Matrix, b []float64) ([]float64, error) {
	f, err := Factor(m)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}

// NormInf returns the infinity norm of the vector v.
func NormInf(v []float64) float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}
