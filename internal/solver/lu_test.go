package solver

import (
	"errors"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveIdentity(t *testing.T) {
	m := NewMatrix(3)
	for i := 0; i < 3; i++ {
		m.Set(i, i, 1)
	}
	b := []float64{1, 2, 3}
	x, err := SolveSystem(m, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b {
		if math.Abs(x[i]-b[i]) > 1e-14 {
			t.Fatalf("x = %v", x)
		}
	}
}

func TestSolveKnownSystem(t *testing.T) {
	// 2x + y = 5 ; x + 3y = 10  =>  x = 1, y = 3
	m := NewMatrix(2)
	m.Set(0, 0, 2)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 1, 3)
	x, err := SolveSystem(m, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("x = %v, want [1 3]", x)
	}
}

func TestPivotingRequired(t *testing.T) {
	// Zero on the initial (0,0) position forces a row swap.
	m := NewMatrix(2)
	m.Set(0, 0, 0)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 1, 0)
	x, err := SolveSystem(m, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-3) > 1e-14 || math.Abs(x[1]-2) > 1e-14 {
		t.Fatalf("x = %v, want [3 2]", x)
	}
}

func TestSingularDetected(t *testing.T) {
	m := NewMatrix(2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 2)
	m.Set(1, 1, 4)
	if _, err := Factor(m); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestDeterminant(t *testing.T) {
	m := NewMatrix(2)
	m.Set(0, 0, 3)
	m.Set(0, 1, 1)
	m.Set(1, 0, 4)
	m.Set(1, 1, 2)
	f, err := Factor(m)
	if err != nil {
		t.Fatal(err)
	}
	if d := f.Det(); math.Abs(d-2) > 1e-12 {
		t.Fatalf("det = %g, want 2", d)
	}
	// Swapped rows: determinant flips sign.
	s := NewMatrix(2)
	s.Set(0, 0, 4)
	s.Set(0, 1, 2)
	s.Set(1, 0, 3)
	s.Set(1, 1, 1)
	fs, err := Factor(s)
	if err != nil {
		t.Fatal(err)
	}
	if d := fs.Det(); math.Abs(d+2) > 1e-12 {
		t.Fatalf("det = %g, want -2", d)
	}
}

func TestMatrixHelpers(t *testing.T) {
	m := NewMatrix(2)
	m.Add(0, 1, 2)
	m.Add(0, 1, 3)
	if m.At(0, 1) != 5 {
		t.Fatal("Add must accumulate")
	}
	c := m.Clone()
	c.Set(0, 1, 9)
	if m.At(0, 1) != 5 {
		t.Fatal("Clone must be deep")
	}
	m.Zero()
	if m.At(0, 1) != 0 {
		t.Fatal("Zero must clear")
	}
	if s := m.String(); s == "" {
		t.Fatal("String empty")
	}
	if NormInf([]float64{1, -7, 3}) != 7 {
		t.Fatal("NormInf")
	}
}

func TestMulVec(t *testing.T) {
	m := NewMatrix(2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 3)
	m.Set(1, 1, 4)
	y := m.MulVec([]float64{1, 1})
	if y[0] != 3 || y[1] != 7 {
		t.Fatalf("MulVec = %v", y)
	}
}

// Property: for random diagonally-dominant systems, solving and then
// multiplying back recovers b.
func TestQuickSolveRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%20) + 1
		rng := rand.New(rand.NewSource(seed))
		m := NewMatrix(n)
		for i := 0; i < n; i++ {
			var rowSum float64
			for j := 0; j < n; j++ {
				if i != j {
					v := rng.Float64()*2 - 1
					m.Set(i, j, v)
					rowSum += math.Abs(v)
				}
			}
			m.Set(i, i, rowSum+1+rng.Float64()) // strictly dominant
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.Float64()*10 - 5
		}
		x, err := SolveSystem(m, b)
		if err != nil {
			return false
		}
		back := m.MulVec(x)
		for i := range b {
			if math.Abs(back[i]-b[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: reusing one factorisation for multiple right-hand sides gives
// the same answers as factoring per solve.
func TestQuickFactorReuse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8
		m := NewMatrix(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				m.Set(i, j, rng.Float64())
			}
			m.Add(i, i, float64(n))
		}
		lu, err := Factor(m)
		if err != nil {
			return false
		}
		for trial := 0; trial < 3; trial++ {
			b := make([]float64, n)
			for i := range b {
				b[i] = rng.Float64()
			}
			x1 := lu.Solve(b)
			x2, err := SolveSystem(m, b)
			if err != nil {
				return false
			}
			for i := range x1 {
				if math.Abs(x1[i]-x2[i]) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveDoesNotMutateB(t *testing.T) {
	m := NewMatrix(2)
	m.Set(0, 0, 2)
	m.Set(1, 1, 2)
	b := []float64{4, 6}
	lu, _ := Factor(m)
	_ = lu.Solve(b)
	if b[0] != 4 || b[1] != 6 {
		t.Fatal("Solve mutated its input")
	}
}

func TestCSolveKnown(t *testing.T) {
	// (1+i)x = 2 → x = 1-i
	m := NewCMatrix(1)
	m.Add(0, 0, complex(1, 1))
	x, err := CSolve(m, []complex128{2})
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(x[0]-complex(1, -1)) > 1e-12 {
		t.Fatalf("x = %v", x[0])
	}
}

func TestCSolvePivoting(t *testing.T) {
	m := NewCMatrix(2)
	m.Add(0, 1, 1)
	m.Add(1, 0, 1)
	x, err := CSolve(m, []complex128{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(x[0]-5) > 1e-12 || cmplx.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("x = %v", x)
	}
}

func TestCSolveSingular(t *testing.T) {
	m := NewCMatrix(2)
	m.Add(0, 0, 1)
	m.Add(0, 1, 1)
	m.Add(1, 0, 2)
	m.Add(1, 1, 2)
	if _, err := CSolve(m, []complex128{1, 2}); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v", err)
	}
}

func TestCSolveRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 12
	orig := NewCMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			orig.Add(i, j, complex(rng.Float64(), rng.Float64()))
		}
		orig.Add(i, i, complex(float64(n), 0))
	}
	b := make([]complex128, n)
	for i := range b {
		b[i] = complex(rng.Float64(), rng.Float64())
	}
	// Keep copies (CSolve clobbers).
	mc := NewCMatrix(n)
	copy(mc.A, orig.A)
	bc := append([]complex128(nil), b...)
	x, err := CSolve(mc, bc)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		var s complex128
		for j := 0; j < n; j++ {
			s += orig.At(i, j) * x[j]
		}
		if cmplx.Abs(s-b[i]) > 1e-9 {
			t.Fatalf("row %d residual %g", i, cmplx.Abs(s-b[i]))
		}
	}
}

func TestCMatrixZero(t *testing.T) {
	m := NewCMatrix(2)
	m.Add(1, 1, 3)
	m.Zero()
	if m.At(1, 1) != 0 {
		t.Fatal("Zero failed")
	}
}

// mustPanic asserts fn panics; the SolveInto alias guards are
// programming-error checks, so they must fail loudly, not corrupt the
// back-substitution silently.
func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: no panic", what)
		}
	}()
	fn()
}

// TestSolveIntoAliasPanics pins the x-must-not-alias-b contract of every
// SolveInto in the package: back-substitution reads b while writing x,
// so exact overlap silently corrupts the solution. The guard panics on
// the detectable case (same first element) and distinct storage stays
// allowed.
func TestSolveIntoAliasPanics(t *testing.T) {
	m := NewMatrix(2)
	m.Set(0, 0, 2)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 1, 3)
	lu, err := Factor(m)
	if err != nil {
		t.Fatal(err)
	}
	v := []float64{1, 2}
	mustPanic(t, "dense LU", func() { lu.SolveInto(v, v) })

	pat := NewPattern(2)
	pat.Mark(0, 0)
	pat.Mark(0, 1)
	pat.Mark(1, 0)
	pat.Mark(1, 1)
	slu := NewSparseLU(pat)
	for i := 0; i < 2; i++ {
		if _, err := slu.Refactor(m); err != nil {
			t.Fatal(err)
		}
	}
	mustPanic(t, "sparse LU (armed)", func() { slu.SolveInto(v, v) })

	us, err := NewUpdatedSolver(slu, m, LowRankUpdate{Terms: []UpdateTerm{{I: 0, J: 1, G: 0.5}}})
	if err != nil {
		t.Fatal(err)
	}
	mustPanic(t, "updated solver", func() { us.SolveInto(v, v) })

	// Distinct slices of equal content must still be fine.
	x := make([]float64, 2)
	lu.SolveInto(x, v)
	slu.SolveInto(x, v)
	us.SolveInto(x, v)
}
