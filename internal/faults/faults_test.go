package faults

import (
	"context"
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/netlist"
	"repro/internal/process"
	"repro/internal/spice"
)

func TestKeyCanonical(t *testing.T) {
	a := Fault{Kind: Short, Nets: []string{"x", "y"}}
	b := Fault{Kind: Short, Nets: []string{"y", "x"}}
	if a.Key() != b.Key() {
		t.Fatal("net order must not matter")
	}
	c := Fault{Kind: Short, Nets: []string{"x", "z"}}
	if a.Key() == c.Key() {
		t.Fatal("different nets must differ")
	}
	d := Fault{Kind: Open, Nets: []string{"x", "y"}}
	if a.Key() == d.Key() {
		t.Fatal("kind must distinguish")
	}
	o1 := Fault{Kind: Open, Nets: []string{"n"}, FarTerminals: []Terminal{{"m1", "n"}, {"m2", "n"}}}
	o2 := Fault{Kind: Open, Nets: []string{"n"}, FarTerminals: []Terminal{{"m2", "n"}, {"m1", "n"}}}
	if o1.Key() != o2.Key() {
		t.Fatal("terminal order must not matter")
	}
}

func TestCollapse(t *testing.T) {
	fs := []Fault{
		{Kind: Short, Nets: []string{"a", "b"}},
		{Kind: Short, Nets: []string{"b", "a"}},
		{Kind: Short, Nets: []string{"a", "c"}},
		{Kind: ShortedDevice, Device: "m1"},
	}
	cs := Collapse(fs)
	if len(cs) != 3 {
		t.Fatalf("classes = %d, want 3", len(cs))
	}
	// Largest class first.
	if cs[0].Count != 2 || cs[0].Fault.Nets[0] != "a" || cs[0].Fault.Nets[1] != "b" {
		t.Fatalf("first class = %+v", cs[0])
	}
	total := 0
	for _, c := range cs {
		total += c.Count
	}
	if total != len(fs) {
		t.Fatalf("counts sum %d != %d", total, len(fs))
	}
}

// Property: Collapse preserves total count and is idempotent in class set.
func TestQuickCollapseConservation(t *testing.T) {
	kinds := []Kind{Short, Open, ShortedDevice, GOSPinhole}
	f := func(picks []uint8) bool {
		var fs []Fault
		for _, p := range picks {
			k := kinds[int(p)%len(kinds)]
			nets := []string{string(rune('a' + p%5)), string(rune('a' + (p/5)%5))}
			if nets[0] == nets[1] {
				nets[1] += "x"
			}
			flt := Fault{Kind: k, Nets: nets}
			if k == Open {
				flt.Nets = nets[:1]
				flt.FarTerminals = []Terminal{{"m" + nets[0], nets[0]}}
			}
			if k == ShortedDevice || k == GOSPinhole {
				flt.Nets = nil
				flt.Device = "m" + nets[0]
			}
			fs = append(fs, flt)
		}
		cs := Collapse(fs)
		total := 0
		seen := map[string]bool{}
		for _, c := range cs {
			total += c.Count
			k := c.Fault.Key()
			if seen[k] {
				return false // duplicate class
			}
			seen[k] = true
		}
		if total != len(fs) {
			return false
		}
		// Sorted by descending count.
		return sort.SliceIsSorted(cs, func(i, j int) bool {
			if cs[i].Count != cs[j].Count {
				return cs[i].Count > cs[j].Count
			}
			return cs[i].Fault.Key() < cs[j].Fault.Key()
		})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCountHelpers(t *testing.T) {
	fs := []Fault{
		{Kind: Short, Nets: []string{"a", "b"}},
		{Kind: Short, Nets: []string{"a", "b"}},
		{Kind: Open, Nets: []string{"c"}, FarTerminals: []Terminal{{"m", "c"}}},
	}
	byKind := CountByKind(fs)
	if byKind[Short] != 2 || byKind[Open] != 1 {
		t.Fatalf("CountByKind = %v", byKind)
	}
	cbk := ClassesByKind(Collapse(fs))
	if cbk[Short] != 1 || cbk[Open] != 1 {
		t.Fatalf("ClassesByKind = %v", cbk)
	}
}

func TestNonCatEligible(t *testing.T) {
	if !(Fault{Kind: Short}).NonCatEligible() || !(Fault{Kind: ExtraContactKind}).NonCatEligible() {
		t.Fatal("shorts and extra contacts evolve non-cat variants")
	}
	for _, k := range []Kind{GOSPinhole, JunctionPinholeKind, ThickOxPinhole, Open, NewDevice, ShortedDevice} {
		if (Fault{Kind: k}).NonCatEligible() {
			t.Fatalf("%v must not be non-cat eligible (already high-ohmic)", k)
		}
	}
}

func divider() *netlist.Builder {
	b := netlist.NewBuilder()
	b.Vsrc("vdd", "vdd", "0", netlist.DC(5))
	b.R("r1", "vdd", "mid", 1000)
	b.R("r2", "mid", "0", 1000)
	return b
}

func solveOP(t *testing.T, b *netlist.Builder) *spice.Solution {
	t.Helper()
	sol, err := spice.New(b.C, spice.DefaultOptions()).OP(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return sol
}

func TestInjectShort(t *testing.T) {
	proc := process.Default()
	b := divider()
	f := Fault{Kind: Short, Nets: []string{"mid", "vss"}, Res: 0.2}
	if err := Inject(b.C, f, proc, InjectOptions{}); err != nil {
		t.Fatal(err)
	}
	sol := solveOP(t, b)
	if v := sol.V("mid"); v > 0.01 {
		t.Fatalf("shorted mid = %g", v)
	}
	// vss resolves to ground.
	if _, ok := b.C.NodeByName("vss"); ok {
		t.Fatal("vss must have resolved to node 0, not created a new node")
	}
}

func TestInjectShortNonCat(t *testing.T) {
	proc := process.Default()
	b := divider()
	f := Fault{Kind: Short, Nets: []string{"mid", "vss"}, Res: 0.2}
	if err := Inject(b.C, f, proc, InjectOptions{NonCat: true}); err != nil {
		t.Fatal(err)
	}
	// 500 Ω to ground: mid = 5 * (500||1000)/(1000 + 500||1000) = 1.25
	sol := solveOP(t, b)
	if v := sol.V("mid"); math.Abs(v-1.25) > 1e-3 {
		t.Fatalf("non-cat mid = %g, want 1.25", v)
	}
	if b.C.Element("flt.0.c") == nil {
		t.Fatal("non-cat model must include the 1 fF capacitor")
	}
}

func TestInjectMultiNetShort(t *testing.T) {
	proc := process.Default()
	b := divider()
	b.R("r3", "mid", "other", 1000)
	f := Fault{Kind: Short, Nets: []string{"mid", "other", "vdd"}, Res: 1}
	if err := Inject(b.C, f, proc, InjectOptions{}); err != nil {
		t.Fatal(err)
	}
	sol := solveOP(t, b)
	if d := sol.V("mid") - sol.V("other"); math.Abs(d) > 0.02 {
		t.Fatalf("star short should equalise: d = %g", d)
	}
	if sol.V("mid") < 4.5 {
		t.Fatalf("mid should be pulled to vdd, got %g", sol.V("mid"))
	}
}

func TestInjectGOSVariants(t *testing.T) {
	proc := process.Default()
	for _, variant := range []GOSVariant{GOSToSource, GOSToDrain, GOSToChannel} {
		b := netlist.NewBuilder()
		b.Vsrc("vdd", "vdd", "0", netlist.DC(5))
		b.Vsrc("vg", "g", "0", netlist.DC(0))
		b.R("rl", "vdd", "d", 10e3)
		b.NMOS("m1", "d", "g", "0", 10, 1)
		f := Fault{Kind: GOSPinhole, Device: "m1"}
		if err := Inject(b.C, f, proc, InjectOptions{GOS: variant}); err != nil {
			t.Fatalf("%v: %v", variant, err)
		}
		sol := solveOP(t, b)
		// With gate driven to 0 through the pinhole path, some current
		// flows from the gate source; with GOSToDrain the drain is
		// dragged toward the 0 V gate.
		if variant == GOSToDrain {
			if v := sol.V("d"); v > 1.0 {
				t.Fatalf("GOS-to-drain: d = %g, want pulled down", v)
			}
		}
	}
	// Unknown device errors.
	b := divider()
	if err := Inject(b.C, Fault{Kind: GOSPinhole, Device: "zz"}, proc, InjectOptions{}); err == nil {
		t.Fatal("expected error for unknown device")
	}
}

func TestInjectShortedDevice(t *testing.T) {
	proc := process.Default()
	b := netlist.NewBuilder()
	b.Vsrc("vdd", "vdd", "0", netlist.DC(5))
	b.Vsrc("vg", "g", "0", netlist.DC(0)) // device off
	b.R("rl", "vdd", "d", 10e3)
	b.NMOS("m1", "d", "g", "0", 10, 1)
	pre := solveOP(t, b)
	if v := pre.V("d"); v < 4.9 {
		t.Fatalf("pre-fault d = %g", v)
	}
	if err := Inject(b.C, Fault{Kind: ShortedDevice, Device: "m1"}, proc, InjectOptions{}); err != nil {
		t.Fatal(err)
	}
	post := solveOP(t, b)
	if v := post.V("d"); v > 0.1 {
		t.Fatalf("shorted device d = %g, want ~0", v)
	}
}

func TestInjectOpen(t *testing.T) {
	proc := process.Default()
	b := divider()
	f := Fault{
		Kind: Open, Nets: []string{"mid"},
		FarTerminals: []Terminal{{Device: "r2", Net: "mid"}},
	}
	if err := Inject(b.C, f, proc, InjectOptions{}); err != nil {
		t.Fatal(err)
	}
	sol := solveOP(t, b)
	// r2 disconnected: mid floats to vdd through r1.
	if v := sol.V("mid"); v < 4.99 {
		t.Fatalf("open mid = %g, want ~5", v)
	}
	if v := sol.V("mid#split"); v > 0.01 {
		t.Fatalf("split side = %g, want ~0", v)
	}
}

func TestInjectOpenErrors(t *testing.T) {
	proc := process.Default()
	b := divider()
	if err := Inject(b.C, Fault{Kind: Open, Nets: []string{"mid"}}, proc, InjectOptions{}); err == nil {
		t.Fatal("open without terminals must error")
	}
	if err := Inject(b.C, Fault{Kind: Open, Nets: []string{"mid"},
		FarTerminals: []Terminal{{Device: "zz", Net: "mid"}}}, proc, InjectOptions{}); err == nil {
		t.Fatal("open on unknown element must error")
	}
	if err := Inject(b.C, Fault{Kind: Open, Nets: []string{"mid"},
		FarTerminals: []Terminal{{Device: "r1", Net: "nothere"}}}, proc, InjectOptions{}); err == nil {
		t.Fatal("open on unknown net must error")
	}
}

func TestInjectNewDevice(t *testing.T) {
	proc := process.Default()
	b := divider()
	f := Fault{
		Kind: NewDevice, Nets: []string{"mid"}, GateNet: "vdd",
		FarTerminals: []Terminal{{Device: "r2", Net: "mid"}},
	}
	if err := Inject(b.C, f, proc, InjectOptions{}); err != nil {
		t.Fatal(err)
	}
	sol := solveOP(t, b)
	// The parasitic NMOS with gate at 5 V conducts: divider partially
	// restored but with extra drop; mid sits between 2.5 and 5.
	v := sol.V("mid")
	if v <= 2.5 || v >= 5.0 {
		t.Fatalf("new-device mid = %g", v)
	}
	// Floating-gate variant: device off, behaves like the open.
	b2 := divider()
	f.GateNet = ""
	if err := Inject(b2.C, f, proc, InjectOptions{}); err != nil {
		t.Fatal(err)
	}
	sol2 := solveOP(t, b2)
	if v := sol2.V("mid"); v < 4.9 {
		t.Fatalf("floating-gate new device mid = %g, want ~5", v)
	}
}

func TestInjectJunctionAndThickOx(t *testing.T) {
	proc := process.Default()
	b := divider()
	f := Fault{Kind: JunctionPinholeKind, Nets: []string{"mid", "vss"}}
	if err := Inject(b.C, f, proc, InjectOptions{}); err != nil {
		t.Fatal(err)
	}
	sol := solveOP(t, b)
	// 2 kΩ to ground from mid: v = 5 * (2k||1k)/(1k + 2k||1k) = 2
	if v := sol.V("mid"); math.Abs(v-2.0) > 1e-3 {
		t.Fatalf("junction pinhole mid = %g, want 2.0", v)
	}
}

func TestInjectSameNodeShortIsNoop(t *testing.T) {
	proc := process.Default()
	b := divider()
	n := len(b.C.Elems)
	f := Fault{Kind: Short, Nets: []string{"mid", "mid"}, Res: 1}
	if err := Inject(b.C, f, proc, InjectOptions{}); err != nil {
		t.Fatal(err)
	}
	if len(b.C.Elems) != n {
		t.Fatal("short between identical nodes must not add elements")
	}
}

func TestFaultString(t *testing.T) {
	cases := []Fault{
		{Kind: Short, Nets: []string{"a", "b"}},
		{Kind: Open, Nets: []string{"n"}, FarTerminals: []Terminal{{"m", "n"}}},
		{Kind: GOSPinhole, Device: "m3"},
		{Kind: NewDevice, Nets: []string{"d"}, GateNet: "g"},
	}
	for _, f := range cases {
		if f.String() == "" {
			t.Fatalf("empty String for %v", f.Kind)
		}
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind")
	}
}
