package faults

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/netlist"
	"repro/internal/process"
)

// planBench builds the richer testbench the Plan/Inject pairing test
// runs on: the divider plus a transistor (for the device-referenced
// kinds) and a couple of extra nets.
func planBench() *netlist.Builder {
	b := divider()
	b.R("r3", "mid", "tapa", 500)
	b.R("r4", "tapa", "tapb", 500)
	b.NMOS("m1", "mid", "tapa", "0", 4, 1)
	return b
}

// TestQuickPlanMirrorsInject is the drift guard promised in Plan's doc
// comment: over randomized faults — valid and malformed, catastrophic
// and near-miss, known and unknown nets — Plan against an untouched
// circuit must (a) error exactly when Inject errors, with the same
// message; (b) when it reports no topology change, predict Inject's
// appended elements exactly (same order, labels, terminals, values)
// with the node set untouched; and (c) when it reports a topology
// change, be vindicated by Inject growing the node set.
func TestQuickPlanMirrorsInject(t *testing.T) {
	proc := process.Default()
	nets := []string{"mid", "tapa", "tapb", "vdd", "vss", "nosuch", "ghost"}
	devices := []string{"m1", "r1", "absent"}
	kinds := []Kind{Short, ThickOxPinhole, ExtraContactKind, JunctionPinholeKind,
		GOSPinhole, ShortedDevice, Open, NewDevice, Kind(99)}
	rng := rand.New(rand.NewSource(23))

	for trial := 0; trial < 500; trial++ {
		f := Fault{Kind: kinds[rng.Intn(len(kinds))]}
		nNets := rng.Intn(4)
		for i := 0; i < nNets; i++ {
			f.Nets = append(f.Nets, nets[rng.Intn(len(nets))])
		}
		if rng.Intn(2) == 0 {
			f.Res = rng.Float64() * 100
		}
		f.Device = devices[rng.Intn(len(devices))]
		if f.Kind == NewDevice && rng.Intn(2) == 0 {
			f.GateNet = nets[rng.Intn(len(nets))]
		}
		// Far terminals for the splitting kinds: a mix of genuine
		// terminals, unknown devices, off-net references and duplicates
		// (which the mutating walk rejects on the second encounter).
		for i := rng.Intn(3); i > 0; i-- {
			ft := Terminal{Device: devices[rng.Intn(len(devices))], Net: nets[rng.Intn(len(nets))]}
			f.FarTerminals = append(f.FarTerminals, ft)
			if rng.Intn(4) == 0 {
				f.FarTerminals = append(f.FarTerminals, ft)
			}
		}
		opt := InjectOptions{
			NonCat: rng.Intn(3) == 0,
			GOS:    GOSVariant(rng.Intn(4)), // includes one invalid variant
		}
		label := fmt.Sprintf("trial %d %+v opt %+v", trial, f, opt)

		planned := planBench()
		plan, planErr := Plan(planned.C, f, proc, opt)
		// Plan must not have touched the circuit it inspected.
		pristine := planBench()
		if planned.C.NumNodes() != pristine.C.NumNodes() ||
			len(planned.C.Elems) != len(pristine.C.Elems) {
			t.Fatalf("%s: Plan mutated the circuit", label)
		}

		injected := planBench()
		before := len(injected.C.Elems)
		nodesBefore := injected.C.NumNodes()
		injErr := Inject(injected.C, f, proc, opt)

		if (planErr == nil) != (injErr == nil) {
			t.Fatalf("%s: plan err %v, inject err %v", label, planErr, injErr)
		}
		if planErr != nil {
			if planErr.Error() != injErr.Error() {
				t.Fatalf("%s: error drift: plan %q, inject %q", label, planErr, injErr)
			}
			continue
		}
		if plan.TopologyChanged {
			if injected.C.NumNodes() <= nodesBefore {
				t.Fatalf("%s: plan claims topology change, inject created no node", label)
			}
			continue
		}
		if injected.C.NumNodes() != nodesBefore {
			t.Fatalf("%s: plan claims in-place update, inject grew the node set", label)
		}
		got := injected.C.Elems[before:]
		if len(got) != len(plan.Added) {
			t.Fatalf("%s: plan predicts %d elements, inject added %d", label, len(plan.Added), len(got))
		}
		for i := range got {
			if !reflect.DeepEqual(got[i], plan.Added[i]) {
				t.Fatalf("%s: element %d drift:\nplan   %#v\ninject %#v", label, i, plan.Added[i], got[i])
			}
		}
	}
}
