package faults

import (
	"fmt"

	"repro/internal/netlist"
	"repro/internal/process"
)

// InjectResult describes what Inject would do to a circuit for one
// fault, computed without touching the circuit. It is the classifier
// the low-rank fault-update path needs: a fault whose model only
// appends elements between existing nodes can be expressed as a
// fixed-size matrix delta against the nominal factorization, while one
// that creates nodes or retargets terminals changes the system
// dimension and must go through a full rebuild.
type InjectResult struct {
	// Added lists the elements Inject would append, in injection order,
	// built against the inspected circuit's existing node IDs. Only
	// meaningful when TopologyChanged is false; a topology-changing plan
	// stops classifying at the first structural operation.
	Added []netlist.Element
	// TopologyChanged reports that the model needs new nodes or terminal
	// retargeting: opens and new devices (split nodes), or a bridge
	// naming a net the circuit does not have (Inject would create it as
	// a new floating node).
	TopologyChanged bool
}

// Plan is the read-only mirror of Inject: it reports the elements
// Inject would add and whether the injection changes the circuit
// topology, without mutating ckt. Errors are the same ones Inject would
// return for a malformed fault, so a caller that plans first and only
// injects non-topology-changing faults sees identical failures either
// way. The pairing is pinned by a property test that runs both against
// copies of the same circuit.
func Plan(ckt *netlist.Circuit, f Fault, proc *process.Process, opt InjectOptions) (InjectResult, error) {
	resolve := opt.Resolve
	if resolve == nil {
		resolve = DefaultResolver
	}
	var res InjectResult
	// node mirrors Inject's lookup but refuses to create: a missing net
	// means Inject would grow the node set, which is a topology change.
	missing := false
	node := func(net string) netlist.NodeID {
		id, ok := ckt.NodeByName(resolve(net))
		if !ok {
			missing = true
		}
		return id
	}
	bridge := func(tag string, a, b netlist.NodeID, r float64) {
		if a == b {
			return
		}
		if opt.NonCat && (f.Kind == Short || f.Kind == ExtraContactKind) {
			res.Added = append(res.Added,
				&netlist.Resistor{Label: "flt." + tag + ".r", A: a, B: b, R: proc.NonCatRes},
				&netlist.Capacitor{Label: "flt." + tag + ".c", A: a, B: b, C: proc.NonCatCap})
			return
		}
		res.Added = append(res.Added, &netlist.Resistor{Label: "flt." + tag, A: a, B: b, R: r})
	}

	switch f.Kind {
	case Short, ThickOxPinhole, ExtraContactKind, JunctionPinholeKind:
		if len(f.Nets) < 2 {
			return res, fmt.Errorf("faults: %v needs ≥2 nets", f.Kind)
		}
		r := f.Res
		if r <= 0 {
			switch f.Kind {
			case ExtraContactKind:
				r = proc.ExtraContactRes
			case ThickOxPinhole, JunctionPinholeKind:
				r = proc.PinholeRes
			default:
				r = 0.2 // metal default; defectsim normally sets Res
			}
		}
		hub := node(f.Nets[0])
		for i, n := range f.Nets[1:] {
			bridge(fmt.Sprintf("%d", i), hub, node(n), r)
		}
		if missing {
			return InjectResult{TopologyChanged: true}, nil
		}
		return res, nil

	case GOSPinhole:
		mos, ok := ckt.Element(f.Device).(*netlist.MOSFET)
		if !ok {
			return res, fmt.Errorf("faults: GOS pinhole on unknown device %q", f.Device)
		}
		r := f.Res
		if r <= 0 {
			r = proc.PinholeRes
		}
		switch opt.GOS {
		case GOSToSource:
			res.Added = append(res.Added, &netlist.Resistor{Label: "flt.gos", A: mos.G, B: mos.S, R: r})
		case GOSToDrain:
			res.Added = append(res.Added, &netlist.Resistor{Label: "flt.gos", A: mos.G, B: mos.D, R: r})
		case GOSToChannel:
			res.Added = append(res.Added,
				&netlist.Resistor{Label: "flt.gos.s", A: mos.G, B: mos.S, R: 2 * r},
				&netlist.Resistor{Label: "flt.gos.d", A: mos.G, B: mos.D, R: 2 * r})
		default:
			return res, fmt.Errorf("faults: bad GOS variant %d", opt.GOS)
		}
		return res, nil

	case ShortedDevice:
		mos, ok := ckt.Element(f.Device).(*netlist.MOSFET)
		if !ok {
			return res, fmt.Errorf("faults: shorted device %q not found", f.Device)
		}
		r := f.Res
		if r <= 0 {
			r = proc.ShortedDeviceRes
		}
		res.Added = append(res.Added, &netlist.Resistor{Label: "flt.sdev", A: mos.D, B: mos.S, R: r})
		return res, nil

	case Open:
		if len(f.Nets) != 1 {
			return res, fmt.Errorf("faults: open needs exactly 1 net")
		}
		if err := planFar(ckt, f.FarTerminals, resolve); err != nil {
			return res, err
		}
		return InjectResult{TopologyChanged: true}, nil

	case NewDevice:
		if len(f.Nets) != 1 {
			return res, fmt.Errorf("faults: new device needs exactly 1 net")
		}
		if err := planFar(ckt, f.FarTerminals, resolve); err != nil {
			return res, err
		}
		return InjectResult{TopologyChanged: true}, nil
	}
	return res, fmt.Errorf("faults: unknown kind %v", f.Kind)
}

// planFar mirrors retargetFar's validation without mutating: the same
// checks in the same order with the same error messages. The actual
// retargeting is simulated through a moved set so that a duplicate far
// entry — whose terminal the mutating walk has already moved off its
// net — fails here exactly as it does there.
func planFar(ckt *netlist.Circuit, far []Terminal, resolve Resolver) error {
	if len(far) == 0 {
		return fmt.Errorf("faults: open with no far terminals")
	}
	moved := map[netlist.Element]map[int]bool{}
	for _, t := range far {
		el := ckt.Element(t.Device)
		if el == nil {
			return fmt.Errorf("faults: open far terminal on unknown element %q", t.Device)
		}
		want, ok := ckt.NodeByName(resolve(t.Net))
		if !ok {
			return fmt.Errorf("faults: open net %q not in netlist", t.Net)
		}
		hit := false
		for i, n := range el.Nodes() {
			if n == want && !moved[el][i] {
				if moved[el] == nil {
					moved[el] = map[int]bool{}
				}
				moved[el][i] = true
				hit = true
			}
		}
		if !hit {
			return fmt.Errorf("faults: element %q has no terminal on %q", t.Device, t.Net)
		}
	}
	return nil
}
