// Package faults defines the circuit-level fault records produced by the
// defect simulator, the equivalence collapsing that turns raw faults into
// fault classes with magnitudes, and the circuit-level fault models that
// inject a fault into a netlist for simulation — the middle of the paper's
// defect-oriented test path (Fig. 1): faults → fault collapsing → fault
// classes → circuit-level fault models.
package faults

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/netlist"
	"repro/internal/process"
)

// Kind enumerates fault mechanisms, matching the rows of the paper's
// Table 1.
type Kind int

const (
	// Short is an extra-material bridge between two or more nets.
	Short Kind = iota
	// ExtraContactKind is a parasitic vertical connection (2 Ω).
	ExtraContactKind
	// GOSPinhole is a gate-oxide pinhole on one device (2 kΩ, modelled
	// three ways: to source, to drain, to channel; the worst case is
	// selected during fault simulation).
	GOSPinhole
	// JunctionPinholeKind is a leaky junction from a diffusion net to its
	// bulk (2 kΩ).
	JunctionPinholeKind
	// ThickOxPinhole is a vertical short through field oxide between
	// crossing conductors (2 kΩ).
	ThickOxPinhole
	// Open severs a net: the far-side terminals are reconnected to a new
	// split node.
	Open
	// NewDevice is a parasitic minimum-size transistor created by extra
	// poly crossing a diffusion region.
	NewDevice
	// ShortedDevice bridges a device's drain and source (missing gate).
	ShortedDevice
	numKinds
)

// NumKinds is the number of fault kinds.
const NumKinds = int(numKinds)

// String implements fmt.Stringer, using the paper's Table 1 names.
func (k Kind) String() string {
	switch k {
	case Short:
		return "Short"
	case ExtraContactKind:
		return "Extra contact"
	case GOSPinhole:
		return "Gate oxide pinhole"
	case JunctionPinholeKind:
		return "Junction pinhole"
	case ThickOxPinhole:
		return "Thick oxide pinhole"
	case Open:
		return "Open"
	case NewDevice:
		return "New device"
	case ShortedDevice:
		return "Shorted device"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// GOSVariant selects how a gate-oxide pinhole is modelled.
type GOSVariant int

const (
	// GOSToSource connects gate to source through the pinhole.
	GOSToSource GOSVariant = iota
	// GOSToDrain connects gate to drain.
	GOSToDrain
	// GOSToChannel connects gate to the channel midpoint (modelled as a
	// split pinhole resistance to both source and drain).
	GOSToChannel
	// NumGOSVariants counts the variants.
	NumGOSVariants
)

// Terminal identifies an element terminal for the open-fault model: every
// terminal of element Device currently connected to Net is moved to the
// split node.
type Terminal struct {
	Device string
	Net    string
}

// Fault is one circuit-level fault extracted from one defect.
type Fault struct {
	Kind Kind
	// Nets are the nets involved (sorted), for Short / pinhole kinds.
	Nets []string
	// Device is the affected device for GOS / ShortedDevice kinds and
	// the host device for NewDevice.
	Device string
	// Res is the fault-model resistance in ohms (0 = use process value).
	Res float64
	// FarTerminals lists the terminals split off by an Open or isolated
	// behind a NewDevice.
	FarTerminals []Terminal
	// GateNet is the net driving a NewDevice's parasitic gate
	// ("" = floating).
	GateNet string
	// Local reports whether every involved net is internal to the macro
	// (the paper's 27.8 % of comparator faults).
	Local bool
}

// Key returns the canonical equivalence key: faults with equal keys are
// circuit-level equivalent and collapse into one class.
func (f Fault) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d|", int(f.Kind))
	nets := append([]string(nil), f.Nets...)
	sort.Strings(nets)
	b.WriteString(strings.Join(nets, ","))
	fmt.Fprintf(&b, "|%s|%s|", f.Device, f.GateNet)
	terms := make([]string, len(f.FarTerminals))
	for i, t := range f.FarTerminals {
		terms[i] = t.Device + "/" + t.Net
	}
	sort.Strings(terms)
	b.WriteString(strings.Join(terms, ","))
	return b.String()
}

// String implements fmt.Stringer.
func (f Fault) String() string {
	switch f.Kind {
	case Open:
		return fmt.Sprintf("%s(%s: %d terms)", f.Kind, strings.Join(f.Nets, ","), len(f.FarTerminals))
	case GOSPinhole, ShortedDevice:
		return fmt.Sprintf("%s(%s)", f.Kind, f.Device)
	case NewDevice:
		return fmt.Sprintf("%s(%s gate=%s)", f.Kind, strings.Join(f.Nets, ","), f.GateNet)
	default:
		return fmt.Sprintf("%s(%s)", f.Kind, strings.Join(f.Nets, ","))
	}
}

// Class is an equivalence class of faults with its magnitude (the number
// of raw faults that collapsed into it, which determines the likelihood of
// the fault, per the paper).
type Class struct {
	Fault Fault
	Count int
}

// Collapse groups faults by Key. Classes are ordered by descending count,
// then by key for determinism.
func Collapse(fs []Fault) []Class {
	byKey := map[string]*Class{}
	var order []string
	for _, f := range fs {
		k := f.Key()
		if c, ok := byKey[k]; ok {
			c.Count++
		} else {
			byKey[k] = &Class{Fault: f, Count: 1}
			order = append(order, k)
		}
	}
	out := make([]Class, 0, len(byKey))
	for _, k := range order {
		out = append(out, *byKey[k])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Fault.Key() < out[j].Fault.Key()
	})
	return out
}

// CountByKind tallies faults (not classes) per kind.
func CountByKind(fs []Fault) map[Kind]int {
	out := map[Kind]int{}
	for _, f := range fs {
		out[f.Kind]++
	}
	return out
}

// ClassesByKind tallies classes per kind.
func ClassesByKind(cs []Class) map[Kind]int {
	out := map[Kind]int{}
	for _, c := range cs {
		out[c.Fault.Kind]++
	}
	return out
}

// NonCatEligible reports whether a catastrophic fault of this kind evolves
// a non-catastrophic (near-miss) variant. Per the paper, non-catastrophic
// faults are derived from shorts and extra contacts; the other kinds are
// already high-ohmic.
func (f Fault) NonCatEligible() bool {
	return f.Kind == Short || f.Kind == ExtraContactKind
}

// Resolver maps layout net names to netlist node names (e.g. "vss" → "0").
type Resolver func(string) string

// DefaultResolver maps vss/gnd to ground and leaves other names unchanged.
func DefaultResolver(net string) string {
	switch net {
	case "vss", "gnd":
		return "0"
	}
	return net
}

// InjectOptions configure fault injection.
type InjectOptions struct {
	// NonCat selects the near-miss model (500 Ω ∥ 1 fF) for eligible
	// kinds instead of the catastrophic resistance.
	NonCat bool
	// GOS selects the gate-oxide pinhole variant.
	GOS GOSVariant
	// Resolve maps layout nets to netlist nodes (DefaultResolver if nil).
	Resolve Resolver
}

// Inject applies the circuit-level fault model for f to ckt in place.
// The models follow the paper: resistive bridges with material-determined
// values for shorts; 2 Ω extra contacts; 2 kΩ pinholes; node splitting for
// opens; a minimum-size parasitic transistor for new devices; a low-ohmic
// drain-source bridge for shorted devices; and 500 Ω ∥ 1 fF for
// non-catastrophic variants.
func Inject(ckt *netlist.Circuit, f Fault, proc *process.Process, opt InjectOptions) error {
	resolve := opt.Resolve
	if resolve == nil {
		resolve = DefaultResolver
	}
	node := func(net string) netlist.NodeID { return ckt.Node(resolve(net)) }

	bridge := func(tag string, a, b netlist.NodeID, r float64) {
		if a == b {
			return
		}
		if opt.NonCat && (f.Kind == Short || f.Kind == ExtraContactKind) {
			ckt.Add(&netlist.Resistor{Label: "flt." + tag + ".r", A: a, B: b, R: proc.NonCatRes})
			ckt.Add(&netlist.Capacitor{Label: "flt." + tag + ".c", A: a, B: b, C: proc.NonCatCap})
			return
		}
		ckt.Add(&netlist.Resistor{Label: "flt." + tag, A: a, B: b, R: r})
	}

	switch f.Kind {
	case Short, ThickOxPinhole, ExtraContactKind, JunctionPinholeKind:
		if len(f.Nets) < 2 {
			return fmt.Errorf("faults: %v needs ≥2 nets", f.Kind)
		}
		r := f.Res
		if r <= 0 {
			switch f.Kind {
			case ExtraContactKind:
				r = proc.ExtraContactRes
			case ThickOxPinhole, JunctionPinholeKind:
				r = proc.PinholeRes
			default:
				r = 0.2 // metal default; defectsim normally sets Res
			}
		}
		hub := node(f.Nets[0])
		for i, n := range f.Nets[1:] {
			bridge(fmt.Sprintf("%d", i), hub, node(n), r)
		}
		return nil

	case GOSPinhole:
		mos, ok := ckt.Element(f.Device).(*netlist.MOSFET)
		if !ok {
			return fmt.Errorf("faults: GOS pinhole on unknown device %q", f.Device)
		}
		r := f.Res
		if r <= 0 {
			r = proc.PinholeRes
		}
		switch opt.GOS {
		case GOSToSource:
			ckt.Add(&netlist.Resistor{Label: "flt.gos", A: mos.G, B: mos.S, R: r})
		case GOSToDrain:
			ckt.Add(&netlist.Resistor{Label: "flt.gos", A: mos.G, B: mos.D, R: r})
		case GOSToChannel:
			// Channel midpoint: pinhole feeds both junctions.
			ckt.Add(&netlist.Resistor{Label: "flt.gos.s", A: mos.G, B: mos.S, R: 2 * r})
			ckt.Add(&netlist.Resistor{Label: "flt.gos.d", A: mos.G, B: mos.D, R: 2 * r})
		default:
			return fmt.Errorf("faults: bad GOS variant %d", opt.GOS)
		}
		return nil

	case ShortedDevice:
		mos, ok := ckt.Element(f.Device).(*netlist.MOSFET)
		if !ok {
			return fmt.Errorf("faults: shorted device %q not found", f.Device)
		}
		r := f.Res
		if r <= 0 {
			r = proc.ShortedDeviceRes
		}
		ckt.Add(&netlist.Resistor{Label: "flt.sdev", A: mos.D, B: mos.S, R: r})
		return nil

	case Open:
		if len(f.Nets) != 1 {
			return fmt.Errorf("faults: open needs exactly 1 net")
		}
		split := ckt.Node(resolve(f.Nets[0]) + "#split")
		if err := retargetFar(ckt, f.FarTerminals, resolve, split); err != nil {
			return err
		}
		return nil

	case NewDevice:
		if len(f.Nets) != 1 {
			return fmt.Errorf("faults: new device needs exactly 1 net")
		}
		orig := node(f.Nets[0])
		split := ckt.Node(resolve(f.Nets[0]) + "#nd")
		if err := retargetFar(ckt, f.FarTerminals, resolve, split); err != nil {
			return err
		}
		var gate netlist.NodeID
		if f.GateNet == "" {
			// Floating parasitic gate: weakly tied to ground.
			gate = ckt.Node(resolve(f.Nets[0]) + "#ndgate")
			ckt.Add(&netlist.Resistor{Label: "flt.ndg", A: gate, B: netlist.Ground, R: 1e9})
		} else {
			gate = node(f.GateNet)
		}
		ckt.Add(&netlist.MOSFET{
			Label: "flt.nd", D: orig, G: gate, S: split, B: netlist.Ground,
			Model: netlist.NMOS1(), W: 2e-6, L: 2e-6,
		})
		return nil
	}
	return fmt.Errorf("faults: unknown kind %v", f.Kind)
}

// retargetFar moves every terminal listed in far from its present net to
// the split node.
func retargetFar(ckt *netlist.Circuit, far []Terminal, resolve Resolver, split netlist.NodeID) error {
	if len(far) == 0 {
		return fmt.Errorf("faults: open with no far terminals")
	}
	for _, t := range far {
		el := ckt.Element(t.Device)
		if el == nil {
			return fmt.Errorf("faults: open far terminal on unknown element %q", t.Device)
		}
		want, ok := ckt.NodeByName(resolve(t.Net))
		if !ok {
			return fmt.Errorf("faults: open net %q not in netlist", t.Net)
		}
		hit := false
		for i, n := range el.Nodes() {
			if n == want {
				el.Retarget(i, split)
				hit = true
			}
		}
		if !hit {
			return fmt.Errorf("faults: element %q has no terminal on %q", t.Device, t.Net)
		}
	}
	return nil
}
