// Package report renders the methodology's tables and figures as text,
// matching the layout of the paper's Tables 1–3 and Figures 3–5.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/signature"
)

// Table writes a simple aligned ASCII table.
func Table(w io.Writer, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
}

// Pct formats a percentage with one decimal.
func Pct(v float64) string { return fmt.Sprintf("%.1f", v) }

// Table1 renders the catastrophic fault/class breakdown.
func Table1(w io.Writer, run *core.MacroRun) {
	fmt.Fprintf(w, "Table 1: catastrophic faults and fault classes for %s\n", run.Name)
	fmt.Fprintf(w, "  discovery sprinkle: %d defects -> %d faults; magnitude sprinkle: %d defects -> %d faults in %d classes (+%d unmatched tail)\n",
		run.DiscoveryDefects, run.DiscoveryFaults, run.MagnitudeDefects, run.TotalFaults, len(run.Classes), run.UnmatchedFaults)
	var rows [][]string
	for _, r := range core.Table1(run) {
		rows = append(rows, []string{
			r.Kind.String(),
			fmt.Sprintf("%d", r.Faults), Pct(r.FaultsPct),
			fmt.Sprintf("%d", r.Classes), Pct(r.ClassesPct),
		})
	}
	Table(w, []string{"fault type", "faults", "% faults", "classes", "% classes"}, rows)
	fmt.Fprintf(w, "  faults local to the macro: %.1f%%\n\n", core.LocalFaultPct(run))
}

// sigOrder fixes the Table 2 row order to the paper's.
var sigOrder = []signature.VoltageSig{
	signature.VSigStuck, signature.VSigOffset, signature.VSigMixed,
	signature.VSigClock, signature.VSigNone,
}

// Table2 renders the voltage fault-signature distribution.
func Table2(w io.Writer, run *core.MacroRun) {
	cat, nonCat := core.Table2(run)
	fmt.Fprintf(w, "Table 2: voltage fault signatures (%s)\n", run.Name)
	var rows [][]string
	for _, s := range sigOrder {
		rows = append(rows, []string{s.String(), Pct(cat[s]), Pct(nonCat[s])})
	}
	Table(w, []string{"fault signature", "% cat. faults", "% non-cat. faults"}, rows)
	fmt.Fprintln(w)
}

// Table3 renders the current fault-signature distribution.
func Table3(w io.Writer, run *core.MacroRun) {
	cat, nonCat := core.Table3(run)
	fmt.Fprintf(w, "Table 3: current fault signatures (%s)\n", run.Name)
	rows := [][]string{
		{"IVdd", Pct(cat.IVdd), Pct(nonCat.IVdd)},
		{"IDDQ", Pct(cat.IDDQ), Pct(nonCat.IDDQ)},
		{"Iinput", Pct(cat.Iin), Pct(nonCat.Iin)},
		{"No deviations", Pct(cat.None), Pct(nonCat.None)},
	}
	Table(w, []string{"fault signature", "% cat. faults", "% non-cat. faults"}, rows)
	fmt.Fprintln(w, "  (rows overlap; columns may sum to more than 100%)")
	fmt.Fprintln(w)
}

// Fig3 renders the detectability grid for a macro.
func Fig3(w io.Writer, run *core.MacroRun, nonCat bool) {
	dist := core.Fig3(run, nonCat)
	kind := "catastrophic"
	if nonCat {
		kind = "non-catastrophic"
	}
	fmt.Fprintf(w, "Fig 3: detectability of %s faults for %s\n", kind, run.Name)
	type row struct {
		label string
		pct   float64
	}
	var rows []row
	for det, pct := range dist {
		var mech []string
		if det.Missing {
			mech = append(mech, "missing-code")
		}
		if det.IVdd {
			mech = append(mech, "IVdd")
		}
		if det.IDDQ {
			mech = append(mech, "IDDQ")
		}
		if det.Iin {
			mech = append(mech, "Iinput")
		}
		label := strings.Join(mech, "+")
		if label == "" {
			label = "undetected"
		}
		rows = append(rows, row{label, pct})
	}
	sort.Slice(rows, func(i, j int) bool {
		// Tie-break on the label: dist is a map, so initial row order is
		// random and a pct-only sort would leak that into the output.
		if rows[i].pct != rows[j].pct {
			return rows[i].pct > rows[j].pct
		}
		return rows[i].label < rows[j].label
	})
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{r.label, Pct(r.pct)})
	}
	Table(w, []string{"detected by", "% faults"}, cells)
	s := core.SummarizeFig3(dist)
	fmt.Fprintf(w, "  missing-code: %s%%  current: %s%%  current-only: %s%%  IDDQ-only: %s%%  covered: %s%%\n\n",
		Pct(s.MissingCode), Pct(s.CurrentAny), Pct(s.CurrentOnly), Pct(s.IDDQOnly), Pct(s.Covered))
}

// Global renders the Fig 4/5 global coverage split.
func Global(w io.Writer, title string, run *core.Run) {
	fmt.Fprintf(w, "%s\n", title)
	for _, nonCat := range []bool{false, true} {
		g := core.Fig4(run, nonCat)
		kind := "catastrophic"
		if nonCat {
			kind = "non-catastrophic"
		}
		fmt.Fprintf(w, "  %-17s voltage-only %5s%%  both %5s%%  current-only %5s%%  undetected %5s%%  total %5s%%\n",
			kind+":", Pct(g.VoltageOnly), Pct(g.Both), Pct(g.CurrentOnly), Pct(g.Undetected), Pct(g.Total()))
	}
	fmt.Fprintln(w)
}

// PerMacro renders the per-macro coverage summary (paper §3.3).
func PerMacro(w io.Writer, run *core.Run) {
	fmt.Fprintln(w, "Per-macro detectability (catastrophic faults)")
	var rows [][]string
	for _, m := range run.Macros {
		cov := core.MacroCoverage(m, false)
		rows = append(rows, []string{
			m.Name,
			fmt.Sprintf("%d", len(m.Classes)),
			fmt.Sprintf("%d", m.TotalFaults),
			Pct(core.CurrentDetectability(m, false)),
			Pct(cov.VoltageOnly + cov.Both),
			Pct(cov.Total()),
			fmt.Sprintf("%.3g", m.Weight()),
		})
	}
	Table(w, []string{"macro", "classes", "faults", "% current-det", "% voltage-det", "% covered", "weight"}, rows)
	fmt.Fprintln(w)
}
