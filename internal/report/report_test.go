package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/signature"
)

func sampleMacroRun() *core.MacroRun {
	mk := func(det core.Detection, sig signature.VoltageSig, count int, kind faults.Kind) core.ClassAnalysis {
		return core.ClassAnalysis{
			Class: faults.Class{Fault: faults.Fault{Kind: kind, Nets: []string{"a", "b"}}, Count: count},
			Resp:  &signature.Response{Voltage: sig},
			Det:   det,
		}
	}
	return &core.MacroRun{
		Name: "comparator", Count: 256, Area: 9000, FaultRate: 0.07,
		DiscoveryDefects: 1000, DiscoveryFaults: 70,
		Classes: []faults.Class{
			{Fault: faults.Fault{Kind: faults.Short, Nets: []string{"a", "b"}}, Count: 60},
			{Fault: faults.Fault{Kind: faults.Open, Nets: []string{"c"}}, Count: 10},
		},
		TotalFaults: 70, LocalFaults: 20,
		Cat: []core.ClassAnalysis{
			mk(core.Detection{Missing: true, IVdd: true}, signature.VSigStuck, 40, faults.Short),
			mk(core.Detection{IDDQ: true}, signature.VSigClock, 20, faults.Short),
			mk(core.Detection{}, signature.VSigNone, 10, faults.Open),
		},
		NonCat: []core.ClassAnalysis{
			mk(core.Detection{Iin: true}, signature.VSigOffset, 30, faults.Short),
		},
	}
}

func TestTableAlignment(t *testing.T) {
	var buf bytes.Buffer
	Table(&buf, []string{"col", "x"}, [][]string{{"longvalue", "1"}, {"v", "22"}})
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Fatalf("separator missing: %q", lines[1])
	}
}

func TestPct(t *testing.T) {
	if Pct(12.345) != "12.3" {
		t.Fatalf("Pct = %q", Pct(12.345))
	}
}

func TestTable1Render(t *testing.T) {
	var buf bytes.Buffer
	Table1(&buf, sampleMacroRun())
	out := buf.String()
	for _, want := range []string{"Table 1", "Short", "Open", "85.7", "local to the macro: 28.6%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestTable2Render(t *testing.T) {
	var buf bytes.Buffer
	Table2(&buf, sampleMacroRun())
	out := buf.String()
	for _, want := range []string{"Output Stuck At", "57.1", "Offset (> 8mV)", "100.0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestTable3Render(t *testing.T) {
	var buf bytes.Buffer
	Table3(&buf, sampleMacroRun())
	out := buf.String()
	for _, want := range []string{"IVdd", "IDDQ", "Iinput", "No deviations"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFig3Render(t *testing.T) {
	var buf bytes.Buffer
	Fig3(&buf, sampleMacroRun(), false)
	out := buf.String()
	for _, want := range []string{"missing-code+IVdd", "undetected", "IDDQ-only"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Non-cat variant renders too.
	buf.Reset()
	Fig3(&buf, sampleMacroRun(), true)
	if !strings.Contains(buf.String(), "non-catastrophic") {
		t.Fatal("non-cat label missing")
	}
}

func TestGlobalAndPerMacroRender(t *testing.T) {
	run := &core.Run{Macros: []*core.MacroRun{sampleMacroRun()}}
	var buf bytes.Buffer
	Global(&buf, "Fig 4: test", run)
	out := buf.String()
	if !strings.Contains(out, "catastrophic") || !strings.Contains(out, "total") {
		t.Fatalf("global render:\n%s", out)
	}
	buf.Reset()
	PerMacro(&buf, run)
	if !strings.Contains(buf.String(), "comparator") {
		t.Fatal("per-macro render missing macro")
	}
}

func TestJSONExport(t *testing.T) {
	run := &core.Run{Macros: []*core.MacroRun{sampleMacroRun()}}
	data, err := JSON(run)
	if err != nil {
		t.Fatal(err)
	}
	var decoded JSONRun
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.Macros) != 1 || decoded.Macros[0].Name != "comparator" {
		t.Fatalf("decoded = %+v", decoded)
	}
	if decoded.Global.Total <= 0 {
		t.Fatal("coverage missing in JSON")
	}
	if len(decoded.Macros[0].Table1) == 0 {
		t.Fatal("table1 missing in JSON")
	}
}
