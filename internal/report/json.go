package report

import (
	"encoding/json"

	"repro/internal/core"
)

// JSONRun is the machine-readable summary of a methodology run.
type JSONRun struct {
	DfT    bool         `json:"dft"`
	Global JSONCoverage `json:"global_catastrophic"`
	NonCat JSONCoverage `json:"global_non_catastrophic"`
	Macros []JSONMacro  `json:"macros"`
}

// JSONCoverage mirrors core.GlobalCoverage.
type JSONCoverage struct {
	VoltageOnly float64 `json:"voltage_only_pct"`
	Both        float64 `json:"both_pct"`
	CurrentOnly float64 `json:"current_only_pct"`
	Undetected  float64 `json:"undetected_pct"`
	Total       float64 `json:"total_pct"`
}

// JSONMacro is the per-macro summary.
type JSONMacro struct {
	Name             string      `json:"name"`
	Count            int         `json:"count"`
	AreaUm2          float64     `json:"area_um2"`
	DiscoveryDefects int         `json:"discovery_defects"`
	DiscoveryFaults  int         `json:"discovery_faults"`
	MagnitudeDefects int         `json:"magnitude_defects"`
	TotalFaults      int         `json:"total_faults"`
	UnmatchedFaults  int         `json:"unmatched_faults"`
	Classes          int         `json:"classes"`
	LocalFaultPct    float64     `json:"local_fault_pct"`
	CurrentDetPct    float64     `json:"current_detectable_pct"`
	Coverage         float64     `json:"coverage_pct"`
	Table1           []JSONTable `json:"table1"`
}

// JSONTable is one Table 1 row.
type JSONTable struct {
	Kind       string  `json:"kind"`
	Faults     int     `json:"faults"`
	FaultsPct  float64 `json:"faults_pct"`
	Classes    int     `json:"classes"`
	ClassesPct float64 `json:"classes_pct"`
}

// toJSONCoverage converts a coverage split.
func toJSONCoverage(g core.GlobalCoverage) JSONCoverage {
	return JSONCoverage{
		VoltageOnly: g.VoltageOnly,
		Both:        g.Both,
		CurrentOnly: g.CurrentOnly,
		Undetected:  g.Undetected,
		Total:       g.Total(),
	}
}

// JSON serialises a run into an indented JSON document.
func JSON(run *core.Run) ([]byte, error) {
	out := JSONRun{
		DfT:    run.DfT,
		Global: toJSONCoverage(core.Fig4(run, false)),
		NonCat: toJSONCoverage(core.Fig4(run, true)),
	}
	for _, m := range run.Macros {
		jm := JSONMacro{
			Name:             m.Name,
			Count:            m.Count,
			AreaUm2:          m.Area,
			DiscoveryDefects: m.DiscoveryDefects,
			DiscoveryFaults:  m.DiscoveryFaults,
			MagnitudeDefects: m.MagnitudeDefects,
			TotalFaults:      m.TotalFaults,
			UnmatchedFaults:  m.UnmatchedFaults,
			Classes:          len(m.Classes),
			LocalFaultPct:    core.LocalFaultPct(m),
			CurrentDetPct:    core.CurrentDetectability(m, false),
			Coverage:         core.MacroCoverage(m, false).Total(),
		}
		for _, r := range core.Table1(m) {
			jm.Table1 = append(jm.Table1, JSONTable{
				Kind: r.Kind.String(), Faults: r.Faults, FaultsPct: r.FaultsPct,
				Classes: r.Classes, ClassesPct: r.ClassesPct,
			})
		}
		out.Macros = append(out.Macros, jm)
	}
	return json.MarshalIndent(out, "", "  ")
}
