package campaign

import "encoding/json"

// saveCheckpoint persists every result marshalled so far (restored
// payloads included, so a resumed-then-interrupted campaign keeps its
// full history) through the configured Store. ckptMu keeps concurrent
// flushes of this engine from racing on the store's temp file.
func (e *engine) saveCheckpoint() error {
	st := e.opts.store()
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()
	e.mu.Lock()
	ck := &Checkpoint{
		Version:     checkpointVersion,
		Fingerprint: e.opts.Fingerprint,
		Results:     make(map[string]json.RawMessage, len(e.raw)+len(e.restored)),
	}
	for k, v := range e.restored {
		ck.Results[k] = v
	}
	for k, v := range e.raw {
		ck.Results[k] = v
	}
	ck.Units = len(ck.Results)
	e.stats.Checkpoints++
	e.mu.Unlock()
	return st.Save(ck)
}
