package campaign

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// checkpointVersion guards the on-disk format.
const checkpointVersion = 1

// checkpointFile is the JSON checkpoint: the configuration fingerprint
// plus every completed unit's marshalled result, keyed by unit key. A
// resumed campaign skips any unit whose key is present and decodable.
type checkpointFile struct {
	Version     int                        `json:"version"`
	Fingerprint string                     `json:"fingerprint"`
	Units       int                        `json:"units"`
	Results     map[string]json.RawMessage `json:"results"`
}

// loadCheckpoint reads a checkpoint; a missing file is not an error (nil
// checkpoint), anything unreadable or of the wrong version is.
func loadCheckpoint(path string) (*checkpointFile, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("campaign: read checkpoint: %w", err)
	}
	var ck checkpointFile
	if err := json.Unmarshal(data, &ck); err != nil {
		return nil, fmt.Errorf("campaign: parse checkpoint %s: %w", path, err)
	}
	if ck.Version != checkpointVersion {
		return nil, fmt.Errorf("campaign: checkpoint %s has version %d, want %d",
			path, ck.Version, checkpointVersion)
	}
	return &ck, nil
}

// saveCheckpoint atomically persists every result marshalled so far
// (restored payloads included, so a resumed-then-interrupted campaign
// keeps its full history). Write-to-temp-then-rename keeps a crash from
// truncating the previous checkpoint; ckptMu keeps concurrent flushes
// from racing on the shared temp file.
func (e *engine) saveCheckpoint() error {
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()
	e.mu.Lock()
	ck := checkpointFile{
		Version:     checkpointVersion,
		Fingerprint: e.opts.Fingerprint,
		Results:     make(map[string]json.RawMessage, len(e.raw)+len(e.restored)),
	}
	for k, v := range e.restored {
		ck.Results[k] = v
	}
	for k, v := range e.raw {
		ck.Results[k] = v
	}
	ck.Units = len(ck.Results)
	e.stats.Checkpoints++
	e.mu.Unlock()

	data, err := json.Marshal(&ck)
	if err != nil {
		return fmt.Errorf("campaign: marshal checkpoint: %w", err)
	}
	tmp := e.opts.Checkpoint + ".tmp"
	if dir := filepath.Dir(e.opts.Checkpoint); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("campaign: checkpoint dir: %w", err)
		}
	}
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("campaign: write checkpoint: %w", err)
	}
	if err := os.Rename(tmp, e.opts.Checkpoint); err != nil {
		return fmt.Errorf("campaign: commit checkpoint: %w", err)
	}
	return nil
}
