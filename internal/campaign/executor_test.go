package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

type execResult struct {
	N      int    `json:"n"`
	Origin string `json:"origin"`
}

func decodeExecResult(key string, raw json.RawMessage) (any, error) {
	var r execResult
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// scriptedExecutor implements Executor from a per-key script.
type scriptedExecutor struct {
	mu sync.Mutex
	// accept maps keys the executor runs "remotely"; the value is the
	// result it fabricates. Unknown keys are declined (ok=false).
	accept map[string]execResult
	// fail maps keys to how many times Execute errors before declining.
	fail  map[string]int
	calls atomic.Int64
}

func (x *scriptedExecutor) Execute(ctx context.Context, u Unit) (json.RawMessage, bool, error) {
	x.calls.Add(1)
	x.mu.Lock()
	defer x.mu.Unlock()
	if n := x.fail[u.Key]; n > 0 {
		x.fail[u.Key] = n - 1
		return nil, false, errors.New("remote execution failed")
	}
	if r, ok := x.accept[u.Key]; ok {
		raw, err := json.Marshal(&r)
		return raw, true, err
	}
	return nil, false, nil
}

func execUnits(n int) []Unit {
	var roots []Unit
	for i := 0; i < n; i++ {
		i := i
		roots = append(roots, Unit{
			Key:   fmt.Sprintf("u/%d", i),
			Group: "g",
			Run: func(context.Context) (any, error) {
				return &execResult{N: i, Origin: "local"}, nil
			},
		})
	}
	return roots
}

// TestExecutorRemoteAndLocalMerge: units the executor accepts come back
// with the remote payload decoded through the restored-unit path; units
// it declines run locally; the merged result set is complete either
// way.
func TestExecutorRemoteAndLocalMerge(t *testing.T) {
	x := &scriptedExecutor{accept: map[string]execResult{
		"u/1": {N: 1, Origin: "remote"},
		"u/3": {N: 3, Origin: "remote"},
	}}
	out, err := Execute(context.Background(), Options{
		Workers: 3, Decode: decodeExecResult, Executor: x,
	}, execUnits(5))
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats.Completed != 5 || out.Stats.Failed != 0 {
		t.Fatalf("stats %+v", out.Stats)
	}
	want := map[string]string{"u/0": "local", "u/1": "remote", "u/2": "local", "u/3": "remote", "u/4": "local"}
	got := map[string]string{}
	for k, v := range out.Results {
		r := v.(*execResult)
		got[k] = r.Origin
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("origins = %v, want %v", got, want)
	}
}

// TestExecutorRemoteErrorRetries: a remote unit failure is a unit error
// — the engine's bounded retry re-runs it (and, with the executor now
// declining, the retry lands locally), so a flaky worker degrades to
// local execution instead of failing the campaign.
func TestExecutorRemoteErrorRetries(t *testing.T) {
	x := &scriptedExecutor{fail: map[string]int{"u/0": 1}}
	out, err := Execute(context.Background(), Options{
		Workers: 2, Decode: decodeExecResult, Executor: x,
	}, execUnits(2))
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats.Completed != 2 || out.Stats.Retries != 1 {
		t.Fatalf("stats %+v", out.Stats)
	}
	if r := out.Results["u/0"].(*execResult); r.Origin != "local" {
		t.Fatalf("u/0 origin %q, want local retry", r.Origin)
	}
}

// TestExecutorDecodeFailure: an undecodable remote payload is a unit
// error (version skew must be loud), consumed by the bounded retry.
func TestExecutorDecodeFailure(t *testing.T) {
	bad := &scriptedExecutor{accept: map[string]execResult{}}
	x := executorFunc(func(ctx context.Context, u Unit) (json.RawMessage, bool, error) {
		bad.calls.Add(1)
		if bad.calls.Load() == 1 {
			return json.RawMessage(`{"n": "not a number"}`), true, nil
		}
		return nil, false, nil
	})
	out, err := Execute(context.Background(), Options{
		Workers: 1, Decode: decodeExecResult, Executor: x,
	}, execUnits(1))
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats.Retries != 1 || out.Stats.Completed != 1 {
		t.Fatalf("stats %+v", out.Stats)
	}
}

// TestExecutorRestoredBypass: restored units never reach the executor —
// a checkpoint hit costs microseconds, not a lease.
func TestExecutorRestoredBypass(t *testing.T) {
	st := DirStore{Dir: t.TempDir()}
	opts := Options{Workers: 2, Store: st, Fingerprint: "exec-restore", Decode: decodeExecResult}
	if _, err := Execute(context.Background(), opts, execUnits(4)); err != nil {
		t.Fatal(err)
	}
	x := &scriptedExecutor{}
	opts.Resume = true
	opts.Executor = x
	out, err := Execute(context.Background(), opts, execUnits(4))
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats.Restored != 4 {
		t.Fatalf("restored %d, want 4", out.Stats.Restored)
	}
	if n := x.calls.Load(); n != 0 {
		t.Fatalf("executor saw %d calls for restored units", n)
	}
}

// executorFunc adapts a function to Executor.
type executorFunc func(ctx context.Context, u Unit) (json.RawMessage, bool, error)

func (f executorFunc) Execute(ctx context.Context, u Unit) (json.RawMessage, bool, error) {
	return f(ctx, u)
}
