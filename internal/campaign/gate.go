package campaign

import (
	"context"
	"errors"
	"runtime"
	"sync"
)

// Gate admits unit executions. A campaign configured with a Gate
// acquires one slot per live unit (restored units bypass the gate: a
// checkpoint hit costs microseconds) and releases it when the unit
// returns. Sharing one gate across several concurrent campaigns bounds
// their combined parallelism — the job server's global worker budget.
type Gate interface {
	// Acquire blocks until a slot is free (or ctx is cancelled) and
	// returns the release function for it. The release function is
	// idempotent.
	Acquire(ctx context.Context) (release func(), err error)
}

// ErrGateClosed is returned by Acquire on a tenant that was closed
// while callers were waiting.
var ErrGateClosed = errors.New("campaign: gate tenant closed")

// FairGate is a counting semaphore whose slots are granted round-robin
// across registered tenants: with B slots and J tenants that all have
// work queued, every tenant ends up with ~B/J units in flight,
// regardless of how many worker goroutines each tenant runs. This is
// how the job server shares one global worker budget fairly across
// concurrent campaigns — the unit granularity of the work-stealing
// pool is what makes the interleave fine-grained.
type FairGate struct {
	mu      sync.Mutex
	free    int
	tenants []*Tenant
	cursor  int // next tenant index to consider when a slot frees up
}

// NewFairGate builds a gate with the given slot budget (<= 0 selects
// runtime.GOMAXPROCS(0)).
func NewFairGate(budget int) *FairGate {
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	return &FairGate{free: budget}
}

// Tenant registers a new tenant. Each concurrent campaign gets its own
// tenant; Close it when the campaign ends so the round-robin stops
// considering it.
func (fg *FairGate) Tenant() *Tenant {
	t := &Tenant{fg: fg}
	fg.mu.Lock()
	fg.tenants = append(fg.tenants, t)
	fg.mu.Unlock()
	return t
}

// gateWaiter is one blocked Acquire. The channel is buffered so a
// grant racing a cancellation never blocks the granter.
type gateWaiter struct {
	ch chan func()
}

// Tenant is one registered consumer of a FairGate. It implements Gate.
type Tenant struct {
	fg      *FairGate
	waiters []*gateWaiter
	closed  bool
}

// Acquire implements Gate: an immediate grant when a slot is free,
// otherwise a FIFO wait inside this tenant's queue (the round-robin
// across tenants decides which queue the freed slot goes to).
func (t *Tenant) Acquire(ctx context.Context) (func(), error) {
	fg := t.fg
	fg.mu.Lock()
	if t.closed {
		fg.mu.Unlock()
		return nil, ErrGateClosed
	}
	if fg.free > 0 {
		fg.free--
		fg.mu.Unlock()
		return fg.releaseFunc(), nil
	}
	w := &gateWaiter{ch: make(chan func(), 1)}
	t.waiters = append(t.waiters, w)
	fg.mu.Unlock()

	select {
	case rel := <-w.ch:
		if rel == nil {
			return nil, ErrGateClosed
		}
		return rel, nil
	case <-ctx.Done():
		fg.mu.Lock()
		for i, x := range t.waiters {
			if x == w {
				t.waiters = append(t.waiters[:i], t.waiters[i+1:]...)
				fg.mu.Unlock()
				return nil, ctx.Err()
			}
		}
		fg.mu.Unlock()
		// Already dequeued: a grant (or close) is in flight. Take it and
		// hand the slot straight back so it is not leaked.
		if rel := <-w.ch; rel != nil {
			rel()
		}
		return nil, ctx.Err()
	}
}

// Close deregisters the tenant. Blocked Acquire calls fail with
// ErrGateClosed; slots already granted stay valid until released.
func (t *Tenant) Close() {
	fg := t.fg
	fg.mu.Lock()
	if t.closed {
		fg.mu.Unlock()
		return
	}
	t.closed = true
	waiters := t.waiters
	t.waiters = nil
	for i, x := range fg.tenants {
		if x == t {
			fg.tenants = append(fg.tenants[:i], fg.tenants[i+1:]...)
			if fg.cursor > i {
				fg.cursor--
			}
			break
		}
	}
	if len(fg.tenants) > 0 {
		fg.cursor %= len(fg.tenants)
	} else {
		fg.cursor = 0
	}
	fg.mu.Unlock()
	for _, w := range waiters {
		w.ch <- nil
	}
}

// releaseFunc wraps release in a sync.Once so double-releasing a slot
// cannot inflate the budget.
func (fg *FairGate) releaseFunc() func() {
	var once sync.Once
	return func() { once.Do(fg.release) }
}

// release hands the freed slot to the next waiting tenant in
// round-robin order, or returns it to the free pool when nobody waits.
func (fg *FairGate) release() {
	fg.mu.Lock()
	n := len(fg.tenants)
	for i := 0; i < n; i++ {
		t := fg.tenants[(fg.cursor+i)%n]
		if len(t.waiters) == 0 {
			continue
		}
		w := t.waiters[0]
		t.waiters = t.waiters[1:]
		fg.cursor = (fg.cursor + i + 1) % n
		fg.mu.Unlock()
		w.ch <- fg.releaseFunc()
		return
	}
	fg.free++
	fg.mu.Unlock()
}
