package campaign

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// TestFileStoreRoundtrip: the single-file backend saves atomically and
// loads back exactly what was saved, ignoring the fingerprint argument
// (single slot).
func TestFileStoreRoundtrip(t *testing.T) {
	st := FileStore{Path: filepath.Join(t.TempDir(), "sub", "run.ckpt")}
	if ck, err := st.Load("anything"); err != nil || ck != nil {
		t.Fatalf("missing file: ck=%v err=%v", ck, err)
	}
	in := &Checkpoint{Version: checkpointVersion, Fingerprint: "cfg-a", Units: 1,
		Results: map[string]json.RawMessage{"u": json.RawMessage(`{"value":7}`)}}
	if err := st.Save(in); err != nil {
		t.Fatal(err)
	}
	out, err := st.Load("some-other-fingerprint")
	if err != nil {
		t.Fatal(err)
	}
	if out == nil || out.Fingerprint != "cfg-a" || string(out.Results["u"]) != `{"value":7}` {
		t.Fatalf("loaded %+v", out)
	}
	fps, err := st.List()
	if err != nil || !reflect.DeepEqual(fps, []string{"cfg-a"}) {
		t.Fatalf("list = %v, %v", fps, err)
	}
}

// TestFileStoreVersionGuard: a checkpoint of a different on-disk format
// refuses to load instead of silently resuming garbage.
func TestFileStoreVersionGuard(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := os.WriteFile(path, []byte(`{"version":99,"fingerprint":"x","results":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := (FileStore{Path: path}).Load(""); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Fatalf("want version error, got %v", err)
	}
}

// TestDirStoreRoundtrip: the content-addressed backend keys checkpoints
// by fingerprint, keeps independent configurations apart, and lists
// them all.
func TestDirStoreRoundtrip(t *testing.T) {
	st := DirStore{Dir: filepath.Join(t.TempDir(), "ckpts")}
	if fps, err := st.List(); err != nil || fps != nil {
		t.Fatalf("empty dir: %v, %v", fps, err)
	}
	for _, fp := range []string{"cfg-a", "cfg-b"} {
		ck := &Checkpoint{Version: checkpointVersion, Fingerprint: fp, Units: 1,
			Results: map[string]json.RawMessage{"u": json.RawMessage(`{"value":1}`)}}
		if err := st.Save(ck); err != nil {
			t.Fatal(err)
		}
	}
	if ck, err := st.Load("cfg-absent"); err != nil || ck != nil {
		t.Fatalf("absent fingerprint: ck=%v err=%v", ck, err)
	}
	ck, err := st.Load("cfg-b")
	if err != nil || ck == nil || ck.Fingerprint != "cfg-b" {
		t.Fatalf("load cfg-b: %+v, %v", ck, err)
	}
	fps, err := st.List()
	if err != nil || !reflect.DeepEqual(fps, []string{"cfg-a", "cfg-b"}) {
		t.Fatalf("list = %v, %v", fps, err)
	}
}

// TestDirStoreAddressMismatch: a file whose content does not match its
// content address is corruption, not a configuration change.
func TestDirStoreAddressMismatch(t *testing.T) {
	st := DirStore{Dir: t.TempDir()}
	if err := st.Save(&Checkpoint{Version: checkpointVersion, Fingerprint: "cfg-a"}); err != nil {
		t.Fatal(err)
	}
	// Graft cfg-a's file onto cfg-b's address.
	if err := os.Rename(st.path("cfg-a"), st.path("cfg-b")); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load("cfg-b"); err == nil {
		t.Fatal("want corruption error on address mismatch")
	}
}

// TestExecuteWithDirStore: a campaign checkpointing through a shared
// DirStore resumes by fingerprint — two configurations coexist in one
// store without poisoning each other.
func TestExecuteWithDirStore(t *testing.T) {
	st := DirStore{Dir: t.TempDir()}
	optsA := Options{Workers: 2, Store: st, Fingerprint: "cfg-a", Decode: decodeInt}
	optsB := Options{Workers: 2, Store: st, Fingerprint: "cfg-b", Decode: decodeInt}
	first, err := Execute(context.Background(), optsA, fanoutRoots(2, 3, nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(context.Background(), optsB, fanoutRoots(1, 1, nil)); err != nil {
		t.Fatal(err)
	}

	var ran sync.Map
	optsA.Resume = true
	second, err := Execute(context.Background(), optsA, fanoutRoots(2, 3, &ran))
	if err != nil {
		t.Fatal(err)
	}
	live := 0
	ran.Range(func(_, _ any) bool { live++; return true })
	if live != 0 {
		t.Fatalf("%d units ran live on resume", live)
	}
	if second.Stats.Restored != 8 {
		t.Fatalf("restored = %d, want 8", second.Stats.Restored)
	}
	if !reflect.DeepEqual(collect(t, first), collect(t, second)) {
		t.Fatal("resumed results differ")
	}
	if fps, err := st.List(); err != nil || !reflect.DeepEqual(fps, []string{"cfg-a", "cfg-b"}) {
		t.Fatalf("list = %v, %v", fps, err)
	}
}
