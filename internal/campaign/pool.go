package campaign

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"
)

// engine is the shared state of one campaign execution. Scheduling uses
// per-worker deques with stealing: a worker pushes the units it fans out
// onto its own deque and pops them LIFO (depth-first, keeping the unit
// graph's working set hot); an idle worker steals FIFO from the busiest
// victim (breadth-first, taking the oldest — typically largest — work).
// All deques hang off one mutex: units are milliseconds-to-seconds of
// analog simulation each, so lock traffic is noise.
type engine struct {
	opts Options

	mu       sync.Mutex
	cond     *sync.Cond
	deques   [][]Unit
	inflight int  // units popped but not yet completed
	stopped  bool // context cancelled: drain without starting new units

	results  map[string]any
	raw      map[string]json.RawMessage // marshalled results for the checkpoint
	restored map[string]json.RawMessage // loaded checkpoint payloads
	failed   map[string]string
	seen     map[string]bool // keys ever enqueued (guards double fanout)

	// ckptMu serializes checkpoint writes (they share one .tmp file)
	// without holding mu across disk I/O.
	ckptMu    sync.Mutex
	sinceCkpt int
	ckptErr   error

	stats Stats
	busy  []time.Duration
}

// enqueueLocked pushes u onto worker w's deque. Caller may hold e.mu;
// during setup (single goroutine) the lock is not required.
func (e *engine) enqueueLocked(w int, u Unit) {
	if e.seen[u.Key] {
		return
	}
	e.seen[u.Key] = true
	e.deques[w] = append(e.deques[w], u)
	e.stats.UnitsTotal++
}

// next blocks until a unit is available for worker id, stealing when the
// local deque is empty. ok=false means the campaign is over: no queued
// units, none in flight (so no fanout can appear), or cancellation.
func (e *engine) next(id int) (Unit, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for {
		if e.stopped {
			return Unit{}, false
		}
		// Local pop, newest first.
		if q := e.deques[id]; len(q) > 0 {
			u := q[len(q)-1]
			e.deques[id] = q[:len(q)-1]
			e.inflight++
			return u, true
		}
		// Steal the oldest unit from the fullest victim.
		victim, best := -1, 0
		for w := range e.deques {
			if w != id && len(e.deques[w]) > best {
				victim, best = w, len(e.deques[w])
			}
		}
		if victim >= 0 {
			u := e.deques[victim][0]
			e.deques[victim] = e.deques[victim][1:]
			e.stats.Steals++
			e.inflight++
			return u, true
		}
		if e.inflight == 0 {
			e.cond.Broadcast() // wake the other idle workers to exit
			return Unit{}, false
		}
		e.cond.Wait()
	}
}

// worker is one pool goroutine: pop/steal, execute with recovery and
// retry, record, fan out, checkpoint.
func (e *engine) worker(ctx context.Context, id int) {
	for {
		u, ok := e.next(id)
		if !ok {
			return
		}
		start := time.Now()
		res, restored, err := e.perform(ctx, u)
		elapsed := time.Since(start)

		var fanned []Unit
		if err == nil && u.Fanout != nil {
			fanned, err = runFanout(u, res)
		}

		e.mu.Lock()
		e.busy[id] += elapsed
		g := e.stats.Groups[u.Group]
		if g == nil {
			g = &GroupStats{}
			e.stats.Groups[u.Group] = g
		}
		if err != nil {
			if u.retried < e.opts.maxRetries() && !e.stopped {
				// Bounded retry: requeue locally with the attempt count
				// bumped; a transient failure gets another worker slot.
				e.stats.Retries++
				r := u
				r.retried++
				e.deques[id] = append(e.deques[id], r)
				e.inflight--
				e.mu.Unlock()
				e.cond.Broadcast()
				continue
			}
			e.failed[u.Key] = err.Error()
			e.stats.Failed++
			g.Failed++
		} else {
			e.results[u.Key] = res
			e.stats.Completed++
			g.Units++
			g.WallMS += float64(elapsed) / float64(time.Millisecond)
			if restored {
				e.stats.Restored++
				g.Restored++
			} else if e.opts.store() != nil {
				if raw, mErr := json.Marshal(res); mErr == nil {
					e.raw[u.Key] = raw
				} else if e.ckptErr == nil {
					e.ckptErr = fmt.Errorf("campaign: marshal %s: %w", u.Key, mErr)
				}
			}
			for _, f := range fanned {
				e.enqueueLocked(id, f)
			}
		}
		e.inflight--
		prog := Progress{
			Total:     e.stats.UnitsTotal,
			Completed: e.stats.Completed,
			Restored:  e.stats.Restored,
			Failed:    e.stats.Failed,
		}
		flush := false
		if e.opts.store() != nil && !restored && err == nil {
			e.sinceCkpt++
			if e.sinceCkpt >= e.opts.checkpointEvery() {
				e.sinceCkpt = 0
				flush = true
			}
		}
		e.mu.Unlock()
		e.cond.Broadcast()

		if e.opts.OnUnitDone != nil && err == nil {
			e.opts.OnUnitDone(u.Key, restored)
		}
		if e.opts.OnProgress != nil {
			e.opts.OnProgress(prog)
		}
		if flush {
			if sErr := e.saveCheckpoint(); sErr != nil {
				e.mu.Lock()
				if e.ckptErr == nil {
					e.ckptErr = sErr
				}
				e.mu.Unlock()
			}
		}
	}
}

// perform resolves one unit: from the checkpoint when possible, then by
// remote dispatch when an Executor accepts it, live locally otherwise,
// with panics converted to errors. Remote dispatch happens before the
// admission gate — a remotely executing unit consumes no local slot, so
// connected workers add capacity on top of the local budget. Local
// executions pass through the gate (when one is configured) so
// concurrent campaigns share the global slot budget; restored units
// bypass both — a checkpoint hit costs microseconds, not a worker slot.
func (e *engine) perform(ctx context.Context, u Unit) (res any, restored bool, err error) {
	if raw, ok := e.restoredPayload(u.Key); ok && e.opts.Decode != nil {
		if res, dErr := e.opts.Decode(u.Key, raw); dErr == nil {
			return res, true, nil
		}
		// Undecodable payload (format drift): fall through and re-run.
	}
	if x := e.opts.Executor; x != nil && e.opts.Decode != nil {
		raw, ok, xErr := x.Execute(ctx, u)
		if xErr != nil {
			return nil, false, xErr
		}
		if ok {
			res, dErr := e.opts.Decode(u.Key, raw)
			if dErr != nil {
				// An undecodable remote result is a unit error, not a
				// silent local re-run: it means worker/daemon version
				// skew, which retrying locally would mask.
				return nil, false, fmt.Errorf("campaign: decode remote result of %s: %w", u.Key, dErr)
			}
			return res, false, nil
		}
		// Declined: no remote capacity (or the lease expired under a
		// dead worker) — the unit is re-queued locally, right here.
	}
	if e.opts.Gate != nil {
		release, gErr := e.opts.Gate.Acquire(ctx)
		if gErr != nil {
			return nil, false, gErr
		}
		defer release()
	}
	res, err = runShielded(ctx, u)
	return res, false, err
}

func (e *engine) restoredPayload(key string) (json.RawMessage, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	raw, ok := e.restored[key]
	return raw, ok
}

// runShielded invokes u.Run with panic recovery: one bad fault class
// must degrade the campaign, not kill it.
func runShielded(ctx context.Context, u Unit) (res any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("campaign: unit %s panicked: %v", u.Key, r)
		}
	}()
	return u.Run(ctx)
}

// runFanout invokes u.Fanout with panic recovery.
func runFanout(u Unit, res any) (units []Unit, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("campaign: fanout of %s panicked: %v", u.Key, r)
		}
	}()
	return u.Fanout(res), nil
}
