package campaign

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// ErrNoObject is returned by ObjectAPI.Get for an absent key.
var ErrNoObject = errors.New("campaign: no such object")

// ObjectAPI is the minimal S3-shaped object interface the checkpoint
// layer needs: whole-object Get/Put plus a prefix List. It is
// deliberately tiny — any blob service (S3, GCS, MinIO, a bucket
// gateway) can be adapted without a cloud SDK dependency, and the tests
// run against the in-memory ObjectHandler over httptest. Put replaces
// the whole object: implementations must make the replacement atomic
// (a Get concurrent with a Put returns either the old or the new bytes,
// never a torn mix), which is all the checkpoint writer requires —
// per-fingerprint writes are already serialised by the engine, so
// cross-process last-writer-wins is the intended semantics.
type ObjectAPI interface {
	// Get returns the object's bytes (ErrNoObject when absent).
	Get(key string) ([]byte, error)
	// Put stores data under key, replacing any previous object.
	Put(key string, data []byte) error
	// List returns the keys under prefix, sorted.
	List(prefix string) ([]string, error)
}

// ObjectStore is the checkpoint Store over an ObjectAPI: one object per
// configuration fingerprint, content-addressed exactly like DirStore
// (sha256(fingerprint)[:16] + ".ckpt.json"), so a daemon and its remote
// workers can share checkpoints without a shared filesystem — point
// both at the same bucket.
type ObjectStore struct {
	// API is the object backend.
	API ObjectAPI
	// Prefix namespaces the checkpoint objects inside the bucket
	// (e.g. "campaigns/"). Empty is the bucket root.
	Prefix string
}

// String names the store in engine errors.
func (s ObjectStore) String() string {
	if n, ok := s.API.(fmt.Stringer); ok {
		return n.String() + "/" + s.Prefix
	}
	return "object:" + s.Prefix
}

// key maps a fingerprint to its content address inside the bucket.
func (s ObjectStore) key(fingerprint string) string {
	return s.Prefix + contentAddress(fingerprint)
}

// Load reads the checkpoint stored for fingerprint (nil when absent),
// cross-checking the stored fingerprint against the address like
// DirStore does.
func (s ObjectStore) Load(fingerprint string) (*Checkpoint, error) {
	data, err := s.API.Get(s.key(fingerprint))
	if errors.Is(err, ErrNoObject) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("campaign: get checkpoint object: %w", err)
	}
	ck, err := parseCheckpoint(data, s.key(fingerprint))
	if err != nil {
		return nil, err
	}
	if ck.Fingerprint != fingerprint {
		return nil, fmt.Errorf("campaign: checkpoint object %s holds fingerprint %q, not the %q it is addressed by",
			s.key(fingerprint), ck.Fingerprint, fingerprint)
	}
	return ck, nil
}

// Save persists ck under its fingerprint's address. Atomicity is the
// backend's whole-object replace; per-fingerprint writes are serialised
// by the engine, and concurrent writers of the same fingerprint are
// last-writer-wins — both hold the same completed results, so either
// winning is a valid checkpoint.
func (s ObjectStore) Save(ck *Checkpoint) error {
	data, err := json.Marshal(ck)
	if err != nil {
		return fmt.Errorf("campaign: marshal checkpoint: %w", err)
	}
	if err := s.API.Put(s.key(ck.Fingerprint), data); err != nil {
		return fmt.Errorf("campaign: put checkpoint object: %w", err)
	}
	return nil
}

// List enumerates the stored fingerprints, sorted. Torn or foreign
// objects are skipped, matching DirStore.
func (s ObjectStore) List() ([]string, error) {
	keys, err := s.API.List(s.Prefix)
	if err != nil {
		return nil, fmt.Errorf("campaign: list checkpoint objects: %w", err)
	}
	var out []string
	for _, k := range keys {
		if !strings.HasSuffix(k, ckptExt) {
			continue
		}
		data, err := s.API.Get(k)
		if err != nil {
			continue // deleted between List and Get, or unreadable
		}
		ck, err := parseCheckpoint(data, k)
		if err != nil {
			continue
		}
		out = append(out, ck.Fingerprint)
	}
	sort.Strings(out)
	return out, nil
}

// HTTPObjects is an ObjectAPI over a plain HTTP object dialect:
//
//	GET    {base}/{key}          → 200 body | 404
//	PUT    {base}/{key}          → 2xx
//	GET    {base}/?prefix={p}    → 200 JSON array of keys, sorted
//
// ObjectHandler serves exactly this dialect, so a daemon and its
// workers can share checkpoints through any process that mounts one —
// and an S3-compatible gateway exposing path-style objects works the
// same way.
type HTTPObjects struct {
	// Base is the bucket base URL, without a trailing slash.
	Base string
	// Client overrides the HTTP client (nil selects a 30 s-timeout
	// default — a checkpoint write must never hang the engine).
	Client *http.Client
}

// String names the backend in store errors.
func (o HTTPObjects) String() string { return o.Base }

func (o HTTPObjects) client() *http.Client {
	if o.Client != nil {
		return o.Client
	}
	return &http.Client{Timeout: 30 * time.Second}
}

// Get implements ObjectAPI.
func (o HTTPObjects) Get(key string) ([]byte, error) {
	resp, err := o.client().Get(o.Base + "/" + key)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, ErrNoObject
	}
	if resp.StatusCode/100 != 2 {
		return nil, fmt.Errorf("campaign: object get %s: %s", key, resp.Status)
	}
	return io.ReadAll(resp.Body)
}

// Put implements ObjectAPI.
func (o HTTPObjects) Put(key string, data []byte) error {
	req, err := http.NewRequest(http.MethodPut, o.Base+"/"+key, bytes.NewReader(data))
	if err != nil {
		return err
	}
	resp, err := o.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("campaign: object put %s: %s", key, resp.Status)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// List implements ObjectAPI.
func (o HTTPObjects) List(prefix string) ([]string, error) {
	resp, err := o.client().Get(o.Base + "/?prefix=" + prefix)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, fmt.Errorf("campaign: object list: %s", resp.Status)
	}
	var keys []string
	if err := json.NewDecoder(resp.Body).Decode(&keys); err != nil {
		return nil, fmt.Errorf("campaign: object list: %w", err)
	}
	return keys, nil
}

// NewHTTPObjectStore builds the checkpoint Store over the HTTP object
// dialect at base (see HTTPObjects).
func NewHTTPObjectStore(base string) ObjectStore {
	return ObjectStore{API: HTTPObjects{Base: strings.TrimRight(base, "/")}}
}

// ObjectHandler is an in-memory object bucket serving the HTTPObjects
// dialect: the httptest-backed fake of the store tests, and a
// self-hostable shared checkpoint bucket for a daemon plus workers on
// machines without a shared filesystem. Writes replace whole objects
// under one lock, so readers never observe torn objects; List returns
// sorted keys for deterministic enumeration.
type ObjectHandler struct {
	mu      sync.Mutex
	objects map[string][]byte
}

// NewObjectHandler returns an empty in-memory bucket.
func NewObjectHandler() *ObjectHandler {
	return &ObjectHandler{objects: map[string][]byte{}}
}

// Len reports the number of stored objects.
func (h *ObjectHandler) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.objects)
}

// ServeHTTP implements the object dialect.
func (h *ObjectHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	key := strings.TrimPrefix(r.URL.Path, "/")
	switch {
	case r.Method == http.MethodGet && key == "":
		prefix := r.URL.Query().Get("prefix")
		h.mu.Lock()
		keys := make([]string, 0, len(h.objects))
		for k := range h.objects {
			if strings.HasPrefix(k, prefix) {
				keys = append(keys, k)
			}
		}
		h.mu.Unlock()
		sort.Strings(keys)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(keys)
	case r.Method == http.MethodGet:
		h.mu.Lock()
		data, ok := h.objects[key]
		h.mu.Unlock()
		if !ok {
			http.Error(w, "no such object", http.StatusNotFound)
			return
		}
		w.Write(data)
	case r.Method == http.MethodPut:
		data, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		h.mu.Lock()
		h.objects[key] = data
		h.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}
