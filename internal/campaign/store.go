package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// checkpointVersion guards the on-disk format.
const checkpointVersion = 1

// Checkpoint is the persisted state of a campaign: the configuration
// fingerprint plus every completed unit's marshalled result, keyed by
// unit key. A resumed campaign skips any unit whose key is present and
// decodable.
type Checkpoint struct {
	Version     int                        `json:"version"`
	Fingerprint string                     `json:"fingerprint"`
	Units       int                        `json:"units"`
	Results     map[string]json.RawMessage `json:"results"`
}

// Store persists campaign checkpoints keyed by configuration
// fingerprint, so campaigns survive process restarts and resume from
// their last flush. Implementations must be safe for concurrent use by
// independent campaigns (the job server shares one Store across every
// job); writes of a single fingerprint are additionally serialised by
// the engine's checkpoint mutex.
type Store interface {
	// Save persists ck under ck.Fingerprint, atomically: a crash mid-
	// write must never truncate a previously saved checkpoint.
	Save(ck *Checkpoint) error
	// Load returns the checkpoint recorded for fingerprint, or nil when
	// none exists. A single-slot implementation (FileStore) returns
	// whatever it holds regardless of fingerprint — the engine surfaces
	// the mismatch as a configuration error rather than silently
	// starting fresh.
	Load(fingerprint string) (*Checkpoint, error)
	// List enumerates the fingerprints with a stored checkpoint.
	List() ([]string, error)
}

// FileStore is the historical single-file checkpoint backend: one
// atomic-JSON document at a fixed path, holding the checkpoint of
// exactly one configuration. It is what Options.Checkpoint selects.
type FileStore struct {
	// Path of the JSON checkpoint file.
	Path string
}

// String names the store in engine errors (the checkpoint path, as the
// pre-Store error messages did).
func (s FileStore) String() string { return s.Path }

// Load reads the checkpoint; a missing file is not an error (nil
// checkpoint), anything unreadable or of the wrong version is. The
// fingerprint argument is ignored: the single slot holds whatever was
// last saved, and the engine performs the mismatch check.
func (s FileStore) Load(string) (*Checkpoint, error) {
	return readCheckpointFile(s.Path)
}

// Save atomically persists ck. Write-to-temp-then-rename keeps a crash
// from truncating the previous checkpoint.
func (s FileStore) Save(ck *Checkpoint) error {
	return writeCheckpointFile(s.Path, ck)
}

// List returns the stored checkpoint's fingerprint (empty when the file
// does not exist).
func (s FileStore) List() ([]string, error) {
	ck, err := readCheckpointFile(s.Path)
	if err != nil || ck == nil {
		return nil, err
	}
	return []string{ck.Fingerprint}, nil
}

// DirStore is the content-addressed checkpoint backend: one file per
// configuration fingerprint inside a directory, named by the
// fingerprint's SHA-256. Many campaigns with different configurations
// share one DirStore — the job server's daemon-restart persistence.
type DirStore struct {
	// Dir is the checkpoint directory (created on first save).
	Dir string
}

// ckptExt marks checkpoint files inside a DirStore directory.
const ckptExt = ".ckpt.json"

// String names the store in engine errors.
func (s DirStore) String() string { return s.Dir }

// contentAddress maps a fingerprint to its content-addressed filename,
// shared by DirStore (files in a directory) and ObjectStore (keys in a
// bucket) so the two layouts are interchangeable.
func contentAddress(fingerprint string) string {
	sum := sha256.Sum256([]byte(fingerprint))
	return hex.EncodeToString(sum[:16]) + ckptExt
}

// path maps a fingerprint to its content address inside the directory.
func (s DirStore) path(fingerprint string) string {
	return filepath.Join(s.Dir, contentAddress(fingerprint))
}

// Load reads the checkpoint stored for fingerprint (nil when absent).
// The stored fingerprint is cross-checked against the address: a
// mismatch means corruption, not a configuration change.
func (s DirStore) Load(fingerprint string) (*Checkpoint, error) {
	ck, err := readCheckpointFile(s.path(fingerprint))
	if err != nil || ck == nil {
		return nil, err
	}
	if ck.Fingerprint != fingerprint {
		return nil, fmt.Errorf("campaign: checkpoint %s holds fingerprint %q, not the %q it is addressed by",
			s.path(fingerprint), ck.Fingerprint, fingerprint)
	}
	return ck, nil
}

// Save atomically persists ck under its fingerprint's address. The
// temporary file is unique per save (not just per fingerprint), so
// concurrent saves — different campaigns, or a daemon and a worker
// flushing the same fingerprint — are last-writer-wins through atomic
// renames, never a torn mix of two writers' bytes.
func (s DirStore) Save(ck *Checkpoint) error {
	return writeCheckpointFile(s.path(ck.Fingerprint), ck)
}

// List enumerates the stored fingerprints, sorted.
func (s DirStore) List() ([]string, error) {
	entries, err := os.ReadDir(s.Dir)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("campaign: list checkpoints: %w", err)
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ckptExt) {
			continue
		}
		ck, err := readCheckpointFile(filepath.Join(s.Dir, e.Name()))
		if err != nil || ck == nil {
			continue // a torn or foreign file must not fail enumeration
		}
		out = append(out, ck.Fingerprint)
	}
	sort.Strings(out)
	return out, nil
}

// readCheckpointFile reads one checkpoint document; a missing file is
// not an error (nil checkpoint), anything unreadable or of the wrong
// version is.
func readCheckpointFile(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("campaign: read checkpoint: %w", err)
	}
	return parseCheckpoint(data, path)
}

// parseCheckpoint decodes one checkpoint document (name labels errors).
func parseCheckpoint(data []byte, name string) (*Checkpoint, error) {
	var ck Checkpoint
	if err := json.Unmarshal(data, &ck); err != nil {
		return nil, fmt.Errorf("campaign: parse checkpoint %s: %w", name, err)
	}
	if ck.Version != checkpointVersion {
		return nil, fmt.Errorf("campaign: checkpoint %s has version %d, want %d",
			name, ck.Version, checkpointVersion)
	}
	return &ck, nil
}

// writeCheckpointFile atomically persists ck to path via a temp file
// unique to this call (write-to-temp-then-rename). A fixed temp name
// would let two concurrent writers of the same path interleave write
// and rename and commit a torn file; a per-call temp makes concurrent
// saves strictly last-writer-wins.
func writeCheckpointFile(path string, ck *Checkpoint) error {
	data, err := json.Marshal(ck)
	if err != nil {
		return fmt.Errorf("campaign: marshal checkpoint: %w", err)
	}
	dir := filepath.Dir(path)
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("campaign: checkpoint dir: %w", err)
		}
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("campaign: checkpoint temp: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("campaign: write checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("campaign: write checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("campaign: commit checkpoint: %w", err)
	}
	return nil
}
