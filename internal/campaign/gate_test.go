package campaign

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waiterCount reads a tenant's queue length (test-only helper).
func waiterCount(t *Tenant) int {
	t.fg.mu.Lock()
	defer t.fg.mu.Unlock()
	return len(t.waiters)
}

// TestFairGateRoundRobin: with one slot held and two tenants queued,
// freed slots alternate strictly between the tenants regardless of how
// many waiters each has queued.
func TestFairGateRoundRobin(t *testing.T) {
	fg := NewFairGate(1)
	a, b := fg.Tenant(), fg.Tenant()
	hold, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	enqueue := func(tn *Tenant, label string, n int) {
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				rel, err := tn.Acquire(context.Background())
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				order = append(order, label)
				mu.Unlock()
				rel()
			}()
		}
	}
	// Tenant a queues 4 waiters, tenant b only 2: fairness means b is
	// not starved behind a's backlog.
	enqueue(a, "a", 4)
	enqueue(b, "b", 2)
	for deadline := time.Now().Add(5 * time.Second); waiterCount(a) != 4 || waiterCount(b) != 2; {
		if time.Now().After(deadline) {
			t.Fatalf("waiters did not queue: a=%d b=%d", waiterCount(a), waiterCount(b))
		}
		time.Sleep(time.Millisecond)
	}

	hold()
	wg.Wait()
	got := fmt.Sprint(order)
	// Grants alternate while both queues are non-empty (the cursor
	// starts at a), then drain a's remaining backlog.
	want := fmt.Sprint([]string{"a", "b", "a", "b", "a", "a"})
	if got != want {
		t.Fatalf("grant order %v, want %v", got, want)
	}
}

// TestFairGateBudget: the number of concurrently held slots never
// exceeds the budget under churn from several tenants.
func TestFairGateBudget(t *testing.T) {
	const budget = 3
	fg := NewFairGate(budget)
	var held, peak atomic.Int32
	var wg sync.WaitGroup
	for tn := 0; tn < 4; tn++ {
		tenant := fg.Tenant()
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					rel, err := tenant.Acquire(context.Background())
					if err != nil {
						t.Error(err)
						return
					}
					h := held.Add(1)
					for {
						p := peak.Load()
						if h <= p || peak.CompareAndSwap(p, h) {
							break
						}
					}
					held.Add(-1)
					rel()
				}
			}()
		}
	}
	wg.Wait()
	if p := peak.Load(); p > budget {
		t.Fatalf("peak held slots = %d, budget %d", p, budget)
	}
}

// TestFairGateCancelledWaiter: a waiter whose context dies leaves the
// queue without leaking its slot, and a grant racing the cancellation
// is handed back rather than lost.
func TestFairGateCancelledWaiter(t *testing.T) {
	fg := NewFairGate(1)
	tn := fg.Tenant()
	hold, err := tn.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := tn.Acquire(ctx)
		errc <- err
	}()
	for deadline := time.Now().Add(5 * time.Second); waiterCount(tn) != 1; {
		if time.Now().After(deadline) {
			t.Fatal("waiter did not queue")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	hold()
	// The slot must be reusable after the cancelled wait.
	rel, err := tn.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rel()
}

// TestFairGateClose: closing a tenant fails its blocked waiters with
// ErrGateClosed and removes it from the rotation; other tenants keep
// the full budget.
func TestFairGateClose(t *testing.T) {
	fg := NewFairGate(1)
	a, b := fg.Tenant(), fg.Tenant()
	hold, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := b.Acquire(context.Background())
		errc <- err
	}()
	for deadline := time.Now().Add(5 * time.Second); waiterCount(b) != 1; {
		if time.Now().After(deadline) {
			t.Fatal("waiter did not queue")
		}
		time.Sleep(time.Millisecond)
	}
	b.Close()
	if err := <-errc; !errors.Is(err, ErrGateClosed) {
		t.Fatalf("want ErrGateClosed, got %v", err)
	}
	if _, err := b.Acquire(context.Background()); !errors.Is(err, ErrGateClosed) {
		t.Fatalf("acquire after close: %v", err)
	}
	hold()
	rel, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rel()
}

// TestFairGateDoubleRelease: releasing a slot twice must not inflate
// the budget.
func TestFairGateDoubleRelease(t *testing.T) {
	fg := NewFairGate(1)
	tn := fg.Tenant()
	rel, err := tn.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rel()
	rel()
	fg.mu.Lock()
	free := fg.free
	fg.mu.Unlock()
	if free != 1 {
		t.Fatalf("free = %d after double release, want 1", free)
	}
}

// TestExecuteWithGate: two concurrent campaigns sharing a FairGate
// never exceed the global budget even though each runs its own worker
// pool.
func TestExecuteWithGate(t *testing.T) {
	const budget = 2
	fg := NewFairGate(budget)
	var live, peak atomic.Int32
	mkUnits := func(n int) []Unit {
		var units []Unit
		for i := 0; i < n; i++ {
			units = append(units, Unit{
				Key: fmt.Sprintf("u/%d", i), Group: "g",
				Run: func(context.Context) (any, error) {
					h := live.Add(1)
					for {
						p := peak.Load()
						if h <= p || peak.CompareAndSwap(p, h) {
							break
						}
					}
					time.Sleep(time.Millisecond)
					live.Add(-1)
					return &intResult{Value: i}, nil
				},
			})
		}
		return units
	}
	var wg sync.WaitGroup
	for c := 0; c < 2; c++ {
		tenant := fg.Tenant()
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer tenant.Close()
			out, err := Execute(context.Background(),
				Options{Workers: 4, Gate: tenant}, mkUnits(20))
			if err != nil || out.Stats.Completed != 20 {
				t.Errorf("campaign: %v, %+v", err, out)
			}
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > budget {
		t.Fatalf("peak concurrent units = %d, budget %d", p, budget)
	}
}
