package campaign

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// intResult is the payload of the synthetic units below.
type intResult struct {
	Value int `json:"value"`
}

func decodeInt(_ string, raw json.RawMessage) (any, error) {
	var r intResult
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// fanoutRoots builds nRoots root units, each fanning out into nKids
// children; every unit computes a deterministic function of its key.
func fanoutRoots(nRoots, nKids int, ran *sync.Map) []Unit {
	kid := func(root, k int) Unit {
		key := fmt.Sprintf("kid/%d/%d", root, k)
		return Unit{
			Key:   key,
			Group: fmt.Sprintf("g%d", root),
			Run: func(context.Context) (any, error) {
				if ran != nil {
					ran.Store(key, true)
				}
				return &intResult{Value: 100*root + k}, nil
			},
		}
	}
	var roots []Unit
	for r := 0; r < nRoots; r++ {
		r := r
		key := fmt.Sprintf("root/%d", r)
		roots = append(roots, Unit{
			Key:   key,
			Group: fmt.Sprintf("g%d", r),
			Run: func(context.Context) (any, error) {
				if ran != nil {
					ran.Store(key, true)
				}
				return &intResult{Value: r}, nil
			},
			Fanout: func(res any) []Unit {
				var kids []Unit
				for k := 0; k < nKids; k++ {
					kids = append(kids, kid(res.(*intResult).Value, k))
				}
				return kids
			},
		})
	}
	return roots
}

// collect flattens an outcome's results into a sorted "key=value" list.
func collect(t *testing.T, out *Outcome) []string {
	t.Helper()
	var got []string
	for k, v := range out.Results {
		got = append(got, fmt.Sprintf("%s=%d", k, v.(*intResult).Value))
	}
	sort.Strings(got)
	return got
}

func TestExecuteFanout(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		out, err := Execute(context.Background(), Options{Workers: workers}, fanoutRoots(3, 4, nil))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out.Results) != 3+3*4 {
			t.Fatalf("workers=%d: %d results", workers, len(out.Results))
		}
		if out.Stats.Completed != 15 || out.Stats.UnitsTotal != 15 || out.Stats.Failed != 0 {
			t.Fatalf("workers=%d: stats %+v", workers, out.Stats)
		}
		if v := out.Results["kid/2/3"].(*intResult).Value; v != 203 {
			t.Fatalf("workers=%d: kid/2/3 = %d", workers, v)
		}
		if out.Stats.Workers != workers {
			t.Fatalf("stats workers = %d", out.Stats.Workers)
		}
		// Per-group metrics: each group holds its root + 4 kids.
		if g := out.Stats.Groups["g1"]; g == nil || g.Units != 5 {
			t.Fatalf("workers=%d: group g1 = %+v", workers, g)
		}
	}
}

// TestExecuteDeterministicResults: the keyed result set is identical for
// every worker count (merge order is the caller's concern; the engine
// guarantees the same key→result mapping).
func TestExecuteDeterministicResults(t *testing.T) {
	base, err := Execute(context.Background(), Options{Workers: 1}, fanoutRoots(4, 7, nil))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 5} {
		out, err := Execute(context.Background(), Options{Workers: workers}, fanoutRoots(4, 7, nil))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(collect(t, base), collect(t, out)) {
			t.Fatalf("workers=%d: results differ from serial", workers)
		}
	}
}

// TestRetryAndPanicRecovery: a unit that panics on its first attempts
// succeeds within the retry budget; one that always panics is recorded
// as failed without killing the campaign.
func TestRetryAndPanicRecovery(t *testing.T) {
	var flakyTries, doomedTries atomic.Int32
	units := []Unit{
		{
			Key: "ok", Group: "g",
			Run: func(context.Context) (any, error) { return &intResult{Value: 1}, nil },
		},
		{
			Key: "flaky", Group: "g",
			Run: func(context.Context) (any, error) {
				if flakyTries.Add(1) < 3 {
					panic("transient")
				}
				return &intResult{Value: 2}, nil
			},
		},
		{
			Key: "doomed", Group: "g",
			Run: func(context.Context) (any, error) {
				doomedTries.Add(1)
				return nil, fmt.Errorf("permanent")
			},
		},
	}
	out, err := Execute(context.Background(), Options{Workers: 2, MaxRetries: 2}, units)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 2 {
		t.Fatalf("results = %v", out.Results)
	}
	if msg, ok := out.Failed["doomed"]; !ok || !strings.Contains(msg, "permanent") {
		t.Fatalf("failed map = %v", out.Failed)
	}
	if doomedTries.Load() != 3 { // 1 attempt + 2 retries
		t.Fatalf("doomed attempts = %d", doomedTries.Load())
	}
	if out.Stats.Retries != 4 || out.Stats.Failed != 1 || out.Stats.Completed != 2 {
		t.Fatalf("stats = %+v", out.Stats)
	}
	if g := out.Stats.Groups["g"]; g.Failed != 1 || g.Units != 2 {
		t.Fatalf("group = %+v", g)
	}
}

// TestCheckpointResume: a second execution over the same checkpoint runs
// nothing live and reproduces the full result set.
func TestCheckpointResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "sub", "run.ckpt")
	opts := Options{
		Workers: 3, Checkpoint: ckpt, CheckpointEvery: 4,
		Fingerprint: "test-v1", Decode: decodeInt,
	}
	first, err := Execute(context.Background(), opts, fanoutRoots(3, 5, nil))
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.Checkpoints == 0 {
		t.Fatal("no checkpoint writes")
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatal(err)
	}

	var ran sync.Map
	opts.Resume = true
	second, err := Execute(context.Background(), opts, fanoutRoots(3, 5, &ran))
	if err != nil {
		t.Fatal(err)
	}
	liveRuns := 0
	ran.Range(func(_, _ any) bool { liveRuns++; return true })
	if liveRuns != 0 {
		t.Fatalf("%d units ran live on resume", liveRuns)
	}
	if second.Stats.Restored != 18 || second.Stats.Completed != 18 {
		t.Fatalf("resume stats = %+v", second.Stats)
	}
	if !reflect.DeepEqual(collect(t, first), collect(t, second)) {
		t.Fatal("resumed results differ")
	}
}

// TestCheckpointFingerprintMismatch: resuming under a different
// configuration must refuse.
func TestCheckpointFingerprintMismatch(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	opts := Options{Checkpoint: ckpt, Fingerprint: "cfg-a", Decode: decodeInt}
	if _, err := Execute(context.Background(), opts, fanoutRoots(1, 1, nil)); err != nil {
		t.Fatal(err)
	}
	opts.Resume = true
	opts.Fingerprint = "cfg-b"
	if _, err := Execute(context.Background(), opts, fanoutRoots(1, 1, nil)); err == nil ||
		!strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("want fingerprint error, got %v", err)
	}
}

// TestCancelThenResume: cancelling mid-run flushes the checkpoint; the
// resumed campaign completes the remainder and the union matches an
// uninterrupted run.
func TestCancelThenResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	opts := Options{
		Workers: 2, Checkpoint: ckpt, CheckpointEvery: 1,
		Fingerprint: "test-v1", Decode: decodeInt,
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var done atomic.Int32
	opts.OnUnitDone = func(string, bool) {
		if done.Add(1) == 5 {
			cancel()
		}
	}
	// Pad each unit so cancellation lands mid-run rather than after the
	// whole (microsecond-sized) graph has drained; scheduling may still
	// let everything finish, which the assertions below tolerate.
	pad := func(u Unit) Unit {
		inner := u.Run
		u.Run = func(ctx context.Context) (any, error) {
			time.Sleep(2 * time.Millisecond)
			return inner(ctx)
		}
		return u
	}
	roots := fanoutRoots(3, 6, nil)
	for i := range roots {
		roots[i] = pad(roots[i])
		innerFan := roots[i].Fanout
		roots[i].Fanout = func(res any) []Unit {
			kids := innerFan(res)
			for k := range kids {
				kids[k] = pad(kids[k])
			}
			return kids
		}
	}
	partial, err := Execute(ctx, opts, roots)
	if err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if partial == nil || partial.Stats.Completed == 0 {
		t.Fatalf("partial outcome: %+v", partial)
	}

	opts.OnUnitDone = nil
	opts.Resume = true
	resumed, err := Execute(context.Background(), opts, fanoutRoots(3, 6, nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed.Results) != 21 {
		t.Fatalf("resumed results = %d", len(resumed.Results))
	}
	if resumed.Stats.Restored == 0 {
		t.Fatal("nothing restored after interrupt")
	}

	full, err := Execute(context.Background(), Options{Workers: 2}, fanoutRoots(3, 6, nil))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(collect(t, full), collect(t, resumed)) {
		t.Fatal("interrupted+resumed differs from uninterrupted")
	}
}

// TestUndecodablePayloadReruns: a checkpoint entry that fails to decode
// is re-run live instead of failing the campaign.
func TestUndecodablePayloadReruns(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	// Hand-craft a checkpoint with one good and one corrupt payload.
	ck := Checkpoint{
		Version:     checkpointVersion,
		Fingerprint: "test-v1",
		Results: map[string]json.RawMessage{
			"root/0":  json.RawMessage(`{"value":0}`),
			"kid/0/0": json.RawMessage(`"not an object"`),
		},
	}
	data, _ := json.Marshal(&ck)
	if err := os.WriteFile(ckpt, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var ran sync.Map
	out, err := Execute(context.Background(), Options{
		Checkpoint: ckpt, Resume: true, Fingerprint: "test-v1", Decode: decodeInt,
	}, fanoutRoots(1, 2, &ran))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 3 {
		t.Fatalf("results = %d", len(out.Results))
	}
	if _, ok := ran.Load("kid/0/0"); !ok {
		t.Fatal("corrupt unit was not re-run")
	}
	if _, ok := ran.Load("root/0"); ok {
		t.Fatal("good unit was re-run")
	}
}

// TestWorkerUtilizationAndSteals: sanity bounds on the metrics.
func TestWorkerUtilizationAndSteals(t *testing.T) {
	out, err := Execute(context.Background(), Options{Workers: 4}, fanoutRoots(2, 30, nil))
	if err != nil {
		t.Fatal(err)
	}
	s := out.Stats
	if s.Utilization < 0 || s.Utilization > 1.5 {
		t.Fatalf("utilization = %g", s.Utilization)
	}
	if s.WallMS < 0 || s.BusyMS < 0 {
		t.Fatalf("times: %+v", s)
	}
	data, err := s.JSON()
	if err != nil || !json.Valid(data) {
		t.Fatalf("stats JSON: %v", err)
	}
	var buf strings.Builder
	s.Print(&buf)
	if !strings.Contains(buf.String(), "utilization") {
		t.Fatalf("print output:\n%s", buf.String())
	}
}
