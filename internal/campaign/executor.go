package campaign

import (
	"context"
	"encoding/json"
)

// Executor is the remote-dispatch seam of the engine: when one is
// configured, every live (non-restored) unit is offered to it before it
// is executed locally. The unit's JSON result travels back exactly as a
// checkpoint payload would — Options.Decode rebuilds the typed result —
// so a remotely executed campaign stays byte-identical to a local one:
// the checkpoint payload format is the wire format.
//
// Execute's three-way contract:
//
//   - ok=true, err=nil: the unit ran remotely; raw is its marshalled
//     result, to be decoded through Options.Decode. The engine records
//     it exactly as if runShielded had produced it.
//   - ok=false, err=nil: the executor declined the unit (no remote
//     capacity, a lease expired under a dead worker, a previously
//     failing key) — the engine runs the unit locally. Declining is
//     always safe: it is the guarantee that a dead worker can never
//     lose work, only hand it back.
//   - err != nil: the unit failed remotely (or the campaign context was
//     cancelled mid-dispatch). The engine treats this like a local unit
//     error: bounded retry, then recorded as failed.
//
// Execute is called concurrently from engine worker goroutines and may
// block for the full duration of the remote execution; it is invoked
// before the admission Gate is acquired, so a remotely executing unit
// never consumes a local worker slot — that is what turns remote
// workers into extra capacity instead of a different queue for the
// same budget.
type Executor interface {
	Execute(ctx context.Context, u Unit) (raw json.RawMessage, ok bool, err error)
}
