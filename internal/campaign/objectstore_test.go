package campaign

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// newObjectStore spins an in-memory bucket behind httptest and returns
// the Store over it — the "no cloud SDK" fake of the S3-shaped backend.
func newObjectStore(t *testing.T) (ObjectStore, *ObjectHandler) {
	t.Helper()
	h := NewObjectHandler()
	hs := httptest.NewServer(h)
	t.Cleanup(hs.Close)
	return NewHTTPObjectStore(hs.URL), h
}

// TestObjectStoreRoundtrip: the object backend keys checkpoints by
// fingerprint, keeps independent configurations apart, and lists them
// all sorted — the same contract as DirStore, over HTTP.
func TestObjectStoreRoundtrip(t *testing.T) {
	st, h := newObjectStore(t)
	if fps, err := st.List(); err != nil || fps != nil {
		t.Fatalf("empty bucket: %v, %v", fps, err)
	}
	if ck, err := st.Load("cfg-a"); err != nil || ck != nil {
		t.Fatalf("missing object: ck=%v err=%v", ck, err)
	}
	for _, fp := range []string{"cfg-b", "cfg-a"} {
		ck := &Checkpoint{Version: checkpointVersion, Fingerprint: fp, Units: 1,
			Results: map[string]json.RawMessage{"u": json.RawMessage(`{"fp":"` + fp + `"}`)}}
		if err := st.Save(ck); err != nil {
			t.Fatal(err)
		}
	}
	if h.Len() != 2 {
		t.Fatalf("bucket holds %d objects, want 2", h.Len())
	}
	out, err := st.Load("cfg-a")
	if err != nil || out == nil || out.Fingerprint != "cfg-a" {
		t.Fatalf("load cfg-a: %+v, %v", out, err)
	}
	if string(out.Results["u"]) != `{"fp":"cfg-a"}` {
		t.Fatalf("payload %s", out.Results["u"])
	}
	fps, err := st.List()
	if err != nil || !reflect.DeepEqual(fps, []string{"cfg-a", "cfg-b"}) {
		t.Fatalf("list = %v, %v", fps, err)
	}
}

// TestObjectStoreAddressMismatch: an object whose stored fingerprint
// disagrees with its content address is corruption, not a configuration
// change.
func TestObjectStoreAddressMismatch(t *testing.T) {
	st, _ := newObjectStore(t)
	data, _ := json.Marshal(&Checkpoint{Version: checkpointVersion, Fingerprint: "cfg-b"})
	if err := st.API.Put(st.key("cfg-a"), data); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load("cfg-a"); err == nil || !strings.Contains(err.Error(), "addressed by") {
		t.Fatalf("want address-mismatch error, got %v", err)
	}
}

// TestObjectStoreVersionGuard mirrors the file-backed stores: a foreign
// on-wire format refuses to load, and List skips it instead of failing
// the enumeration.
func TestObjectStoreVersionGuard(t *testing.T) {
	st, _ := newObjectStore(t)
	if err := st.API.Put(st.key("cfg-x"), []byte(`{"version":99,"fingerprint":"cfg-x"}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load("cfg-x"); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("want version error, got %v", err)
	}
	good := &Checkpoint{Version: checkpointVersion, Fingerprint: "cfg-ok"}
	if err := st.Save(good); err != nil {
		t.Fatal(err)
	}
	fps, err := st.List()
	if err != nil || !reflect.DeepEqual(fps, []string{"cfg-ok"}) {
		t.Fatalf("list = %v, %v", fps, err)
	}
}

// TestExecuteWithObjectStore: a campaign checkpoints through the object
// backend and a second campaign resumes from it without re-running any
// unit — the shared-bucket flow of a daemon and its workers.
func TestExecuteWithObjectStore(t *testing.T) {
	st, _ := newObjectStore(t)
	type result struct {
		N int `json:"n"`
	}
	unit := func(i int) Unit {
		return Unit{
			Key:   fmt.Sprintf("u/%d", i),
			Group: "g",
			Run:   func(context.Context) (any, error) { return &result{N: i}, nil },
		}
	}
	var roots []Unit
	for i := 0; i < 8; i++ {
		roots = append(roots, unit(i))
	}
	opts := Options{
		Workers:     2,
		Store:       st,
		Fingerprint: "obj-exec",
		Decode: func(key string, raw json.RawMessage) (any, error) {
			var r result
			if err := json.Unmarshal(raw, &r); err != nil {
				return nil, err
			}
			return &r, nil
		},
	}
	out, err := Execute(context.Background(), opts, roots)
	if err != nil || out.Stats.Completed != 8 {
		t.Fatalf("first run: %+v, %v", out.Stats, err)
	}
	opts.Resume = true
	out2, err := Execute(context.Background(), opts, roots)
	if err != nil {
		t.Fatal(err)
	}
	if out2.Stats.Restored != 8 {
		t.Fatalf("resumed run restored %d units, want 8", out2.Stats.Restored)
	}
	for i := 0; i < 8; i++ {
		if out2.Results[fmt.Sprintf("u/%d", i)].(*result).N != i {
			t.Fatalf("restored result %d corrupt", i)
		}
	}
}

// storeContention is the shared last-writer-wins contract check: many
// goroutines concurrently Save the same fingerprint with distinct
// payloads; every concurrent Load must observe one of the saved
// checkpoints in full (no torn reads, no mixed payloads), and the final
// Load must be one writer's complete checkpoint. List stays
// deterministic (sorted) throughout.
func storeContention(t *testing.T, st Store) {
	t.Helper()
	const writers, rounds = 8, 20
	payload := func(w, r int) *Checkpoint {
		tag := fmt.Sprintf(`{"writer":%d,"round":%d}`, w, r)
		return &Checkpoint{
			Version:     checkpointVersion,
			Fingerprint: "contended",
			Units:       w,
			Results: map[string]json.RawMessage{
				"a": json.RawMessage(tag),
				"b": json.RawMessage(tag),
			},
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, writers*2)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if err := st.Save(payload(w, r)); err != nil {
					errs <- err
					return
				}
			}
		}(w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				ck, err := st.Load("contended")
				if err != nil {
					errs <- err
					return
				}
				if ck == nil {
					continue // reader outran the first write
				}
				// Untorn: both payload halves must agree on the writer.
				if string(ck.Results["a"]) != string(ck.Results["b"]) {
					errs <- fmt.Errorf("torn read: a=%s b=%s", ck.Results["a"], ck.Results["b"])
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	ck, err := st.Load("contended")
	if err != nil || ck == nil {
		t.Fatalf("final load: %v, %v", ck, err)
	}
	if string(ck.Results["a"]) != string(ck.Results["b"]) {
		t.Fatalf("final checkpoint torn: a=%s b=%s", ck.Results["a"], ck.Results["b"])
	}
	fps, err := st.List()
	if err != nil || !reflect.DeepEqual(fps, []string{"contended"}) {
		t.Fatalf("list after contention = %v, %v", fps, err)
	}
}

// TestDirStoreContention: concurrent same-fingerprint saves to the
// content-addressed directory are last-writer-wins (atomic rename), and
// readers never see a torn checkpoint.
func TestDirStoreContention(t *testing.T) {
	storeContention(t, DirStore{Dir: t.TempDir()})
}

// TestObjectStoreContention: the same contract over the object backend
// (whole-object replace under the bucket lock).
func TestObjectStoreContention(t *testing.T) {
	st, _ := newObjectStore(t)
	storeContention(t, st)
}
