package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/obs"
)

// GroupStats aggregates the units of one group (one macro, in the
// methodology campaign).
type GroupStats struct {
	// Units completed successfully (restored ones included).
	Units int `json:"units"`
	// Restored counts checkpoint hits among them.
	Restored int `json:"restored"`
	// Failed counts units that exhausted their retries.
	Failed int `json:"failed"`
	// WallMS is the summed execution time of the group's units across
	// all workers (restored units contribute ~0).
	WallMS float64 `json:"wall_ms"`
}

// Stats is the run-metrics snapshot of a campaign.
type Stats struct {
	// Workers is the pool size.
	Workers int `json:"workers"`
	// UnitsTotal counts every unit ever enqueued.
	UnitsTotal int `json:"units_total"`
	// Completed counts successful units, Restored the checkpoint hits
	// among them, Failed the units that exhausted retries.
	Completed int `json:"completed"`
	Restored  int `json:"restored"`
	Failed    int `json:"failed"`
	// Retries counts re-attempts after unit errors or panics.
	Retries int `json:"retries"`
	// Steals counts deque steals by idle workers.
	Steals int `json:"steals"`
	// Checkpoints counts checkpoint writes.
	Checkpoints int `json:"checkpoints"`
	// WallMS is the campaign wall time; BusyMS the summed worker busy
	// time; Utilization is BusyMS / (WallMS × Workers).
	WallMS      float64 `json:"wall_ms"`
	BusyMS      float64 `json:"busy_ms"`
	Utilization float64 `json:"utilization"`
	// Groups holds the per-group aggregates.
	Groups map[string]*GroupStats `json:"groups"`
	// Stages holds the per-methodology-stage observability aggregates
	// (span count, summed wall time, hot-path counters) when the run was
	// executed with an obs aggregator attached; nil otherwise. Stage wall
	// times attribute — they do not partition — the campaign wall clock,
	// because spans may nest (see internal/obs).
	Stages map[string]*obs.StageStats `json:"stages,omitempty"`
}

// JSON serialises the snapshot.
func (s *Stats) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Print renders a human-readable summary.
func (s *Stats) Print(w io.Writer) {
	fmt.Fprintf(w, "campaign: %d workers, %d/%d units ok (%d restored, %d failed), %d retries, %d steals\n",
		s.Workers, s.Completed, s.UnitsTotal, s.Restored, s.Failed, s.Retries, s.Steals)
	fmt.Fprintf(w, "campaign: wall %.0f ms, busy %.0f ms, utilization %.0f%%, %d checkpoint writes\n",
		s.WallMS, s.BusyMS, 100*s.Utilization, s.Checkpoints)
	groups := make([]string, 0, len(s.Groups))
	for g := range s.Groups {
		groups = append(groups, g)
	}
	sort.Strings(groups)
	for _, g := range groups {
		gs := s.Groups[g]
		fmt.Fprintf(w, "campaign:   %-12s %4d units  %8.0f ms", g, gs.Units, gs.WallMS)
		if gs.Restored > 0 {
			fmt.Fprintf(w, "  (%d restored)", gs.Restored)
		}
		if gs.Failed > 0 {
			fmt.Fprintf(w, "  (%d FAILED)", gs.Failed)
		}
		fmt.Fprintln(w)
	}
	if len(s.Stages) == 0 {
		return
	}
	fmt.Fprintln(w, "campaign: per-stage breakdown (wall time attributed, spans may nest):")
	stages := make([]string, 0, len(s.Stages))
	for st := range s.Stages {
		stages = append(stages, st)
	}
	sort.Slice(stages, func(i, j int) bool {
		return s.Stages[stages[i]].WallMS > s.Stages[stages[j]].WallMS
	})
	for _, st := range stages {
		ss := s.Stages[st]
		fmt.Fprintf(w, "campaign:   %-12s %6d spans %10.0f ms", st, ss.Spans, ss.WallMS)
		if n := ss.Counters["newton_iters"]; n > 0 {
			fmt.Fprintf(w, "  %d newton iters", n)
		}
		if n := ss.Counters["sprinkle_draws"]; n > 0 {
			fmt.Fprintf(w, "  %d draws", n)
		}
		if n := ss.Counters["goodspace_dies"]; n > 0 {
			fmt.Fprintf(w, "  %d dies", n)
		}
		if n := ss.Counters["classes_truncated"]; n > 0 {
			fmt.Fprintf(w, "  %d classes truncated (raise -maxclasses for full coverage)", n)
		}
		if n := ss.Counters["rebind_hits"]; n > 0 {
			fmt.Fprintf(w, "  %d rebinds", n)
		}
		if n := ss.Counters["full_rebuilds"]; n > 0 {
			fmt.Fprintf(w, "  %d full rebuilds", n)
		}
		if n := ss.Counters["pattern_reuse_hits"]; n > 0 {
			fmt.Fprintf(w, "  %d pattern reuses", n)
		}
		if n := ss.Counters["units_leased"]; n > 0 {
			fmt.Fprintf(w, "  %d leased", n)
		}
		if n := ss.Counters["remote_results"]; n > 0 {
			fmt.Fprintf(w, "  %d remote results", n)
		}
		if n := ss.Counters["leases_expired"]; n > 0 {
			fmt.Fprintf(w, "  %d leases EXPIRED", n)
		}
		if n := ss.Counters["remote_retries"]; n > 0 {
			fmt.Fprintf(w, "  %d remote retries", n)
		}
		fmt.Fprintln(w)
	}
}
