// Package campaign is the parallel fault-simulation campaign engine: it
// executes a set of independent work units — and the units those units
// fan out into — on a bounded work-stealing worker pool, with per-unit
// panic recovery, bounded retry, periodic JSON checkpointing for
// resumable runs, and a run-metrics snapshot.
//
// The engine is deliberately generic: a Unit is any keyed computation
// returning a JSON-serialisable result, so the package has no dependency
// on the methodology pipeline. internal/core decomposes a methodology
// run into per-macro defect-sprinkle units that fan out into per-fault-
// class analysis units, and merges the keyed results back in canonical
// order — which is what makes parallel output bit-identical to serial
// output regardless of worker count or scheduling order.
package campaign

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Unit is one independent computation of a campaign.
type Unit struct {
	// Key uniquely and stably identifies the unit; it is the checkpoint
	// key and the handle under which the result is returned.
	Key string
	// Group labels the unit for per-group metrics (the per-macro wall
	// times in the methodology campaign).
	Group string
	// Run performs the computation. The result must be JSON-marshalable
	// when checkpointing is enabled.
	Run func(ctx context.Context) (any, error)
	// Fanout, if non-nil, maps the unit's result to follow-up units.
	// It is invoked exactly once per completed unit — including units
	// restored from a checkpoint, so a resumed campaign re-discovers
	// the full unit graph without re-running finished work.
	Fanout func(result any) []Unit

	// retried counts re-attempts while the unit sits in a deque.
	retried int
}

// Options configures a campaign execution.
type Options struct {
	// Workers bounds the worker pool; <= 0 selects runtime.GOMAXPROCS(0).
	Workers int
	// MaxRetries is how many times a failing unit is re-attempted before
	// it is recorded as failed and the campaign degrades around it
	// (default 1 retry).
	MaxRetries int
	// Checkpoint is the path of the JSON checkpoint file ("" disables
	// checkpointing unless Store is set).
	Checkpoint string
	// Store overrides the checkpoint persistence backend. nil selects
	// the single-file FileStore at the Checkpoint path (and disables
	// checkpointing when that is empty too); the job server passes a
	// shared content-addressed DirStore here so every job's checkpoint
	// survives daemon restarts under its own fingerprint.
	Store Store
	// Gate, when non-nil, admits each live unit execution through an
	// external slot budget. Several concurrent campaigns sharing one
	// FairGate interleave unit-granular work fairly instead of
	// oversubscribing the machine.
	Gate Gate
	// Executor, when non-nil, is offered every live unit before local
	// execution (see Executor). Remote execution happens outside the
	// Gate — a unit running on another machine consumes no local slot —
	// and requires Decode, which rebuilds the typed result from the
	// remotely marshalled JSON just as it rebuilds checkpoint payloads.
	Executor Executor
	// Resume loads the checkpoint before executing and skips every unit
	// whose result it already holds.
	Resume bool
	// CheckpointEvery is the number of completed units between persists
	// (default 16). The checkpoint is always written once more when the
	// campaign ends — including on cancellation, so an interrupted run
	// can be resumed.
	CheckpointEvery int
	// Fingerprint identifies the configuration that produced the
	// checkpoint; resuming against a different fingerprint is an error.
	Fingerprint string
	// Decode rebuilds a typed unit result from checkpointed JSON. It is
	// required when Resume is set; a unit whose payload fails to decode
	// is simply re-run.
	Decode func(key string, raw json.RawMessage) (any, error)
	// OnUnitDone, if non-nil, observes each unit completion (restored
	// reports checkpoint hits). Called from worker goroutines.
	OnUnitDone func(key string, restored bool)
	// OnProgress, if non-nil, observes the campaign's live unit counters
	// after every unit resolution (successes and exhausted failures; not
	// retries). Called from worker goroutines; the job server turns
	// these into streamed progress events.
	OnProgress func(p Progress)
}

// Progress is a live snapshot of the campaign's unit counters. Total
// grows as completed units fan out new work, so Completed/Total is a
// lower bound on the fraction done, not an exact one.
type Progress struct {
	Total     int `json:"total"`
	Completed int `json:"completed"`
	Restored  int `json:"restored"`
	Failed    int `json:"failed"`
}

// store resolves the checkpoint backend: the explicit Store, the
// FileStore at the Checkpoint path, or nil (checkpointing disabled).
func (o Options) store() Store {
	if o.Store != nil {
		return o.Store
	}
	if o.Checkpoint != "" {
		return FileStore{Path: o.Checkpoint}
	}
	return nil
}

// storeName names the checkpoint backend in errors.
func (o Options) storeName() string {
	if o.Store == nil && o.Checkpoint != "" {
		return o.Checkpoint
	}
	if s, ok := o.store().(fmt.Stringer); ok {
		return s.String()
	}
	return fmt.Sprintf("%T", o.store())
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) maxRetries() int {
	if o.MaxRetries < 0 {
		return 0
	}
	if o.MaxRetries == 0 {
		return 1
	}
	return o.MaxRetries
}

func (o Options) checkpointEvery() int {
	if o.CheckpointEvery <= 0 {
		return 16
	}
	return o.CheckpointEvery
}

// Outcome is everything a campaign produced.
type Outcome struct {
	// Results maps unit keys to their (typed) results.
	Results map[string]any
	// Failed maps the keys of units that exhausted their retries to the
	// final error message.
	Failed map[string]string
	// Stats is the run-metrics snapshot.
	Stats Stats
}

// Execute runs the campaign to completion (or cancellation) and returns
// the keyed results. On context cancellation the partial Outcome is
// returned together with the context error, after a final checkpoint
// flush — so the caller can resume later.
func Execute(ctx context.Context, opts Options, roots []Unit) (*Outcome, error) {
	e := &engine{
		opts:    opts,
		results: map[string]any{},
		raw:     map[string]json.RawMessage{},
		failed:  map[string]string{},
		seen:    map[string]bool{},
	}
	e.cond = sync.NewCond(&e.mu)
	e.stats.Workers = opts.workers()
	e.stats.Groups = map[string]*GroupStats{}

	if st := opts.store(); opts.Resume && st != nil {
		ck, err := st.Load(opts.Fingerprint)
		if err != nil {
			return nil, err
		}
		if ck != nil {
			if ck.Fingerprint != opts.Fingerprint {
				return nil, fmt.Errorf(
					"campaign: checkpoint %s was produced by a different configuration (fingerprint %q, want %q)",
					opts.storeName(), ck.Fingerprint, opts.Fingerprint)
			}
			e.restored = ck.Results
		}
	}

	n := opts.workers()
	e.deques = make([][]Unit, n)
	e.busy = make([]time.Duration, n)
	for i, u := range roots {
		e.enqueueLocked(i%n, u)
	}

	// Propagate cancellation into the scheduler: workers between units
	// observe e.stopped and drain out.
	stopWatch := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			e.mu.Lock()
			e.stopped = true
			e.mu.Unlock()
			e.cond.Broadcast()
		case <-stopWatch:
		}
	}()

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			e.worker(ctx, id)
		}(i)
	}
	wg.Wait()
	close(stopWatch)

	e.mu.Lock()
	e.stats.WallMS = float64(time.Since(start)) / float64(time.Millisecond)
	var busy time.Duration
	for _, b := range e.busy {
		busy += b
	}
	e.stats.BusyMS = float64(busy) / float64(time.Millisecond)
	if e.stats.WallMS > 0 && n > 0 {
		e.stats.Utilization = e.stats.BusyMS / (e.stats.WallMS * float64(n))
	}
	out := &Outcome{Results: e.results, Failed: e.failed, Stats: e.stats}
	ckErr := e.ckptErr
	e.mu.Unlock()

	// Final flush so interrupted campaigns can resume.
	if opts.store() != nil {
		if err := e.saveCheckpoint(); err != nil && ckErr == nil {
			ckErr = err
		}
		e.mu.Lock()
		out.Stats = e.stats
		e.mu.Unlock()
	}
	if err := ctx.Err(); err != nil {
		return out, err
	}
	if ckErr != nil {
		return out, ckErr
	}
	return out, nil
}
