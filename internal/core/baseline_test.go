package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/faults"
	"repro/internal/signature"
	"repro/internal/spectest"
)

// syntheticRun builds a run with a known mix: 40 % voltage+current,
// 30 % current-only (spec-blind), 20 % spec-visible sub-LSB offset,
// 10 % undetected.
func syntheticRun() *Run {
	mk := func(det Detection, resp *signature.Response, count int) ClassAnalysis {
		return ClassAnalysis{
			Class: faults.Class{Fault: faults.Fault{Kind: faults.Short, Nets: []string{"a", "b"}}, Count: count},
			Resp:  resp,
			Det:   det,
		}
	}
	m := &MacroRun{
		Name: "m", Count: 1, Area: 1, FaultRate: 1,
		Cat: []ClassAnalysis{
			mk(Detection{Missing: true, IVdd: true},
				&signature.Response{Voltage: signature.VSigStuck, MissingCode: true}, 4),
			mk(Detection{IDDQ: true},
				&signature.Response{Voltage: signature.VSigClock}, 3),
			mk(Detection{},
				&signature.Response{Voltage: signature.VSigNone, OffsetV: 5e-3}, 2),
			mk(Detection{},
				&signature.Response{Voltage: signature.VSigNone, OffsetV: 1e-4}, 1),
		},
	}
	return &Run{Macros: []*MacroRun{m}}
}

func TestSpecCoverage(t *testing.T) {
	run := syntheticRun()
	// Spec test sees: the stuck class (4) and the 5 mV offset class (2)
	// = 60 %; it is blind to the IDDQ-only class and the tiny offset.
	got := SpecCoverage(run, false, spectest.DefaultLimits())
	if math.Abs(got-60) > 1e-9 {
		t.Fatalf("SpecCoverage = %g, want 60", got)
	}
	// The simple test sees stuck + IDDQ = 70 %.
	if g := Fig4(run, false); math.Abs(g.Total()-70) > 1e-9 {
		t.Fatalf("simple coverage = %g, want 70", g.Total())
	}
}

func TestCompareBaseline(t *testing.T) {
	run := syntheticRun()
	cmp := CompareBaseline(run, 650e-6, 3.5e-3)
	if cmp.SimpleCoverage <= cmp.SpecCoverage {
		t.Fatalf("on this population the simple test must win: %+v", cmp)
	}
	if cmp.SpecTestSeconds <= cmp.SimpleTestSeconds {
		t.Fatal("spec test must cost more")
	}
}

func TestSpecCoverageEmpty(t *testing.T) {
	if SpecCoverage(&Run{}, false, spectest.DefaultLimits()) != 0 {
		t.Fatal("empty run")
	}
}

func TestTwoPassMagnitudeMapping(t *testing.T) {
	if testing.Short() {
		t.Skip("sprinkles twice")
	}
	cfg := QuickConfig()
	cfg.Defects = 3000
	cfg.MagnitudeDefects = 12000
	cfg.MaxClassesPerMacro = 1 // statistics only
	p := NewPipeline(cfg)
	run, err := p.RunMacro(context.Background(), "ladder", false)
	if err != nil {
		t.Fatal(err)
	}
	if run.MagnitudeDefects != 12000 {
		t.Fatalf("magnitude defects = %d", run.MagnitudeDefects)
	}
	// Bookkeeping: matched magnitude mass equals the summed class
	// counts, and the class catalogue stays bounded by discovery.
	sum := 0
	for _, c := range run.Classes {
		sum += c.Count
	}
	if sum != run.TotalFaults {
		t.Fatalf("class mass %d != TotalFaults %d", sum, run.TotalFaults)
	}
	if run.UnmatchedFaults < 0 {
		t.Fatalf("unmatched = %d", run.UnmatchedFaults)
	}
	if len(run.Classes) > run.DiscoveryFaults {
		t.Fatal("catalogue cannot exceed discovery fault count")
	}
	// Classes sorted by descending magnitude.
	for i := 1; i < len(run.Classes); i++ {
		if run.Classes[i].Count > run.Classes[i-1].Count {
			t.Fatal("classes must be magnitude-sorted")
		}
	}
}
