// External test package: these tests compare the campaign engine's
// merged output against the serial pipeline through the report layer,
// which imports core.
package core_test

import (
	"bytes"
	"context"
	"path/filepath"
	"sync/atomic"
	"testing"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/report"
)

// parallelTestCfg is small enough for CI (~5 s serial) while still
// exercising every macro and several fault classes per macro.
func parallelTestCfg() core.Config {
	cfg := core.QuickConfig()
	cfg.Defects = 1200
	cfg.MCSamples = 5
	cfg.MaxClassesPerMacro = 3
	cfg.SkipNonCat = true
	return cfg
}

// renderRun captures every user-visible artifact of a run: the JSON
// summary plus the rendered per-macro and global reports.
func renderRun(t *testing.T, run *core.Run) []byte {
	t.Helper()
	data, err := report.JSON(run)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.Write(data)
	report.PerMacro(&buf, run)
	report.Global(&buf, "global", run)
	return buf.Bytes()
}

// TestParallelMatchesSerial is the determinism contract: RunParallel is
// byte-identical to Pipeline.Run at the same seed for any worker count.
func TestParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline comparison in -short mode")
	}
	cfg := parallelTestCfg()
	serial, err := core.NewPipeline(cfg).Run(context.Background(), false)
	if err != nil {
		t.Fatal(err)
	}
	want := renderRun(t, serial)

	for _, workers := range []int{1, 4, 9} {
		run, out, err := core.RunParallel(context.Background(), cfg, false,
			campaign.Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := renderRun(t, run); !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: parallel output differs from serial", workers)
		}
		if out.Stats.Failed != 0 || len(out.Failed) != 0 {
			t.Fatalf("workers=%d: failed units %v", workers, out.Failed)
		}
		// One macro unit per macro plus one class unit per analysis.
		if out.Stats.UnitsTotal <= len(core.NewPipeline(cfg).MacroNames()) {
			t.Fatalf("workers=%d: no class fan-out (%d units)", workers, out.Stats.UnitsTotal)
		}
	}
}

// TestCampaignCheckpointResume interrupts a campaign after a few units,
// resumes it from the checkpoint, and requires the merged result to be
// byte-identical to an uninterrupted run (satellite: checkpoint/resume
// correctness on the real pipeline).
func TestCampaignCheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline comparison in -short mode")
	}
	cfg := parallelTestCfg()
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")

	uninterrupted, _, err := core.RunParallel(context.Background(), cfg, false,
		campaign.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := renderRun(t, uninterrupted)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var done atomic.Int32
	_, partial, err := core.RunParallel(ctx, cfg, false, campaign.Options{
		Workers:         2,
		Checkpoint:      ckpt,
		CheckpointEvery: 1,
		OnUnitDone: func(string, bool) {
			if done.Add(1) == 4 {
				cancel()
			}
		},
	})
	if err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if partial == nil || partial.Stats.Completed == 0 {
		t.Fatal("no units completed before cancellation")
	}

	run, out, err := core.RunParallel(context.Background(), cfg, false, campaign.Options{
		Workers:    2,
		Checkpoint: ckpt,
		Resume:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats.Restored == 0 {
		t.Fatal("resume restored nothing from the checkpoint")
	}
	if got := renderRun(t, run); !bytes.Equal(got, want) {
		t.Fatal("interrupted+resumed run differs from uninterrupted run")
	}
}

// TestRunParallelFingerprintGuard: a checkpoint taken under one
// configuration must not silently poison a run under another.
func TestRunParallelFingerprintGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run in -short mode")
	}
	cfg := parallelTestCfg()
	cfg.MaxClassesPerMacro = 1
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	if _, _, err := core.RunParallel(context.Background(), cfg, false,
		campaign.Options{Workers: 2, Checkpoint: ckpt}); err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.Seed++
	if _, _, err := core.RunParallel(context.Background(), other, false,
		campaign.Options{Workers: 2, Checkpoint: ckpt, Resume: true}); err == nil {
		t.Fatal("resume across configs must fail the fingerprint check")
	}
	// The good-space settings shape every detection, so a checkpoint
	// taken under different -mc/-nsigma overrides must refuse to merge
	// exactly like a seed change.
	mcChanged := cfg
	mcChanged.MCSamples++
	if _, _, err := core.RunParallel(context.Background(), mcChanged, false,
		campaign.Options{Workers: 2, Checkpoint: ckpt, Resume: true}); err == nil {
		t.Fatal("resume across MCSamples settings must fail the fingerprint check")
	}
	nsChanged := cfg
	nsChanged.NSigma++
	if _, _, err := core.RunParallel(context.Background(), nsChanged, false,
		campaign.Options{Workers: 2, Checkpoint: ckpt, Resume: true}); err == nil {
		t.Fatal("resume across NSigma settings must fail the fingerprint check")
	}
}
