package core

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestParseUnitKey(t *testing.T) {
	cases := []struct {
		key     string
		macro   string
		index   int
		nonCat  bool
		isClass bool
		wantErr string
	}{
		{key: "macro/comparator", macro: "comparator"},
		{key: "class/ladder/7/cat", macro: "ladder", index: 7, isClass: true},
		{key: "class/biasgen/0/noncat", macro: "biasgen", nonCat: true, isClass: true},
		{key: "macro/", wantErr: "empty macro"},
		{key: "class/ladder/7", wantErr: "malformed"},
		{key: "class/ladder/x/cat", wantErr: "bad class index"},
		{key: "class/ladder/-1/cat", wantErr: "bad class index"},
		{key: "class/ladder/7/maybe", wantErr: "bad variant"},
		{key: "job/whatever", wantErr: "unknown"},
	}
	for _, c := range cases {
		macro, index, nonCat, isClass, err := ParseUnitKey(c.key)
		if c.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("%q: err = %v, want %q", c.key, err, c.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("%q: %v", c.key, err)
			continue
		}
		if macro != c.macro || index != c.index || nonCat != c.nonCat || isClass != c.isClass {
			t.Errorf("%q: got (%q,%d,%v,%v), want (%q,%d,%v,%v)",
				c.key, macro, index, nonCat, isClass, c.macro, c.index, c.nonCat, c.isClass)
		}
	}
}

// TestExecuteUnitByteIdentity is the remote-execution contract: for
// every unit key of a macro's campaign, ExecuteUnit on a FRESH pipeline
// (the worker's, which shares nothing with the daemon but the
// configuration) marshals to exactly the bytes the daemon-side closure
// unit produces. This is what lets a remote worker's result merge
// through the restored-unit path without perturbing the output.
func TestExecuteUnitByteIdentity(t *testing.T) {
	cfg := QuickConfig()
	daemon := NewPipeline(cfg)
	worker := NewPipeline(cfg)
	const macroName = "comparator"

	mu := daemon.macroUnit(macroName, false)
	runA, err := mu.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	runB, err := worker.ExecuteUnit(context.Background(), mu.Key, false)
	if err != nil {
		t.Fatal(err)
	}
	jsonA, _ := json.Marshal(runA)
	jsonB, _ := json.Marshal(runB)
	if string(jsonA) != string(jsonB) {
		t.Fatalf("discovery unit diverges:\n daemon %s\n worker %s", jsonA, jsonB)
	}

	classUnits := mu.Fanout(runA)
	if len(classUnits) == 0 {
		t.Fatal("test premise broken: no class units fanned out")
	}
	if len(classUnits) > 3 {
		classUnits = classUnits[:3] // identity per unit; three keys suffice
	}
	for _, cu := range classUnits {
		caA, err := cu.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		caB, err := worker.ExecuteUnit(context.Background(), cu.Key, false)
		if err != nil {
			t.Fatal(err)
		}
		ja, _ := json.Marshal(caA)
		jb, _ := json.Marshal(caB)
		if string(ja) != string(jb) {
			t.Fatalf("unit %s diverges:\n daemon %s\n worker %s", cu.Key, ja, jb)
		}
		// And the round trip through the wire codec stays typed.
		dec, err := DecodeUnit(cu.Key, jb)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := dec.(*ClassAnalysis); !ok {
			t.Fatalf("decoded %T, want *ClassAnalysis", dec)
		}
	}
}

// TestExecuteUnitDiscoveryCache: many class units of one macro share a
// single discovery — concurrent ExecuteUnit calls single-flight it and
// later calls hit the cache (same *MacroRun).
func TestExecuteUnitDiscoveryCache(t *testing.T) {
	p := NewPipeline(QuickConfig())
	const key = "macro/ladder"
	var wg sync.WaitGroup
	runs := make([]any, 4)
	for i := range runs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := p.ExecuteUnit(context.Background(), key, false)
			if err != nil {
				t.Error(err)
				return
			}
			runs[i] = r
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(runs); i++ {
		if runs[i] != runs[0] {
			t.Fatalf("discovery %d not shared with 0", i)
		}
	}
	again, err := p.ExecuteUnit(context.Background(), key, false)
	if err != nil || again != runs[0] {
		t.Fatalf("cache miss on repeat discovery: %v", err)
	}
}

// TestExecuteUnitBounds: a class index beyond the catalogue is a
// configuration mismatch between daemon and worker — loud, not a panic.
func TestExecuteUnitBounds(t *testing.T) {
	p := NewPipeline(QuickConfig())
	if _, err := p.ExecuteUnit(context.Background(), "class/comparator/9999/cat", false); err == nil ||
		!strings.Contains(err.Error(), "configuration mismatch") {
		t.Fatalf("want configuration-mismatch error, got %v", err)
	}
	if _, err := p.ExecuteUnit(context.Background(), "bogus", false); err == nil {
		t.Fatal("want unknown-key error")
	}
}
