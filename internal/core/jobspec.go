// Job-scoped campaign entry: a JobSpec is the wire form of one campaign
// submission to the job server (or any other embedder). It mirrors the
// CLI flag semantics of cmd/dotest and cmd/campaign exactly — a POSTed
// {"quick":true} resolves to the same Config as `dotest -quick`, and an
// explicit field overrides the quick preset the way flag.Visit re-applies
// explicit flags — so an HTTP submission is byte-identical to the CLI
// run of the same spec.
package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"repro/internal/macros"
)

// JobSpec parameterises one campaign job. The zero value of each field
// means "unset, use the default"; Workers is a scheduling hint and is
// deliberately excluded from the fingerprint — any worker count
// produces bit-identical results.
type JobSpec struct {
	// Quick selects the small QuickConfig preset; explicit fields below
	// override individual preset values.
	Quick bool `json:"quick,omitempty"`
	// Seed drives every Monte Carlo stage (0 = the default 1995).
	Seed int64 `json:"seed,omitempty"`
	// Bits selects the vehicle resolution (0 = the default 8-bit
	// vehicle). Part of the fingerprint — resolved, so 0 and 8 dedup
	// into the same job while any other resolution never does.
	Bits int `json:"bits,omitempty"`
	// Defects is the class-discovery sprinkle size per macro.
	Defects int `json:"defects,omitempty"`
	// MagnitudeDefects is the magnitude-pass sprinkle size.
	MagnitudeDefects int `json:"magnitude_defects,omitempty"`
	// MCSamples is the number of good-space Monte Carlo dies.
	MCSamples int `json:"mc_samples,omitempty"`
	// NSigma is the current-detection threshold multiple.
	NSigma float64 `json:"n_sigma,omitempty"`
	// FloorA is the tester current-measurement floor (A).
	FloorA float64 `json:"floor_a,omitempty"`
	// SkipNonCat disables the non-catastrophic analysis.
	SkipNonCat bool `json:"skip_non_cat,omitempty"`
	// MaxClassesPerMacro caps the per-macro class analyses (0 = all).
	MaxClassesPerMacro int `json:"max_classes_per_macro,omitempty"`
	// DfT selects the design-for-test settings to run: "pre", "post" or
	// "both" ("" = "both", like the CLIs).
	DfT string `json:"dft,omitempty"`
	// Workers is the per-job worker hint (0 = the server's budget). Not
	// part of the fingerprint: parallelism never changes results.
	Workers int `json:"workers,omitempty"`
}

// Validate rejects specs that no CLI invocation could express.
func (s JobSpec) Validate() error {
	switch s.DfT {
	case "", "pre", "post", "both":
	default:
		return fmt.Errorf("core: bad dft %q (want pre, post or both)", s.DfT)
	}
	if s.Seed < 0 || s.Defects < 0 || s.MagnitudeDefects < 0 || s.MCSamples < 0 ||
		s.NSigma < 0 || s.FloorA < 0 || s.MaxClassesPerMacro < 0 || s.Workers < 0 {
		return fmt.Errorf("core: job spec fields must be non-negative")
	}
	if s.Bits != 0 {
		if _, err := macros.NewVehicle(s.Bits); err != nil {
			return err
		}
	}
	return nil
}

// Config resolves the spec to the pipeline configuration, mirroring the
// CLI: the quick preset (or the full-fidelity default) first, then the
// explicitly set fields on top.
func (s JobSpec) Config() Config {
	var cfg Config
	if s.Quick {
		cfg = QuickConfig()
	} else {
		cfg = DefaultConfig()
	}
	if s.Seed != 0 {
		cfg.Seed = s.Seed
	}
	if s.Bits > 0 {
		cfg.Bits = s.Bits
	}
	if s.Defects > 0 {
		cfg.Defects = s.Defects
	}
	if s.MagnitudeDefects > 0 {
		cfg.MagnitudeDefects = s.MagnitudeDefects
	}
	if s.MCSamples > 0 {
		cfg.MCSamples = s.MCSamples
	}
	if s.NSigma > 0 {
		cfg.NSigma = s.NSigma
	}
	if s.FloorA > 0 {
		cfg.FloorA = s.FloorA
	}
	if s.MaxClassesPerMacro > 0 {
		cfg.MaxClassesPerMacro = s.MaxClassesPerMacro
	}
	if s.SkipNonCat {
		cfg.SkipNonCat = true
	}
	return cfg
}

// DfTs lists the design-for-test settings the job runs, in CLI order.
func (s JobSpec) DfTs() []bool {
	switch s.DfT {
	case "pre":
		return []bool{false}
	case "post":
		return []bool{true}
	}
	return []bool{false, true}
}

// DfTLabel names one DfT setting in job results and progress events.
func DfTLabel(dft bool) string {
	if dft {
		return "post"
	}
	return "pre"
}

// jobFingerprintVersion versions the job-level fingerprint encoding.
const jobFingerprintVersion = "job-v1"

// Fingerprint identifies the job's complete configuration: the resolved
// Config plus which DfT settings run. Two specs with the same
// fingerprint produce byte-identical results, so the job server dedups
// concurrent identical submissions into a single run on this key. The
// per-DfT checkpoint fingerprints remain Fingerprint(cfg, dft) — a job
// is one checkpoint per DfT setting.
func (s JobSpec) Fingerprint() string {
	mode := s.DfT
	if mode == "" {
		mode = "both"
	}
	return jobFingerprintVersion + "|" + mode + "|" + Fingerprint(s.Config(), false)
}

// JobID derives the stable job identifier from a job fingerprint.
// Deriving it by hash (rather than a counter) is what makes concurrent
// duplicate submissions collapse: every tenant computing the id of the
// same spec gets the same handle.
func JobID(fingerprint string) string {
	sum := sha256.Sum256([]byte(fingerprint))
	return "j" + hex.EncodeToString(sum[:8])
}
