// Die-sharded good-space compilation. The paper's detection criterion
// needs the multi-dimensional good-signature space — the 3σ envelope of
// the fault-free circuit over process/supply/temperature, 80 Monte
// Carlo dies — before any fault can be classified, which historically
// made it a fully serial prelude to every run. The dies are independent
// by construction (each draws its variation from its own
// StreamSeed(seed, "goodspace", i) RNG stream), so this file spreads
// them over a bounded worker group and merges the per-die responses in
// index order — exactly the slice the serial loop would have produced,
// so signature.Compile sees bit-identical input for any worker count.
//
// Pool ownership rules: every die worker owns a private EnginePool and
// Baselines pair. The per-die variations never repeat, so routing them
// through the pipeline's shared caches would only flood those with
// engines and baselines no later analysis can ever hit; a private pool
// still gives the intra-die reuse that matters (the comparator's
// lo/hi transients share one engine), and it is dropped when the
// compile ends. Within one die, the four chip-composition macros are
// independent circuits; when the worker group has more workers than
// remaining dies the surplus fans out those macro transients
// (partsFor's env.fanout).
package core

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/macros"
	"repro/internal/obs"
	"repro/internal/signature"
	"repro/internal/spice"
)

// goodSpaceWorkers resolves the die-level worker count (see the
// GoodSpaceWorkers field: 0 is automatic).
func (p *Pipeline) goodSpaceWorkers() int {
	if p.GoodSpaceWorkers > 0 {
		return p.GoodSpaceWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// compileGoodSpace runs the good-space Monte Carlo and compiles the
// envelope. It does not touch the pipeline caches — GoodSpace owns the
// cache and the single-flight registry around this call.
func (p *Pipeline) compileGoodSpace(ctx context.Context, dft bool) (*signature.GoodSpace, error) {
	met := &obs.Metrics{}
	sp := p.Obs.Start(obs.StageGoodSpace, "", "", dft, met)
	samples, err := p.goodSamples(ctx, dft, met)
	sp.End()
	if err != nil {
		return nil, err
	}
	return signature.Compile(samples, p.Cfg.NSigma, p.Cfg.FloorA), nil
}

// goodDie simulates Monte Carlo die i under env and returns its
// chip-level fault-free response. The die's span carries a private
// counter block so its deltas attribute only this die's work even when
// dies run concurrently; the block is merged into the stage-level met
// before returning.
func (p *Pipeline) goodDie(ctx context.Context, i int, dft bool, env partsEnv, met *obs.Metrics) (*signature.Response, error) {
	dieMet := met
	if p.Obs != nil {
		dieMet = &obs.Metrics{}
		defer met.Merge(dieMet)
	}
	sp := p.Obs.Start(obs.StageGoodSpaceDie, "", "die"+strconv.Itoa(i), dft, dieMet)
	defer sp.End()
	rng := rand.New(rand.NewSource(StreamSeed(p.Cfg.Seed, "goodspace", strconv.Itoa(i))))
	v := macros.Draw(rng)
	parts, err := p.partsFor(ctx, v, dft, true, dieMet, env)
	if err != nil {
		return nil, err
	}
	dieMet.Add(obs.CtrGoodspaceDies, 1)
	return p.Chipify(parts, "", nil), nil
}

// goodSamples produces the per-die responses in index order. Workers
// claim die indexes from a shared counter — which worker runs which die
// is schedule-dependent, but each die depends only on its index, so the
// index-ordered slice is invariant. Cancelling ctx aborts the group in
// bounded time: the cancellation reaches into the solvers, and every
// worker re-checks the context between dies.
func (p *Pipeline) goodSamples(ctx context.Context, dft bool, met *obs.Metrics) ([]*signature.Response, error) {
	n := p.Cfg.MCSamples
	samples := make([]*signature.Response, n)
	workers := p.goodSpaceWorkers()
	if workers <= 1 {
		// Serial compile. The pool/baseline pair is still private to the
		// compile (not the pipeline's shared caches) — see the package
		// comment's ownership rules.
		env := partsEnv{pool: macros.NewEnginePool(), base: macros.NewBaselines()}
		for i := 0; i < n; i++ {
			r, err := p.goodDie(ctx, i, dft, env, met)
			if err != nil {
				return nil, err
			}
			samples[i] = r
		}
		return samples, nil
	}

	// Surplus workers beyond the die count fan out the four macro
	// transients inside each die instead of idling.
	fanout := 1
	dieWorkers := workers
	if n > 0 && workers > n {
		dieWorkers = n
		fanout = (workers + n - 1) / n
		if fanout > 4 {
			fanout = 4
		}
	}
	gctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var next atomic.Int64
	errs := make([]error, dieWorkers)
	var wg sync.WaitGroup
	for w := 0; w < dieWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			env := partsEnv{pool: macros.NewEnginePool(), base: macros.NewBaselines(), fanout: fanout}
			for {
				i := int(next.Add(1)) - 1
				if i >= n || gctx.Err() != nil {
					return
				}
				r, err := p.goodDie(gctx, i, dft, env, met)
				if err != nil {
					errs[w] = err
					cancel() // abort the group on first failure
					return
				}
				samples[i] = r
			}
		}(w)
	}
	wg.Wait()
	// Prefer a real failure over the secondary cancellations it caused.
	var cancelErr error
	for _, err := range errs {
		switch {
		case err == nil:
		case spice.IsCancelled(err):
			if cancelErr == nil {
				cancelErr = err
			}
		default:
			return nil, err
		}
	}
	if cancelErr != nil {
		return nil, cancelErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return samples, nil
}

// partsFanout simulates the independent chip-composition macros on a
// bounded goroutine group (the env.fanout > 1 arm of partsFor). Results
// land in per-macro slots, so assembly order — and therefore the
// returned map — is independent of scheduling.
func (p *Pipeline) partsFanout(ctx context.Context, ms []macros.Macro, opt macros.RespondOpts, fanout int) (map[string]*signature.Response, error) {
	if fanout > len(ms) {
		fanout = len(ms)
	}
	gctx, cancel := context.WithCancel(ctx)
	defer cancel()
	resps := make([]*signature.Response, len(ms))
	errs := make([]error, len(ms))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < fanout; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(ms) || gctx.Err() != nil {
					return
				}
				resp, err := ms[i].Respond(gctx, nil, opt)
				if err != nil {
					errs[i] = err
					cancel()
					return
				}
				resps[i] = resp
			}
		}()
	}
	wg.Wait()
	for i, m := range ms {
		if err := errs[i]; err != nil && !spice.IsCancelled(err) {
			return nil, fmt.Errorf("core: nominal %s: %w", m.Name(), err)
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err // a cancellation
		}
	}
	parts := make(map[string]*signature.Response, len(ms))
	for i, m := range ms {
		if resps[i] == nil {
			// Skipped because the group was cancelled underneath us.
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return nil, context.Canceled
		}
		parts[m.Name()] = resps[i]
	}
	return parts, nil
}
