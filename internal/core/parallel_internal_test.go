// Internal tests for the campaign glue: the checkpoint fingerprint
// encoding and the mergeRun copy semantics, which need access to
// unexported pipeline internals (the external parallel_test.go compares
// through the report layer instead).
package core

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/campaign"
)

// overrideGoodSpace mirrors what the CLIs' -mc/-nsigma flags do to a
// configuration.
func overrideGoodSpace(cfg Config, mc int, nsigma float64) Config {
	cfg.MCSamples = mc
	cfg.NSigma = nsigma
	return cfg
}

// TestFingerprintGolden pins the canonical fingerprint encoding. If this
// test fails you have changed the checkpoint compatibility surface:
// either restore the encoding or bump fingerprintVersion deliberately
// (orphaning existing checkpoints) and update the strings here.
func TestFingerprintGolden(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		dft  bool
		want string
	}{
		{
			"default", DefaultConfig(), false,
			`core-campaign-v3|{"seed":1995,"bits":8,"defects":25000,"magnitude_defects":250000,"mc_samples":80,"n_sigma":3,"floor_a":0.000002,"skip_non_cat":false,"max_classes_per_macro":0,"dft":false}`,
		},
		{
			"default-dft", DefaultConfig(), true,
			`core-campaign-v3|{"seed":1995,"bits":8,"defects":25000,"magnitude_defects":250000,"mc_samples":80,"n_sigma":3,"floor_a":0.000002,"skip_non_cat":false,"max_classes_per_macro":0,"dft":true}`,
		},
		{
			"quick", QuickConfig(), false,
			`core-campaign-v3|{"seed":1995,"bits":8,"defects":4000,"magnitude_defects":0,"mc_samples":12,"n_sigma":3,"floor_a":0.000002,"skip_non_cat":false,"max_classes_per_macro":25,"dft":false}`,
		},
		{
			// The CLI -mc/-nsigma overrides flow through these two fields;
			// checkpoints taken under different good-space settings must
			// carry distinct fingerprints.
			"quick-mc-nsigma-override", overrideGoodSpace(QuickConfig(), 24, 4), false,
			`core-campaign-v3|{"seed":1995,"bits":8,"defects":4000,"magnitude_defects":0,"mc_samples":24,"n_sigma":4,"floor_a":0.000002,"skip_non_cat":false,"max_classes_per_macro":25,"dft":false}`,
		},
	}
	for _, tc := range cases {
		if got := Fingerprint(tc.cfg, tc.dft); got != tc.want {
			t.Errorf("%s:\n got  %s\n want %s", tc.name, got, tc.want)
		}
	}

	// Every configuration field must flow into the fingerprint: two
	// configs differing in any single field must not collide.
	base := DefaultConfig()
	variants := []Config{}
	for i := 0; i < reflect.TypeOf(base).NumField(); i++ {
		v := base
		f := reflect.ValueOf(&v).Elem().Field(i)
		switch f.Kind() {
		case reflect.Int, reflect.Int64:
			f.SetInt(f.Int() + 1)
		case reflect.Float64:
			f.SetFloat(f.Float() + 1)
		case reflect.Bool:
			f.SetBool(!f.Bool())
		default:
			t.Fatalf("Config field %s has kind %s: extend the fingerprint test",
				reflect.TypeOf(base).Field(i).Name, f.Kind())
		}
		variants = append(variants, v)
	}
	ref := Fingerprint(base, false)
	for i, v := range variants {
		if Fingerprint(v, false) == ref {
			t.Errorf("changing Config.%s does not change the fingerprint",
				reflect.TypeOf(base).Field(i).Name)
		}
	}
	if Fingerprint(base, true) == ref {
		t.Error("dft flag does not change the fingerprint")
	}
}

// TestFingerprintCoversEveryConfigField fails when a field is added to
// Config without a matching entry in fingerprintV3, which would silently
// allow checkpoints to resume across configurations that differ in the
// new field.
func TestFingerprintCoversEveryConfigField(t *testing.T) {
	cfgFields := reflect.TypeOf(Config{}).NumField()
	fpFields := reflect.TypeOf(fingerprintV3{}).NumField()
	if fpFields != cfgFields+1 { // +1: the DfT flag
		t.Fatalf("fingerprintV3 has %d fields for a Config with %d: update the encoding (and bump the version)",
			fpFields, cfgFields)
	}
}

// TestFingerprintResolvesBits pins the resolved-vehicle rule: Bits 0 and
// the explicit default must fingerprint identically (the zero value is
// the 8-bit vehicle, not a distinct campaign), while any other
// resolution must not collide with the default.
func TestFingerprintResolvesBits(t *testing.T) {
	base := DefaultConfig()
	eight := base
	eight.Bits = 8
	if Fingerprint(base, false) != Fingerprint(eight, false) {
		t.Error("Bits 0 and Bits 8 fingerprint differently: the default vehicle must resolve")
	}
	six := base
	six.Bits = 6
	if Fingerprint(six, false) == Fingerprint(base, false) {
		t.Error("a 6-bit campaign shares the 8-bit fingerprint")
	}
}

// mergeTestCfg is the smallest configuration that still produces class
// analyses on every macro.
func mergeTestCfg() Config {
	cfg := QuickConfig()
	cfg.Defects = 300
	cfg.MCSamples = 2
	cfg.MaxClassesPerMacro = 1
	cfg.SkipNonCat = true
	return cfg
}

// TestMergeRunTwice is the regression test for the mergeRun mutation
// bug: merging must not modify the *MacroRun values stored in the
// campaign Outcome (they are checkpointed state), and a second merge of
// the same Outcome must reproduce the first result exactly.
func TestMergeRunTwice(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline run in -short mode")
	}
	cfg := mergeTestCfg()
	p := NewPipeline(cfg)
	run1, out, err := p.RunParallel(context.Background(), false, campaign.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	// RunParallel already performed one merge. The discovery results in
	// the Outcome must still be pristine: no analyses attached, and not
	// aliased by the merged run.
	snapshot, err := json.Marshal(out.Results)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range p.MacroNames() {
		mr := out.Results[keyMacro+name].(*MacroRun)
		if len(mr.Cat) != 0 || len(mr.NonCat) != 0 {
			t.Fatalf("macro %s: merge attached %d cat / %d noncat analyses to the Outcome's discovery result",
				name, len(mr.Cat), len(mr.NonCat))
		}
		for _, merged := range run1.Macros {
			if merged == mr {
				t.Fatalf("macro %s: merged run aliases the Outcome's *MacroRun", name)
			}
		}
	}

	run2, err := p.mergeRun(false, out)
	if err != nil {
		t.Fatal(err)
	}
	run3, err := p.mergeRun(false, out)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(run2, run3) {
		t.Fatal("second merge of the same Outcome differs from the first")
	}
	if !reflect.DeepEqual(run1, run2) {
		t.Fatal("re-merge differs from the run RunParallel produced")
	}
	if after, err := json.Marshal(out.Results); err != nil {
		t.Fatal(err)
	} else if string(after) != string(snapshot) {
		t.Fatal("merging mutated the campaign Outcome's stored results")
	}
}
