package core

import (
	"strings"
	"testing"
)

// TestJobSpecConfigMirrorsCLI: the spec→Config resolution must match
// the CLI flag semantics exactly — that equivalence is what makes an
// HTTP submission byte-identical to the cmd/dotest run of the same
// parameters.
func TestJobSpecConfigMirrorsCLI(t *testing.T) {
	// {"quick":true} == dotest -quick.
	if got := (JobSpec{Quick: true}).Config(); got != QuickConfig() {
		t.Fatalf("quick spec = %+v, want %+v", got, QuickConfig())
	}
	// {} == dotest with default flags.
	if got := (JobSpec{}).Config(); got != DefaultConfig() {
		t.Fatalf("empty spec = %+v, want %+v", got, DefaultConfig())
	}
	// An explicit override survives the quick preset, like flag.Visit
	// re-applies -mc/-nsigma after -quick.
	got := JobSpec{Quick: true, MCSamples: 5, NSigma: 2.5}.Config()
	want := QuickConfig()
	want.MCSamples = 5
	want.NSigma = 2.5
	if got != want {
		t.Fatalf("quick+overrides = %+v, want %+v", got, want)
	}
	// Seed override applies on either base.
	if got := (JobSpec{Quick: true, Seed: 7}).Config().Seed; got != 7 {
		t.Fatalf("seed = %d", got)
	}
}

// TestJobSpecDfTs: the DfT mode expands in CLI order.
func TestJobSpecDfTs(t *testing.T) {
	cases := []struct {
		mode string
		want []bool
	}{
		{"", []bool{false, true}},
		{"both", []bool{false, true}},
		{"pre", []bool{false}},
		{"post", []bool{true}},
	}
	for _, c := range cases {
		got := JobSpec{DfT: c.mode}.DfTs()
		if len(got) != len(c.want) {
			t.Fatalf("mode %q: %v", c.mode, got)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("mode %q: %v, want %v", c.mode, got, c.want)
			}
		}
	}
	if DfTLabel(false) != "pre" || DfTLabel(true) != "post" {
		t.Fatal("DfTLabel mapping")
	}
}

// TestJobSpecValidate: malformed specs are rejected before any work is
// scheduled.
func TestJobSpecValidate(t *testing.T) {
	if err := (JobSpec{DfT: "sideways"}).Validate(); err == nil ||
		!strings.Contains(err.Error(), "dft") {
		t.Fatalf("bad dft: %v", err)
	}
	if err := (JobSpec{Defects: -1}).Validate(); err == nil {
		t.Fatal("negative field accepted")
	}
	if err := (JobSpec{Quick: true, DfT: "pre", Workers: 4}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (JobSpec{Bits: 3}).Validate(); err == nil {
		t.Fatal("out-of-range vehicle resolution accepted")
	}
	if err := (JobSpec{Bits: 6}).Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestJobSpecFingerprint: the job fingerprint keys the dedup — it must
// separate result-changing fields, ignore scheduling hints, and stay
// stable for identical specs.
func TestJobSpecFingerprint(t *testing.T) {
	base := JobSpec{Quick: true, DfT: "pre"}
	if base.Fingerprint() != (JobSpec{Quick: true, DfT: "pre"}).Fingerprint() {
		t.Fatal("identical specs fingerprint differently")
	}
	// Workers is a hint: any worker count is bit-identical, so it must
	// not split the dedup key.
	withWorkers := base
	withWorkers.Workers = 7
	if base.Fingerprint() != withWorkers.Fingerprint() {
		t.Fatal("Workers leaked into the fingerprint")
	}
	// Result-changing fields must split it.
	for name, other := range map[string]JobSpec{
		"seed":  {Quick: true, DfT: "pre", Seed: 7},
		"dft":   {Quick: true, DfT: "both"},
		"mc":    {Quick: true, DfT: "pre", MCSamples: 5},
		"quick": {DfT: "pre"},
		"bits":  {Quick: true, DfT: "pre", Bits: 6},
	} {
		if other.Fingerprint() == base.Fingerprint() {
			t.Fatalf("%s change did not change the fingerprint", name)
		}
	}
	// The id is a stable function of the fingerprint: equal for equal
	// fingerprints (the dedup handle), distinct otherwise.
	if JobID(base.Fingerprint()) != JobID(withWorkers.Fingerprint()) {
		t.Fatal("equal fingerprints produced different job ids")
	}
	if JobID(base.Fingerprint()) == JobID((JobSpec{DfT: "pre"}).Fingerprint()) {
		t.Fatal("different fingerprints produced the same job id")
	}
	// The vehicle resolution is fingerprinted resolved: an explicit
	// default-bits submission dedups onto the unset-bits job, while any
	// other vehicle never does.
	withDefaultBits := base
	withDefaultBits.Bits = 8
	if base.Fingerprint() != withDefaultBits.Fingerprint() {
		t.Fatal("explicit default bits split the dedup key")
	}
}
