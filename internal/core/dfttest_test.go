package core

import (
	"context"
	"testing"

	"repro/internal/faults"
)

// TestDfTBiasShortFlip is the paper's DfT-2 story as a regression test:
// shorts between the PRE-DfT-adjacent bias lines (nearly identical
// voltages) are undetectable; with the re-ordered lines, the defects land
// between n- and p-type lines and become strongly current-detectable.
func TestDfTBiasShortFlip(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several comparator fault simulations")
	}
	cfg := QuickConfig()
	cfg.MCSamples = 15
	p := NewPipeline(cfg)
	analyse := func(nets []string, dft bool) *ClassAnalysis {
		a, err := p.AnalyzeClass(context.Background(), "biasgen", faults.Class{
			Fault: faults.Fault{Kind: faults.Short, Nets: nets, Res: 0.2}, Count: 1,
		}, false, dft)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	// Pre-DfT adjacency: the hard, undetectable classes.
	for _, nets := range [][]string{{"vbn1", "vbn2"}, {"vbp1", "vbp2"}} {
		if a := analyse(nets, false); a.Det.Any() {
			t.Fatalf("pre-DfT short(%v) must be undetectable: %+v", nets, a.Det)
		}
	}
	// Post-DfT adjacency: detectable via IVdd.
	for _, nets := range [][]string{{"vbn1", "vbp1"}, {"vbn2", "vbp2"}} {
		if a := analyse(nets, true); !a.Det.IVdd {
			t.Fatalf("post-DfT short(%v) must be IVdd-detected: %+v", nets, a.Det)
		}
	}
}
