package core

import (
	"repro/internal/faults"
	"repro/internal/signature"
)

// Table1Row is one row of the paper's Table 1: catastrophic faults and
// fault classes per fault mechanism.
type Table1Row struct {
	Kind       faults.Kind
	Faults     int
	FaultsPct  float64
	Classes    int
	ClassesPct float64
}

// Table1 computes the fault/class breakdown by mechanism for a macro run.
func Table1(run *MacroRun) []Table1Row {
	faultCounts := map[faults.Kind]int{}
	classCounts := map[faults.Kind]int{}
	totalFaults := 0
	for _, c := range run.Classes {
		faultCounts[c.Fault.Kind] += c.Count
		classCounts[c.Fault.Kind]++
		totalFaults += c.Count
	}
	var rows []Table1Row
	for _, k := range SortedKinds() {
		r := Table1Row{Kind: k, Faults: faultCounts[k], Classes: classCounts[k]}
		if totalFaults > 0 {
			r.FaultsPct = 100 * float64(r.Faults) / float64(totalFaults)
		}
		if len(run.Classes) > 0 {
			r.ClassesPct = 100 * float64(r.Classes) / float64(len(run.Classes))
		}
		rows = append(rows, r)
	}
	return rows
}

// SigDist is a voltage-signature distribution in percent of faults.
type SigDist map[signature.VoltageSig]float64

// weightedSigDist tallies voltage signatures over analyses, weighted by
// class magnitude.
func weightedSigDist(as []ClassAnalysis) SigDist {
	total := analysedMagnitude(as)
	dist := SigDist{}
	if total == 0 {
		return dist
	}
	for _, a := range as {
		dist[a.Resp.Voltage] += 100 * float64(a.Class.Count) / float64(total)
	}
	return dist
}

// Table2 computes the voltage fault-signature distributions (catastrophic
// and non-catastrophic) for a macro run — the paper's Table 2.
func Table2(run *MacroRun) (cat, nonCat SigDist) {
	return weightedSigDist(run.Cat), weightedSigDist(run.NonCat)
}

// CurrentDist is a current-signature distribution in percent of faults.
// The mechanisms overlap, so rows may sum to more than 100 % (as in the
// paper's Table 3).
type CurrentDist struct {
	IVdd, IDDQ, Iin, None float64
}

// weightedCurrentDist tallies current signatures weighted by magnitude.
func weightedCurrentDist(as []ClassAnalysis) CurrentDist {
	total := analysedMagnitude(as)
	var d CurrentDist
	if total == 0 {
		return d
	}
	for _, a := range as {
		w := 100 * float64(a.Class.Count) / float64(total)
		hit := false
		if a.Det.IVdd {
			d.IVdd += w
			hit = true
		}
		if a.Det.IDDQ {
			d.IDDQ += w
			hit = true
		}
		if a.Det.Iin {
			d.Iin += w
			hit = true
		}
		if !hit {
			d.None += w
		}
	}
	return d
}

// Table3 computes the current fault-signature distributions for a macro
// run — the paper's Table 3.
func Table3(run *MacroRun) (cat, nonCat CurrentDist) {
	return weightedCurrentDist(run.Cat), weightedCurrentDist(run.NonCat)
}

// ComboDist maps each detection combination to its percentage — the
// paper's Fig. 3 grid for the comparator.
type ComboDist map[Detection]float64

// Fig3 computes the detection-combination distribution for a macro run.
func Fig3(run *MacroRun, nonCat bool) ComboDist {
	as := run.Cat
	if nonCat {
		as = run.NonCat
	}
	total := analysedMagnitude(as)
	dist := ComboDist{}
	if total == 0 {
		return dist
	}
	for _, a := range as {
		dist[a.Det] += 100 * float64(a.Class.Count) / float64(total)
	}
	return dist
}

// Fig3Summary distils the headline numbers the paper reads off Fig. 3.
type Fig3Summary struct {
	// MissingCode is the total voltage (missing-code) detection.
	MissingCode float64
	// CurrentAny is the total current detection.
	CurrentAny float64
	// CurrentOnly is detectable by current but not voltage.
	CurrentOnly float64
	// IDDQOnly is detectable only by the clock-generator IDDQ.
	IDDQOnly float64
	// Covered is the union of all mechanisms.
	Covered float64
}

// SummarizeFig3 reduces a combination distribution to headline figures.
func SummarizeFig3(dist ComboDist) Fig3Summary {
	var s Fig3Summary
	for det, pct := range dist {
		if det.Missing {
			s.MissingCode += pct
		}
		if det.Current() {
			s.CurrentAny += pct
		}
		if det.Current() && !det.Missing {
			s.CurrentOnly += pct
		}
		if det.IDDQ && !det.Missing && !det.IVdd && !det.Iin {
			s.IDDQOnly += pct
		}
		if det.Any() {
			s.Covered += pct
		}
	}
	return s
}

// GlobalCoverage is the paper's Fig. 4/5 pie: the fault population split
// by detection mechanism, in percent.
type GlobalCoverage struct {
	VoltageOnly float64
	Both        float64
	CurrentOnly float64
	Undetected  float64
}

// Total returns the overall fault coverage.
func (g GlobalCoverage) Total() float64 { return g.VoltageOnly + g.Both + g.CurrentOnly }

// Fig4 compiles per-macro analyses into the global coverage, scaling each
// macro's fault-signature probabilities by area × instance count ×
// fault rate (equal defect density across the die, as in the paper).
func Fig4(run *Run, nonCat bool) GlobalCoverage {
	var g GlobalCoverage
	var totalWeight float64
	type part struct {
		w   float64
		cov GlobalCoverage
	}
	var parts []part
	for _, m := range run.Macros {
		as := m.Cat
		if nonCat {
			as = m.NonCat
		}
		total := analysedMagnitude(as)
		if total == 0 {
			continue
		}
		var cov GlobalCoverage
		for _, a := range as {
			w := 100 * float64(a.Class.Count) / float64(total)
			switch {
			case a.Det.Voltage() && a.Det.Current():
				cov.Both += w
			case a.Det.Voltage():
				cov.VoltageOnly += w
			case a.Det.Current():
				cov.CurrentOnly += w
			default:
				cov.Undetected += w
			}
		}
		w := m.Weight()
		parts = append(parts, part{w: w, cov: cov})
		totalWeight += w
	}
	if totalWeight == 0 {
		return g
	}
	for _, p := range parts {
		f := p.w / totalWeight
		g.VoltageOnly += f * p.cov.VoltageOnly
		g.Both += f * p.cov.Both
		g.CurrentOnly += f * p.cov.CurrentOnly
		g.Undetected += f * p.cov.Undetected
	}
	return g
}

// MacroCoverage computes one macro's own coverage split.
func MacroCoverage(m *MacroRun, nonCat bool) GlobalCoverage {
	as := m.Cat
	if nonCat {
		as = m.NonCat
	}
	total := analysedMagnitude(as)
	var cov GlobalCoverage
	if total == 0 {
		return cov
	}
	for _, a := range as {
		w := 100 * float64(a.Class.Count) / float64(total)
		switch {
		case a.Det.Voltage() && a.Det.Current():
			cov.Both += w
		case a.Det.Voltage():
			cov.VoltageOnly += w
		case a.Det.Current():
			cov.CurrentOnly += w
		default:
			cov.Undetected += w
		}
	}
	return cov
}

// CurrentDetectability returns the percentage of a macro's faults
// detectable by current measurements (the paper quotes 93.8 % for the
// clock generator and 99.8 % for the reference ladder).
func CurrentDetectability(m *MacroRun, nonCat bool) float64 {
	cov := MacroCoverage(m, nonCat)
	return cov.Both + cov.CurrentOnly
}

// LocalFaultPct returns the percentage of a macro's faults that touch
// only its internal nets (paper: 27.8 % for the comparator).
func LocalFaultPct(m *MacroRun) float64 {
	if m.TotalFaults == 0 {
		return 0
	}
	return 100 * float64(m.LocalFaults) / float64(m.TotalFaults)
}
