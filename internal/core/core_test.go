package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/faults"
	"repro/internal/macros"
	"repro/internal/signature"
)

func TestDetectionPredicates(t *testing.T) {
	d := Detection{}
	if d.Voltage() || d.Current() || d.Any() {
		t.Fatal("empty detection")
	}
	if !(Detection{Missing: true}).Voltage() {
		t.Fatal("missing ⇒ voltage")
	}
	for _, d := range []Detection{{IVdd: true}, {IDDQ: true}, {Iin: true}} {
		if !d.Current() || !d.Any() || d.Voltage() {
			t.Fatalf("current detection predicate: %+v", d)
		}
	}
}

func TestChipifyNominal(t *testing.T) {
	p := NewPipeline(QuickConfig())
	parts, err := p.nominals(context.Background(), false)
	if err != nil {
		t.Fatal(err)
	}
	chip := p.Chipify(parts, "", nil)
	// 22 chip-level measurement keys.
	if len(chip.Currents) != 22 {
		t.Fatalf("chip keys = %d (%v)", len(chip.Currents), chip.Keys())
	}
	// IVdd during sampling is dominated by 256 flipflop leaks (~26 mA).
	ivdd := chip.Currents["ivdd.samp.lo"]
	if ivdd < 10e-3 || ivdd > 100e-3 {
		t.Fatalf("chip ivdd.samp.lo = %g", ivdd)
	}
	// IVdd during amplify is just the class-A biasing (tens of mA).
	amp := chip.Currents["ivdd.amp.lo"]
	if amp >= ivdd {
		t.Fatal("sampling leak must exceed amplify bias")
	}
	// Reference input current ≈ 1 mA (the ladder string).
	if v := chip.Currents["iin.vref.lo"]; v < 0.5e-3 || v > 2e-3 {
		t.Fatalf("iin.vref.lo = %g", v)
	}
	// Digital supply quiescent.
	if v := chip.Currents["iddq.amp.lo"]; math.Abs(v) > 1e-5 {
		t.Fatalf("iddq.amp.lo = %g", v)
	}
}

func TestChipifyFaultySubstitution(t *testing.T) {
	p := NewPipeline(QuickConfig())
	parts, err := p.nominals(context.Background(), false)
	if err != nil {
		t.Fatal(err)
	}
	nomChip := p.Chipify(parts, "", nil)
	// A fake faulty comparator slice drawing 5 mA extra in amplify.
	faulty := &signature.Response{Currents: map[string]float64{}}
	for k, v := range parts["comparator"].Currents {
		faulty.Currents[k] = v
	}
	faulty.Currents["slice.ivdd.amp.lo"] += 5e-3
	chip := p.Chipify(parts, "comparator", faulty)
	d := chip.Currents["ivdd.amp.lo"] - nomChip.Currents["ivdd.amp.lo"]
	if math.Abs(d-5e-3) > 1e-6 {
		t.Fatalf("slice delta propagated = %g, want 5e-3", d)
	}
	// The same delta through the biasgen path is scaled by 256 slices.
	chipB := p.Chipify(parts, "biasgen", faulty)
	dB := chipB.Currents["ivdd.amp.lo"] - nomChip.Currents["ivdd.amp.lo"]
	if math.Abs(dB-256*5e-3) > 1e-6 {
		t.Fatalf("bias delta propagated = %g, want %g", dB, 256*5e-3)
	}
}

func TestGoodSpaceSamplingSpread(t *testing.T) {
	cfg := QuickConfig()
	cfg.MCSamples = 25
	p := NewPipeline(cfg)
	pre, err := p.GoodSpace(context.Background(), false)
	if err != nil {
		t.Fatal(err)
	}
	post, err := p.GoodSpace(context.Background(), true)
	if err != nil {
		t.Fatal(err)
	}
	// The flipflop leakage spread dominates the pre-DfT sampling-phase
	// IVdd sigma; the DfT redesign collapses it.
	preS := pre.Sigma["ivdd.samp.lo"]
	postS := post.Sigma["ivdd.samp.lo"]
	if preS < 2*postS {
		t.Fatalf("pre-DfT sampling sigma %g should dwarf post-DfT %g", preS, postS)
	}
	// Paper scale: the sampling-phase spread is ~15 mA (3σ).
	if tot := 3 * preS; tot < 5e-3 || tot > 40e-3 {
		t.Fatalf("3σ sampling spread = %g, want ~15 mA scale", tot)
	}
	// Caching: same pointer second time.
	again, _ := p.GoodSpace(context.Background(), false)
	if again != pre {
		t.Fatal("good space must be cached")
	}
}

func TestAnalyzeClassEndToEnd(t *testing.T) {
	p := NewPipeline(QuickConfig())
	// A hard comparator fault: output node shorted low → stuck → missing
	// code.
	ca, err := p.AnalyzeClass(context.Background(), "comparator", faults.Class{
		Fault: faults.Fault{Kind: faults.Short, Nets: []string{"o1", "vss"}, Res: 0.2},
		Count: 3,
	}, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if !ca.Det.Missing {
		t.Fatalf("o1-vss short must be voltage-detected: %+v resp=%v", ca.Det, ca.Resp.Voltage)
	}
	// A ladder cross-row short: current-detected.
	lc, err := p.AnalyzeClass(context.Background(), "ladder", faults.Class{
		Fault: faults.Fault{Kind: faults.Short, Nets: []string{"t096", "t128"}, Res: 0.2},
		Count: 1,
	}, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if !lc.Det.Iin {
		t.Fatalf("cross-row ladder short must be Iinput-detected: %+v", lc.Det)
	}
	// The pre-DfT hard case: similar-bias short — neither mechanism.
	bc, err := p.AnalyzeClass(context.Background(), "biasgen", faults.Class{
		Fault: faults.Fault{Kind: faults.Short, Nets: []string{"vbn1", "vbn2"}, Res: 0.2},
		Count: 1,
	}, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if bc.Det.Missing {
		t.Fatalf("common-mode bias short must not be voltage-detected: %+v", bc.Det)
	}
}

func TestRunMacroQuickComparator(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline run is seconds-long")
	}
	cfg := QuickConfig()
	cfg.MaxClassesPerMacro = 8
	p := NewPipeline(cfg)
	run, err := p.RunMacro(context.Background(), "comparator", false)
	if err != nil {
		t.Fatal(err)
	}
	if run.DiscoveryFaults == 0 || len(run.Classes) == 0 {
		t.Fatalf("no faults found: %+v", run)
	}
	if len(run.Cat) == 0 || len(run.Cat) > 8 {
		t.Fatalf("analysed classes = %d", len(run.Cat))
	}
	// Shorts must dominate the fault population (paper: > 95 %).
	rows := Table1(run)
	if rows[0].Kind != faults.Short {
		t.Fatal("first Table 1 row must be Short")
	}
	if rows[0].FaultsPct < 50 {
		t.Fatalf("shorts = %.1f%% of faults, want dominant", rows[0].FaultsPct)
	}
	// Weight and locality are populated.
	if run.Weight() <= 0 {
		t.Fatal("zero weight")
	}
	if pct := LocalFaultPct(run); pct <= 0 || pct >= 100 {
		t.Fatalf("local fault pct = %g", pct)
	}
}

func TestExperimentHelpers(t *testing.T) {
	// Synthetic run exercising the table/figure arithmetic.
	mk := func(det Detection, sig signature.VoltageSig, count int) ClassAnalysis {
		return ClassAnalysis{
			Class: faults.Class{Fault: faults.Fault{Kind: faults.Short, Nets: []string{"a", "b"}}, Count: count},
			Resp:  &signature.Response{Voltage: sig},
			Det:   det,
		}
	}
	m := &MacroRun{
		Name: "synthetic", Count: 1, Area: 100, FaultRate: 0.1,
		Classes: []faults.Class{
			{Fault: faults.Fault{Kind: faults.Short, Nets: []string{"a", "b"}}, Count: 6},
			{Fault: faults.Fault{Kind: faults.Open, Nets: []string{"c"}}, Count: 4},
		},
		TotalFaults: 10,
		Cat: []ClassAnalysis{
			mk(Detection{Missing: true, IVdd: true}, signature.VSigStuck, 5),
			mk(Detection{IDDQ: true}, signature.VSigClock, 3),
			mk(Detection{}, signature.VSigNone, 2),
		},
	}
	cat, _ := Table2(m)
	if math.Abs(cat[signature.VSigStuck]-50) > 1e-9 {
		t.Fatalf("Table2 stuck = %g", cat[signature.VSigStuck])
	}
	cd, _ := Table3(m)
	if math.Abs(cd.IVdd-50) > 1e-9 || math.Abs(cd.IDDQ-30) > 1e-9 || math.Abs(cd.None-20) > 1e-9 {
		t.Fatalf("Table3 = %+v", cd)
	}
	dist := Fig3(m, false)
	s := SummarizeFig3(dist)
	if math.Abs(s.MissingCode-50) > 1e-9 || math.Abs(s.CurrentOnly-30) > 1e-9 ||
		math.Abs(s.IDDQOnly-30) > 1e-9 || math.Abs(s.Covered-80) > 1e-9 {
		t.Fatalf("Fig3 summary = %+v", s)
	}
	cov := MacroCoverage(m, false)
	if math.Abs(cov.Total()-80) > 1e-9 || math.Abs(cov.Undetected-20) > 1e-9 {
		t.Fatalf("coverage = %+v", cov)
	}
	if math.Abs(CurrentDetectability(m, false)-80) > 1e-9 {
		t.Fatal("current detectability")
	}
	run := &Run{Macros: []*MacroRun{m}}
	g := Fig4(run, false)
	if math.Abs(g.Total()-80) > 1e-9 {
		t.Fatalf("Fig4 = %+v", g)
	}
	// Table1 percentages.
	rows := Table1(m)
	var shortRow, openRow Table1Row
	for _, r := range rows {
		switch r.Kind {
		case faults.Short:
			shortRow = r
		case faults.Open:
			openRow = r
		}
	}
	if shortRow.Faults != 6 || math.Abs(shortRow.FaultsPct-60) > 1e-9 {
		t.Fatalf("short row = %+v", shortRow)
	}
	if openRow.Classes != 1 || math.Abs(openRow.ClassesPct-50) > 1e-9 {
		t.Fatalf("open row = %+v", openRow)
	}
}

func TestQuickConfigBounds(t *testing.T) {
	cfg := QuickConfig()
	if cfg.Defects <= 0 || cfg.MCSamples <= 0 || cfg.NSigma != 3 {
		t.Fatalf("bad quick config: %+v", cfg)
	}
	d := DefaultConfig()
	if d.Defects != 25000 {
		t.Fatalf("paper's discovery sprinkle is 25k, got %d", d.Defects)
	}
}

func TestUnknownMacro(t *testing.T) {
	p := NewPipeline(QuickConfig())
	if _, err := p.RunMacro(context.Background(), "nope", false); err == nil {
		t.Fatal("unknown macro must error")
	}
	names := p.MacroNames()
	if len(names) != 5 {
		t.Fatalf("macros = %v", names)
	}
	_ = macros.Nominal()
}

// TestPipelineDeterminism: identical configurations reproduce identical
// verdicts (every Monte Carlo stage is seeded).
func TestPipelineDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the pipeline twice")
	}
	cfg := QuickConfig()
	cfg.MaxClassesPerMacro = 6
	runOne := func() *MacroRun {
		p := NewPipeline(cfg)
		run, err := p.RunMacro(context.Background(), "ladder", false)
		if err != nil {
			t.Fatal(err)
		}
		return run
	}
	a, b := runOne(), runOne()
	if len(a.Cat) != len(b.Cat) || a.TotalFaults != b.TotalFaults {
		t.Fatalf("nondeterministic stats: %d/%d vs %d/%d",
			len(a.Cat), a.TotalFaults, len(b.Cat), b.TotalFaults)
	}
	for i := range a.Cat {
		if a.Cat[i].Class.Fault.Key() != b.Cat[i].Class.Fault.Key() {
			t.Fatalf("class order differs at %d", i)
		}
		if a.Cat[i].Det != b.Cat[i].Det {
			t.Fatalf("verdict differs for %s", a.Cat[i].Class.Fault)
		}
	}
}
