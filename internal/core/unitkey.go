// Remote unit execution: a campaign unit is fully identified by its
// key plus the pipeline configuration, so a worker process that holds
// only (JobSpec, DfT setting, unit key) can reproduce the exact
// computation the daemon's closure-based Unit would have run. Class
// units reference their class by index into the macro's collapsed
// catalogue; the catalogue itself is deterministic (per-stage RNG
// streams), so the worker re-derives it locally — once per macro, via a
// single-flight cache — and byte-identity with local execution follows
// from the same determinism the checkpoint/resume path already relies
// on.
package core

import (
	"context"
	"fmt"
	"strconv"
	"strings"
)

// ParseUnitKey splits a campaign unit key into its components: the
// macro name, and — for class units — the class index and fault-model
// variant. isClass is false for discovery (macro/...) units.
func ParseUnitKey(key string) (macro string, index int, nonCat, isClass bool, err error) {
	switch {
	case strings.HasPrefix(key, keyMacro):
		macro = strings.TrimPrefix(key, keyMacro)
		if macro == "" {
			return "", 0, false, false, fmt.Errorf("core: empty macro in unit key %q", key)
		}
		return macro, 0, false, false, nil
	case strings.HasPrefix(key, keyClass):
		rest := strings.TrimPrefix(key, keyClass)
		parts := strings.Split(rest, "/")
		if len(parts) != 3 {
			return "", 0, false, false, fmt.Errorf("core: malformed class unit key %q", key)
		}
		idx, cErr := strconv.Atoi(parts[1])
		if cErr != nil || idx < 0 {
			return "", 0, false, false, fmt.Errorf("core: bad class index in unit key %q", key)
		}
		switch parts[2] {
		case "cat":
		case "noncat":
			nonCat = true
		default:
			return "", 0, false, false, fmt.Errorf("core: bad variant in unit key %q", key)
		}
		return parts[0], idx, nonCat, true, nil
	}
	return "", 0, false, false, fmt.Errorf("core: unknown campaign unit key %q", key)
}

// discoverCall is one in-flight class discovery, single-flighted per
// (macro, dft) so a worker leasing many classes of one macro pays the
// sprinkle exactly once.
type discoverCall struct {
	done chan struct{}
	run  *MacroRun
	err  error
}

// discoverCached runs (or joins, or serves from cache) the class
// discovery of one macro. The cached *MacroRun is shared — callers must
// treat it as read-only, which ExecuteUnit does (it marshals it, or
// indexes its class catalogue).
func (p *Pipeline) discoverCached(ctx context.Context, macroName string, dft bool) (*MacroRun, error) {
	key := DfTLabel(dft) + "/" + macroName
	for {
		p.mu.Lock()
		if run, ok := p.discovered[key]; ok {
			p.mu.Unlock()
			return run, nil
		}
		if c, ok := p.discoverCalls[key]; ok {
			p.mu.Unlock()
			select {
			case <-c.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if c.err == nil {
				return c.run, nil
			}
			if ctx.Err() == nil {
				// The discovering caller failed or was cancelled; we are
				// alive, so loop and take over the discovery ourselves.
				continue
			}
			return nil, c.err
		}
		c := &discoverCall{done: make(chan struct{})}
		p.discoverCalls[key] = c
		p.mu.Unlock()

		c.run, c.err = p.DiscoverClasses(ctx, macroName, dft)
		p.mu.Lock()
		if c.err == nil {
			p.discovered[key] = c.run
		}
		delete(p.discoverCalls, key)
		p.mu.Unlock()
		close(c.done)
		return c.run, c.err
	}
}

// ExecuteUnit executes one campaign unit identified by its key alone —
// the remote-worker entry point. A discovery (macro/...) unit runs
// DiscoverClasses; a class unit resolves its class by index from the
// (cached) discovery of its macro and runs AnalyzeClass. The returned
// value marshals to exactly the bytes the daemon-side closure unit
// would have checkpointed: the checkpoint payload format is the wire
// format.
func (p *Pipeline) ExecuteUnit(ctx context.Context, key string, dft bool) (any, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	macroName, index, nonCat, isClass, err := ParseUnitKey(key)
	if err != nil {
		return nil, err
	}
	if !isClass {
		return p.discoverCached(ctx, macroName, dft)
	}
	run, err := p.discoverCached(ctx, macroName, dft)
	if err != nil {
		return nil, err
	}
	if index >= len(run.Classes) {
		return nil, fmt.Errorf("core: unit %s indexes class %d of %d — configuration mismatch with the submitting daemon",
			key, index, len(run.Classes))
	}
	return p.AnalyzeClass(ctx, macroName, run.Classes[index], nonCat, dft)
}

// DecodeUnit rebuilds a typed unit result from its marshalled JSON —
// the exported face of the checkpoint/wire codec, for embedders (the
// job server, the remote worker) that move unit results between
// processes.
func DecodeUnit(key string, raw []byte) (any, error) {
	return decodeUnit(key, raw)
}
