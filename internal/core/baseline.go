package core

import "repro/internal/spectest"

// SpecCoverage computes the fault coverage of the specification-oriented
// baseline test over the same (area-scaled) fault population as Fig4 —
// the comparison behind the paper's claim that the defect-oriented simple
// test achieves higher coverage at lower cost than functional testing.
func SpecCoverage(run *Run, nonCat bool, lim spectest.Limits) float64 {
	var det, total float64
	for _, m := range run.Macros {
		as := m.Cat
		if nonCat {
			as = m.NonCat
		}
		mag := analysedMagnitude(as)
		if mag == 0 {
			continue
		}
		w := m.Weight()
		for _, a := range as {
			share := w * float64(a.Class.Count) / float64(mag)
			total += share
			if spectest.Detects(a.Resp, lim) {
				det += share
			}
		}
	}
	if total == 0 {
		return 0
	}
	return 100 * det / total
}

// BaselineComparison bundles the coverage/cost comparison between the
// defect-oriented simple test and the specification-oriented baseline.
type BaselineComparison struct {
	// SimpleCoverage and SpecCoverage are fault-coverage percentages.
	SimpleCoverage, SpecCoverage float64
	// SimpleTestSeconds and SpecTestSeconds are tester times.
	SimpleTestSeconds, SpecTestSeconds float64
}

// CompareBaseline evaluates both tests on one run.
func CompareBaseline(run *Run, simpleSeconds, specSeconds float64) BaselineComparison {
	return BaselineComparison{
		SimpleCoverage:    Fig4(run, false).Total(),
		SpecCoverage:      SpecCoverage(run, false, spectest.DefaultLimits()),
		SimpleTestSeconds: simpleSeconds,
		SpecTestSeconds:   specSeconds,
	}
}
