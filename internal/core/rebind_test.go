package core

import (
	"context"
	"testing"

	"repro/internal/faults"
	"repro/internal/obs"
)

// sumCounter folds one counter across every stage of an aggregator
// snapshot (checkout counters land in the inject stage, solver counters
// in faultsim; pipeline-level assertions only care about totals).
func sumCounter(agg *obs.Agg, c obs.Counter) int64 {
	var n int64
	for _, st := range agg.Snapshot() {
		n += st.Counters[c.Name()]
	}
	return n
}

// TestRebindCounters pins the compile-once/revalue-many observability
// contract at the pipeline level: class analyses of conductance-only
// faults are served by pooled engines revalued in place (rebind_hits
// dominating full_rebuilds, compiled sparse patterns retained), while a
// topology-changing fault provably falls back to the full-build path.
func TestRebindCounters(t *testing.T) {
	agg := obs.NewAgg()
	p := NewPipeline(QuickConfig())
	p.Obs = obs.New(agg)
	ctx := context.Background()

	// Two analyses of a conductance-only class: the first builds (and
	// pools) engines, the second is served by rebind.
	cls := faults.Class{Fault: faults.Fault{
		Kind: faults.Short, Nets: []string{"o1", "vss"}, Res: 0.2}, Count: 1}
	for i := 0; i < 2; i++ {
		if _, err := p.AnalyzeClass(ctx, "comparator", cls, false, false); err != nil {
			t.Fatal(err)
		}
	}
	rebinds := sumCounter(agg, obs.CtrRebindHits)
	rebuilds := sumCounter(agg, obs.CtrFullRebuilds)
	if rebinds == 0 {
		t.Fatal("no rebind_hits on a repeated conductance-only class analysis")
	}
	if rebuilds == 0 {
		t.Fatal("the cold pool must count its first builds as full_rebuilds")
	}
	if rebinds <= rebuilds {
		t.Fatalf("rebind_hits (%d) must dominate full_rebuilds (%d) on a warm pool",
			rebinds, rebuilds)
	}
	if sumCounter(agg, obs.CtrPatternReuse) == 0 {
		t.Fatal("rebind hits must retain compiled sparse patterns (pattern_reuse_hits = 0)")
	}

	// A topology-changing fault (an open splits a node) must take the
	// full-build path every time — full_rebuilds grows on each repeat,
	// and the pool serves it no rebinds.
	open := faults.Class{Fault: faults.Fault{
		Kind: faults.Open, Nets: []string{"o1"},
		FarTerminals: []faults.Terminal{{Device: "m1", Net: "o1"}}}, Count: 1}
	if _, err := p.AnalyzeClass(ctx, "comparator", open, false, false); err != nil {
		t.Fatal(err)
	}
	mid := sumCounter(agg, obs.CtrFullRebuilds)
	if mid <= rebuilds {
		t.Fatalf("topology-changing class did not count full rebuilds (%d -> %d)",
			rebuilds, mid)
	}
	if _, err := p.AnalyzeClass(ctx, "comparator", open, false, false); err != nil {
		t.Fatal(err)
	}
	if after := sumCounter(agg, obs.CtrFullRebuilds); after <= mid {
		t.Fatalf("repeated topology-changing class was served from the pool (%d -> %d)",
			mid, after)
	}
}
