// Parallel campaign execution of the methodology: the run is decomposed
// into independent units — one defect-sprinkle unit per macro, fanning
// out into one unit per analysed fault class — executed on the
// work-stealing pool of internal/campaign and merged back in canonical
// pipeline order. Because every Monte Carlo stage draws from its own
// (Seed, macro, pass) RNG stream and the class analyses are themselves
// deterministic, the merged result is bit-identical to the serial
// Pipeline.Run at the same seed, for any worker count and any schedule.
package core

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/campaign"
	"repro/internal/spice"
)

// Unit-key prefixes of the methodology campaign.
const (
	keyMacro = "macro/" // + macro name → *MacroRun (discovery half)
	keyClass = "class/" // + macro/index/variant → *ClassAnalysis
)

func classKey(macroName string, t AnalysisTarget) string {
	variant := "cat"
	if t.NonCat {
		variant = "noncat"
	}
	return keyClass + macroName + "/" + strconv.Itoa(t.Index) + "/" + variant
}

// fingerprintV3 is the explicit wire form of the checkpoint fingerprint.
// Every Config field is serialised under a stable key in this struct's
// declaration order, so renaming or reordering Config fields cannot
// silently change the fingerprint (and orphan valid checkpoints) the way
// the old %+v formatting could. Adding a Config field that affects
// results requires a deliberate edit here plus a version bump of
// fingerprintVersion; TestFingerprintGolden pins the encoding.
type fingerprintV3 struct {
	Seed               int64   `json:"seed"`
	Bits               int     `json:"bits"`
	Defects            int     `json:"defects"`
	MagnitudeDefects   int     `json:"magnitude_defects"`
	MCSamples          int     `json:"mc_samples"`
	NSigma             float64 `json:"n_sigma"`
	FloorA             float64 `json:"floor_a"`
	SkipNonCat         bool    `json:"skip_non_cat"`
	MaxClassesPerMacro int     `json:"max_classes_per_macro"`
	DfT                bool    `json:"dft"`
}

const fingerprintVersion = "core-campaign-v3"

// Fingerprint identifies the configuration of a campaign checkpoint: a
// checkpoint written under one fingerprint cannot resume a run with a
// different configuration. The string is a canonical versioned JSON
// encoding of the configuration (see fingerprintV3). The vehicle is
// fingerprinted resolved (Bits 0 and 8 are the same campaign), so a
// 6-bit and an 8-bit submission can never share a checkpoint.
func Fingerprint(cfg Config, dft bool) string {
	data, err := json.Marshal(fingerprintV3{
		Seed:               cfg.Seed,
		Bits:               cfg.Vehicle().Bits,
		Defects:            cfg.Defects,
		MagnitudeDefects:   cfg.MagnitudeDefects,
		MCSamples:          cfg.MCSamples,
		NSigma:             cfg.NSigma,
		FloorA:             cfg.FloorA,
		SkipNonCat:         cfg.SkipNonCat,
		MaxClassesPerMacro: cfg.MaxClassesPerMacro,
		DfT:                dft,
	})
	if err != nil {
		panic(fmt.Sprintf("core: fingerprint encoding: %v", err)) // unreachable: fixed scalar struct
	}
	return fingerprintVersion + "|" + string(data)
}

// decodeUnit rebuilds a typed unit result from checkpointed JSON.
func decodeUnit(key string, raw json.RawMessage) (any, error) {
	switch {
	case strings.HasPrefix(key, keyMacro):
		var mr MacroRun
		if err := json.Unmarshal(raw, &mr); err != nil {
			return nil, err
		}
		return &mr, nil
	case strings.HasPrefix(key, keyClass):
		var ca ClassAnalysis
		if err := json.Unmarshal(raw, &ca); err != nil {
			return nil, err
		}
		return &ca, nil
	}
	return nil, fmt.Errorf("core: unknown campaign unit key %q", key)
}

// macroUnit builds the discovery unit of one macro; its fanout generates
// the per-class analysis units.
func (p *Pipeline) macroUnit(macroName string, dft bool) campaign.Unit {
	return campaign.Unit{
		Key:   keyMacro + macroName,
		Group: macroName,
		Run: func(ctx context.Context) (any, error) {
			return p.DiscoverClasses(ctx, macroName, dft)
		},
		Fanout: func(result any) []campaign.Unit {
			run := result.(*MacroRun)
			targets := p.analysisTargets(run)
			units := make([]campaign.Unit, 0, len(targets))
			for _, t := range targets {
				c := run.Classes[t.Index]
				nonCat := t.NonCat
				units = append(units, campaign.Unit{
					Key:   classKey(macroName, t),
					Group: macroName,
					Run: func(ctx context.Context) (any, error) {
						return p.AnalyzeClass(ctx, macroName, c, nonCat, dft)
					},
				})
			}
			return units
		},
	}
}

// RunParallel executes the whole methodology over every macro for one
// DfT setting on the campaign engine. The merged Run is bit-identical to
// the serial Run(dft) at the same configuration; a fault class whose
// unit failed (after retries) is dropped from the analyses — degrading
// the coverage report — instead of aborting the campaign. The Outcome
// carries the run metrics; it is non-nil whenever a campaign was
// started, including on cancellation.
func (p *Pipeline) RunParallel(ctx context.Context, dft bool, opts campaign.Options) (*Run, *campaign.Outcome, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// The good-space Monte Carlo inherits the campaign's worker count
	// when no explicit die-level bound was set: the campaign workers sit
	// idle in the sprinkle barrier anyway while the good space compiles,
	// so the same parallelism budget applies.
	if p.GoodSpaceWorkers == 0 {
		if opts.Workers > 0 {
			p.GoodSpaceWorkers = opts.Workers
		} else {
			p.GoodSpaceWorkers = runtime.GOMAXPROCS(0)
		}
	}
	// Overlap the good-space compile with the campaign's defect-sprinkle
	// front half: the class-analysis units join the in-flight compile via
	// GoodSpace's single-flight registry the moment they need it. A real
	// compile failure (not a cancellation) dooms every class unit, so it
	// cancels the campaign instead of letting the units fail one by one.
	cctx, cancelCampaign := context.WithCancel(ctx)
	defer cancelCampaign()
	goodDone := make(chan error, 1)
	go func() {
		_, err := p.GoodSpace(cctx, dft)
		if err != nil && cctx.Err() == nil && !spice.IsCancelled(err) {
			cancelCampaign()
		}
		goodDone <- err
	}()
	// The nominal responses are shared by every analysis unit: compile
	// them up front, once, on the caller's goroutine.
	if _, err := p.nominals(ctx, dft); err != nil {
		cancelCampaign()
		<-goodDone
		return nil, nil, err
	}
	if opts.Fingerprint == "" {
		opts.Fingerprint = Fingerprint(p.Cfg, dft)
	}
	if opts.Decode == nil {
		opts.Decode = decodeUnit
	}
	roots := make([]campaign.Unit, 0, len(p.all))
	for _, name := range p.MacroNames() {
		roots = append(roots, p.macroUnit(name, dft))
	}
	out, err := campaign.Execute(cctx, opts, roots)
	if err != nil {
		cancelCampaign() // release the good-space goroutine before joining it
	}
	gerr := <-goodDone
	if out != nil {
		// Fold the observability aggregate (when a snapshotting sink is
		// attached) into the run metrics — including on cancellation, so
		// an interrupted run still reports where its time went. The join
		// above guarantees the goodspace spans are in the aggregate.
		out.Stats.Stages = p.Obs.Stages()
	}
	if err != nil {
		// When the campaign died because the good-space compile failed,
		// the compile error is the root cause; surface it instead of the
		// derived campaign cancellation.
		if gerr != nil && ctx.Err() == nil && !spice.IsCancelled(gerr) {
			return nil, out, gerr
		}
		return nil, out, err
	}
	// A cancellation racing the engine's final checkpoint flush must not
	// merge the partial outcome into a Run that looks complete: surface
	// the context error, keeping the (resumable) Outcome.
	if cerr := ctx.Err(); cerr != nil {
		return nil, out, cerr
	}
	if gerr != nil {
		return nil, out, gerr
	}
	run, err := p.mergeRun(dft, out)
	return run, out, err
}

// RunParallel is the package-level convenience entry point: one fresh
// pipeline, one DfT setting, executed on the campaign engine.
func RunParallel(ctx context.Context, cfg Config, dft bool, opts campaign.Options) (*Run, *campaign.Outcome, error) {
	return NewPipeline(cfg).RunParallel(ctx, dft, opts)
}

// mergeRun reassembles the campaign's keyed results into a Run in
// canonical pipeline order: macros in pipeline order, class analyses in
// descending-magnitude class order — exactly the serial traversal.
func (p *Pipeline) mergeRun(dft bool, out *campaign.Outcome) (*Run, error) {
	// The good space was compiled (and cached) before the campaign ran;
	// this lookup is a cache hit, so a background context is fine.
	good, err := p.GoodSpace(context.Background(), dft)
	if err != nil {
		return nil, err
	}
	run := &Run{Cfg: p.Cfg, DfT: dft, Good: good}
	for _, name := range p.MacroNames() {
		v, ok := out.Results[keyMacro+name]
		if !ok {
			// A lost sprinkle poisons every downstream number of the
			// macro; unlike a single class this cannot degrade gracefully.
			return nil, fmt.Errorf("core: campaign lost macro %s: %s",
				name, out.Failed[keyMacro+name])
		}
		// Merge into a copy: the *MacroRun in out.Results is checkpointed
		// campaign state, and nilling its analyses in place would corrupt
		// the Outcome for any second merge or stats pass over it.
		mr := *v.(*MacroRun)
		mr.Cat, mr.NonCat = nil, nil
		for _, t := range p.analysisTargets(&mr) {
			cv, ok := out.Results[classKey(name, t)]
			if !ok {
				continue // failed unit: degrade coverage, keep going
			}
			ca := cv.(*ClassAnalysis)
			if t.NonCat {
				mr.NonCat = append(mr.NonCat, *ca)
			} else {
				mr.Cat = append(mr.Cat, *ca)
			}
		}
		run.Macros = append(run.Macros, &mr)
	}
	return run, nil
}
