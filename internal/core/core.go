// Package core is the primary contribution of the reproduction: the
// defect-oriented test methodology for complex mixed-signal circuits of
// Fig. 1 in the paper. It orchestrates, per macro cell, the full path
//
//	layout → defect simulation → fault collapsing → fault classes →
//	circuit-level fault models → fault simulation → fault signatures →
//	sensitisation/propagation → detectability
//
// and compiles the per-macro results into the circuit-level coverage
// figures (area-scaled, assuming equal defect density over the die), both
// before and after the DfT measures.
package core

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"

	"repro/internal/defectsim"
	"repro/internal/faults"
	"repro/internal/macros"
	"repro/internal/obs"
	"repro/internal/process"
	"repro/internal/signature"
	"repro/internal/spice"
)

// StreamSeed derives the RNG seed of one named Monte Carlo stream from
// the campaign seed (FNV-1a over the seed bytes and the stream labels).
// Every Monte Carlo stage draws from its own stream — per (macro, pass)
// for the defect sprinkles, per die for the good-space sampling — so
// results are independent of stage ordering and of how units are
// scheduled across campaign workers.
func StreamSeed(seed int64, labels ...string) int64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(seed))
	h.Write(b[:])
	for _, l := range labels {
		h.Write([]byte{0})
		h.Write([]byte(l))
	}
	return int64(h.Sum64())
}

// Config parameterises a methodology run.
type Config struct {
	// Bits selects the vehicle: the N-bit member of the flash-converter
	// family (2^N comparators and ladder segments). 0 means the default
	// 8-bit vehicle of the paper's case study — the zero value and an
	// explicit 8 are the same campaign, and fingerprint identically.
	Bits int
	// Seed drives every Monte Carlo stage deterministically.
	Seed int64
	// Defects is the class-discovery sprinkle size per macro (the paper
	// used 25 000 on the comparator).
	Defects int
	// MagnitudeDefects is the second sprinkle used to give the classes
	// statistically significant magnitudes (the paper used 10 000 000;
	// runtimes here suggest less — only ratios matter).
	MagnitudeDefects int
	// MCSamples is the number of good-space Monte Carlo dies.
	MCSamples int
	// NSigma is the current-detection threshold multiple (paper: 3).
	NSigma float64
	// FloorA is the tester current-measurement floor (A).
	FloorA float64
	// SkipNonCat disables the non-catastrophic analysis.
	SkipNonCat bool
	// MaxClassesPerMacro caps the per-macro class analyses (0 = all);
	// classes are analysed in descending magnitude, and coverage is
	// reported over the analysed population.
	MaxClassesPerMacro int
}

// Vehicle resolves the configured vehicle spec (Bits == 0 is the default
// 8-bit vehicle). The spec is not validated here — CLIs and JobSpec
// validate before a pipeline is built.
func (c Config) Vehicle() macros.Vehicle {
	if c.Bits == 0 {
		return macros.DefaultVehicle()
	}
	return macros.Vehicle{Bits: c.Bits}
}

// DefaultConfig returns the full-fidelity configuration.
func DefaultConfig() Config {
	return Config{
		Seed:             1995,
		Defects:          25000,
		MagnitudeDefects: 250000,
		MCSamples:        80,
		NSigma:           3,
		FloorA:           2e-6,
	}
}

// QuickConfig returns a configuration small enough for unit tests.
func QuickConfig() Config {
	return Config{
		Seed:               1995,
		Defects:            4000,
		MagnitudeDefects:   0,
		MCSamples:          12,
		NSigma:             3,
		FloorA:             2e-6,
		MaxClassesPerMacro: 25,
	}
}

// Detection records which mechanisms catch one fault class at the circuit
// edge.
type Detection struct {
	// Missing is the voltage mechanism: the missing-code test fails.
	Missing bool
	// IVdd, IDDQ and Iin are the three current mechanisms.
	IVdd, IDDQ, Iin bool
}

// Voltage reports voltage-test detection.
func (d Detection) Voltage() bool { return d.Missing }

// Current reports detection by any current measurement.
func (d Detection) Current() bool { return d.IVdd || d.IDDQ || d.Iin }

// Any reports detection by any mechanism.
func (d Detection) Any() bool { return d.Voltage() || d.Current() }

// ClassAnalysis is the outcome for one fault class (catastrophic or
// non-catastrophic variant).
type ClassAnalysis struct {
	Class  faults.Class
	NonCat bool
	// Resp is the macro-level response; Chip is the combined
	// circuit-edge measurement vector it produced.
	Resp *signature.Response
	Chip *signature.Response
	Det  Detection
}

// MacroRun holds everything the pipeline learned about one macro.
type MacroRun struct {
	Name  string
	Count int
	Area  float64
	// DiscoveryDefects/Faults are the class-discovery sprinkle stats.
	DiscoveryDefects, DiscoveryFaults int
	// MagnitudeDefects is the magnitude-pass sprinkle size (0 if the
	// discovery pass doubles as the magnitude source).
	MagnitudeDefects int
	// UnmatchedFaults counts magnitude-pass faults whose class was not
	// present in the discovery catalogue (the statistical tail).
	UnmatchedFaults int
	// Classes are the collapsed fault classes ordered by magnitude.
	Classes []faults.Class
	// TotalFaults is the summed class magnitude.
	TotalFaults int
	// LocalFaults counts faults confined to this macro's internal nets.
	LocalFaults int
	// FaultRate is faults per sprinkled defect.
	FaultRate float64
	// Cat and NonCat are the per-class analyses.
	Cat, NonCat []ClassAnalysis
}

// Weight returns the macro's share of the chip fault population:
// area × instance count × fault-per-defect rate (equal defect density).
func (m *MacroRun) Weight() float64 {
	return m.Area * float64(m.Count) * m.FaultRate
}

// Run is the complete methodology outcome for one DfT setting.
type Run struct {
	Cfg    Config
	DfT    bool
	Good   *signature.GoodSpace
	Macros []*MacroRun
}

// Macro returns the named macro run (nil if absent).
func (r *Run) Macro(name string) *MacroRun {
	for _, m := range r.Macros {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// Pipeline binds the macro set to a configuration. A Pipeline is safe
// for concurrent AnalyzeClass/RunMacro calls: the lazy caches below are
// mutex-guarded, and the macros themselves are either stateless or
// internally synchronised.
type Pipeline struct {
	Cfg  Config
	Proc *process.Process
	// Obs receives the stage spans (sprinkle, collapse, inject,
	// faultsim, classify, detect, goodspace) of every analysis run on
	// this pipeline. nil — the default — is the zero-cost noop.
	Obs *obs.Observer
	// GoodSpaceWorkers bounds the die-level concurrency of the
	// good-space Monte Carlo (see goodspace.go): 0 is automatic —
	// GOMAXPROCS, or the campaign worker count inside RunParallel — and
	// 1 compiles strictly serially. Any setting produces bit-identical
	// output: the per-die RNG streams make dies order-independent and
	// the merge is index-ordered.
	GoodSpaceWorkers int

	veh     macros.Vehicle
	cmp     *macros.ComparatorMacro
	ladder  *macros.LadderMacro
	biasgen *macros.BiasgenMacro
	clock   *macros.ClockgenMacro
	decoder *macros.DecoderMacro
	all     []macros.Macro

	// mu guards the lazy caches — nominal per-macro responses and
	// compiled good spaces per DfT flag — and the in-flight good-space
	// compile registry. The compile itself runs outside the lock so
	// campaign workers can join an in-progress compile (or run other
	// units) instead of serialising behind it.
	mu        sync.Mutex
	nomParts  map[bool]map[string]*signature.Response
	good      map[bool]*signature.GoodSpace
	goodCalls map[bool]*goodCall

	// discovered caches class discoveries per "dft/macro" for
	// ExecuteUnit (the remote-worker path, where many class units of one
	// macro arrive independently); discoverCalls single-flights the
	// in-progress ones, mirroring goodCalls.
	discovered    map[string]*MacroRun
	discoverCalls map[string]*discoverCall

	// pool reuses fault-free simulation engines across class analyses
	// (checkout semantics — concurrent campaign workers each hold at
	// most one engine per circuit key at a time); base memoises the
	// fault-free baseline responses the analyses compare against. Both
	// are bit-identity-preserving caches: a hit returns exactly what a
	// recompute would, so serial and parallel campaigns stay byte-equal.
	pool *macros.EnginePool
	base *macros.Baselines
}

// NewPipeline constructs the five-macro pipeline of the configured
// vehicle (the paper's case study at the default 8-bit resolution).
func NewPipeline(cfg Config) *Pipeline {
	veh := cfg.Vehicle()
	p := &Pipeline{
		Cfg:       cfg,
		Proc:      process.Default(),
		veh:       veh,
		cmp:       macros.NewComparator(veh),
		ladder:    macros.NewLadder(veh),
		biasgen:   macros.NewBiasgen(veh),
		clock:     macros.NewClockgen(veh),
		decoder:   macros.NewDecoder(veh),
		nomParts:  map[bool]map[string]*signature.Response{},
		good:      map[bool]*signature.GoodSpace{},
		goodCalls: map[bool]*goodCall{},

		discovered:    map[string]*MacroRun{},
		discoverCalls: map[string]*discoverCall{},
		pool:          macros.NewEnginePool(),
		base:          macros.NewBaselines(),
	}
	p.all = []macros.Macro{p.cmp, p.ladder, p.biasgen, p.clock, p.decoder}
	return p
}

// MacroNames lists the macros in pipeline order.
func (p *Pipeline) MacroNames() []string {
	out := make([]string, len(p.all))
	for i, m := range p.all {
		out[i] = m.Name()
	}
	return out
}

// partsEnv carries the resources one fault-free parts simulation runs
// with: the engine pool and baseline cache to go through (the good-space
// die workers own private ones — see goodspace.go — while the nominal
// cache uses the pipeline's shared pair) and how many of the independent
// macro transients may run concurrently.
type partsEnv struct {
	pool *macros.EnginePool
	base *macros.Baselines
	// fanout bounds the concurrent macro simulations (<= 1 is the
	// serial loop).
	fanout int
}

// sharedEnv is the pipeline-owned serial environment.
func (p *Pipeline) sharedEnv() partsEnv {
	return partsEnv{pool: p.pool, base: p.base}
}

// partsFor simulates the fault-free response of the chip-composition
// macros under one variation. The four macros are independent circuits,
// so env.fanout > 1 spreads them over a bounded goroutine group; the
// assembled map is identical either way (each macro's simulation is
// deterministic and keyed by name).
func (p *Pipeline) partsFor(ctx context.Context, v macros.Variation, dft bool, currentsOnly bool, met *obs.Metrics, env partsEnv) (map[string]*signature.Response, error) {
	opt := macros.RespondOpts{
		Var: v, DfT: dft, CurrentsOnly: currentsOnly,
		Obs: p.Obs, Metrics: met,
		Pool: env.pool, Base: env.base,
	}
	ms := []macros.Macro{p.cmp, p.ladder, p.clock, p.decoder}
	if env.fanout > 1 {
		return p.partsFanout(ctx, ms, opt, env.fanout)
	}
	parts := map[string]*signature.Response{}
	for _, m := range ms {
		resp, err := m.Respond(ctx, nil, opt)
		if err != nil {
			if spice.IsCancelled(err) {
				return nil, err
			}
			return nil, fmt.Errorf("core: nominal %s: %w", m.Name(), err)
		}
		parts[m.Name()] = resp
	}
	return parts, nil
}

// get reads a measurement with fallback (missing keys read as the
// fallback map's value; missing there too reads 0).
func get(m, fb map[string]float64, k string) float64 {
	if v, ok := m[k]; ok {
		return v
	}
	return fb[k]
}

// Chipify combines macro-level current measurements into the circuit-edge
// measurement vector. faultyMacro names the macro whose response `f`
// replaces its nominal contribution ("" for the fault-free chip). A
// comparator fault lives in one of the vehicle's 2^N slices; a
// bias-generator fault shifts all of them.
func (p *Pipeline) Chipify(parts map[string]*signature.Response, faultyMacro string, f *signature.Response) *signature.Response {
	out := &signature.Response{Currents: map[string]float64{}}
	cmpN := parts["comparator"].Currents
	ladN := parts["ladder"].Currents
	clkN := parts["clockgen"].Currents
	decN := parts["decoder"].Currents

	cmpF, ladF, clkF, decF := cmpN, ladN, clkN, decN
	nFaulty := 0.0
	switch faultyMacro {
	case "comparator":
		cmpF = f.Currents
		nFaulty = 1
	case "biasgen":
		// The bias lines feed every slice.
		cmpF = f.Currents
		nFaulty = float64(p.veh.Comparators())
	case "ladder":
		ladF = f.Currents
	case "clockgen":
		clkF = f.Currents
	case "decoder":
		decF = f.Currents
	}
	nNom := float64(p.veh.Comparators()) - nFaulty

	for _, ph := range []string{"samp", "amp", "latch"} {
		for _, lvl := range []string{"lo", "hi"} {
			k := ph + "." + lvl
			out.Currents["ivdd."+k] = nNom*get(cmpN, cmpN, "slice.ivdd."+k) +
				nFaulty*get(cmpF, cmpN, "slice.ivdd."+k) +
				get(cmpF, cmpN, "bias.ivdd."+k)
			out.Currents["iddq."+k] = get(cmpF, cmpN, "iddq."+k)
		}
	}
	for _, lvl := range []string{"lo", "hi"} {
		out.Currents["iin.vin."+lvl] = nNom*get(cmpN, cmpN, "iin.vin."+lvl) +
			nFaulty*get(cmpF, cmpN, "iin.vin."+lvl)
		// The reference-path current sums the ladder's terminal current
		// (its "hi"/"lo" name the two reference pins) with the slices'
		// tap currents (their "hi"/"lo" name the input level); both are
		// observed at the same reference pins of the package, so they
		// belong to the same chip-level measurement.
		out.Currents["iin.vref."+lvl] = get(ladF, ladN, "iin.vref."+lvl) +
			nNom*get(cmpN, cmpN, "iin.vref."+lvl) +
			nFaulty*get(cmpF, cmpN, "iin.vref."+lvl)
	}
	for si := 0; si < 4; si++ {
		k := fmt.Sprintf("iddq.s%d", si)
		out.Currents[k] = get(clkF, clkN, k)
	}
	out.Currents["iin.phi"] = get(clkF, clkN, "iin.phi")
	out.Currents["iddq.dc"] = get(decF, decN, "iddq.dc")
	return out
}

// goodCall is one in-flight good-space compile: done closes once g/err
// are set, so concurrent callers join the running compile instead of
// starting a second one (or blocking the pipeline mutex for its whole
// multi-second duration).
type goodCall struct {
	done chan struct{}
	g    *signature.GoodSpace
	err  error
}

// GoodSpace compiles (and caches) the chip-level good-signature space for
// one DfT setting: a Monte Carlo over dies, each die one shared variation
// drawn from its own per-die RNG stream — the same dies regardless of
// DfT setting, sampling order, worker count or parallel scheduling (see
// goodspace.go for the die-sharded compile). Concurrent callers share a
// single compile; cancelling ctx aborts the wait (and, for the compiling
// caller, the compile itself) in bounded time. A compile that fails is
// not cached — the next caller retries.
func (p *Pipeline) GoodSpace(ctx context.Context, dft bool) (*signature.GoodSpace, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	for {
		p.mu.Lock()
		if g, ok := p.good[dft]; ok {
			p.mu.Unlock()
			return g, nil
		}
		if c, ok := p.goodCalls[dft]; ok {
			p.mu.Unlock()
			select {
			case <-c.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if c.err == nil {
				return c.g, nil
			}
			if spice.IsCancelled(c.err) && ctx.Err() == nil {
				// The compiling caller was cancelled; we were not.
				// Loop: the registry entry is gone, so we compile.
				continue
			}
			return nil, c.err
		}
		c := &goodCall{done: make(chan struct{})}
		p.goodCalls[dft] = c
		p.mu.Unlock()

		c.g, c.err = p.compileGoodSpace(ctx, dft)
		p.mu.Lock()
		if c.err == nil {
			p.good[dft] = c.g
		}
		delete(p.goodCalls, dft)
		p.mu.Unlock()
		close(c.done)
		return c.g, c.err
	}
}

// nominals returns (and caches) the nominal-variation fault-free parts.
func (p *Pipeline) nominals(ctx context.Context, dft bool) (map[string]*signature.Response, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if parts, ok := p.nomParts[dft]; ok {
		return parts, nil
	}
	parts, err := p.partsFor(ctx, macros.Nominal(), dft, true, nil, p.sharedEnv())
	if err != nil {
		return nil, err
	}
	p.nomParts[dft] = parts
	return parts, nil
}

// macroByName resolves a pipeline macro.
func (p *Pipeline) macroByName(name string) (macros.Macro, error) {
	for _, m := range p.all {
		if m.Name() == name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("core: unknown macro %q (valid macros: %s)",
		name, strings.Join(p.MacroNames(), ", "))
}

// ValidateMacro reports whether name resolves to a pipeline macro,
// returning the same unknown-macro error as the run entry points. CLIs
// use it to fail fast before any work is scheduled.
func (p *Pipeline) ValidateMacro(name string) error {
	_, err := p.macroByName(name)
	return err
}

// AnalyzeClass runs the fault simulation + propagation + detection for
// one fault class. Cancelling ctx aborts the underlying solves in
// bounded time; the returned error then satisfies spice.IsCancelled and
// the half-finished analysis is discarded, never classified.
func (p *Pipeline) AnalyzeClass(ctx context.Context, macroName string, c faults.Class, nonCat, dft bool) (*ClassAnalysis, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	m, err := p.macroByName(macroName)
	if err != nil {
		return nil, err
	}
	good, err := p.GoodSpace(ctx, dft)
	if err != nil {
		return nil, err
	}
	parts, err := p.nominals(ctx, dft)
	if err != nil {
		return nil, err
	}
	// Span labels and the counter block exist only when an observer is
	// attached — the noop default must not add a single allocation to
	// the analysis path.
	var label string
	var met *obs.Metrics
	if p.Obs != nil {
		label = c.Fault.Key()
		if nonCat {
			label += ":noncat"
		}
		met = &obs.Metrics{}
	}
	resp, err := m.Respond(ctx, &c.Fault, macros.RespondOpts{
		NonCat: nonCat, Var: macros.Nominal(), DfT: dft,
		Obs: p.Obs, Class: label, Macro: macroName, Metrics: met,
		Pool: p.pool, Base: p.base,
	})
	if err != nil {
		// A cancelled analysis must surface as an abort — folding it
		// into a fault-free response would checkpoint a bogus result.
		if spice.IsCancelled(err) || ctx.Err() != nil {
			return nil, err
		}
		// Fault model not applicable to this netlist (e.g. the DfT
		// redesign removed the structure): behaves fault-free.
		resp = &signature.Response{Voltage: signature.VSigNone, Currents: map[string]float64{}}
	}
	sp := p.Obs.Start(obs.StageDetect, macroName, label, dft, met)
	chip := p.Chipify(parts, macroName, resp)
	det := Detection{Missing: resp.MissingCode}
	det.IVdd, det.IDDQ, det.Iin = good.Detect(chip)
	sp.End()
	return &ClassAnalysis{Class: c, NonCat: nonCat, Resp: resp, Chip: chip, Det: det}, nil
}

// DiscoverClasses runs the layout → defect-simulation → fault-collapsing
// front half of the test path for one macro: both sprinkle passes and the
// class catalogue, but no class analyses. Each sprinkle draws from its
// own (Seed, macro, pass) RNG stream.
func (p *Pipeline) DiscoverClasses(ctx context.Context, macroName string, dft bool) (*MacroRun, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	m, err := p.macroByName(macroName)
	if err != nil {
		return nil, err
	}
	cell := m.Layout(dft)
	sim := defectsim.New(cell, p.Proc)
	met := &obs.Metrics{}
	sim.Metrics = met

	// Two-pass statistics, as in the paper: the class catalogue comes
	// from the discovery sprinkle (25 000 defects on the comparator);
	// a larger magnitude sprinkle then re-weights those classes with
	// statistically significant counts (the paper used 10 000 000).
	// Magnitude-pass faults whose class was not discovered are counted
	// as the unmatched tail.
	sp := p.Obs.Start(obs.StageSprinkle, macroName, "discovery", dft, met)
	discovery, err := sim.Sprinkle(ctx, p.Cfg.Defects, StreamSeed(p.Cfg.Seed, "sprinkle", macroName, "discovery"))
	sp.End()
	if err != nil {
		return nil, err
	}
	sp = p.Obs.Start(obs.StageCollapse, macroName, "discovery", dft, met)
	classes := faults.Collapse(discovery.Faults)
	sp.End()
	source := discovery
	magDefects := 0
	unmatched := 0
	if p.Cfg.MagnitudeDefects > p.Cfg.Defects {
		sp = p.Obs.Start(obs.StageSprinkle, macroName, "magnitude", dft, met)
		source, err = sim.Sprinkle(ctx, p.Cfg.MagnitudeDefects, StreamSeed(p.Cfg.Seed, "sprinkle", macroName, "magnitude"))
		sp.End()
		if err != nil {
			return nil, err
		}
		magDefects = p.Cfg.MagnitudeDefects
		sp = p.Obs.Start(obs.StageCollapse, macroName, "magnitude", dft, met)
		byKey := map[string]int{}
		for i := range classes {
			byKey[classes[i].Fault.Key()] = i
			classes[i].Count = 0
		}
		for _, f := range source.Faults {
			if i, ok := byKey[f.Key()]; ok {
				classes[i].Count++
			} else {
				unmatched++
			}
		}
		// Drop classes that received no magnitude mass and restore the
		// descending-magnitude order.
		kept := classes[:0]
		for _, c := range classes {
			if c.Count > 0 {
				kept = append(kept, c)
			}
		}
		classes = kept
		sort.Slice(classes, func(i, j int) bool {
			if classes[i].Count != classes[j].Count {
				return classes[i].Count > classes[j].Count
			}
			return classes[i].Fault.Key() < classes[j].Fault.Key()
		})
		sp.End()
	}
	// The analysis cap (Config.MaxClassesPerMacro) is applied later, in
	// analysisTargets — but it is decided here, so this is where silent
	// truncation is made loud: the counter records how many discovered
	// classes will never be analysed.
	if n := len(classes); p.Cfg.MaxClassesPerMacro > 0 && n > p.Cfg.MaxClassesPerMacro {
		sp = p.Obs.Start(obs.StageCollapse, macroName, "truncate", dft, met)
		met.Add(obs.CtrClassesTruncated, int64(n-p.Cfg.MaxClassesPerMacro))
		sp.End()
	}
	run := &MacroRun{
		Name:             m.Name(),
		Count:            m.Count(),
		Area:             cell.Area(),
		DiscoveryDefects: discovery.Defects,
		DiscoveryFaults:  len(discovery.Faults),
		MagnitudeDefects: magDefects,
		UnmatchedFaults:  unmatched,
		Classes:          classes,
		FaultRate:        source.FaultRate(),
	}
	for _, f := range source.Faults {
		if f.Local {
			run.LocalFaults++
		}
	}
	run.TotalFaults = len(source.Faults) - unmatched
	return run, nil
}

// AnalysisTarget names one class analysis of a macro run: the class index
// and the fault-model variant.
type AnalysisTarget struct {
	Index  int
	NonCat bool
}

// analysisTargets lists the class analyses the configuration asks for, in
// the canonical (serial) order: per class, the catastrophic analysis and
// then — when eligible and enabled — the non-catastrophic one.
func (p *Pipeline) analysisTargets(run *MacroRun) []AnalysisTarget {
	n := len(run.Classes)
	if p.Cfg.MaxClassesPerMacro > 0 && n > p.Cfg.MaxClassesPerMacro {
		n = p.Cfg.MaxClassesPerMacro
	}
	var out []AnalysisTarget
	for i := 0; i < n; i++ {
		out = append(out, AnalysisTarget{Index: i})
		if !p.Cfg.SkipNonCat && run.Classes[i].Fault.NonCatEligible() {
			out = append(out, AnalysisTarget{Index: i, NonCat: true})
		}
	}
	return out
}

// RunMacro executes the complete defect-oriented test path for one macro.
func (p *Pipeline) RunMacro(ctx context.Context, macroName string, dft bool) (*MacroRun, error) {
	run, err := p.DiscoverClasses(ctx, macroName, dft)
	if err != nil {
		return nil, err
	}
	for _, t := range p.analysisTargets(run) {
		ca, err := p.AnalyzeClass(ctx, macroName, run.Classes[t.Index], t.NonCat, dft)
		if err != nil {
			return nil, err
		}
		if t.NonCat {
			run.NonCat = append(run.NonCat, *ca)
		} else {
			run.Cat = append(run.Cat, *ca)
		}
	}
	return run, nil
}

// Run executes the whole methodology over every macro for one DfT
// setting. The good-space Monte Carlo is compiled concurrently with the
// defect-sprinkle/fault-collapsing front half — the two share no state
// until detection — and joined before the first class analysis, so the
// serial prelude no longer gates the pipeline. The result is
// bit-identical to the historical fully-sequential traversal: every
// Monte Carlo stage draws from its own RNG stream and the merge order
// is canonical.
func (p *Pipeline) Run(ctx context.Context, dft bool) (*Run, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	gctx, cancel := context.WithCancel(ctx)
	defer cancel()
	goodDone := make(chan error, 1)
	go func() {
		_, err := p.GoodSpace(gctx, dft)
		goodDone <- err
	}()
	out := &Run{Cfg: p.Cfg, DfT: dft}
	for _, m := range p.all {
		mr, err := p.DiscoverClasses(ctx, m.Name(), dft)
		if err != nil {
			cancel()
			<-goodDone
			return nil, err
		}
		out.Macros = append(out.Macros, mr)
	}
	if err := <-goodDone; err != nil {
		return nil, err
	}
	good, err := p.GoodSpace(ctx, dft) // cache hit: compiled above
	if err != nil {
		return nil, err
	}
	out.Good = good
	for _, mr := range out.Macros {
		for _, t := range p.analysisTargets(mr) {
			ca, err := p.AnalyzeClass(ctx, mr.Name, mr.Classes[t.Index], t.NonCat, dft)
			if err != nil {
				return nil, err
			}
			if t.NonCat {
				mr.NonCat = append(mr.NonCat, *ca)
			} else {
				mr.Cat = append(mr.Cat, *ca)
			}
		}
	}
	return out, nil
}

// analysedMagnitude sums the magnitudes of the analysed classes.
func analysedMagnitude(as []ClassAnalysis) int {
	n := 0
	for _, a := range as {
		n += a.Class.Count
	}
	return n
}

// SortedKinds returns the fault kinds ordered as in the paper's Table 1.
func SortedKinds() []faults.Kind {
	return []faults.Kind{
		faults.Short, faults.ExtraContactKind, faults.GOSPinhole,
		faults.JunctionPinholeKind, faults.ThickOxPinhole,
		faults.Open, faults.NewDevice, faults.ShortedDevice,
	}
}
