// External tests for the die-sharded good-space compile: determinism
// across worker counts, bounded-time cancellation, and the single-flight
// contract for concurrent callers.
package core_test

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/signature"
	"repro/internal/spice"
)

// goodSpaceTestCfg trims the Monte Carlo to 6 dies so the 9-worker case
// exercises the surplus-worker macro fan-out path (workers > dies).
func goodSpaceTestCfg() core.Config {
	cfg := core.QuickConfig()
	cfg.Defects = 1200
	cfg.MCSamples = 6
	cfg.MaxClassesPerMacro = 1
	cfg.SkipNonCat = true
	return cfg
}

// TestGoodSpaceMatchesSerial is the determinism contract for the
// die-sharded Monte Carlo: the compiled GoodSpace — and the detections
// scored against it — are identical for any die-worker count, because
// each die draws from its own RNG stream and the merge is index-ordered.
func TestGoodSpaceMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("good-space Monte Carlo in -short mode")
	}
	cfg := goodSpaceTestCfg()
	ctx := context.Background()

	compile := func(workers int) (*signature.GoodSpace, core.Detection) {
		t.Helper()
		p := core.NewPipeline(cfg)
		p.GoodSpaceWorkers = workers
		g, err := p.GoodSpace(ctx, false)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		// Score one real fault class against the space: detection is the
		// downstream consumer that must not notice the worker count.
		mr, err := p.DiscoverClasses(ctx, "comparator", false)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		ca, err := p.AnalyzeClass(ctx, "comparator", mr.Classes[0], false, false)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return g, ca.Det
	}

	want, wantDet := compile(1)
	for _, workers := range []int{4, 9} {
		got, gotDet := compile(workers)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: compiled GoodSpace differs from serial", workers)
		}
		if gotDet != wantDet {
			t.Fatalf("workers=%d: detection differs from serial: %+v vs %+v",
				workers, gotDet, wantDet)
		}
	}
}

// TestGoodSpaceCancelledMidCompile: a cancellation mid-Monte-Carlo must
// abort the die group in bounded time with a cancellation error, not
// run the remaining dies to completion.
func TestGoodSpaceCancelledMidCompile(t *testing.T) {
	if testing.Short() {
		t.Skip("good-space Monte Carlo in -short mode")
	}
	cfg := goodSpaceTestCfg()
	cfg.MCSamples = 64 // long enough that cancellation lands mid-compile
	p := core.NewPipeline(cfg)
	p.GoodSpaceWorkers = 4
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := p.GoodSpace(ctx, false)
	if err == nil || !spice.IsCancelled(err) {
		t.Fatalf("want cancellation error, got %v", err)
	}
	// Bounded abort: in-flight dies finish their current solve and stop.
	// The full 64-die compile takes tens of seconds; 10 s is generous for
	// an abort while still catching a run-to-completion regression.
	if took := time.Since(start); took > 10*time.Second {
		t.Fatalf("cancellation took %v, want bounded abort", took)
	}
	// A cancelled compile must not be cached; a fresh context retries.
	// (Shrink the Monte Carlo first — the retry only proves the cache
	// stayed empty, it does not need the full 64 dies.)
	p.Cfg.MCSamples = 2
	if _, err := p.GoodSpace(context.Background(), false); err != nil {
		t.Fatalf("retry after cancellation: %v", err)
	}
}

// TestGoodSpaceSingleFlight: concurrent GoodSpace callers must share one
// compile — one goodspace span, one die set — and all receive the same
// cached pointer.
func TestGoodSpaceSingleFlight(t *testing.T) {
	if testing.Short() {
		t.Skip("good-space Monte Carlo in -short mode")
	}
	cfg := goodSpaceTestCfg()
	agg := obs.NewAgg()
	p := core.NewPipeline(cfg)
	p.Obs = obs.New(agg)
	p.GoodSpaceWorkers = 2

	const callers = 8
	results := make([]*signature.GoodSpace, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g, err := p.GoodSpace(context.Background(), false)
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			results[i] = g
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d got a different GoodSpace pointer: flight not shared", i)
		}
	}
	stages := agg.Snapshot()
	if st := stages[obs.StageGoodSpace]; st == nil || st.Spans != 1 {
		t.Fatalf("goodspace spans = %+v, want exactly 1 compile", st)
	}
	st := stages[obs.StageGoodSpaceDie]
	if st == nil || st.Spans != cfg.MCSamples {
		t.Fatalf("goodspace_die spans = %+v, want %d dies", st, cfg.MCSamples)
	}
	if got := st.Counters[obs.CtrGoodspaceDies.Name()]; got != int64(cfg.MCSamples) {
		t.Fatalf("goodspace_dies counter = %d, want %d", got, cfg.MCSamples)
	}
}

// TestClassTruncationCounter: when MaxClassesPerMacro drops discovered
// classes, the pipeline must say so — the classes_truncated counter is
// what keeps a capped campaign's coverage report from reading as full
// coverage.
func TestClassTruncationCounter(t *testing.T) {
	cfg := core.QuickConfig()
	cfg.Defects = 400
	cfg.MaxClassesPerMacro = 1

	agg := obs.NewAgg()
	p := core.NewPipeline(cfg)
	p.Obs = obs.New(agg)
	// The decoder is gate-level: discovery is fast and yields well over
	// one class at this sprinkle size.
	run, err := p.DiscoverClasses(context.Background(), "decoder", false)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Classes) <= 1 {
		t.Fatalf("test premise broken: %d classes discovered", len(run.Classes))
	}
	snap := agg.Snapshot()
	var got int64
	for _, st := range snap {
		got += st.Counters["classes_truncated"]
	}
	want := int64(len(run.Classes) - 1)
	if got != want {
		t.Fatalf("classes_truncated = %d, want %d", got, want)
	}

	// Uncapped discovery must not emit the counter.
	cfg.MaxClassesPerMacro = 0
	agg2 := obs.NewAgg()
	p2 := core.NewPipeline(cfg)
	p2.Obs = obs.New(agg2)
	if _, err := p2.DiscoverClasses(context.Background(), "decoder", false); err != nil {
		t.Fatal(err)
	}
	for _, st := range agg2.Snapshot() {
		if st.Counters["classes_truncated"] != 0 {
			t.Fatal("uncapped discovery emitted classes_truncated")
		}
	}
}
