// Package jobserver is the multi-tenant campaign job server behind
// cmd/campaignd: clients submit a core.JobSpec and get back a job
// handle, progress streams live from the campaign's unit counters and
// the observability spans, and finished results are the exact
// report.JSON bytes the CLI would have produced — an HTTP submission of
// {"quick":true} is byte-identical to `dotest -quick`.
//
// Jobs are keyed by the spec's configuration fingerprint: the job id is
// a hash of the fingerprint, so concurrent identical submissions
// collapse into a single run (single-flight) and every submitter shares
// its handle, progress stream and result. A bounded global worker
// budget (campaign.FairGate) is shared fairly across concurrent jobs by
// interleaving unit-granular work, and checkpoints persist through a
// pluggable campaign.Store — with a content-addressed DirStore, a job
// killed with the daemon resumes from its checkpoint when resubmitted
// after a restart.
package jobserver

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
)

// Options configures a Server.
type Options struct {
	// Budget bounds the number of campaign units executing concurrently
	// across all jobs (<= 0 selects runtime.GOMAXPROCS(0)). Jobs share
	// the budget fairly: each is a FairGate tenant, so a long-running
	// campaign cannot starve a small one submitted behind it.
	Budget int
	// Store is the shared checkpoint backend (nil disables
	// checkpointing and resume). A content-addressed DirStore keys each
	// job's checkpoint by its per-DfT configuration fingerprint, so
	// checkpoints survive daemon restarts and independent jobs never
	// collide.
	Store campaign.Store
	// RemoteSlots is the surplus engine-worker count reserved for
	// leasing units to remote campaignw workers, on top of the local
	// Budget (0 selects DefaultRemoteSlots; negative disables remote
	// dispatch entirely). Surplus workers cost nothing while no remote
	// worker is connected: the executor declines instantly and they
	// park at the fair gate behind the local budget, so remote capacity
	// is strictly additive.
	RemoteSlots int
	// LeaseTTL is the remote lease lifetime between heartbeats (0
	// selects DefaultLeaseTTL). A lease that outlives its TTL without a
	// heartbeat is expired and its unit re-queued locally — a dead
	// worker can delay a unit by at most one TTL, never lose it.
	LeaseTTL time.Duration
	// Logf, if non-nil, receives server lifecycle log lines.
	Logf func(format string, args ...any)
}

// Server owns the job table and the shared execution resources. Create
// one with New; it runs jobs until Shutdown.
type Server struct {
	opts Options
	gate *campaign.FairGate
	// disp matches units to parked remote-worker long-polls (nil when
	// remote dispatch is disabled).
	disp *dispatcher

	// base is the parent context of every job: jobs outlive the HTTP
	// requests that submit or watch them and die only with the server.
	base     context.Context
	baseStop context.CancelFunc

	mu     sync.Mutex
	jobs   map[string]*Job
	closed bool

	wg          sync.WaitGroup
	runsStarted atomic.Int64
}

// New builds a server. Jobs run until Shutdown; the server holds no
// network state (see Handler for the HTTP surface).
func New(opts Options) *Server {
	if opts.Budget <= 0 {
		opts.Budget = runtime.GOMAXPROCS(0)
	}
	if opts.RemoteSlots == 0 {
		opts.RemoteSlots = DefaultRemoteSlots
	}
	base, stop := context.WithCancel(context.Background())
	s := &Server{
		opts:     opts,
		gate:     campaign.NewFairGate(opts.Budget),
		base:     base,
		baseStop: stop,
		jobs:     map[string]*Job{},
	}
	if opts.RemoteSlots > 0 {
		s.disp = newDispatcher(base, opts.LeaseTTL, s.logf)
	}
	return s
}

// remoteSlots resolves the configured surplus (0 when remote dispatch
// is disabled).
func (s *Server) remoteSlots() int {
	if s.disp == nil {
		return 0
	}
	return s.opts.RemoteSlots
}

// logf logs through the configured sink, if any.
func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// Submit registers the spec and returns its job. Submissions dedup on
// the spec's fingerprint: while a run is live — or once it has finished
// successfully — an identical submission returns the existing job
// (deduped=true) instead of starting another run. A job that failed or
// was cancelled restarts on resubmission, resuming from its checkpoint
// when a Store is configured.
func (s *Server) Submit(spec core.JobSpec) (j *Job, deduped bool, err error) {
	if err := spec.Validate(); err != nil {
		return nil, false, err
	}
	fp := spec.Fingerprint()
	id := core.JobID(fp)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false, fmt.Errorf("jobserver: server is shut down")
	}
	if j, ok := s.jobs[id]; ok {
		j.noteSubmit()
		if st := j.State(); st != StateFailed && st != StateCancelled {
			return j, true, nil
		}
		// Terminal failure: fall through and restart under the same id.
	}
	j = newJob(s, id, fp, spec)
	s.jobs[id] = j
	s.runsStarted.Add(1)
	s.wg.Add(1)
	ctx, cancel := context.WithCancel(s.base)
	j.cancel = cancel
	go j.run(ctx)
	s.logf("job %s: started (fingerprint %s)", id, fp)
	return j, false, nil
}

// Job looks a job up by id.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs snapshots the job table.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j)
	}
	return out
}

// Store exposes the checkpoint backend (nil when checkpointing is off).
func (s *Server) Store() campaign.Store { return s.opts.Store }

// RunsStarted counts the campaign runs actually launched — the dedup
// tests assert this stays at 1 under concurrent identical submissions.
func (s *Server) RunsStarted() int64 { return s.runsStarted.Load() }

// Shutdown cancels every live job and waits (bounded by ctx) for them
// to flush their checkpoints and reach a terminal state. Further
// submissions fail. The cancellation reaches into the analog kernel's
// Newton/transient loops, so even a job mid-solve aborts in bounded
// time with a valid resumable checkpoint.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.baseStop()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("jobserver: shutdown timed out: %w", ctx.Err())
	}
}
