package jobserver

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/obs"
)

// DefaultLeaseTTL is the lease lifetime when Options.LeaseTTL is zero.
// Workers heartbeat at a third of the TTL, so a worker must miss three
// consecutive heartbeats before its unit is re-queued locally.
const DefaultLeaseTTL = 30 * time.Second

// DefaultRemoteSlots is the surplus engine-worker count reserved for
// remote dispatch when Options.RemoteSlots is zero. Surplus goroutines
// cost nothing while no worker is connected: the executor declines
// instantly and they park at the fair gate behind the local budget.
const DefaultRemoteSlots = 16

// ErrShuttingDown wakes parked lease waiters when the server stops.
var ErrShuttingDown = errors.New("jobserver: shutting down")

// lease is one granted unit: a worker owns the unit's execution until
// it posts a result, releases the lease, or the TTL expires without a
// heartbeat. Exactly one of result-delivery and expiry happens; the
// granting executor blocks on whichever comes first.
type lease struct {
	id     string
	worker string
	jobID  string
	dft    string
	key    string

	deadline time.Time
	timer    *time.Timer

	// result delivers the worker's outcome (buffered; sent at most
	// once); expired closes when the lease dies without one.
	result  chan leaseResult
	expired chan struct{}
	state   leaseState
}

type leaseState int

const (
	leaseActive leaseState = iota
	leaseDone
	leaseExpired
)

// leaseResult is a worker's posted outcome: the marshalled unit result,
// or the error that kept it from producing one.
type leaseResult struct {
	raw    json.RawMessage
	errMsg string
}

// Grant is the wire form of a granted lease (the POST .../lease body on
// success): everything a worker needs to execute the unit from scratch
// — the full job spec plus the unit key and DfT setting.
type Grant struct {
	Lease       string       `json:"lease"`
	Job         string       `json:"job"`
	DfT         string       `json:"dft"`
	Key         string       `json:"key"`
	Fingerprint string       `json:"fingerprint"`
	TTLMillis   int64        `json:"ttl_ms"`
	Spec        core.JobSpec `json:"spec"`
}

// GrantBatch is the wire form of a batched lease response (?max=K for
// K > 1): up to K independent grants collected into one round-trip.
// Each grant is its own lease — heartbeats, results and expiry stay
// strictly per-unit.
type GrantBatch struct {
	Grants []Grant `json:"grants"`
}

// WorkerStatus is one worker's row in GET /api/v1/workers.
type WorkerStatus struct {
	ID string `json:"id"`
	// Units lists the unit keys the worker currently holds leases on.
	Units []string `json:"units"`
	// LastSeenMillis is how long ago the worker last talked to the
	// daemon (lease call, heartbeat, or result).
	LastSeenMillis int64 `json:"last_seen_ms"`
	// Waiting reports a parked lease long-poll — a connected, idle
	// worker.
	Waiting bool `json:"waiting"`
	// Lifetime totals.
	Leased  int64 `json:"leased"`
	Results int64 `json:"results"`
	Expired int64 `json:"expired"`
}

// workerInfo is the dispatcher's per-worker bookkeeping.
type workerInfo struct {
	id       string
	lastSeen time.Time
	active   map[string]*lease // lease id → lease
	waiting  int               // parked long-polls
	leased   int64
	results  int64
	expired  int64
}

// waiter is one parked lease long-poll. cap is its remaining grant
// capacity: a batched poll (?max=K) parks with cap K and keeps
// absorbing offers until the capacity is spent or the poll departs.
type waiter struct {
	worker string
	jobID  string // "" leases from any job
	cap    int
	grant  chan *lease
}

// batchLinger is how long a batched poll stays parked after its first
// grant, collecting further offers into the same round-trip. Short on
// purpose: the first unit's lease clock is already running, and a
// worker with spare capacity re-parks immediately anyway.
const batchLinger = 15 * time.Millisecond

// dispatcher matches campaign units to parked worker long-polls and
// tracks the resulting leases. Dispatch is pull-model: a unit is
// offered to remote execution only when a worker is already parked
// waiting for one — otherwise the executor declines instantly and the
// unit runs locally. Workers therefore never queue work they are not
// ready to execute, and an idle daemon costs the workers one parked
// request each.
type dispatcher struct {
	ttl  time.Duration
	base context.Context // server base: wakes parked waiters on shutdown
	logf func(format string, args ...any)

	mu      sync.Mutex
	seq     int64
	waiters []*waiter // FIFO
	leases  map[string]*lease
	workers map[string]*workerInfo
}

func newDispatcher(base context.Context, ttl time.Duration, logf func(string, ...any)) *dispatcher {
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	return &dispatcher{
		ttl:     ttl,
		base:    base,
		logf:    logf,
		leases:  map[string]*lease{},
		workers: map[string]*workerInfo{},
	}
}

// worker returns (creating if needed) the bookkeeping row of id, and
// stamps it seen. Callers hold d.mu.
func (d *dispatcher) worker(id string) *workerInfo {
	w, ok := d.workers[id]
	if !ok {
		w = &workerInfo{id: id, active: map[string]*lease{}}
		d.workers[id] = w
	}
	w.lastSeen = time.Now()
	return w
}

// parkN blocks until at least one unit is granted to workerID
// (filtered to jobID when non-empty), the wait elapses (nil slice), or
// the server shuts down (ErrShuttingDown). ctx is the HTTP request's —
// a disconnected worker stops waiting immediately. With max > 1 the
// poll lingers briefly after its first grant, batching up to max units
// into one round-trip; per-unit lease semantics (TTL, heartbeat,
// result) are untouched by the grouping.
func (d *dispatcher) parkN(ctx context.Context, workerID, jobID string, wait time.Duration, max int) ([]*lease, error) {
	if max < 1 {
		max = 1
	}
	w := &waiter{worker: workerID, jobID: jobID, cap: max, grant: make(chan *lease, max)}
	d.mu.Lock()
	if d.base.Err() != nil {
		d.mu.Unlock()
		return nil, ErrShuttingDown
	}
	d.worker(workerID).waiting++
	d.waiters = append(d.waiters, w)
	d.mu.Unlock()

	timer := time.NewTimer(wait)
	defer timer.Stop()
	var granted []*lease
	var err error
	select {
	case l := <-w.grant:
		granted = append(granted, l)
	case <-timer.C:
	case <-ctx.Done():
		err = ctx.Err()
	case <-d.base.Done():
		err = ErrShuttingDown
	}
	if len(granted) > 0 && max > 1 {
		linger := time.NewTimer(batchLinger)
	collect:
		for len(granted) < max {
			select {
			case l := <-w.grant:
				granted = append(granted, l)
			case <-linger.C:
				break collect
			case <-ctx.Done():
				err = ctx.Err()
				break collect
			case <-d.base.Done():
				break collect
			}
		}
		linger.Stop()
	}

	// Depart under the lock: zeroing the capacity stops further offers
	// (they send holding d.mu), so the post-unlock drain collects every
	// grant that raced in — the set is complete and final.
	d.mu.Lock()
	w.cap = 0
	for i, pw := range d.waiters {
		if pw == w {
			d.waiters = append(d.waiters[:i], d.waiters[i+1:]...)
			break
		}
	}
	if wi, ok := d.workers[workerID]; ok {
		wi.waiting--
		wi.lastSeen = time.Now()
	}
	d.mu.Unlock()
	for {
		select {
		case l := <-w.grant:
			granted = append(granted, l)
			continue
		default:
		}
		break
	}
	if err != nil {
		// Disconnected or shutting down: no one is left to answer, so
		// raced-in grants expire and their units re-run locally.
		for _, l := range granted {
			d.expire(l, "granted to a departed waiter")
		}
		return nil, err
	}
	if len(granted) == 0 {
		return nil, nil
	}
	return granted, nil
}

// offer hands the unit to a parked waiter, returning the granted lease
// — or nil when no compatible waiter is parked, which tells the
// executor to run the unit locally. The lease's TTL timer starts now;
// heartbeats renew it. A batched waiter keeps its place in the FIFO
// until its capacity is spent, so consecutive offers group onto one
// round-trip.
func (d *dispatcher) offer(jobID, dft, key string) *lease {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i, w := range d.waiters {
		if w.jobID != "" && w.jobID != jobID {
			continue
		}
		if w.cap <= 0 {
			continue
		}
		w.cap--
		if w.cap == 0 {
			d.waiters = append(d.waiters[:i], d.waiters[i+1:]...)
		}
		d.seq++
		l := &lease{
			id:       fmt.Sprintf("l-%d", d.seq),
			worker:   w.worker,
			jobID:    jobID,
			dft:      dft,
			key:      key,
			deadline: time.Now().Add(d.ttl),
			result:   make(chan leaseResult, 1),
			expired:  make(chan struct{}),
		}
		l.timer = time.AfterFunc(d.ttl, func() { d.expireIfOverdue(l) })
		d.leases[l.id] = l
		wi := d.worker(w.worker)
		wi.active[l.id] = l
		wi.leased++
		w.grant <- l // buffered: the waiter collects it even if departing
		return l
	}
	return nil
}

// expireIfOverdue is the TTL timer body: it re-checks the deadline
// under the lock, because a heartbeat may have renewed the lease after
// the timer fired but before it ran.
func (d *dispatcher) expireIfOverdue(l *lease) {
	d.mu.Lock()
	if l.state != leaseActive || time.Now().Before(l.deadline) {
		d.mu.Unlock()
		return
	}
	d.finish(l, leaseExpired)
	d.mu.Unlock()
	if d.logf != nil {
		d.logf("lease %s (%s on %s): expired, unit re-queued locally", l.id, l.key, l.worker)
	}
}

// expire kills a lease from the daemon side (job cancelled, waiter
// departed). Idempotent.
func (d *dispatcher) expire(l *lease, why string) {
	d.mu.Lock()
	active := l.state == leaseActive
	if active {
		d.finish(l, leaseExpired)
	}
	d.mu.Unlock()
	if active && d.logf != nil {
		d.logf("lease %s (%s on %s): %s", l.id, l.key, l.worker, why)
	}
}

// finish moves an active lease to its terminal state. Callers hold
// d.mu and have checked state == leaseActive.
func (d *dispatcher) finish(l *lease, st leaseState) {
	l.state = st
	if l.timer != nil {
		l.timer.Stop()
	}
	delete(d.leases, l.id)
	if wi, ok := d.workers[l.worker]; ok {
		delete(wi.active, l.id)
		switch st {
		case leaseExpired:
			wi.expired++
		case leaseDone:
			wi.results++
		}
	}
	if st == leaseExpired {
		close(l.expired)
	}
}

// heartbeat renews a lease's TTL. False means the lease is gone —
// expired, completed, or never existed — and the worker should abandon
// the unit: its result would be discarded anyway.
func (d *dispatcher) heartbeat(leaseID string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	l, ok := d.leases[leaseID]
	if !ok || l.state != leaseActive {
		return false
	}
	l.deadline = time.Now().Add(d.ttl)
	l.timer.Reset(d.ttl)
	if wi, ok := d.workers[l.worker]; ok {
		wi.lastSeen = time.Now()
	}
	return true
}

// release is a worker's graceful hand-back of an unfinished lease
// (shutdown mid-unit): the unit re-queues locally exactly as if the
// lease had expired, just without waiting out the TTL. Idempotent —
// releasing a finished or unknown lease is a no-op.
func (d *dispatcher) release(leaseID string) {
	d.mu.Lock()
	l, ok := d.leases[leaseID]
	if ok && l.state == leaseActive {
		d.finish(l, leaseExpired)
	}
	d.mu.Unlock()
}

// postResult delivers a worker's outcome for its leased unit. False
// means the lease no longer owns the unit (expired and re-run locally,
// job cancelled, or already completed) — the result is discarded, which
// is what keeps a slow worker from double-merging a unit the daemon
// already re-ran.
func (d *dispatcher) postResult(leaseID, jobID, key string, res leaseResult) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	l, ok := d.leases[leaseID]
	if !ok || l.state != leaseActive || l.jobID != jobID || l.key != key {
		return false
	}
	d.finish(l, leaseDone)
	if wi, ok := d.workers[l.worker]; ok {
		wi.lastSeen = time.Now()
	}
	l.result <- res // buffered: the executor is the only receiver
	return true
}

// WorkerStatuses snapshots the worker registry, sorted by id.
func (d *dispatcher) WorkerStatuses() []WorkerStatus {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := time.Now()
	out := make([]WorkerStatus, 0, len(d.workers))
	for _, wi := range d.workers {
		ws := WorkerStatus{
			ID:             wi.id,
			LastSeenMillis: now.Sub(wi.lastSeen).Milliseconds(),
			Waiting:        wi.waiting > 0,
			Leased:         wi.leased,
			Results:        wi.results,
			Expired:        wi.expired,
		}
		for _, l := range wi.active {
			ws.Units = append(ws.Units, l.key)
		}
		sort.Strings(ws.Units)
		out = append(out, ws)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// remoteExecutor is the campaign.Executor of one (job, DfT) run: it
// offers each unit to a parked worker and blocks — outside the fair
// gate, so remote units consume no local slot — until the worker's
// result arrives or the lease dies. Units are only ever remote when a
// worker is ready for them; everything else declines instantly into
// the local path, so remote capacity is strictly additive.
type remoteExecutor struct {
	d    *dispatcher
	job  *Job
	dft  string
	dftB bool
	o    *obs.Observer

	mu       sync.Mutex
	poisoned map[string]struct{}
}

func newRemoteExecutor(d *dispatcher, j *Job, dft bool, o *obs.Observer) *remoteExecutor {
	return &remoteExecutor{
		d: d, job: j, dft: core.DfTLabel(dft), dftB: dft, o: o,
		poisoned: map[string]struct{}{},
	}
}

// Execute implements campaign.Executor.
func (x *remoteExecutor) Execute(ctx context.Context, u campaign.Unit) (json.RawMessage, bool, error) {
	x.mu.Lock()
	_, bad := x.poisoned[u.Key]
	x.mu.Unlock()
	if bad {
		return nil, false, nil // failed remotely once: run it locally
	}
	l := x.d.offer(x.job.ID(), x.dft, u.Key)
	if l == nil {
		return nil, false, nil // no worker parked: run it locally
	}
	met := &obs.Metrics{}
	met.Add(obs.CtrUnitsLeased, 1)
	sp := x.o.Start(obs.StageRemote, u.Group, u.Key, x.dftB, met)
	defer sp.End()
	select {
	case res := <-l.result:
		if res.errMsg != "" {
			met.Add(obs.CtrRemoteRetries, 1)
			x.mu.Lock()
			x.poisoned[u.Key] = struct{}{}
			x.mu.Unlock()
			return nil, false, fmt.Errorf("jobserver: worker %s failed unit %s: %s", l.worker, u.Key, res.errMsg)
		}
		met.Add(obs.CtrRemoteResults, 1)
		return res.raw, true, nil
	case <-l.expired:
		met.Add(obs.CtrLeasesExpired, 1)
		return nil, false, nil // dead worker: the unit re-runs locally, now
	case <-ctx.Done():
		x.d.expire(l, "job context cancelled")
		return nil, false, ctx.Err()
	}
}
