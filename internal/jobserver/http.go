package jobserver

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// Handler returns the server's HTTP API:
//
//	POST   /api/v1/jobs              submit a core.JobSpec → job status
//	                                 (201 created, 200 deduped onto an
//	                                 existing run)
//	GET    /api/v1/jobs              list job statuses
//	GET    /api/v1/jobs/{id}         one job's status
//	DELETE /api/v1/jobs/{id}         cancel a live job
//	GET    /api/v1/jobs/{id}/events  progress stream: SSE by default,
//	                                 plain JSONL with ?format=jsonl;
//	                                 ?spans=0 drops per-stage span events
//	GET    /api/v1/jobs/{id}/result  result bytes of one DfT setting
//	                                 (?dft=pre|post, ?wait=1 blocks until
//	                                 the job is terminal)
//	GET    /api/v1/checkpoints       fingerprints held by the Store
//	GET    /api/v1/workers           remote-worker registry
//	GET    /healthz                  liveness
//
// plus the worker-facing lease protocol documented in leasehttp.go.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs", s.handleJobs)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /api/v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /api/v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /api/v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /api/v1/checkpoints", s.handleCheckpoints)
	mux.HandleFunc("POST /api/v1/lease", s.handleLease)
	mux.HandleFunc("POST /api/v1/jobs/{id}/lease", s.handleLease)
	mux.HandleFunc("POST /api/v1/jobs/{id}/units/{key}/result", s.handleUnitResult)
	mux.HandleFunc("POST /api/v1/leases/{lease}/heartbeat", s.handleHeartbeat)
	mux.HandleFunc("DELETE /api/v1/leases/{lease}", s.handleRelease)
	mux.HandleFunc("GET /api/v1/workers", s.handleWorkers)
	return mux
}

// httpError is the JSON error body of every non-2xx response.
type httpError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(httpError{Error: fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// SubmitResponse is the POST /api/v1/jobs body: the job status plus
// whether the submission deduplicated onto an existing run.
type SubmitResponse struct {
	Status
	Deduped bool `json:"deduped"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec core.JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	j, deduped, err := s.Submit(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	code := http.StatusCreated
	if deduped {
		code = http.StatusOK
	}
	writeJSON(w, code, SubmitResponse{Status: j.Status(), Deduped: deduped})
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs()
	statuses := make([]Status, 0, len(jobs))
	for _, j := range jobs {
		statuses = append(statuses, j.Status())
	}
	// Deterministic listing order: by id.
	for i := 1; i < len(statuses); i++ {
		for k := i; k > 0 && statuses[k].ID < statuses[k-1].ID; k-- {
			statuses[k], statuses[k-1] = statuses[k-1], statuses[k]
		}
	}
	writeJSON(w, http.StatusOK, statuses)
}

// jobFor resolves {id} or replies 404.
func (s *Server) jobFor(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
	}
	return j, ok
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.jobFor(w, r); ok {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	j.Cancel()
	writeJSON(w, http.StatusOK, j.Status())
}

// handleEvents streams the job's progress: first a snapshot of the
// current state (state, latest per-DfT progress, available results),
// then a live tail of everything published afterwards, closing with the
// terminal state. The terminal "state" event is always synthesised from
// job state after the run ends, so it survives any backpressure drops
// on the way. A client that disconnects just unsubscribes — publishing
// is non-blocking throughout, so a stalled watcher can never slow down
// or cancel the run it is watching.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	jsonl := r.URL.Query().Get("format") == "jsonl"
	withSpans := r.URL.Query().Get("spans") != "0"

	flusher, _ := w.(http.Flusher)
	if jsonl {
		w.Header().Set("Content-Type", "application/jsonl")
	} else {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.Header().Set("Connection", "keep-alive")
	}
	w.WriteHeader(http.StatusOK)

	write := func(ev Event) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if jsonl {
			_, err = fmt.Fprintf(w, "%s\n", data)
		} else {
			_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
		}
		if err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	snapshot, events, cancelSub := j.subscribe(64)
	defer cancelSub()
	var spans *obs.StreamSub
	spanC := (<-chan obs.StreamEvent)(nil)
	if withSpans {
		spans = j.streamer.Subscribe(256)
		defer spans.Close()
		spanC = spans.C()
	}
	for _, ev := range snapshot {
		if !write(ev) {
			return
		}
	}
	// Span timestamps are relative to the first span this watcher sees —
	// the stream carries durations and ordering, not wall-clock state.
	var epoch time.Time
	haveEpoch := false
	for {
		select {
		case <-r.Context().Done():
			return
		case ev := <-events:
			if !write(ev) {
				return
			}
			if ev.Type == "state" && ev.State != StateRunning {
				return // terminal state reached the tail directly
			}
		case sev := <-spanC:
			if !haveEpoch {
				epoch, haveEpoch = sev.Rec.Start, true
			}
			wire := sev.Rec.Wire(epoch)
			if !write(Event{Type: "span", Job: j.ID(), DfT: core.DfTLabel(sev.Rec.DfT), Span: &wire}) {
				return
			}
		case <-j.Done():
			// Drain whatever is already buffered, then close with the
			// authoritative terminal state (unless the drain already
			// delivered it — backpressure drops are what the synthesis
			// is for, not a second copy).
			for {
				select {
				case ev := <-events:
					if !write(ev) {
						return
					}
					if ev.Type == "state" && ev.State != StateRunning {
						return
					}
					continue
				default:
				}
				break
			}
			st := j.Status()
			write(Event{Type: "state", Job: j.ID(), State: st.State, Error: st.Error})
			return
		}
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	label := r.URL.Query().Get("dft")
	if label == "" {
		if dfts := j.Spec().DfTs(); len(dfts) == 1 {
			label = core.DfTLabel(dfts[0])
		} else {
			writeError(w, http.StatusBadRequest, "job runs multiple DfT settings; pass ?dft=pre|post")
			return
		}
	}
	if label != "pre" && label != "post" {
		writeError(w, http.StatusBadRequest, "bad dft %q (want pre or post)", label)
		return
	}
	if r.URL.Query().Get("wait") == "1" {
		select {
		case <-j.Done():
		case <-r.Context().Done():
			// The client disconnected mid-wait. Writing nothing is
			// deliberate: net/http discards writes after the request
			// context is canceled, so there is no one to address. The
			// wait itself is a bare two-channel select — no server lock
			// is held across it and no goroutine or subscription was
			// created for it — so an abandoned wait leaves no trace and
			// cannot stall the job, other waiters or event watchers.
			return
		}
	}
	data, ok := j.Result(label)
	if !ok {
		st := j.Status()
		if st.State == StateRunning {
			writeError(w, http.StatusConflict, "job %s still running; pass ?wait=1 to block", j.ID())
			return
		}
		writeError(w, http.StatusNotFound, "job %s has no %s result (state %s: %s)",
			j.ID(), label, st.State, st.Error)
		return
	}
	// The stored bytes are exactly what `dotest -json` writes for the
	// same configuration; serve them raw so clients can compare
	// byte-for-byte.
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

func (s *Server) handleCheckpoints(w http.ResponseWriter, r *http.Request) {
	st := s.Store()
	if st == nil {
		writeJSON(w, http.StatusOK, []string{})
		return
	}
	fps, err := st.List()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "list checkpoints: %v", err)
		return
	}
	if fps == nil {
		fps = []string{}
	}
	writeJSON(w, http.StatusOK, fps)
}
