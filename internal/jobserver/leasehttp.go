package jobserver

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"
)

// Lease-protocol HTTP surface. The worker-facing half of the API:
//
//	POST   /api/v1/lease[?max=K]                  lease the next unit(s)
//	                                              of any job (long-poll;
//	                                              K>1 batches grants)
//	POST   /api/v1/jobs/{id}/lease[?max=K]        lease from one job
//	POST   /api/v1/jobs/{id}/units/{key}/result   post a leased unit's
//	                                              outcome
//	POST   /api/v1/leases/{lease}/heartbeat       renew a lease's TTL
//	DELETE /api/v1/leases/{lease}                 release an unfinished
//	                                              lease (graceful stop)
//	GET    /api/v1/workers                        worker registry
//
// Idempotency rule: every worker-side operation on a lease the daemon
// no longer considers active — expired, completed, job cancelled, or
// never granted — answers 410 Gone (release answers 204: releasing a
// dead lease is the desired state). A worker that sees 410 abandons the
// unit; the daemon has already re-queued it locally, so the unit is
// never lost and never merged twice.

// LeaseRequest is the POST .../lease body.
type LeaseRequest struct {
	// Worker identifies the worker (stable across its lease calls).
	Worker string `json:"worker"`
	// WaitMillis bounds the long-poll (0 selects 30 s; capped at 5 min).
	WaitMillis int64 `json:"wait_ms"`
}

// ResultRequest is the POST .../units/{key}/result body: the lease that
// owns the unit plus either the marshalled result or the error that
// kept the worker from producing one.
type ResultRequest struct {
	Lease string `json:"lease"`
	// Result is the unit's marshalled value — the exact bytes
	// core.ExecuteUnit's result marshals to, merged daemon-side through
	// the restored-unit decode path.
	Result json.RawMessage `json:"result,omitempty"`
	// Error reports a failed unit; the daemon re-runs it locally.
	Error string `json:"error,omitempty"`
}

// maxLeaseBatch caps the ?max=K grant batching: far beyond any sane
// per-worker concurrency, small enough that one response body stays
// cheap to build and parse.
const maxLeaseBatch = 64

// handleLease is the long-poll: park until a unit is granted, the wait
// elapses (204), or the server shuts down (503). With an {id} path
// segment the lease is scoped to that job. ?max=K (K > 1) batches up
// to K grants into the response ({"grants":[...]}); without it the
// wire shape is the original single Grant object, so old workers keep
// working unchanged.
func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	if s.disp == nil {
		writeError(w, http.StatusServiceUnavailable, "remote dispatch is disabled")
		return
	}
	var req LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad lease request: %v", err)
		return
	}
	if req.Worker == "" {
		writeError(w, http.StatusBadRequest, "lease request names no worker")
		return
	}
	jobID := r.PathValue("id")
	if jobID != "" {
		if _, ok := s.Job(jobID); !ok {
			writeError(w, http.StatusNotFound, "no job %q", jobID)
			return
		}
	}
	max := 1
	if ms := r.URL.Query().Get("max"); ms != "" {
		v, err := strconv.Atoi(ms)
		if err != nil || v < 1 {
			writeError(w, http.StatusBadRequest, "bad max %q", ms)
			return
		}
		max = v
		if max > maxLeaseBatch {
			max = maxLeaseBatch
		}
	}
	wait := time.Duration(req.WaitMillis) * time.Millisecond
	if wait <= 0 {
		wait = 30 * time.Second
	}
	if wait > 5*time.Minute {
		wait = 5 * time.Minute
	}
	leases, err := s.disp.parkN(r.Context(), req.Worker, jobID, wait, max)
	switch {
	case errors.Is(err, ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		return // worker disconnected mid-poll; no one to answer
	case len(leases) == 0:
		w.WriteHeader(http.StatusNoContent) // no work within the wait
		return
	}
	grants := make([]Grant, 0, len(leases))
	for _, l := range leases {
		j, ok := s.Job(l.jobID)
		if !ok { // unreachable: jobs outlive their leases
			s.disp.expire(l, "job vanished")
			continue
		}
		grants = append(grants, Grant{
			Lease:       l.id,
			Job:         l.jobID,
			DfT:         l.dft,
			Key:         l.key,
			Fingerprint: j.Fingerprint(),
			TTLMillis:   s.disp.ttl.Milliseconds(),
			Spec:        j.Spec(),
		})
	}
	if len(grants) == 0 {
		writeError(w, http.StatusInternalServerError, "jobs vanished under %d leases", len(leases))
		return
	}
	if max == 1 {
		writeJSON(w, http.StatusOK, grants[0])
		return
	}
	writeJSON(w, http.StatusOK, GrantBatch{Grants: grants})
}

// handleUnitResult accepts a leased unit's outcome. 410 Gone means the
// lease no longer owns the unit — the daemon discarded the payload.
func (s *Server) handleUnitResult(w http.ResponseWriter, r *http.Request) {
	if s.disp == nil {
		writeError(w, http.StatusServiceUnavailable, "remote dispatch is disabled")
		return
	}
	var req ResultRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad result: %v", err)
		return
	}
	if req.Lease == "" {
		writeError(w, http.StatusBadRequest, "result names no lease")
		return
	}
	if req.Error == "" && len(req.Result) == 0 {
		writeError(w, http.StatusBadRequest, "result carries neither payload nor error")
		return
	}
	ok := s.disp.postResult(req.Lease, r.PathValue("id"), r.PathValue("key"),
		leaseResult{raw: req.Result, errMsg: req.Error})
	if !ok {
		writeError(w, http.StatusGone, "lease %s no longer owns unit %s", req.Lease, r.PathValue("key"))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleHeartbeat renews a lease (410 when it is gone — the worker
// should abandon the unit).
func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	if s.disp == nil {
		writeError(w, http.StatusServiceUnavailable, "remote dispatch is disabled")
		return
	}
	if !s.disp.heartbeat(r.PathValue("lease")) {
		writeError(w, http.StatusGone, "lease %s is gone", r.PathValue("lease"))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleRelease hands an unfinished lease back (idempotent 204).
func (s *Server) handleRelease(w http.ResponseWriter, r *http.Request) {
	if s.disp == nil {
		writeError(w, http.StatusServiceUnavailable, "remote dispatch is disabled")
		return
	}
	s.disp.release(r.PathValue("lease"))
	w.WriteHeader(http.StatusNoContent)
}

// handleWorkers lists the worker registry.
func (s *Server) handleWorkers(w http.ResponseWriter, r *http.Request) {
	if s.disp == nil {
		writeJSON(w, http.StatusOK, []WorkerStatus{})
		return
	}
	ws := s.disp.WorkerStatuses()
	if ws == nil {
		ws = []WorkerStatus{}
	}
	writeJSON(w, http.StatusOK, ws)
}
