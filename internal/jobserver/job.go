package jobserver

import (
	"context"
	"sort"
	"sync"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/report"
)

// State is a job's lifecycle state.
type State string

// The job states. A job is terminal in StateDone, StateFailed and
// StateCancelled; only the latter two restart on resubmission.
const (
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Event is one entry of a job's progress stream, serialised verbatim
// onto SSE and JSONL watchers.
type Event struct {
	// Type is "state", "progress", "result" or "span".
	Type string `json:"type"`
	// Job is the job id.
	Job string `json:"job"`
	// State accompanies "state" events.
	State State `json:"state,omitempty"`
	// Error carries the failure cause of a terminal "state" event.
	Error string `json:"error,omitempty"`
	// DfT labels the design-for-test setting ("pre"/"post") of
	// "progress" and "result" events.
	DfT string `json:"dft,omitempty"`
	// Progress accompanies "progress" events: the campaign's live unit
	// counters.
	Progress *campaign.Progress `json:"progress,omitempty"`
	// Span accompanies "span" events: one finished methodology-stage
	// span in the JSONL trace wire form, timed from the first span the
	// watcher saw.
	Span *obs.WireRecord `json:"span,omitempty"`
}

// Status is a job's queryable summary (the GET /api/v1/jobs/{id} body).
type Status struct {
	ID          string                       `json:"id"`
	State       State                        `json:"state"`
	Error       string                       `json:"error,omitempty"`
	Spec        core.JobSpec                 `json:"spec"`
	Fingerprint string                       `json:"fingerprint"`
	Submits     int                          `json:"submits"`
	Progress    map[string]campaign.Progress `json:"progress,omitempty"`
	Results     []string                     `json:"results,omitempty"`
}

// Job is one deduplicated campaign run. All methods are safe for
// concurrent use; the zero value is not valid (jobs come from Submit).
type Job struct {
	id     string
	fp     string
	spec   core.JobSpec
	srv    *Server
	cancel context.CancelFunc

	// streamer receives every methodology-stage span of the run; SSE
	// watchers subscribe to it for "span" events.
	streamer *obs.Streamer

	// done closes when the job reaches a terminal state. Watchers and
	// result waiters select on it.
	done chan struct{}

	mu       sync.Mutex
	state    State
	errMsg   string
	submits  int
	progress map[string]campaign.Progress // latest counters per DfT label
	results  map[string][]byte            // report.JSON bytes per DfT label
	subs     map[chan Event]struct{}
}

// newJob builds a job in StateRunning; the caller launches run().
func newJob(s *Server, id, fp string, spec core.JobSpec) *Job {
	return &Job{
		id:       id,
		fp:       fp,
		spec:     spec,
		srv:      s,
		streamer: obs.NewStreamer(),
		done:     make(chan struct{}),
		state:    StateRunning,
		submits:  1,
		progress: map[string]campaign.Progress{},
		results:  map[string][]byte{},
		subs:     map[chan Event]struct{}{},
	}
}

// ID returns the job id (the hash of its fingerprint).
func (j *Job) ID() string { return j.id }

// Fingerprint returns the job-level configuration fingerprint.
func (j *Job) Fingerprint() string { return j.fp }

// Spec returns the submitted spec.
func (j *Job) Spec() core.JobSpec { return j.spec }

// Done closes when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// State reads the current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Cancel aborts a live run (no-op once terminal).
func (j *Job) Cancel() { j.cancel() }

// noteSubmit counts a deduplicated submission.
func (j *Job) noteSubmit() {
	j.mu.Lock()
	j.submits++
	j.mu.Unlock()
}

// Status snapshots the job's queryable summary.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:          j.id,
		State:       j.state,
		Error:       j.errMsg,
		Spec:        j.spec,
		Fingerprint: j.fp,
		Submits:     j.submits,
	}
	if len(j.progress) > 0 {
		st.Progress = make(map[string]campaign.Progress, len(j.progress))
		for k, v := range j.progress {
			st.Progress[k] = v
		}
	}
	for label := range j.results {
		st.Results = append(st.Results, label)
	}
	sort.Strings(st.Results)
	return st
}

// Result returns the stored report.JSON bytes of one DfT label. The
// bytes are exactly what `dotest -json` writes for the same
// configuration — watchers comparing against a CLI run compare raw.
func (j *Job) Result(label string) ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	data, ok := j.results[label]
	return data, ok
}

// subscribe attaches a watcher: it returns the snapshot of the job's
// current state (a "state" event plus the latest "progress" and
// "result" event per DfT setting) and a channel tailing everything
// published afterwards. Snapshot and subscription are taken under one
// lock, so no event falls in the gap between them — a mid-run watcher
// sees snapshot-then-tail with nothing lost and nothing duplicated.
// Publishing never blocks: a watcher that stops draining has events
// dropped, and the terminal state is re-synthesised by the HTTP handler
// from job state, so a slow or disconnected client can neither stall
// nor cancel the run.
func (j *Job) subscribe(buf int) (snapshot []Event, ch chan Event, cancelSub func()) {
	if buf < 1 {
		buf = 1
	}
	ch = make(chan Event, buf)
	j.mu.Lock()
	defer j.mu.Unlock()
	snapshot = append(snapshot, Event{Type: "state", Job: j.id, State: j.state, Error: j.errMsg})
	for _, label := range orderedLabels(j.progress) {
		p := j.progress[label]
		snapshot = append(snapshot, Event{Type: "progress", Job: j.id, DfT: label, Progress: &p})
	}
	for _, label := range orderedLabels(j.results) {
		snapshot = append(snapshot, Event{Type: "result", Job: j.id, DfT: label})
	}
	j.subs[ch] = struct{}{}
	return snapshot, ch, func() {
		j.mu.Lock()
		delete(j.subs, ch)
		j.mu.Unlock()
	}
}

// orderedLabels sorts map keys for deterministic snapshot order.
func orderedLabels[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// publish fans an event out to every subscriber without blocking.
func (j *Job) publish(ev Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// setProgress records and publishes one progress tick.
func (j *Job) setProgress(label string, p campaign.Progress) {
	j.mu.Lock()
	j.progress[label] = p
	j.mu.Unlock()
	j.publish(Event{Type: "progress", Job: j.id, DfT: label, Progress: &p})
}

// setResult stores one DfT setting's result bytes.
func (j *Job) setResult(label string, data []byte) {
	j.mu.Lock()
	j.results[label] = data
	j.mu.Unlock()
	j.publish(Event{Type: "result", Job: j.id, DfT: label})
}

// finish moves the job to a terminal state and releases done.
func (j *Job) finish(state State, errMsg string) {
	j.mu.Lock()
	j.state = state
	j.errMsg = errMsg
	j.mu.Unlock()
	j.publish(Event{Type: "state", Job: j.id, State: state, Error: errMsg})
	close(j.done)
}

// workers resolves the per-job worker pool size. The pool may be wider
// than the global budget: the FairGate tenant admits each unit, so
// surplus workers just park at the gate and the budget is shared
// fairly across jobs.
func (j *Job) workers() int {
	if j.spec.Workers > 0 {
		return j.spec.Workers
	}
	return j.srv.opts.Budget
}

// run executes the campaign: one RunParallel per DfT setting of the
// spec, every unit admitted through the server's fair gate, checkpoints
// flowing through the server's Store under the per-DfT configuration
// fingerprint. Failure or cancellation of one setting is terminal for
// the whole job (the checkpoint keeps the finished units).
func (j *Job) run(ctx context.Context) {
	defer j.srv.wg.Done()
	tenant := j.srv.gate.Tenant()
	defer tenant.Close()

	cfg := j.spec.Config()
	for _, dft := range j.spec.DfTs() {
		label := core.DfTLabel(dft)
		p := core.NewPipeline(cfg)
		p.Obs = obs.New(obs.NewAgg(), j.streamer)
		// The good-space Monte Carlo stays on the local budget; only the
		// campaign pool gets the remote surplus below.
		p.GoodSpaceWorkers = j.workers()
		opts := campaign.Options{
			// Surplus workers beyond the local budget serve remote
			// leases: a unit picked by any worker is first offered to a
			// parked campaignw long-poll (no local slot held while it
			// runs remotely) and otherwise parks at the fair gate, so
			// connected workers add capacity without ever displacing
			// local throughput.
			Workers:     j.workers() + j.srv.remoteSlots(),
			Fingerprint: core.Fingerprint(cfg, dft),
			Store:       j.srv.opts.Store,
			Resume:      j.srv.opts.Store != nil,
			Gate:        tenant,
			OnProgress:  func(pr campaign.Progress) { j.setProgress(label, pr) },
		}
		if j.srv.disp != nil {
			opts.Executor = newRemoteExecutor(j.srv.disp, j, dft, p.Obs)
		}
		run, out, err := p.RunParallel(ctx, dft, opts)
		if err != nil {
			if ctx.Err() != nil {
				j.srv.logf("job %s: cancelled (%s): checkpoint flushed", j.id, label)
				j.finish(StateCancelled, err.Error())
			} else {
				j.srv.logf("job %s: failed (%s): %v", j.id, label, err)
				j.finish(StateFailed, err.Error())
			}
			return
		}
		data, jerr := report.JSON(run)
		if jerr != nil {
			j.finish(StateFailed, jerr.Error())
			return
		}
		j.setResult(label, data)
		if out != nil {
			j.srv.logf("job %s: %s done (%d units, %d restored)",
				j.id, label, out.Stats.Completed+out.Stats.Restored, out.Stats.Restored)
		}
	}
	j.finish(StateDone, "")
}
