package jobserver

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/report"
)

// testSpec is the tiny campaign the server tests run: small enough to
// finish in seconds, large enough to exercise every pipeline stage and
// produce several checkpointable units.
var testSpec = core.JobSpec{
	Quick: true, Defects: 400, MCSamples: 3,
	MaxClassesPerMacro: 1, SkipNonCat: true, DfT: "pre",
}

// refOnce computes the reference result bytes once per test binary: the
// direct core.RunParallel + report.JSON of testSpec — what `dotest`
// with the same parameters writes.
var (
	refOnce  sync.Once
	refBytes []byte
	refErr   error
)

func referenceResult(t *testing.T) []byte {
	t.Helper()
	refOnce.Do(func() {
		run, _, err := core.RunParallel(context.Background(),
			testSpec.Config(), false, campaign.Options{Workers: 4})
		if err != nil {
			refErr = err
			return
		}
		refBytes, refErr = report.JSON(run)
	})
	if refErr != nil {
		t.Fatalf("reference run: %v", refErr)
	}
	return refBytes
}

// newTestServer builds a server plus its HTTP front end, torn down with
// the test.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(opts)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, hs
}

func postSpec(t *testing.T, base string, spec core.JobSpec) (SubmitResponse, int) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out SubmitResponse
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusCreated {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return out, resp.StatusCode
}

func fetchResult(t *testing.T, base, id, dft string) []byte {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/api/v1/jobs/%s/result?dft=%s&wait=1", base, id, dft))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result status %d: %s", resp.StatusCode, data)
	}
	return data
}

// TestSubmitDedupRace: N concurrent POSTs of the same spec collapse
// into exactly one campaign run, and every submitter fetches
// byte-identical results — which are in turn byte-identical to the
// direct CLI-equivalent run of the same spec.
func TestSubmitDedupRace(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real campaign")
	}
	srv, hs := newTestServer(t, Options{Budget: 4})

	const n = 6
	var wg sync.WaitGroup
	ids := make([]string, n)
	results := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, code := postSpec(t, hs.URL, testSpec)
			if code != http.StatusCreated && code != http.StatusOK {
				t.Errorf("submit status %d", code)
				return
			}
			ids[i] = out.ID
			results[i] = fetchResult(t, hs.URL, out.ID, "pre")
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if got := srv.RunsStarted(); got != 1 {
		t.Fatalf("%d runs started for %d identical submissions", got, n)
	}
	ref := referenceResult(t)
	for i := 0; i < n; i++ {
		if ids[i] != ids[0] {
			t.Fatalf("submission %d got job %s, submission 0 got %s", i, ids[i], ids[0])
		}
		if !bytes.Equal(results[i], ref) {
			t.Fatalf("submission %d result differs from the direct run (%d vs %d bytes)",
				i, len(results[i]), len(ref))
		}
	}
	// The job counted every submission even though only one ran.
	j, ok := srv.Job(ids[0])
	if !ok || j.Status().Submits != n {
		t.Fatalf("submits = %d, want %d", j.Status().Submits, n)
	}
}

// readEvents consumes a JSONL event stream until the decoder breaks or
// the stream ends, returning every parsed event.
func readEvents(t *testing.T, r io.Reader, stopAtTerminal bool) []Event {
	t.Helper()
	var events []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
		if stopAtTerminal && ev.Type == "state" && ev.State != StateRunning {
			break
		}
	}
	return events
}

// TestEventsSnapshotThenTail: a watcher attaching mid-run first gets the
// snapshot (a state event leading), then the live tail through to the
// terminal state; a second watcher that disconnects early neither
// blocks nor cancels the run.
func TestEventsSnapshotThenTail(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real campaign")
	}
	srv, hs := newTestServer(t, Options{Budget: 4})
	out, code := postSpec(t, hs.URL, testSpec)
	if code != http.StatusCreated {
		t.Fatalf("submit status %d", code)
	}

	eventsURL := fmt.Sprintf("%s/api/v1/jobs/%s/events?format=jsonl", hs.URL, out.ID)

	// The early-disconnect watcher: read one event, then drop the
	// connection while the job is (very likely) still running.
	resp, err := http.Get(eventsURL)
	if err != nil {
		t.Fatal(err)
	}
	line, err := bufio.NewReader(resp.Body).ReadString('\n')
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var first Event
	if err := json.Unmarshal([]byte(line), &first); err != nil || first.Type != "state" {
		t.Fatalf("disconnecting watcher's first event %q: %v", line, err)
	}

	// The persistent watcher: snapshot leads with the state event, the
	// tail ends with the terminal state.
	resp2, err := http.Get(eventsURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if ct := resp2.Header.Get("Content-Type"); ct != "application/jsonl" {
		t.Fatalf("content type %q", ct)
	}
	events := readEvents(t, resp2.Body, true)
	if len(events) == 0 || events[0].Type != "state" || events[0].Job != out.ID {
		t.Fatalf("first event %+v", events[0])
	}
	last := events[len(events)-1]
	if last.Type != "state" || last.State != StateDone {
		t.Fatalf("terminal event %+v (error %q)", last, last.Error)
	}
	var progress, spans int
	for _, ev := range events {
		switch ev.Type {
		case "progress":
			progress++
			if ev.DfT != "pre" || ev.Progress == nil {
				t.Fatalf("progress event %+v", ev)
			}
		case "span":
			spans++
			if ev.Span == nil || ev.Span.Stage == "" {
				t.Fatalf("span event %+v", ev)
			}
		}
	}
	if progress == 0 {
		t.Fatal("no progress events in the stream")
	}
	if spans == 0 {
		t.Fatal("no span events in the stream")
	}

	// The early disconnect did not take the job down with it.
	j, _ := srv.Job(out.ID)
	if st := j.State(); st != StateDone {
		t.Fatalf("job state %s after watcher disconnect", st)
	}
}

// TestSSEFraming: the default (non-JSONL) stream uses SSE event framing.
func TestSSEFraming(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real campaign")
	}
	_, hs := newTestServer(t, Options{Budget: 4})
	out, _ := postSpec(t, hs.URL, testSpec)
	resp, err := http.Get(fmt.Sprintf("%s/api/v1/jobs/%s/events?spans=0", hs.URL, out.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var lines []string
	for len(lines) < 2 && sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if len(lines) < 2 || !strings.HasPrefix(lines[0], "event: state") ||
		!strings.HasPrefix(lines[1], "data: {") {
		t.Fatalf("SSE framing: %q", lines)
	}
}

// TestRestartResume: a job killed with its server resumes from the
// shared DirStore on a fresh server — the restored unit count is
// visible in the progress counters and the final bytes still match the
// direct run exactly.
func TestRestartResume(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real campaign")
	}
	store := campaign.DirStore{Dir: t.TempDir()}

	srv1 := New(Options{Budget: 4, Store: store})
	j1, deduped, err := srv1.Submit(testSpec)
	if err != nil || deduped {
		t.Fatalf("submit: %v deduped=%v", err, deduped)
	}
	// Let the run make real progress (at least one checkpointable unit),
	// then kill the server the way a daemon shutdown would.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if st := j1.Status(); st.Progress["pre"].Completed >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("run made no progress")
		}
		time.Sleep(10 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	if err := srv1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()
	if st := j1.State(); st != StateCancelled && st != StateDone {
		t.Fatalf("job state %s after shutdown", st)
	}
	fps, err := store.List()
	if err != nil || len(fps) == 0 {
		t.Fatalf("no checkpoint persisted: %v, %v", fps, err)
	}

	// A fresh server over the same store: the same spec resumes instead
	// of recomputing from scratch.
	srv2, hs := newTestServer(t, Options{Budget: 4, Store: store})
	out, code := postSpec(t, hs.URL, testSpec)
	if code != http.StatusCreated {
		t.Fatalf("resubmit status %d", code)
	}
	if out.ID != j1.ID() {
		t.Fatalf("job id changed across restart: %s vs %s", out.ID, j1.ID())
	}
	data := fetchResult(t, hs.URL, out.ID, "pre")
	if !bytes.Equal(data, referenceResult(t)) {
		t.Fatal("resumed result differs from the direct run")
	}
	j2, _ := srv2.Job(out.ID)
	final := j2.Status()
	if j1.State() == StateCancelled && final.Progress["pre"].Restored == 0 {
		t.Fatalf("nothing restored on resume: %+v", final.Progress["pre"])
	}
}

// TestCancelAndResubmit: DELETE cancels a live job; resubmitting the
// same spec restarts it under the same id instead of deduping onto the
// cancelled run.
func TestCancelAndResubmit(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real campaign")
	}
	srv, hs := newTestServer(t, Options{Budget: 4})
	out, _ := postSpec(t, hs.URL, testSpec)

	req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/api/v1/jobs/"+out.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	j, _ := srv.Job(out.ID)
	select {
	case <-j.Done():
	case <-time.After(60 * time.Second):
		t.Fatal("cancel did not terminate the job")
	}
	if st := j.State(); st != StateCancelled {
		t.Fatalf("state %s after cancel", st)
	}

	out2, code := postSpec(t, hs.URL, testSpec)
	if code != http.StatusCreated {
		t.Fatalf("resubmit of a cancelled job: status %d (want a restart)", code)
	}
	if out2.ID != out.ID {
		t.Fatalf("restart changed the job id: %s vs %s", out2.ID, out.ID)
	}
	if got := srv.RunsStarted(); got != 2 {
		t.Fatalf("runs started = %d, want 2", got)
	}
	if !bytes.Equal(fetchResult(t, hs.URL, out2.ID, "pre"), referenceResult(t)) {
		t.Fatal("restarted result differs from the direct run")
	}
}

// TestHTTPValidation: malformed requests are rejected with structured
// errors and never reach the campaign engine.
func TestHTTPValidation(t *testing.T) {
	srv, hs := newTestServer(t, Options{Budget: 1})

	post := func(body string) (int, string) {
		resp, err := http.Post(hs.URL+"/api/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(data)
	}
	if code, body := post(`{"dft":"sideways"}`); code != http.StatusBadRequest ||
		!strings.Contains(body, "dft") {
		t.Fatalf("bad dft: %d %s", code, body)
	}
	if code, _ := post(`{"defects":-1}`); code != http.StatusBadRequest {
		t.Fatalf("negative field accepted: %d", code)
	}
	if code, _ := post(`{"no_such_field":1}`); code != http.StatusBadRequest {
		t.Fatalf("unknown field accepted: %d", code)
	}
	if code, _ := post(`not json`); code != http.StatusBadRequest {
		t.Fatalf("non-JSON accepted: %d", code)
	}
	if srv.RunsStarted() != 0 {
		t.Fatalf("%d runs started by invalid submissions", srv.RunsStarted())
	}

	for _, path := range []string{
		"/api/v1/jobs/jdeadbeef",
		"/api/v1/jobs/jdeadbeef/events",
		"/api/v1/jobs/jdeadbeef/result",
	} {
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: status %d, want 404", path, resp.StatusCode)
		}
	}

	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	// Empty checkpoint listing (no store configured).
	resp, err = http.Get(hs.URL + "/api/v1/checkpoints")
	if err != nil {
		t.Fatal(err)
	}
	var fps []string
	if err := json.NewDecoder(resp.Body).Decode(&fps); err != nil || len(fps) != 0 {
		t.Fatalf("checkpoints: %v, %v", fps, err)
	}
	resp.Body.Close()
}

// TestDispatcherBatchGrants pins the batched-lease protocol at the
// dispatcher level, where it is deterministic: a waiter parked with
// capacity 3 absorbs three consecutive offers into one round-trip, a
// fourth offer finds no waiter (the capacity is spent and the waiter
// has left the FIFO), and each grant is an independent lease with its
// own id, result channel and TTL timer.
func TestDispatcherBatchGrants(t *testing.T) {
	d := newDispatcher(context.Background(), time.Minute, nil)

	type parkOut struct {
		leases []*lease
		err    error
	}
	out := make(chan parkOut, 1)
	go func() {
		ls, err := d.parkN(context.Background(), "batcher", "", 10*time.Second, 3)
		out <- parkOut{ls, err}
	}()

	// Deterministic barrier: the waiter is in the FIFO once the registry
	// reports it parked.
	deadline := time.Now().Add(5 * time.Second)
	for {
		ws := d.WorkerStatuses()
		if len(ws) == 1 && ws[0].Waiting {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("waiter never parked")
		}
		time.Sleep(time.Millisecond)
	}

	var offered []*lease
	for _, key := range []string{"u1", "u2", "u3"} {
		l := d.offer("j1", "pre", key)
		if l == nil {
			t.Fatalf("offer %s found no waiter", key)
		}
		offered = append(offered, l)
	}
	// Capacity spent: the next offer must decline into the local path.
	if l := d.offer("j1", "pre", "u4"); l != nil {
		t.Fatalf("offer past the waiter capacity granted %s", l.id)
	}

	got := <-out
	if got.err != nil {
		t.Fatalf("parkN: %v", got.err)
	}
	if len(got.leases) != 3 {
		t.Fatalf("parkN returned %d leases, want 3", len(got.leases))
	}
	seen := map[string]bool{}
	for i, l := range got.leases {
		if l != offered[i] {
			t.Fatalf("grant %d is not the offered lease (order lost)", i)
		}
		if seen[l.id] {
			t.Fatalf("duplicate lease id %s in batch", l.id)
		}
		seen[l.id] = true
		if l.key != fmt.Sprintf("u%d", i+1) || l.jobID != "j1" || l.dft != "pre" {
			t.Fatalf("grant %d: %+v", i, l)
		}
	}
	// Per-unit semantics survive batching: heartbeat and result act on
	// one lease without touching its batch-mates.
	if !d.heartbeat(got.leases[0].id) {
		t.Fatal("heartbeat on a batched lease failed")
	}
	if !d.postResult(got.leases[1].id, "j1", "u2", leaseResult{raw: json.RawMessage(`1`)}) {
		t.Fatal("result on a batched lease refused")
	}
	if !d.heartbeat(got.leases[0].id) || !d.heartbeat(got.leases[2].id) {
		t.Fatal("sibling leases died with their batch-mate's result")
	}
	if d.heartbeat(got.leases[1].id) {
		t.Fatal("completed lease still heartbeats")
	}
}

// TestSubmitAfterShutdown: a shut-down server refuses new work.
func TestSubmitAfterShutdown(t *testing.T) {
	srv := New(Options{Budget: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if _, _, err := srv.Submit(testSpec); err == nil {
		t.Fatal("submit accepted after shutdown")
	}
}

// TestResultWaitClientDisconnect pins the abandoned-wait contract of
// GET .../result?wait=1: a client that disconnects mid-wait gets its
// handler released promptly (no body is written — there is no one left
// to write to) and leaves nothing behind — the job keeps running and a
// concurrent ?wait=1 watcher still receives the full, correct result.
func TestResultWaitClientDisconnect(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real campaign")
	}
	_, hs := newTestServer(t, Options{})
	sub, code := postSpec(t, hs.URL, testSpec)
	if code != http.StatusCreated && code != http.StatusOK {
		t.Fatalf("submit status %d", code)
	}
	url := fmt.Sprintf("%s/api/v1/jobs/%s/result?dft=pre&wait=1", hs.URL, sub.ID)

	// The surviving watcher, racing the doomed wait on the same job.
	type watchOut struct {
		data []byte
		err  error
	}
	watch := make(chan watchOut, 1)
	go func() {
		resp, err := http.Get(url)
		if err != nil {
			watch <- watchOut{err: err}
			return
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err == nil && resp.StatusCode != http.StatusOK {
			err = fmt.Errorf("watcher status %d: %s", resp.StatusCode, data)
		}
		watch <- watchOut{data: data, err: err}
	}()

	// The doomed wait: same endpoint, canceled while the job is still
	// running (the test campaign takes seconds; the cancel lands in ms).
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	doomed := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		doomed <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-doomed:
		if err == nil || !strings.Contains(err.Error(), context.Canceled.Error()) {
			t.Fatalf("doomed wait returned %v, want context cancellation", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled ?wait=1 request did not return")
	}

	out := <-watch
	if out.err != nil {
		t.Fatalf("watcher after canceled wait: %v", out.err)
	}
	if !bytes.Equal(out.data, referenceResult(t)) {
		t.Fatal("watcher result diverged after a concurrent canceled wait")
	}
}

// TestVehicleSplitsJobs: two submissions identical except for the
// vehicle resolution must get distinct job ids and must not single-flight
// onto one run — a 6-bit campaign's results are not an 8-bit campaign's.
func TestVehicleSplitsJobs(t *testing.T) {
	srv, hs := newTestServer(t, Options{Budget: 2})

	out8, code8 := postSpec(t, hs.URL, testSpec)
	spec6 := testSpec
	spec6.Bits = 6
	out6, code6 := postSpec(t, hs.URL, spec6)
	if code8 != http.StatusCreated || code6 != http.StatusCreated {
		t.Fatalf("submit statuses %d/%d, want both 201", code8, code6)
	}
	if out8.ID == out6.ID {
		t.Fatalf("6-bit and 8-bit submissions share job id %s", out8.ID)
	}
	if out8.Deduped || out6.Deduped {
		t.Fatalf("vehicle-distinct submissions deduped: 8-bit=%v 6-bit=%v",
			out8.Deduped, out6.Deduped)
	}
	// An explicit default-bits resubmission is the same campaign as the
	// unset-bits one and must dedup onto it.
	specDefault := testSpec
	specDefault.Bits = 8
	outDef, _ := postSpec(t, hs.URL, specDefault)
	if outDef.ID != out8.ID || !outDef.Deduped {
		t.Fatalf("explicit default bits did not dedup: id %s vs %s (deduped %v)",
			outDef.ID, out8.ID, outDef.Deduped)
	}

	// The ids were the point — cancel both runs rather than simulating
	// two campaigns to completion.
	for _, id := range []string{out8.ID, out6.ID} {
		req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/api/v1/jobs/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		j, ok := srv.Job(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		select {
		case <-j.Done():
		case <-time.After(60 * time.Second):
			t.Fatalf("cancel did not terminate job %s", id)
		}
	}
}
