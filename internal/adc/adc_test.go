package adc

import (
	"fmt"
	"math"
	"sort"
	"testing"
	"testing/quick"
)

const (
	vlo = 1.0
	vhi = 3.0
)

func fresh() *ADC { return New(256, vlo, vhi) }

func TestFaultFreeNoMissingCodes(t *testing.T) {
	a := fresh()
	res := a.MissingCodeTest(vlo, vhi, 1000)
	if res.HasMissing() {
		t.Fatalf("fault-free ADC has missing codes: %v", res.Missing)
	}
	if res.Samples != 1000 {
		t.Fatalf("Samples = %d", res.Samples)
	}
	if res.String() == "" {
		t.Fatal("String")
	}
}

func TestConvertMonotoneFaultFree(t *testing.T) {
	a := fresh()
	prev := -1
	for v := vlo - 0.1; v <= vhi+0.1; v += 0.001 {
		c := a.Convert(v)
		if c < prev {
			t.Fatalf("non-monotone at %g: %d < %d", v, c, prev)
		}
		prev = c
	}
	if a.Convert(vlo-1) != 0 {
		t.Fatal("below range must give 0")
	}
	if a.Convert(vhi+1) != 256 {
		t.Fatal("above range must give full scale")
	}
}

func TestStuckComparatorCausesMissingCode(t *testing.T) {
	a := fresh()
	a.Comps[100].Stuck = 1 // always fires
	res := a.MissingCodeTest(vlo, vhi, 1000)
	if !res.HasMissing() {
		t.Fatal("stuck comparator must produce a missing code")
	}
	b := fresh()
	b.Comps[100].Stuck = 0
	if !b.MissingCodeTest(vlo, vhi, 1000).HasMissing() {
		t.Fatal("stuck-low comparator must produce a missing code")
	}
}

func TestLargeOffsetCausesMissingCode(t *testing.T) {
	lsb := (vhi - vlo) / 256
	a := fresh()
	a.Comps[128].Offset = 1.6 * lsb // > 1 LSB: code 128's band vanishes
	if !a.MissingCodeTest(vlo, vhi, 2000).HasMissing() {
		t.Fatal("offset > 1 LSB must kill a code")
	}
	// A small offset (< 1 LSB) must NOT create a missing code.
	b := fresh()
	b.Comps[128].Offset = 0.4 * lsb
	if b.MissingCodeTest(vlo, vhi, 2000).HasMissing() {
		t.Fatal("offset < 1 LSB must not kill a code")
	}
}

func TestCommonOffsetNoMissingCode(t *testing.T) {
	// A bias fault shifts EVERY comparator equally: the ramp overdrive
	// still reaches all codes — the paper's hard-to-detect case.
	a := fresh()
	for i := range a.Comps {
		a.Comps[i].Offset = 0.005 // 0.64 LSB common shift
	}
	if a.MissingCodeTest(vlo, vhi, 2000).HasMissing() {
		t.Fatal("common-mode shift must not create missing codes")
	}
}

func TestErraticComparator(t *testing.T) {
	a := fresh()
	a.Comps[50].Erratic = true
	// Erratic behaviour scrambles codes around tap 50; the counting
	// decoder turns it into ±1 code noise. Run the ramp: code histogram
	// may or may not lose a code, but Convert must stay in range.
	for v := vlo; v <= vhi; v += 0.01 {
		c := a.Convert(v)
		if c < 0 || c > 256 {
			t.Fatalf("out of range code %d", c)
		}
	}
}

func TestShortedAdjacentTapsMissingCode(t *testing.T) {
	// A ladder short making taps k and k+1 equal removes code k+1's band.
	a := fresh()
	a.Taps[60] = a.Taps[61]
	if !a.MissingCodeTest(vlo, vhi, 2000).HasMissing() {
		t.Fatal("equal adjacent taps must produce a missing code")
	}
}

func TestCountingDecode(t *testing.T) {
	if CountingDecode([]bool{true, true, false}) != 2 {
		t.Fatal("count")
	}
	if CountingDecode(nil) != 0 {
		t.Fatal("empty")
	}
	// Bubble: 1,0,1 counts 2 — no explosion.
	if CountingDecode([]bool{true, false, true}) != 2 {
		t.Fatal("bubble")
	}
}

func TestCustomDecoder(t *testing.T) {
	a := fresh()
	called := false
	a.Decode = func(th []bool) int {
		called = true
		return CountingDecode(th)
	}
	a.Convert(2.0)
	if !called {
		t.Fatal("custom decoder not used")
	}
	// A broken decoder mapping everything to 0 loses all codes but 0.
	b := fresh()
	b.Decode = func([]bool) int { return 0 }
	res := b.MissingCodeTest(vlo, vhi, 500)
	if len(res.Missing) != 256 {
		t.Fatalf("broken decoder missing = %d, want 256", len(res.Missing))
	}
}

func TestINLDNLFaultFree(t *testing.T) {
	a := New(64, vlo, vhi) // smaller for speed
	inl, dnl := a.INLDNL(vlo, vhi)
	if inl > 0.1 || dnl > 0.1 {
		t.Fatalf("fault-free INL/DNL = %g/%g, want ~0", inl, dnl)
	}
	// A 0.5 LSB tap error shows up in INL and DNL.
	lsb := (vhi - vlo) / 64
	a.Taps[30] += 0.5 * lsb
	inl2, dnl2 := a.INLDNL(vlo, vhi)
	if inl2 < 0.4 || dnl2 < 0.4 {
		t.Fatalf("tap error INL/DNL = %g/%g, want ≥0.4", inl2, dnl2)
	}
}

// Property: the histogram of a ramp test sums to the sample count and the
// fault-free converter covers every code for any sample count ≥ 4× codes.
func TestQuickRampHistogram(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := 16 + int(nRaw%4)*16 // 16..64 taps
		a := New(n, vlo, vhi)
		samples := 4 * (n + 1)
		res := a.MissingCodeTest(vlo, vhi, samples)
		total := 0
		for _, h := range res.Hist {
			total += h
		}
		return total == samples && !res.HasMissing()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: a single stuck slice produces at least one missing code for
// any tap position.
func TestQuickStuckAlwaysDetected(t *testing.T) {
	f := func(posRaw uint8, val bool) bool {
		a := New(64, vlo, vhi)
		pos := int(posRaw) % 64
		if val {
			a.Comps[pos].Stuck = 1
		} else {
			a.Comps[pos].Stuck = 0
		}
		return a.MissingCodeTest(vlo, vhi, 1000).HasMissing()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the binary search over prefix-maximum thresholds that
// MissingCodeTest uses in the allDefault case returns exactly the
// linear first-zero scan's code, for arbitrary (non-monotonic, faulted)
// tap and offset vectors. This is the exactness contract that lets the
// ramp test bypass the O(n) scan without perturbing a single histogram
// bin.
func TestQuickPrefixMaxSearchMatchesScan(t *testing.T) {
	f := func(seed uint64, probeRaw uint8) bool {
		n := 32 + int(seed%5)*16
		a := New(n, vlo, vhi)
		state := seed
		next := func() float64 {
			state = state*6364136223846793005 + 1442695040888963407
			return float64(state>>40)/float64(1<<24) - 0.5
		}
		for i := range a.Taps {
			// Scramble hard: large tap excursions and offsets, so the
			// threshold vector is thoroughly non-monotonic.
			a.Taps[i] += next() * (vhi - vlo)
			a.Comps[i].Offset = next() * 0.3
		}
		pmax := a.prefixMaxThresholds()
		if pmax == nil {
			return false
		}
		// Probe across and beyond the scrambled range, plus exact
		// threshold values (the tie-break cases).
		probes := []float64{
			vlo - 2, vhi + 2,
			vlo + float64(probeRaw)/255*(vhi-vlo),
			a.Taps[int(probeRaw)%n] + a.Comps[int(probeRaw)%n].Offset,
		}
		for _, v := range probes {
			want := a.convertDefault(v)
			if got := sort.SearchFloat64s(pmax, v); got != want {
				t.Logf("v=%g: search %d, scan %d", v, got, want)
				return false
			}
			// Convert must agree too (same comparisons, full thermometer).
			if got := a.Convert(v); got != want {
				t.Logf("v=%g: Convert %d, scan %d", v, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPrefixMaxNaNFallsBack pins the NaN guard: an unordered threshold
// cannot be represented by the prefix maximum, so the fast path must
// refuse and MissingCodeTest must keep the (identical-result) scan.
func TestPrefixMaxNaNFallsBack(t *testing.T) {
	a := fresh()
	a.Comps[13].Offset = math.NaN()
	if a.prefixMaxThresholds() != nil {
		t.Fatal("prefixMaxThresholds accepted a NaN threshold")
	}
	res := a.MissingCodeTest(vlo, vhi, 500)
	total := 0
	for _, h := range res.Hist {
		total += h
	}
	if total != 500 {
		t.Fatalf("histogram lost samples under NaN fallback: %d/500", total)
	}
}

func TestTapSpacing(t *testing.T) {
	a := fresh()
	lsb := (vhi - vlo) / 256
	for i := 1; i < len(a.Taps); i++ {
		if d := a.Taps[i] - a.Taps[i-1]; math.Abs(d-lsb) > 1e-12 {
			t.Fatalf("tap spacing %g at %d, want %g", d, i, lsb)
		}
	}
	if a.Codes() != 257 {
		t.Fatalf("Codes = %d", a.Codes())
	}
}

// TestFamilyInvariants pins the behavioural model's invariants across the
// vehicle family — the model is size-parametric, so the properties the
// 8-bit tests above rely on must hold at every resolution the campaign
// can select.
func TestFamilyInvariants(t *testing.T) {
	for _, n := range []int{64, 256, 1024} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			a := New(n, vlo, vhi)
			if got := a.Codes(); got != n+1 {
				t.Fatalf("Codes() = %d, want %d", got, n+1)
			}
			// Tap spacing is one LSB everywhere, with tap i at
			// vlo + (i+0.5)·LSB.
			lsb := (vhi - vlo) / float64(n)
			for i, tap := range a.Taps {
				want := vlo + (float64(i)+0.5)*lsb
				if math.Abs(tap-want) > 1e-12 {
					t.Fatalf("tap %d = %v, want %v", i, tap, want)
				}
			}
			// Conversion clamps to the code range and is monotone on a
			// fault-free converter.
			if got := a.Convert(vlo - 1); got != 0 {
				t.Fatalf("below-range code %d", got)
			}
			if got := a.Convert(vhi + 1); got != n {
				t.Fatalf("above-range code %d", got)
			}
			// The ramp must cover every code when it carries at least a
			// couple of samples per code (the campaign scales the
			// stimulus with the vehicle — Vehicle.TestSamples).
			samples := 4 * n
			if samples < 1000 {
				samples = 1000
			}
			if res := a.MissingCodeTest(vlo, vhi, samples); res.HasMissing() {
				t.Fatalf("fault-free missing codes: %v", res.Missing)
			}
			// A stuck comparator anywhere in the array is detected.
			for _, k := range []int{0, n / 2, n - 1} {
				b := New(n, vlo, vhi)
				b.Comps[k].Stuck = 1
				if res := b.MissingCodeTest(vlo, vhi, samples); !res.HasMissing() {
					t.Fatalf("stuck comparator %d undetected", k)
				}
			}
		})
	}
}
