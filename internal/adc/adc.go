// Package adc provides the high-level (behavioural) model of the N-bit
// full-flash converter family whose 8-bit member is the paper's vehicle.
// The
// defect-oriented test path uses this model for the fault-signature
// sensitisation/propagation step: a macro-level fault signature (a
// comparator offset or stuck output, a shifted reference tap, a broken
// decoder) is plugged into the model and the circuit-edge missing-code
// test decides whether the signature is voltage-detectable.
package adc

import (
	"fmt"
	"math"
	"sort"
)

// StuckNone marks a comparator that is not stuck.
const StuckNone = -1

// Comparator is the behavioural model of one comparator/flipflop slice.
type Comparator struct {
	// Offset is the input-referred offset voltage added to the
	// comparison threshold.
	Offset float64
	// Stuck forces the output (0 or 1); StuckNone disables.
	Stuck int
	// Erratic makes the slice output garbage (the "Mixed" signature):
	// the decision toggles pseudo-randomly per sample.
	Erratic bool
}

// Decoder converts a thermometer code to a binary output code.
type Decoder func(thermo []bool) int

// ADC is the behavioural flash converter: a resistive reference ladder's
// tap voltages, one comparator per tap, and a thermometer decoder.
type ADC struct {
	// Taps are the reference voltages, ascending in the fault-free case.
	Taps []float64
	// Comps hold the per-slice behavioural parameters (same length).
	Comps []Comparator
	// Decode maps the thermometer code to the output number; nil uses
	// FirstZeroDecode, the transition-detecting decoder of the paper's
	// converter.
	Decode Decoder

	sampleSeq uint64    // drives the deterministic Erratic toggles
	thermo    []bool    // per-instance Convert scratch (ADC is not concurrency-safe)
	pmax      []float64 // per-instance prefixMaxThresholds scratch
}

// New builds a fault-free n-tap ADC spanning [vlo, vhi]: n = 2^N for the
// vehicle family (the paper's 8-bit converter has 2^8 reference voltages
// and comparators, codes 0..2^8-1).
func New(n int, vlo, vhi float64) *ADC {
	a := &ADC{
		Taps:  make([]float64, n),
		Comps: make([]Comparator, n),
	}
	for i := 0; i < n; i++ {
		// Tap i at vlo + (i+0.5) LSB: code k spans one LSB around its
		// centre.
		a.Taps[i] = vlo + (float64(i)+0.5)*(vhi-vlo)/float64(n)
		a.Comps[i].Stuck = StuckNone
	}
	return a
}

// Codes returns the number of output codes (2^n taps → codes 0..n).
func (a *ADC) Codes() int { return len(a.Taps) + 1 }

// CountingDecode is the robust thermometer decoder: the output code is the
// number of ones. Bubbles shift the code but never explode.
func CountingDecode(thermo []bool) int {
	n := 0
	for _, b := range thermo {
		if b {
			n++
		}
	}
	return n
}

// FirstZeroDecode models the transition-detecting ROM decoder of real
// flash converters (and of the paper's ADC): the output code is the
// position of the lowest unfired comparator. A comparator firing out of
// order therefore skips codes — exactly why an offset beyond 1 LSB causes
// a missing code at the circuit edge. This is the default decoder.
func FirstZeroDecode(thermo []bool) int {
	for i, b := range thermo {
		if !b {
			return i
		}
	}
	return len(thermo)
}

// allDefault reports whether every slice is a plain comparator (no
// stuck outputs, no erratic toggles) decoded by the default
// FirstZeroDecode — the common fault-free-or-offset-only case where
// Convert reduces to finding the first unfired comparator.
func (a *ADC) allDefault() bool {
	if a.Decode != nil {
		return false
	}
	for i := range a.Comps {
		if c := &a.Comps[i]; c.Stuck != StuckNone || c.Erratic {
			return false
		}
	}
	return true
}

// convertDefault is Convert specialised to the allDefault case: with
// FirstZeroDecode the first comparator that does not fire decides the
// code, so the scan stops there. The comparisons are exactly Convert's,
// so the result is identical — only the already-determined tail is
// skipped.
func (a *ADC) convertDefault(vin float64) int {
	for i := range a.Taps {
		if !(vin > a.Taps[i]+a.Comps[i].Offset) {
			return i
		}
	}
	return len(a.Taps)
}

// prefixMaxThresholds returns the running maximum of the effective
// comparison thresholds Taps[i]+Offset[i]. The first-zero code of an
// arbitrary (even non-monotonic, faulted) threshold vector is the
// smallest i with vin <= t[i], which — because the prefix maximum is
// non-decreasing and first reaches >= vin exactly at that i — equals
// the lower-bound index of vin in this array. That turns the O(n)
// convertDefault scan into an O(log n) binary search with bit-identical
// results. Returns nil when any threshold is NaN (unordered against
// everything, which the prefix maximum cannot represent); callers then
// keep the linear scan.
func (a *ADC) prefixMaxThresholds() []float64 {
	if cap(a.pmax) < len(a.Taps) {
		a.pmax = make([]float64, len(a.Taps))
	}
	pmax := a.pmax[:len(a.Taps)]
	m := math.Inf(-1)
	for i := range a.Taps {
		t := a.Taps[i] + a.Comps[i].Offset
		if math.IsNaN(t) {
			return nil
		}
		if t > m {
			m = t
		}
		pmax[i] = m
	}
	return pmax
}

// Convert produces the output code for one input sample.
func (a *ADC) Convert(vin float64) int {
	if len(a.thermo) < len(a.Taps) {
		a.thermo = make([]bool, len(a.Taps))
	}
	thermo := a.thermo[:len(a.Taps)]
	for i := range a.Taps {
		c := &a.Comps[i]
		switch {
		case c.Stuck == 0:
			thermo[i] = false
		case c.Stuck == 1:
			thermo[i] = true
		case c.Erratic:
			a.sampleSeq = a.sampleSeq*6364136223846793005 + 1442695040888963407
			thermo[i] = a.sampleSeq>>63 == 1
		default:
			thermo[i] = vin > a.Taps[i]+c.Offset
		}
	}
	dec := a.Decode
	if dec == nil {
		dec = FirstZeroDecode
	}
	code := dec(thermo)
	if code < 0 {
		code = 0
	}
	if code > len(a.Taps) {
		code = len(a.Taps)
	}
	return code
}

// RampResult is the outcome of a triangular-wave missing-code test.
type RampResult struct {
	// Hist counts occurrences of each code.
	Hist []int
	// Missing lists the codes that never occurred.
	Missing []int
	// Samples is the number of samples taken.
	Samples int
}

// HasMissing reports whether any code failed to appear.
func (r *RampResult) HasMissing() bool { return len(r.Missing) > 0 }

// MissingCodeTest applies the paper's missing-code test: a triangular
// waveform sweeping slightly beyond both ends of the conversion range,
// sampled `samples` times (1 000 in the paper), checking that every output
// number occurs.
func (a *ADC) MissingCodeTest(vlo, vhi float64, samples int) *RampResult {
	res := &RampResult{Hist: make([]int, a.Codes()), Samples: samples}
	span := vhi - vlo
	over := 0.02 * span // sweep 2 % beyond the range ends
	var pmax []float64
	if a.allDefault() {
		pmax = a.prefixMaxThresholds()
	}
	for i := 0; i < samples; i++ {
		ph := 2 * float64(i) / float64(samples) // 0..2 → up and down
		var v float64
		if ph <= 1 {
			v = vlo - over + ph*(span+2*over)
		} else {
			v = vhi + over - (ph-1)*(span+2*over)
		}
		if pmax != nil {
			res.Hist[sort.SearchFloat64s(pmax, v)]++
		} else {
			res.Hist[a.Convert(v)]++
		}
	}
	for code, n := range res.Hist {
		if n == 0 {
			res.Missing = append(res.Missing, code)
		}
	}
	return res
}

// INLDNL computes the integral and differential nonlinearity (in LSB) from
// a dense ramp of the converter's transfer curve, for the ladder example
// and the DfT studies. It returns the worst absolute INL and DNL.
func (a *ADC) INLDNL(vlo, vhi float64) (inl, dnl float64) {
	n := a.Codes()
	lsb := (vhi - vlo) / float64(n-1)
	// Locate each code transition by fine sweep.
	trans := make([]float64, 0, n)
	prev := a.Convert(vlo - lsb)
	steps := (n - 1) * 64
	for i := 0; i <= steps; i++ {
		v := vlo - lsb + (vhi-vlo+2*lsb)*float64(i)/float64(steps)
		c := a.Convert(v)
		for c > prev {
			trans = append(trans, v)
			prev++
		}
		if c > prev {
			prev = c
		}
	}
	for k := 1; k < len(trans); k++ {
		w := (trans[k] - trans[k-1]) / lsb
		if d := math.Abs(w - 1); d > dnl {
			dnl = d
		}
	}
	for k := 0; k < len(trans); k++ {
		ideal := vlo + (float64(k)+0.5)*lsb
		if d := math.Abs((trans[k] - ideal) / lsb); d > inl {
			inl = d
		}
	}
	return inl, dnl
}

// String summarises the ramp result.
func (r *RampResult) String() string {
	if !r.HasMissing() {
		return fmt.Sprintf("all %d codes present in %d samples", len(r.Hist), r.Samples)
	}
	return fmt.Sprintf("%d missing codes (first %v) in %d samples", len(r.Missing), r.Missing[0], r.Samples)
}
