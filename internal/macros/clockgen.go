package macros

import (
	"context"
	"fmt"
	"math"

	"repro/internal/faults"
	"repro/internal/layout"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/signature"
	"repro/internal/spice"
)

// ClockgenMacro is the clock generator: per phase a four-inverter buffer
// chain (progressively sized) from the timing input phi to the heavily
// loaded distribution line clk. It is a digital cell: its quiescent
// supply current is (near) zero in every static state, which is why the
// paper found 93.8 % of its faults IDDQ-detectable.
// The cell itself is resolution-independent; the Veh field keeps the
// constructor uniform across the macro family.
type ClockgenMacro struct {
	// Veh is the vehicle spec (unused by the circuit: one buffer chain
	// per phase regardless of resolution).
	Veh Vehicle
}

// NewClockgen returns the clock generator macro of the given vehicle.
func NewClockgen(veh Vehicle) *ClockgenMacro { return &ClockgenMacro{Veh: veh} }

// Name implements Macro.
func (m *ClockgenMacro) Name() string { return "clockgen" }

// Count implements Macro.
func (m *ClockgenMacro) Count() int { return 1 }

// chain inverter widths (PMOS; NMOS is half).
var cgWidths = []float64{4, 8, 16, 32}

// buildClockgenCircuit constructs the standalone clock generator with
// static phase inputs.
func (m *ClockgenMacro) buildClockgenCircuit(phis [3]float64, v Variation) *netlist.Builder {
	b := netlist.NewBuilder()
	m.buildClockgenInto(b, phis, v)
	return b
}

// buildClockgenInto runs the construction against the given builder — a
// plain builder for a simulation circuit, a recording one for the
// rebind binding (one construction path, so the two cannot drift).
func (m *ClockgenMacro) buildClockgenInto(b *netlist.Builder, phis [3]float64, v Variation) {
	vdd := VDD * v.VddScale
	b.Vsrc("vddd", "vddd", "0", netlist.DC(vdd))
	nm, pm := nmosModel(v), pmosModel(v)
	for i := 1; i <= 3; i++ {
		b.Vsrc(fmt.Sprintf("vphi%d", i), fmt.Sprintf("phi%d", i), "0", netlist.DC(phis[i-1]*vdd))
		in := fmt.Sprintf("phi%d", i)
		for st, w := range cgWidths {
			out := fmt.Sprintf("cg%d_%d", i, st)
			if st == len(cgWidths)-1 {
				out = fmt.Sprintf("clk%d", i)
			}
			b.MOS(fmt.Sprintf("cg.mp%d_%d", i, st), out, in, "vddd", "vddd", w, 1, pm)
			b.MOS(fmt.Sprintf("cg.mn%d_%d", i, st), out, in, "0", "0", w/2, 1, nm)
			in = out
		}
	}
}

// clockgen test states: the three one-hot phase patterns plus all-idle.
var cgStates = [][3]float64{
	{1, 0, 0},
	{0, 1, 0},
	{0, 0, 1},
	{0, 0, 0},
}

// Respond implements Macro: a DC operating point per static state, with
// IDDQ and output-level observations. One engine serves all four states
// — the states differ only in the phase-source DC levels, which are
// retuned between operating points (B-side only, so each state's solve
// is bit-identical to a per-state fresh build: Newton restarts from the
// zero vector every time).
func (m *ClockgenMacro) Respond(ctx context.Context, f *faults.Fault, opt RespondOpts) (*signature.Response, error) {
	resp := &signature.Response{Currents: map[string]float64{}}
	vdd := VDD * opt.Var.VddScale
	stuck := false
	deviant := false
	io := faults.InjectOptions{NonCat: opt.NonCat}
	isp := opt.span(obs.StageInject, m.Name())
	key := engineKey{macro: m.Name(), fault: faultKey(f, io)}
	eng, release, err := checkoutEngine(opt, engineCheckout{
		key: key,
		f:   f, io: io,
		baseBinding: func() *netlist.Binding {
			return opt.Pool.baseBinding(key, opt.Var, func(bind *netlist.Binding) {
				m.buildClockgenInto(netlist.NewRecorder(bind), cgStates[0], opt.Var)
			})
		},
		build: func() *netlist.Builder { return m.buildClockgenCircuit(cgStates[0], opt.Var) },
	})
	isp.End()
	if err != nil {
		return nil, err
	}
	if release != nil {
		defer release()
	}
	for si, st := range cgStates {
		sp := opt.span(obs.StageFaultSim, m.Name())
		for i := 1; i <= 3; i++ {
			if err := eng.RetuneVSource(fmt.Sprintf("vphi%d", i), netlist.DC(st[i-1]*vdd)); err != nil {
				sp.End()
				return nil, err
			}
		}
		sol, err := eng.OP(ctx)
		sp.End()
		if err != nil {
			if f == nil || spice.IsCancelled(err) {
				return nil, err
			}
			resp.Voltage = signature.VSigMixed
			resp.MissingCode = true
			resp.SimError = err
			// Preserve key set: fill remaining states with zeros.
			for sj := range cgStates {
				k := fmt.Sprintf("iddq.s%d", sj)
				if _, ok := resp.Currents[k]; !ok {
					resp.Currents[k] = 0
				}
			}
			resp.Currents["iin.phi"] = 0
			return resp, nil
		}
		resp.Currents[fmt.Sprintf("iddq.s%d", si)] = sol.I("vddd")
		var iin float64
		for i := 1; i <= 3; i++ {
			if a := math.Abs(sol.I(fmt.Sprintf("vphi%d", i))); a > iin {
				iin = a
			}
		}
		if v, ok := resp.Currents["iin.phi"]; !ok || iin > v {
			resp.Currents["iin.phi"] = iin
		}
		// Chain of four inverters is non-inverting: clk_i follows phi_i.
		for i := 1; i <= 3; i++ {
			want := st[i-1] * vdd
			got := sol.V(fmt.Sprintf("clk%d", i))
			dev := math.Abs(got - want)
			switch {
			case dev > 0.5*vdd:
				stuck = true
			case dev > 0.25:
				deviant = true
			}
		}
	}
	if opt.CurrentsOnly {
		return resp, nil
	}
	csp := opt.span(obs.StageClassify, m.Name())
	switch {
	case stuck:
		// A dead clock kills every comparator: massive missing codes.
		resp.Voltage = signature.VSigStuck
		resp.MissingCode = true
	case deviant:
		resp.Voltage = signature.VSigClock
	default:
		resp.Voltage = signature.VSigNone
	}
	csp.End()
	return resp, nil
}

// Layout implements Macro: three buffer chains in NMOS/PMOS rows with the
// phase inputs entering on the left and the fat clock lines leaving on
// the right in metal2. The dft flag does not change the clock generator.
func (m *ClockgenMacro) Layout(bool) *layout.Cell {
	b := layout.NewBuilder("clockgen")
	b.DefaultWidth = 1.2
	var devs []devPlace
	for i := 1; i <= 3; i++ {
		in := fmt.Sprintf("phi%d", i)
		y := float64(10 + (i-1)*26)
		for st := range cgWidths {
			out := fmt.Sprintf("cg%d_%d", i, st)
			if st == len(cgWidths)-1 {
				out = fmt.Sprintf("clk%d", i)
			}
			x := float64(8 + st*12)
			devs = append(devs,
				devPlace{name: fmt.Sprintf("cg.mn%d_%d", i, st), d: out, g: in, s: "vss", x: x, y: y},
				devPlace{name: fmt.Sprintf("cg.mp%d_%d", i, st), d: out, g: in, s: "vddd", x: x, y: y + 12, pmos: true},
			)
			in = out
		}
	}
	terms := placeDevices(b, devs, "vddd")
	trunkY := map[string]float64{"vss": 3, "vddd": 87}
	for i := 1; i <= 3; i++ {
		base := float64(16 + (i-1)*26)
		trunkY[fmt.Sprintf("phi%d", i)] = base
		trunkY[fmt.Sprintf("clk%d", i)] = base + 2
		for st := 0; st < len(cgWidths)-1; st++ {
			trunkY[fmt.Sprintf("cg%d_%d", i, st)] = base + 3.5 + 1.5*float64(st)
		}
	}
	lineX := map[string]float64{
		"clk1": 62, "clk2": 65, "clk3": 68,
		"vddd": 72, "vss": 75,
		"phi1": 79, "phi2": 82, "phi3": 85,
	}
	routeNets(b, terms, trunkY, lineX)
	drawLines(b, lineX, 2, 90)
	b.C.MarkPort("phi1", "phi2", "phi3", "clk1", "clk2", "clk3", "vddd", "vss")
	return b.C
}
