package macros

import (
	"context"
	"math"
	"testing"

	"repro/internal/defectsim"
	"repro/internal/faults"
	"repro/internal/signature"
)

func TestComparatorFaultFreeDecisions(t *testing.T) {
	m := NewComparator(DefaultVehicle())
	opt := RespondOpts{Var: Nominal()}
	lo, err := m.runOnce(context.Background(), vinLow, nil, opt, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lo.failed {
		t.Fatal("fault-free transient failed")
	}
	if lo.decision != 0 {
		t.Fatalf("decision(vin<vref) = %d (out=%.3g), want 0", lo.decision, lo.outV)
	}
	hi, err := m.runOnce(context.Background(), vinHigh, nil, opt, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if hi.decision != 1 {
		t.Fatalf("decision(vin>vref) = %d (out=%.3g), want 1", hi.decision, hi.outV)
	}
	if lo.clockDeviant || hi.clockDeviant {
		t.Fatal("fault-free clocks must not deviate")
	}
	// Class-A slice draws bias-scale current; sampling adds the leak.
	if lo.ivdd[1] < 20e-6 || lo.ivdd[1] > 2e-3 {
		t.Fatalf("amplify-phase slice current = %g", lo.ivdd[1])
	}
	if lo.ivdd[0] < lo.ivdd[1] {
		t.Fatalf("sampling current %g should exceed amplify %g (flipflop leak)", lo.ivdd[0], lo.ivdd[1])
	}
	// Digital supply is quiescent outside switching.
	if math.Abs(lo.iddq[1]) > 1e-6 {
		t.Fatalf("IDDQ = %g, want ~0", lo.iddq[1])
	}
}

func TestComparatorSmallInputResolved(t *testing.T) {
	m := NewComparator(DefaultVehicle())
	opt := RespondOpts{Var: Nominal()}
	// 4 mV above the design trip point must resolve to 1; 4 mV below
	// to 0 (the trip point includes the systematic charge-injection
	// offset, as in silicon).
	nomOff, err := m.nominalOffset(context.Background(), false, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	trip := m.VRef + nomOff
	up, err := m.runOnce(context.Background(), trip+4e-3, nil, opt, 0, nil)
	if err != nil || up.failed {
		t.Fatalf("up: %v failed=%v", err, up != nil && up.failed)
	}
	if up.decision != 1 {
		t.Fatalf("decision(vref+4mV) = %d (out=%.3g)", up.decision, up.outV)
	}
	dn, err := m.runOnce(context.Background(), trip-4e-3, nil, opt, 0, nil)
	if err != nil || dn.failed {
		t.Fatal("down failed")
	}
	if dn.decision != 0 {
		t.Fatalf("decision(vref-4mV) = %d (out=%.3g)", dn.decision, dn.outV)
	}
}

func TestComparatorFaultFreeResponse(t *testing.T) {
	m := NewComparator(DefaultVehicle())
	resp, err := m.Respond(context.Background(), nil, RespondOpts{Var: Nominal()})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Voltage != signature.VSigNone {
		t.Fatalf("fault-free voltage signature = %v (offset %.4g)", resp.Voltage, resp.OffsetV)
	}
	if math.Abs(resp.OffsetV) > DefaultVehicle().OffsetLimit() {
		t.Fatalf("fault-free offset = %g", resp.OffsetV)
	}
	if len(resp.Currents) != 22 {
		t.Fatalf("measurement count = %d, want 22", len(resp.Currents))
	}
}

func TestComparatorDfTRemovesLeak(t *testing.T) {
	m := NewComparator(DefaultVehicle())
	pre, err := m.Respond(context.Background(), nil, RespondOpts{Var: Nominal(), CurrentsOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	post, err := m.Respond(context.Background(), nil, RespondOpts{Var: Nominal(), DfT: true, CurrentsOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	dropped := pre.Currents["slice.ivdd.samp.lo"] - post.Currents["slice.ivdd.samp.lo"]
	if dropped < 0.5*FFLeakNominal {
		t.Fatalf("DfT must remove the sampling leak; dropped %g", dropped)
	}
}

func TestComparatorStuckFault(t *testing.T) {
	m := NewComparator(DefaultVehicle())
	// A low-ohmic short from o1 to vss keeps o1 low: q reads 0, out
	// stuck high.
	f := &faults.Fault{Kind: faults.Short, Nets: []string{"o1", "vss"}, Res: 0.2}
	resp, err := m.Respond(context.Background(), f, RespondOpts{Var: Nominal()})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Voltage != signature.VSigStuck && resp.Voltage != signature.VSigMixed {
		t.Fatalf("o1-vss short signature = %v, want stuck/mixed", resp.Voltage)
	}
}

func TestComparatorSupplyShortDrawsCurrent(t *testing.T) {
	m := NewComparator(DefaultVehicle())
	// A metal short across the slice supply rails: the canonical
	// massive-IVdd defect.
	f := &faults.Fault{Kind: faults.Short, Nets: []string{"vdda", "vss"}, Res: 0.2}
	resp, err := m.Respond(context.Background(), f, RespondOpts{Var: Nominal(), CurrentsOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	nom, err := m.Respond(context.Background(), nil, RespondOpts{Var: Nominal(), CurrentsOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	d := resp.Currents["slice.ivdd.latch.hi"] - nom.Currents["slice.ivdd.latch.hi"]
	if d < 0.1 {
		t.Fatalf("rail short current delta = %g, want huge", d)
	}
}

func TestComparatorClockShortRaisesIDDQ(t *testing.T) {
	m := NewComparator(DefaultVehicle())
	// clk1-clk2 short: the two clock buffers fight in every phase.
	f := &faults.Fault{Kind: faults.Short, Nets: []string{"clk1", "clk2"}, Res: 0.2}
	resp, err := m.Respond(context.Background(), f, RespondOpts{Var: Nominal(), CurrentsOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	nom, err := m.Respond(context.Background(), nil, RespondOpts{Var: Nominal(), CurrentsOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for _, ph := range phaseNames {
		if d := resp.Currents["iddq."+ph.name+".lo"] - nom.Currents["iddq."+ph.name+".lo"]; d > worst {
			worst = d
		}
	}
	if worst < 100e-6 {
		t.Fatalf("clock short IDDQ delta = %g, want > 100 µA", worst)
	}
}

func TestComparatorBiasBiasShortSmallEffect(t *testing.T) {
	m := NewComparator(DefaultVehicle())
	// The paper's hard case: a short between the two similar bias lines
	// barely changes anything.
	f := &faults.Fault{Kind: faults.Short, Nets: []string{"vbn1", "vbn2"}, Res: 0.2}
	resp, err := m.Respond(context.Background(), f, RespondOpts{Var: Nominal()})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Voltage == signature.VSigStuck || resp.Voltage == signature.VSigMixed {
		t.Fatalf("bias-bias short must not break the comparator: %v", resp.Voltage)
	}
	nom, err := m.Respond(context.Background(), nil, RespondOpts{Var: Nominal(), CurrentsOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	d := math.Abs(resp.Currents["slice.ivdd.amp.lo"] - nom.Currents["slice.ivdd.amp.lo"])
	if d > 50e-6 {
		t.Fatalf("bias-bias short slice delta = %g, want tiny (< 50 µA)", d)
	}
}

func TestComparatorLayoutConnectivity(t *testing.T) {
	for _, dft := range []bool{false, true} {
		cell := comparatorLayout(dft)
		comps := defectsim.CheckConnectivity(cell)
		for net, n := range comps {
			if n != 1 {
				t.Errorf("dft=%v: net %q has %d components", dft, net, n)
			}
		}
		if cell.Area() <= 0 {
			t.Fatal("empty layout")
		}
	}
}

func TestComparatorLayoutDfTReordersBias(t *testing.T) {
	pre := comparatorLayout(false)
	post := comparatorLayout(true)
	preX := biasLineX(t, pre)
	postX := biasLineX(t, post)
	if !(preX["vbn1"] < preX["vbn2"] && preX["vbn2"] < preX["vbp1"]) {
		t.Fatalf("pre-DfT order wrong: %v", preX)
	}
	if !(postX["vbn1"] < postX["vbp1"] && postX["vbp1"] < postX["vbn2"]) {
		t.Fatalf("post-DfT order wrong: %v", postX)
	}
}
