package macros

import (
	"context"
	"math"
	"testing"

	"repro/internal/defectsim"
	"repro/internal/faults"
	"repro/internal/signature"
)

// --- Ladder ---

func TestLadderFaultFree(t *testing.T) {
	l := NewLadder(DefaultVehicle())
	resp, err := l.Respond(context.Background(), nil, RespondOpts{Var: Nominal()})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Voltage != signature.VSigNone || resp.MissingCode {
		t.Fatalf("fault-free ladder: %v missing=%v", resp.Voltage, resp.MissingCode)
	}
	// String current = 2 V / 2048 Ω ≈ 0.98 mA at both terminals.
	want := (VRefHi - VRefLo) / (DefaultVehicle().RSeg() * float64(DefaultVehicle().LadderSegments()))
	for _, k := range []string{"iin.vref.hi", "iin.vref.lo"} {
		if got := resp.Currents[k]; math.Abs(got-want)/want > 0.02 {
			t.Fatalf("%s = %g, want ≈%g", k, got, want)
		}
	}
}

func TestLadderRhoScaleRatiometric(t *testing.T) {
	l := NewLadder(DefaultVehicle())
	v := Nominal()
	v.RhoScale = 1.05
	resp, err := l.Respond(context.Background(), nil, RespondOpts{Var: v})
	if err != nil {
		t.Fatal(err)
	}
	// Uniform rho change shifts current but no tap deviation.
	if resp.MissingCode || resp.OffsetV > 1e-9 {
		t.Fatalf("uniform rho must be ratiometric: off=%g", resp.OffsetV)
	}
}

func TestLadderAdjacentTapShortVoltageOnly(t *testing.T) {
	l := NewLadder(DefaultVehicle())
	f := &faults.Fault{Kind: faults.Short, Nets: []string{tapName(100), tapName(101)}, Res: 0.2}
	resp, err := l.Respond(context.Background(), f, RespondOpts{Var: Nominal()})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.MissingCode {
		t.Fatal("adjacent-tap short must kill a code")
	}
	// Current change is 1 segment of 256: ~0.4 %, tiny.
	nom := (VRefHi - VRefLo) / (DefaultVehicle().RSeg() * float64(DefaultVehicle().LadderSegments()))
	if d := math.Abs(resp.Currents["iin.vref.hi"]-nom) / nom; d > 0.01 {
		t.Fatalf("adjacent short current delta = %.3f%%", d*100)
	}
}

func TestLadderCrossRowShortBigCurrent(t *testing.T) {
	l := NewLadder(DefaultVehicle())
	// Taps 32 apart (vertically adjacent serpentine rows) bypass 32
	// segments: a 12.5 % resistance drop.
	f := &faults.Fault{Kind: faults.Short, Nets: []string{tapName(96), tapName(128)}, Res: 0.2}
	resp, err := l.Respond(context.Background(), f, RespondOpts{Var: Nominal()})
	if err != nil {
		t.Fatal(err)
	}
	nom := (VRefHi - VRefLo) / (DefaultVehicle().RSeg() * float64(DefaultVehicle().LadderSegments()))
	if d := (resp.Currents["iin.vref.hi"] - nom) / nom; d < 0.10 {
		t.Fatalf("cross-row short current delta = %.3f%%, want > 10%%", d*100)
	}
	if !resp.MissingCode {
		t.Fatal("collapsing 32 taps must kill codes")
	}
}

func TestLadderOpenKillsCurrent(t *testing.T) {
	l := NewLadder(DefaultVehicle())
	f := &faults.Fault{
		Kind: faults.Open, Nets: []string{tapName(50)},
		FarTerminals: []faults.Terminal{{Device: "r050", Net: tapName(50)}},
	}
	resp, err := l.Respond(context.Background(), f, RespondOpts{Var: Nominal()})
	if err != nil {
		t.Fatal(err)
	}
	nom := (VRefHi - VRefLo) / (DefaultVehicle().RSeg() * float64(DefaultVehicle().LadderSegments()))
	if resp.Currents["iin.vref.hi"] > nom/2 {
		t.Fatalf("open string current = %g, want collapsed", resp.Currents["iin.vref.hi"])
	}
	if !resp.MissingCode {
		t.Fatal("open string must kill codes")
	}
}

func TestLadderLayoutConnectivity(t *testing.T) {
	cell := NewLadder(DefaultVehicle()).Layout(false)
	comps := defectsim.CheckConnectivity(cell)
	for net, n := range comps {
		if n != 1 {
			t.Errorf("net %q has %d components", net, n)
		}
	}
	if len(comps) < DefaultVehicle().LadderSegments() {
		t.Fatalf("only %d nets in ladder layout", len(comps))
	}
}

// --- Clock generator ---

func TestClockgenFaultFree(t *testing.T) {
	m := NewClockgen(DefaultVehicle())
	resp, err := m.Respond(context.Background(), nil, RespondOpts{Var: Nominal()})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Voltage != signature.VSigNone || resp.MissingCode {
		t.Fatalf("fault-free clockgen: %v", resp.Voltage)
	}
	for si := range cgStates {
		k := "iddq.s" + string(rune('0'+si))
		if iq := math.Abs(resp.Currents[k]); iq > 1e-7 {
			t.Fatalf("%s = %g, want quiescent", k, iq)
		}
	}
}

func TestClockgenOutputRailShortStuck(t *testing.T) {
	m := NewClockgen(DefaultVehicle())
	f := &faults.Fault{Kind: faults.Short, Nets: []string{"clk1", "vss"}, Res: 0.2}
	resp, err := m.Respond(context.Background(), f, RespondOpts{Var: Nominal()})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Voltage != signature.VSigStuck || !resp.MissingCode {
		t.Fatalf("clk1-vss short: %v missing=%v", resp.Voltage, resp.MissingCode)
	}
	// The driver fights the short in the clk1-high state: big IDDQ.
	if resp.Currents["iddq.s0"] < 1e-4 {
		t.Fatalf("IDDQ = %g, want mA-scale", resp.Currents["iddq.s0"])
	}
}

func TestClockgenInternalBridgeIDDQ(t *testing.T) {
	m := NewClockgen(DefaultVehicle())
	// Bridge two internal chain nodes of different phases: they carry
	// opposite values in the one-hot states.
	f := &faults.Fault{Kind: faults.Short, Nets: []string{"cg1_0", "cg2_0"}, Res: 0.2}
	resp, err := m.Respond(context.Background(), f, RespondOpts{Var: Nominal()})
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for si := range cgStates {
		if iq := resp.Currents["iddq.s"+string(rune('0'+si))]; iq > worst {
			worst = iq
		}
	}
	if worst < 1e-4 {
		t.Fatalf("bridge IDDQ = %g, want elevated", worst)
	}
}

func TestClockgenLayoutConnectivity(t *testing.T) {
	cell := NewClockgen(DefaultVehicle()).Layout(false)
	for net, n := range defectsim.CheckConnectivity(cell) {
		if n != 1 {
			t.Errorf("net %q has %d components", net, n)
		}
	}
}

// --- Bias generator ---

func TestBiasgenFaultFree(t *testing.T) {
	m := NewBiasgen(DefaultVehicle())
	resp, err := m.Respond(context.Background(), nil, RespondOpts{Var: Nominal()})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Voltage != signature.VSigNone {
		t.Fatalf("fault-free biasgen: %v", resp.Voltage)
	}
	if !resp.CommonMode {
		t.Fatal("biasgen responses must be common-mode")
	}
}

func TestBiasgenBiasShortCommonModeUndetectable(t *testing.T) {
	m := NewBiasgen(DefaultVehicle())
	f := &faults.Fault{Kind: faults.Short, Nets: []string{"vbn1", "vbn2"}, Res: 0.2}
	resp, err := m.Respond(context.Background(), f, RespondOpts{Var: Nominal()})
	if err != nil {
		t.Fatal(err)
	}
	if resp.MissingCode {
		t.Fatal("similar-bias short must not create missing codes (common mode)")
	}
}

func TestBiasgenNPBiasShortDetectable(t *testing.T) {
	m := NewBiasgen(DefaultVehicle())
	// The post-DfT adjacency: vbn1-vbp1 short ties 1.1 V to 3.9 V.
	f := &faults.Fault{Kind: faults.Short, Nets: []string{"vbn1", "vbp1"}, Res: 0.2}
	resp, err := m.Respond(context.Background(), f, RespondOpts{Var: Nominal(), CurrentsOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	nom, err := m.Respond(context.Background(), nil, RespondOpts{Var: Nominal(), CurrentsOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	// Massive disturbance somewhere: bias legs fight and the comparator
	// slice current shifts hard.
	var worst float64
	for k, v := range resp.Currents {
		if d := math.Abs(v - nom.Currents[k]); d > worst {
			worst = d
		}
	}
	if worst < 1e-4 {
		t.Fatalf("n-p bias short worst delta = %g, want big", worst)
	}
}

func TestBiasgenLayout(t *testing.T) {
	for _, dft := range []bool{false, true} {
		cell := NewBiasgen(DefaultVehicle()).Layout(dft)
		for net, n := range defectsim.CheckConnectivity(cell) {
			if n != 1 {
				t.Errorf("dft=%v net %q has %d components", dft, net, n)
			}
		}
	}
	preX := biasLineX(t, NewBiasgen(DefaultVehicle()).Layout(false))
	postX := biasLineX(t, NewBiasgen(DefaultVehicle()).Layout(true))
	if !(preX["vbn1"] < preX["vbn2"] && preX["vbn2"] < preX["vbp1"]) {
		t.Fatalf("pre order: %v", preX)
	}
	if !(postX["vbn1"] < postX["vbp1"] && postX["vbp1"] < postX["vbn2"]) {
		t.Fatalf("post order: %v", postX)
	}
}

// --- Decoder ---

func TestDecoderFaultFreeIdentity(t *testing.T) {
	m := NewDecoder(DefaultVehicle())
	for _, k := range []int{0, 1, 2, 64, 127, 128, 200, 255} {
		code, iddq, err := m.decode(k, faultNone())
		if err != nil {
			t.Fatal(err)
		}
		if code != k {
			t.Fatalf("decode(%d) = %d", k, code)
		}
		if iddq {
			t.Fatal("fault-free decode must be quiescent")
		}
	}
}

func TestDecoderRespondFaultFree(t *testing.T) {
	m := NewDecoder(DefaultVehicle())
	resp, err := m.Respond(context.Background(), nil, RespondOpts{Var: Nominal()})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Voltage != signature.VSigNone || resp.MissingCode {
		t.Fatalf("fault-free decoder: %v missing=%v", resp.Voltage, resp.MissingCode)
	}
	if resp.Currents["iddq.dc"] != 0 {
		t.Fatal("fault-free decoder IDDQ must be 0")
	}
}

func TestDecoderStuckInputMissingCode(t *testing.T) {
	m := NewDecoder(DefaultVehicle())
	f := &faults.Fault{Kind: faults.Short, Nets: []string{tnet(100), "vddd"}, Res: 0.2}
	resp, err := m.Respond(context.Background(), f, RespondOpts{Var: Nominal()})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.MissingCode {
		t.Fatal("stuck thermometer input must kill codes")
	}
	if resp.Currents["iddq.dc"] == 0 {
		t.Fatal("rail short must raise IDDQ")
	}
}

func TestDecoderBridgeIDDQ(t *testing.T) {
	m := NewDecoder(DefaultVehicle())
	f := &faults.Fault{Kind: faults.Short, Nets: []string{"h100", "h101"}, Res: 0.2}
	resp, err := m.Respond(context.Background(), f, RespondOpts{Var: Nominal()})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Currents["iddq.dc"] == 0 {
		t.Fatal("one-hot bridge must fight at some input")
	}
}

func TestDecoderLayoutHasTracksAndDevices(t *testing.T) {
	m := NewDecoder(DefaultVehicle())
	cell := m.Layout(false)
	if len(cell.Shapes) < 5000 {
		t.Fatalf("decoder layout too small: %d shapes", len(cell.Shapes))
	}
	if !cell.Ports[tnet(1)] || !cell.Ports["b7"] {
		t.Fatal("decoder ports missing")
	}
}

func TestDecoderGateNets(t *testing.T) {
	m := NewDecoder(DefaultVehicle())
	in, out, ok := m.gateNets("inv100.n")
	if !ok || in != tnet(100) || out != "n100" {
		t.Fatalf("gateNets = %q %q %v", in, out, ok)
	}
	if _, _, ok := m.gateNets("nope.x"); ok {
		t.Fatal("unknown device must fail")
	}
}
