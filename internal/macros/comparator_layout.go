package macros

import (
	"repro/internal/layout"
)

// comparatorLayout builds the comparator slice's mask layout. The shared
// distribution lines (three clocks, four bias lines, vin, vref, supplies,
// the slice output) run vertically in metal2 through the right-hand side
// of the cell — faults on them are cross-macro faults. The dft flag
// re-orders the bias lines so that physically adjacent lines no longer
// carry nearly identical voltages (the paper's second DfT measure).
func comparatorLayout(dft bool) *layout.Cell {
	b := layout.NewBuilder("comparator")
	b.DefaultWidth = 1.2

	devs := []devPlace{
		// Row 1 (y=20): switches, tail, latch enable, output NMOS.
		{name: "msw1", d: "inp", g: "clk1", s: "vin", x: 6, y: 20},
		{name: "msw2", d: "inn", g: "clk1", s: "vref", x: 16, y: 20},
		{name: "m5", d: "tail", g: "vbn1", s: "vss", x: 26, y: 20},
		{name: "m5b", d: "tail", g: "vbn2", s: "vss", x: 66, y: 20},
		{name: "m8", d: "ltail", g: "clk3", s: "vss", x: 36, y: 20},
		{name: "mon", d: "out", g: "q", s: "vss", x: 56, y: 20},
		// Row 2 (y=32): differential pair, latch pair, transfer gates.
		{name: "m1", d: "o1", g: "inp", s: "tail", x: 8, y: 32},
		{name: "m2", d: "o2", g: "inn", s: "tail", x: 20, y: 32},
		{name: "m6", d: "o1", g: "o2", s: "ltail", x: 32, y: 32},
		{name: "m7", d: "o2", g: "o1", s: "ltail", x: 42, y: 32},
		{name: "mt1", d: "q", g: "clk3", s: "o1", x: 52, y: 32},
		{name: "mt2", d: "qb", g: "clk3", s: "o2", x: 60, y: 32},
		// Row 3 (y=44): flipflop NMOS.
		{name: "mfn1", d: "qb", g: "q", s: "vss", x: 10, y: 44},
		{name: "mfn2", d: "q", g: "qb", s: "vss", x: 20, y: 44},
		// PMOS row (y=56): loads, flipflop PMOS, output PMOS.
		{name: "m3", d: "o1", g: "vbp1", s: "vdda", x: 8, y: 56, pmos: true},
		{name: "m4", d: "o2", g: "vbp1", s: "vdda", x: 20, y: 56, pmos: true},
		{name: "m3d", d: "o1", g: "o1", s: "vdda", x: 14, y: 56, pmos: true},
		{name: "m4d", d: "o2", g: "o2", s: "vdda", x: 26, y: 56, pmos: true},
		{name: "mfp1", d: "qb", g: "q", s: "vdda", x: 32, y: 56, pmos: true},
		{name: "mfp2", d: "q", g: "qb", s: "vdda", x: 42, y: 56, pmos: true},
		{name: "mop", d: "out", g: "q", s: "vdda", x: 52, y: 56, pmos: true},
		{name: "m3b", d: "o1", g: "vbp2", s: "vdda", x: 58, y: 56, pmos: true},
		{name: "m4b", d: "o2", g: "vbp2", s: "vdda", x: 64, y: 56, pmos: true},
	}
	if !dft {
		// The original flipflop has a leakage path; the DfT-1 redesign
		// removes the structure (and its layout shapes) entirely.
		devs = append(devs, devPlace{name: "mleak", d: "lk", g: "clk1", s: "vss", x: 46, y: 20})
	}
	terms := placeDevices(b, devs, "vdda")

	// Sampling capacitors (top plate = sampled node, bottom plate = vss).
	t1, b1 := platedCap(b, "inp", "vss", 44, 70, 54, 76)
	t2, b2 := platedCap(b, "inn", "vss", 44, 79, 54, 85)
	terms = append(terms, t1, b1, t2, b2)

	if !dft {
		// The flipflop leakage resistor (poly) between vdda and lk.
		// The resistor body is poly, so its terminals need contact cuts
		// (gate=true marks poly terminals for routeNets).
		b.Resistor("rleak", "vdda", "lk", 34, 14, 10, 1.5)
		terms = append(terms,
			terminal{net: "vdda", x: 34.5, y: 14, gate: true},
			terminal{net: "lk", x: 43.5, y: 14, gate: true},
		)
	}

	// Routing channels (metal1 trunks).
	trunkY := map[string]float64{
		"vss":   11,
		"out":   14.5,
		"lk":    17,
		"vin":   23,
		"inp":   25,
		"inn":   26.5,
		"vref":  28.5,
		"tail":  30,
		"clk1":  38,
		"clk2":  39.5,
		"clk3":  41,
		"o1":    46,
		"o2":    47.5,
		"ltail": 49,
		"q":     51,
		"qb":    52.5,
		"vdda":  63,
		"vbn1":  66,
		"vbp1":  68,
		"vbn2":  70,
		"vbp2":  72,
	}

	// Vertical metal2 distribution lines; the bias group order is the
	// DfT-2 knob.
	lineX := map[string]float64{
		"clk1": 68, "clk2": 71, "clk3": 74,
		"vin": 89, "vref": 92, "vdda": 95, "vss": 98, "out": 101,
	}
	if dft {
		// Alternate n/p bias lines: adjacent voltages differ by ~2.8 V.
		lineX["vbn1"], lineX["vbp1"], lineX["vbn2"], lineX["vbp2"] = 77, 80, 83, 86
	} else {
		// Similar voltages side by side: vbn1|vbn2 and vbp1|vbp2 differ
		// by only ~20 mV — the paper's hard-to-detect shorts.
		lineX["vbn1"], lineX["vbn2"], lineX["vbp1"], lineX["vbp2"] = 77, 80, 83, 86
	}

	routeNets(b, terms, trunkY, lineX)
	drawLines(b, lineX, 2, 98)

	b.C.MarkPort("vin", "vref", "clk1", "clk2", "clk3",
		"vbn1", "vbn2", "vbp1", "vbp2", "vdda", "vss", "out")
	return b.C
}
