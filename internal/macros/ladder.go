package macros

import (
	"context"
	"fmt"
	"math"

	"repro/internal/adc"
	"repro/internal/faults"
	"repro/internal/layout"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/process"
	"repro/internal/signature"
	"repro/internal/spice"
)

// LadderMacro is the reference resistor string: the vehicle's 2^N
// matched polysilicon segments between the external reference terminals,
// folded into a serpentine so that physically adjacent runs are
// electrically many taps apart (which is what makes its shorts so
// current-observable — the paper found 99.8 % of ladder faults
// current-detectable). Each tap drives one comparator slice.
type LadderMacro struct {
	// Veh is the vehicle spec: segment/tap count and nominal segment
	// resistance (Vehicle.LadderSegments, Vehicle.RSeg) derive from it.
	Veh Vehicle
}

// LadderRowLen is the number of segments per serpentine row.
const LadderRowLen = 16

// NewLadder returns the ladder macro of the given vehicle.
func NewLadder(veh Vehicle) *LadderMacro { return &LadderMacro{Veh: veh} }

// Name implements Macro.
func (l *LadderMacro) Name() string { return "ladder" }

// Count implements Macro.
func (l *LadderMacro) Count() int { return 1 }

// tapName returns the canonical net name of tap k (0..segments).
func tapName(k int) string { return fmt.Sprintf("t%03d", k) }

// buildLadderCircuit constructs the resistor string with its reference
// sources. Taps 0 and 2^N are the external terminals.
func (l *LadderMacro) buildLadderCircuit(v Variation) *netlist.Builder {
	b := netlist.NewBuilder()
	l.buildLadderInto(b, v)
	return b
}

// buildLadderInto runs the construction against the given builder — a
// plain builder for a simulation circuit, a recording one for the
// rebind binding (one construction path, so the two cannot drift).
func (l *LadderMacro) buildLadderInto(b *netlist.Builder, v Variation) {
	segs, rseg := l.Veh.LadderSegments(), l.Veh.RSeg()
	b.Vsrc("vrefhi", tapName(segs), "0", netlist.DC(VRefHi))
	b.Vsrc("vreflo", tapName(0), "0", netlist.DC(VRefLo))
	for i := 0; i < segs; i++ {
		b.R(fmt.Sprintf("r%03d", i), tapName(i), tapName(i+1), rseg*v.RhoScale)
	}
}

// solveTaps returns the tap voltages and terminal currents. Faulted
// solves first try the low-rank update path against the variation's
// shared nominal factorization; faults it cannot express (topology
// changes, ill-conditioned corrections) fall through to the classic
// build-inject-refactor path below, which is also the path of every
// fault-free solve.
func (l *LadderMacro) solveTaps(ctx context.Context, f *faults.Fault, opt RespondOpts) (taps []float64, ihi, ilo float64, err error) {
	if f != nil && opt.Base != nil {
		if taps, ihi, ilo, ok, err := l.solveTapsUpdated(ctx, f, opt); ok {
			return taps, ihi, ilo, err
		}
		opt.Metrics.Add(obs.CtrRank1Fallbacks, 1)
	}
	io := faults.InjectOptions{NonCat: opt.NonCat}
	sp := opt.span(obs.StageInject, l.Name())
	key := engineKey{macro: l.Name(), fault: faultKey(f, io)}
	eng, release, err := checkoutEngine(opt, engineCheckout{
		key: key,
		f:   f, io: io,
		baseBinding: func() *netlist.Binding {
			return opt.Pool.baseBinding(key, opt.Var, func(bind *netlist.Binding) {
				l.buildLadderInto(netlist.NewRecorder(bind), opt.Var)
			})
		},
		build: func() *netlist.Builder { return l.buildLadderCircuit(opt.Var) },
	})
	sp.End()
	if err != nil {
		return nil, 0, 0, err
	}
	if release != nil {
		// Release only after the tap voltages are copied out: the
		// Solution below aliases engine-owned storage.
		defer release()
	}
	sp = opt.span(obs.StageFaultSim, l.Name())
	sol, err := eng.OP(ctx)
	sp.End()
	if err != nil {
		return nil, 0, 0, err
	}
	taps = make([]float64, l.Veh.LadderSegments()+1)
	for k := range taps {
		taps[k] = sol.V(tapName(k))
	}
	return taps, sol.I("vrefhi"), sol.I("vreflo"), nil
}

// solveTapsUpdated is the rank-k fast path of solveTaps: it expresses
// the fault as a conductance delta against the variation's cached
// nominal factorization and solves it with a Sherman–Morrison–Woodbury
// correction — no circuit rebuild, no refactorization. ok=false means
// "not handled here, take the classic path" (and the caller counts the
// fallback); ok=true with a non-nil err carries a genuine failure (only
// cancellation, in practice) with the same semantics as the classic
// path. Results agree with the classic path within the Newton
// convergence contract; the bit-identity story is in DESIGN.md §10.
func (l *LadderMacro) solveTapsUpdated(ctx context.Context, f *faults.Fault, opt RespondOpts) (taps []float64, ihi, ilo float64, ok bool, err error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, 0, true, err
	}
	sp := opt.span(obs.StageInject, l.Name())
	nf, hit := opt.Base.ladderFactor(opt.Var)
	if !hit {
		var err error
		nf, err = spice.NewNominalFactor(l.buildLadderCircuit(opt.Var).C, opt.simOptions())
		if err != nil {
			sp.End()
			return nil, 0, 0, false, nil
		}
		opt.Base.storeLadderFactor(opt.Var, nf)
	}
	plan, err := faults.Plan(nf.Ckt(), *f, procShared, faults.InjectOptions{NonCat: opt.NonCat})
	if err != nil || plan.TopologyChanged {
		// A malformed fault errors identically out of the classic path's
		// Inject; a topology change needs the rebuilt system.
		sp.End()
		return nil, 0, 0, false, nil
	}
	upd, updatable := nf.UpdateFor(plan.Added)
	sp.End()
	if !updatable {
		return nil, 0, 0, false, nil
	}
	sp = opt.span(obs.StageFaultSim, l.Name())
	sol, err := nf.SolveUpdated(upd)
	sp.End()
	if err != nil {
		// Ill-conditioned correction or non-convergence: let the classic
		// path refactor from scratch (reproducing a genuine failure with
		// classic semantics if the system really is unsolvable).
		return nil, 0, 0, false, nil
	}
	opt.Metrics.Add(obs.CtrRank1Solves, 1)
	taps = make([]float64, l.Veh.LadderSegments()+1)
	for k := range taps {
		taps[k] = sol.V(tapName(k))
	}
	return taps, sol.I("vrefhi"), sol.I("vreflo"), true, nil
}

// nominalTaps returns the fault-free tap voltages under opt's variation,
// through the baseline cache when one is attached — every class analysis
// needs the same reference vector, so the good machine is solved once
// per variation instead of once per class. The cached slice is shared
// read-only; the circuit is fully determined by the variation (the
// ladder has no DfT variant), so a hit is bit-for-bit a recompute.
func (l *LadderMacro) nominalTaps(ctx context.Context, opt RespondOpts) ([]float64, error) {
	if taps, ok := opt.Base.ladderTaps(opt.Var); ok {
		// The hit replaces a StageFaultSim solve; emit the counter
		// inside a span so trace sinks see it.
		sp := opt.span(obs.StageFaultSim, l.Name())
		opt.Metrics.Add(obs.CtrBaselineCacheHits, 1)
		sp.End()
		return taps, nil
	}
	taps, _, _, err := l.solveTaps(ctx, nil, opt)
	if err != nil {
		return nil, err
	}
	opt.Base.storeLadderTaps(opt.Var, taps)
	return taps, nil
}

// Respond implements Macro. The voltage signature is determined by
// propagating the faulty tap voltages through the high-level ADC model
// (ideal comparators, faulty references) and running the missing-code
// test; the current signature is the deviation of the reference-terminal
// currents.
func (l *LadderMacro) Respond(ctx context.Context, f *faults.Fault, opt RespondOpts) (*signature.Response, error) {
	resp := &signature.Response{Currents: map[string]float64{}}
	taps, ihi, ilo, err := l.solveTaps(ctx, f, opt)
	if err != nil {
		if f == nil || spice.IsCancelled(err) {
			return nil, err
		}
		resp.Voltage = signature.VSigMixed
		resp.MissingCode = true
		resp.SimError = err
		return resp, nil
	}
	resp.Currents["iin.vref.hi"] = math.Abs(ihi)
	resp.Currents["iin.vref.lo"] = math.Abs(ilo)

	if opt.CurrentsOnly {
		return resp, nil
	}

	// Nominal taps under the same variation (ratiometric: uniform rho
	// scaling leaves them unchanged, so deviations isolate the fault).
	nomTaps, err := l.nominalTaps(ctx, opt)
	if err != nil {
		return nil, err
	}
	csp := opt.span(obs.StageClassify, l.Name())
	defer csp.End()
	worst := 0.0
	n := l.Veh.Comparators()
	a := adc.New(n, VRefLo, VRefHi)
	for k := 0; k < n; k++ {
		// Comparator k compares against tap k+... the behavioural
		// model's tap i is the threshold of slice i; our string tap
		// i+0 feeds slice i (taps 1..2^N of the string used as
		// thresholds would offset by half an LSB — immaterial for
		// missing-code detection, we apply deviations).
		dev := taps[k] - nomTaps[k]
		a.Taps[k] += dev
		if d := math.Abs(dev); d > worst {
			worst = d
		}
	}
	resp.OffsetV = worst
	if a.MissingCodeTest(VRefLo, VRefHi, l.Veh.TestSamples()).HasMissing() {
		resp.MissingCode = true
		resp.Voltage = signature.VSigOffset
		if worst > 10*l.Veh.LSB() {
			resp.Voltage = signature.VSigStuck
		}
	} else {
		resp.Voltage = signature.VSigNone
	}
	return resp, nil
}

// Layout implements Macro: a serpentine of polysilicon segments with
// metal1 tap stubs rising to the comparator array. The dft flag does not
// change the ladder.
func (l *LadderMacro) Layout(bool) *layout.Cell {
	b := layout.NewBuilder("ladder")
	b.DefaultWidth = 1.2
	const segLen = 6.0
	const rowPitch = 4.0
	segs := l.Veh.LadderSegments()
	rows := segs / LadderRowLen
	for r := 0; r < rows; r++ {
		y := float64(r) * rowPitch
		for s := 0; s < LadderRowLen; s++ {
			i := r*LadderRowLen + s
			// Serpentine: odd rows run right-to-left, so their
			// terminal order is mirrored to keep the electrically
			// continuing tap at the fold side.
			if r%2 == 0 {
				x := float64(s) * segLen
				b.Resistor(fmt.Sprintf("r%03d", i), tapName(i), tapName(i+1), x, y, segLen, 1.2)
			} else {
				x := float64(LadderRowLen-1-s) * segLen
				b.Resistor(fmt.Sprintf("r%03d", i), tapName(i+1), tapName(i), x, y, segLen, 1.2)
			}
		}
		// Vertical poly link to the next row at the fold.
		if r+1 < rows {
			endTap := tapName((r + 1) * LadderRowLen)
			var x float64
			if r%2 == 0 {
				x = float64(LadderRowLen) * segLen
			} else {
				x = 0
			}
			b.VWire(process.Poly, endTap, x, y, y+rowPitch)
		}
	}
	// Tap stubs: metal1 risers from every 4th tap junction (the layout
	// abstraction of the tap lines leaving toward the comparators).
	for k := 0; k <= segs; k += 4 {
		r := k / LadderRowLen
		pos := k % LadderRowLen
		var x float64
		switch {
		case k == segs:
			// The final tap sits at the left end of the last
			// (odd) row.
			r = rows - 1
			x = 0
		case r%2 == 0:
			x = float64(pos) * segLen
		default:
			x = float64(LadderRowLen-pos) * segLen
		}
		y := math.Min(float64(r), float64(rows-1)) * rowPitch
		net := tapName(k)
		b.CutAt(process.Contact, net, x, y)
		b.VWire(process.Metal1, net, x, y, y+2.5)
	}
	b.C.MarkPort(tapName(0), tapName(segs))
	// Every tap drives a comparator, so tap nets are shared too.
	for k := 0; k <= segs; k += 4 {
		b.C.MarkPort(tapName(k))
	}
	return b.C
}
