package macros

import (
	"context"
	"math"
	"testing"

	"repro/internal/faults"
)

func TestAmplifierACNominal(t *testing.T) {
	m := NewComparator(DefaultVehicle())
	res, err := m.AmplifierAC(context.Background(), nil, RespondOpts{Var: Nominal()})
	if err != nil {
		t.Fatal(err)
	}
	// The diff pair with diode-clamped loads has moderate gain (> 6 dB)
	// and a bandwidth well inside the sweep.
	if res.GainDB < 6 || res.GainDB > 60 {
		t.Fatalf("gain = %.1f dB", res.GainDB)
	}
	if res.Bandwidth3dB <= 1e3 || res.Bandwidth3dB >= 1e9 {
		t.Fatalf("bandwidth = %g Hz", res.Bandwidth3dB)
	}
}

func TestAmplifierACClockValueFaultDeviates(t *testing.T) {
	m := NewComparatorWithRef(DefaultVehicle(), 2.0)
	nom, err := m.AmplifierAC(context.Background(), nil, RespondOpts{Var: Nominal()})
	if err != nil {
		t.Fatal(err)
	}
	// A high-ohmic (non-catastrophic) defect loading clk1 sags the
	// switch gate drive: the tracking bandwidth drops — the paper's
	// observation that clock-value faults disturb the high-frequency
	// behaviour, invisible to the simple DC tests.
	// 800 Ω keeps the switch conducting (the DC behaviour stays clean)
	// while the sagged gate drive cuts the tracking bandwidth by ~40 %.
	f := &faults.Fault{Kind: faults.ThickOxPinhole, Nets: []string{"clk1", "vss"}, Res: 800}
	faulty, err := m.AmplifierAC(context.Background(), f, RespondOpts{Var: Nominal()})
	if err != nil {
		t.Fatal(err)
	}
	if !ACDeviates(nom, faulty, 1.0, 0.3) {
		t.Fatalf("clock fault AC: nom=%.1fdB/%.3g faulty=%.1fdB/%.3g",
			nom.GainDB, nom.Bandwidth3dB, faulty.GainDB, faulty.Bandwidth3dB)
	}
}

func TestACDeviatesPredicate(t *testing.T) {
	nom := &ACResult{GainDB: 20, Bandwidth3dB: 1e7}
	if ACDeviates(nom, &ACResult{GainDB: 20.5, Bandwidth3dB: 1.1e7}, 1, 0.3) {
		t.Fatal("within tolerance must not deviate")
	}
	if !ACDeviates(nom, &ACResult{GainDB: 15, Bandwidth3dB: 1e7}, 1, 0.3) {
		t.Fatal("gain loss must deviate")
	}
	if !ACDeviates(nom, &ACResult{GainDB: 20, Bandwidth3dB: 2e6}, 1, 0.3) {
		t.Fatal("bandwidth collapse must deviate")
	}
	if !ACDeviates(nom, &ACResult{GainDB: 20, Bandwidth3dB: 5e7}, 1, 0.3) {
		t.Fatal("bandwidth explosion must deviate")
	}
}

func TestAmplifierACGainFaultVisible(t *testing.T) {
	m := NewComparator(DefaultVehicle())
	nom, err := m.AmplifierAC(context.Background(), nil, RespondOpts{Var: Nominal()})
	if err != nil {
		t.Fatal(err)
	}
	// Shorting one load diode kills half the gain path asymmetrically.
	f := &faults.Fault{Kind: faults.ShortedDevice, Device: "m3"}
	faulty, err := m.AmplifierAC(context.Background(), f, RespondOpts{Var: Nominal()})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(nom.GainDB-faulty.GainDB) < 1 {
		t.Fatalf("load fault must change the gain: %.1f vs %.1f dB", nom.GainDB, faulty.GainDB)
	}
}
