package macros

import (
	"sync"

	"repro/internal/signature"
	"repro/internal/spice"
)

// engineKey identifies one fault-free simulation circuit exactly: the
// macro, its reference tap, the DfT setting and the full variation draw
// together determine every element value of the testbench except the
// input-source waveform, which checkouts retune (a bit-identical
// operation — see spice.Engine.RetuneVSource). Faulty circuits are
// never pooled: injection rewrites the topology, so a faulty engine is
// built fresh and discarded.
type engineKey struct {
	macro string
	vref  float64
	dft   bool
	v     Variation
}

// EnginePool caches fault-free spice engines across Respond calls with
// checkout semantics: acquire removes an engine from the pool, giving
// the caller exclusive use (engines are single-goroutine objects), and
// release returns it once the caller has extracted everything from the
// analysis results (a Tran aliases engine-owned storage). Concurrent
// campaign workers that miss simply build a fresh engine and check it
// in afterwards, so the pool converges to one warm engine per worker
// per key. Reuse is bit-identical to fresh construction: every analysis
// restarts Newton from the zero vector, and the only state a checkout
// mutates is the input-source waveform.
//
// A nil *EnginePool disables pooling (every acquire misses and every
// release discards), so callers thread it unconditionally.
type EnginePool struct {
	mu      sync.Mutex
	engines map[engineKey][]*spice.Engine
}

// NewEnginePool returns an empty pool.
func NewEnginePool() *EnginePool {
	return &EnginePool{engines: map[engineKey][]*spice.Engine{}}
}

// acquire checks an engine out of the pool (nil on a miss).
func (p *EnginePool) acquire(k engineKey) *spice.Engine {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.engines[k]
	if len(s) == 0 {
		return nil
	}
	e := s[len(s)-1]
	p.engines[k] = s[:len(s)-1]
	return e
}

// release checks an engine back in under its key.
func (p *EnginePool) release(k engineKey, e *spice.Engine) {
	if p == nil || e == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.engines[k] = append(p.engines[k], e)
}

// size reports the number of pooled (checked-in) engines.
func (p *EnginePool) size() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, s := range p.engines {
		n += len(s)
	}
	return n
}

// cmpNomKey identifies one cached comparator fault-free response: the
// circuit identity (vref, dft, variation) plus the CurrentsOnly flag,
// which changes what the response contains.
type cmpNomKey struct {
	vref         float64
	dft          bool
	currentsOnly bool
	v            Variation
}

// Baselines memoises fault-free ("good machine") baseline results that
// class analyses would otherwise re-simulate per class: the ladder's
// nominal tap voltages under one variation, and the comparator's full
// fault-free response (the gate-oxide-short worst-case reference).
// Entries are stored only from completed, error-free simulations and
// only for f == nil runs — a faulty analysis can neither read nor write
// the cache, so a fault never sees (or poisons) a fault-free baseline.
// Cached values are shared read-only across callers; all consumers only
// read them, and because the simulations are deterministic, a cache hit
// returns bit-for-bit the vector a recompute would.
//
// A nil *Baselines disables memoisation.
type Baselines struct {
	mu       sync.Mutex
	ladder   map[Variation][]float64
	ladderNF map[Variation]*spice.NominalFactor
	cmpNom   map[cmpNomKey]*signature.Response
}

// NewBaselines returns an empty baseline cache.
func NewBaselines() *Baselines {
	return &Baselines{
		ladder:   map[Variation][]float64{},
		ladderNF: map[Variation]*spice.NominalFactor{},
		cmpNom:   map[cmpNomKey]*signature.Response{},
	}
}

// ladderTaps returns the cached nominal tap voltages for one variation.
func (b *Baselines) ladderTaps(v Variation) ([]float64, bool) {
	if b == nil {
		return nil, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	taps, ok := b.ladder[v]
	return taps, ok
}

// storeLadderTaps records the nominal tap voltages for one variation.
// First store wins (concurrent computes produce identical vectors).
func (b *Baselines) storeLadderTaps(v Variation, taps []float64) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.ladder[v]; !ok {
		b.ladder[v] = taps
	}
}

// ladderFactor returns the cached shared nominal factorization of the
// ladder under one variation. Like the tap cache, entries are immutable
// once stored: a NominalFactor is read-only after construction (solves
// against it never mutate it), so concurrent class analyses share one
// safely.
func (b *Baselines) ladderFactor(v Variation) (*spice.NominalFactor, bool) {
	if b == nil {
		return nil, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	nf, ok := b.ladderNF[v]
	return nf, ok
}

// storeLadderFactor records the nominal factorization for one variation.
// First store wins (racing constructions factor the same deterministic
// system, so whichever lands is equivalent).
func (b *Baselines) storeLadderFactor(v Variation, nf *spice.NominalFactor) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.ladderNF[v]; !ok {
		b.ladderNF[v] = nf
	}
}

// comparatorNominal returns the cached fault-free comparator response.
func (b *Baselines) comparatorNominal(k cmpNomKey) (*signature.Response, bool) {
	if b == nil {
		return nil, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	r, ok := b.cmpNom[k]
	return r, ok
}

// storeComparatorNominal records a fault-free comparator response.
func (b *Baselines) storeComparatorNominal(k cmpNomKey, r *signature.Response) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.cmpNom[k]; !ok {
		b.cmpNom[k] = r
	}
}
