package macros

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/faults"
	"repro/internal/netlist"
	"repro/internal/signature"
	"repro/internal/spice"
)

// engineKey identifies one compiled simulation *topology*: the macro,
// its reference tap, the structural flags (DfT redesign, presence of
// the leakage path) and the fault identity together determine the node
// set, element set and terminal wiring of the testbench — everything a
// compiled engine's stamp programs and sparse symbolic analyses depend
// on. Values that move without moving structure — the die Variation's
// model cards, resistances and supply levels, a conductance-only fault's
// resistance, the input-source waveform — are deliberately NOT part of
// the key: checkouts rebind them in place (Engine.Revalue /
// RetuneVSource), which is bit-identical to building afresh. Topology-
// changing faults (opens that split nodes, new devices, bridges to
// absent nets) have no stable key and are never pooled.
type engineKey struct {
	macro string
	vref  float64
	dft   bool
	// leak reports the comparator's flipflop leakage path is present
	// (fault-free structural variant gated on !DfT && FFLeakA > 1e-9).
	leak bool
	// fault is the injected-element identity ("" = fault-free): the
	// class equivalence key plus everything else that changes the
	// planned element set. See faultKey.
	fault string
}

// faultKey canonicalises a fault to its pool-key string: the class
// equivalence key plus the model knobs that change the injected element
// set or its values (resistance override, near-miss model, gate-oxide
// variant). Fault-free runs key as "".
func faultKey(f *faults.Fault, io faults.InjectOptions) string {
	if f == nil {
		return ""
	}
	return fmt.Sprintf("%s|r%x|nc%t|g%d", f.Key(), math.Float64bits(f.Res), io.NonCat, io.GOS)
}

// maxFaultyKeys bounds how many distinct faulty topologies the pool
// retains engines for. Fault-free keys are few (one per macro/DfT/leak
// variant) and live forever; faulty keys arrive one per analysed class,
// so without a bound a long campaign would pin an engine per class.
// Eviction is least-recently-used; an evicted class simply rebuilds on
// its next (unlikely) appearance.
const maxFaultyKeys = 16

// EnginePool caches compiled spice engines across Respond calls with
// checkout semantics: acquire removes an engine from the pool, giving
// the caller exclusive use (engines are single-goroutine objects), and
// release returns it once the caller has extracted everything from the
// analysis results (a Tran aliases engine-owned storage). Concurrent
// campaign workers that miss simply build a fresh engine and check it
// in afterwards, so the pool converges to one warm engine per worker
// per key. Reuse is bit-identical to fresh construction: every analysis
// restarts Newton from the zero vector, and the only state a checkout
// mutates is the element values its rebind rewrites — to exactly the
// values a fresh build of the same checkout would stamp (the binding is
// recorded by running the same builder; see netlist.Binding).
//
// A nil *EnginePool disables pooling (every acquire misses and every
// release discards), so callers thread it unconditionally.
type EnginePool struct {
	mu      sync.Mutex
	engines map[engineKey][]*spice.Engine
	// faultUse tracks last-touch order for faulty keys (LRU bound);
	// fault-free keys are never evicted and never appear here.
	faultUse map[engineKey]int64
	seq      int64
	// binds caches the recorded fault-free base binding per nominal
	// key, for the variation it was last recorded at. Fault analyses of
	// one class run many Responds at one Variation, so the last-value
	// cache turns the per-Respond recording build into a slice copy.
	binds map[engineKey]*bindEntry
}

// bindEntry is one cached base binding: valid only for checkouts at
// exactly the variation it was recorded under.
type bindEntry struct {
	v    Variation
	bind *netlist.Binding
}

// NewEnginePool returns an empty pool.
func NewEnginePool() *EnginePool {
	return &EnginePool{
		engines:  map[engineKey][]*spice.Engine{},
		faultUse: map[engineKey]int64{},
		binds:    map[engineKey]*bindEntry{},
	}
}

// baseBinding returns a private copy of the recorded fault-free value
// binding for nominal key k at variation v, recording one via rec on a
// miss (first sight of the key, or the cached entry belongs to another
// variation). The returned binding is the caller's own: appending
// fault slots to it never touches the cache. A nil pool just records.
func (p *EnginePool) baseBinding(k engineKey, v Variation, rec func(*netlist.Binding)) *netlist.Binding {
	k.fault = "" // the base binding is the fault-free value set
	if p == nil {
		bind := &netlist.Binding{}
		rec(bind)
		return bind
	}
	p.mu.Lock()
	e := p.binds[k]
	p.mu.Unlock()
	if e != nil && e.v == v {
		return e.bind.Clone()
	}
	bind := &netlist.Binding{}
	rec(bind)
	p.mu.Lock()
	p.binds[k] = &bindEntry{v: v, bind: bind.Clone()}
	p.mu.Unlock()
	return bind
}

// acquire checks an engine out of the pool (nil on a miss).
func (p *EnginePool) acquire(k engineKey) *spice.Engine {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.engines[k]
	if len(s) == 0 {
		return nil
	}
	e := s[len(s)-1]
	p.engines[k] = s[:len(s)-1]
	if k.fault != "" {
		p.seq++
		p.faultUse[k] = p.seq
	}
	return e
}

// release checks an engine back in under its key, evicting the
// least-recently-used faulty key when a new faulty key would exceed the
// retention bound.
func (p *EnginePool) release(k engineKey, e *spice.Engine) {
	if p == nil || e == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if k.fault != "" {
		if _, known := p.faultUse[k]; !known && len(p.faultUse) >= maxFaultyKeys {
			var victim engineKey
			oldest := int64(0)
			for fk, at := range p.faultUse {
				if oldest == 0 || at < oldest {
					victim, oldest = fk, at
				}
			}
			delete(p.engines, victim)
			delete(p.faultUse, victim)
		}
		p.seq++
		p.faultUse[k] = p.seq
	}
	p.engines[k] = append(p.engines[k], e)
}

// size reports the number of pooled (checked-in) engines.
func (p *EnginePool) size() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, s := range p.engines {
		n += len(s)
	}
	return n
}

// cmpNomKey identifies one cached comparator fault-free response: the
// circuit identity (vref, dft, variation) plus the CurrentsOnly flag,
// which changes what the response contains.
type cmpNomKey struct {
	vref         float64
	dft          bool
	currentsOnly bool
	v            Variation
}

// Baselines memoises fault-free ("good machine") baseline results that
// class analyses would otherwise re-simulate per class: the ladder's
// nominal tap voltages under one variation, and the comparator's full
// fault-free response (the gate-oxide-short worst-case reference).
// Entries are stored only from completed, error-free simulations and
// only for f == nil runs — a faulty analysis can neither read nor write
// the cache, so a fault never sees (or poisons) a fault-free baseline.
// Cached values are shared read-only across callers; all consumers only
// read them, and because the simulations are deterministic, a cache hit
// returns bit-for-bit the vector a recompute would.
//
// A nil *Baselines disables memoisation.
type Baselines struct {
	mu       sync.Mutex
	ladder   map[Variation][]float64
	ladderNF map[Variation]*spice.NominalFactor
	cmpNom   map[cmpNomKey]*signature.Response
}

// NewBaselines returns an empty baseline cache.
func NewBaselines() *Baselines {
	return &Baselines{
		ladder:   map[Variation][]float64{},
		ladderNF: map[Variation]*spice.NominalFactor{},
		cmpNom:   map[cmpNomKey]*signature.Response{},
	}
}

// ladderTaps returns the cached nominal tap voltages for one variation.
func (b *Baselines) ladderTaps(v Variation) ([]float64, bool) {
	if b == nil {
		return nil, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	taps, ok := b.ladder[v]
	return taps, ok
}

// storeLadderTaps records the nominal tap voltages for one variation.
// First store wins (concurrent computes produce identical vectors).
func (b *Baselines) storeLadderTaps(v Variation, taps []float64) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.ladder[v]; !ok {
		b.ladder[v] = taps
	}
}

// ladderFactor returns the cached shared nominal factorization of the
// ladder under one variation. Like the tap cache, entries are immutable
// once stored: a NominalFactor is read-only after construction (solves
// against it never mutate it), so concurrent class analyses share one
// safely.
func (b *Baselines) ladderFactor(v Variation) (*spice.NominalFactor, bool) {
	if b == nil {
		return nil, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	nf, ok := b.ladderNF[v]
	return nf, ok
}

// storeLadderFactor records the nominal factorization for one variation.
// First store wins (racing constructions factor the same deterministic
// system, so whichever lands is equivalent).
func (b *Baselines) storeLadderFactor(v Variation, nf *spice.NominalFactor) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.ladderNF[v]; !ok {
		b.ladderNF[v] = nf
	}
}

// comparatorNominal returns the cached fault-free comparator response.
func (b *Baselines) comparatorNominal(k cmpNomKey) (*signature.Response, bool) {
	if b == nil {
		return nil, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	r, ok := b.cmpNom[k]
	return r, ok
}

// storeComparatorNominal records a fault-free comparator response.
func (b *Baselines) storeComparatorNominal(k cmpNomKey, r *signature.Response) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.cmpNom[k]; !ok {
		b.cmpNom[k] = r
	}
}
