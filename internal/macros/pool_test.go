package macros

import (
	"context"
	"math"
	"reflect"
	"testing"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/signature"
)

// TestPooledRespondBitIdentical pins the engine-pool reuse contract: a
// fault-free comparator response served from a warm pooled engine must be
// bit-for-bit the response a fresh engine produces.
func TestPooledRespondBitIdentical(t *testing.T) {
	m := NewComparator(DefaultVehicle())
	ctx := context.Background()
	fresh, err := m.Respond(ctx, nil, RespondOpts{Var: Nominal(), CurrentsOnly: true})
	if err != nil {
		t.Fatal(err)
	}

	pool := NewEnginePool()
	opt := RespondOpts{Var: Nominal(), CurrentsOnly: true, Pool: pool}
	first, err := m.Respond(ctx, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	if pool.size() == 0 {
		t.Fatal("fault-free run did not check its engine into the pool")
	}
	// The second call checks the warm engine out and retunes it.
	second, err := m.Respond(ctx, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh, first) || !reflect.DeepEqual(fresh, second) {
		t.Fatalf("pooled responses diverge from fresh:\nfresh  %+v\nfirst  %+v\nsecond %+v",
			fresh, first, second)
	}
}

// TestFaultyRespondPoolIsolation is the pool-isolation contract of the
// structure-keyed pool: a conductance-only faulty run pools its engine
// under the fault's own key — never under (or out of) the fault-free
// key — so fault-free responses after a faulty run stay bit-identical;
// a topology-changing fault (an open splits nodes) has no stable
// topology key and must leave the pool entirely untouched.
func TestFaultyRespondPoolIsolation(t *testing.T) {
	m := NewComparator(DefaultVehicle())
	ctx := context.Background()
	pool := NewEnginePool()
	met := &obs.Metrics{}
	opt := RespondOpts{Var: Nominal(), CurrentsOnly: true, Pool: pool, Metrics: met}

	fresh, err := m.Respond(ctx, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	warm := pool.size()
	if warm == 0 {
		t.Fatal("fault-free run did not populate the pool")
	}

	// Conductance-only: a bridge between existing nets. Its engine pools
	// under the fault key, and the repeat run is served by rebind.
	f := &faults.Fault{Kind: faults.Short, Nets: []string{"o1", "vss"}, Res: 0.2}
	faulty, err := m.Respond(ctx, f, opt)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(fresh, faulty) {
		t.Fatal("hard short produced the fault-free response; fault was not injected")
	}
	hits := met.Get(obs.CtrRebindHits)
	faulty2, err := m.Respond(ctx, f, opt)
	if err != nil {
		t.Fatal(err)
	}
	if met.Get(obs.CtrRebindHits) <= hits {
		t.Fatal("repeated conductance-only fault was not served by rebind")
	}
	if !reflect.DeepEqual(faulty, faulty2) {
		t.Fatalf("rebind-served faulty response diverged:\nwant %+v\ngot  %+v", faulty, faulty2)
	}

	after, err := m.Respond(ctx, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh, after) {
		t.Fatalf("fault-free response after a faulty run diverged:\nwant %+v\ngot  %+v", fresh, after)
	}

	// Topology-changing: an open on m1's drain. Never pooled.
	rebuilds := met.Get(obs.CtrFullRebuilds)
	size := pool.size()
	open := &faults.Fault{Kind: faults.Open, Nets: []string{"o1"},
		FarTerminals: []faults.Terminal{{Device: "m1", Net: "o1"}}}
	if _, err := m.Respond(ctx, open, opt); err != nil {
		t.Fatal(err)
	}
	if got := pool.size(); got != size {
		t.Fatalf("topology-changing fault changed the pool: size %d -> %d", size, got)
	}
	if met.Get(obs.CtrFullRebuilds) <= rebuilds {
		t.Fatal("topology-changing fault did not count a full rebuild")
	}
	if _, err := m.Respond(ctx, open, opt); err != nil {
		t.Fatal(err)
	}
	if got := pool.size(); got != size {
		t.Fatalf("repeated topology-changing fault changed the pool: size %d -> %d", size, got)
	}
}

// respCloseTo reports whether two ladder responses carry the same
// classification and numerically agree to within rel (relative, with a
// small absolute floor) on the analog measurements. The low-rank update
// path reproduces the classic solve within the Newton convergence
// contract rather than bit-for-bit, so responses straddling the two
// paths are compared at solver accuracy.
func respCloseTo(a, b *signature.Response, rel float64) bool {
	if a.Voltage != b.Voltage || a.MissingCode != b.MissingCode ||
		a.CommonMode != b.CommonMode || a.StuckVal != b.StuckVal ||
		len(a.Currents) != len(b.Currents) {
		return false
	}
	close := func(x, y float64) bool {
		return math.Abs(x-y) <= 1e-12+rel*math.Max(math.Abs(x), math.Abs(y))
	}
	if !close(a.OffsetV, b.OffsetV) {
		return false
	}
	for k, v := range a.Currents {
		w, ok := b.Currents[k]
		if !ok || !close(v, w) {
			return false
		}
	}
	return true
}

// TestLadderBaselineCacheBitIdentical pins the baseline-memo contract on
// the ladder: a class analysis served a cached nominal tap vector must
// produce a deterministic response agreeing with a cache-free recompute
// (bitwise fault-free; within the solver contract for faulty runs,
// which a cache-armed analysis routes through the low-rank update
// path), the hit must be counted, and faulty results must never poison
// the fault-free cache.
func TestLadderBaselineCacheBitIdentical(t *testing.T) {
	l := NewLadder(DefaultVehicle())
	ctx := context.Background()
	f := &faults.Fault{Kind: faults.Short, Nets: []string{"t096", "t128"}, Res: 25}

	want, err := l.Respond(ctx, f, RespondOpts{Var: Nominal()})
	if err != nil {
		t.Fatal(err)
	}

	met := &obs.Metrics{}
	base := NewBaselines()
	opt := RespondOpts{Var: Nominal(), Base: base, Metrics: met}
	first, err := l.Respond(ctx, f, opt)
	if err != nil {
		t.Fatal(err)
	}
	if n := met.Get(obs.CtrBaselineCacheHits); n != 0 {
		t.Fatalf("first analysis hit a cold cache (%d hits)", n)
	}
	second, err := l.Respond(ctx, f, opt)
	if err != nil {
		t.Fatal(err)
	}
	if n := met.Get(obs.CtrBaselineCacheHits); n != 1 {
		t.Fatalf("second analysis: %d baseline hits, want 1", n)
	}
	// A bridge between existing taps is rank-1-updatable: both analyses
	// must have taken the shared-factorization path, never falling back.
	if n := met.Get(obs.CtrRank1Solves); n != 2 {
		t.Fatalf("rank1_solves = %d, want 2", n)
	}
	if n := met.Get(obs.CtrRank1Fallbacks); n != 0 {
		t.Fatalf("rank1_fallbacks = %d, want 0", n)
	}
	// Cache-armed analyses are deterministic among themselves and agree
	// with the classic path at solver accuracy.
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("repeated cached analyses diverge:\nfirst  %+v\nsecond %+v", first, second)
	}
	if !respCloseTo(want, first, 1e-9) {
		t.Fatalf("low-rank response disagrees with classic path beyond solver accuracy:\nwant  %+v\ngot   %+v",
			want, first)
	}

	// A different die must not see this variation's baseline.
	other := Nominal()
	other.RhoScale = 1.01
	if _, err := l.Respond(ctx, f, RespondOpts{Var: other, Base: base, Metrics: met}); err != nil {
		t.Fatal(err)
	}
	if n := met.Get(obs.CtrBaselineCacheHits); n != 1 {
		t.Fatalf("variation change reused a stale baseline (%d hits)", n)
	}

	// The fault-free ladder itself, analysed through the same cache, must
	// match a cache-free run — the faulty analyses cannot have stored
	// their taps.
	wantFree, err := l.Respond(ctx, nil, RespondOpts{Var: Nominal()})
	if err != nil {
		t.Fatal(err)
	}
	gotFree, err := l.Respond(ctx, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantFree, gotFree) {
		t.Fatalf("fault-free response through a used cache diverged:\nwant %+v\ngot  %+v", wantFree, gotFree)
	}
}

// TestComparatorGOSBaselineCache exercises the comparator's memoised
// fault-free reference on the gate-oxide-short worst-case ranking: the
// second pinhole analysis must hit the cache and return the identical
// worst-case signature.
func TestComparatorGOSBaselineCache(t *testing.T) {
	m := NewComparator(DefaultVehicle())
	ctx := context.Background()
	f := &faults.Fault{Kind: faults.GOSPinhole, Device: "m1"}

	want, err := m.Respond(ctx, f, RespondOpts{Var: Nominal(), CurrentsOnly: true})
	if err != nil {
		t.Fatal(err)
	}

	met := &obs.Metrics{}
	opt := RespondOpts{Var: Nominal(), CurrentsOnly: true,
		Base: NewBaselines(), Pool: NewEnginePool(), Metrics: met}
	first, err := m.Respond(ctx, f, opt)
	if err != nil {
		t.Fatal(err)
	}
	second, err := m.Respond(ctx, f, opt)
	if err != nil {
		t.Fatal(err)
	}
	if n := met.Get(obs.CtrBaselineCacheHits); n < 1 {
		t.Fatalf("second pinhole analysis recomputed the nominal reference (%d hits)", n)
	}
	if !reflect.DeepEqual(want, first) || !reflect.DeepEqual(want, second) {
		t.Fatalf("cached-reference responses diverge:\nwant   %+v\nfirst  %+v\nsecond %+v",
			want, first, second)
	}
}
