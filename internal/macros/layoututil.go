package macros

import (
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/process"
)

// procShared is the process description used by every macro's fault
// modelling (material short resistances etc.).
var procShared = process.Default()

// Layout abstraction notes
//
// The macro layouts are procedural Manhattan abstractions of the real mask
// data: devices sit in rows, every net gets a horizontal metal1 trunk in a
// routing channel with short vertical metal1 stubs to the device contacts,
// and the shared distribution lines (clocks, biases, supplies, vin/vref)
// run vertically in metal2 through the cell. Rare same-layer stub/trunk
// crossings are tolerated as "virtual crossovers" (assumed realised with
// sub-resolution metal2 hops); they only marginally inflate the bridge
// statistics between the crossing nets. What the defect statistics
// actually depend on — which nets are adjacent, on which layer, over what
// length, and which device areas exist — is faithfully represented, and
// net connectivity is validated (one component per net) by the macro
// layout tests.

// devPlace positions one transistor in a macro layout.
type devPlace struct {
	name, d, g, s string
	x, y          float64
	pmos          bool
}

// terminal is a point that must be wired to a net.
type terminal struct {
	net  string
	x, y float64
	gate bool // needs a poly contact at (x, y)
}

// placeDevices draws the devices and collects their terminals. Geometric
// channel width is fixed at 4 µm (electrical W lives in the netlist).
func placeDevices(b *layout.Builder, devs []devPlace, pmosBulk string) []terminal {
	var terms []terminal
	const w = 4.0
	for _, d := range devs {
		opt := layout.MOSOpts{W: w, L: 1, PMOS: d.pmos}
		if d.pmos {
			opt.Bulk = pmosBulk
		}
		b.MOS(d.name, d.d, d.g, d.s, d.x, d.y, opt)
		terms = append(terms,
			terminal{net: d.s, x: d.x - 1.5, y: d.y},
			terminal{net: d.d, x: d.x + 1.5, y: d.y},
			terminal{net: d.g, x: d.x, y: d.y + w/2 + 0.5, gate: true},
		)
	}
	return terms
}

// routeNets draws, for every net with terminals, a horizontal metal1
// trunk at its assigned channel y plus vertical metal1 stubs from each
// terminal, and drops a via to the net's vertical metal2 distribution
// line when one exists.
func routeNets(b *layout.Builder, terms []terminal, trunkY map[string]float64, lineX map[string]float64) {
	byNet := map[string][]terminal{}
	for _, t := range terms {
		byNet[t.net] = append(byNet[t.net], t)
	}
	// Shape insertion order is load-bearing: fault extraction anchors
	// opens to the earliest shape of a net, so nets must be routed in a
	// deterministic order, not map order.
	nets := make([]string, 0, len(byNet))
	for net := range byNet {
		nets = append(nets, net)
	}
	sort.Strings(nets)
	for _, net := range nets {
		ts := byNet[net]
		ty, ok := trunkY[net]
		if !ok {
			continue
		}
		minX, maxX := math.Inf(1), math.Inf(-1)
		for _, t := range ts {
			minX = math.Min(minX, t.x)
			maxX = math.Max(maxX, t.x)
			if t.gate {
				b.CutAt(process.Contact, net, t.x, t.y)
			}
			lo, hi := math.Min(t.y, ty), math.Max(t.y, ty)
			b.VWire(process.Metal1, net, t.x, lo-0.5, hi+0.5)
		}
		if lx, ok := lineX[net]; ok {
			maxX = math.Max(maxX, lx)
			minX = math.Min(minX, lx)
			b.CutAt(process.Via, net, lx, ty)
		}
		b.HWire(process.Metal1, net, minX-1, maxX+1, ty)
	}
}

// drawLines draws the vertical metal2 distribution lines at the given x
// positions, spanning the cell height.
func drawLines(b *layout.Builder, lineX map[string]float64, y0, y1 float64) {
	nets := make([]string, 0, len(lineX))
	for net := range lineX {
		nets = append(nets, net)
	}
	sort.Strings(nets)
	for _, net := range nets {
		b.VWire(process.Metal2, net, lineX[net], y0, y1)
	}
}

// platedCap draws a parallel-plate capacitor: a poly bottom plate on net
// bot and a metal1 top plate on net top (pinhole and extra-contact defects
// between the plates short the capacitor, the classic sampling-cap defect).
func platedCap(b *layout.Builder, top, bot string, x0, y0, x1, y1 float64) (topTerm, botTerm terminal) {
	b.RectWire(process.Poly, bot, geom.NewRect(x0, y0, x1, y1))
	b.RectWire(process.Metal1, top, geom.NewRect(x0+1, y0+1, x1-1, y1-1))
	// The top plate connects via its metal; the bottom plate needs a
	// poly contact just outside the top plate's shadow.
	b.CutAt(process.Contact, bot, x0+0.5, y0+0.5)
	return terminal{net: top, x: (x0 + x1) / 2, y: (y0 + y1) / 2},
		terminal{net: bot, x: x0 + 0.5, y: y0 + 0.5}
}
