package macros

import (
	"context"
	"math"
	"testing"

	"repro/internal/faults"
	"repro/internal/signature"
)

func TestDecoderExhaustiveIdentity(t *testing.T) {
	m := NewDecoder(DefaultVehicle())
	for k := 0; k < DefaultVehicle().Comparators(); k++ {
		code, iddq, err := m.decode(k, faultNone())
		if err != nil {
			t.Fatal(err)
		}
		if code != k || iddq {
			t.Fatalf("decode(%d) = %d iddq=%v", k, code, iddq)
		}
	}
}

func TestDecoderOpenMapsToStuck(t *testing.T) {
	m := NewDecoder(DefaultVehicle())
	f := &faults.Fault{Kind: faults.Open, Nets: []string{"h100"},
		FarTerminals: []faults.Terminal{{Device: "b2_l0_0g", Net: "h100"}}}
	df, ok := m.mapFault(f)
	if !ok || df.Net != "h100" {
		t.Fatalf("mapFault open = %+v ok=%v", df, ok)
	}
	resp, err := m.Respond(context.Background(), f, RespondOpts{Var: Nominal()})
	if err != nil {
		t.Fatal(err)
	}
	// A one-hot net stuck either way corrupts at least one code path.
	if df.Val && !resp.MissingCode {
		t.Fatal("h stuck-1 must corrupt codes")
	}
}

func TestDecoderJunctionPinholeIDDQOnly(t *testing.T) {
	m := NewDecoder(DefaultVehicle())
	f := &faults.Fault{Kind: faults.JunctionPinholeKind, Nets: []string{"h005", "vss"}}
	resp, err := m.Respond(context.Background(), f, RespondOpts{Var: Nominal()})
	if err != nil {
		t.Fatal(err)
	}
	if resp.MissingCode {
		t.Fatal("junction pinhole must not change logic")
	}
	if resp.Currents["iddq.dc"] == 0 {
		t.Fatal("junction pinhole must raise IDDQ")
	}
}

func TestComparatorGOSWorstCase(t *testing.T) {
	m := NewComparator(DefaultVehicle())
	f := &faults.Fault{Kind: faults.GOSPinhole, Device: "m1"}
	resp, err := m.Respond(context.Background(), f, RespondOpts{Var: Nominal()})
	if err != nil {
		t.Fatal(err)
	}
	// The worst case must be chosen among the three variants; a gate
	// pinhole on the diff pair input should at minimum disturb the
	// offset (the sampled node leaks through 2 kΩ during comparison).
	if resp.Voltage == signature.VSigNone && math.Abs(resp.OffsetV) < 1e-4 {
		// Accept: chosen variant is genuinely hard to detect — but
		// then at least a current deviation should exist vs nominal.
		nom, err := m.Respond(context.Background(), nil, RespondOpts{Var: Nominal(), CurrentsOnly: true})
		if err != nil {
			t.Fatal(err)
		}
		var worst float64
		for k, v := range resp.Currents {
			if d := math.Abs(v - nom.Currents[k]); d > worst {
				worst = d
			}
		}
		if worst < 1e-6 {
			t.Fatalf("GOS on m1 left no trace at all (worst Δ=%g)", worst)
		}
	}
}

func TestClockgenClockValueSignature(t *testing.T) {
	m := NewClockgen(DefaultVehicle())
	// A high-ohmic load on clk2 degrades its level without killing it:
	// 2 kΩ to ground vs the big driver ⇒ a sagged high level.
	f := &faults.Fault{Kind: faults.ThickOxPinhole, Nets: []string{"clk2", "vss"}}
	resp, err := m.Respond(context.Background(), f, RespondOpts{Var: Nominal()})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Voltage != signature.VSigClock && resp.Voltage != signature.VSigStuck {
		t.Fatalf("clk2 level fault signature = %v", resp.Voltage)
	}
	// The driver fights the pinhole when clk2 is high: IDDQ in state 1.
	if resp.Currents["iddq.s1"] < 1e-4 {
		t.Fatalf("iddq.s1 = %g, want mA scale", resp.Currents["iddq.s1"])
	}
}

func TestComparatorVinVrefShortIinput(t *testing.T) {
	m := NewComparator(DefaultVehicle())
	f := &faults.Fault{Kind: faults.Short, Nets: []string{"vin", "vref"}, Res: 0.2}
	resp, err := m.Respond(context.Background(), f, RespondOpts{Var: Nominal(), CurrentsOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	// At the extreme inputs, vin and vref differ by 1.5 V: the short
	// draws amps through the input terminals.
	if resp.Currents["iin.vin.lo"] < 0.1 {
		t.Fatalf("iin.vin.lo = %g, want huge", resp.Currents["iin.vin.lo"])
	}
}

func TestVariationDrawBounds(t *testing.T) {
	v := Nominal()
	if v.KPScale != 1 || v.VddScale != 1 || v.RhoScale != 1 || v.TempC != 27 {
		t.Fatalf("nominal = %+v", v)
	}
	if v.FFLeakA != FFLeakNominal {
		t.Fatal("nominal leak")
	}
	// Draw: statistically sane.
	rng := newTestRng()
	var leakSum float64
	for i := 0; i < 500; i++ {
		d := Draw(rng)
		if d.TempC < TempLo || d.TempC > TempHi {
			t.Fatalf("temp out of range: %g", d.TempC)
		}
		if d.FFLeakA < 0 {
			t.Fatal("negative leak")
		}
		leakSum += d.FFLeakA
	}
	mean := leakSum / 500
	if math.Abs(mean-FFLeakNominal) > 5e-6 {
		t.Fatalf("leak mean = %g", mean)
	}
}

func TestLadderTapName(t *testing.T) {
	if tapName(0) != "t000" || tapName(256) != "t256" {
		t.Fatalf("tapName: %s %s", tapName(0), tapName(256))
	}
}

func TestMacroInterfaces(t *testing.T) {
	ms := []Macro{NewComparator(DefaultVehicle()), NewLadder(DefaultVehicle()), NewBiasgen(DefaultVehicle()), NewClockgen(DefaultVehicle()), NewDecoder(DefaultVehicle())}
	names := map[string]bool{}
	for _, m := range ms {
		if m.Name() == "" || names[m.Name()] {
			t.Fatalf("bad/duplicate macro name %q", m.Name())
		}
		names[m.Name()] = true
		if m.Count() < 1 {
			t.Fatalf("%s count = %d", m.Name(), m.Count())
		}
		cell := m.Layout(false)
		if cell.Area() <= 0 || len(cell.Shapes) == 0 {
			t.Fatalf("%s layout empty", m.Name())
		}
		if len(cell.Ports) == 0 {
			t.Fatalf("%s has no ports", m.Name())
		}
	}
	// The comparator array dominates the chip area (paper: "most of the
	// ADC area is covered by these cells").
	cmpArea := float64(DefaultVehicle().Comparators()) * NewComparator(DefaultVehicle()).Layout(false).Area()
	var rest float64
	for _, m := range ms[1:] {
		rest += float64(m.Count()) * m.Layout(false).Area()
	}
	if cmpArea < rest {
		t.Fatalf("comparator array area %.0f must dominate the rest %.0f", cmpArea, rest)
	}
}

func TestTestbenchBuilders(t *testing.T) {
	cmp := BuildComparatorTestbench(RespondOpts{Var: Nominal()})
	if cmp.C.Element("m1") == nil || cmp.C.Element("bg.mn1") == nil {
		t.Fatal("comparator testbench incomplete")
	}
	clk := BuildClockgenTestbench(Nominal())
	if clk.C.Element("cg.mp1_0") == nil {
		t.Fatal("clockgen testbench incomplete")
	}
	lad := BuildLadderTestbench(Nominal())
	if lad.C.Element("r000") == nil || lad.C.Element("vrefhi") == nil {
		t.Fatal("ladder testbench incomplete")
	}
}
