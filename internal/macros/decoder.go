package macros

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"repro/internal/digital"
	"repro/internal/faults"
	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/obs"
	"repro/internal/process"
	"repro/internal/signature"
)

// DecoderMacro is the digital thermometer-to-binary decoder: a one-hot
// transition-detect stage (h_i = t_i AND NOT t_{i+1}) followed by an
// OR-plane forming the vehicle's N output bits — the gate-level
// equivalent of the ROM decoder in the real converter. Being a digital cell it is analysed
// at gate level: shorts become bridging faults (with the classic IDDQ
// observation when the bridged nets fight), opens become stuck-at faults,
// and analog-leak defects (junction pinholes, parasitic devices) raise
// IDDQ without a logic effect.
type DecoderMacro struct {
	// Veh is the vehicle spec: thermometer input count
	// (Vehicle.DecoderInputs — t001..t(2^N-1); code 0 needs no input)
	// and output width derive from it.
	Veh Vehicle
	ckt *digital.Circuit
	// tIdx/bIdx are the compiled net slots of the thermometer inputs
	// (tIdx[i-1] ↔ t net i) and output bits — resolved once so the
	// per-level decode sweep runs name-free over a reused scratch.
	tIdx    []int
	bIdx    []int
	scratch sync.Pool
}

// tnet names thermometer input i (1-based).
func tnet(i int) string { return fmt.Sprintf("t%03d", i) }

// NewDecoder builds the decoder macro of the given vehicle (the gate
// network is constructed once and shared, index-compiled for the
// decode sweep).
func NewDecoder(veh Vehicle) *DecoderMacro {
	m := &DecoderMacro{Veh: veh, ckt: buildDecoderCircuit(veh)}
	for i := 1; i <= veh.DecoderInputs(); i++ {
		idx, ok := m.ckt.NetIndex(tnet(i))
		if !ok {
			panic("macros: decoder input net missing: " + tnet(i))
		}
		m.tIdx = append(m.tIdx, idx)
	}
	for bit := 0; bit < veh.Bits; bit++ {
		name := fmt.Sprintf("b%d", bit)
		idx, ok := m.ckt.NetIndex(name)
		if !ok {
			panic("macros: decoder output net missing: " + name)
		}
		m.bIdx = append(m.bIdx, idx)
	}
	m.scratch.New = func() any {
		s, err := m.ckt.NewScratch()
		if err != nil {
			panic(err) // unreachable: NetIndex above already compiled
		}
		return s
	}
	return m
}

// Name implements Macro.
func (m *DecoderMacro) Name() string { return "decoder" }

// Count implements Macro.
func (m *DecoderMacro) Count() int { return 1 }

// buildDecoderCircuit constructs the gate network.
func buildDecoderCircuit(veh Vehicle) *digital.Circuit {
	inputs := veh.DecoderInputs()
	c := &digital.Circuit{}
	for i := 1; i <= inputs; i++ {
		c.Inputs = append(c.Inputs, tnet(i))
	}
	// Inverters for t2..t(2^N-1).
	for i := 2; i <= inputs; i++ {
		c.AddGate(fmt.Sprintf("inv%03d", i), digital.Not, fmt.Sprintf("n%03d", i), tnet(i))
	}
	// One-hot stage.
	for i := 1; i <= inputs; i++ {
		h := fmt.Sprintf("h%03d", i)
		if i == inputs {
			c.AddGate(fmt.Sprintf("and%03d", i), digital.Buf, h, tnet(i))
		} else {
			c.AddGate(fmt.Sprintf("and%03d", i), digital.And, h, tnet(i), fmt.Sprintf("n%03d", i+1))
		}
	}
	// OR-plane: bit b = OR of h_i for every i with bit b set.
	for bit := 0; bit < veh.Bits; bit++ {
		var ins []string
		for i := 1; i <= inputs; i++ {
			if i&(1<<bit) != 0 {
				ins = append(ins, fmt.Sprintf("h%03d", i))
			}
		}
		out := fmt.Sprintf("b%d", bit)
		c.Outputs = append(c.Outputs, out)
		buildOrTree(c, out, ins)
	}
	return c
}

// buildOrTree reduces ins with 2-input OR gates into out.
func buildOrTree(c *digital.Circuit, out string, ins []string) {
	level := 0
	for len(ins) > 1 {
		var next []string
		for i := 0; i < len(ins); i += 2 {
			if i+1 == len(ins) {
				next = append(next, ins[i])
				continue
			}
			var o string
			if len(ins) == 2 {
				o = out
			} else {
				o = fmt.Sprintf("%s_l%d_%d", out, level, i/2)
			}
			c.AddGate(o+"g", digital.Or, o, ins[i], ins[i+1])
			next = append(next, o)
		}
		ins = next
		level++
	}
	if len(ins) == 1 && ins[0] != out {
		c.AddGate(out+"g", digital.Buf, out, ins[0])
	}
}

// decode runs the gate network on the thermometer code for input level k
// (comparators 1..k fire) and returns the output code.
func (m *DecoderMacro) decode(k int, f digital.Fault) (int, bool, error) {
	s := m.scratch.Get().(*digital.Scratch)
	defer m.scratch.Put(s)
	s.Reset()
	for i, idx := range m.tIdx {
		s.Set(idx, i+1 <= k)
	}
	iddq, _, err := m.ckt.EvalInto(s, f)
	if err != nil {
		return 0, false, err
	}
	code := 0
	for bit, idx := range m.bIdx {
		if s.Val(idx) {
			code |= 1 << bit
		}
	}
	return code, iddq, nil
}

// mapFault converts a layout-extracted fault record into the gate-level
// fault model. The second return value is false for defects with no
// electrical consequence at gate level.
func (m *DecoderMacro) mapFault(f *faults.Fault) (digital.Fault, bool) {
	isRail := func(n string) (bool, bool) { // (isRail, value)
		switch n {
		case "vddd":
			return true, true
		case "vss", "0":
			return true, false
		}
		return false, false
	}
	stuckVal := func(seed string) bool {
		h := fnv.New32a()
		h.Write([]byte(seed))
		return h.Sum32()&1 == 1
	}
	switch f.Kind {
	case faults.Short, faults.ExtraContactKind, faults.ThickOxPinhole:
		nets := append([]string(nil), f.Nets...)
		sort.Strings(nets)
		if len(nets) < 2 {
			return digital.Fault{}, false
		}
		a, bn := nets[0], nets[1]
		railA, valA := isRail(a)
		railB, valB := isRail(bn)
		switch {
		case railA && railB:
			// Supply-to-supply short: pure IDDQ.
			return digital.Fault{IDDQOnly: true}, true
		case railA:
			return digital.Fault{Kind: digital.StuckAt, Net: bn, Val: valA, IDDQOnly: true}, true
		case railB:
			return digital.Fault{Kind: digital.StuckAt, Net: a, Val: valB, IDDQOnly: true}, true
		default:
			return digital.Fault{Kind: digital.Bridge, Net: a, Net2: bn}, true
		}
	case faults.Open:
		if len(f.Nets) != 1 {
			return digital.Fault{}, false
		}
		return digital.Fault{Kind: digital.StuckAt, Net: f.Nets[0], Val: stuckVal(f.Nets[0])}, true
	case faults.GOSPinhole:
		// Gate-to-channel leak in a logic gate: modelled as a bridge
		// between the cell's input and output nets.
		in, out, ok := m.gateNets(f.Device)
		if !ok {
			return digital.Fault{IDDQOnly: true}, true
		}
		return digital.Fault{Kind: digital.Bridge, Net: in, Net2: out}, true
	case faults.ShortedDevice:
		// A shorted pull-down (NMOS) pins the output low, a shorted
		// pull-up pins it high; either way quiescent current flows
		// whenever the complementary device fights it.
		_, out, ok := m.gateNets(f.Device)
		if !ok {
			return digital.Fault{}, false
		}
		return digital.Fault{Kind: digital.StuckAt, Net: out, Val: stuckVal(f.Device), IDDQOnly: true}, true
	case faults.JunctionPinholeKind, faults.NewDevice:
		return digital.Fault{IDDQOnly: true}, true
	}
	return digital.Fault{}, false
}

// gateNets resolves a layout device name ("<gate>.n"/"<gate>.p") to the
// gate's first input net and output net.
func (m *DecoderMacro) gateNets(dev string) (in, out string, ok bool) {
	name := dev
	if n := len(name); n > 2 && (name[n-2:] == ".n" || name[n-2:] == ".p") {
		name = name[:n-2]
	}
	for _, g := range m.ckt.Gates {
		if g.Name == name {
			return g.In[0], g.Out, true
		}
	}
	return "", "", false
}

// Respond implements Macro: the missing-code test is run directly through
// the gate network (all 2^N thermometer patterns of the vehicle), and
// IDDQ is flagged when any pattern drives a bridge to a conflict.
func (m *DecoderMacro) Respond(ctx context.Context, f *faults.Fault, opt RespondOpts) (*signature.Response, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	resp := &signature.Response{Currents: map[string]float64{}}
	sp := opt.span(obs.StageInject, m.Name())
	var df digital.Fault
	if f != nil {
		var ok bool
		df, ok = m.mapFault(f)
		if !ok {
			df = digital.Fault{}
		}
	}
	sp.End()
	sp = opt.span(obs.StageFaultSim, m.Name())
	seen := make([]bool, m.Veh.Comparators())
	iddq := false
	erratic := false
	for k := 0; k < m.Veh.Comparators(); k++ {
		if err := ctx.Err(); err != nil {
			sp.End()
			return nil, err
		}
		code, hit, err := m.decode(k, df)
		if err != nil {
			sp.End()
			return nil, err
		}
		iddq = iddq || hit
		if code >= 0 && code < len(seen) {
			seen[code] = true
		} else {
			erratic = true
		}
	}
	sp.End()
	// IDDQ is reported as the crowbar-current estimate of one fighting
	// gate pair (the digital supply is otherwise quiescent).
	const crowbar = 1e-3
	if iddq {
		resp.Currents["iddq.dc"] = crowbar
	} else {
		resp.Currents["iddq.dc"] = 0
	}
	if opt.CurrentsOnly {
		return resp, nil
	}
	csp := opt.span(obs.StageClassify, m.Name())
	missing := false
	for _, s := range seen {
		if !s {
			missing = true
		}
	}
	switch {
	case erratic:
		resp.Voltage = signature.VSigMixed
		resp.MissingCode = true
	case missing:
		resp.Voltage = signature.VSigStuck
		resp.MissingCode = true
	default:
		resp.Voltage = signature.VSigNone
	}
	csp.End()
	return resp, nil
}

// Layout implements Macro: a channel-routed abstraction — every net gets
// one metal1 track (with consumer stubs carrying the consuming gate's
// name for open-fault extraction), tracks are packed into columns, and
// each gate contributes an NMOS/PMOS pair in device rows for the
// oxide/junction defect mechanisms. The dft flag does not change the
// decoder.
func (m *DecoderMacro) Layout(bool) *layout.Cell {
	b := layout.NewBuilder("decoder")
	b.DefaultWidth = 1.0

	// Net order: inputs first, then gate outputs in construction order.
	nets := append([]string(nil), m.ckt.Inputs...)
	consumers := map[string][]string{}
	for _, g := range m.ckt.Gates {
		nets = append(nets, g.Out)
		for _, in := range g.In {
			consumers[in] = append(consumers[in], g.Name)
		}
	}

	// Tracks: pitch 2 µm vertically, 300 tracks per column.
	const pitch = 2.0
	const perCol = 300
	const trackLen = 100.0
	const colGap = 40.0
	for idx, net := range nets {
		col := idx / perCol
		row := idx % perCol
		x0 := float64(col) * (trackLen + colGap)
		y := float64(row) * pitch
		b.HWire(process.Metal1, net, x0, x0+trackLen, y)
		// Consumer stubs spaced along the track carry the consuming
		// gate name so opens isolate real loads.
		for ci, g := range consumers[net] {
			x := x0 + 5 + float64(ci%9)*10
			b.C.Add(layout.Shape{
				Layer: process.Metal1, Net: net, Role: layout.Wire,
				Device: g,
				Rect:   rectAt(x, y+0.5, 1.0, 1.5),
			})
		}
	}

	// Device area: one NMOS + PMOS pair per gate, below the channel.
	const devY0 = -20.0
	for gi, g := range m.ckt.Gates {
		x := 4 + float64(gi%220)*6
		y := devY0 - float64(gi/220)*16
		b.MOS(g.Name+".n", g.Out, g.In[0], "vss", x, y, layout.MOSOpts{W: 3, L: 1})
		b.MOS(g.Name+".p", g.Out, g.In[0], "vddd", x, y-8, layout.MOSOpts{W: 3, L: 1, PMOS: true, Bulk: "vddd"})
	}
	// Supply rails along the device area.
	bounds := b.C.Bounds()
	b.HWire(process.Metal2, "vddd", bounds.X0, bounds.X1, devY0+6)
	b.HWire(process.Metal2, "vss", bounds.X0, bounds.X1, devY0+9)

	for i := 1; i <= m.Veh.DecoderInputs(); i++ {
		b.C.MarkPort(tnet(i))
	}
	b.C.MarkPort("vddd", "vss")
	for bit := 0; bit < m.Veh.Bits; bit++ {
		b.C.MarkPort(fmt.Sprintf("b%d", bit))
	}
	return b.C
}

// rectAt builds a rect centred at (x, y) with the given width and height.
func rectAt(x, y, w, h float64) geom.Rect {
	return geom.NewRect(x-w/2, y-h/2, x+w/2, y+h/2)
}
