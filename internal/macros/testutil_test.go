package macros

import (
	"math/rand"
	"testing"

	"repro/internal/digital"

	"repro/internal/layout"
	"repro/internal/process"
)

// biasLineX extracts the x position of each bias net's vertical metal2
// distribution line.
func biasLineX(t *testing.T, cell *layout.Cell) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	for _, s := range cell.Shapes {
		if s.Layer != process.Metal2 {
			continue
		}
		switch s.Net {
		case "vbn1", "vbn2", "vbp1", "vbp2":
			if s.Rect.H() > s.Rect.W() { // the vertical line
				out[s.Net] = s.Rect.Center().X
			}
		}
	}
	if len(out) != 4 {
		t.Fatalf("bias lines found: %v", out)
	}
	return out
}

// faultNone returns the fault-free digital fault value.
func faultNone() digital.Fault { return digital.Fault{} }

// newTestRng returns a deterministic rand source for variation tests.
func newTestRng() *rand.Rand { return rand.New(rand.NewSource(7)) }
