package macros

import "testing"

// TestVehicleDefaultReproducesHistoricalConstants pins the bit-identity
// contract of the refactor: every derived quantity of the 8-bit vehicle
// must equal the former package constant exactly (==, not within an
// epsilon) — the campaign's byte-identity at the default resolution
// depends on it.
func TestVehicleDefaultReproducesHistoricalConstants(t *testing.T) {
	v := DefaultVehicle()
	if v.Bits != 8 {
		t.Fatalf("default bits %d", v.Bits)
	}
	if got := v.Comparators(); got != 256 {
		t.Fatalf("Comparators() = %d", got)
	}
	if got := v.LadderSegments(); got != 256 {
		t.Fatalf("LadderSegments() = %d", got)
	}
	if got := v.DecoderInputs(); got != 255 {
		t.Fatalf("DecoderInputs() = %d", got)
	}
	if got := v.LSB(); got != 2.0/256 {
		t.Fatalf("LSB() = %v, want %v exactly", got, 2.0/256)
	}
	if got := v.OffsetLimit(); got != 8e-3 {
		t.Fatalf("OffsetLimit() = %v, want 8e-3 exactly", got)
	}
	if got := v.RSeg(); got != 8.0 {
		t.Fatalf("RSeg() = %v, want 8 exactly", got)
	}
	if got := v.TestSamples(); got != 1000 {
		t.Fatalf("TestSamples() = %d, want the paper's 1000", got)
	}
}

// TestVehicleScaling checks the family derivations at non-default
// members.
func TestVehicleScaling(t *testing.T) {
	cases := []struct {
		bits, comps, samples int
		rseg                 float64
	}{
		{4, 16, 1000, 128},
		{6, 64, 1000, 32},
		{8, 256, 1000, 8},
		{10, 1024, 4000, 2},
		{12, 4096, 16000, 0.5},
	}
	for _, tc := range cases {
		v, err := NewVehicle(tc.bits)
		if err != nil {
			t.Fatalf("bits %d: %v", tc.bits, err)
		}
		if v.Comparators() != tc.comps {
			t.Errorf("bits %d: Comparators() = %d, want %d", tc.bits, v.Comparators(), tc.comps)
		}
		if v.TestSamples() != tc.samples {
			t.Errorf("bits %d: TestSamples() = %d, want %d", tc.bits, v.TestSamples(), tc.samples)
		}
		if v.RSeg() != tc.rseg {
			t.Errorf("bits %d: RSeg() = %v, want %v", tc.bits, v.RSeg(), tc.rseg)
		}
		// The serpentine layout needs whole rows.
		if v.LadderSegments()%LadderRowLen != 0 {
			t.Errorf("bits %d: %d segments not a multiple of the row length", tc.bits, v.LadderSegments())
		}
		// The test ramp must keep at least two samples per code, or
		// fault-free converters would fail their own missing-code test.
		if v.TestSamples() < 2*v.Comparators() {
			t.Errorf("bits %d: %d samples for %d codes", tc.bits, v.TestSamples(), v.Comparators())
		}
	}
	for _, bad := range []int{0, 3, 13, -1} {
		if _, err := NewVehicle(bad); err == nil {
			t.Errorf("bits %d accepted", bad)
		}
	}
}
