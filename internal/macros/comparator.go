package macros

import (
	"context"
	"fmt"
	"math"
	"sync"

	"repro/internal/adc"
	"repro/internal/faults"
	"repro/internal/layout"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/signature"
	"repro/internal/spice"
)

// ComparatorMacro is the clocked comparator + flipflop slice, the macro
// the paper uses to walk through the whole defect-oriented test path. The
// fault simulation co-instantiates the bias generator and the clock
// generator's output buffers so faults on the shared bias/clock
// distribution lines behave realistically (the paper's 72.2 % cross-macro
// faults).
type ComparatorMacro struct {
	// Veh is the vehicle spec: the instance count, the propagation
	// model's slice count and the offset-detection budget derive from it.
	Veh Vehicle
	// VRef is the reference tap this slice compares against.
	VRef float64

	mu     sync.Mutex
	offNom map[bool]float64 // design (fault-free) offset per DfT setting
}

// NewComparator returns the comparator macro of the given vehicle with
// its mid-range reference.
func NewComparator(veh Vehicle) *ComparatorMacro {
	return NewComparatorWithRef(veh, (VRefLo+VRefHi)/2)
}

// NewComparatorWithRef returns a comparator slice of the given vehicle
// comparing against the given reference tap voltage.
func NewComparatorWithRef(veh Vehicle, vref float64) *ComparatorMacro {
	return &ComparatorMacro{Veh: veh, VRef: vref, offNom: map[bool]float64{}}
}

// nominalOffset returns the comparator's design offset (charge injection
// and kickback are not perfectly balanced, exactly as in silicon). Fault
// signatures are classified on the offset *deviation* from this value —
// the systematic part is shared by all of the vehicle's slices and
// therefore part of the good signature.
func (m *ComparatorMacro) nominalOffset(ctx context.Context, dft bool, pool *EnginePool, base *Baselines) (float64, error) {
	m.mu.Lock()
	if off, ok := m.offNom[dft]; ok {
		m.mu.Unlock()
		return off, nil
	}
	m.mu.Unlock()
	// Bisect OUTSIDE the lock: the offset bisection runs a dozen full
	// transients, and holding the mutex across it would serialise every
	// parallel fault-class analysis behind the first caller. The
	// computation is deterministic, so concurrent first callers compute
	// the same value and the first store wins. A cancelled bisection is
	// NOT cached — the next caller recomputes. The caller's pool and
	// baseline cache are threaded through so the bisection's engines are
	// rebind-served like any other fault-free run.
	off, ok, err := m.bisectOffset(ctx, nil, RespondOpts{
		Var: Nominal(), DfT: dft, Pool: pool, Base: base,
	}, 0, nil)
	if err != nil {
		return 0, err
	}
	if !ok {
		off = 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if prev, ok := m.offNom[dft]; ok {
		return prev, nil
	}
	m.offNom[dft] = off
	return off, nil
}

// Name implements Macro.
func (m *ComparatorMacro) Name() string { return "comparator" }

// Count implements Macro.
func (m *ComparatorMacro) Count() int { return m.Veh.Comparators() }

// Layout implements Macro.
func (m *ComparatorMacro) Layout(dft bool) *layout.Cell { return comparatorLayout(dft) }

// nmosModel and pmosModel apply a variation to the model cards.
func nmosModel(v Variation) netlist.MOSModel {
	mod := netlist.NMOS1().AtTemp(v.TempC)
	mod.VT0 += v.DVTN
	mod.KP *= v.KPScale
	return mod
}

func pmosModel(v Variation) netlist.MOSModel {
	mod := netlist.PMOS1().AtTemp(v.TempC)
	mod.VT0 -= v.DVTP // more negative threshold for positive shift
	mod.KP *= v.KPScale
	return mod
}

// The simulation runs two full conversion cycles. The t=0 operating point
// leaves the flipflop metastable (mid-level, drawing crowbar current in
// the buffers); the first latch phase writes a valid state, so all
// settled-current measurements are taken in the SECOND cycle, exactly as
// a tester measures a converter that has been clocking.
var (
	sampWin  = [2]float64{350e-9, 390e-9}
	ampWin   = [2]float64{450e-9, 490e-9}
	latchWin = [2]float64{550e-9, 585e-9}
	tEnd     = 588e-9
	// The decision is read at the end of the FIRST latch phase: there the
	// flipflop enters the phase from its symmetric (metastable) reset, so
	// the read carries no hysteresis from a previous decision. The second
	// cycle, whose flipflop then holds a valid state, provides the
	// settled current-measurement windows above.
	tRead = 285e-9
)

// tranSchedule resolves the latch-regeneration onsets (clk3 rises at
// 200–205 ns and 500–505 ns) with fine steps; backward Euler needs
// h·λ ≲ 1 there to track the regenerative growth instead of damping it
// onto the metastable saddle.
var tranSchedule = []spice.TranSeg{
	{Until: 203e-9, Dt: TStep},
	{Until: 222e-9, Dt: 0.1e-9},
	{Until: 503e-9, Dt: TStep},
	{Until: 522e-9, Dt: 0.1e-9},
	{Until: tEnd, Dt: TStep},
}

// phaseNames orders the measurement windows.
var phaseNames = []struct {
	name string
	win  [2]float64
}{
	{"samp", sampWin},
	{"amp", ampWin},
	{"latch", latchWin},
}

// addClockBuffers builds the clock generator's output stage: a two-inverter
// buffer chain per phase, powered from the digital supply node vddd. The
// chain input nodes are phi1..phi3.
func addClockBuffers(b *netlist.Builder, v Variation) {
	nm, pm := nmosModel(v), pmosModel(v)
	for i := 1; i <= 3; i++ {
		phi := fmt.Sprintf("phi%d", i)
		mid := fmt.Sprintf("clkmid%d", i)
		clk := fmt.Sprintf("clk%d", i)
		b.MOS(fmt.Sprintf("cg.mp%da", i), mid, phi, "vddd", "vddd", 8, 1, pm)
		b.MOS(fmt.Sprintf("cg.mn%da", i), mid, phi, "0", "0", 4, 1, nm)
		b.MOS(fmt.Sprintf("cg.mp%db", i), clk, mid, "vddd", "vddd", 32, 1, pm)
		b.MOS(fmt.Sprintf("cg.mn%db", i), clk, mid, "0", "0", 16, 1, nm)
	}
}

// addBiasGenerator builds the four bias legs (vbn1, vbn2, vbp1, vbp2)
// powered from vddb. vbn1/vbn2 (and vbp1/vbp2) carry deliberately similar
// voltages — the paper's hard-to-detect adjacent bias lines.
func addBiasGenerator(b *netlist.Builder, v Variation) {
	nm, pm := nmosModel(v), pmosModel(v)
	r := 53e3 * v.RhoScale
	b.R("bg.rn1", "vddb", "vbn1", r)
	b.MOS("bg.mn1", "vbn1", "vbn1", "0", "0", 20, 1, nm)
	b.R("bg.rn2", "vddb", "vbn2", r)
	b.MOS("bg.mn2", "vbn2", "vbn2", "0", "0", 18, 1, nm)
	b.R("bg.rp1", "vbp1", "0", r)
	b.MOS("bg.mp1", "vbp1", "vbp1", "vddb", "vddb", 55, 1, pm)
	b.R("bg.rp2", "vbp2", "0", r)
	b.MOS("bg.mp2", "vbp2", "vbp2", "vddb", "vddb", 49, 1, pm)
}

// buildComparatorCircuit constructs the complete co-simulation testbench:
// comparator slice (supply vdda), bias generator (vddb), clock buffer
// stage (vddd), ideal phase inputs and the vin/vref sources.
func (m *ComparatorMacro) buildComparatorCircuit(vin float64, opt RespondOpts) *netlist.Builder {
	b := netlist.NewBuilder()
	m.buildComparatorInto(b, vin, opt)
	return b
}

// buildComparatorInto runs the testbench construction against the given
// builder — a plain builder for a simulation circuit, a recording one
// (netlist.NewRecorder) for the rebind binding. One construction path
// serves both, so a recorded binding cannot drift from a built circuit.
func (m *ComparatorMacro) buildComparatorInto(b *netlist.Builder, vin float64, opt RespondOpts) {
	v := opt.Var
	vdd := VDD * v.VddScale

	// Supplies: separate sources so each current is observable.
	b.Vsrc("vdda", "vdda", "0", netlist.DC(vdd))
	b.Vsrc("vddb", "vddb", "0", netlist.DC(vdd))
	b.Vsrc("vddd", "vddd", "0", netlist.DC(vdd))

	// Inputs.
	b.Vsrc("vvin", "vin", "0", netlist.DC(vin))
	b.Vsrc("vvref", "vref", "0", netlist.DC(m.VRef))

	// Phase inputs (ideal, at the circuit edge), 5 ns edges, two full
	// sample/amplify/latch cycles.
	ns := 1e-9
	b.Vsrc("vphi1", "phi1", "0", netlist.PWL{
		T: []float64{0, 90 * ns, 95 * ns, 300 * ns, 305 * ns, 390 * ns, 395 * ns, 600 * ns},
		V: []float64{vdd, vdd, 0, 0, vdd, vdd, 0, 0},
	})
	b.Vsrc("vphi2", "phi2", "0", netlist.PWL{
		T: []float64{0, 100 * ns, 105 * ns, 190 * ns, 195 * ns, 400 * ns, 405 * ns, 490 * ns, 495 * ns, 600 * ns},
		V: []float64{0, 0, vdd, vdd, 0, 0, vdd, vdd, 0, 0},
	})
	b.Vsrc("vphi3", "phi3", "0", netlist.PWL{
		T: []float64{0, 200 * ns, 205 * ns, 290 * ns, 295 * ns, 500 * ns, 505 * ns, 590 * ns, 595 * ns, 600 * ns},
		V: []float64{0, 0, vdd, vdd, 0, 0, vdd, vdd, 0, 0},
	})

	addClockBuffers(b, v)
	addBiasGenerator(b, v)

	nm, pm := nmosModel(v), pmosModel(v)

	// --- Comparator slice (supply vdda) ---
	// Sampling switches and capacitors.
	b.MOS("msw1", "inp", "clk1", "vin", "0", 8, 1, nm)
	b.MOS("msw2", "inn", "clk1", "vref", "0", 8, 1, nm)
	b.Cap("cs1", "inp", "0", 0.5e-12)
	b.Cap("cs2", "inn", "0", 0.5e-12)
	// Balanced class-A differential pair with current-source loads.
	b.MOS("m1", "o1", "inp", "tail", "0", 40, 1, nm)
	b.MOS("m2", "o2", "inn", "tail", "0", 40, 1, nm)
	// The tail and load currents are split over both bias lines of each
	// polarity (the second line trims the first), so every bias line
	// carries real current into every slice — which is what makes the
	// DfT-2 line re-ordering effective: post-DfT shorts land between
	// n- and p-type lines and disturb every one of the vehicle's 2^N
	// slices measurably.
	b.MOS("m5", "tail", "vbn1", "0", "0", 16, 1, nm)
	b.MOS("m5b", "tail", "vbn2", "0", "0", 4, 1, nm)
	b.MOS("m3", "o1", "vbp1", "vdda", "vdda", 26, 1, pm)
	b.MOS("m4", "o2", "vbp1", "vdda", "vdda", 26, 1, pm)
	b.MOS("m3b", "o1", "vbp2", "vdda", "vdda", 3, 1, pm)
	b.MOS("m4b", "o2", "vbp2", "vdda", "vdda", 3, 1, pm)
	// Diode-connected clamps define the output common mode (the
	// class-A current sources alone would drift into triode).
	b.MOS("m3d", "o1", "o1", "vdda", "vdda", 4, 1, pm)
	b.MOS("m4d", "o2", "o2", "vdda", "vdda", 4, 1, pm)
	// Regenerative latch enabled by clk3.
	b.MOS("m6", "o1", "o2", "ltail", "0", 20, 1, nm)
	b.MOS("m7", "o2", "o1", "ltail", "0", 20, 1, nm)
	b.MOS("m8", "ltail", "clk3", "0", "0", 30, 1, nm)
	// Flipflop: transfer gates + weak cross-coupled inverters.
	b.MOS("mt1", "q", "clk3", "o1", "0", 4, 1, nm)
	b.MOS("mt2", "qb", "clk3", "o2", "0", 4, 1, nm)
	b.MOS("mfp1", "qb", "q", "vdda", "vdda", 4, 2, pm)
	b.MOS("mfn1", "qb", "q", "0", "0", 2, 2, nm)
	b.MOS("mfp2", "q", "qb", "vdda", "vdda", 4, 2, pm)
	b.MOS("mfn2", "q", "qb", "0", "0", 2, 2, nm)
	// Output buffer: out = NOT q (out is high when vin > vref).
	b.MOS("mop", "out", "q", "vdda", "vdda", 8, 1, pm)
	b.MOS("mon", "out", "q", "0", "0", 4, 1, nm)
	// Flipflop leakage path, active during sampling (clk1 high). The
	// DfT-1 redesign eliminates it.
	if !opt.DfT && v.FFLeakA > 1e-9 {
		rleak := (vdd - 0.1) / v.FFLeakA
		b.MOS("mleak", "lk", "clk1", "0", "0", 20, 1, nm)
		b.R("rleak", "vdda", "lk", rleak)
	}
}

// cmpSession caches the recorded base binding across the runs of one
// comparator analysis variant: the lo/hi extremes and every bisection
// step share (Var, DfT, vref) — only the input level and the fault
// conductances move between them, and those are rebound per checkout.
type cmpSession struct {
	bind *netlist.Binding
}

// binding returns the session's base binding, fetching it from the
// pool's per-key cache (recording one when the cache misses or holds
// another variation's values). The input-source slot is recorded at the
// session's reference level (vinLow); checkouts retune the actual input
// after the rebind (B-side only).
func (s *cmpSession) binding(m *ComparatorMacro, opt RespondOpts, key engineKey) *netlist.Binding {
	if s.bind == nil {
		s.bind = opt.Pool.baseBinding(key, opt.Var, func(bind *netlist.Binding) {
			m.buildComparatorInto(netlist.NewRecorder(bind), vinLow, opt)
		})
	}
	return s.bind
}

// tranRun holds the distilled observations of one transient.
type tranRun struct {
	decision int // 0, 1, or -1 (invalid level)
	outV     float64
	// currents per phase: index by phaseNames order.
	ivdd, ibias, iddq [3]float64
	iinVin, iinVref   float64
	clockDeviant      bool
	failed            bool
}

// runOnce simulates one full three-phase conversion at the given input.
// Runs go through the engine pool when one is attached: the testbench
// topology is identical for every run of one (vref, DfT, leak, fault)
// key, so a pooled engine is revalued in place — die variation values,
// fault conductances and the input level rebound onto the compiled
// structure, bit-identical to building afresh. Topology-changing faults
// build fresh and bypass the pool.
func (m *ComparatorMacro) runOnce(ctx context.Context, vin float64, f *faults.Fault, opt RespondOpts, gos faults.GOSVariant, ses *cmpSession) (*tranRun, error) {
	if ses == nil {
		ses = &cmpSession{}
	}
	sp := opt.span(obs.StageInject, m.Name())
	io := faults.InjectOptions{NonCat: opt.NonCat, GOS: gos}
	key := engineKey{
		macro: m.Name(), vref: m.VRef, dft: opt.DfT,
		leak:  !opt.DfT && opt.Var.FFLeakA > 1e-9,
		fault: faultKey(f, io),
	}
	eng, release, err := checkoutEngine(opt, engineCheckout{
		key: key,
		f:   f, io: io,
		baseBinding: func() *netlist.Binding { return ses.binding(m, opt, key) },
		build:       func() *netlist.Builder { return m.buildComparatorCircuit(vin, opt) },
	})
	if err != nil {
		sp.End()
		return nil, err
	}
	if release != nil {
		// Check back in only after the run's measurements are extracted:
		// the Tran below aliases engine-owned snapshot storage.
		defer release()
	}
	// A rebound engine carries the session's reference input; the actual
	// level is retuned per run (B-side only — on a fresh build this
	// re-assigns the value it was built with, bit-identically).
	if err := eng.RetuneVSource("vvin", netlist.DC(vin)); err != nil {
		sp.End()
		return nil, err
	}
	sp.End()
	sp = opt.span(obs.StageFaultSim, m.Name())
	tr, err := eng.TransientSchedule(ctx, tranSchedule)
	sp.End()
	if err != nil {
		if spice.IsCancelled(err) {
			return nil, err
		}
		return &tranRun{failed: true}, nil
	}
	run := &tranRun{}
	iA := tr.I("vdda")
	iB := tr.I("vddb")
	iD := tr.I("vddd")
	for pi, ph := range phaseNames {
		run.ivdd[pi] = tr.MeanBetween(iA, ph.win[0], ph.win[1])
		run.ibias[pi] = tr.MeanBetween(iB, ph.win[0], ph.win[1])
		run.iddq[pi] = tr.MeanBetween(iD, ph.win[0], ph.win[1])
	}
	// Input-terminal currents: worst settled magnitude across phases.
	iVin := tr.I("vvin")
	iVref := tr.I("vvref")
	for _, ph := range phaseNames {
		if a := math.Abs(tr.MeanBetween(iVin, ph.win[0], ph.win[1])); a > run.iinVin {
			run.iinVin = a
		}
		if a := math.Abs(tr.MeanBetween(iVref, ph.win[0], ph.win[1])); a > run.iinVref {
			run.iinVref = a
		}
	}
	// Decision at the end of the latch phase.
	sol := tr.AtTime(tRead)
	run.outV = sol.V("out")
	vdd := VDD * opt.Var.VddScale
	switch {
	case run.outV > 0.8*vdd:
		run.decision = 1
	case run.outV < 0.2*vdd:
		run.decision = 0
	default:
		run.decision = -1
	}
	// Clock-value signature: each clock's settled level during its own
	// high phase and during another phase must match the rails.
	clkHigh := [3][2]float64{sampWin, ampWin, latchWin}
	clkLowProbe := [3][2]float64{ampWin, latchWin, sampWin}
	for i := 0; i < 3; i++ {
		w := tr.V(fmt.Sprintf("clk%d", i+1))
		hi := tr.MeanBetween(w, clkHigh[i][0], clkHigh[i][1])
		lo := tr.MeanBetween(w, clkLowProbe[i][0], clkLowProbe[i][1])
		if math.Abs(hi-vdd) > 0.25 || math.Abs(lo) > 0.25 {
			run.clockDeviant = true
		}
	}
	return run, nil
}

// extreme input levels for the current test ("an input voltage higher than
// the highest reference voltage and lower than the lowest").
const (
	vinLow  = VRefLo - 0.5
	vinHigh = VRefHi + 0.5
)

// Respond implements Macro.
func (m *ComparatorMacro) Respond(ctx context.Context, f *faults.Fault, opt RespondOpts) (*signature.Response, error) {
	if f != nil && f.Kind == faults.GOSPinhole {
		nom, err := m.nominalResponse(ctx, opt)
		if err != nil {
			return nil, err
		}
		return gosWorstCase(nom, func(v faults.GOSVariant) (*signature.Response, error) {
			return m.respondVariant(ctx, f, opt, v)
		})
	}
	return m.respondVariant(ctx, f, opt, faults.GOSToSource)
}

// nominalResponse returns the fault-free response under opt — the
// reference against which the gate-oxide-short worst case is ranked —
// through the baseline cache when one is attached. Only completed,
// error-free responses are stored, and consumers treat the shared
// response as read-only.
func (m *ComparatorMacro) nominalResponse(ctx context.Context, opt RespondOpts) (*signature.Response, error) {
	if opt.Base == nil {
		return m.Respond(ctx, nil, opt)
	}
	key := cmpNomKey{vref: m.VRef, dft: opt.DfT, currentsOnly: opt.CurrentsOnly, v: opt.Var}
	if r, ok := opt.Base.comparatorNominal(key); ok {
		// The hit replaces a full fault-free simulation; emit the
		// counter inside a span so trace sinks see it.
		sp := opt.span(obs.StageFaultSim, m.Name())
		opt.Metrics.Add(obs.CtrBaselineCacheHits, 1)
		sp.End()
		return r, nil
	}
	r, err := m.Respond(ctx, nil, opt)
	if err != nil {
		return nil, err
	}
	opt.Base.storeComparatorNominal(key, r)
	return r, nil
}

func (m *ComparatorMacro) respondVariant(ctx context.Context, f *faults.Fault, opt RespondOpts, gos faults.GOSVariant) (*signature.Response, error) {
	ses := &cmpSession{}
	lo, err := m.runOnce(ctx, vinLow, f, opt, gos, ses)
	if err != nil {
		return nil, err
	}
	hi, err := m.runOnce(ctx, vinHigh, f, opt, gos, ses)
	if err != nil {
		return nil, err
	}
	resp := &signature.Response{Currents: map[string]float64{}}
	if lo.failed || hi.failed {
		resp.Voltage = signature.VSigMixed
		resp.SimError = fmt.Errorf("comparator: transient did not converge")
		return resp, nil
	}
	for pi, ph := range phaseNames {
		resp.Currents["slice.ivdd."+ph.name+".lo"] = lo.ivdd[pi]
		resp.Currents["slice.ivdd."+ph.name+".hi"] = hi.ivdd[pi]
		resp.Currents["bias.ivdd."+ph.name+".lo"] = lo.ibias[pi]
		resp.Currents["bias.ivdd."+ph.name+".hi"] = hi.ibias[pi]
		resp.Currents["iddq."+ph.name+".lo"] = lo.iddq[pi]
		resp.Currents["iddq."+ph.name+".hi"] = hi.iddq[pi]
	}
	resp.Currents["iin.vin.lo"] = lo.iinVin
	resp.Currents["iin.vin.hi"] = hi.iinVin
	resp.Currents["iin.vref.lo"] = lo.iinVref
	resp.Currents["iin.vref.hi"] = hi.iinVref

	clockDeviant := lo.clockDeviant || hi.clockDeviant
	if opt.CurrentsOnly {
		return resp, nil
	}

	csp := opt.span(obs.StageClassify, m.Name())
	switch {
	case lo.decision == -1 || hi.decision == -1:
		resp.Voltage = signature.VSigMixed
	case lo.decision == hi.decision:
		resp.Voltage = signature.VSigStuck
		resp.StuckVal = lo.decision
	case lo.decision == 1 && hi.decision == 0:
		// Inverted: erratic codes at the ADC edge.
		resp.Voltage = signature.VSigMixed
	default:
		// Proper polarity: locate the trip point by bisection and
		// compare to the design's systematic offset.
		off, ok, err := m.bisectOffset(ctx, f, opt, gos, ses)
		if err != nil {
			csp.End()
			return nil, err
		}
		switch {
		case !ok:
			resp.Voltage = signature.VSigMixed
		default:
			nomOff, err := m.nominalOffset(ctx, opt.DfT, opt.Pool, opt.Base)
			if err != nil {
				csp.End()
				return nil, err
			}
			resp.OffsetV = off - nomOff
			switch {
			case math.Abs(resp.OffsetV) > m.Veh.OffsetLimit():
				resp.Voltage = signature.VSigOffset
			case clockDeviant:
				resp.Voltage = signature.VSigClock
			default:
				resp.Voltage = signature.VSigNone
			}
		}
	}
	csp.End()
	if resp.Voltage == signature.VSigStuck && clockDeviant {
		// Keep the stronger stuck classification; clock deviation is
		// still reflected in the IDDQ measurements.
		_ = clockDeviant
	}
	resp.MissingCode = propagateSlice(m.Veh, resp)
	return resp, nil
}

// propagateSlice performs the sensitisation/propagation step for a
// comparator-slice signature: plug the faulty slice (or, for common-mode
// bias shifts, all of the vehicle's slices) into the high-level ADC
// model and run the circuit-edge missing-code test.
func propagateSlice(veh Vehicle, resp *signature.Response) bool {
	n := veh.Comparators()
	a := adc.New(n, VRefLo, VRefHi)
	mid := n / 2
	switch resp.Voltage {
	case signature.VSigStuck:
		a.Comps[mid].Stuck = resp.StuckVal
	case signature.VSigMixed:
		a.Comps[mid].Erratic = true
	case signature.VSigOffset:
		if resp.CommonMode {
			for i := range a.Comps {
				a.Comps[i].Offset = resp.OffsetV
			}
		} else {
			a.Comps[mid].Offset = resp.OffsetV
		}
	default:
		return false
	}
	return a.MissingCodeTest(VRefLo, VRefHi, veh.TestSamples()).HasMissing()
}

// bisectOffset locates the comparator trip point (input-referred offset
// relative to VRef). Assumes decision(vinLow)=0 and decision(vinHigh)=1.
// The error is non-nil only when the bisection was aborted (cancellation
// or an injection failure), so a half-finished bisection is never
// classified as a signature.
func (m *ComparatorMacro) bisectOffset(ctx context.Context, f *faults.Fault, opt RespondOpts, gos faults.GOSVariant, ses *cmpSession) (float64, bool, error) {
	if ses == nil {
		ses = &cmpSession{}
	}
	lo, hi := vinLow, vinHigh
	for i := 0; i < 11; i++ {
		mid := (lo + hi) / 2
		run, err := m.runOnce(ctx, mid, f, opt, gos, ses)
		if err != nil {
			return 0, false, err
		}
		if run.failed {
			// The extremes simulated fine, so a Newton breakdown at
			// mid means the latch is balanced on the metastable
			// saddle: mid is the trip point.
			return mid - m.VRef, true, nil
		}
		switch run.decision {
		case 1:
			hi = mid
		case 0:
			lo = mid
		default:
			// A mid-level output means the latch went metastable:
			// we are within a hair of the trip point.
			return mid - m.VRef, true, nil
		}
	}
	return (lo+hi)/2 - m.VRef, true, nil
}
