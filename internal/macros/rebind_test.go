package macros

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/faults"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/spice"
)

// rebindCase is one conductance-only fault axis of the property test.
type rebindCase struct {
	f  *faults.Fault
	io faults.InjectOptions
}

// rebindMacro describes one macro's (Variation, fault, slice) axes: how
// to build a reference circuit at a concrete triple, how to record the
// base binding the production checkout path uses, and how the slice is
// applied to a pooled engine (B-side retune). Biasgen delegates its
// circuit to the comparator, so the three circuit-owning macros cover
// the whole family.
type rebindMacro struct {
	name      string
	vref      float64
	leak      func(v Variation) bool
	faults    []rebindCase
	build     func(v Variation, slice float64) *netlist.Builder
	canonical float64
	retune    func(eng *spice.Engine, v Variation, slice float64) error
	slice     func(rng *rand.Rand) float64
}

// TestRevaluePropertyBitIdentical is the rebind analogue of the Plan /
// Inject drift guard: for hundreds of random (Variation, conductance-only
// fault, slice) triples per macro, an engine checked out of the pool and
// Revalued in place must assemble bit-identical MNA systems — and, on a
// sampled subset, solve to bit-identical operating points — as an engine
// freshly built and injected at exactly that triple.
func TestRevaluePropertyBitIdentical(t *testing.T) {
	n := 500
	solveEvery := 25
	if testing.Short() {
		n = 60
		solveEvery = 15
	}
	ctx := context.Background()

	cmp := NewComparator(DefaultVehicle())
	lad := NewLadder(DefaultVehicle())
	clk := NewClockgen(DefaultVehicle())

	macros := []rebindMacro{
		{
			name: cmp.Name(),
			vref: cmp.VRef,
			leak: func(v Variation) bool { return v.FFLeakA > 1e-9 },
			faults: []rebindCase{
				{f: nil},
				{f: &faults.Fault{Kind: faults.Short, Nets: []string{"o1", "vss"}, Res: 0.2}},
				{f: &faults.Fault{Kind: faults.Short, Nets: []string{"vbn1", "vbn2"}, Res: 0.2}},
				{f: &faults.Fault{Kind: faults.Short, Nets: []string{"clk1", "clk2"}, Res: 0.2},
					io: faults.InjectOptions{NonCat: true}},
				{f: &faults.Fault{Kind: faults.GOSPinhole, Device: "m1"},
					io: faults.InjectOptions{GOS: faults.GOSToSource}},
				{f: &faults.Fault{Kind: faults.GOSPinhole, Device: "m2"},
					io: faults.InjectOptions{GOS: faults.GOSToDrain}},
			},
			build: func(v Variation, slice float64) *netlist.Builder {
				return cmp.buildComparatorCircuit(slice, RespondOpts{Var: v})
			},
			canonical: vinLow,
			retune: func(eng *spice.Engine, _ Variation, slice float64) error {
				return eng.RetuneVSource("vvin", netlist.DC(slice))
			},
			slice: func(rng *rand.Rand) float64 {
				return vinLow + rng.Float64()*(vinHigh-vinLow)
			},
		},
		{
			name: lad.Name(),
			faults: []rebindCase{
				{f: nil},
				{f: &faults.Fault{Kind: faults.Short, Nets: []string{"t096", "t128"}, Res: 25}},
				{f: &faults.Fault{Kind: faults.Short, Nets: []string{"t032", "t224"}, Res: 100}},
				{f: &faults.Fault{Kind: faults.Short, Nets: []string{"t000", "t064"}, Res: 25},
					io: faults.InjectOptions{NonCat: true}},
			},
			// The ladder has no stimulus slice: its sources are the fixed
			// reference rails, so the triple degenerates to (Variation, fault).
			build: func(v Variation, _ float64) *netlist.Builder {
				return lad.buildLadderCircuit(v)
			},
			slice: func(*rand.Rand) float64 { return 0 },
		},
		{
			name: clk.Name(),
			faults: []rebindCase{
				{f: nil},
				{f: &faults.Fault{Kind: faults.Short, Nets: []string{"clk1", "clk2"}, Res: 0.2}},
				{f: &faults.Fault{Kind: faults.Short, Nets: []string{"cg1_0", "cg1_1"}, Res: 0.2},
					io: faults.InjectOptions{NonCat: true}},
				{f: &faults.Fault{Kind: faults.GOSPinhole, Device: "cg.mp1_0"},
					io: faults.InjectOptions{GOS: faults.GOSToSource}},
			},
			// Slice = static phase state index.
			build: func(v Variation, slice float64) *netlist.Builder {
				return clk.buildClockgenCircuit(cgStates[int(slice)], v)
			},
			retune: func(eng *spice.Engine, v Variation, slice float64) error {
				st := cgStates[int(slice)]
				vdd := VDD * v.VddScale
				for i := 1; i <= 3; i++ {
					if err := eng.RetuneVSource(fmt.Sprintf("vphi%d", i), netlist.DC(st[i-1]*vdd)); err != nil {
						return err
					}
				}
				return nil
			},
			slice: func(rng *rand.Rand) float64 { return float64(rng.Intn(len(cgStates))) },
		},
	}

	for _, mc := range macros {
		mc := mc
		t.Run(mc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(len(mc.name))*7919 + 0x5eed))
			pool := NewEnginePool()
			met := &obs.Metrics{}
			for i := 0; i < n; i++ {
				v := Draw(rng)
				slice := mc.slice(rng)
				fc := mc.faults[rng.Intn(len(mc.faults))]
				opt := RespondOpts{Var: v, Pool: pool, Metrics: met}

				// Reference: built and injected from scratch at this triple.
				fb := mc.build(v, slice)
				if fc.f != nil {
					if err := faults.Inject(fb.C, *fc.f, procShared, fc.io); err != nil {
						t.Fatalf("triple %d: inject: %v", i, err)
					}
				}
				fresh := spice.New(fb.C, opt.simOptions())

				key := engineKey{macro: mc.name, vref: mc.vref,
					leak: mc.leak != nil && mc.leak(v), fault: faultKey(fc.f, fc.io)}
				canon := slice
				if mc.retune != nil {
					canon = mc.canonical
				}
				eng, release, err := checkoutEngine(opt, engineCheckout{
					key: key, f: fc.f, io: fc.io,
					baseBinding: func() *netlist.Binding {
						bind := &netlist.Binding{}
						mc.recordInto(bind, v)
						return bind
					},
					build: func() *netlist.Builder { return mc.build(v, canon) },
				})
				if err != nil {
					t.Fatalf("triple %d: checkout: %v", i, err)
				}
				if release == nil {
					t.Fatalf("triple %d: conductance-only fault %+v was classified topology-changing", i, fc.f)
				}
				if mc.retune != nil {
					if err := mc.retune(eng, v, slice); err != nil {
						t.Fatalf("triple %d: retune: %v", i, err)
					}
				}

				// The assembled MNA system must match bitwise in both stamp
				// modes (DC operating point and a transient step).
				for _, chk := range []struct {
					mode  netlist.StampMode
					t, dt float64
				}{{netlist.DCOp, 0, 0}, {netlist.Transient, 101e-9, 1e-10}} {
					fs, rs := fresh.StampChecksum(chk.mode, chk.t, chk.dt), eng.StampChecksum(chk.mode, chk.t, chk.dt)
					if fs != rs {
						t.Fatalf("triple %d (fault %+v, slice %g): mode %v stamp checksum %016x != fresh %016x",
							i, fc.f, slice, chk.mode, rs, fs)
					}
				}

				// Sampled subset: the full operating-point solution, bitwise.
				if i%solveEvery == 0 {
					fsol, ferr := fresh.OP(ctx)
					rsol, rerr := eng.OP(ctx)
					if (ferr == nil) != (rerr == nil) {
						t.Fatalf("triple %d: OP error divergence: fresh %v, revalued %v", i, ferr, rerr)
					}
					if ferr == nil {
						if len(fsol.X) != len(rsol.X) {
							t.Fatalf("triple %d: solution dim %d != %d", i, len(rsol.X), len(fsol.X))
						}
						for j := range fsol.X {
							if math.Float64bits(fsol.X[j]) != math.Float64bits(rsol.X[j]) {
								t.Fatalf("triple %d: X[%d] = %x != fresh %x",
									i, j, math.Float64bits(rsol.X[j]), math.Float64bits(fsol.X[j]))
							}
						}
					}
				}
				release()
			}
			// The run must have been dominated by revalues: full builds only
			// on cold keys (bounded by distinct (leak, fault) combinations).
			rebinds, rebuilds := met.Get(obs.CtrRebindHits), met.Get(obs.CtrFullRebuilds)
			if rebinds <= rebuilds {
				t.Fatalf("rebind_hits (%d) must dominate full_rebuilds (%d) over %d triples",
					rebinds, rebuilds, n)
			}
		})
	}
}

// recordInto records the macro's base binding for the given variation,
// mirroring what the production checkout paths do per macro.
func (mc *rebindMacro) recordInto(bind *netlist.Binding, v Variation) {
	b := netlist.NewRecorder(bind)
	switch mc.name {
	case "comparator":
		NewComparator(DefaultVehicle()).buildComparatorInto(b, vinLow, RespondOpts{Var: v})
	case "ladder":
		NewLadder(DefaultVehicle()).buildLadderInto(b, v)
	case "clockgen":
		NewClockgen(DefaultVehicle()).buildClockgenInto(b, cgStates[0], v)
	default:
		panic("unknown macro " + mc.name)
	}
}
