package macros

import "fmt"

// Vehicle is the resolution spec of the flash-converter family: every
// size-dependent quantity of the case study — comparator count, ladder
// segment/tap count, decoder width, LSB, the offset-detection budget,
// the test-stimulus length — derives from the single resolution
// parameter N. The paper's vehicle is the 8-bit member (DefaultVehicle);
// the constants that stay fixed across the family (supply, reference
// span, clock phases, process spread) remain package constants in
// macro.go.
//
// The 8-bit member reproduces the historical package constants exactly,
// bit for bit: the derivations below are chosen so every floating-point
// result at Bits = 8 equals the former constant (LSB = 2 V/256 is a
// power of two, so scaling it is exact; the ladder's total resistance is
// held constant so RSeg lands on 8 Ω; the offset budget is 1.024 LSB,
// which at 8 bits is exactly the paper's 8 mV).
type Vehicle struct {
	// Bits is the converter resolution N: 2^N comparators and ladder
	// segments, N output bits.
	Bits int
}

// DefaultBits is the resolution of the paper's case study.
const DefaultBits = 8

// MinBits and MaxBits bound the supported family. The lower bound keeps
// the ladder serpentine well-formed (LadderRowLen segments per row must
// divide 2^N); the upper bound keeps a full campaign tractable.
const (
	MinBits = 4
	MaxBits = 12
)

// ladderTotalRes is the full reference-string resistance (Ω), held
// constant across the family so the reference current stays ≈1 mA from
// the 2 V span at every resolution (2048/2^N Ω per segment: exactly the
// historical 8 Ω at 8 bits).
const ladderTotalRes = 2048.0

// DefaultVehicle returns the paper's 8-bit converter.
func DefaultVehicle() Vehicle { return Vehicle{Bits: DefaultBits} }

// NewVehicle validates bits and returns the vehicle spec.
func NewVehicle(bits int) (Vehicle, error) {
	v := Vehicle{Bits: bits}
	if err := v.Validate(); err != nil {
		return Vehicle{}, err
	}
	return v, nil
}

// Validate rejects resolutions outside the supported family.
func (v Vehicle) Validate() error {
	if v.Bits < MinBits || v.Bits > MaxBits {
		return fmt.Errorf("macros: vehicle resolution %d bits out of range [%d, %d]",
			v.Bits, MinBits, MaxBits)
	}
	return nil
}

// String labels the vehicle ("8-bit flash ADC").
func (v Vehicle) String() string { return fmt.Sprintf("%d-bit flash ADC", v.Bits) }

// Comparators is the number of comparator slices (2^N).
func (v Vehicle) Comparators() int { return 1 << v.Bits }

// LadderSegments is the number of series resistors in the reference
// string (one per comparator; taps 0..2^N).
func (v Vehicle) LadderSegments() int { return v.Comparators() }

// DecoderInputs is the number of thermometer inputs of the decoder
// (t001..t(2^N-1); code 0 needs no input).
func (v Vehicle) DecoderInputs() int { return v.Comparators() - 1 }

// LSB is the conversion-range quantum (V). At 8 bits this is the
// historical 2 V/256 = 7.8125 mV exactly (a power of two, so every
// derived scaling below is computed without rounding).
func (v Vehicle) LSB() float64 { return (VRefHi - VRefLo) / float64(v.Comparators()) }

// OffsetLimit is the voltage-signature offset-detection budget:
// 1.024 LSB, the paper's 8 mV at the 8-bit member (exactly — the LSB is
// a power of two, so 1.024·LSB rounds to the same double as the literal
// 8e-3 constant it replaces).
func (v Vehicle) OffsetLimit() float64 { return 1.024 * v.LSB() }

// RSeg is the nominal ladder segment resistance (Ω): the full string is
// held at 2048 Ω (≈1 mA from the 2 V reference span) at every
// resolution, so the per-segment value is 2048/2^N — exactly the
// historical 8 Ω at 8 bits.
func (v Vehicle) RSeg() float64 { return ladderTotalRes / float64(v.LadderSegments()) }

// TestSamples is the missing-code ramp length: the paper's 1 000
// conversions at 8 bits and below, scaled up proportionally above so the
// sweep keeps ≈0.5 LSB per sample and every code stays reachable.
func (v Vehicle) TestSamples() int {
	n := 1000 * v.Comparators() / (1 << DefaultBits)
	if n < 1000 {
		return 1000
	}
	return n
}

// IDDQBudgetA is the sampling-phase supply-current spread budget of the
// pre-DfT flipflop leakage: 2^N slices × (nominal + 3σ) per-slice leak —
// ≈41 mA at the 8-bit member, the scale of the paper's sampling-phase
// IVdd bound before the DfT flipflop redesign.
func (v Vehicle) IDDQBudgetA() float64 {
	return float64(v.Comparators()) * (FFLeakNominal + 3*FFLeakSigma)
}
