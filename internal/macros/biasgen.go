package macros

import (
	"context"

	"repro/internal/faults"
	"repro/internal/layout"
	"repro/internal/process"
	"repro/internal/signature"
)

// BiasgenMacro is the bias generator: four resistor/diode legs producing
// the comparator array's class-A bias voltages on two pairs of nearly
// identical lines (vbn1/vbn2 and vbp1/vbp2). Its fault simulation is
// performed through the comparator co-simulation testbench — a bias fault
// matters exactly through its effect on the comparators it feeds — with
// one crucial difference: a bias shift is common to all of the vehicle's
// 2^N slices, so an offset signature is common-mode and does not cause
// missing codes.
type BiasgenMacro struct {
	// Veh is the vehicle spec (slice count for common-mode propagation).
	Veh Vehicle
	cmp *ComparatorMacro
}

// NewBiasgen returns the bias generator macro of the given vehicle.
func NewBiasgen(veh Vehicle) *BiasgenMacro {
	return &BiasgenMacro{Veh: veh, cmp: NewComparator(veh)}
}

// Name implements Macro.
func (m *BiasgenMacro) Name() string { return "biasgen" }

// Count implements Macro.
func (m *BiasgenMacro) Count() int { return 1 }

// Respond implements Macro.
func (m *BiasgenMacro) Respond(ctx context.Context, f *faults.Fault, opt RespondOpts) (*signature.Response, error) {
	resp, err := m.cmp.Respond(ctx, f, opt)
	if err != nil {
		return nil, err
	}
	// Bias deviations shift every slice identically.
	if resp.Voltage == signature.VSigOffset || resp.Voltage == signature.VSigNone {
		resp.CommonMode = true
		resp.MissingCode = propagateSlice(m.Veh, resp)
	}
	return resp, nil
}

// Layout implements Macro: four legs (poly resistor + diode device) and
// the four bias output lines leaving in metal2. Pre-DfT the similar lines
// are adjacent; the dft flag interleaves them.
func (m *BiasgenMacro) Layout(dft bool) *layout.Cell {
	b := layout.NewBuilder("biasgen")
	b.DefaultWidth = 1.2

	devs := []devPlace{
		{name: "bg.mn1", d: "vbn1", g: "vbn1", s: "vss", x: 6, y: 10},
		{name: "bg.mn2", d: "vbn2", g: "vbn2", s: "vss", x: 18, y: 10},
		{name: "bg.mp1", d: "vbp1", g: "vbp1", s: "vddb", x: 30, y: 10, pmos: true},
		{name: "bg.mp2", d: "vbp2", g: "vbp2", s: "vddb", x: 42, y: 10, pmos: true},
	}
	terms := placeDevices(b, devs, "vddb")

	// The four poly resistors.
	res := []struct {
		name, a, bn string
		x, y        float64
	}{
		{"bg.rn1", "vddb", "vbn1", 4, 24},
		{"bg.rn2", "vddb", "vbn2", 16, 24},
		{"bg.rp1", "vbp1", "vss", 28, 24},
		{"bg.rp2", "vbp2", "vss", 40, 24},
	}
	for _, r := range res {
		b.Resistor(r.name, r.a, r.bn, r.x, r.y, 8, 1.2)
		terms = append(terms,
			terminal{net: r.a, x: r.x + 0.5, y: r.y, gate: true},
			terminal{net: r.bn, x: r.x + 7.5, y: r.y, gate: true},
		)
	}

	trunkY := map[string]float64{
		"vss":  4,
		"vddb": 30,
		"vbn1": 17,
		"vbn2": 18.5,
		"vbp1": 20,
		"vbp2": 21.5,
	}
	lineX := map[string]float64{"vddb": 54, "vss": 57}
	if dft {
		lineX["vbn1"], lineX["vbp1"], lineX["vbn2"], lineX["vbp2"] = 60, 63, 66, 69
	} else {
		lineX["vbn1"], lineX["vbn2"], lineX["vbp1"], lineX["vbp2"] = 60, 63, 66, 69
	}
	routeNets(b, terms, trunkY, lineX)
	drawLines(b, lineX, 2, 34)

	b.C.MarkPort("vbn1", "vbn2", "vbp1", "vbp2", "vddb", "vss")
	return b.C
}

// ensure process import is retained for future layout extensions.
var _ = process.Metal1
