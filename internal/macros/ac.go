package macros

import (
	"context"
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/faults"
	"repro/internal/spice"
)

// ACResult characterises the comparator's pre-amplifier small-signal
// behaviour: differential DC gain and -3 dB bandwidth measured from vin
// to the amplifier outputs with the circuit held in the amplify
// configuration.
type ACResult struct {
	// GainDB is the low-frequency differential gain in dB.
	GainDB float64
	// Bandwidth3dB is the -3 dB frequency in Hz.
	Bandwidth3dB float64
}

// AmplifierAC measures the comparator's amplify-phase AC response with an
// optional fault injected — the "AC characteristics" measurement of the
// defect-oriented literature (Sachdev 1994), implemented here as an
// extension: the paper observes that clock-value faults, invisible to the
// simple DC tests, typically disturb exactly this high-frequency
// behaviour.
func (m *ComparatorMacro) AmplifierAC(ctx context.Context, f *faults.Fault, opt RespondOpts) (*ACResult, error) {
	b := m.buildComparatorCircuit(m.VRef, opt)
	// Hold the circuit in the tracking configuration: clk1 high (input
	// switches on, so the DC operating point sees the inputs — in a DC
	// analysis the sampling capacitors are open and cannot hold charge),
	// latch and transfer gates off. The PWL phase sources are static
	// inside the second sampling window, so an operating point evaluated
	// at t = 370 ns configures the clocks directly. The signal path
	// vin → switch → diff pair → outputs is exactly the one whose
	// high-frequency behaviour clock-value faults degrade.
	if f != nil {
		if err := faults.Inject(b.C, *f, procShared, faults.InjectOptions{NonCat: opt.NonCat}); err != nil {
			return nil, err
		}
	}
	eng := spice.New(b.C, opt.simOptions())
	op, err := eng.OPAt(ctx, 370e-9)
	if err != nil {
		return nil, fmt.Errorf("macros: amplifier OP: %w", err)
	}
	// Differential response o1-o2 to a unit AC excitation on vvin.
	freqs := spice.LogSpace(1e3, 1e9, 49)
	sols, err := eng.AC(op, "vvin", freqs)
	if err != nil {
		return nil, err
	}
	diff := func(s *spice.ACSolution) float64 {
		return cmplx.Abs(s.V("o1") - s.V("o2"))
	}
	ref := diff(sols[0])
	res := &ACResult{GainDB: 20 * math.Log10(math.Max(ref, 1e-12))}
	res.Bandwidth3dB = freqs[len(freqs)-1]
	for _, s := range sols {
		if diff(s) < ref/math.Sqrt2 {
			res.Bandwidth3dB = s.Freq
			break
		}
	}
	return res, nil
}

// ACDeviates reports whether a faulty AC response differs from the
// nominal one by more than the given gain (dB) and bandwidth (ratio)
// tolerances — the detection criterion of the extension AC test.
func ACDeviates(nom, faulty *ACResult, gainTolDB, bwTolRatio float64) bool {
	if math.Abs(nom.GainDB-faulty.GainDB) > gainTolDB {
		return true
	}
	r := faulty.Bandwidth3dB / nom.Bandwidth3dB
	return r > 1+bwTolRatio || r < 1/(1+bwTolRatio)
}
