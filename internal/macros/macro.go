// Package macros implements the five macro cells of the paper's Flash ADC
// case study — the clocked comparator with its flipflop, the reference
// resistor ladder, the bias generator, the clock generator and the digital
// thermometer decoder — each with a transistor-level (or gate-level)
// netlist, a procedurally generated layout for the defect simulator, and a
// Respond method that performs the macro's fault simulation and classifies
// the macro-level fault signature.
package macros

import (
	"context"
	"math/rand"

	"repro/internal/faults"
	"repro/internal/layout"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/signature"
	"repro/internal/spice"
)

// Electrical constants shared by every member of the converter family.
// The size-dependent quantities — comparator count, ladder segments,
// LSB, offset budget — derive from the Vehicle spec (vehicle.go).
const (
	// VDD is the nominal supply voltage.
	VDD = 5.0
	// VRefLo and VRefHi bound the conversion range; the LSB is the span
	// divided by the vehicle's 2^N taps (Vehicle.LSB) — at the default
	// 8-bit vehicle ≈7.8 mV, where the paper's 8 mV offset threshold is
	// exactly one LSB (Vehicle.OffsetLimit).
	VRefLo = 1.0
	VRefHi = 3.0
)

// Comparator phase timing for the three-phase clocking (sample, amplify,
// latch); one conversion takes 3 × TPhase.
const (
	TPhase = 100e-9
	TStep  = 2.5e-9
)

// Variation is one draw of the environmental/process conditions that span
// the good-signature space. All devices on the die shift together
// (die-level correlation), which is what makes current mirrors track.
type Variation struct {
	// DVTN and DVTP shift every NMOS/PMOS threshold (V).
	DVTN, DVTP float64
	// KPScale scales every transconductance parameter.
	KPScale float64
	// TempC is the die temperature (°C).
	TempC float64
	// VddScale scales the supply.
	VddScale float64
	// RhoScale scales every resistor (sheet resistance).
	RhoScale float64
	// FFLeakA is the flipflop leakage current per comparator slice during
	// the sampling phase (A); its die-to-die spread dominates the
	// sampling-phase IVdd bound before the DfT flipflop redesign.
	FFLeakA float64
}

// Nominal returns the nominal condition.
func Nominal() Variation {
	return Variation{KPScale: 1, TempC: 27, VddScale: 1, RhoScale: 1, FFLeakA: FFLeakNominal}
}

// Process-spread parameters for the Monte Carlo (σ values).
const (
	SigmaVT  = 0.030 // 30 mV threshold spread
	SigmaKP  = 0.05  // 5 % transconductance spread
	SigmaVdd = 0.02  // 2 % supply tolerance
	SigmaRho = 0.01  // 1 % matched-resistor spread
	// FFLeakNominal and FFLeakSigma set the per-slice flipflop leakage
	// (A); over the vehicle's 2^N slices the 3σ spread is 3·σ·2^N
	// (≈15 mA at the default 8-bit vehicle) — the paper's
	// sampling-phase supply-current spread. Vehicle.IDDQBudgetA derives
	// the chip-level budget.
	FFLeakNominal = 100e-6
	FFLeakSigma   = 20e-6
	// TempLo/TempHi bound the operating temperature range.
	TempLo = 0.0
	TempHi = 70.0
)

// Draw samples a random variation (die) from the process spread.
func Draw(rng *rand.Rand) Variation {
	leak := FFLeakNominal + rng.NormFloat64()*FFLeakSigma
	if leak < 0 {
		leak = 0
	}
	return Variation{
		DVTN:     rng.NormFloat64() * SigmaVT,
		DVTP:     rng.NormFloat64() * SigmaVT,
		KPScale:  1 + rng.NormFloat64()*SigmaKP,
		TempC:    TempLo + rng.Float64()*(TempHi-TempLo),
		VddScale: 1 + rng.NormFloat64()*SigmaVdd,
		RhoScale: 1 + rng.NormFloat64()*SigmaRho,
		FFLeakA:  leak,
	}
}

// RespondOpts parameterise a macro fault simulation.
type RespondOpts struct {
	// NonCat selects the near-miss (500 Ω ∥ 1 fF) fault model.
	NonCat bool
	// Var is the environmental condition.
	Var Variation
	// DfT applies the design-for-testability measures: the flipflop
	// redesign (no leakage path) and, through Layout(true), the
	// re-ordered bias lines.
	DfT bool
	// CurrentsOnly skips the voltage-signature classification (offset
	// bisection); used by the good-space Monte Carlo, which only needs
	// the current measurements.
	CurrentsOnly bool
	// Obs, when non-nil, receives the inject/faultsim/classify spans of
	// every simulation this response runs; Class labels them with the
	// fault class under analysis ("" for fault-free references). Macro,
	// when set, overrides the emitting macro's own name in the span
	// labels — the pipeline sets it to the analysed macro so a
	// delegated simulation (biasgen analyses run on the comparator
	// circuit) stays attributed to the class's macro.
	Obs   *obs.Observer
	Class string
	Macro string
	// Metrics, when non-nil, accumulates the solver hot-path counters
	// (Newton iterations, LU solves, convergence retries) across the
	// response's simulations.
	Metrics *obs.Metrics
	// Pool, when non-nil, reuses fault-free simulation engines across
	// Respond calls (checkout semantics; see EnginePool). Faulty runs
	// always build fresh engines.
	Pool *EnginePool
	// Base, when non-nil, memoises fault-free baseline results (nominal
	// ladder taps, comparator good-machine responses) so repeated class
	// analyses stop re-simulating the good machine. Hits are counted on
	// Metrics under obs.CtrBaselineCacheHits.
	Base *Baselines
}

// span opens an observability span labelled with this response's class
// and DfT setting (inert when no observer is attached).
func (o *RespondOpts) span(stage, macro string) obs.Span {
	if o.Macro != "" {
		macro = o.Macro
	}
	return o.Obs.Start(stage, macro, o.Class, o.DfT, o.Metrics)
}

// simOptions returns the solver options for this response's simulations
// (default settings with the counter block attached).
func (o *RespondOpts) simOptions() spice.Options {
	opt := spice.DefaultOptions()
	opt.Metrics = o.Metrics
	return opt
}

// Macro is one analysable block of the converter.
type Macro interface {
	// Name identifies the macro ("comparator", "ladder", …).
	Name() string
	// Count is the number of instances in the full ADC.
	Count() int
	// Layout returns the macro's mask layout; dft selects the
	// DfT-modified floorplan (re-ordered bias lines).
	Layout(dft bool) *layout.Cell
	// Respond fault-simulates the macro (f nil ⇒ fault-free) and
	// returns the classified macro-level signature with all current
	// measurements. Responses must contain the same measurement keys
	// for fault-free and faulty runs. Cancelling ctx aborts the
	// underlying solves; the error then satisfies spice.IsCancelled and
	// is never folded into a fault signature.
	Respond(ctx context.Context, f *faults.Fault, opt RespondOpts) (*signature.Response, error)
}

// gosWorstCase runs fn for every gate-oxide pinhole variant and returns
// the least-detectable response, mirroring the paper's "worst case (most
// difficult to detect) signature was chosen". Detectability is ranked by
// voltage signature strength first, then by total current deviation from
// the reference nominal response.
func gosWorstCase(nom *signature.Response, run func(v faults.GOSVariant) (*signature.Response, error)) (*signature.Response, error) {
	var worst *signature.Response
	var worstScore float64
	for v := faults.GOSVariant(0); v < faults.NumGOSVariants; v++ {
		r, err := run(v)
		if err != nil {
			// A cancelled variant is an abort, not an unsimulatable
			// defect variant.
			if spice.IsCancelled(err) {
				return nil, err
			}
			continue
		}
		score := responseScore(nom, r)
		if worst == nil || score < worstScore {
			worst, worstScore = r, score
		}
	}
	if worst == nil {
		// Every variant failed to simulate: gross malfunction.
		return &signature.Response{Voltage: signature.VSigMixed, Currents: map[string]float64{}}, nil
	}
	return worst, nil
}

// responseScore is a crude detectability metric: bigger means easier to
// detect.
func responseScore(nom, r *signature.Response) float64 {
	var s float64
	switch r.Voltage {
	case signature.VSigStuck, signature.VSigMixed:
		s += 1e6
	case signature.VSigOffset:
		s += 1e3
	case signature.VSigClock:
		s += 10
	}
	for k, v := range r.Currents {
		d := v - nom.Currents[k]
		if d < 0 {
			d = -d
		}
		s += d * 1e3
	}
	return s
}

// BuildComparatorTestbench exposes the comparator co-simulation testbench
// (slice + bias generator + clock buffers + sources) of the default
// vehicle for netlist export and external cross-checking. The input
// source sits at mid-range. (The slice netlist is vehicle-independent —
// only the instance count scales with resolution.)
func BuildComparatorTestbench(opt RespondOpts) *netlist.Builder {
	return NewComparator(DefaultVehicle()).buildComparatorCircuit((VRefLo+VRefHi)/2, opt)
}

// BuildClockgenTestbench exposes the standalone clock generator circuit
// in the first one-hot state.
func BuildClockgenTestbench(v Variation) *netlist.Builder {
	return NewClockgen(DefaultVehicle()).buildClockgenCircuit([3]float64{1, 0, 0}, v)
}

// BuildLadderTestbench exposes the default vehicle's reference-ladder
// circuit.
func BuildLadderTestbench(v Variation) *netlist.Builder {
	return NewLadder(DefaultVehicle()).buildLadderCircuit(v)
}
