package macros

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/spice"
)

// This file is the macro side of the compile-once/revalue-many split:
// every macro obtains its simulation engine through checkoutEngine,
// which serves a structure-keyed pooled engine revalued in place when
// it can prove the checkout matches the pooled topology, and builds
// fresh (counting the rebuild) when it cannot. The fallback ladder is:
//
//  1. pool hit + successful rebind  → CtrRebindHits (no netlist build,
//     no stamp recompile; sparse patterns survive inside the engine)
//  2. pool miss, conductance-only   → fresh build, pooled for later
//     checkouts of the same key     → CtrFullRebuilds
//  3. topology-changing fault       → fresh build, never pooled
//     (opens/new devices/absent     → CtrFullRebuilds
//     nets have no stable topology key)
//
// A failed rebind (binding does not cover the pooled circuit, unknown
// label, kind mismatch) discards the pooled engine and falls to 2 —
// a structural mismatch can never be silently served.

// engineCheckout describes how one macro obtains and revalues an
// engine for a single simulation.
type engineCheckout struct {
	// key pins the compiled topology this checkout needs.
	key engineKey
	// f and io are the fault under analysis (f nil = fault-free).
	f  *faults.Fault
	io faults.InjectOptions
	// baseBinding returns the recorded value binding of the fault-free
	// build of this checkout (fault slots are appended — and truncated
	// back — by the rebind itself). Callers may cache it across the
	// checkouts of one analysis; it is only consulted on a pool hit.
	baseBinding func() *netlist.Binding
	// build constructs the fresh testbench for the miss path.
	build func() *netlist.Builder
}

// checkoutEngine returns an engine for the checkout plus a release
// function (nil when the engine must not be pooled: no pool attached,
// or a topology-changing fault). Callers must invoke release only
// after extracting every result that aliases engine-owned storage.
func checkoutEngine(opt RespondOpts, co engineCheckout) (*spice.Engine, func(), error) {
	if opt.Pool != nil {
		if eng := opt.Pool.acquire(co.key); eng != nil {
			eng.SetMetrics(opt.Metrics)
			if err := revalueEngine(eng, co); err == nil {
				opt.Metrics.Add(obs.CtrRebindHits, 1)
				return eng, func() { opt.Pool.release(co.key, eng) }, nil
			}
			// A failed — possibly partial — rebind means this engine
			// cannot be proven to match the checkout: discard it and
			// rebuild below.
		}
	}
	b := co.build()
	poolable := opt.Pool != nil
	if co.f != nil {
		if poolable {
			// Plan is Inject's read-only mirror: it classifies the fault
			// before injection mutates the circuit, and a malformed
			// fault errors identically out of Inject below.
			plan, err := faults.Plan(b.C, *co.f, procShared, co.io)
			poolable = err == nil && !plan.TopologyChanged
		}
		if err := faults.Inject(b.C, *co.f, procShared, co.io); err != nil {
			return nil, nil, err
		}
	}
	eng := spice.New(b.C, opt.simOptions())
	opt.Metrics.Add(obs.CtrFullRebuilds, 1)
	if !poolable {
		return eng, nil, nil
	}
	return eng, func() { opt.Pool.release(co.key, eng) }, nil
}

// revalueEngine rebinds a pooled engine to the checkout's values: the
// recorded base binding plus one slot per planned fault element. The
// fault slots carry the exact values Inject would stamp — Plan is its
// pinned mirror — so a revalued engine holds bit-for-bit the element
// values of a fresh build+inject of the same checkout. Any error means
// "discard this engine".
func revalueEngine(eng *spice.Engine, co engineCheckout) error {
	bind := co.baseBinding()
	base := bind.Len()
	defer bind.Truncate(base)
	if co.f != nil {
		plan, err := faults.Plan(eng.Ckt, *co.f, procShared, co.io)
		if err != nil {
			return err
		}
		if plan.TopologyChanged {
			return fmt.Errorf("macros: topology-changing fault under pooled key %q", co.key.fault)
		}
		for _, el := range plan.Added {
			switch e := el.(type) {
			case *netlist.Resistor:
				bind.SetR(e.Label, e.R)
			case *netlist.Capacitor:
				bind.SetC(e.Label, e.C)
			default:
				return fmt.Errorf("macros: planned fault element %T is not conductance-only", el)
			}
		}
	}
	if !bind.Covers(eng.Ckt) {
		return fmt.Errorf("macros: binding does not cover pooled circuit")
	}
	return eng.Revalue(bind)
}
