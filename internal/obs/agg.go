package obs

import "sync"

// StageStats is the aggregate of one stage's spans: how many ran, how
// much wall time they consumed (summed across workers — spans may nest
// and overlap, see the package comment), and their counter totals.
type StageStats struct {
	Spans    int              `json:"spans"`
	WallMS   float64          `json:"wall_ms"`
	Counters map[string]int64 `json:"counters,omitempty"`
}

// Agg is a Sink folding spans into per-stage aggregates; the campaign
// layer snapshots it into campaign.Stats so run metrics carry the
// per-stage time breakdown.
type Agg struct {
	mu     sync.Mutex
	stages map[string]*StageStats
}

// NewAgg returns an empty aggregator.
func NewAgg() *Agg {
	return &Agg{stages: map[string]*StageStats{}}
}

// Emit implements Sink.
func (a *Agg) Emit(r *Record) {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := a.stages[r.Stage]
	if st == nil {
		st = &StageStats{}
		a.stages[r.Stage] = st
	}
	st.Spans++
	st.WallMS += float64(r.Dur) / 1e6
	for i, n := range r.Counters {
		if n == 0 {
			continue
		}
		if st.Counters == nil {
			st.Counters = map[string]int64{}
		}
		st.Counters[Counter(i).Name()] += n
	}
}

// Snapshot returns a deep copy of the per-stage aggregates (nil when no
// span was ever emitted).
func (a *Agg) Snapshot() map[string]*StageStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.stages) == 0 {
		return nil
	}
	out := make(map[string]*StageStats, len(a.stages))
	for k, v := range a.stages {
		c := *v
		if v.Counters != nil {
			c.Counters = make(map[string]int64, len(v.Counters))
			for ck, cv := range v.Counters {
				c.Counters[ck] = cv
			}
		}
		out[k] = &c
	}
	return out
}
