package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// JSONLWriter is a Sink streaming one WireRecord per span to w —
// the `-trace` output of cmd/dotest and cmd/campaign. Writes are
// serialised internally; ordering across concurrent workers follows
// span completion, not span start.
type JSONLWriter struct {
	mu    sync.Mutex
	enc   *json.Encoder
	epoch time.Time
	err   error
}

// NewJSONLWriter returns a JSONL trace sink writing to w. The first
// span's t_us is measured from this call.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return &JSONLWriter{enc: json.NewEncoder(w), epoch: time.Now()}
}

// Emit implements Sink.
func (jw *JSONLWriter) Emit(r *Record) {
	out := r.Wire(jw.epoch)
	jw.mu.Lock()
	defer jw.mu.Unlock()
	if jw.err == nil {
		jw.err = jw.enc.Encode(&out)
	}
}

// Err returns the first write error (nil when the trace is healthy).
func (jw *JSONLWriter) Err() error {
	jw.mu.Lock()
	defer jw.mu.Unlock()
	return jw.err
}
