package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// jsonlRecord is the wire form of one span in a JSONL trace. Timestamps
// are microseconds relative to the writer's creation, so traces diff
// cleanly across runs and leak no wall-clock state into outputs.
type jsonlRecord struct {
	Stage    string           `json:"stage"`
	Macro    string           `json:"macro,omitempty"`
	Class    string           `json:"class,omitempty"`
	DfT      bool             `json:"dft,omitempty"`
	TUS      float64          `json:"t_us"`
	DurUS    float64          `json:"dur_us"`
	Counters map[string]int64 `json:"counters,omitempty"`
}

// JSONLWriter is a Sink streaming one JSON object per span to w —
// the `-trace` output of cmd/dotest and cmd/campaign. Writes are
// serialised internally; ordering across concurrent workers follows
// span completion, not span start.
type JSONLWriter struct {
	mu    sync.Mutex
	enc   *json.Encoder
	epoch time.Time
	err   error
}

// NewJSONLWriter returns a JSONL trace sink writing to w. The first
// span's t_us is measured from this call.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return &JSONLWriter{enc: json.NewEncoder(w), epoch: time.Now()}
}

// Emit implements Sink.
func (jw *JSONLWriter) Emit(r *Record) {
	out := jsonlRecord{
		Stage: r.Stage,
		Macro: r.Macro,
		Class: r.Class,
		DfT:   r.DfT,
		TUS:   float64(r.Start.Sub(jw.epoch)) / float64(time.Microsecond),
		DurUS: float64(r.Dur) / float64(time.Microsecond),
	}
	for i, n := range r.Counters {
		if n != 0 {
			if out.Counters == nil {
				out.Counters = make(map[string]int64, len(r.Counters))
			}
			out.Counters[Counter(i).Name()] = n
		}
	}
	jw.mu.Lock()
	defer jw.mu.Unlock()
	if jw.err == nil {
		jw.err = jw.enc.Encode(&out)
	}
}

// Err returns the first write error (nil when the trace is healthy).
func (jw *JSONLWriter) Err() error {
	jw.mu.Lock()
	defer jw.mu.Unlock()
	return jw.err
}
