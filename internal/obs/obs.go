// Package obs is the observability layer of the methodology pipeline:
// per-stage spans (stage name, macro, fault class, wall time) and
// hot-path counters (Newton iterations, LU solves, convergence-aid
// retries, sprinkle draws) emitted through pluggable sinks.
//
// The design is built around one constraint: the default must be free.
// A nil *Observer is the noop sink — Start returns an inert Span, End
// does nothing, no clock is read and nothing allocates — so the analog
// kernel keeps its zero-allocation steady state unless a trace or
// aggregation sink is attached. Counters are equally cheap: a nil
// *Metrics receiver turns Add into a predicted-not-taken branch, so the
// Newton loop can count unconditionally.
//
// The pipeline stages mirror Fig. 1 of the paper: sprinkle → collapse →
// inject → faultsim → classify → detect (plus the good-space compile).
// Spans are flat, independent intervals, not a strict tree: the
// comparator's classify span contains the offset-bisection transients,
// whose inject/faultsim spans are emitted too. Aggregated per-stage
// times therefore attribute where the wall clock went, they do not
// partition it.
package obs

import (
	"sync/atomic"
	"time"
)

// Stage names of the methodology pipeline, as emitted in spans.
const (
	// StageSprinkle is the Monte Carlo defect sprinkle of one macro
	// (one span per pass: "discovery" / "magnitude" in the class label).
	StageSprinkle = "sprinkle"
	// StageCollapse is fault collapsing into classes plus the
	// magnitude-pass re-weighting.
	StageCollapse = "collapse"
	// StageInject is circuit construction + fault-model injection for
	// one fault simulation.
	StageInject = "inject"
	// StageFaultSim is the analog (or gate-level) fault simulation.
	StageFaultSim = "faultsim"
	// StageClassify is the macro-level fault-signature classification
	// (for the comparator it includes the trip-point bisection).
	StageClassify = "classify"
	// StageDetect is chip-level propagation plus detection against the
	// good-signature space.
	StageDetect = "detect"
	// StageGoodSpace is the good-signature-space Monte Carlo compile
	// (the whole stage: one span per compiled DfT setting).
	StageGoodSpace = "goodspace"
	// StageGoodSpaceDie is one die of the good-space Monte Carlo (class
	// labels the die index). The stage's summed wall time is the CPU
	// cost of the Monte Carlo; the ratio against the enclosing
	// StageGoodSpace span's wall time is the die-sharding speedup.
	StageGoodSpaceDie = "goodspace_die"
	// StageRemote is one leased remote unit execution on the job
	// server's dispatch path (class labels the unit key): the span
	// covers lease grant to result/expiry, and its counters record the
	// scale-out behaviour (units_leased, remote_results, leases_expired,
	// remote_retries). The stage's wall time is remote wall time — it
	// overlaps, never partitions, the local stages.
	StageRemote = "remote"
)

// Counter indexes one hot-path counter inside a Metrics block.
type Counter int

// The hot-path counters.
const (
	// CtrNewtonIters counts Newton–Raphson iterations.
	CtrNewtonIters Counter = iota
	// CtrLUSolves counts LU factor+solve passes.
	CtrLUSolves
	// CtrGminRetries counts gmin-stepping homotopy rungs and
	// elevated-gmin transient retries.
	CtrGminRetries
	// CtrSourceRetries counts source-stepping rungs (including the
	// per-rung elevated-gmin re-attempts).
	CtrSourceRetries
	// CtrSprinkleDraws counts sprinkled defects.
	CtrSprinkleDraws
	// CtrSparseFactorHits counts LU factorisations that ran over the
	// cached symbolic sparsity pattern.
	CtrSparseFactorHits
	// CtrDenseFallbacks counts LU factorisations that went through the
	// dense path of a sparsity-aware workspace: first-time pattern
	// learning and pivot-cache mismatches.
	CtrDenseFallbacks
	// CtrBaselineCacheHits counts fault-free baseline responses served
	// from the memoised cache instead of re-simulating the good machine.
	CtrBaselineCacheHits
	// CtrGoodspaceDies counts completed good-space Monte Carlo dies.
	CtrGoodspaceDies
	// CtrRank1Solves counts fault operating points served by the
	// low-rank (Sherman–Morrison–Woodbury) update path against a shared
	// nominal factorization instead of a per-fault rebuild+refactor.
	CtrRank1Solves
	// CtrRank1Fallbacks counts faults that entered the low-rank path
	// but fell back to the classic rebuild: topology-changing models,
	// ill-conditioned corrections, non-convergence.
	CtrRank1Fallbacks
	// CtrClassesTruncated counts discovered fault classes dropped by
	// Config.MaxClassesPerMacro before analysis — non-zero means the
	// coverage figures describe a truncated class population.
	CtrClassesTruncated
	// CtrUnitsLeased counts campaign units leased to remote workers
	// (every grant, whether it ended in a result or an expiry).
	CtrUnitsLeased
	// CtrLeasesExpired counts leases that expired without a heartbeat —
	// a dead or partitioned worker — re-queueing the unit locally.
	CtrLeasesExpired
	// CtrRemoteResults counts units whose result came back from a
	// remote worker and was merged through the restored-unit decode
	// path.
	CtrRemoteResults
	// CtrRemoteRetries counts units that failed remotely (the worker
	// posted an error) and were handed back to the engine's bounded
	// retry, which re-runs them locally.
	CtrRemoteRetries
	// CtrRebindHits counts simulations served by revaluing a pooled
	// compiled engine in place (new die Variation, fault conductance or
	// stimulus slice bound onto the same topology) instead of building a
	// fresh netlist + engine.
	CtrRebindHits
	// CtrFullRebuilds counts simulations that built a fresh circuit and
	// engine: structure-cache misses and topology-changing faults (node
	// splits, new devices) that the rebind path must not serve.
	CtrFullRebuilds
	// CtrPatternReuse counts Revalue calls that retained a compiled
	// sparse symbolic analysis (the engine already held a learned
	// pattern, so the revalued solves skip the pattern probe and the
	// symbolic elimination re-derivation).
	CtrPatternReuse

	// NumCounters is the size of a Metrics block.
	NumCounters
)

// counterNames are the JSON keys of the counters, indexed by Counter.
var counterNames = [NumCounters]string{
	"newton_iters",
	"lu_solves",
	"gmin_retries",
	"source_retries",
	"sprinkle_draws",
	"sparse_factor_hits",
	"dense_fallbacks",
	"baseline_cache_hits",
	"goodspace_dies",
	"rank1_solves",
	"rank1_fallbacks",
	"classes_truncated",
	"units_leased",
	"leases_expired",
	"remote_results",
	"remote_retries",
	"rebind_hits",
	"full_rebuilds",
	"pattern_reuse_hits",
}

// Name returns the canonical (JSON) name of the counter.
func (c Counter) Name() string { return counterNames[c] }

// Metrics is a block of hot-path counters. The counters are atomic:
// one block may be shared by concurrent writers (the die workers of the
// good-space Monte Carlo all fold into their stage's block), so Add and
// Get are lock-free atomic operations — a handful of nanoseconds on an
// uncontended counter, which the Newton loop tolerates. A nil *Metrics
// discards every Add, so kernel code counts unconditionally.
type Metrics struct {
	n [NumCounters]int64
}

// Add accumulates n into counter c. Safe (and free) on a nil receiver;
// safe from concurrent goroutines on a shared block.
func (m *Metrics) Add(c Counter, n int64) {
	if m != nil {
		atomic.AddInt64(&m.n[c], n)
	}
}

// Get reads counter c (0 on a nil receiver).
func (m *Metrics) Get(c Counter) int64 {
	if m == nil {
		return 0
	}
	return atomic.LoadInt64(&m.n[c])
}

// Merge folds every counter of src into m (both sides nil-safe). The
// good-space workers keep a private block per die — so per-die span
// deltas attribute only that die's work — and merge it into the
// stage-level block when the die completes.
func (m *Metrics) Merge(src *Metrics) {
	if m == nil || src == nil {
		return
	}
	for c := Counter(0); c < NumCounters; c++ {
		if n := src.Get(c); n != 0 {
			m.Add(c, n)
		}
	}
}

// snapshot reads every counter atomically (element-wise: the block is
// not frozen, each counter is individually consistent).
func (m *Metrics) snapshot() [NumCounters]int64 {
	var out [NumCounters]int64
	if m == nil {
		return out
	}
	for i := range out {
		out[i] = atomic.LoadInt64(&m.n[i])
	}
	return out
}

// Record is one finished span as delivered to sinks. Sinks must not
// retain the Record past the Emit call.
type Record struct {
	// Stage is one of the Stage* constants.
	Stage string
	// Macro and Class label the work ("" when not applicable).
	Macro, Class string
	// DfT is the design-for-test setting of the run the span belongs to.
	DfT bool
	// Start is the span's wall-clock start; Dur its duration.
	Start time.Time
	Dur   time.Duration
	// Counters holds the counter deltas accumulated during the span
	// (all zero when the span had no Metrics attached).
	Counters [NumCounters]int64
}

// Sink consumes finished spans. Emit is called concurrently from
// campaign workers; implementations synchronise internally.
type Sink interface {
	Emit(r *Record)
}

// Observer fans finished spans out to its sinks. A nil *Observer is the
// zero-cost noop: Start neither reads the clock nor allocates, and the
// returned Span's End is inert.
type Observer struct {
	sinks []Sink
}

// New builds an observer over the given sinks (nil when no sinks are
// given, so callers can pass the result around unconditionally).
func New(sinks ...Sink) *Observer {
	if len(sinks) == 0 {
		return nil
	}
	return &Observer{sinks: sinks}
}

// Start opens a span. met may be nil (no counter deltas). The returned
// Span is a value; call End exactly once.
func (o *Observer) Start(stage, macro, class string, dft bool, met *Metrics) Span {
	if o == nil {
		return Span{}
	}
	sp := Span{o: o, stage: stage, macro: macro, class: class, dft: dft, met: met, start: time.Now()}
	if met != nil {
		sp.snap = met.snapshot()
	}
	return sp
}

// Stages returns the per-stage aggregate of the first snapshotting sink
// (an *Agg, typically), or nil when none is attached.
func (o *Observer) Stages() map[string]*StageStats {
	if o == nil {
		return nil
	}
	for _, s := range o.sinks {
		if a, ok := s.(interface{ Snapshot() map[string]*StageStats }); ok {
			return a.Snapshot()
		}
	}
	return nil
}

// Span is one open stage interval. The zero Span (from a nil observer)
// is inert.
type Span struct {
	o                   *Observer
	stage, macro, class string
	dft                 bool
	met                 *Metrics
	snap                [NumCounters]int64
	start               time.Time
}

// End closes the span and delivers it to every sink.
func (sp Span) End() {
	if sp.o == nil {
		return
	}
	r := Record{
		Stage: sp.stage,
		Macro: sp.macro,
		Class: sp.class,
		DfT:   sp.dft,
		Start: sp.start,
		Dur:   time.Since(sp.start),
	}
	if sp.met != nil {
		now := sp.met.snapshot()
		for i := range r.Counters {
			r.Counters[i] = now[i] - sp.snap[i]
		}
	}
	for _, s := range sp.o.sinks {
		s.Emit(&r)
	}
}
