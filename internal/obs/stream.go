package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// WireRecord is the JSON wire form of one span, shared by the JSONL
// trace writer (`-trace`) and the job server's SSE progress stream.
// Timestamps are microseconds relative to an epoch chosen by the
// producer, so traces diff cleanly across runs and leak no wall-clock
// state into outputs.
type WireRecord struct {
	Stage    string           `json:"stage"`
	Macro    string           `json:"macro,omitempty"`
	Class    string           `json:"class,omitempty"`
	DfT      bool             `json:"dft,omitempty"`
	TUS      float64          `json:"t_us"`
	DurUS    float64          `json:"dur_us"`
	Counters map[string]int64 `json:"counters,omitempty"`
}

// Wire converts the record to its wire form, timing it against epoch.
func (r *Record) Wire(epoch time.Time) WireRecord {
	out := WireRecord{
		Stage: r.Stage,
		Macro: r.Macro,
		Class: r.Class,
		DfT:   r.DfT,
		TUS:   float64(r.Start.Sub(epoch)) / float64(time.Microsecond),
		DurUS: float64(r.Dur) / float64(time.Microsecond),
	}
	for i, n := range r.Counters {
		if n != 0 {
			if out.Counters == nil {
				out.Counters = make(map[string]int64, len(r.Counters))
			}
			out.Counters[Counter(i).Name()] = n
		}
	}
	return out
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(r *Record)

// Emit implements Sink.
func (f SinkFunc) Emit(r *Record) { f(r) }

// StreamEvent is one span delivered to a Streamer subscriber. Seq is a
// monotone per-streamer sequence number: gaps tell a subscriber how
// many events it lost to backpressure drops.
type StreamEvent struct {
	Seq uint64
	Rec Record
}

// Streamer is the span → live-stream bridge: a Sink fanning finished
// spans out to subscribers (the SSE connections of the campaign job
// server). Publishing never blocks — a subscriber that cannot keep up
// has events dropped and counted instead of stalling the pipeline's
// workers, so a slow or disconnected client can never slow down (let
// alone cancel) the run it is watching.
type Streamer struct {
	mu   sync.Mutex
	subs map[*StreamSub]struct{}
	seq  uint64
}

// NewStreamer returns an empty streamer.
func NewStreamer() *Streamer {
	return &Streamer{subs: map[*StreamSub]struct{}{}}
}

// Emit implements Sink: it copies the record (sinks must not retain the
// pointer) and offers it to every subscriber without blocking.
func (s *Streamer) Emit(r *Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	ev := StreamEvent{Seq: s.seq, Rec: *r}
	for sub := range s.subs {
		select {
		case sub.ch <- ev:
		default:
			sub.dropped.Add(1)
		}
	}
}

// Subscribe registers a subscriber with the given channel buffer
// (minimum 1). Events emitted while the buffer is full are dropped for
// this subscriber only.
func (s *Streamer) Subscribe(buf int) *StreamSub {
	if buf < 1 {
		buf = 1
	}
	sub := &StreamSub{st: s, ch: make(chan StreamEvent, buf)}
	s.mu.Lock()
	s.subs[sub] = struct{}{}
	s.mu.Unlock()
	return sub
}

// StreamSub is one live subscription.
type StreamSub struct {
	st      *Streamer
	ch      chan StreamEvent
	dropped atomic.Int64
	closed  bool
}

// C is the event channel. It is closed by Close.
func (sub *StreamSub) C() <-chan StreamEvent { return sub.ch }

// Dropped counts events lost to backpressure so far.
func (sub *StreamSub) Dropped() int64 { return sub.dropped.Load() }

// Close unsubscribes and closes the channel (buffered events remain
// readable). Safe to call once per subscription.
func (sub *StreamSub) Close() {
	sub.st.mu.Lock()
	if sub.closed {
		sub.st.mu.Unlock()
		return
	}
	sub.closed = true
	delete(sub.st.subs, sub)
	sub.st.mu.Unlock()
	close(sub.ch)
}
