package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// TestNilObserverAndMetricsAreFree pins the noop contract: a nil
// observer's spans and a nil metrics block must be safe, inert and
// allocation-free — the kernel hot path relies on it.
func TestNilObserverAndMetricsAreFree(t *testing.T) {
	var o *Observer
	var m *Metrics
	allocs := testing.AllocsPerRun(100, func() {
		sp := o.Start(StageFaultSim, "comparator", "c1", false, m)
		m.Add(CtrNewtonIters, 3)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("nil observer span cost %v allocs/op, want 0", allocs)
	}
	if m.Get(CtrNewtonIters) != 0 {
		t.Fatal("nil metrics should read 0")
	}
	if New() != nil {
		t.Fatal("New() with no sinks should return the nil (noop) observer")
	}
	if o.Stages() != nil {
		t.Fatal("nil observer Stages() should be nil")
	}
}

// TestSpanCounterDeltas checks that a span records only the counter
// activity inside its window.
func TestSpanCounterDeltas(t *testing.T) {
	agg := NewAgg()
	o := New(agg)
	met := &Metrics{}
	met.Add(CtrNewtonIters, 100) // before the span: must not be attributed

	sp := o.Start(StageFaultSim, "ladder", "short:a:b", true, met)
	met.Add(CtrNewtonIters, 7)
	met.Add(CtrLUSolves, 7)
	sp.End()

	st := o.Stages()[StageFaultSim]
	if st == nil || st.Spans != 1 {
		t.Fatalf("stage stats = %+v, want 1 span", st)
	}
	if got := st.Counters[CtrNewtonIters.Name()]; got != 7 {
		t.Fatalf("newton_iters delta = %d, want 7", got)
	}
	if got := st.Counters[CtrLUSolves.Name()]; got != 7 {
		t.Fatalf("lu_solves delta = %d, want 7", got)
	}
}

// TestJSONLWriter checks the trace schema: one valid JSON object per
// line with stage/labels/timing and non-zero counters only.
func TestJSONLWriter(t *testing.T) {
	var buf bytes.Buffer
	jw := NewJSONLWriter(&buf)
	o := New(jw)

	met := &Metrics{}
	sp := o.Start(StageSprinkle, "comparator", "discovery", false, met)
	met.Add(CtrSprinkleDraws, 25000)
	time.Sleep(time.Millisecond)
	sp.End()
	o.Start(StageDetect, "comparator", "c9", true, nil).End()

	if err := jw.Err(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var recs []WireRecord
	for sc.Scan() {
		var r WireRecord
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", sc.Text(), err)
		}
		recs = append(recs, r)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	r0 := recs[0]
	if r0.Stage != StageSprinkle || r0.Macro != "comparator" || r0.Class != "discovery" {
		t.Fatalf("bad labels: %+v", r0)
	}
	if r0.DurUS <= 0 {
		t.Fatalf("dur_us = %v, want > 0", r0.DurUS)
	}
	if r0.Counters["sprinkle_draws"] != 25000 {
		t.Fatalf("counters = %v", r0.Counters)
	}
	if recs[1].Counters != nil {
		t.Fatalf("zero counters must be omitted, got %v", recs[1].Counters)
	}
	if !recs[1].DfT {
		t.Fatal("dft label lost")
	}
}

// TestMetricsConcurrent hammers one shared Metrics block from many
// goroutines — the good-space die workers all fold into their stage's
// block — and checks that no increment is lost. Under -race this is the
// synchronisation proof for the atomic counters.
func TestMetricsConcurrent(t *testing.T) {
	met := &Metrics{}
	const workers, perWorker = 16, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			local := &Metrics{}
			for i := 0; i < perWorker; i++ {
				c := Counter((id + i) % int(NumCounters))
				met.Add(c, 1)
				local.Add(c, 1)
				_ = met.Get(c) // concurrent reads must be race-free too
			}
			met.Merge(local) // doubles every contribution
		}(w)
	}
	wg.Wait()
	var total int64
	for c := Counter(0); c < NumCounters; c++ {
		total += met.Get(c)
	}
	if want := int64(2 * workers * perWorker); total != want {
		t.Fatalf("lost increments: total = %d, want %d", total, want)
	}
	// Nil-safety of Merge in both directions.
	var nilMet *Metrics
	nilMet.Merge(met)
	met.Merge(nilMet)
}

// TestAggConcurrent exercises the aggregator from parallel emitters
// (the campaign worker situation) — run under -race this is the
// synchronisation test.
func TestAggConcurrent(t *testing.T) {
	agg := NewAgg()
	o := New(agg)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				met := &Metrics{}
				sp := o.Start(StageClassify, "m", "c", false, met)
				met.Add(CtrNewtonIters, 1)
				sp.End()
			}
		}()
	}
	wg.Wait()
	st := agg.Snapshot()[StageClassify]
	if st.Spans != 400 || st.Counters[CtrNewtonIters.Name()] != 400 {
		t.Fatalf("aggregate = %+v, want 400 spans / 400 iters", st)
	}
}
