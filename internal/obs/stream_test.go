package obs

import (
	"testing"
	"time"
)

// TestWireRecordMatchesJSONL: the exported wire form carries the same
// fields the JSONL trace always wrote — zero counters elided, times in
// microseconds from the epoch.
func TestWireRecordMatchesJSONL(t *testing.T) {
	epoch := time.Unix(100, 0)
	r := Record{
		Stage: StageFaultSim, Macro: "comparator", Class: "short/1", DfT: true,
		Start: epoch.Add(250 * time.Microsecond),
		Dur:   3 * time.Millisecond,
	}
	r.Counters[CtrNewtonIters] = 42
	w := r.Wire(epoch)
	if w.Stage != StageFaultSim || w.Macro != "comparator" || w.Class != "short/1" || !w.DfT {
		t.Fatalf("labels: %+v", w)
	}
	if w.TUS != 250 || w.DurUS != 3000 {
		t.Fatalf("times: t_us=%v dur_us=%v", w.TUS, w.DurUS)
	}
	if len(w.Counters) != 1 || w.Counters["newton_iters"] != 42 {
		t.Fatalf("counters: %v", w.Counters)
	}
}

// TestStreamerFanout: every subscriber sees every event in order with
// monotone sequence numbers.
func TestStreamerFanout(t *testing.T) {
	st := NewStreamer()
	a, b := st.Subscribe(8), st.Subscribe(8)
	defer a.Close()
	defer b.Close()
	for i := 0; i < 3; i++ {
		st.Emit(&Record{Stage: StageInject})
	}
	for _, sub := range []*StreamSub{a, b} {
		var last uint64
		for i := 0; i < 3; i++ {
			ev := <-sub.C()
			if ev.Seq <= last {
				t.Fatalf("seq went %d -> %d", last, ev.Seq)
			}
			last = ev.Seq
			if ev.Rec.Stage != StageInject {
				t.Fatalf("stage %q", ev.Rec.Stage)
			}
		}
		if sub.Dropped() != 0 {
			t.Fatalf("dropped %d", sub.Dropped())
		}
	}
}

// TestStreamerSlowSubscriberDrops: a full subscriber buffer drops (and
// counts) events for that subscriber only — Emit never blocks, and a
// healthy subscriber keeps receiving everything.
func TestStreamerSlowSubscriberDrops(t *testing.T) {
	st := NewStreamer()
	slow := st.Subscribe(1)
	fast := st.Subscribe(16)
	defer fast.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10; i++ {
			st.Emit(&Record{Stage: StageDetect})
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Emit blocked on a slow subscriber")
	}
	if got := slow.Dropped(); got != 9 {
		t.Fatalf("slow subscriber dropped %d, want 9", got)
	}
	slow.Close()
	for i := 0; i < 10; i++ {
		if ev := <-fast.C(); ev.Rec.Stage != StageDetect {
			t.Fatalf("fast subscriber event %d: %+v", i, ev)
		}
	}
	if fast.Dropped() != 0 {
		t.Fatalf("fast subscriber dropped %d", fast.Dropped())
	}
}

// TestStreamerClose: Close unsubscribes (later emits don't reach the
// channel), closes the channel after the buffered tail, and is
// idempotent.
func TestStreamerClose(t *testing.T) {
	st := NewStreamer()
	sub := st.Subscribe(4)
	st.Emit(&Record{Stage: StageSprinkle})
	sub.Close()
	sub.Close()
	st.Emit(&Record{Stage: StageSprinkle})
	if ev, ok := <-sub.C(); !ok || ev.Rec.Stage != StageSprinkle {
		t.Fatalf("buffered tail: %+v ok=%v", ev, ok)
	}
	if _, ok := <-sub.C(); ok {
		t.Fatal("channel not closed after Close")
	}
	if sub.Dropped() != 0 {
		t.Fatalf("dropped %d", sub.Dropped())
	}
}

// TestStreamerAsObserverSink: the streamer plugs into an Observer next
// to the aggregator — spans emitted through the normal Start/End path
// arrive with their counter deltas.
func TestStreamerAsObserverSink(t *testing.T) {
	st := NewStreamer()
	sub := st.Subscribe(4)
	defer sub.Close()
	o := New(NewAgg(), st)
	var met Metrics
	sp := o.Start(StageFaultSim, "opamp", "open/2", false, &met)
	met.Add(CtrLUSolves, 11)
	sp.End()
	ev := <-sub.C()
	if ev.Rec.Stage != StageFaultSim || ev.Rec.Macro != "opamp" ||
		ev.Rec.Counters[CtrLUSolves] != 11 {
		t.Fatalf("span record: %+v", ev.Rec)
	}
}
