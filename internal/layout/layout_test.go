package layout

import (
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/process"
)

func TestCellBoundsAndArea(t *testing.T) {
	c := NewCell("t")
	if !c.Bounds().Empty() {
		t.Fatal("empty cell should have empty bounds")
	}
	c.Add(Shape{Layer: process.Metal1, Net: "a", Rect: geom.NewRect(0, 0, 10, 1)})
	c.Add(Shape{Layer: process.Metal1, Net: "b", Rect: geom.NewRect(0, 3, 10, 4)})
	if got := c.Bounds(); got != geom.NewRect(0, 0, 10, 4) {
		t.Fatalf("Bounds = %v", got)
	}
	if got := c.Area(); got != 40 {
		t.Fatalf("Area = %g", got)
	}
	if got := c.LayerArea(process.Metal1); got != 20 {
		t.Fatalf("LayerArea = %g", got)
	}
	if got := c.LayerArea(process.Poly); got != 0 {
		t.Fatalf("poly LayerArea = %g", got)
	}
}

func TestAddCanonicalises(t *testing.T) {
	c := NewCell("t")
	c.Add(Shape{Layer: process.Poly, Net: "x", Rect: geom.Rect{X0: 5, Y0: 5, X1: 1, Y1: 1}})
	if !c.Shapes[0].Rect.Valid() {
		t.Fatal("Add must canonicalise rectangles")
	}
}

func TestNetsSortedUnique(t *testing.T) {
	c := NewCell("t")
	c.Add(Shape{Layer: process.Metal1, Net: "b", Rect: geom.NewRect(0, 0, 1, 1)})
	c.Add(Shape{Layer: process.Metal1, Net: "a", Rect: geom.NewRect(2, 0, 3, 1)})
	c.Add(Shape{Layer: process.Poly, Net: "a", Rect: geom.NewRect(4, 0, 5, 1)})
	c.Add(Shape{Layer: process.NWell, Net: "", Rect: geom.NewRect(0, 0, 9, 9)})
	nets := c.Nets()
	if len(nets) != 2 || nets[0] != "a" || nets[1] != "b" {
		t.Fatalf("Nets = %v", nets)
	}
}

func TestQueryDiskPerLayer(t *testing.T) {
	c := NewCell("t")
	c.Add(Shape{Layer: process.Metal1, Net: "a", Rect: geom.NewRect(0, 0, 10, 1)}) // 0
	c.Add(Shape{Layer: process.Metal1, Net: "b", Rect: geom.NewRect(0, 3, 10, 4)}) // 1
	c.Add(Shape{Layer: process.Poly, Net: "g", Rect: geom.NewRect(0, 0, 10, 4)})   // 2
	d := geom.Disk{C: geom.Point{X: 5, Y: 2}, R: 1.5}
	m1 := c.QueryDisk(process.Metal1, d)
	if len(m1) != 2 || m1[0] != 0 || m1[1] != 1 {
		t.Fatalf("metal1 hits = %v", m1)
	}
	po := c.QueryDisk(process.Poly, d)
	if len(po) != 1 || po[0] != 2 {
		t.Fatalf("poly hits = %v", po)
	}
	// Index invalidation after Add.
	c.Add(Shape{Layer: process.Metal1, Net: "c", Rect: geom.NewRect(4, 1.6, 6, 2.4)})
	m1 = c.QueryDisk(process.Metal1, d)
	if len(m1) != 3 {
		t.Fatalf("after add, metal1 hits = %v", m1)
	}
}

func TestMarkPort(t *testing.T) {
	c := NewCell("t")
	c.MarkPort("clk1", "vdd")
	if !c.Ports["clk1"] || !c.Ports["vdd"] || c.Ports["x"] {
		t.Fatalf("Ports = %v", c.Ports)
	}
}

func TestBuilderWires(t *testing.T) {
	b := NewBuilder("w")
	b.DefaultWidth = 2
	b.HWire(process.Metal1, "n1", 0, 10, 5)
	b.VWire(process.Metal2, "n2", 3, 0, 8)
	if len(b.C.Shapes) != 2 {
		t.Fatalf("want 2 shapes, got %d", len(b.C.Shapes))
	}
	h := b.C.Shapes[0]
	if h.Rect != geom.NewRect(0, 4, 10, 6) || h.Net != "n1" || h.Role != Wire {
		t.Fatalf("HWire shape = %+v", h)
	}
	v := b.C.Shapes[1]
	if v.Rect != geom.NewRect(2, 0, 4, 8) || v.Layer != process.Metal2 {
		t.Fatalf("VWire shape = %+v", v)
	}
}

func TestBuilderMOSNMOS(t *testing.T) {
	b := NewBuilder("m")
	b.MOS("m1", "d", "g", "s", 0, 0, MOSOpts{W: 4, L: 1})
	var gates, sds, cuts, polyWires int
	for _, s := range b.C.Shapes {
		switch s.Role {
		case Gate:
			gates++
			if s.Layer != process.Poly || s.Net != "g" || s.Device != "m1" || s.Bulk != "vss" || s.IsPMOS {
				t.Fatalf("gate shape wrong: %+v", s)
			}
			if s.Rect.W() != 1 || s.Rect.H() != 4 {
				t.Fatalf("gate geometry: %v", s.Rect)
			}
		case SDRegion:
			sds++
			if s.Layer != process.NDiff || s.Device != "m1" {
				t.Fatalf("sd shape wrong: %+v", s)
			}
		case Cut:
			cuts++
		case Wire:
			if s.Layer == process.Poly {
				polyWires++
			}
		}
	}
	if gates != 1 || sds != 2 || cuts != 2 || polyWires != 2 {
		t.Fatalf("counts gates=%d sds=%d cuts=%d polyStubs=%d", gates, sds, cuts, polyWires)
	}
}

func TestBuilderMOSPMOSDefaults(t *testing.T) {
	b := NewBuilder("m")
	b.MOS("mp", "d", "g", "s", 0, 0, MOSOpts{PMOS: true}) // default W/L
	var well bool
	for _, s := range b.C.Shapes {
		if s.Role == WellRegion {
			well = true
		}
		if s.Role == Gate {
			if !s.IsPMOS || s.Bulk != "vdd" {
				t.Fatalf("pmos gate: %+v", s)
			}
		}
		if s.Role == SDRegion && s.Layer != process.PDiff {
			t.Fatalf("pmos sd on %v", s.Layer)
		}
	}
	if !well {
		t.Fatal("PMOS must emit an n-well region")
	}
}

func TestBuilderResistor(t *testing.T) {
	b := NewBuilder("r")
	b.Resistor("r1", "a", "b", 0, 0, 20, 2)
	if len(b.C.Shapes) != 2 {
		t.Fatalf("resistor shapes = %d", len(b.C.Shapes))
	}
	s0, s1 := b.C.Shapes[0], b.C.Shapes[1]
	if s0.Net != "a" || s1.Net != "b" {
		t.Fatalf("terminal nets %q %q", s0.Net, s1.Net)
	}
	if s0.Rect.X1 != s1.Rect.X0 {
		t.Fatal("halves must abut")
	}
	if s0.Layer != process.Poly || s1.Layer != process.Poly {
		t.Fatal("resistor body must be poly")
	}
}

// Property: QueryDisk only ever returns shapes on the requested layer that
// genuinely intersect the disk, and it returns all of them.
func TestQuickQueryDiskComplete(t *testing.T) {
	f := func(seed int64) bool {
		c := NewCell("q")
		rng := newRng(seed)
		for i := 0; i < 40; i++ {
			x, y := rng()*100, rng()*100
			c.Add(Shape{
				Layer: process.Layer(int(rng() * 3)), // ndiff/pdiff/poly
				Net:   "n",
				Rect:  geom.NewRect(x, y, x+rng()*8+0.1, y+rng()*8+0.1),
			})
		}
		d := geom.Disk{C: geom.Point{X: rng() * 100, Y: rng() * 100}, R: rng()*10 + 0.1}
		for l := process.Layer(0); l < 3; l++ {
			got := map[int]bool{}
			for _, id := range c.QueryDisk(l, d) {
				got[id] = true
			}
			for i, s := range c.Shapes {
				want := s.Layer == l && d.IntersectsRect(s.Rect)
				if got[i] != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// newRng returns a tiny deterministic float64 generator in [0,1).
func newRng(seed int64) func() float64 {
	s := uint64(seed)*2654435761 + 1
	return func() float64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return float64(s%1e9) / 1e9
	}
}
