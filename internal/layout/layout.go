// Package layout models a mask layout at the level of detail the defect
// simulator needs: rectangles on process layers, each tagged with the
// electrical net it belongs to and its role (routing wire, transistor gate
// area, source/drain diffusion, contact cut). Macro cells construct their
// layouts procedurally with the Builder.
//
// Coordinates are in micrometres. The layout is deliberately simple — pure
// Manhattan rectangles — because the defect-to-fault mapping only depends
// on which nets are adjacent on which layer, at what spacing, over what
// area; that is exactly the information VLASIC consumed from the real mask
// data in the paper.
package layout

import (
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/process"
)

// Role describes what a shape is, which determines which faults a defect
// on it can cause.
type Role int

const (
	// Wire is plain routing: extra material bridges it to neighbours,
	// missing material can sever it.
	Wire Role = iota
	// Gate is the channel region of a MOS device (poly over diffusion):
	// gate-oxide pinholes strike here; missing poly shorts the device.
	Gate
	// SDRegion is a source or drain diffusion region of a device:
	// junction pinholes strike here.
	SDRegion
	// Cut is a contact or via connecting two layers of the same net.
	Cut
	// WellRegion is an n-well boundary; informational.
	WellRegion
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case Wire:
		return "wire"
	case Gate:
		return "gate"
	case SDRegion:
		return "sd"
	case Cut:
		return "cut"
	case WellRegion:
		return "well"
	}
	return fmt.Sprintf("role(%d)", int(r))
}

// Shape is one rectangle of one net on one layer.
type Shape struct {
	Layer  process.Layer
	Rect   geom.Rect
	Net    string // electrical net name ("" for well regions)
	Role   Role
	Device string // owning device for Gate/SDRegion shapes
	// Bulk is the bulk net a junction pinhole on this SDRegion leaks to
	// (substrate for NMOS, well for PMOS); only set for SDRegion/Gate.
	Bulk string
	// IsPMOS marks Gate/SDRegion shapes of PMOS devices.
	IsPMOS bool
}

// Cell is a complete macro-cell layout.
type Cell struct {
	Name   string
	Shapes []Shape
	// Ports lists the nets that leave the cell (shared with other macros
	// or with the circuit boundary). Faults touching only non-port nets
	// are "local" faults in the paper's 27.8 % sense.
	Ports map[string]bool

	bounds   geom.Rect
	hasBound bool
	index    [process.NumLayers]*geom.Index
	idMap    [process.NumLayers][]int // index handle -> Shapes position
}

// NewCell returns an empty cell.
func NewCell(name string) *Cell {
	return &Cell{Name: name, Ports: map[string]bool{}}
}

// Add appends a shape; the canonical rectangle form is enforced.
func (c *Cell) Add(s Shape) {
	s.Rect = geom.NewRect(s.Rect.X0, s.Rect.Y0, s.Rect.X1, s.Rect.Y1)
	c.Shapes = append(c.Shapes, s)
	if !c.hasBound {
		c.bounds = s.Rect
		c.hasBound = true
	} else {
		c.bounds = c.bounds.Union(s.Rect)
	}
	c.index = [process.NumLayers]*geom.Index{} // invalidate
}

// MarkPort declares nets as cell ports (externally shared).
func (c *Cell) MarkPort(nets ...string) {
	for _, n := range nets {
		c.Ports[n] = true
	}
}

// Bounds returns the bounding box of all shapes.
func (c *Cell) Bounds() geom.Rect {
	if !c.hasBound {
		return geom.Rect{}
	}
	return c.bounds
}

// Area returns the bounding-box area of the cell in µm².
func (c *Cell) Area() float64 { return c.Bounds().Area() }

// LayerArea returns the summed shape area on one layer (overlaps counted
// twice; adequate for density statistics).
func (c *Cell) LayerArea(l process.Layer) float64 {
	var a float64
	for _, s := range c.Shapes {
		if s.Layer == l {
			a += s.Rect.Area()
		}
	}
	return a
}

// Nets returns the sorted list of distinct net names in the cell.
func (c *Cell) Nets() []string {
	set := map[string]bool{}
	for _, s := range c.Shapes {
		if s.Net != "" {
			set[s.Net] = true
		}
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// buildIndex lazily constructs the per-layer spatial index.
func (c *Cell) buildIndex(l process.Layer) {
	if c.index[l] != nil {
		return
	}
	b := c.Bounds().Expand(1)
	ix := geom.NewIndex(b, 1024)
	var ids []int
	for i, s := range c.Shapes {
		if s.Layer == l {
			ix.Insert(s.Rect)
			ids = append(ids, i)
		}
	}
	c.index[l] = ix
	c.idMap[l] = ids
}

// QueryDisk returns the positions (into c.Shapes) of all shapes on layer l
// intersecting the disk.
func (c *Cell) QueryDisk(l process.Layer, d geom.Disk) []int {
	c.buildIndex(l)
	handles := c.index[l].QueryDisk(d)
	out := make([]int, len(handles))
	for i, h := range handles {
		out[i] = c.idMap[l][h]
	}
	sort.Ints(out)
	return out
}

// Builder provides a small DSL for constructing macro layouts.
type Builder struct {
	C *Cell
	// DefaultWidth is the wire width used by HWire/VWire, in µm.
	DefaultWidth float64
}

// NewBuilder returns a builder for a fresh cell. Default wire width 1 µm.
func NewBuilder(name string) *Builder {
	return &Builder{C: NewCell(name), DefaultWidth: 1}
}

// HWire adds a horizontal routing wire on layer for net, from x0 to x1 at
// vertical centre y.
func (b *Builder) HWire(l process.Layer, net string, x0, x1, y float64) {
	w := b.DefaultWidth
	b.C.Add(Shape{Layer: l, Net: net, Role: Wire, Rect: geom.NewRect(x0, y-w/2, x1, y+w/2)})
}

// VWire adds a vertical routing wire on layer for net, from y0 to y1 at
// horizontal centre x.
func (b *Builder) VWire(l process.Layer, net string, x, y0, y1 float64) {
	w := b.DefaultWidth
	b.C.Add(Shape{Layer: l, Net: net, Role: Wire, Rect: geom.NewRect(x-w/2, y0, x+w/2, y1)})
}

// RectWire adds an arbitrary rectangle of routing.
func (b *Builder) RectWire(l process.Layer, net string, r geom.Rect) {
	b.C.Add(Shape{Layer: l, Net: net, Role: Wire, Rect: r})
}

// CutAt adds a contact/via cut of the given kind (process.Contact or
// process.Via) for net at centre (x, y).
func (b *Builder) CutAt(kind process.Layer, net string, x, y float64) {
	const cut = 0.8
	b.C.Add(Shape{Layer: kind, Net: net, Role: Cut, Rect: geom.NewRect(x-cut/2, y-cut/2, x+cut/2, y+cut/2)})
}

// MOSOpts configures MOS placement.
type MOSOpts struct {
	// W and L are channel width and length in µm.
	W, L float64
	// PMOS selects a PMOS device (diffusion on PDiff, bulk = well net).
	PMOS bool
	// Bulk is the bulk net (defaults to "vss" for NMOS, "vdd" for PMOS).
	Bulk string
}

// MOS places a transistor with its channel centred at (x, y): a horizontal
// diffusion bar with the gate poly crossing vertically. It creates the
// source/drain diffusion regions, the gate area, a poly stub for the gate
// connection, and metal1 contacts on source and drain.
func (b *Builder) MOS(name, drain, gate, source string, x, y float64, o MOSOpts) {
	if o.W <= 0 {
		o.W = 4
	}
	if o.L <= 0 {
		o.L = 1
	}
	diff := process.NDiff
	bulk := o.Bulk
	if o.PMOS {
		diff = process.PDiff
		if bulk == "" {
			bulk = "vdd"
		}
	} else if bulk == "" {
		bulk = "vss"
	}
	const sd = 2.0     // source/drain extension, µm
	const overhang = 1 // poly gate overhang beyond diffusion
	// Source (left) and drain (right) diffusion.
	b.C.Add(Shape{Layer: diff, Net: source, Role: SDRegion, Device: name, Bulk: bulk, IsPMOS: o.PMOS,
		Rect: geom.NewRect(x-o.L/2-sd, y-o.W/2, x-o.L/2, y+o.W/2)})
	b.C.Add(Shape{Layer: diff, Net: drain, Role: SDRegion, Device: name, Bulk: bulk, IsPMOS: o.PMOS,
		Rect: geom.NewRect(x+o.L/2, y-o.W/2, x+o.L/2+sd, y+o.W/2)})
	// Gate area: poly over the channel.
	b.C.Add(Shape{Layer: process.Poly, Net: gate, Role: Gate, Device: name, Bulk: bulk, IsPMOS: o.PMOS,
		Rect: geom.NewRect(x-o.L/2, y-o.W/2, x+o.L/2, y+o.W/2)})
	// Poly overhang stubs above and below the channel for connection.
	b.C.Add(Shape{Layer: process.Poly, Net: gate, Role: Wire,
		Rect: geom.NewRect(x-o.L/2, y+o.W/2, x+o.L/2, y+o.W/2+overhang)})
	b.C.Add(Shape{Layer: process.Poly, Net: gate, Role: Wire,
		Rect: geom.NewRect(x-o.L/2, y-o.W/2-overhang, x+o.L/2, y-o.W/2)})
	// Contacts on source and drain.
	b.CutAt(process.Contact, source, x-o.L/2-sd/2, y)
	b.CutAt(process.Contact, drain, x+o.L/2+sd/2, y)
	if o.PMOS {
		well := geom.NewRect(x-o.L/2-sd-1.5, y-o.W/2-1.5, x+o.L/2+sd+1.5, y+o.W/2+1.5)
		b.C.Add(Shape{Layer: process.NWell, Role: WellRegion, Rect: well})
	}
}

// Resistor places a serpentine-free polysilicon resistor bar between nets a
// and b: a poly wire of the given length and width whose two halves belong
// to the two terminal nets (a defect bridging the halves shortens the
// resistor; a missing-material defect opens it).
func (b *Builder) Resistor(name, a, bn string, x, y, length, width float64) {
	half := length / 2
	b.C.Add(Shape{Layer: process.Poly, Net: a, Role: Wire, Device: name,
		Rect: geom.NewRect(x, y-width/2, x+half, y+width/2)})
	b.C.Add(Shape{Layer: process.Poly, Net: bn, Role: Wire, Device: name,
		Rect: geom.NewRect(x+half, y-width/2, x+length, y+width/2)})
}
