package geom

// Index is a uniform-grid spatial index over rectangles. The defect
// simulator performs millions of disk-vs-shape queries; a grid keeps each
// query local. Values are opaque int handles supplied by the caller
// (typically indices into a shape table).
type Index struct {
	bounds Rect
	nx, ny int
	cellW  float64
	cellH  float64
	cells  [][]int
	rects  []Rect
}

// NewIndex creates a grid index covering bounds with approximately
// targetCells cells. targetCells below 1 is treated as 1.
func NewIndex(bounds Rect, targetCells int) *Index {
	if targetCells < 1 {
		targetCells = 1
	}
	w, h := bounds.W(), bounds.H()
	if w <= 0 {
		w = 1
	}
	if h <= 0 {
		h = 1
	}
	aspect := w / h
	ny := 1
	for ny*ny < int(float64(targetCells)/aspect) {
		ny++
	}
	nx := targetCells / ny
	if nx < 1 {
		nx = 1
	}
	return &Index{
		bounds: bounds,
		nx:     nx,
		ny:     ny,
		cellW:  w / float64(nx),
		cellH:  h / float64(ny),
		cells:  make([][]int, nx*ny),
	}
}

// Len returns the number of rectangles inserted.
func (ix *Index) Len() int { return len(ix.rects) }

// Rect returns the rectangle stored under handle id.
func (ix *Index) Rect(id int) Rect { return ix.rects[id] }

func (ix *Index) cellRange(r Rect) (cx0, cy0, cx1, cy1 int) {
	cx0 = int((r.X0 - ix.bounds.X0) / ix.cellW)
	cy0 = int((r.Y0 - ix.bounds.Y0) / ix.cellH)
	cx1 = int((r.X1 - ix.bounds.X0) / ix.cellW)
	cy1 = int((r.Y1 - ix.bounds.Y0) / ix.cellH)
	clamp := func(v, hi int) int {
		if v < 0 {
			return 0
		}
		if v > hi {
			return hi
		}
		return v
	}
	cx0, cx1 = clamp(cx0, ix.nx-1), clamp(cx1, ix.nx-1)
	cy0, cy1 = clamp(cy0, ix.ny-1), clamp(cy1, ix.ny-1)
	return
}

// Insert adds r to the index and returns its handle.
func (ix *Index) Insert(r Rect) int {
	id := len(ix.rects)
	ix.rects = append(ix.rects, r)
	cx0, cy0, cx1, cy1 := ix.cellRange(r)
	for cy := cy0; cy <= cy1; cy++ {
		for cx := cx0; cx <= cx1; cx++ {
			c := cy*ix.nx + cx
			ix.cells[c] = append(ix.cells[c], id)
		}
	}
	return id
}

// QueryRect calls fn for every stored rectangle whose bounding box
// intersects r. Handles may be reported once per overlapping grid cell; fn
// must tolerate duplicates or the caller should use QueryRectUnique.
func (ix *Index) QueryRect(r Rect, fn func(id int)) {
	cx0, cy0, cx1, cy1 := ix.cellRange(r)
	for cy := cy0; cy <= cy1; cy++ {
		for cx := cx0; cx <= cx1; cx++ {
			for _, id := range ix.cells[cy*ix.nx+cx] {
				if ix.rects[id].Intersects(r) {
					fn(id)
				}
			}
		}
	}
}

// QueryRectUnique returns the deduplicated handles of all rectangles
// intersecting r.
func (ix *Index) QueryRectUnique(r Rect) []int {
	var out []int
	seen := map[int]bool{}
	ix.QueryRect(r, func(id int) {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	})
	return out
}

// QueryDisk returns the deduplicated handles of all rectangles that
// actually intersect the disk (not merely its bounding box).
func (ix *Index) QueryDisk(d Disk) []int {
	var out []int
	seen := map[int]bool{}
	ix.QueryRect(d.Bounds(), func(id int) {
		if !seen[id] && d.IntersectsRect(ix.rects[id]) {
			seen[id] = true
			out = append(out, id)
		}
	})
	return out
}
