package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewRectCanonical(t *testing.T) {
	r := NewRect(5, 7, 1, 2)
	if r.X0 != 1 || r.Y0 != 2 || r.X1 != 5 || r.Y1 != 7 {
		t.Fatalf("not canonical: %v", r)
	}
	if !r.Valid() {
		t.Fatal("canonical rect must be valid")
	}
}

func TestRectBasics(t *testing.T) {
	r := NewRect(0, 0, 4, 2)
	if got := r.W(); got != 4 {
		t.Errorf("W = %g, want 4", got)
	}
	if got := r.H(); got != 2 {
		t.Errorf("H = %g, want 2", got)
	}
	if got := r.Area(); got != 8 {
		t.Errorf("Area = %g, want 8", got)
	}
	if c := r.Center(); c != (Point{2, 1}) {
		t.Errorf("Center = %v, want (2,1)", c)
	}
	if r.Empty() {
		t.Error("non-degenerate rect reported empty")
	}
	if !NewRect(1, 1, 1, 5).Empty() {
		t.Error("zero-width rect should be empty")
	}
}

func TestRectContains(t *testing.T) {
	r := NewRect(0, 0, 2, 2)
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{1, 1}, true},
		{Point{0, 0}, true}, // boundary counts
		{Point{2, 2}, true}, // boundary counts
		{Point{3, 1}, false},
		{Point{-0.1, 1}, false},
	}
	for _, c := range cases {
		if got := r.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestRectIntersect(t *testing.T) {
	a := NewRect(0, 0, 4, 4)
	b := NewRect(2, 2, 6, 6)
	got, ok := a.Intersect(b)
	if !ok || got != NewRect(2, 2, 4, 4) {
		t.Fatalf("Intersect = %v,%v", got, ok)
	}
	c := NewRect(5, 5, 6, 6)
	if _, ok := a.Intersect(c); ok {
		t.Fatal("disjoint rects reported intersecting")
	}
	// Touching edges intersect with zero area.
	d := NewRect(4, 0, 5, 4)
	if !a.Intersects(d) {
		t.Fatal("touching rects must intersect")
	}
	ov, ok := a.Intersect(d)
	if !ok || !ov.Empty() {
		t.Fatalf("touching overlap should be empty, got %v", ov)
	}
}

func TestRectExpandShrinkClamps(t *testing.T) {
	r := NewRect(0, 0, 2, 2)
	g := r.Expand(1)
	if g != NewRect(-1, -1, 3, 3) {
		t.Fatalf("Expand(1) = %v", g)
	}
	s := r.Expand(-2) // over-shrink: collapses to centre
	if !s.Empty() || !s.Valid() {
		t.Fatalf("over-shrunk rect must be empty+valid, got %v", s)
	}
	if c := s.Center(); c != (Point{1, 1}) {
		t.Fatalf("collapse centre = %v", c)
	}
}

func TestDiskRect(t *testing.T) {
	d := Disk{Point{0, 0}, 1}
	if !d.IntersectsRect(NewRect(0.5, -0.5, 2, 0.5)) {
		t.Error("disk should reach into rect")
	}
	if d.IntersectsRect(NewRect(0.8, 0.8, 2, 2)) {
		t.Error("corner rect at distance sqrt(1.28) should not intersect r=1 disk")
	}
	if !d.IntersectsRect(NewRect(0.6, 0.6, 2, 2)) {
		t.Error("corner at distance ~0.85 should intersect")
	}
	if !d.ContainsRect(NewRect(-0.5, -0.5, 0.5, 0.5)) {
		t.Error("small centred square should be contained")
	}
	if d.ContainsRect(NewRect(-0.9, -0.9, 0.9, 0.9)) {
		t.Error("corners at 1.27 must not be contained in r=1 disk")
	}
}

func TestDiskSpansWidth(t *testing.T) {
	// Horizontal wire of width (height) 1 from x=0..10.
	wire := NewRect(0, 0, 10, 1)
	if !(Disk{Point{5, 0.5}, 0.6}).SpansWidth(wire) {
		t.Error("r=0.6 disk centred on a width-1 wire must sever it")
	}
	if (Disk{Point{5, 0.5}, 0.4}).SpansWidth(wire) {
		t.Error("r=0.4 disk cannot span width 1")
	}
	// Off-centre vertically: needs to still cover both edges.
	if (Disk{Point{5, 0.9}, 0.55}).SpansWidth(wire) {
		t.Error("disk covering only top edge must not sever")
	}
	if !(Disk{Point{5, 0.9}, 1.0}).SpansWidth(wire) {
		t.Error("large off-centre disk severs the wire")
	}
	// Vertical wire.
	vw := NewRect(0, 0, 1, 10)
	if !(Disk{Point{0.5, 5}, 0.6}).SpansWidth(vw) {
		t.Error("vertical wire severed by centred disk")
	}
	if (Disk{Point{0.5, 5}, 0.3}).SpansWidth(vw) {
		t.Error("small disk cannot sever vertical wire")
	}
	// Disk entirely off the wire never spans.
	if (Disk{Point{5, 5}, 1}).SpansWidth(wire) {
		t.Error("remote disk must not sever")
	}
}

// Property: Intersect is symmetric, contained in both operands, and
// Intersects agrees with Intersect's ok.
func TestQuickIntersectProperties(t *testing.T) {
	f := func(ax0, ay0, ax1, ay1, bx0, by0, bx1, by1 int8) bool {
		a := NewRect(float64(ax0), float64(ay0), float64(ax1), float64(ay1))
		b := NewRect(float64(bx0), float64(by0), float64(bx1), float64(by1))
		ab, okAB := a.Intersect(b)
		ba, okBA := b.Intersect(a)
		if okAB != okBA || ab != ba {
			return false
		}
		if okAB != a.Intersects(b) {
			return false
		}
		if okAB {
			if !a.ContainsRect(ab) || !b.ContainsRect(ab) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Union contains both operands; Expand is monotone in area.
func TestQuickUnionExpand(t *testing.T) {
	f := func(ax0, ay0, ax1, ay1, bx0, by0, bx1, by1 int8, d uint8) bool {
		a := NewRect(float64(ax0), float64(ay0), float64(ax1), float64(ay1))
		b := NewRect(float64(bx0), float64(by0), float64(bx1), float64(by1))
		u := a.Union(b)
		if !u.ContainsRect(a) || !u.ContainsRect(b) {
			return false
		}
		g := a.Expand(float64(d))
		return g.ContainsRect(a) && g.Area() >= a.Area()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a disk contains a rect => it intersects it; SpansWidth implies
// intersection.
func TestQuickDiskImplications(t *testing.T) {
	f := func(cx, cy int8, r uint8, x0, y0, x1, y1 int8) bool {
		d := Disk{Point{float64(cx), float64(cy)}, float64(r%50) + 0.5}
		rect := NewRect(float64(x0), float64(y0), float64(x1), float64(y1))
		if d.ContainsRect(rect) && !rect.Empty() && !d.IntersectsRect(rect) {
			return false
		}
		if d.SpansWidth(rect) && !d.IntersectsRect(rect) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIndexFindsAllIntersections(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bounds := NewRect(0, 0, 1000, 1000)
	ix := NewIndex(bounds, 256)
	var rects []Rect
	for i := 0; i < 500; i++ {
		x := rng.Float64() * 990
		y := rng.Float64() * 990
		r := NewRect(x, y, x+rng.Float64()*10+0.1, y+rng.Float64()*10+0.1)
		rects = append(rects, r)
		if id := ix.Insert(r); id != i {
			t.Fatalf("insert id = %d, want %d", id, i)
		}
	}
	if ix.Len() != 500 {
		t.Fatalf("Len = %d", ix.Len())
	}
	for trial := 0; trial < 200; trial++ {
		d := Disk{Point{rng.Float64() * 1000, rng.Float64() * 1000}, rng.Float64()*20 + 0.1}
		got := map[int]bool{}
		for _, id := range ix.QueryDisk(d) {
			if got[id] {
				t.Fatal("QueryDisk returned duplicate")
			}
			got[id] = true
		}
		for i, r := range rects {
			want := d.IntersectsRect(r)
			if got[i] != want {
				t.Fatalf("trial %d rect %d: got %v want %v (d=%v r=%v)", trial, i, got[i], want, d, r)
			}
		}
	}
}

func TestIndexQueryRectUnique(t *testing.T) {
	ix := NewIndex(NewRect(0, 0, 100, 100), 100)
	// A big rect spanning many cells must be reported exactly once.
	big := ix.Insert(NewRect(1, 1, 99, 99))
	ids := ix.QueryRectUnique(NewRect(0, 0, 100, 100))
	if len(ids) != 1 || ids[0] != big {
		t.Fatalf("unique query = %v", ids)
	}
	if r := ix.Rect(big); r != NewRect(1, 1, 99, 99) {
		t.Fatalf("Rect(%d) = %v", big, r)
	}
}

func TestIndexOutOfBoundsQuery(t *testing.T) {
	ix := NewIndex(NewRect(0, 0, 10, 10), 16)
	ix.Insert(NewRect(9, 9, 10, 10))
	// Query entirely outside bounds must not panic and clamps to edge cells.
	ids := ix.QueryRectUnique(NewRect(50, 50, 60, 60))
	if len(ids) != 0 {
		t.Fatalf("expected no hits, got %v", ids)
	}
	// Disk straddling the boundary still finds the corner shape.
	hits := ix.QueryDisk(Disk{Point{10.5, 10.5}, 1.0})
	if len(hits) != 1 {
		t.Fatalf("boundary disk hits = %v", hits)
	}
}

func TestPointDist(t *testing.T) {
	if d := (Point{0, 0}).Dist(Point{3, 4}); math.Abs(d-5) > 1e-12 {
		t.Fatalf("Dist = %g", d)
	}
	if p := (Point{1, 2}).Add(3, 4); p != (Point{4, 6}) {
		t.Fatalf("Add = %v", p)
	}
}
