// Package geom provides the 2-D geometric primitives used by the layout
// model and the defect simulator: axis-aligned rectangles, disks (spot
// defects are modelled as circular regions of extra or missing material),
// and the intersection predicates between them.
//
// All coordinates are in layout database units; the process description
// (internal/process) defines the physical size of one unit. Using integer
// nanometre-like units keeps geometry exact; disks use float64 radii since
// defect diameters are drawn from a continuous distribution.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in layout coordinates.
type Point struct {
	X, Y float64
}

// Add returns p translated by (dx, dy).
func (p Point) Add(dx, dy float64) Point { return Point{p.X + dx, p.Y + dy} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Rect is an axis-aligned rectangle. The representation is canonical:
// X0 <= X1 and Y0 <= Y1. A degenerate rectangle (zero width or height) is
// permitted and has zero area.
type Rect struct {
	X0, Y0, X1, Y1 float64
}

// NewRect returns the canonical rectangle spanning the two corner points in
// any order.
func NewRect(x0, y0, x1, y1 float64) Rect {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	return Rect{x0, y0, x1, y1}
}

// W returns the width of r.
func (r Rect) W() float64 { return r.X1 - r.X0 }

// H returns the height of r.
func (r Rect) H() float64 { return r.Y1 - r.Y0 }

// Area returns the area of r.
func (r Rect) Area() float64 { return r.W() * r.H() }

// Center returns the centre point of r.
func (r Rect) Center() Point { return Point{(r.X0 + r.X1) / 2, (r.Y0 + r.Y1) / 2} }

// Empty reports whether r has zero area.
func (r Rect) Empty() bool { return r.X0 >= r.X1 || r.Y0 >= r.Y1 }

// Valid reports whether r is canonical (X0<=X1, Y0<=Y1).
func (r Rect) Valid() bool { return r.X0 <= r.X1 && r.Y0 <= r.Y1 }

// Contains reports whether p lies inside or on the boundary of r.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.X0 && p.X <= r.X1 && p.Y >= r.Y0 && p.Y <= r.Y1
}

// ContainsRect reports whether s lies entirely within r.
func (r Rect) ContainsRect(s Rect) bool {
	return s.X0 >= r.X0 && s.X1 <= r.X1 && s.Y0 >= r.Y0 && s.Y1 <= r.Y1
}

// Intersects reports whether r and s share any point (touching edges count).
func (r Rect) Intersects(s Rect) bool {
	return r.X0 <= s.X1 && s.X0 <= r.X1 && r.Y0 <= s.Y1 && s.Y0 <= r.Y1
}

// Intersect returns the overlapping region of r and s. If they do not
// overlap the result is the zero Rect and ok is false.
func (r Rect) Intersect(s Rect) (Rect, bool) {
	out := Rect{
		X0: math.Max(r.X0, s.X0),
		Y0: math.Max(r.Y0, s.Y0),
		X1: math.Min(r.X1, s.X1),
		Y1: math.Min(r.Y1, s.Y1),
	}
	if out.X0 > out.X1 || out.Y0 > out.Y1 {
		return Rect{}, false
	}
	return out, true
}

// Union returns the bounding box of r and s. Union with an empty canonical
// zero Rect returns the other operand unchanged only if the zero rect is
// marked by IsZero; callers accumulating bounds should start from the first
// element instead.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		X0: math.Min(r.X0, s.X0),
		Y0: math.Min(r.Y0, s.Y0),
		X1: math.Max(r.X1, s.X1),
		Y1: math.Max(r.Y1, s.Y1),
	}
}

// Expand returns r grown by d on every side (shrunk for negative d). The
// result is clipped to canonical form: over-shrinking yields a degenerate
// rectangle at the centre.
func (r Rect) Expand(d float64) Rect {
	out := Rect{r.X0 - d, r.Y0 - d, r.X1 + d, r.Y1 + d}
	c := r.Center()
	if out.X0 > out.X1 {
		out.X0, out.X1 = c.X, c.X
	}
	if out.Y0 > out.Y1 {
		out.Y0, out.Y1 = c.Y, c.Y
	}
	return out
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%g,%g %g,%g]", r.X0, r.Y0, r.X1, r.Y1)
}

// Disk is a circular region, the shape of a spot defect.
type Disk struct {
	C Point
	R float64
}

// Area returns the area of d.
func (d Disk) Area() float64 { return math.Pi * d.R * d.R }

// Bounds returns the bounding box of d.
func (d Disk) Bounds() Rect {
	return Rect{d.C.X - d.R, d.C.Y - d.R, d.C.X + d.R, d.C.Y + d.R}
}

// IntersectsRect reports whether the disk and rectangle share any point.
func (d Disk) IntersectsRect(r Rect) bool {
	// Distance from centre to the rectangle.
	dx := math.Max(math.Max(r.X0-d.C.X, 0), d.C.X-r.X1)
	dy := math.Max(math.Max(r.Y0-d.C.Y, 0), d.C.Y-r.Y1)
	return dx*dx+dy*dy <= d.R*d.R
}

// ContainsPoint reports whether p lies inside or on the disk boundary.
func (d Disk) ContainsPoint(p Point) bool {
	return d.C.Dist(p) <= d.R
}

// ContainsRect reports whether the entire rectangle lies within the disk.
func (d Disk) ContainsRect(r Rect) bool {
	return d.ContainsPoint(Point{r.X0, r.Y0}) &&
		d.ContainsPoint(Point{r.X0, r.Y1}) &&
		d.ContainsPoint(Point{r.X1, r.Y0}) &&
		d.ContainsPoint(Point{r.X1, r.Y1})
}

// SpansWidth reports whether the disk completely crosses the rectangle in
// its narrow direction, i.e. whether a missing-material defect of this shape
// would sever a wire segment represented by r. For a horizontal wire
// (W >= H) the disk must cover a full vertical cut; for a vertical wire a
// full horizontal cut.
func (d Disk) SpansWidth(r Rect) bool {
	if !d.IntersectsRect(r) {
		return false
	}
	if r.W() >= r.H() {
		// Horizontal wire: need a chord of the disk covering [Y0,Y1]
		// at some x within [X0,X1]. The widest vertical extent is at
		// x = C.X; check the disk covers the wire's full height there
		// and that C.X (clamped) is within the segment.
		x := math.Min(math.Max(d.C.X, r.X0), r.X1)
		dx := d.C.X - x
		if d.R*d.R < dx*dx {
			return false
		}
		half := math.Sqrt(d.R*d.R - dx*dx)
		return d.C.Y-half <= r.Y0 && d.C.Y+half >= r.Y1
	}
	y := math.Min(math.Max(d.C.Y, r.Y0), r.Y1)
	dy := d.C.Y - y
	if d.R*d.R < dy*dy {
		return false
	}
	half := math.Sqrt(d.R*d.R - dy*dy)
	return d.C.X-half <= r.X0 && d.C.X+half >= r.X1
}
