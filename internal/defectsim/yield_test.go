package defectsim

import (
	"context"
	"math"
	"testing"

	"repro/internal/layout"
	"repro/internal/process"
)

func yieldCell() *layout.Cell {
	b := layout.NewBuilder("yc")
	b.HWire(process.Metal1, "a", 0, 50, 0)
	b.HWire(process.Metal1, "b", 0, 50, 3)
	return b.C
}

func TestYieldModelBasics(t *testing.T) {
	y := NewYieldModel(100) // 100 defects/cm²
	y.AddMacro(context.Background(), yieldCell(), process.Default(), 10, 4000, 1)
	if y.CriticalArea() <= 0 {
		t.Fatal("critical area must be positive")
	}
	l := y.Lambda()
	if l <= 0 {
		t.Fatal("lambda must be positive")
	}
	yd := y.Yield()
	if yd <= 0 || yd >= 1 {
		t.Fatalf("yield = %g", yd)
	}
	if math.Abs(yd-math.Exp(-l)) > 1e-12 {
		t.Fatal("Poisson relation broken")
	}
}

func TestYieldMonotoneInDensity(t *testing.T) {
	lo := NewYieldModel(10)
	hi := NewYieldModel(1000)
	for _, y := range []*YieldModel{lo, hi} {
		y.AddMacro(context.Background(), yieldCell(), process.Default(), 1, 2000, 1)
	}
	if lo.Yield() <= hi.Yield() {
		t.Fatalf("yield must fall with density: %g vs %g", lo.Yield(), hi.Yield())
	}
}

func TestDefectLevel(t *testing.T) {
	y := NewYieldModel(200)
	y.AddMacro(context.Background(), yieldCell(), process.Default(), 50, 2000, 1)
	// Perfect coverage ships zero defects.
	if dl := y.DefectLevel(1.0); dl > 1e-9 {
		t.Fatalf("DL(100%%) = %g", dl)
	}
	// No test at all ships 1-Y.
	if dl := y.DefectLevel(0); math.Abs(dl-(1-y.Yield())*1e6) > 1 {
		t.Fatalf("DL(0) = %g", dl)
	}
	// Monotone: better coverage, fewer escapes.
	if y.DefectLevel(0.93) <= y.DefectLevel(0.991) {
		t.Fatal("DPM must fall with coverage")
	}
	// The paper's DfT story in DPM terms: 93.3% vs 99.1% coverage.
	pre, post := y.DefectLevel(0.933), y.DefectLevel(0.991)
	if post >= pre {
		t.Fatalf("DfT must cut the shipped-defect level: %g vs %g DPM", pre, post)
	}
}

func TestDefectLevelDegenerateYield(t *testing.T) {
	y := NewYieldModel(1e12)
	y.AddMacro(context.Background(), yieldCell(), process.Default(), 1000000, 500, 1)
	// Yield underflows to ~0: defect level saturates rather than NaN.
	if dl := y.DefectLevel(0.9); math.IsNaN(dl) {
		t.Fatal("NaN defect level")
	}
}
