package defectsim

import (
	"context"
	"math"

	"repro/internal/layout"
	"repro/internal/process"
)

// VLASIC was first and foremost a yield simulator; the paper repurposes
// its catastrophic-fault extraction for test generation. This file keeps
// the yield-estimation capability: from the same sprinkle statistics, the
// probability that a die with the given macro complement is free of
// catastrophic faults.

// YieldModel estimates functional yield from sprinkle statistics under a
// Poisson defect model: each macro contributes a critical area (the
// effective area in which a defect causes a fault), and the expected
// fault count per die is density × Σ criticalArea.
type YieldModel struct {
	// DefectsPerCm2 is the total spot-defect density.
	DefectsPerCm2 float64
	// entries accumulate per-macro critical areas.
	entries []yieldEntry
}

type yieldEntry struct {
	name     string
	count    int
	critical float64 // µm² per instance
}

// NewYieldModel returns a model with the given total defect density
// (defects/cm², all mechanisms combined).
func NewYieldModel(defectsPerCm2 float64) *YieldModel {
	return &YieldModel{DefectsPerCm2: defectsPerCm2}
}

// AddMacro measures a macro's critical area by Monte Carlo: the fraction
// of sprinkled defects that cause faults, times the sprinkled area.
func (y *YieldModel) AddMacro(ctx context.Context, cell *layout.Cell, proc *process.Process, count, defects int, seed int64) error {
	sim := New(cell, proc)
	res, err := sim.Sprinkle(ctx, defects, seed)
	if err != nil {
		return err
	}
	sprinkleArea := cell.Bounds().Expand(1).Area()
	y.entries = append(y.entries, yieldEntry{
		name:     cell.Name,
		count:    count,
		critical: res.FaultRate() * sprinkleArea,
	})
	return nil
}

// CriticalArea returns the total critical area of the die in µm².
func (y *YieldModel) CriticalArea() float64 {
	var a float64
	for _, e := range y.entries {
		a += float64(e.count) * e.critical
	}
	return a
}

// Lambda returns the expected catastrophic fault count per die.
func (y *YieldModel) Lambda() float64 {
	// density per cm² → per µm²: 1 cm² = 1e8 µm².
	return y.DefectsPerCm2 / 1e8 * y.CriticalArea()
}

// Yield returns the Poisson functional yield exp(-λ).
func (y *YieldModel) Yield() float64 {
	return math.Exp(-y.Lambda())
}

// DefectLevel returns the shipped-defect level (DPM) for a test with the
// given fault coverage (0..1), using the classic Williams–Brown relation
// DL = 1 − Y^(1−FC). This connects the methodology's coverage numbers to
// the paper's motivation: escapes of an incomplete test become field
// failures.
func (y *YieldModel) DefectLevel(faultCoverage float64) float64 {
	yd := y.Yield()
	if yd <= 0 {
		return 1e6
	}
	dl := 1 - math.Pow(yd, 1-faultCoverage)
	return dl * 1e6 // DPM
}
