// Package defectsim is the reproduction's equivalent of VLASIC (Walker &
// Director): a Monte Carlo catastrophic spot-defect simulator. Defects —
// disks of extra or missing material, oxide/junction pinholes, parasitic
// contacts and parasitic devices — are sprinkled over a macro cell's
// layout with process-defined densities and size statistics; geometric
// analysis decides whether each defect causes a circuit-level fault and,
// if so, extracts the fault record (which nets short, which net opens and
// which terminals are split away, which device is struck).
package defectsim

import (
	"context"
	"math/rand"
	"sort"

	"repro/internal/faults"
	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/obs"
	"repro/internal/process"
)

// Result is the outcome of a sprinkle run.
type Result struct {
	// Defects is the number of defects sprinkled.
	Defects int
	// Faults holds one record per defect that caused a fault.
	Faults []faults.Fault
}

// FaultRate returns the fraction of defects that caused faults.
func (r *Result) FaultRate() float64 {
	if r.Defects == 0 {
		return 0
	}
	return float64(len(r.Faults)) / float64(r.Defects)
}

// Simulator sprinkles defects over one cell.
type Simulator struct {
	Cell *layout.Cell
	Proc *process.Process
	// Metrics, when non-nil, counts sprinkled defects (CtrSprinkleDraws).
	Metrics *obs.Metrics

	graph *netGraph
}

// New prepares a simulator for the cell (building the connectivity graph
// once).
func New(cell *layout.Cell, proc *process.Process) *Simulator {
	return &Simulator{Cell: cell, Proc: proc, graph: buildNetGraph(cell)}
}

// Sprinkle drops n defects with the given seed and extracts the faults.
// Cancelling ctx aborts the Monte Carlo between draws; the partial result
// is discarded and ctx.Err() returned.
func (s *Simulator) Sprinkle(ctx context.Context, n int, seed int64) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	rng := rand.New(rand.NewSource(seed))
	res := &Result{Defects: n}
	b := s.Cell.Bounds().Expand(1)
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		s.Metrics.Add(obs.CtrSprinkleDraws, 1)
		spec := s.Proc.PickDefect(rng)
		d := geom.Disk{
			C: geom.Point{
				X: b.X0 + rng.Float64()*b.W(),
				Y: b.Y0 + rng.Float64()*b.H(),
			},
			R: spec.SampleDiameter(rng) / 2,
		}
		if f, ok := s.extract(spec, d); ok {
			res.Faults = append(res.Faults, f)
		}
	}
	return res, nil
}

// extract maps one defect to at most one circuit-level fault.
func (s *Simulator) extract(spec process.DefectSpec, d geom.Disk) (faults.Fault, bool) {
	switch spec.Type {
	case process.ExtraMaterial:
		return s.extractBridge(spec.Layer, d)
	case process.MissingMaterial:
		return s.extractMissing(spec.Layer, d)
	case process.GateOxidePinhole:
		return s.extractGOS(d)
	case process.JunctionPinhole:
		return s.extractJunction(d)
	case process.ThickOxidePinhole:
		return s.extractThickOx(d)
	case process.ExtraContact:
		return s.extractExtraContact(d)
	case process.ExtraPoly:
		return s.extractNewDevice(d)
	}
	return faults.Fault{}, false
}

// markLocal sets Local on f given the nets it touches.
func (s *Simulator) markLocal(f faults.Fault, nets []string) faults.Fault {
	f.Local = true
	for _, n := range nets {
		if s.Cell.Ports[n] {
			f.Local = false
		}
	}
	return f
}

// extractBridge handles extra conductor material: a short among all
// distinct nets whose shapes the disk touches on that layer. A defect
// confined to the body of a single resistor (touching only that device's
// wire shapes) changes its resistance parametrically but does not change
// connectivity — it is not a catastrophic fault and is skipped, exactly
// as VLASIC reports only connectivity changes.
func (s *Simulator) extractBridge(l process.Layer, d geom.Disk) (faults.Fault, bool) {
	netSet := map[string]bool{}
	sameResistor := true
	resistorDev := ""
	for _, idx := range s.Cell.QueryDisk(l, d) {
		sh := s.Cell.Shapes[idx]
		if sh.Net == "" {
			continue
		}
		netSet[sh.Net] = true
		if sh.Role != layout.Wire || sh.Device == "" {
			sameResistor = false
		} else if resistorDev == "" {
			resistorDev = sh.Device
		} else if resistorDev != sh.Device {
			sameResistor = false
		}
	}
	if len(netSet) < 2 {
		return faults.Fault{}, false
	}
	if sameResistor && resistorDev != "" {
		return faults.Fault{}, false
	}
	nets := make([]string, 0, len(netSet))
	for n := range netSet {
		nets = append(nets, n)
	}
	sort.Strings(nets)
	f := faults.Fault{Kind: faults.Short, Nets: nets, Res: s.Proc.ShortRes[l]}
	return s.markLocal(f, nets), true
}

// extractMissing handles missing conductor material: a shorted device when
// the disk removes a full gate, otherwise an open when it severs a wire.
func (s *Simulator) extractMissing(l process.Layer, d geom.Disk) (faults.Fault, bool) {
	hits := s.Cell.QueryDisk(l, d)
	// Gate removal first: shorted device.
	for _, idx := range hits {
		sh := s.Cell.Shapes[idx]
		if sh.Role == layout.Gate && d.SpansWidth(sh.Rect) {
			f := faults.Fault{Kind: faults.ShortedDevice, Device: sh.Device, Res: s.Proc.ShortedDeviceRes}
			return s.markLocal(f, []string{sh.Net}), true
		}
	}
	// Wire severing: the first severed shape defines the open.
	for _, idx := range hits {
		sh := s.Cell.Shapes[idx]
		if sh.Role != layout.Wire || !d.SpansWidth(sh.Rect) {
			continue
		}
		far, ok := s.openFarTerminals(sh.Net, idx, d)
		if !ok {
			continue // severed a stub: electrically irrelevant
		}
		f := faults.Fault{Kind: faults.Open, Nets: []string{sh.Net}, FarTerminals: far}
		return s.markLocal(f, []string{sh.Net}), true
	}
	return faults.Fault{}, false
}

// openFarTerminals computes the terminals split from net when the defect d
// severs the wire shape at index severed. The severed wire is replaced by
// its two halves on either side of the defect; the half (and anything
// connected through it) containing the net's earliest-added shape keeps
// the net name — by layout convention the first shape of a port net is the
// port entry, so the stimulus side survives. Returns ok=false when the cut
// isolates no terminals.
func (s *Simulator) openFarTerminals(net string, severed int, d geom.Disk) ([]faults.Terminal, bool) {
	r := s.Cell.Shapes[severed].Rect
	var halfA, halfB geom.Rect
	if r.W() >= r.H() {
		halfA = geom.NewRect(r.X0, r.Y0, clampLo(d.C.X-d.R, r.X0, r.X1), r.Y1)
		halfB = geom.NewRect(clampLo(d.C.X+d.R, r.X0, r.X1), r.Y0, r.X1, r.Y1)
	} else {
		halfA = geom.NewRect(r.X0, r.Y0, r.X1, clampLo(d.C.Y-d.R, r.Y0, r.Y1))
		halfB = geom.NewRect(r.X0, clampLo(d.C.Y+d.R, r.Y0, r.Y1), r.X1, r.Y1)
	}

	comps := s.graph.components(net, severed)
	// Union-find over comps plus the two pseudo halves.
	const pseudoA, pseudoB = -1, -2
	parent := map[int]int{pseudoA: pseudoA, pseudoB: pseudoB}
	for i := range comps {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	compOf := map[int]int{}
	for i, comp := range comps {
		for _, idx := range comp {
			compOf[idx] = i
		}
	}
	// Reconnect neighbours of the severed shape to whichever half they
	// touch. A neighbour spanning the cut re-merges both halves.
	for _, nb := range s.graph.adj[severed] {
		ci, ok := compOf[nb]
		if !ok {
			continue
		}
		nr := s.Cell.Shapes[nb].Rect
		if !halfA.Empty() && nr.Intersects(halfA) {
			union(ci, pseudoA)
		}
		if !halfB.Empty() && nr.Intersects(halfB) {
			union(ci, pseudoB)
		}
	}
	if find(pseudoA) == find(pseudoB) {
		return nil, false // a redundant path spans the cut: no open
	}
	// Anchor: the net's earliest shape, or pseudo half A when the severed
	// shape itself is earliest.
	near := find(pseudoA)
	for _, idx := range s.graph.byNet[net] {
		if idx == severed {
			break
		}
		near = find(compOf[idx])
		break
	}
	var far []faults.Terminal
	seen := map[faults.Terminal]bool{}
	for i, comp := range comps {
		if find(i) == near {
			continue
		}
		for _, idx := range comp {
			sh := s.Cell.Shapes[idx]
			if sh.Device == "" {
				continue
			}
			t := faults.Terminal{Device: sh.Device, Net: net}
			if !seen[t] {
				seen[t] = true
				far = append(far, t)
			}
		}
	}
	if len(far) == 0 {
		return nil, false
	}
	sort.Slice(far, func(i, j int) bool { return far[i].Device < far[j].Device })
	return far, true
}

// clampLo clamps v into [lo, hi].
func clampLo(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// extractGOS handles gate-oxide pinholes: the disk must land on a gate.
func (s *Simulator) extractGOS(d geom.Disk) (faults.Fault, bool) {
	for _, l := range []process.Layer{process.Poly} {
		for _, idx := range s.Cell.QueryDisk(l, d) {
			sh := s.Cell.Shapes[idx]
			if sh.Role == layout.Gate {
				f := faults.Fault{Kind: faults.GOSPinhole, Device: sh.Device, Res: s.Proc.PinholeRes}
				return s.markLocal(f, []string{sh.Net}), true
			}
		}
	}
	return faults.Fault{}, false
}

// extractJunction handles junction pinholes: the disk must land on a
// source/drain diffusion region; the leak goes to that device's bulk.
func (s *Simulator) extractJunction(d geom.Disk) (faults.Fault, bool) {
	for _, l := range []process.Layer{process.NDiff, process.PDiff} {
		for _, idx := range s.Cell.QueryDisk(l, d) {
			sh := s.Cell.Shapes[idx]
			if sh.Role != layout.SDRegion || sh.Net == sh.Bulk || sh.Bulk == "" {
				continue
			}
			nets := []string{sh.Net, sh.Bulk}
			sort.Strings(nets)
			f := faults.Fault{Kind: faults.JunctionPinholeKind, Nets: nets, Res: s.Proc.PinholeRes}
			return s.markLocal(f, nets), true
		}
	}
	return faults.Fault{}, false
}

// extractThickOx handles field-oxide pinholes: a metal1 shape shorted to a
// conductor routed beneath it (or to the substrate when nothing is below).
func (s *Simulator) extractThickOx(d geom.Disk) (faults.Fault, bool) {
	for _, mIdx := range s.Cell.QueryDisk(process.Metal1, d) {
		m := s.Cell.Shapes[mIdx]
		if m.Net == "" {
			continue
		}
		for _, l := range []process.Layer{process.Poly, process.NDiff, process.PDiff} {
			for _, uIdx := range s.Cell.QueryDisk(l, d) {
				u := s.Cell.Shapes[uIdx]
				if u.Net == "" || u.Net == m.Net || !u.Rect.Intersects(m.Rect) {
					continue
				}
				nets := []string{m.Net, u.Net}
				sort.Strings(nets)
				f := faults.Fault{Kind: faults.ThickOxPinhole, Nets: nets, Res: s.Proc.PinholeRes}
				return s.markLocal(f, nets), true
			}
		}
		// Nothing beneath: leak to the substrate.
		if m.Net == "vss" {
			continue
		}
		nets := []string{m.Net, "vss"}
		sort.Strings(nets)
		f := faults.Fault{Kind: faults.ThickOxPinhole, Nets: nets, Res: s.Proc.PinholeRes}
		return s.markLocal(f, nets), true
	}
	return faults.Fault{}, false
}

// extractExtraContact handles parasitic vertical contacts: metal1 over
// poly/diffusion or metal2 over metal1, different nets, overlapping under
// the disk.
func (s *Simulator) extractExtraContact(d geom.Disk) (faults.Fault, bool) {
	pairs := [][2]process.Layer{
		{process.Metal1, process.Poly},
		{process.Metal1, process.NDiff},
		{process.Metal1, process.PDiff},
		{process.Metal2, process.Metal1},
	}
	for _, p := range pairs {
		for _, aIdx := range s.Cell.QueryDisk(p[0], d) {
			a := s.Cell.Shapes[aIdx]
			if a.Net == "" {
				continue
			}
			for _, bIdx := range s.Cell.QueryDisk(p[1], d) {
				b := s.Cell.Shapes[bIdx]
				if b.Net == "" || b.Net == a.Net || !a.Rect.Intersects(b.Rect) {
					continue
				}
				nets := []string{a.Net, b.Net}
				sort.Strings(nets)
				f := faults.Fault{Kind: faults.ExtraContactKind, Nets: nets, Res: s.Proc.ExtraContactRes}
				return s.markLocal(f, nets), true
			}
		}
	}
	return faults.Fault{}, false
}

// extractNewDevice handles extra poly crossing a diffusion region: a
// parasitic series transistor at that device terminal, gated by whichever
// poly net the defect also touches (floating otherwise).
func (s *Simulator) extractNewDevice(d geom.Disk) (faults.Fault, bool) {
	for _, l := range []process.Layer{process.NDiff, process.PDiff} {
		for _, idx := range s.Cell.QueryDisk(l, d) {
			sh := s.Cell.Shapes[idx]
			if sh.Role != layout.SDRegion || !d.SpansWidth(sh.Rect) {
				continue
			}
			gate := ""
			for _, pIdx := range s.Cell.QueryDisk(process.Poly, d) {
				p := s.Cell.Shapes[pIdx]
				if p.Net != "" && p.Net != sh.Net {
					gate = p.Net
					break
				}
			}
			f := faults.Fault{
				Kind: faults.NewDevice, Nets: []string{sh.Net},
				Device:       sh.Device,
				GateNet:      gate,
				FarTerminals: []faults.Terminal{{Device: sh.Device, Net: sh.Net}},
			}
			return s.markLocal(f, []string{sh.Net, gate}), true
		}
	}
	return faults.Fault{}, false
}
