package defectsim

import (
	"context"
	"testing"

	"repro/internal/faults"
	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/process"
)

// twoWires builds a cell with two parallel metal1 wires 2 µm apart
// (centres 3 µm apart, width 1).
func twoWires() *layout.Cell {
	b := layout.NewBuilder("wires")
	b.HWire(process.Metal1, "a", 0, 50, 0)
	b.HWire(process.Metal1, "b", 0, 50, 3)
	return b.C
}

func TestExtractBridge(t *testing.T) {
	s := New(twoWires(), process.Default())
	spec := process.DefectSpec{Type: process.ExtraMaterial, Layer: process.Metal1}
	// Big defect between the wires: bridges them.
	f, ok := s.extract(spec, geom.Disk{C: geom.Point{X: 25, Y: 1.5}, R: 1.6})
	if !ok {
		t.Fatal("expected a short")
	}
	if f.Kind != faults.Short || len(f.Nets) != 2 || f.Nets[0] != "a" || f.Nets[1] != "b" {
		t.Fatalf("fault = %+v", f)
	}
	if f.Res != 0.2 {
		t.Fatalf("metal short resistance = %g", f.Res)
	}
	if !f.Local {
		t.Fatal("no ports marked: fault must be local")
	}
	// Small defect touches only one wire: no fault.
	if _, ok := s.extract(spec, geom.Disk{C: geom.Point{X: 25, Y: 0}, R: 0.8}); ok {
		t.Fatal("single-net touch must not fault")
	}
	// Defect in empty space: no fault.
	if _, ok := s.extract(spec, geom.Disk{C: geom.Point{X: 25, Y: 20}, R: 2}); ok {
		t.Fatal("defect in space must not fault")
	}
}

func TestExtractBridgeCrossMacroFlag(t *testing.T) {
	c := twoWires()
	c.MarkPort("b")
	s := New(c, process.Default())
	spec := process.DefectSpec{Type: process.ExtraMaterial, Layer: process.Metal1}
	f, ok := s.extract(spec, geom.Disk{C: geom.Point{X: 25, Y: 1.5}, R: 1.6})
	if !ok || f.Local {
		t.Fatalf("short involving port net must be non-local: %+v ok=%v", f, ok)
	}
}

// wireWithLoad builds: port wire "sig" runs x=0..30 on metal1, contacts to
// a MOS gate at the right end.
func wireWithLoad() *layout.Cell {
	b := layout.NewBuilder("loaded")
	b.HWire(process.Metal1, "sig", 0, 30, 10)
	b.CutAt(process.Contact, "sig", 29, 10)
	// Poly riser from the contact down to the device gate.
	b.VWire(process.Poly, "sig", 29, 2, 10.5)
	b.MOS("m1", "d", "sig", "s", 29, 0, layout.MOSOpts{W: 4, L: 1})
	b.C.MarkPort("sig")
	return b.C
}

func TestConnectivityOfTestCell(t *testing.T) {
	comp := CheckConnectivity(wireWithLoad())
	if comp["sig"] != 1 {
		t.Fatalf("sig components = %d, want 1", comp["sig"])
	}
}

func TestExtractOpen(t *testing.T) {
	s := New(wireWithLoad(), process.Default())
	spec := process.DefectSpec{Type: process.MissingMaterial, Layer: process.Metal1}
	// Sever the wire in the middle: the device side splits off.
	f, ok := s.extract(spec, geom.Disk{C: geom.Point{X: 15, Y: 10}, R: 0.8})
	if !ok {
		t.Fatal("expected an open")
	}
	if f.Kind != faults.Open || f.Nets[0] != "sig" {
		t.Fatalf("fault = %+v", f)
	}
	if len(f.FarTerminals) != 1 || f.FarTerminals[0] != (faults.Terminal{Device: "m1", Net: "sig"}) {
		t.Fatalf("far terminals = %+v", f.FarTerminals)
	}
	if f.Local {
		t.Fatal("open on a port net is cross-macro")
	}
	// A defect too small to span the wire: no fault.
	if _, ok := s.extract(spec, geom.Disk{C: geom.Point{X: 15, Y: 10}, R: 0.3}); ok {
		t.Fatal("partial nick must not open")
	}
	// Severing the far stub beyond the contact isolates nothing.
	if f2, ok := s.extract(spec, geom.Disk{C: geom.Point{X: 29.9, Y: 10}, R: 0.7}); ok {
		// If the disk reaches the contact-connected region it may still
		// isolate the gate; only a pure stub cut must be a no-op.
		if len(f2.FarTerminals) == 0 {
			t.Fatalf("open with no terminals should have been discarded")
		}
	}
}

func TestExtractShortedDevice(t *testing.T) {
	s := New(wireWithLoad(), process.Default())
	spec := process.DefectSpec{Type: process.MissingMaterial, Layer: process.Poly}
	// Remove the gate: channel bridged. Gate of m1 is at (29, 0), W=4
	// so the gate rect spans y in [-2, 2], x in [28.5, 29.5].
	f, ok := s.extract(spec, geom.Disk{C: geom.Point{X: 29, Y: 0}, R: 0.8})
	if !ok || f.Kind != faults.ShortedDevice || f.Device != "m1" {
		t.Fatalf("fault = %+v ok=%v", f, ok)
	}
}

func TestExtractGOSAndJunction(t *testing.T) {
	s := New(wireWithLoad(), process.Default())
	gos, ok := s.extract(process.DefectSpec{Type: process.GateOxidePinhole}, geom.Disk{C: geom.Point{X: 29, Y: 0}, R: 0.2})
	if !ok || gos.Kind != faults.GOSPinhole || gos.Device != "m1" {
		t.Fatalf("gos = %+v ok=%v", gos, ok)
	}
	// Junction pinhole on the source region (left of gate at x≈26.5-28.5).
	jun, ok := s.extract(process.DefectSpec{Type: process.JunctionPinhole}, geom.Disk{C: geom.Point{X: 27.5, Y: 0}, R: 0.2})
	if !ok || jun.Kind != faults.JunctionPinholeKind {
		t.Fatalf("junction = %+v ok=%v", jun, ok)
	}
	if jun.Nets[0] != "s" && jun.Nets[1] != "s" {
		t.Fatalf("junction nets = %v", jun.Nets)
	}
	// GOS off-gate: no fault.
	if _, ok := s.extract(process.DefectSpec{Type: process.GateOxidePinhole}, geom.Disk{C: geom.Point{X: 5, Y: 10}, R: 0.2}); ok {
		t.Fatal("gos away from gates must not fault")
	}
}

func TestExtractThickOx(t *testing.T) {
	b := layout.NewBuilder("tox")
	b.HWire(process.Metal1, "m", 0, 20, 0)
	b.VWire(process.Poly, "p", 10, -5, 5) // poly crossing under the metal
	s := New(b.C, process.Default())
	f, ok := s.extract(process.DefectSpec{Type: process.ThickOxidePinhole}, geom.Disk{C: geom.Point{X: 10, Y: 0}, R: 0.3})
	if !ok || f.Kind != faults.ThickOxPinhole {
		t.Fatalf("thickox = %+v ok=%v", f, ok)
	}
	if f.Nets[0] != "m" || f.Nets[1] != "p" {
		t.Fatalf("nets = %v", f.Nets)
	}
	// Away from the crossing: substrate short.
	f2, ok := s.extract(process.DefectSpec{Type: process.ThickOxidePinhole}, geom.Disk{C: geom.Point{X: 3, Y: 0}, R: 0.3})
	if !ok || f2.Nets[0] != "m" || f2.Nets[1] != "vss" {
		t.Fatalf("substrate thickox = %+v ok=%v", f2, ok)
	}
}

func TestExtractExtraContact(t *testing.T) {
	b := layout.NewBuilder("xc")
	b.HWire(process.Metal1, "m", 0, 20, 0)
	b.VWire(process.Poly, "p", 10, -5, 5)
	s := New(b.C, process.Default())
	f, ok := s.extract(process.DefectSpec{Type: process.ExtraContact}, geom.Disk{C: geom.Point{X: 10, Y: 0}, R: 0.3})
	if !ok || f.Kind != faults.ExtraContactKind {
		t.Fatalf("extracontact = %+v ok=%v", f, ok)
	}
	if f.Res != 2 {
		t.Fatalf("Res = %g, want 2", f.Res)
	}
	// No crossing: no fault (extra contacts need two conductors).
	if _, ok := s.extract(process.DefectSpec{Type: process.ExtraContact}, geom.Disk{C: geom.Point{X: 3, Y: 0}, R: 0.3}); ok {
		t.Fatal("extra contact without a crossing must not fault")
	}
}

func TestExtractNewDevice(t *testing.T) {
	b := layout.NewBuilder("nd")
	b.MOS("m1", "d", "g", "s", 10, 0, layout.MOSOpts{W: 4, L: 1})
	s := New(b.C, process.Default())
	// Extra poly spanning the drain region (x in [10.5, 12.5], y ±2).
	f, ok := s.extract(process.DefectSpec{Type: process.ExtraPoly}, geom.Disk{C: geom.Point{X: 11.5, Y: 0}, R: 2.5})
	if !ok || f.Kind != faults.NewDevice {
		t.Fatalf("newdevice = %+v ok=%v", f, ok)
	}
	if f.Nets[0] != "d" || f.Device != "m1" {
		t.Fatalf("fault = %+v", f)
	}
	// The disk also touches the m1 gate poly (net g) → parasitic gate.
	if f.GateNet != "g" {
		t.Fatalf("gate net = %q, want g", f.GateNet)
	}
}

func TestSprinkleDeterministicAndSane(t *testing.T) {
	cell := twoWires()
	s := New(cell, process.Default())
	r1, err := s.Sprinkle(context.Background(), 5000, 42)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Sprinkle(context.Background(), 5000, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Faults) != len(r2.Faults) {
		t.Fatal("same seed must reproduce the same fault list")
	}
	for i := range r1.Faults {
		if r1.Faults[i].Key() != r2.Faults[i].Key() {
			t.Fatal("fault sequence mismatch")
		}
	}
	r3, err := s.Sprinkle(context.Background(), 5000, 43)
	if err != nil {
		t.Fatal(err)
	}
	if len(r3.Faults) == len(r1.Faults) {
		// Extremely unlikely to match exactly; tolerate but check content.
		same := true
		for i := range r1.Faults {
			if r1.Faults[i].Key() != r3.Faults[i].Key() {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds should differ")
		}
	}
	if r1.Defects != 5000 {
		t.Fatalf("Defects = %d", r1.Defects)
	}
	// Only a small fraction of defects cause faults (paper: ~2 %).
	if rate := r1.FaultRate(); rate <= 0 || rate > 0.5 {
		t.Fatalf("fault rate = %g", rate)
	}
	// On this cell the only possible faults are a-b shorts and opens.
	for _, f := range r1.Faults {
		if f.Kind != faults.Short && f.Kind != faults.ThickOxPinhole {
			t.Fatalf("unexpected kind %v on two-wire cell", f.Kind)
		}
	}
}

func TestFaultRateEmpty(t *testing.T) {
	if (&Result{}).FaultRate() != 0 {
		t.Fatal("empty result rate must be 0")
	}
}

func TestComponentsWithoutRemoval(t *testing.T) {
	g := buildNetGraph(wireWithLoad())
	if n := len(g.components("sig", -1)); n != 1 {
		t.Fatalf("sig graph components = %d", n)
	}
}
