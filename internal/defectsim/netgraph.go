package defectsim

import (
	"repro/internal/layout"
	"repro/internal/process"
)

// netGraph captures the geometric connectivity of a cell: which shapes of
// a net touch which, including vertical connections through contact/via
// cuts. The open-fault extractor removes a severed shape and computes the
// resulting connected components to find the terminals split away.
type netGraph struct {
	cell *layout.Cell
	// adj[i] lists the shape indices connected to shape i.
	adj map[int][]int
	// byNet lists shape indices per net (conductors and cuts).
	byNet map[string][]int
}

// cutConnects reports which layers a cut kind joins.
func cutConnects(kind process.Layer) []process.Layer {
	switch kind {
	case process.Contact:
		return []process.Layer{process.Metal1, process.Poly, process.NDiff, process.PDiff}
	case process.Via:
		return []process.Layer{process.Metal1, process.Metal2}
	}
	return nil
}

// buildNetGraph constructs the connectivity graph of the cell.
func buildNetGraph(cell *layout.Cell) *netGraph {
	g := &netGraph{cell: cell, adj: map[int][]int{}, byNet: map[string][]int{}}
	for i, s := range cell.Shapes {
		if s.Net == "" {
			continue
		}
		if s.Layer.Conducting() || s.Role == layout.Cut {
			g.byNet[s.Net] = append(g.byNet[s.Net], i)
		}
	}
	link := func(a, b int) {
		g.adj[a] = append(g.adj[a], b)
		g.adj[b] = append(g.adj[b], a)
	}
	for _, ids := range g.byNet {
		for x := 0; x < len(ids); x++ {
			for y := x + 1; y < len(ids); y++ {
				i, j := ids[x], ids[y]
				si, sj := cell.Shapes[i], cell.Shapes[j]
				if !si.Rect.Intersects(sj.Rect) {
					continue
				}
				switch {
				case si.Layer == sj.Layer && si.Layer.Conducting():
					link(i, j)
				case si.Role == layout.Cut && layerIn(sj.Layer, cutConnects(si.Layer)):
					link(i, j)
				case sj.Role == layout.Cut && layerIn(si.Layer, cutConnects(sj.Layer)):
					link(i, j)
				}
			}
		}
	}
	return g
}

func layerIn(l process.Layer, ls []process.Layer) bool {
	for _, x := range ls {
		if x == l {
			return true
		}
	}
	return false
}

// components returns the connected components of net's shapes with the
// shape at index `without` removed (pass -1 to keep all).
func (g *netGraph) components(net string, without int) [][]int {
	ids := g.byNet[net]
	seen := map[int]bool{}
	var comps [][]int
	for _, start := range ids {
		if start == without || seen[start] {
			continue
		}
		var comp []int
		stack := []int{start}
		seen[start] = true
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, n)
			for _, m := range g.adj[n] {
				if m != without && !seen[m] {
					seen[m] = true
					stack = append(stack, m)
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

// CheckConnectivity returns, per net, the number of connected components
// of the net's shape graph. A well-formed layout has exactly one component
// per net; macro layout tests assert this.
func CheckConnectivity(cell *layout.Cell) map[string]int {
	g := buildNetGraph(cell)
	out := map[string]int{}
	for net := range g.byNet {
		out[net] = len(g.components(net, -1))
	}
	return out
}
