package spice

import (
	"context"
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/netlist"
)

func TestACRCLowpass(t *testing.T) {
	// R = 1 kΩ, C = 1 µF: pole at 1/(2πRC) ≈ 159.15 Hz.
	b := netlist.NewBuilder()
	b.Vsrc("vin", "in", "0", netlist.DC(0))
	b.R("r1", "in", "out", 1000)
	b.Cap("c1", "out", "0", 1e-6)
	e := New(b.C, DefaultOptions())
	op, err := e.OP(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	fp := 1 / (2 * math.Pi * 1000 * 1e-6)
	sols, err := e.AC(op, "vin", []float64{fp / 100, fp, fp * 100})
	if err != nil {
		t.Fatal(err)
	}
	// Passband: |H| ≈ 1.
	if m := cmplx.Abs(sols[0].V("out")); math.Abs(m-1) > 0.01 {
		t.Fatalf("passband |H| = %g", m)
	}
	// At the pole: |H| = 1/√2, phase -45°.
	h := sols[1].V("out")
	if math.Abs(cmplx.Abs(h)-1/math.Sqrt2) > 0.01 {
		t.Fatalf("|H(fp)| = %g", cmplx.Abs(h))
	}
	if ph := cmplx.Phase(h) * 180 / math.Pi; math.Abs(ph+45) > 1 {
		t.Fatalf("phase(fp) = %g°", ph)
	}
	// Two decades above: -40 dB.
	if db := sols[2].MagDB("out"); math.Abs(db+40) > 0.5 {
		t.Fatalf("|H(100fp)| = %g dB", db)
	}
	// Bandwidth helper.
	bw, err := e.Bandwidth3dB(op, "vin", "out", fp/100, fp*100)
	if err != nil {
		t.Fatal(err)
	}
	if bw < fp*0.8 || bw > fp*1.4 {
		t.Fatalf("3 dB bandwidth = %g, want ≈%g", bw, fp)
	}
}

func TestACCommonSourceGain(t *testing.T) {
	// Common-source NMOS with resistor load: |gain| = gm·(RL∥ro).
	b := netlist.NewBuilder()
	b.Vsrc("vdd", "vdd", "0", netlist.DC(5))
	b.Vsrc("vin", "in", "0", netlist.DC(1.2))
	b.R("rl", "vdd", "out", 50e3)
	mos := b.NMOS("m1", "out", "in", "0", 10, 1)
	e := New(b.C, DefaultOptions())
	op, err := e.OP(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sols, err := e.AC(op, "vin", []float64{100})
	if err != nil {
		t.Fatal(err)
	}
	gain := cmplx.Abs(sols[0].V("out"))
	// Expected gm from the model at the operating point.
	vout := op.V("out")
	const h = 1e-6
	gm := (mos.Ids(vout, 1.2+h, 0, 0) - mos.Ids(vout, 1.2, 0, 0)) / h
	gds := (mos.Ids(vout+h, 1.2, 0, 0) - mos.Ids(vout, 1.2, 0, 0)) / h
	want := gm / (1/50e3 + gds)
	if math.Abs(gain-want)/want > 0.05 {
		t.Fatalf("gain = %g, want ≈%g", gain, want)
	}
	// Inverting stage: phase ≈ 180° at low frequency.
	if ph := math.Abs(cmplx.Phase(sols[0].V("out"))) * 180 / math.Pi; math.Abs(ph-180) > 5 {
		t.Fatalf("phase = %g", ph)
	}
}

func TestACSourceQuiescing(t *testing.T) {
	// Two sources; only the designated one excites.
	b := netlist.NewBuilder()
	b.Vsrc("v1", "a", "0", netlist.DC(1))
	b.Vsrc("v2", "b", "0", netlist.DC(2))
	b.R("r1", "a", "x", 1000)
	b.R("r2", "b", "x", 1000)
	b.R("r3", "x", "0", 1000)
	e := New(b.C, DefaultOptions())
	op, err := e.OP(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sols, err := e.AC(op, "v1", []float64{1000})
	if err != nil {
		t.Fatal(err)
	}
	// Superposition: x = 1 · (r2∥r3)/(r1 + r2∥r3) = 1/3.
	if m := cmplx.Abs(sols[0].V("x")); math.Abs(m-1.0/3) > 1e-6 {
		t.Fatalf("x = %g, want 1/3", m)
	}
	// v2's node sees zero AC (shorted source).
	if m := cmplx.Abs(sols[0].V("b")); m > 1e-9 {
		t.Fatalf("quiesced source node = %g", m)
	}
}

func TestACUnknownSource(t *testing.T) {
	b := netlist.NewBuilder()
	b.Vsrc("v1", "a", "0", netlist.DC(1))
	b.R("r1", "a", "0", 1)
	e := New(b.C, DefaultOptions())
	op, _ := e.OP(context.Background())
	if _, err := e.AC(op, "nope", []float64{1}); err == nil {
		t.Fatal("unknown AC source must error")
	}
}

func TestLogSpace(t *testing.T) {
	fs := LogSpace(1, 1000, 4)
	want := []float64{1, 10, 100, 1000}
	for i := range want {
		if math.Abs(fs[i]-want[i])/want[i] > 1e-9 {
			t.Fatalf("LogSpace = %v", fs)
		}
	}
	if got := LogSpace(5, 10, 1); len(got) != 1 || got[0] != 5 {
		t.Fatalf("degenerate LogSpace = %v", got)
	}
}

func TestACCurrentSourceExcitation(t *testing.T) {
	// A 1 A AC current source into R gives V = R.
	b := netlist.NewBuilder()
	b.Isrc("i1", "0", "x", netlist.DC(0))
	b.R("r1", "x", "0", 123)
	e := New(b.C, DefaultOptions())
	op, err := e.OP(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sols, err := e.AC(op, "i1", []float64{50})
	if err != nil {
		t.Fatal(err)
	}
	if m := cmplx.Abs(sols[0].V("x")); math.Abs(m-123) > 1e-6 {
		t.Fatalf("x = %g, want 123", m)
	}
}
