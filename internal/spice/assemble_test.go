package spice

import (
	"context"
	"testing"

	"repro/internal/netlist"
	"repro/internal/solver"
)

// naiveAssemble is the reference assembly the compiled stamp program must
// reproduce bit for bit: dispatch every element in netlist order, then
// the node leak — the pre-workspace engine behaviour.
func naiveAssemble(e *Engine, a *solver.Matrix, b []float64, x, xPrev []float64,
	mode netlist.StampMode, time, dt, gmin, srcScale float64) {
	a.Zero()
	for i := range b {
		b[i] = 0
	}
	ctx := &netlist.Context{
		Mode: mode, Time: time, Dt: dt, SrcScale: srcScale, Gmin: gmin,
		X: func(n netlist.NodeID) float64 {
			if n == netlist.Ground {
				return 0
			}
			return x[int(n)-1]
		},
		XPrev: func(n netlist.NodeID) float64 {
			if n == netlist.Ground {
				return 0
			}
			return xPrev[int(n)-1]
		},
		A: a.Add,
		B: func(i int, v float64) { b[i] += v },
	}
	for i, el := range e.Ckt.Elems {
		el.Stamp(ctx, e.auxBase[i])
	}
	const leak = 1e-12
	for i := 0; i < e.nNodeVars; i++ {
		a.Add(i, i, leak)
	}
}

// assembleTestCircuit interleaves every element kind (MOSFETs with their
// automatic capacitors, resistors, both source kinds) so linear and
// nonlinear stamp segments alternate.
func assembleTestCircuit() *netlist.Builder {
	b := netlist.NewBuilder()
	b.Vsrc("vdd", "vdd", "0", netlist.DC(5))
	b.Vsrc("vin", "in", "0", netlist.Pulse{V0: 0, V1: 5, Delay: 5e-9, Rise: 1e-9, Fall: 1e-9, Width: 20e-9})
	b.PMOS("mp1", "mid", "in", "vdd", "vdd", 8, 1)
	b.NMOS("mn1", "mid", "in", "0", 4, 1)
	b.R("rl", "mid", "out", 2200)
	b.Cap("cl", "out", "0", 50e-15)
	b.PMOS("mp2", "out2", "out", "vdd", "vdd", 6, 1)
	b.NMOS("mn2", "out2", "out", "0", 3, 1)
	b.Isrc("ib", "vdd", "mid", netlist.DC(2e-6))
	b.R("rg", "out2", "0", 1e6)
	return b
}

// TestAssembleMatchesNaive requires record/replay assembly to be
// bit-identical to naive per-element stamping — the property that keeps
// every simulation result unchanged by the zero-allocation kernel.
func TestAssembleMatchesNaive(t *testing.T) {
	b := assembleTestCircuit()
	e := New(b.C, DefaultOptions())
	n := e.nUnknowns

	x := make([]float64, n)
	xPrev := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = 0.1*float64(i%7) - 0.2
		xPrev[i] = 0.05 * float64(i%5)
	}
	refA := solver.NewMatrix(n)
	refB := make([]float64, n)

	cases := []struct {
		name                     string
		mode                     netlist.StampMode
		time, dt, gmin, srcScale float64
	}{
		{"dcop", netlist.DCOp, 0, 0, 1e-12, 1},
		{"dcop-gmin-scaled", netlist.DCOp, 0, 0, 1e-4, 0.35},
		{"transient", netlist.Transient, 7e-9, 0.5e-9, 1e-12, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			naiveAssemble(e, refA, refB, x, xPrev, tc.mode, tc.time, tc.dt, tc.gmin, tc.srcScale)
			e.beginSolve(tc.mode, tc.time, tc.dt, tc.gmin, tc.srcScale, xPrev)
			e.assemble(x)
			for i := 0; i < n*n; i++ {
				if e.a.A[i] != refA.A[i] {
					t.Fatalf("matrix cell (%d,%d): replay %v != naive %v",
						i/n, i%n, e.a.A[i], refA.A[i])
				}
			}
			for i := 0; i < n; i++ {
				if e.b[i] != refB[i] {
					t.Fatalf("rhs row %d: replay %v != naive %v", i, e.b[i], refB[i])
				}
			}
		})
	}
}

// TestAssembleSteadyStateAllocs pins the zero-allocation property of the
// Newton hot path: repeated solves on a warmed engine allocate only the
// returned Solution snapshot.
func TestAssembleSteadyStateAllocs(t *testing.T) {
	e := New(assembleTestCircuit().C, DefaultOptions())
	if _, err := e.OPAt(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := e.OPAt(context.Background(), 0); err != nil {
			t.Fatal(err)
		}
	})
	// One Solution struct + one X snapshot.
	if allocs > 2 {
		t.Fatalf("OPAt steady state allocates %v objects per run, want <= 2", allocs)
	}
}

// TestCompileStampsPartition sanity-checks the per-mode programs: DC
// drops the capacitors, transient keeps them, and both preserve element
// order within the interleaved segment structure.
func TestCompileStampsPartition(t *testing.T) {
	b := assembleTestCircuit()
	e := New(b.C, DefaultOptions())
	dc := e.prog(netlist.DCOp)
	tran := e.prog(netlist.Transient)

	caps := 0
	for _, el := range b.C.Elems {
		if _, ok := el.(*netlist.Capacitor); ok {
			caps++
		}
	}
	if caps == 0 {
		t.Fatal("test circuit has no capacitors")
	}
	if len(tran.Items) != len(b.C.Elems) {
		t.Fatalf("transient program has %d items, want %d", len(tran.Items), len(b.C.Elems))
	}
	if len(dc.Items) != len(b.C.Elems)-caps {
		t.Fatalf("DC program has %d items, want %d", len(dc.Items), len(b.C.Elems)-caps)
	}
	for _, p := range []*netlist.StampProgram{dc, tran} {
		covered := 0
		for i, seg := range p.Segs {
			if seg.From != covered {
				t.Fatalf("segment %d starts at %d, want %d", i, seg.From, covered)
			}
			if seg.To <= seg.From {
				t.Fatalf("segment %d is empty", i)
			}
			for _, it := range p.Items[seg.From:seg.To] {
				if it.Linear != seg.Linear {
					t.Fatalf("segment %d mixes linear and nonlinear items", i)
				}
				if it.Linear != it.El.Linear() {
					t.Fatalf("item %s mislabelled", it.El.Name())
				}
			}
			covered = seg.To
		}
		if covered != len(p.Items) {
			t.Fatalf("segments cover %d of %d items", covered, len(p.Items))
		}
	}
}
