package spice

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/netlist"
	"repro/internal/solver"
)

// ErrNotLinear is returned by NewNominalFactor for circuits with
// nonlinear elements: their DC matrix depends on the operating point,
// so there is no single nominal factorization to correct against.
var ErrNotLinear = errors.New("spice: circuit is not linear")

// NominalFactor is an immutable, shareable factorization of one linear
// circuit's DC system — the "factor the nominal matrix once per
// (circuit, mode)" half of the low-rank fault-update path. It captures
// the assembled MNA matrix (convergence leak included), the right-hand
// side and a sparse factorization, all frozen at construction; every
// later operation is read-only, so any number of goroutines may solve
// fault variants against one NominalFactor concurrently.
//
// The embedded engine exists only for its name tables (node → unknown,
// vsource → aux index) and is never run again after construction.
type NominalFactor struct {
	e   *Engine
	a   *solver.Matrix
	b   []float64
	lu  *solver.SparseLU
	opt Options
}

// NewNominalFactor assembles and factors the DC system of ckt. The
// circuit must be entirely linear (ErrNotLinear otherwise — resistors,
// capacitors and independent sources only), because only then is the
// matrix iterate-independent and the factorization reusable for every
// fault variant. The options' numeric fields (tolerances, MaxIter,
// MaxStep, Gmin) govern the damped-walk replica in SolveUpdated;
// Metrics and OPTrace are deliberately dropped so a cached factor never
// holds one caller's observer.
func NewNominalFactor(ckt *netlist.Circuit, opt Options) (*NominalFactor, error) {
	opt.Metrics = nil
	opt.OPTrace = nil
	e := New(ckt, opt)
	prog := e.prog(netlist.DCOp)
	for _, seg := range prog.Segs {
		if !seg.Linear {
			return nil, fmt.Errorf("%w: %d nonlinear stamp items", ErrNotLinear, seg.To-seg.From)
		}
	}
	// Assemble at the zero iterate — for a linear circuit the matrix and
	// right-hand side are the same at every iterate, so this is the
	// system every Newton iteration of the classic path solves.
	e.beginSolve(netlist.DCOp, 0, 0, opt.Gmin, 1, e.zeros)
	e.assemble(e.zeros)
	nf := &NominalFactor{
		e:   e,
		a:   e.a.Clone(),
		b:   append([]float64(nil), e.b...),
		lu:  e.sparseLU(netlist.DCOp),
		opt: opt,
	}
	// Factor twice: the first Refactor runs dense and learns the pivot
	// sequence, the second runs (and verifies) the sparse replay, which
	// also arms the sparse triangular solves every fault solve uses.
	for i := 0; i < 2; i++ {
		if _, err := nf.lu.Refactor(nf.a); err != nil {
			return nil, fmt.Errorf("spice: nominal factorization: %w", err)
		}
	}
	return nf, nil
}

// Ckt returns the factored circuit (read-only by contract).
func (nf *NominalFactor) Ckt() *netlist.Circuit { return nf.e.Ckt }

// UpdateFor converts elements a fault plan would add into a low-rank
// conductance update against this factorization. ok is false when any
// element is not expressible as a pure conductance between existing
// unknowns in DC — aux-bearing elements, nonlinear devices — in which
// case the caller must take the full rebuild path. Mode-gated elements
// that stamp nothing at DC (the near-miss model's capacitor) are
// skipped rather than rejected.
func (nf *NominalFactor) UpdateFor(added []netlist.Element) (solver.LowRankUpdate, bool) {
	var upd solver.LowRankUpdate
	nNode := nf.e.nNodeVars
	for _, el := range added {
		if g, ok := el.(netlist.ModeGated); ok && g.InactiveIn(netlist.DCOp) {
			continue
		}
		if el.NumAux() > 0 {
			return solver.LowRankUpdate{}, false
		}
		gs, ok := el.(netlist.GStamper)
		if !ok {
			return solver.LowRankUpdate{}, false
		}
		a, b, g, ok := gs.ConductanceStamp(netlist.DCOp)
		if !ok {
			return solver.LowRankUpdate{}, false
		}
		i, j := int(a)-1, int(b)-1
		if i >= nNode || j >= nNode {
			return solver.LowRankUpdate{}, false // node unknown to this factor
		}
		if i < 0 && j < 0 {
			continue // both terminals grounded: no stamp at all
		}
		if i < 0 {
			i, j = j, solver.GroundTerm
		} else if j < 0 {
			j = solver.GroundTerm
		}
		upd.Terms = append(upd.Terms, solver.UpdateTerm{I: i, J: j, G: g})
	}
	return upd, true
}

// SolveUpdated computes the DC operating point of the nominal circuit
// plus the given conductance update, using the shared factorization and
// a Sherman–Morrison–Woodbury correction instead of rebuilding and
// refactoring the faulted system. Errors — ill-conditioned correction,
// excessive residual, walk non-convergence — mean "fall back to the
// classic path", which will either solve the system from scratch or
// reproduce the genuine failure with classic semantics.
//
// The returned Solution matches the classic path within the Newton
// convergence contract, not bit-for-bit: the classic path's converged
// iterate is its final LU solve vector walked to under MaxStep damping,
// and this replica runs the identical damped walk against the SMW
// solve vector, which agrees with the LU vector to solver accuracy
// (one refinement pass) — far inside the AbsTol/RelTol contract. See
// DESIGN.md §10 for why every consumer quantizes the difference away.
func (nf *NominalFactor) SolveUpdated(upd solver.LowRankUpdate) (*Solution, error) {
	us, err := solver.NewUpdatedSolver(nf.lu, nf.a, upd)
	if err != nil {
		return nil, err
	}
	n := nf.e.nUnknowns
	xNew := make([]float64, n)
	us.SolveInto(xNew, nf.b)
	for _, v := range xNew {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("%w: non-finite updated solution", solver.ErrIllConditioned)
		}
	}
	// Post-solve sanity: the refined SMW solution must satisfy the
	// updated system to far better than the Newton voltage tolerance,
	// or the correction cannot be trusted (condition guard nearly
	// saturated, catastrophic cancellation in the capacitance solve).
	scale := solver.NormInf(nf.b)
	if scale < 1 {
		scale = 1
	}
	if res := us.ResidualInf(xNew, nf.b); !(res <= 1e-9*scale) {
		return nil, fmt.Errorf("%w: residual %.3g", solver.ErrIllConditioned, res)
	}
	// Damped-walk replica of Engine.newton for a linear system: the
	// classic path re-solves the same system every iteration, so its
	// per-iteration solve target is constant — walking the same clamped
	// steps against the SMW target reproduces the trajectory (and the
	// convergence decision) with the target's accuracy.
	o := nf.opt
	x := make([]float64, n)
	nNode := nf.e.nNodeVars
	for iter := 0; iter < o.MaxIter; iter++ {
		conv := true
		for i := 0; i < n; i++ {
			dx := xNew[i] - x[i]
			if i < nNode {
				if dx > o.MaxStep {
					dx = o.MaxStep
					conv = false
				} else if dx < -o.MaxStep {
					dx = -o.MaxStep
					conv = false
				}
				if math.Abs(dx) > o.AbsTol+o.RelTol*math.Abs(x[i]) {
					conv = false
				}
			} else {
				if math.Abs(dx) > 1e-9+o.RelTol*math.Abs(x[i]) {
					conv = false
				}
			}
			x[i] += dx
		}
		if conv {
			return &Solution{e: nf.e, X: x}, nil
		}
	}
	return nil, ErrNoConvergence
}
