package spice

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/netlist"
	"repro/internal/solver"
)

// ACSolution holds the complex node voltages at one frequency.
type ACSolution struct {
	e    *Engine
	Freq float64
	X    []complex128
}

// V returns the complex small-signal voltage of the named node.
func (s *ACSolution) V(name string) complex128 {
	id, ok := s.e.Ckt.NodeByName(name)
	if !ok {
		panic(fmt.Sprintf("spice: unknown node %q", name))
	}
	if id == netlist.Ground {
		return 0
	}
	return s.X[int(id)-1]
}

// MagDB returns the magnitude of the named node in decibels.
func (s *ACSolution) MagDB(name string) float64 {
	return 20 * math.Log10(cmplx.Abs(s.V(name)))
}

// AC performs a small-signal analysis at the given frequencies: the
// circuit is linearised around op (typically from Engine.OP), the element
// named source provides a unit-magnitude excitation, and the complex MNA
// system is solved per frequency.
func (e *Engine) AC(op *Solution, source string, freqs []float64) ([]*ACSolution, error) {
	if _, ok := e.auxOf[source]; !ok {
		// Current-source excitations have no aux; verify existence.
		if e.Ckt.Element(source) == nil {
			return nil, fmt.Errorf("spice: AC source %q not found", source)
		}
	}
	// The complex matrix, right-hand side and factorisation workspace
	// live on the engine and are reused across every frequency point and
	// every sweep; only the per-point solution vector (which ACSolution
	// retains) is allocated. Factor-then-solve through the workspace is
	// bit-identical to the combined CSolve this loop used to call.
	if e.acA == nil {
		e.acA = solver.NewCMatrix(e.nUnknowns)
		e.acB = make([]complex128, e.nUnknowns)
		e.aclu = solver.NewCLU(e.nUnknowns)
	}
	a, b := e.acA, e.acB
	ctx := &netlist.ACContext{
		Source: source,
		X: func(n netlist.NodeID) float64 {
			if n == netlist.Ground {
				return 0
			}
			return op.X[int(n)-1]
		},
		A: a.Add,
		B: func(i int, v complex128) { b[i] += v },
	}
	out := make([]*ACSolution, 0, len(freqs))
	for _, f := range freqs {
		a.Zero()
		for i := range b {
			b[i] = 0
		}
		ctx.Omega = 2 * math.Pi * f
		for i, el := range e.Ckt.Elems {
			ac, ok := el.(netlist.ACStamper)
			if !ok {
				return nil, fmt.Errorf("spice: element %s has no AC model", el.Name())
			}
			ac.StampAC(ctx, e.auxBase[i])
		}
		// The same tiny node leak as the large-signal analyses keeps
		// AC-floating nodes solvable.
		for i := 0; i < e.nNodeVars; i++ {
			a.Add(i, i, 1e-12)
		}
		if err := e.aclu.Refactor(a); err != nil {
			return nil, fmt.Errorf("spice: AC at %g Hz: %w", f, err)
		}
		x := e.aclu.SolveInto(make([]complex128, e.nUnknowns), b)
		out = append(out, &ACSolution{e: e, Freq: f, X: x})
	}
	return out, nil
}

// LogSpace returns n logarithmically spaced frequencies from f0 to f1.
func LogSpace(f0, f1 float64, n int) []float64 {
	if n < 2 {
		return []float64{f0}
	}
	out := make([]float64, n)
	l0, l1 := math.Log10(f0), math.Log10(f1)
	for i := range out {
		out[i] = math.Pow(10, l0+(l1-l0)*float64(i)/float64(n-1))
	}
	return out
}

// Bandwidth3dB locates the -3 dB frequency of the named node relative to
// its lowest-frequency magnitude, by log-sweeping [f0, f1]. Returns the
// first frequency where the response has fallen 3 dB (or f1 if it never
// does).
func (e *Engine) Bandwidth3dB(op *Solution, source, node string, f0, f1 float64) (float64, error) {
	freqs := LogSpace(f0, f1, 61)
	sols, err := e.AC(op, source, freqs)
	if err != nil {
		return 0, err
	}
	ref := sols[0].MagDB(node)
	for _, s := range sols {
		if s.MagDB(node) < ref-3 {
			return s.Freq, nil
		}
	}
	return f1, nil
}
