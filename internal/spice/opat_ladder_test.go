package spice

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/netlist"
)

// The OPAt fallback ladder (plain Newton → gmin stepping → source
// stepping with an elevated-gmin retry per stalled rung) is observed
// through Options.OPTrace. Each test here pins one path through the
// ladder on a deterministic circuit: a feedback-wrapped inverter chain
// whose convergence difficulty is tuned by the stage count, with
// MaxIter chosen (empirically, via a trace sweep) so exactly the
// intended rungs fire. The assertions are on the full trace sequence,
// so a silently reordered or skipped rung fails loudly.

// ladderChain builds a feedback inverter chain: `stages` CMOS inverters
// driven off vdd, the last output fed back to the first input through a
// resistor. More stages push the zero start further from the solution.
func ladderChain(stages int) *netlist.Builder {
	b := netlist.NewBuilder()
	b.Vsrc("vdd", "vdd", "0", netlist.DC(5))
	prev := "vdd"
	for i := 0; i < stages; i++ {
		out := nodeNameX(i)
		b.PMOS("p"+out, out, prev, "vdd", "vdd", 40, 1)
		b.NMOS("n"+out, out, prev, "0", 20, 1)
		prev = out
	}
	b.R("fb", prev, nodeNameX(0), 10e3)
	return b
}

// opTrace runs OP on the chain with the given iteration budget and
// returns the ladder trace, the solution (nil on failure) and the error.
func opTrace(t *testing.T, stages, maxIter int) ([]string, *Solution, error) {
	t.Helper()
	var trace []string
	opt := DefaultOptions()
	opt.MaxIter = maxIter
	opt.OPTrace = func(stage string) { trace = append(trace, stage) }
	sol, err := New(ladderChain(stages).C, opt).OP(context.Background())
	return trace, sol, err
}

// checkRails fails if any chain output escaped the supply rails — the
// sanity check that a fallback rung delivered a physical solution, not
// merely a converged one.
func checkRails(t *testing.T, sol *Solution, stages int) {
	t.Helper()
	for i := 0; i < stages; i++ {
		if v := sol.V(nodeNameX(i)); v < -0.1 || v > 5.1 {
			t.Fatalf("stage %d out of rails: %g", i, v)
		}
	}
}

func TestOPAtPlainNewton(t *testing.T) {
	// One stage with a comfortable budget: plain Newton from zero must
	// converge without entering any fallback.
	trace, sol, err := opTrace(t, 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"newton-ok"}; !reflect.DeepEqual(trace, want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	checkRails(t, sol, 1)
}

func TestOPAtGminStepping(t *testing.T) {
	// Three stages at MaxIter=8: plain Newton runs out of iterations,
	// but the gmin homotopy's warm-started rungs each converge and the
	// final polish at baseline Gmin succeeds. Source stepping must not
	// be reached.
	trace, sol, err := opTrace(t, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"gmin", "gmin-ok"}; !reflect.DeepEqual(trace, want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	checkRails(t, sol, 3)
}

func TestOPAtSourceSteppingWithGminRetry(t *testing.T) {
	// Two stages at MaxIter=5: plain Newton and gmin stepping both
	// starve, source stepping is entered, one rung stalls and is
	// rescued by the elevated-gmin retry, and the ladder completes.
	trace, sol, err := opTrace(t, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"gmin", "source", "source-gmin-retry", "source-ok"}
	if !reflect.DeepEqual(trace, want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	checkRails(t, sol, 2)
}

func TestOPAtLadderExhausted(t *testing.T) {
	// Two stages at MaxIter=2: every rung starves, including the
	// elevated-gmin retry; the error must be ErrNoConvergence and the
	// trace must show the ladder was walked to the end.
	trace, _, err := opTrace(t, 2, 2)
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("err = %v, want ErrNoConvergence", err)
	}
	want := []string{"gmin", "source", "source-gmin-retry"}
	if !reflect.DeepEqual(trace, want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
}
