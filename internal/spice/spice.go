// Package spice is the analog simulation engine of the reproduction: a
// modified-nodal-analysis (MNA) solver over the circuits of
// internal/netlist. It provides the two analyses the defect-oriented test
// path needs — a robust DC operating point (Newton–Raphson with gmin
// stepping and source stepping fallbacks) and a fixed-step backward-Euler
// transient — plus branch-current measurement through voltage sources,
// which is how the methodology's IVdd/IDDQ/Iinput observations are made.
package spice

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/solver"
)

// ErrNoConvergence is returned when every convergence aid is exhausted.
var ErrNoConvergence = errors.New("spice: no convergence")

// IsCancelled reports whether err is (or wraps) a context cancellation
// or deadline — the one analysis error that must NOT be classified as a
// fault signature by the layers above.
func IsCancelled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Options tune the solver.
type Options struct {
	// AbsTol/RelTol terminate Newton iteration on voltage deltas.
	AbsTol, RelTol float64
	// MaxIter bounds Newton iterations per solve.
	MaxIter int
	// Gmin is the baseline convergence conductance at nonlinear devices.
	Gmin float64
	// MaxStep clamps per-node Newton voltage updates (damping).
	MaxStep float64
	// OPTrace, if non-nil, observes the operating-point convergence
	// ladder: "newton-ok" (plain Newton converged), "gmin" / "gmin-ok"
	// (gmin-stepping homotopy entered / succeeded), "source" /
	// "source-ok" (source stepping entered / succeeded) and
	// "source-gmin-retry" every time a stalled source-stepping rung is
	// re-attempted with elevated gmin. Intended for tests and diagnosis
	// of hard-to-converge circuits.
	OPTrace func(stage string)
	// Metrics, if non-nil, receives the hot-path counters (Newton
	// iterations, LU solves, gmin/source retries). The engine's owner
	// reads it between solves; nil discards every count for free.
	Metrics *obs.Metrics
}

// DefaultOptions returns robust settings for 5 V macro-cell circuits.
func DefaultOptions() Options {
	return Options{AbsTol: 1e-6, RelTol: 1e-4, MaxIter: 150, Gmin: 1e-12, MaxStep: 1.0}
}

// aOp and bOp are recorded stamp operations: accumulate v into the
// flattened matrix cell k, respectively RHS row i.
type aOp struct {
	k int
	v float64
}
type bOp struct {
	i int
	v float64
}

// Engine binds a circuit to the MNA solver. All Newton/assembly/solve
// working storage lives on the Engine and is reused across every OP,
// transient step and AC linearisation, so steady-state simulation is
// allocation-free; consequently an Engine must not be used from multiple
// goroutines at once (the campaign layers create one engine per analysis,
// which is also what amortises these workspaces over thousands of Newton
// iterations).
type Engine struct {
	Ckt *netlist.Circuit
	Opt Options

	// met receives the hot-path counters (aliases Opt.Metrics; nil
	// discards). ctx/done are rebound by every top-level analysis entry
	// (OPAt, TransientSchedule): done is polled between Newton
	// iterations and transient steps so a cancellation aborts a wedged
	// solve in bounded time — at most one LU factorisation after the
	// context fires.
	met  *obs.Metrics
	ctx  context.Context
	done <-chan struct{}

	nUnknowns int
	nNodeVars int
	auxBase   []int          // per element index
	auxOf     map[string]int // vsource name -> aux index

	// progs caches the compiled per-mode stamp programs (lazily built:
	// index by netlist.StampMode).
	progs [2]*netlist.StampProgram

	// Reusable Newton workspaces.
	a      *solver.Matrix // MNA matrix
	b      []float64      // RHS
	wx     []float64      // current Newton iterate
	xNew   []float64      // linear-solve target
	zeros  []float64      // all-zero vector; never written
	opX    []float64      // OPAt continuation iterate
	subX   []float64      // transient local-refinement iterate
	retryX []float64      // tranStep elevated-gmin intermediate

	// Recorded linear-element ops for the current Newton solve, with
	// per-linear-segment end offsets (parallel to the program's linear
	// segments, in order).
	recA    []aOp
	recB    []bOp
	segEndA []int
	segEndB []int
	curProg *netlist.StampProgram

	// A-side recording cache. The matrix ops of the linear elements
	// (Resistor, Capacitor, VSource, ISource) depend only on the stamp
	// mode, dt, gmin and srcScale — never on Time or XPrev, which reach
	// only the right-hand side — and element terminals are fixed once an
	// engine exists (faults are injected before spice.New). So when a
	// solve repeats the key of the previous recording (every transient
	// step after the first), beginSolve keeps recA/segEndA and re-records
	// just the B side, discarding the A-side stamps into a dump sink.
	recValid               bool
	recProg                *netlist.StampProgram
	recDt, recGmin, recSrc float64
	recAppendA             func(i, j int, v float64)

	// slu holds the per-stamp-mode sparsity-aware factorisation
	// workspaces (indexed by netlist.StampMode, lazily built from a
	// pattern probe of the compiled stamp program). Each factorisation
	// replays the cached elimination structure and falls back to the
	// dense LU on a pivot-cache mismatch; results are bit-identical
	// either way.
	slu [2]*solver.SparseLU

	// Transient snapshot arena: backing storage for Tran.Xs (and the
	// Times/Xs headers) reused across analyses on the same engine, so
	// repeated transients reach an allocation-free steady state. The
	// previous analysis's Tran is overwritten by the next one — see the
	// TransientSchedule contract.
	arena     []float64
	arenaOff  int
	arenaNeed int
	timesBuf  []float64
	xsBuf     [][]float64

	// AC sweep workspaces (lazily built by AC).
	acA  *solver.CMatrix
	acB  []complex128
	aclu *solver.CLU

	// Persistent stamping contexts: liveCtx accumulates straight into
	// a/b (nonlinear per-iteration stamps), recCtx appends to recA/recB
	// (linear once-per-solve recording). Their closures are built once
	// here and read curX/curPrev indirectly, so assembly allocates
	// nothing.
	liveCtx *netlist.Context
	recCtx  *netlist.Context
	curX    []float64
	curPrev []float64
}

// New prepares an engine for the circuit.
func New(ckt *netlist.Circuit, opt Options) *Engine {
	e := &Engine{Ckt: ckt, Opt: opt, met: opt.Metrics, auxOf: map[string]int{}}
	e.nNodeVars = ckt.NumNodes() - 1
	next := e.nNodeVars
	e.auxBase = make([]int, len(ckt.Elems))
	for i, el := range ckt.Elems {
		e.auxBase[i] = next
		if n := el.NumAux(); n > 0 {
			e.auxOf[el.Name()] = next
			next += n
		}
	}
	e.nUnknowns = next

	n := e.nUnknowns
	e.a = solver.NewMatrix(n)
	e.b = make([]float64, n)
	e.wx = make([]float64, n)
	e.xNew = make([]float64, n)
	e.zeros = make([]float64, n)
	e.opX = make([]float64, n)
	e.subX = make([]float64, n)
	e.retryX = make([]float64, n)

	// The accumulation closures capture the backing slices directly
	// (they are never reallocated) so each stamp call skips the pointer
	// chases through the engine; X/XPrev must go through the engine
	// because curX/curPrev are retargeted per solve.
	aa, bb := e.a.A, e.b
	e.liveCtx = &netlist.Context{
		X: func(nd netlist.NodeID) float64 {
			if nd == netlist.Ground {
				return 0
			}
			return e.curX[int(nd)-1]
		},
		XPrev: func(nd netlist.NodeID) float64 {
			if nd == netlist.Ground {
				return 0
			}
			return e.curPrev[int(nd)-1]
		},
		A: func(i, j int, v float64) { aa[i*n+j] += v },
		B: func(i int, v float64) { bb[i] += v },
		// Dense fast path: nonlinear stamps during live assembly write
		// the matrix and RHS directly instead of going through the
		// closures above (same additions, same order).
		ADense: aa,
		BDense: bb,
		N:      n,
	}
	e.recAppendA = func(i, j int, v float64) { e.recA = append(e.recA, aOp{i*n + j, v}) }
	e.recCtx = &netlist.Context{
		// Linear stamps are X-independent by contract; reading X while
		// recording would silently replay a stale iterate, so fail fast.
		X: func(netlist.NodeID) float64 {
			panic("spice: linear element read X during stamp recording")
		},
		XPrev: func(nd netlist.NodeID) float64 {
			if nd == netlist.Ground {
				return 0
			}
			return e.curPrev[int(nd)-1]
		},
		A: e.recAppendA,
		B: func(i int, v float64) { e.recB = append(e.recB, bOp{i, v}) },
		N: n,
	}
	return e
}

// SetMetrics rebinds the engine's hot-path counter block. Pooled engines
// are checked out by analyses that each own a Metrics block, so the
// binding must follow the engine across checkouts; counters never feed
// back into the numerics, so rebinding cannot change any result.
func (e *Engine) SetMetrics(m *obs.Metrics) {
	e.Opt.Metrics = m
	e.met = m
}

// RetuneVSource replaces the waveform of the named voltage source on a
// live engine. A VSource's matrix stamps are its value-independent ±1
// aux couplings, so the recorded A-side replay stays valid, and the
// source value reaches only the right-hand side, which every solve
// re-records — analyses after a retune are bit-identical to those of a
// fresh engine built with the new waveform. (Mutating any other
// value-bearing element kind — resistors, capacitors, MOS models —
// must go through Revalue, which drops the A-side recording when one
// of those values changes.)
func (e *Engine) RetuneVSource(name string, w netlist.Waveform) error {
	el := e.Ckt.Element(name)
	if el == nil {
		return fmt.Errorf("spice: retune: no element %q", name)
	}
	vs, ok := el.(*netlist.VSource)
	if !ok {
		return fmt.Errorf("spice: retune: element %q is not a voltage source", name)
	}
	vs.W = w
	return nil
}

// Revalue applies a parameter binding to the engine's circuit in place:
// the compile-once/revalue-many entry point. The topology is untouched,
// so every compiled artifact is retained — node and aux numbering, the
// per-mode stamp programs, the structural sparsity patterns and the
// sparse symbolic analyses (the cached elimination is pivot-verified
// per factorisation with a bit-identical dense fallback, so revalued
// matrices are automatically safe on the cached structure). Only when
// an A-side value actually changed (bitwise) is the A-side stamp
// recording dropped; a B-side-only rebind — retuning sources between
// ramp slices — keeps it, generalising the RetuneVSource rule.
//
// After a successful Revalue the engine's analyses are bit-identical to
// those of a freshly built engine whose builder produced the bound
// values: the next solve re-records the linear stamps from the new
// element fields through the same code in the same element order.
//
// On error the circuit may be partially revalued; the caller must
// discard the engine (the macro layer falls back to a full rebuild).
func (e *Engine) Revalue(b *netlist.Binding) error {
	aChanged, err := e.Ckt.Rebind(b)
	if err != nil {
		return err
	}
	if aChanged {
		e.recValid = false
	}
	if e.slu[netlist.DCOp] != nil || e.slu[netlist.Transient] != nil {
		// The revalued solves will reuse a learned symbolic analysis
		// instead of re-probing the pattern and re-learning.
		e.met.Add(obs.CtrPatternReuse, 1)
	}
	return nil
}

// StampChecksum assembles the mode's linearised system at the all-zero
// iterate (time t, timestep dt, default gmin, unit source scale) and
// returns an FNV-1a hash over the exact float64 bits of the matrix and
// right-hand side. Two engines whose checksums match for a mode stamp
// bit-identical systems there — the verification hook behind the
// rebind-equals-rebuild property tests. It shares the solve workspaces,
// so it must not be called concurrently with an analysis; interleaving
// it between analyses is safe (each solve re-records its own stamps).
func (e *Engine) StampChecksum(mode netlist.StampMode, t, dt float64) uint64 {
	e.beginSolve(mode, t, dt, e.Opt.Gmin, 1, e.zeros)
	e.assemble(e.zeros)
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v float64) {
		bits := math.Float64bits(v)
		for s := 0; s < 64; s += 8 {
			h ^= (bits >> s) & 0xff
			h *= prime64
		}
	}
	for _, v := range e.a.A {
		mix(v)
	}
	for _, v := range e.b {
		mix(v)
	}
	return h
}

// bind installs the context governing one top-level analysis. A nil ctx
// (legacy callers, tests) binds the never-cancelled background context.
func (e *Engine) bind(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	e.ctx = ctx
	e.done = ctx.Done()
}

// cancelled polls the bound context without blocking. It is the per-
// iteration abort check of the Newton loop and the transient stepper: a
// single select on the cached done channel, no allocation.
func (e *Engine) cancelled() error {
	if e.done == nil {
		return nil
	}
	select {
	case <-e.done:
		return e.ctx.Err()
	default:
		return nil
	}
}

// prog returns (compiling on first use) the stamp program for a mode.
func (e *Engine) prog(mode netlist.StampMode) *netlist.StampProgram {
	if p := e.progs[mode]; p != nil {
		return p
	}
	p := netlist.CompileStamps(e.Ckt, mode, e.auxBase)
	e.progs[mode] = p
	return p
}

// sparseLU returns (building on first use) the mode's sparsity-aware
// factorisation workspace.
func (e *Engine) sparseLU(mode netlist.StampMode) *solver.SparseLU {
	if f := e.slu[mode]; f != nil {
		return f
	}
	f := solver.NewSparseLU(e.stampPattern(mode))
	e.slu[mode] = f
	return f
}

// stampPattern records the structural nonzero pattern of one mode's
// stamp program by replaying it into a probing context that captures
// matrix cell positions and discards values. Stamp positions depend
// only on element terminals and aux numbering — never on the iterate,
// the time or the element values — so the pattern recorded here covers
// every cell any later assembly can touch. Dt, Gmin and SrcScale are
// probed nonzero so value-gated stamp branches (the backward-Euler
// companions, the convergence-aid conductances) contribute their cells;
// a superset pattern is safe, a miss would not be.
func (e *Engine) stampPattern(mode netlist.StampMode) *solver.Pattern {
	n := e.nUnknowns
	pat := solver.NewPattern(n)
	zero := func(netlist.NodeID) float64 { return 0 }
	probe := &netlist.Context{
		Mode: mode,
		Dt:   1, Gmin: 1, SrcScale: 1,
		X: zero, XPrev: zero,
		A: func(i, j int, v float64) { pat.Mark(i, j) },
		B: func(int, float64) {},
		N: n,
	}
	for _, it := range e.prog(mode).Items {
		it.El.Stamp(probe, it.AuxBase)
	}
	// assemble adds the node-leak diagonal outside the stamp program.
	for i := 0; i < e.nNodeVars; i++ {
		pat.Mark(i, i)
	}
	return pat
}

// Solution is a solved vector of node voltages and branch currents.
type Solution struct {
	e *Engine
	X []float64
}

// V returns the voltage of the named node.
func (s *Solution) V(name string) float64 {
	id, ok := s.e.Ckt.NodeByName(name)
	if !ok {
		panic(fmt.Sprintf("spice: unknown node %q", name))
	}
	return s.VNode(id)
}

// VNode returns the voltage of node n.
func (s *Solution) VNode(n netlist.NodeID) float64 {
	if n == netlist.Ground {
		return 0
	}
	return s.X[int(n)-1]
}

// I returns the current delivered by the named voltage source out of its
// + terminal into the circuit. For a supply "vdd"→ground powering a load,
// I is positive and equals the supply current drawn.
func (s *Solution) I(vsrc string) float64 {
	aux, ok := s.e.auxOf[vsrc]
	if !ok {
		panic(fmt.Sprintf("spice: no aux current for element %q", vsrc))
	}
	// MNA aux is the branch current flowing from + through the source
	// to −; the current delivered to the external circuit is −aux.
	return -s.X[aux]
}

// beginSolve prepares one Newton solve: it configures both stamping
// contexts for the solve-constant parameters and records the stamp ops of
// every linear element into the replay buffers. Within a solve only the
// iterate X changes, so the recording — including time-dependent source
// values and the capacitors' backward-Euler companions against xPrev —
// stays valid for every iteration.
func (e *Engine) beginSolve(mode netlist.StampMode, time, dt, gmin, srcScale float64, xPrev []float64) {
	e.curProg = e.prog(mode)
	e.curPrev = xPrev
	e.recB = e.recB[:0]
	e.segEndB = e.segEndB[:0]
	// The A-side recording can be kept whenever the previous solve
	// recorded the same program under the same dt/gmin/srcScale (see the
	// cache fields); then only the time/xPrev-dependent B side needs
	// re-recording.
	hit := e.recValid && e.recProg == e.curProg &&
		e.recDt == dt && e.recGmin == gmin && e.recSrc == srcScale

	rc := e.recCtx
	rc.Mode, rc.Time, rc.Dt, rc.SrcScale, rc.Gmin = mode, time, dt, srcScale, gmin
	rc.XPrevDense = xPrev
	e.liveCtx.XPrevDense = xPrev
	if hit {
		// Discard A-side stamps by sinking them into the MNA matrix,
		// which assemble zeroes before its first use anyway; the inlined
		// dense writes are cheaper than a dropping closure call.
		rc.ADense = e.a.A
	} else {
		rc.ADense = nil // route A ops to the recording closure
		e.recA = e.recA[:0]
		e.segEndA = e.segEndA[:0]
	}
	for _, seg := range e.curProg.Segs {
		if !seg.Linear {
			continue
		}
		if hit {
			// Only the B side needs re-recording; elements with a
			// compiled BStamper view skip the A-side work their Stamp
			// would compute into the discard sink.
			for _, it := range e.curProg.Items[seg.From:seg.To] {
				if it.BS != nil {
					it.BS.StampB(rc, it.AuxBase)
				} else {
					it.El.Stamp(rc, it.AuxBase)
				}
			}
		} else {
			for _, it := range e.curProg.Items[seg.From:seg.To] {
				it.El.Stamp(rc, it.AuxBase)
			}
		}
		if !hit {
			e.segEndA = append(e.segEndA, len(e.recA))
		}
		e.segEndB = append(e.segEndB, len(e.recB))
	}
	e.recValid = true
	e.recProg, e.recDt, e.recGmin, e.recSrc = e.curProg, dt, gmin, srcScale

	lc := e.liveCtx
	lc.Mode, lc.Time, lc.Dt, lc.SrcScale, lc.Gmin = mode, time, dt, srcScale, gmin
}

// assemble builds the linearised MNA system at iterate x by walking the
// compiled stamp program: recorded linear ops are replayed and nonlinear
// elements re-stamped, interleaved in original element order so the
// floating-point accumulation order matches naive per-element stamping
// bit for bit.
func (e *Engine) assemble(x []float64) {
	e.a.Zero()
	b := e.b
	for i := range b {
		b[i] = 0
	}
	e.curX = x
	e.liveCtx.XDense = x
	aa := e.a.A
	ai, bi, si := 0, 0, 0
	for _, seg := range e.curProg.Segs {
		if seg.Linear {
			endA, endB := e.segEndA[si], e.segEndB[si]
			si++
			for ; ai < endA; ai++ {
				op := e.recA[ai]
				aa[op.k] += op.v
			}
			for ; bi < endB; bi++ {
				op := e.recB[bi]
				b[op.i] += op.v
			}
			continue
		}
		for _, it := range e.curProg.Items[seg.From:seg.To] {
			it.El.Stamp(e.liveCtx, it.AuxBase)
		}
	}
	// A tiny leak at every node keeps floating subcircuits solvable
	// (split nets from open faults, gates of off devices, …).
	const leak = 1e-12
	n := e.nUnknowns
	for i := 0; i < e.nNodeVars; i++ {
		aa[i*n+i] += leak
	}
}

// newton runs Newton–Raphson from x0 and writes the converged vector into
// dst on success (dst is untouched on failure). dst may alias x0 and —
// because xPrev is only read while recording the linear stamps up front —
// also xPrev. All working state lives in the Engine workspaces, so a
// solve performs no allocations.
func (e *Engine) newton(dst, x0, xPrev []float64, mode netlist.StampMode,
	time, dt, gmin, srcScale float64) error {
	n := e.nUnknowns
	x := e.wx
	copy(x, x0)
	lu := e.sparseLU(mode)
	e.beginSolve(mode, time, dt, gmin, srcScale, xPrev)
	for iter := 0; iter < e.Opt.MaxIter; iter++ {
		if err := e.cancelled(); err != nil {
			return err
		}
		e.met.Add(obs.CtrNewtonIters, 1)
		e.assemble(x)
		path, err := lu.Refactor(e.a)
		if err != nil {
			return fmt.Errorf("iter %d: %w", iter, err)
		}
		if path == solver.FactorSparse {
			e.met.Add(obs.CtrSparseFactorHits, 1)
		} else {
			e.met.Add(obs.CtrDenseFallbacks, 1)
		}
		xNew := lu.SolveInto(e.xNew, e.b)
		e.met.Add(obs.CtrLUSolves, 1)
		// Damp node-voltage updates; leave branch currents free.
		conv := true
		for i := 0; i < n; i++ {
			dx := xNew[i] - x[i]
			if i < e.nNodeVars {
				if dx > e.Opt.MaxStep {
					dx = e.Opt.MaxStep
					conv = false
				} else if dx < -e.Opt.MaxStep {
					dx = -e.Opt.MaxStep
					conv = false
				}
				if math.Abs(dx) > e.Opt.AbsTol+e.Opt.RelTol*math.Abs(x[i]) {
					conv = false
				}
			} else {
				if math.Abs(dx) > 1e-9+e.Opt.RelTol*math.Abs(x[i]) {
					conv = false
				}
			}
			x[i] += dx
		}
		if conv {
			copy(dst, x)
			return nil
		}
	}
	return ErrNoConvergence
}

// OP computes the DC operating point at t = 0. Cancelling ctx aborts
// the solve between Newton iterations; the returned error then satisfies
// IsCancelled.
func (e *Engine) OP(ctx context.Context) (*Solution, error) {
	return e.OPAt(ctx, 0)
}

// trace reports an operating-point ladder stage to Options.OPTrace.
func (e *Engine) trace(stage string) {
	if e.Opt.OPTrace != nil {
		e.Opt.OPTrace(stage)
	}
}

// solution snapshots a workspace vector into a caller-owned Solution.
func (e *Engine) solution(x []float64) *Solution {
	return &Solution{e: e, X: append([]float64(nil), x...)}
}

// OPAt computes the DC operating point with time-dependent sources
// evaluated at the given time (capacitors open). Cancelling ctx aborts
// the fallback ladder between Newton iterations — a cancellation error
// is returned as-is, never converted into the next convergence aid.
func (e *Engine) OPAt(ctx context.Context, time float64) (*Solution, error) {
	e.bind(ctx)
	return e.opAt(time)
}

// opAt is the ladder body, running under the already-bound context.
func (e *Engine) opAt(time float64) (*Solution, error) {
	zero := e.zeros
	x := e.opX

	// 1. Plain Newton from zero.
	if err := e.newton(x, zero, zero, netlist.DCOp, time, 0, e.Opt.Gmin, 1); err == nil {
		e.trace("newton-ok")
		return e.solution(x), nil
	} else if IsCancelled(err) {
		return nil, err
	}

	// 2. Gmin stepping.
	e.trace("gmin")
	copy(x, zero)
	ok := true
	for g := 1e-2; g >= e.Opt.Gmin; g /= 10 {
		e.met.Add(obs.CtrGminRetries, 1)
		if err := e.newton(x, x, zero, netlist.DCOp, time, 0, g, 1); err != nil {
			if IsCancelled(err) {
				return nil, err
			}
			ok = false
			break
		}
	}
	if ok {
		if err := e.newton(x, x, zero, netlist.DCOp, time, 0, e.Opt.Gmin, 1); err == nil {
			e.trace("gmin-ok")
			return e.solution(x), nil
		} else if IsCancelled(err) {
			return nil, err
		}
	}

	// 3. Source stepping.
	e.trace("source")
	copy(x, zero)
	for s := 0.05; ; s += 0.05 {
		if s > 1 {
			s = 1
		}
		e.met.Add(obs.CtrSourceRetries, 1)
		if err := e.newton(x, x, zero, netlist.DCOp, time, 0, e.Opt.Gmin, s); err != nil {
			if IsCancelled(err) {
				return nil, err
			}
			// Retry the failed rung with elevated gmin before giving up.
			e.trace("source-gmin-retry")
			e.met.Add(obs.CtrSourceRetries, 1)
			if err := e.newton(x, x, zero, netlist.DCOp, time, 0, 1e-6, s); err != nil {
				if IsCancelled(err) {
					return nil, err
				}
				return nil, fmt.Errorf("%w (source stepping stalled at %.2f)", ErrNoConvergence, s)
			}
		}
		if s >= 1 {
			e.trace("source-ok")
			return e.solution(x), nil
		}
	}
}

// Tran is a transient result: solution snapshots at every accepted step.
type Tran struct {
	e     *Engine
	Times []float64
	Xs    [][]float64
}

// Len returns the number of stored timepoints.
func (t *Tran) Len() int { return len(t.Times) }

// At returns the solution at stored index i.
func (t *Tran) At(i int) *Solution { return &Solution{e: t.e, X: t.Xs[i]} }

// AtTime returns the last stored solution with time <= tm (or the first).
func (t *Tran) AtTime(tm float64) *Solution {
	lo := 0
	for i, tt := range t.Times {
		if tt <= tm {
			lo = i
		} else {
			break
		}
	}
	return t.At(lo)
}

// V returns the waveform of the named node.
func (t *Tran) V(name string) []float64 {
	out := make([]float64, t.Len())
	for i := range t.Xs {
		out[i] = t.At(i).V(name)
	}
	return out
}

// I returns the delivered-current waveform of the named voltage source.
func (t *Tran) I(vsrc string) []float64 {
	out := make([]float64, t.Len())
	for i := range t.Xs {
		out[i] = t.At(i).I(vsrc)
	}
	return out
}

// MeanBetween averages samples of w (a waveform aligned with t.Times) over
// the window [t0, t1].
func (t *Tran) MeanBetween(w []float64, t0, t1 float64) float64 {
	var sum float64
	var n int
	for i, tt := range t.Times {
		if tt >= t0 && tt <= t1 {
			sum += w[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// TranSeg is one segment of a piecewise-timestep transient: integrate with
// step Dt until time Until.
type TranSeg struct {
	Until, Dt float64
}

// Transient runs a fixed-step backward-Euler transient from t = 0 to
// tstop with nominal step dt, starting from the DC operating point at
// t = 0. When a step fails to converge it is retried with up to 64× local
// step refinement. Cancelling ctx aborts between steps and between the
// Newton iterations inside a step; the error then satisfies IsCancelled.
func (e *Engine) Transient(ctx context.Context, tstop, dt float64) (*Tran, error) {
	return e.TransientSchedule(ctx, []TranSeg{{Until: tstop, Dt: dt}})
}

// TransientSchedule runs a backward-Euler transient with a piecewise
// timestep schedule. Fast regenerative windows (latch onset) use fine
// steps while quiet phases use coarse ones — backward Euler artificially
// damps unstable (regenerative) modes when h·λ is large, so the latch
// decision window must be resolved finely.
//
// The returned Tran aliases engine-owned snapshot storage that the next
// transient on this engine reuses: read (or copy out) everything needed
// from a Tran before starting another analysis on the same engine.
func (e *Engine) TransientSchedule(ctx context.Context, segs []TranSeg) (*Tran, error) {
	e.bind(ctx)
	op, err := e.opAt(0)
	if err != nil {
		return nil, fmt.Errorf("transient initial OP: %w", err)
	}
	e.resetArena()
	tr := &Tran{e: e, Times: e.timesBuf[:0], Xs: e.xsBuf[:0]}
	x := op.X // freshly allocated by OP; owned by tr from here on
	tr.Times = append(tr.Times, 0)
	tr.Xs = append(tr.Xs, x)

	t := 0.0
	for _, seg := range segs {
		if x, t, err = e.runSegment(tr, x, t, seg.Until, seg.Dt); err != nil {
			return nil, err
		}
	}
	// Hand the (possibly grown) headers back to the arena so the next
	// run starts from their full capacity.
	e.timesBuf, e.xsBuf = tr.Times, tr.Xs
	return tr, nil
}

// resetArena rewinds the snapshot arena for a new transient, growing
// the slab to the previous run's high-water mark so a steady-state
// engine serves every snapshot from reused storage.
func (e *Engine) resetArena() {
	if e.arenaNeed > len(e.arena) {
		e.arena = make([]float64, e.arenaNeed)
	}
	e.arenaOff, e.arenaNeed = 0, 0
}

// snap carves one snapshot vector out of the arena (falling back to a
// plain allocation while the slab is still growing towards this run's
// demand). The contents are written by the caller before any read.
func (e *Engine) snap() []float64 {
	n := e.nUnknowns
	e.arenaNeed += n
	if e.arenaOff+n > len(e.arena) {
		return make([]float64, n)
	}
	s := e.arena[e.arenaOff : e.arenaOff+n : e.arenaOff+n]
	e.arenaOff += n
	return s
}

// runSegment advances the transient to tstop with nominal step dt,
// appending snapshots to tr. Snapshots come from the engine's arena, so
// a steady-state engine performs no per-step allocations at all.
func (e *Engine) runSegment(tr *Tran, x []float64, t, tstop, dt float64) ([]float64, float64, error) {
	for t < tstop-1e-18 {
		step := dt
		if t+step > tstop {
			step = tstop - t
		}
		nx := e.snap() // this step's stored snapshot
		if err := e.tranStep(nx, x, t, step); err != nil {
			// A cancellation is an abort, not a convergence failure:
			// skip the refinement ladder entirely.
			if IsCancelled(err) {
				return nil, 0, err
			}
			// Local refinement: substeps at step/2^k.
			solved := false
			for k := 1; k <= 6 && !solved; k++ {
				sub := step / math.Pow(2, float64(k))
				xs := e.subX
				copy(xs, x)
				tt := t
				okAll := true
				for i := 0; i < 1<<k; i++ {
					if err2 := e.tranStep(xs, xs, tt, sub); err2 != nil {
						if IsCancelled(err2) {
							return nil, 0, err2
						}
						okAll = false
						break
					}
					tt += sub
				}
				if okAll {
					copy(nx, xs)
					solved = true
				}
			}
			if !solved {
				return nil, 0, fmt.Errorf("transient step at t=%g: %w", t, err)
			}
		}
		t += step
		x = nx
		tr.Times = append(tr.Times, t)
		tr.Xs = append(tr.Xs, nx)
	}
	return x, t, nil
}

// tranStep advances one backward-Euler step of size dt from state x at
// time t, writing the state at t+dt into dst. dst may alias x.
func (e *Engine) tranStep(dst, x []float64, t, dt float64) error {
	err := e.newton(dst, x, x, netlist.Transient, t+dt, dt, e.Opt.Gmin, 1)
	if err == nil {
		return nil
	}
	if IsCancelled(err) {
		return err
	}
	// One retry with elevated gmin, then polish. The intermediate lands
	// in retryX so the previous state x (which dst may alias) survives
	// until the polish has read it.
	e.met.Add(obs.CtrGminRetries, 1)
	if err2 := e.newton(e.retryX, x, x, netlist.Transient, t+dt, dt, 1e-9, 1); err2 != nil {
		if IsCancelled(err2) {
			return err2
		}
		return err
	}
	if err3 := e.newton(dst, e.retryX, x, netlist.Transient, t+dt, dt, e.Opt.Gmin, 1); err3 == nil {
		return nil
	} else if IsCancelled(err3) {
		return err3
	}
	copy(dst, e.retryX)
	return nil
}
