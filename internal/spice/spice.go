// Package spice is the analog simulation engine of the reproduction: a
// modified-nodal-analysis (MNA) solver over the circuits of
// internal/netlist. It provides the two analyses the defect-oriented test
// path needs — a robust DC operating point (Newton–Raphson with gmin
// stepping and source stepping fallbacks) and a fixed-step backward-Euler
// transient — plus branch-current measurement through voltage sources,
// which is how the methodology's IVdd/IDDQ/Iinput observations are made.
package spice

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/netlist"
	"repro/internal/solver"
)

// ErrNoConvergence is returned when every convergence aid is exhausted.
var ErrNoConvergence = errors.New("spice: no convergence")

// Options tune the solver.
type Options struct {
	// AbsTol/RelTol terminate Newton iteration on voltage deltas.
	AbsTol, RelTol float64
	// MaxIter bounds Newton iterations per solve.
	MaxIter int
	// Gmin is the baseline convergence conductance at nonlinear devices.
	Gmin float64
	// MaxStep clamps per-node Newton voltage updates (damping).
	MaxStep float64
}

// DefaultOptions returns robust settings for 5 V macro-cell circuits.
func DefaultOptions() Options {
	return Options{AbsTol: 1e-6, RelTol: 1e-4, MaxIter: 150, Gmin: 1e-12, MaxStep: 1.0}
}

// Engine binds a circuit to the MNA solver.
type Engine struct {
	Ckt *netlist.Circuit
	Opt Options

	nUnknowns int
	nNodeVars int
	auxBase   []int          // per element index
	auxOf     map[string]int // vsource name -> aux index
}

// New prepares an engine for the circuit.
func New(ckt *netlist.Circuit, opt Options) *Engine {
	e := &Engine{Ckt: ckt, Opt: opt, auxOf: map[string]int{}}
	e.nNodeVars = ckt.NumNodes() - 1
	next := e.nNodeVars
	e.auxBase = make([]int, len(ckt.Elems))
	for i, el := range ckt.Elems {
		e.auxBase[i] = next
		if n := el.NumAux(); n > 0 {
			e.auxOf[el.Name()] = next
			next += n
		}
	}
	e.nUnknowns = next
	return e
}

// Solution is a solved vector of node voltages and branch currents.
type Solution struct {
	e *Engine
	X []float64
}

// V returns the voltage of the named node.
func (s *Solution) V(name string) float64 {
	id, ok := s.e.Ckt.NodeByName(name)
	if !ok {
		panic(fmt.Sprintf("spice: unknown node %q", name))
	}
	return s.VNode(id)
}

// VNode returns the voltage of node n.
func (s *Solution) VNode(n netlist.NodeID) float64 {
	if n == netlist.Ground {
		return 0
	}
	return s.X[int(n)-1]
}

// I returns the current delivered by the named voltage source out of its
// + terminal into the circuit. For a supply "vdd"→ground powering a load,
// I is positive and equals the supply current drawn.
func (s *Solution) I(vsrc string) float64 {
	aux, ok := s.e.auxOf[vsrc]
	if !ok {
		panic(fmt.Sprintf("spice: no aux current for element %q", vsrc))
	}
	// MNA aux is the branch current flowing from + through the source
	// to −; the current delivered to the external circuit is −aux.
	return -s.X[aux]
}

// assemble builds the linearised MNA system at iterate x.
func (e *Engine) assemble(a *solver.Matrix, b []float64, x, xPrev []float64,
	mode netlist.StampMode, time, dt, gmin, srcScale float64) {
	a.Zero()
	for i := range b {
		b[i] = 0
	}
	ctx := &netlist.Context{
		Mode:     mode,
		Time:     time,
		Dt:       dt,
		SrcScale: srcScale,
		Gmin:     gmin,
		X: func(n netlist.NodeID) float64 {
			if n == netlist.Ground {
				return 0
			}
			return x[int(n)-1]
		},
		XPrev: func(n netlist.NodeID) float64 {
			if n == netlist.Ground {
				return 0
			}
			return xPrev[int(n)-1]
		},
		A: a.Add,
		B: func(i int, v float64) { b[i] += v },
	}
	for i, el := range e.Ckt.Elems {
		el.Stamp(ctx, e.auxBase[i])
	}
	// A tiny leak at every node keeps floating subcircuits solvable
	// (split nets from open faults, gates of off devices, …).
	const leak = 1e-12
	for i := 0; i < e.nNodeVars; i++ {
		a.Add(i, i, leak)
	}
}

// newton runs Newton–Raphson from x0. Returns the converged vector.
func (e *Engine) newton(x0, xPrev []float64, mode netlist.StampMode,
	time, dt, gmin, srcScale float64) ([]float64, error) {
	n := e.nUnknowns
	x := append([]float64(nil), x0...)
	a := solver.NewMatrix(n)
	b := make([]float64, n)
	for iter := 0; iter < e.Opt.MaxIter; iter++ {
		e.assemble(a, b, x, xPrev, mode, time, dt, gmin, srcScale)
		lu, err := solver.Factor(a)
		if err != nil {
			return nil, fmt.Errorf("iter %d: %w", iter, err)
		}
		xNew := lu.Solve(b)
		// Damp node-voltage updates; leave branch currents free.
		conv := true
		for i := 0; i < n; i++ {
			dx := xNew[i] - x[i]
			if i < e.nNodeVars {
				if dx > e.Opt.MaxStep {
					dx = e.Opt.MaxStep
					conv = false
				} else if dx < -e.Opt.MaxStep {
					dx = -e.Opt.MaxStep
					conv = false
				}
				if math.Abs(dx) > e.Opt.AbsTol+e.Opt.RelTol*math.Abs(x[i]) {
					conv = false
				}
			} else {
				if math.Abs(dx) > 1e-9+e.Opt.RelTol*math.Abs(x[i]) {
					conv = false
				}
			}
			x[i] += dx
		}
		if conv {
			return x, nil
		}
	}
	return nil, ErrNoConvergence
}

// OP computes the DC operating point at t = 0.
func (e *Engine) OP() (*Solution, error) {
	return e.OPAt(0)
}

// OPAt computes the DC operating point with time-dependent sources
// evaluated at the given time (capacitors open).
func (e *Engine) OPAt(time float64) (*Solution, error) {
	zero := make([]float64, e.nUnknowns)

	// 1. Plain Newton from zero.
	if x, err := e.newton(zero, zero, netlist.DCOp, time, 0, e.Opt.Gmin, 1); err == nil {
		return &Solution{e: e, X: x}, nil
	}

	// 2. Gmin stepping.
	x := zero
	ok := true
	for g := 1e-2; g >= e.Opt.Gmin; g /= 10 {
		nx, err := e.newton(x, zero, netlist.DCOp, time, 0, g, 1)
		if err != nil {
			ok = false
			break
		}
		x = nx
	}
	if ok {
		if fx, err := e.newton(x, zero, netlist.DCOp, time, 0, e.Opt.Gmin, 1); err == nil {
			return &Solution{e: e, X: fx}, nil
		}
	}

	// 3. Source stepping.
	x = zero
	for s := 0.05; ; s += 0.05 {
		if s > 1 {
			s = 1
		}
		nx, err := e.newton(x, zero, netlist.DCOp, time, 0, e.Opt.Gmin, s)
		if err != nil {
			// Retry the failed rung with elevated gmin before giving up.
			nx, err = e.newton(x, zero, netlist.DCOp, time, 0, 1e-6, s)
			if err != nil {
				return nil, fmt.Errorf("%w (source stepping stalled at %.2f)", ErrNoConvergence, s)
			}
		}
		x = nx
		if s >= 1 {
			return &Solution{e: e, X: x}, nil
		}
	}
}

// Tran is a transient result: solution snapshots at every accepted step.
type Tran struct {
	e     *Engine
	Times []float64
	Xs    [][]float64
}

// Len returns the number of stored timepoints.
func (t *Tran) Len() int { return len(t.Times) }

// At returns the solution at stored index i.
func (t *Tran) At(i int) *Solution { return &Solution{e: t.e, X: t.Xs[i]} }

// AtTime returns the last stored solution with time <= tm (or the first).
func (t *Tran) AtTime(tm float64) *Solution {
	lo := 0
	for i, tt := range t.Times {
		if tt <= tm {
			lo = i
		} else {
			break
		}
	}
	return t.At(lo)
}

// V returns the waveform of the named node.
func (t *Tran) V(name string) []float64 {
	out := make([]float64, t.Len())
	for i := range t.Xs {
		out[i] = t.At(i).V(name)
	}
	return out
}

// I returns the delivered-current waveform of the named voltage source.
func (t *Tran) I(vsrc string) []float64 {
	out := make([]float64, t.Len())
	for i := range t.Xs {
		out[i] = t.At(i).I(vsrc)
	}
	return out
}

// MeanBetween averages samples of w (a waveform aligned with t.Times) over
// the window [t0, t1].
func (t *Tran) MeanBetween(w []float64, t0, t1 float64) float64 {
	var sum float64
	var n int
	for i, tt := range t.Times {
		if tt >= t0 && tt <= t1 {
			sum += w[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// TranSeg is one segment of a piecewise-timestep transient: integrate with
// step Dt until time Until.
type TranSeg struct {
	Until, Dt float64
}

// Transient runs a fixed-step backward-Euler transient from t = 0 to
// tstop with nominal step dt, starting from the DC operating point at
// t = 0. When a step fails to converge it is retried with up to 64× local
// step refinement.
func (e *Engine) Transient(tstop, dt float64) (*Tran, error) {
	return e.TransientSchedule([]TranSeg{{Until: tstop, Dt: dt}})
}

// TransientSchedule runs a backward-Euler transient with a piecewise
// timestep schedule. Fast regenerative windows (latch onset) use fine
// steps while quiet phases use coarse ones — backward Euler artificially
// damps unstable (regenerative) modes when h·λ is large, so the latch
// decision window must be resolved finely.
func (e *Engine) TransientSchedule(segs []TranSeg) (*Tran, error) {
	op, err := e.OP()
	if err != nil {
		return nil, fmt.Errorf("transient initial OP: %w", err)
	}
	tr := &Tran{e: e}
	x := op.X
	tr.Times = append(tr.Times, 0)
	tr.Xs = append(tr.Xs, append([]float64(nil), x...))

	t := 0.0
	for _, seg := range segs {
		if x, t, err = e.runSegment(tr, x, t, seg.Until, seg.Dt); err != nil {
			return nil, err
		}
	}
	return tr, nil
}

// runSegment advances the transient to tstop with nominal step dt,
// appending snapshots to tr.
func (e *Engine) runSegment(tr *Tran, x []float64, t, tstop, dt float64) ([]float64, float64, error) {
	for t < tstop-1e-18 {
		step := dt
		if t+step > tstop {
			step = tstop - t
		}
		nx, err := e.tranStep(x, t, step)
		if err != nil {
			// Local refinement: substeps at step/2^k.
			solved := false
			for k := 1; k <= 6 && !solved; k++ {
				sub := step / math.Pow(2, float64(k))
				xs := append([]float64(nil), x...)
				tt := t
				okAll := true
				for i := 0; i < 1<<k; i++ {
					nxx, err2 := e.tranStep(xs, tt, sub)
					if err2 != nil {
						okAll = false
						break
					}
					xs = nxx
					tt += sub
				}
				if okAll {
					nx = xs
					solved = true
				}
			}
			if !solved {
				return nil, 0, fmt.Errorf("transient step at t=%g: %w", t, err)
			}
		}
		t += step
		x = nx
		tr.Times = append(tr.Times, t)
		tr.Xs = append(tr.Xs, append([]float64(nil), x...))
	}
	return x, t, nil
}

// tranStep advances one backward-Euler step of size dt from state x at
// time t, returning the state at t+dt.
func (e *Engine) tranStep(x []float64, t, dt float64) ([]float64, error) {
	nx, err := e.newton(x, x, netlist.Transient, t+dt, dt, e.Opt.Gmin, 1)
	if err == nil {
		return nx, nil
	}
	// One retry with elevated gmin, then polish.
	nx, err2 := e.newton(x, x, netlist.Transient, t+dt, dt, 1e-9, 1)
	if err2 != nil {
		return nil, err
	}
	if pol, err3 := e.newton(nx, x, netlist.Transient, t+dt, dt, e.Opt.Gmin, 1); err3 == nil {
		return pol, nil
	}
	return nx, nil
}
