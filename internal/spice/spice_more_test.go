package spice

import (
	"context"
	"math"
	"testing"

	"repro/internal/netlist"
)

func TestTransientScheduleSegments(t *testing.T) {
	b := netlist.NewBuilder()
	b.Vsrc("v1", "in", "0", netlist.PWL{T: []float64{0, 1e-9, 2e-3}, V: []float64{0, 1, 1}})
	b.R("r1", "in", "out", 1000)
	b.Cap("c1", "out", "0", 1e-6)
	e := New(b.C, DefaultOptions())
	tr, err := e.TransientSchedule(context.Background(), []TranSeg{
		{Until: 0.5e-3, Dt: 50e-6},
		{Until: 1.0e-3, Dt: 5e-6}, // fine mid-window
		{Until: 3.0e-3, Dt: 50e-6},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Spacing must actually change inside the fine window.
	var coarse, fine int
	for i := 1; i < tr.Len(); i++ {
		dt := tr.Times[i] - tr.Times[i-1]
		switch {
		case tr.Times[i] <= 0.5e-3 && dt > 40e-6:
			coarse++
		case tr.Times[i] > 0.5e-3 && tr.Times[i] <= 1.0e-3 && dt < 10e-6:
			fine++
		}
	}
	if coarse == 0 || fine == 0 {
		t.Fatalf("schedule not honoured: coarse=%d fine=%d", coarse, fine)
	}
	// Physics must still be right: v(3tau=3ms) ≈ 0.95.
	if v := tr.AtTime(3e-3).V("out"); v < 0.93 {
		t.Fatalf("v(3tau) = %g", v)
	}
}

func TestOPAtTimeDependentSource(t *testing.T) {
	b := netlist.NewBuilder()
	b.Vsrc("v1", "a", "0", netlist.PWL{T: []float64{0, 1}, V: []float64{0, 10}})
	b.R("r1", "a", "0", 1)
	e := New(b.C, DefaultOptions())
	at0, err := e.OPAt(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	at1, err := e.OPAt(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if at0.V("a") != 0 || math.Abs(at1.V("a")-10) > 1e-9 {
		t.Fatalf("OPAt: %g %g", at0.V("a"), at1.V("a"))
	}
}

func TestFloatingNodeSolvable(t *testing.T) {
	// A node connected only through a capacitor (floating in DC) must
	// not make the operating point singular.
	b := netlist.NewBuilder()
	b.Vsrc("v1", "a", "0", netlist.DC(5))
	b.R("r1", "a", "b", 1000)
	b.Cap("c1", "b", "float", 1e-12)
	sol, err := New(b.C, DefaultOptions()).OP(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v := sol.V("b"); math.Abs(v-5) > 1e-3 {
		t.Fatalf("b = %g", v)
	}
}

func TestCrossCoupledInverterPair(t *testing.T) {
	// A bistable: the DC OP finds a (meta)stable solution; with a seed
	// via a weak pull the transient settles to a valid state.
	b := netlist.NewBuilder()
	b.Vsrc("vdd", "vdd", "0", netlist.DC(5))
	b.PMOS("p1", "q", "qb", "vdd", "vdd", 4, 2)
	b.NMOS("n1", "q", "qb", "0", 2, 2)
	b.PMOS("p2", "qb", "q", "vdd", "vdd", 4, 2)
	b.NMOS("n2", "qb", "q", "0", 2, 2)
	b.R("seed", "q", "vdd", 100e3) // weak asymmetry to escape metastability
	e := New(b.C, DefaultOptions())
	tr, err := e.Transient(context.Background(), 200e-9, 0.2e-9)
	if err != nil {
		t.Fatal(err)
	}
	// Bistable: either stable state is legal; what matters is that the
	// pair settles to complementary logic levels, not the metastable
	// mid-point.
	q := tr.AtTime(200e-9).V("q")
	qb := tr.AtTime(200e-9).V("qb")
	hi, lo := math.Max(q, qb), math.Min(q, qb)
	if hi < 4.0 || lo > 1.0 {
		t.Fatalf("latch did not settle to complementary levels: q=%g qb=%g", q, qb)
	}
}

func TestSourceSteppingPath(t *testing.T) {
	// A stiff circuit starting far from the solution: several cascaded
	// high-gain stages with feedback. Mostly exercises the fallbacks.
	b := netlist.NewBuilder()
	b.Vsrc("vdd", "vdd", "0", netlist.DC(5))
	prev := "vdd"
	for i := 0; i < 6; i++ {
		out := nodeNameX(i)
		b.PMOS("p"+out, out, prev, "vdd", "vdd", 40, 1)
		b.NMOS("n"+out, out, prev, "0", 20, 1)
		prev = out
	}
	b.R("fb", prev, nodeNameX(0), 10e3)
	sol, err := New(b.C, DefaultOptions()).OP(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		v := sol.V(nodeNameX(i))
		if v < -0.1 || v > 5.1 {
			t.Fatalf("stage %d out of rails: %g", i, v)
		}
	}
}

func nodeNameX(i int) string { return "s" + string(rune('0'+i)) }

func TestTranAtTimeBoundaries(t *testing.T) {
	b := netlist.NewBuilder()
	b.Vsrc("v1", "a", "0", netlist.DC(1))
	b.R("r1", "a", "0", 1)
	tr, err := New(b.C, DefaultOptions()).Transient(context.Background(), 1e-6, 1e-7)
	if err != nil {
		t.Fatal(err)
	}
	if tr.AtTime(-1).V("a") != tr.At(0).V("a") {
		t.Fatal("before-start must clamp to first point")
	}
	if tr.AtTime(99).V("a") != tr.At(tr.Len()-1).V("a") {
		t.Fatal("after-end must clamp to last point")
	}
}

func TestNoConvergenceError(t *testing.T) {
	// Starve Newton of iterations: every fallback (gmin stepping, source
	// stepping) must also fail, and the error must say so.
	b := netlist.NewBuilder()
	b.Vsrc("vdd", "vdd", "0", netlist.DC(5))
	b.PMOS("mp", "out", "in", "vdd", "vdd", 20, 1)
	b.NMOS("mn", "out", "in", "0", 10, 1)
	b.R("fb", "out", "in", 10e3)
	opt := DefaultOptions()
	opt.MaxIter = 1
	e := New(b.C, opt)
	if _, err := e.OP(context.Background()); err == nil {
		t.Fatal("1-iteration Newton must fail")
	}
	// Transient with starved iterations fails through the refinement
	// ladder too.
	if _, err := e.Transient(context.Background(), 1e-9, 0.1e-9); err == nil {
		t.Fatal("starved transient must fail")
	}
}

func TestOPGminSteppingRecovers(t *testing.T) {
	// A high-gain feedback loop that plain Newton from zero may struggle
	// with; with full iterations the fallback ladder must deliver a
	// solution regardless of which rung succeeds.
	b := netlist.NewBuilder()
	b.Vsrc("vdd", "vdd", "0", netlist.DC(5))
	prev := "a0"
	b.Vsrc("vin", "a0", "0", netlist.DC(2.5))
	for i := 1; i <= 5; i++ {
		out := nodeNameX(i)
		b.PMOS("p"+out, out, prev, "vdd", "vdd", 60, 1)
		b.NMOS("n"+out, out, prev, "0", 30, 1)
		prev = out
	}
	sol, err := New(b.C, DefaultOptions()).OP(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Odd chain from mid-rail input: outputs at alternating rails.
	v := sol.V(nodeNameX(5))
	if v < -0.1 || v > 5.1 {
		t.Fatalf("out = %g", v)
	}
}

func TestVNodeGround(t *testing.T) {
	b := netlist.NewBuilder()
	b.Vsrc("v1", "a", "0", netlist.DC(1))
	b.R("r1", "a", "0", 1)
	sol, err := New(b.C, DefaultOptions()).OP(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sol.VNode(netlist.Ground) != 0 {
		t.Fatal("ground voltage must be 0")
	}
}

func TestACSolutionVGround(t *testing.T) {
	b := netlist.NewBuilder()
	b.Vsrc("v1", "a", "0", netlist.DC(1))
	b.R("r1", "a", "0", 1)
	e := New(b.C, DefaultOptions())
	op, _ := e.OP(context.Background())
	sols, err := e.AC(op, "v1", []float64{10})
	if err != nil {
		t.Fatal(err)
	}
	if sols[0].V("0") != 0 {
		t.Fatal("AC ground must be 0")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown AC node must panic")
		}
	}()
	_ = sols[0].V("zz")
}
