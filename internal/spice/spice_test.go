package spice

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/netlist"
)

func engineFor(b *netlist.Builder) *Engine {
	return New(b.C, DefaultOptions())
}

func TestResistorDividerOP(t *testing.T) {
	b := netlist.NewBuilder()
	b.Vsrc("v1", "in", "0", netlist.DC(10))
	b.R("r1", "in", "mid", 1000)
	b.R("r2", "mid", "0", 1000)
	sol, err := engineFor(b).OP(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v := sol.V("mid"); math.Abs(v-5) > 1e-6 {
		t.Fatalf("mid = %g, want 5", v)
	}
	// Supply delivers 10V across 2k = 5 mA.
	if i := sol.I("v1"); math.Abs(i-5e-3) > 1e-8 {
		t.Fatalf("I(v1) = %g, want 5e-3", i)
	}
}

func TestCurrentSourceOP(t *testing.T) {
	b := netlist.NewBuilder()
	b.Isrc("i1", "0", "a", netlist.DC(1e-3)) // pushes 1 mA into node a
	b.R("r1", "a", "0", 2000)
	sol, err := engineFor(b).OP(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v := sol.V("a"); math.Abs(v-2) > 1e-6 {
		t.Fatalf("a = %g, want 2", v)
	}
}

func TestCMOSInverterVTC(t *testing.T) {
	mk := func(vin float64) *Engine {
		b := netlist.NewBuilder()
		b.Vsrc("vdd", "vdd", "0", netlist.DC(5))
		b.Vsrc("vin", "in", "0", netlist.DC(vin))
		b.PMOS("mp", "out", "in", "vdd", "vdd", 20, 1)
		b.NMOS("mn", "out", "in", "0", 10, 1)
		return engineFor(b)
	}
	lo, err := mk(5).OP(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v := lo.V("out"); v > 0.05 {
		t.Fatalf("out(in=5) = %g, want ~0", v)
	}
	hi, err := mk(0).OP(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v := hi.V("out"); v < 4.95 {
		t.Fatalf("out(in=0) = %g, want ~5", v)
	}
	// Quiescent supply current of a static CMOS gate is (near) zero.
	if i := lo.I("vdd"); math.Abs(i) > 1e-8 {
		t.Fatalf("IDDQ = %g, want ~0", i)
	}
	// Mid-rail input: both devices on, out between rails, current flows.
	mid, err := mk(2.5).OP(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v := mid.V("out"); v < 0.5 || v > 4.5 {
		t.Fatalf("out(in=2.5) = %g", v)
	}
	if i := mid.I("vdd"); i < 1e-5 {
		t.Fatalf("crowbar current = %g, want substantial", i)
	}
}

func TestInverterVTCMonotone(t *testing.T) {
	prev := math.Inf(1)
	for vin := 0.0; vin <= 5.0; vin += 0.25 {
		b := netlist.NewBuilder()
		b.Vsrc("vdd", "vdd", "0", netlist.DC(5))
		b.Vsrc("vin", "in", "0", netlist.DC(vin))
		b.PMOS("mp", "out", "in", "vdd", "vdd", 20, 1)
		b.NMOS("mn", "out", "in", "0", 10, 1)
		sol, err := engineFor(b).OP(context.Background())
		if err != nil {
			t.Fatalf("vin=%g: %v", vin, err)
		}
		v := sol.V("out")
		if v > prev+1e-6 {
			t.Fatalf("VTC not monotone at vin=%g: %g > %g", vin, v, prev)
		}
		prev = v
	}
}

func TestBridgedShortFault(t *testing.T) {
	// A 0.2 Ω short (the paper's metal-short model) across the inverter
	// output to ground forces the output low and draws big current —
	// the canonical IDDQ detection mechanism.
	b := netlist.NewBuilder()
	b.Vsrc("vdd", "vdd", "0", netlist.DC(5))
	b.Vsrc("vin", "in", "0", netlist.DC(0)) // out should be high
	b.PMOS("mp", "out", "in", "vdd", "vdd", 20, 1)
	b.NMOS("mn", "out", "in", "0", 10, 1)
	b.R("fault", "out", "0", 0.2)
	sol, err := engineFor(b).OP(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v := sol.V("out"); v > 0.5 {
		t.Fatalf("shorted output = %g, want near 0", v)
	}
	if i := sol.I("vdd"); i < 1e-4 {
		t.Fatalf("fault current = %g, want elevated", i)
	}
}

func TestRCTransient(t *testing.T) {
	b := netlist.NewBuilder()
	// Delay > 0 so the t=0 operating point sees the pulse still low.
	b.Vsrc("v1", "in", "0", netlist.Pulse{V0: 0, V1: 1, Delay: 1e-9, Rise: 0, Width: 1, Fall: 0})
	b.R("r1", "in", "out", 1000)
	b.Cap("c1", "out", "0", 1e-6) // tau = 1 ms
	e := engineFor(b)
	tr, err := e.Transient(context.Background(), 3e-3, 20e-6)
	if err != nil {
		t.Fatal(err)
	}
	// After 1 tau: 63.2 %, after 3 tau: 95 %.
	v1 := tr.AtTime(1e-3).V("out")
	if math.Abs(v1-0.632) > 0.02 {
		t.Fatalf("v(tau) = %g, want ≈0.632", v1)
	}
	v3 := tr.AtTime(3e-3).V("out")
	if v3 < 0.94 {
		t.Fatalf("v(3tau) = %g, want ≈0.95", v3)
	}
	// Monotone rise.
	w := tr.V("out")
	for i := 1; i < len(w); i++ {
		if w[i] < w[i-1]-1e-9 {
			t.Fatal("RC charge must be monotone")
		}
	}
}

func TestTransientCapHoldsCharge(t *testing.T) {
	// Sample-and-hold: switch transistor charges a cap, then opens; the
	// cap must hold its voltage (this is what the comparator fault
	// simulation depends on).
	b := netlist.NewBuilder()
	b.Vsrc("vdd", "vdd", "0", netlist.DC(5))
	b.Vsrc("vin", "in", "0", netlist.DC(2))
	b.Vsrc("clk", "clk", "0", netlist.Pulse{V0: 5, V1: 0, Delay: 10e-9, Rise: 1e-9, Width: 1})
	b.NMOS("msw", "in", "clk", "hold", 10, 1)
	b.Cap("ch", "hold", "0", 1e-12)
	e := engineFor(b)
	tr, err := e.Transient(context.Background(), 100e-9, 0.5e-9)
	if err != nil {
		t.Fatal(err)
	}
	vHeld := tr.AtTime(99e-9).V("hold")
	if math.Abs(vHeld-2) > 0.05 {
		t.Fatalf("held voltage = %g, want ≈2", vHeld)
	}
}

func TestDiffPairSteering(t *testing.T) {
	// Classic balanced pair with resistor loads: input imbalance steers
	// the tail current and unbalances the outputs.
	mk := func(dv float64) *Engine {
		b := netlist.NewBuilder()
		b.Vsrc("vdd", "vdd", "0", netlist.DC(5))
		b.Vsrc("vp", "inp", "0", netlist.DC(2.5+dv/2))
		b.Vsrc("vn", "inn", "0", netlist.DC(2.5-dv/2))
		b.R("rl1", "vdd", "o1", 20e3)
		b.R("rl2", "vdd", "o2", 20e3)
		b.NMOS("m1", "o1", "inp", "tail", 20, 1)
		b.NMOS("m2", "o2", "inn", "tail", 20, 1)
		b.Isrc("it", "tail", "0", netlist.DC(100e-6))
		return engineFor(b)
	}
	bal, err := mk(0).OP(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if d := bal.V("o1") - bal.V("o2"); math.Abs(d) > 1e-3 {
		t.Fatalf("balanced offset = %g", d)
	}
	pos, err := mk(0.2).OP(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if d := pos.V("o1") - pos.V("o2"); d > -0.1 {
		t.Fatalf("steering: d = %g, want strongly negative", d)
	}
}

func TestOPConvergesOnStiffFault(t *testing.T) {
	// 0.2 Ω across the 5 V supply: a brutal but solvable system.
	b := netlist.NewBuilder()
	b.Vsrc("vdd", "vdd", "0", netlist.DC(5))
	b.R("rsupply", "vdd", "x", 10) // series limit
	b.R("fault", "x", "0", 0.2)
	b.PMOS("mp", "out", "x", "vdd", "vdd", 20, 1)
	b.NMOS("mn", "out", "x", "0", 10, 1)
	sol, err := engineFor(b).OP(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v := sol.V("x"); math.Abs(v-5*0.2/10.2) > 1e-3 {
		t.Fatalf("x = %g", v)
	}
}

func TestUnknownNodePanics(t *testing.T) {
	b := netlist.NewBuilder()
	b.Vsrc("v1", "a", "0", netlist.DC(1))
	b.R("r1", "a", "0", 1)
	sol, err := engineFor(b).OP(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("V on unknown node must panic")
		}
	}()
	_ = sol.V("nonexistent")
}

func TestUnknownVsrcPanics(t *testing.T) {
	b := netlist.NewBuilder()
	b.Vsrc("v1", "a", "0", netlist.DC(1))
	b.R("r1", "a", "0", 1)
	sol, err := engineFor(b).OP(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("I on unknown source must panic")
		}
	}()
	_ = sol.I("nope")
}

// Property: a chain of n equal resistors from V to ground divides the
// voltage evenly; node k sits at V*(n-k)/n.
func TestQuickResistorChain(t *testing.T) {
	f := func(nRaw, vRaw uint8) bool {
		n := int(nRaw%8) + 2
		v := float64(vRaw%10) + 1
		b := netlist.NewBuilder()
		b.Vsrc("v", "n0", "0", netlist.DC(v))
		for i := 0; i < n; i++ {
			b.R("r"+string(rune('a'+i)), nodeName(i), nodeName(i+1), 1000)
		}
		// Last node to ground:
		b.R("rend", nodeName(n), "0", 1e-6) // effectively ground tie
		sol, err := engineFor(b).OP(context.Background())
		if err != nil {
			return false
		}
		for k := 0; k <= n; k++ {
			want := v * float64(n-k) / float64(n)
			if math.Abs(sol.V(nodeName(k))-want) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func nodeName(i int) string {
	if i == 0 {
		return "n0"
	}
	return "n" + string(rune('0'+i))
}

func TestTranMeasurementHelpers(t *testing.T) {
	b := netlist.NewBuilder()
	b.Vsrc("v1", "a", "0", netlist.PWL{T: []float64{0, 1}, V: []float64{0, 1}})
	b.R("r1", "a", "0", 1)
	e := engineFor(b)
	tr, err := e.Transient(context.Background(), 1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() < 10 {
		t.Fatalf("Len = %d", tr.Len())
	}
	iw := tr.I("v1")
	if len(iw) != tr.Len() {
		t.Fatal("I length mismatch")
	}
	// Mean of v over [0.4, 0.6] ≈ 0.5.
	m := tr.MeanBetween(tr.V("a"), 0.4, 0.6)
	if math.Abs(m-0.5) > 0.06 {
		t.Fatalf("MeanBetween = %g", m)
	}
	if tr.MeanBetween(iw, 99, 100) != 0 {
		t.Fatal("empty window must return 0")
	}
}
