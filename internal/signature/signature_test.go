package signature

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVoltageSigStrings(t *testing.T) {
	want := map[VoltageSig]string{
		VSigNone:   "No deviations",
		VSigStuck:  "Output Stuck At",
		VSigOffset: "Offset (> 8mV)",
		VSigMixed:  "Mixed",
		VSigClock:  "Clock value",
	}
	for v, s := range want {
		if v.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(v), v.String(), s)
		}
	}
	if VoltageSig(42).String() == "" {
		t.Error("unknown sig")
	}
}

func TestCategory(t *testing.T) {
	if Category("ivdd.sample.lo") != "ivdd" {
		t.Fatal("prefix")
	}
	if Category("iddq") != "iddq" {
		t.Fatal("bare key")
	}
}

func TestResponseKeysSorted(t *testing.T) {
	r := &Response{Currents: map[string]float64{"b": 1, "a": 2}}
	ks := r.Keys()
	if len(ks) != 2 || ks[0] != "a" || ks[1] != "b" {
		t.Fatalf("Keys = %v", ks)
	}
}

func TestCompileMeanSigma(t *testing.T) {
	samples := []*Response{
		{Currents: map[string]float64{"ivdd.a": 1.0}},
		{Currents: map[string]float64{"ivdd.a": 2.0}},
		{Currents: map[string]float64{"ivdd.a": 3.0}},
	}
	g := Compile(samples, 3, 0)
	if math.Abs(g.Mean["ivdd.a"]-2.0) > 1e-12 {
		t.Fatalf("mean = %g", g.Mean["ivdd.a"])
	}
	if math.Abs(g.Sigma["ivdd.a"]-1.0) > 1e-12 {
		t.Fatalf("sigma = %g", g.Sigma["ivdd.a"])
	}
	if th := g.Threshold("ivdd.a"); math.Abs(th-3.0) > 1e-12 {
		t.Fatalf("threshold = %g", th)
	}
}

func TestCompileEmpty(t *testing.T) {
	g := Compile(nil, 3, 1e-6)
	if g.Threshold("anything") != 1e-6 {
		t.Fatal("floor must apply with no data")
	}
	if d := g.DetectedBy(&Response{Currents: map[string]float64{"ivdd.x": 1}}); len(d) != 0 {
		t.Fatal("unknown keys must not detect")
	}
}

func TestFloorDominates(t *testing.T) {
	samples := []*Response{
		{Currents: map[string]float64{"iddq.s": 1e-9}},
		{Currents: map[string]float64{"iddq.s": 1.1e-9}},
	}
	g := Compile(samples, 3, 1e-6)
	// 3σ would be tiny; the floor must win.
	if th := g.Threshold("iddq.s"); th != 1e-6 {
		t.Fatalf("threshold = %g, want floor 1e-6", th)
	}
}

func TestDetect(t *testing.T) {
	var samples []*Response
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		samples = append(samples, &Response{Currents: map[string]float64{
			"ivdd.sample.lo": 1e-3 + rng.NormFloat64()*1e-5,
			"iddq.sample.lo": 1e-9 + rng.NormFloat64()*1e-10,
			"iin.lo":         1e-6 + rng.NormFloat64()*1e-8,
		}})
	}
	g := Compile(samples, 3, 1e-7)
	// A response well inside the space: undetected.
	ok := &Response{Currents: map[string]float64{
		"ivdd.sample.lo": 1e-3, "iddq.sample.lo": 1e-9, "iin.lo": 1e-6,
	}}
	if ivdd, iddq, iin := g.Detect(ok); ivdd || iddq || iin {
		t.Fatal("nominal response must not be detected")
	}
	// IVdd way out.
	bad := &Response{Currents: map[string]float64{
		"ivdd.sample.lo": 5e-3, "iddq.sample.lo": 1e-9, "iin.lo": 1e-6,
	}}
	ivdd, iddq, iin := g.Detect(bad)
	if !ivdd || iddq || iin {
		t.Fatalf("detection = %v %v %v, want ivdd only", ivdd, iddq, iin)
	}
	// IDDQ above the floor.
	badQ := &Response{Currents: map[string]float64{
		"ivdd.sample.lo": 1e-3, "iddq.sample.lo": 1e-3, "iin.lo": 1e-6,
	}}
	if _, iddq, _ := g.Detect(badQ); !iddq {
		t.Fatal("elevated IDDQ must detect")
	}
}

// Property: Compile of constant samples yields zero sigma and mean equal
// to the constant; any deviation beyond the floor is detected.
func TestQuickCompileConstant(t *testing.T) {
	f := func(vRaw int16, n uint8) bool {
		v := float64(vRaw) / 1000
		count := int(n%20) + 2
		var samples []*Response
		for i := 0; i < count; i++ {
			samples = append(samples, &Response{Currents: map[string]float64{"ivdd.k": v}})
		}
		g := Compile(samples, 3, 1e-9)
		if math.Abs(g.Mean["ivdd.k"]-v) > 1e-12 || g.Sigma["ivdd.k"] > 1e-12 {
			return false
		}
		dev := &Response{Currents: map[string]float64{"ivdd.k": v + 1e-6}}
		return g.DetectedBy(dev)["ivdd"]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: detection is monotone — scaling a deviation up never turns a
// detected response into an undetected one.
func TestQuickDetectionMonotone(t *testing.T) {
	samples := []*Response{
		{Currents: map[string]float64{"ivdd.k": 0.9e-3}},
		{Currents: map[string]float64{"ivdd.k": 1.1e-3}},
	}
	g := Compile(samples, 3, 1e-8)
	f := func(dRaw int16, scaleRaw uint8) bool {
		d := float64(dRaw) / 1e6
		scale := 1 + float64(scaleRaw%10)
		small := &Response{Currents: map[string]float64{"ivdd.k": g.Mean["ivdd.k"] + d}}
		big := &Response{Currents: map[string]float64{"ivdd.k": g.Mean["ivdd.k"] + d*scale}}
		if g.DetectedBy(small)["ivdd"] && !g.DetectedBy(big)["ivdd"] {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
