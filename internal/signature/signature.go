// Package signature defines the macro-level fault signatures of the
// methodology: the voltage-signature categories of the paper's Table 2
// (Output Stuck-At, Offset, Mixed, Clock value, No deviation), the named
// current measurements of Table 3 (IVdd, IDDQ, Iinput per clock phase and
// input level), and the multi-dimensional good-signature space — the 3σ
// envelope of the fault-free circuit over process, supply, temperature and
// leakage variation — against which a faulty response must stand out to be
// detected.
package signature

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// VoltageSig is the macro-level voltage signature category (paper Table 2).
type VoltageSig int

const (
	// VSigNone: the response is indistinguishable from fault-free.
	VSigNone VoltageSig = iota
	// VSigStuck: the macro output is stuck at one value.
	VSigStuck
	// VSigOffset: the comparator trips at an offset > 8 mV (1 LSB).
	VSigOffset
	// VSigMixed: erratic behaviour — invalid levels, inverted decisions,
	// or simulator-diagnosed gross malfunction.
	VSigMixed
	// VSigClock: the macro behaves correctly but a clock-generator output
	// level deviates (faults on the clock distribution lines).
	VSigClock
	numVSigs
)

// NumVoltageSigs counts the categories.
const NumVoltageSigs = int(numVSigs)

// String implements fmt.Stringer with the paper's Table 2 row names.
func (v VoltageSig) String() string {
	switch v {
	case VSigNone:
		return "No deviations"
	case VSigStuck:
		return "Output Stuck At"
	case VSigOffset:
		return "Offset (> 8mV)"
	case VSigMixed:
		return "Mixed"
	case VSigClock:
		return "Clock value"
	}
	return fmt.Sprintf("VSig(%d)", int(v))
}

// Current-measurement key prefixes; the full key is e.g. "ivdd.sample.lo"
// (analog supply current, sampling phase, input below all references).
const (
	KeyIVdd   = "ivdd"
	KeyIDDQ   = "iddq"
	KeyIinput = "iin"
)

// Category extracts the detection-mechanism prefix of a measurement key.
func Category(key string) string {
	if i := strings.IndexByte(key, '.'); i >= 0 {
		return key[:i]
	}
	return key
}

// Response is a macro's complete simulated response to one (possibly
// absent) fault: the classified voltage signature plus every named current
// measurement.
type Response struct {
	// Voltage is the macro-level voltage signature.
	Voltage VoltageSig
	// OffsetV is the input-referred offset (comparator) or worst tap
	// deviation (ladder) in volts; meaningful when Voltage is VSigOffset
	// or VSigNone.
	OffsetV float64
	// StuckVal is the stuck decision (0/1) when Voltage is VSigStuck.
	StuckVal int
	// Currents holds the named current measurements in amperes.
	Currents map[string]float64
	// CommonMode marks a deviation shared by every instance of the macro
	// (e.g. a bias shift): it moves the whole transfer curve without
	// creating missing codes.
	CommonMode bool
	// MissingCode is the propagated circuit-edge voltage observation:
	// whether the fault causes the missing-code test to fail. Macros set
	// it by plugging their faulty behaviour into the high-level ADC
	// model (the paper's sensitisation/propagation step).
	MissingCode bool
	// SimError records an analysis failure (e.g. Newton breakdown with a
	// violent fault); such responses are classified VSigMixed upstream.
	// Excluded from JSON: error values do not round-trip, and the
	// classification it fed is already baked into Voltage.
	SimError error `json:"-"`
}

// Keys returns the sorted measurement keys.
func (r *Response) Keys() []string {
	out := make([]string, 0, len(r.Currents))
	for k := range r.Currents {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// GoodSpace is the fault-free envelope: per-measurement mean and standard
// deviation compiled from a Monte Carlo over environmental conditions
// (process, supply voltage, temperature — plus the flipflop leakage spread
// that dominates the sampling-phase IVdd bound before the DfT redesign).
type GoodSpace struct {
	Mean  map[string]float64
	Sigma map[string]float64
	// NSigma is the detection threshold multiple (3 in the paper).
	NSigma float64
	// FloorA is the measurement floor in amperes: deviations below it are
	// never considered detectable regardless of how small sigma is
	// (tester resolution).
	FloorA float64
}

// Compile builds a GoodSpace from fault-free Monte Carlo responses.
func Compile(samples []*Response, nSigma, floorA float64) *GoodSpace {
	g := &GoodSpace{
		Mean:   map[string]float64{},
		Sigma:  map[string]float64{},
		NSigma: nSigma,
		FloorA: floorA,
	}
	if len(samples) == 0 {
		return g
	}
	counts := map[string]int{}
	for _, s := range samples {
		for k, v := range s.Currents {
			g.Mean[k] += v
			counts[k]++
		}
	}
	for k := range g.Mean {
		g.Mean[k] /= float64(counts[k])
	}
	for _, s := range samples {
		for k, v := range s.Currents {
			d := v - g.Mean[k]
			g.Sigma[k] += d * d
		}
	}
	for k := range g.Sigma {
		if counts[k] > 1 {
			g.Sigma[k] = math.Sqrt(g.Sigma[k] / float64(counts[k]-1))
		} else {
			g.Sigma[k] = 0
		}
	}
	return g
}

// Threshold returns the detection threshold for measurement key k:
// max(NSigma·σ(k), FloorA).
func (g *GoodSpace) Threshold(k string) float64 {
	t := g.NSigma * g.Sigma[k]
	if t < g.FloorA {
		t = g.FloorA
	}
	return t
}

// DetectedBy returns, per mechanism category ("ivdd", "iddq", "iin"),
// whether the faulty response deviates from the good space by more than
// the threshold in any measurement of that category.
func (g *GoodSpace) DetectedBy(faulty *Response) map[string]bool {
	out := map[string]bool{}
	for k, v := range faulty.Currents {
		mean, ok := g.Mean[k]
		if !ok {
			continue
		}
		if math.Abs(v-mean) > g.Threshold(k) {
			out[Category(k)] = true
		}
	}
	return out
}

// Detect is a convenience wrapper returning the three standard mechanisms.
func (g *GoodSpace) Detect(faulty *Response) (ivdd, iddq, iin bool) {
	m := g.DetectedBy(faulty)
	return m[KeyIVdd], m[KeyIDDQ], m[KeyIinput]
}
