// Package kernelbench defines the analog-kernel benchmark suite in one
// place so it can run both under `go test -bench` (bench_test.go at the
// module root registers every case) and from cmd/benchkernel, which
// executes the same cases with testing.Benchmark and emits the
// machine-readable BENCH_kernel.json snapshot tracked in EXPERIMENTS.md.
//
// The cases cover the three altitudes of the hot path:
//
//   - solver: raw LU factor+solve at MNA-typical sizes
//   - op/tran: Engine.OPAt and Engine.Transient on CMOS circuits, with
//     the engine reused across iterations (the campaign's steady state)
//   - analyzeclass: one full fault-class analysis unit of the pipeline,
//     the quantum of work the parallel campaign schedules
//   - goodspace: the die-sharded good-signature-space Monte Carlo
//     compile, the pipeline's front-end prelude
package kernelbench

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/macros"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/solver"
	"repro/internal/spice"
)

// Case is one named kernel benchmark.
type Case struct {
	Name  string
	Bench func(b *testing.B)
}

// solverMatrix builds a deterministic well-conditioned dense test matrix
// (diagonally dominant, off-diagonals from a fixed linear congruence).
func solverMatrix(n int) *solver.Matrix {
	m := solver.NewMatrix(n)
	state := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			state = state*6364136223846793005 + 1442695040888963407
			v := float64(state>>40)/float64(1<<24) - 0.5
			m.Set(i, j, v)
		}
		m.Add(i, i, float64(n))
	}
	return m
}

// inverterChain builds a k-stage CMOS inverter chain driven by vdd (the
// BenchmarkAblationSolver circuit, kept here so solver- and engine-level
// numbers are measured on the same topology).
func inverterChain(k int) *netlist.Builder {
	bld := netlist.NewBuilder()
	bld.Vsrc("vdd", "vdd", "0", netlist.DC(5))
	in := "vdd"
	for i := 0; i < k; i++ {
		out := fmt.Sprintf("n%d", i)
		bld.PMOS(fmt.Sprintf("p%d", i), out, in, "vdd", "vdd", 8, 1)
		bld.NMOS(fmt.Sprintf("n%dm", i), out, in, "0", 4, 1)
		in = out
	}
	return bld
}

// pulseChain is the transient workload: a 8-stage inverter chain with its
// automatic gate/junction capacitors, kicked by a pulse.
func pulseChain() *netlist.Builder {
	bld := netlist.NewBuilder()
	bld.Vsrc("vdd", "vdd", "0", netlist.DC(5))
	bld.Vsrc("vin", "in", "0", netlist.Pulse{
		V0: 0, V1: 5, Delay: 10e-9, Rise: 1e-9, Fall: 1e-9, Width: 40e-9,
	})
	in := "in"
	for i := 0; i < 8; i++ {
		out := fmt.Sprintf("n%d", i)
		bld.PMOS(fmt.Sprintf("p%d", i), out, in, "vdd", "vdd", 8, 1)
		bld.NMOS(fmt.Sprintf("n%dm", i), out, in, "0", 4, 1)
		in = out
	}
	return bld
}

// analyzePipeline lazily builds (and warms) the shared pipeline for the
// AnalyzeClass case: the good space and nominal responses are compiled
// once, exactly as RunParallel warms them before scheduling class units.
var (
	analyzeOnce sync.Once
	analyzePipe *core.Pipeline
	analyzeErr  error
)

func analyzeSetup() (*core.Pipeline, error) {
	analyzeOnce.Do(func() {
		cfg := core.QuickConfig()
		cfg.MCSamples = 5
		analyzePipe = core.NewPipeline(cfg)
		if _, err := analyzePipe.GoodSpace(context.Background(), false); err != nil {
			analyzeErr = err
			return
		}
		_, analyzeErr = analyzePipe.AnalyzeClass(context.Background(), "ladder", ladderBridge(), false, false)
	})
	return analyzePipe, analyzeErr
}

// ladderBridge is the analysed class: the adjacent-tap ladder short of
// BenchmarkAblationBridgeResistance, a mid-detectability workhorse.
func ladderBridge() faults.Class {
	return faults.Class{
		Fault: faults.Fault{Kind: faults.Short, Nets: []string{"t096", "t128"}, Res: 25},
		Count: 1,
	}
}

// sumCounter folds one counter across every stage of an aggregator
// snapshot (checkout counters land in the inject stage, the goodspace
// cases' per-die counters in the goodspace stages).
func sumCounter(agg *obs.Agg, c obs.Counter) int64 {
	var n int64
	for _, st := range agg.Snapshot() {
		n += st.Counters[c.Name()]
	}
	return n
}

// Cases returns the kernel benchmark suite.
func Cases() []Case {
	return []Case{
		{Name: "solver/factor-solve-n32", Bench: func(b *testing.B) {
			m := solverMatrix(32)
			rhs := make([]float64, 32)
			for i := range rhs {
				rhs[i] = float64(i%7) - 3
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := solver.SolveSystem(m, rhs); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{Name: "op/inverter-chain-20", Bench: func(b *testing.B) {
			eng := spice.New(inverterChain(20).C, spice.DefaultOptions())
			if _, err := eng.OPAt(context.Background(), 0); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.OPAt(context.Background(), 0); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{Name: "tran/pulse-chain-100ns", Bench: func(b *testing.B) {
			eng := spice.New(pulseChain().C, spice.DefaultOptions())
			if _, err := eng.Transient(context.Background(), 100e-9, 0.5e-9); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Transient(context.Background(), 100e-9, 0.5e-9); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{Name: "tran/comparator-respond", Bench: func(b *testing.B) {
			m := macros.NewComparator(macros.DefaultVehicle())
			// The pool mirrors the campaign's steady state: the pipeline
			// owns one, so repeated fault-free responses reuse a warm
			// engine and only retune the input source.
			opt := macros.RespondOpts{Var: macros.Nominal(), CurrentsOnly: true,
				Pool: macros.NewEnginePool()}
			if _, err := m.Respond(context.Background(), nil, opt); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Respond(context.Background(), nil, opt); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{Name: "goodspace/quick-12-dies", Bench: func(b *testing.B) {
			// A fresh pipeline per iteration: GoodSpace caches its result,
			// so reuse would measure a map lookup. The worker count is left
			// automatic — the case tracks the sharded compile as shipped,
			// so on multi-core hardware its ns/op shows the die-sharding
			// win (on one core it matches the serial loop).
			cfg := core.QuickConfig() // 12 Monte Carlo dies
			if _, err := core.NewPipeline(cfg).GoodSpace(context.Background(), false); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.NewPipeline(cfg).GoodSpace(context.Background(), false); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{Name: "rank1/ladder-update", Bench: func(b *testing.B) {
			// The low-rank fault-update quantum: one faulted ladder solve
			// against the variation's shared nominal factorization. The
			// post-run counter assertions make this case a functional
			// guard as well as a timing one — if the fast path silently
			// starts falling back to the rebuild+refactor path, the case
			// fails rather than just slowing down.
			l := macros.NewLadder(macros.DefaultVehicle())
			met := &obs.Metrics{}
			opt := macros.RespondOpts{Var: macros.Nominal(),
				Base: macros.NewBaselines(), Metrics: met}
			f := &faults.Fault{Kind: faults.Short, Nets: []string{"t096", "t128"}, Res: 25}
			if _, err := l.Respond(context.Background(), f, opt); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.Respond(context.Background(), f, opt); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if n := met.Get(obs.CtrRank1Fallbacks); n != 0 {
				b.Fatalf("rank1_fallbacks = %d, want 0: the update path regressed to the rebuild path", n)
			}
			if n := met.Get(obs.CtrRank1Solves); n < int64(b.N) {
				b.Fatalf("rank1_solves = %d over %d timed ops", n, b.N)
			}
		}},
		{Name: "rank1/ladder-update-6bit", Bench: func(b *testing.B) {
			// The same fault-update quantum on the 6-bit vehicle (64
			// segments instead of 256): tracks how the kernel scales
			// with vehicle size, with the same fast-path guard.
			l := macros.NewLadder(macros.Vehicle{Bits: 6})
			met := &obs.Metrics{}
			opt := macros.RespondOpts{Var: macros.Nominal(),
				Base: macros.NewBaselines(), Metrics: met}
			f := &faults.Fault{Kind: faults.Short, Nets: []string{"t016", "t032"}, Res: 25}
			if _, err := l.Respond(context.Background(), f, opt); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.Respond(context.Background(), f, opt); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if n := met.Get(obs.CtrRank1Fallbacks); n != 0 {
				b.Fatalf("rank1_fallbacks = %d, want 0: the update path regressed to the rebuild path", n)
			}
			if n := met.Get(obs.CtrRank1Solves); n < int64(b.N) {
				b.Fatalf("rank1_solves = %d over %d timed ops", n, b.N)
			}
		}},
		{Name: "rebind/comparator-revalue", Bench: func(b *testing.B) {
			// The compile-once/revalue-many quantum: every iteration is a
			// full comparator response for a different Monte Carlo die,
			// served by the same pooled engine revalued in place.
			// Pre-rebind the pool keyed on the Variation, so a die change
			// meant a netlist rebuild and symbolic recompile per response;
			// the counter guard pins that the timed ops never take that
			// path anymore.
			m := macros.NewComparator(macros.DefaultVehicle())
			met := &obs.Metrics{}
			pool := macros.NewEnginePool()
			rng := rand.New(rand.NewSource(1))
			vars := make([]macros.Variation, 8)
			for i := range vars {
				vars[i] = macros.Draw(rng)
				for vars[i].FFLeakA <= 1e-9 { // keep one topology key
					vars[i] = macros.Draw(rng)
				}
			}
			opt := func(i int) macros.RespondOpts {
				return macros.RespondOpts{Var: vars[i%len(vars)], CurrentsOnly: true,
					Pool: pool, Metrics: met}
			}
			// Warm a full pass through the die cycle so the timed ops
			// measure the steady revalue path, not first-sight symbolic
			// learning — otherwise allocs/op depends on benchtime.
			for i := range vars {
				if _, err := m.Respond(context.Background(), nil, opt(i)); err != nil {
					b.Fatal(err)
				}
			}
			warm := met.Get(obs.CtrFullRebuilds)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Respond(context.Background(), nil, opt(i+1)); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if n := met.Get(obs.CtrFullRebuilds) - warm; n != 0 {
				b.Fatalf("full_rebuilds = %d during revalue-only iterations, want 0", n)
			}
			if n := met.Get(obs.CtrRebindHits); n < int64(b.N) {
				b.Fatalf("rebind_hits = %d over %d timed ops", n, b.N)
			}
		}},
		{Name: "rebind/dies-revalue", Bench: func(b *testing.B) {
			// The good-space compile with the die loop pinned serial: all
			// 12 quick-config dies run through one worker's private pool,
			// so die 0 compiles the engines and the remaining dies revalue
			// them in place. A fresh pipeline per op (GoodSpace memoises
			// its result); the guard pins that rebinds dominate rebuilds —
			// the per-die full-rebuild regime would fail it.
			cfg := core.QuickConfig()
			run := func() *obs.Agg {
				agg := obs.NewAgg()
				p := core.NewPipeline(cfg)
				p.GoodSpaceWorkers = 1
				p.Obs = obs.New(agg)
				if _, err := p.GoodSpace(context.Background(), false); err != nil {
					b.Fatal(err)
				}
				return agg
			}
			agg := run()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				agg = run()
			}
			b.StopTimer()
			rebinds := sumCounter(agg, obs.CtrRebindHits)
			rebuilds := sumCounter(agg, obs.CtrFullRebuilds)
			if rebinds <= rebuilds {
				b.Fatalf("rebind_hits (%d) must dominate full_rebuilds (%d) across the dies",
					rebinds, rebuilds)
			}
		}},
		{Name: "analyzeclass/ladder-bridge", Bench: func(b *testing.B) {
			p, err := analyzeSetup()
			if err != nil {
				b.Fatal(err)
			}
			c := ladderBridge()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.AnalyzeClass(context.Background(), "ladder", c, false, false); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}
}
