// Comparator walk-through: reproduce the paper's §3.2 — the complete
// defect-oriented test path for the comparator macro — showing the
// intermediate artefacts: the defect sprinkle, the collapsed fault
// classes, individual fault simulations with their signatures, and the
// detection verdicts.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/core"
	"repro/internal/defectsim"
	"repro/internal/faults"
	"repro/internal/macros"
	"repro/internal/process"
)

func main() {
	log.SetFlags(0)
	defects := flag.Int("defects", 12000, "defects to sprinkle")
	classes := flag.Int("classes", 30, "fault classes to analyse")
	flag.Parse()

	// Step 1+2: layout and defect simulation (the VLASIC equivalent).
	cmp := macros.NewComparator(macros.DefaultVehicle())
	cell := cmp.Layout(false)
	fmt.Printf("comparator layout: %d shapes over %.0f µm²\n", len(cell.Shapes), cell.Area())
	sim := defectsim.New(cell, process.Default())
	res, err := sim.Sprinkle(context.Background(), *defects, 1995)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sprinkled %d defects -> %d circuit-level faults (%.2f%%)\n",
		res.Defects, len(res.Faults), 100*res.FaultRate())

	// Step 3: fault collapsing.
	cls := faults.Collapse(res.Faults)
	fmt.Printf("collapsed into %d fault classes; the 10 most likely:\n", len(cls))
	for i, c := range cls {
		if i >= 10 {
			break
		}
		fmt.Printf("  %4d×  %s\n", c.Count, c.Fault)
	}
	fmt.Println()

	// Steps 4-7: fault model injection, fault simulation, signature
	// classification, propagation and detection — driven by the
	// pipeline so the good-signature space is compiled first.
	cfg := repro.QuickConfig()
	cfg.Defects = *defects
	cfg.MaxClassesPerMacro = *classes
	p := core.NewPipeline(cfg)
	run, err := p.RunMacro(context.Background(), "comparator", false)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("per-class verdicts for the %d most likely classes:\n", len(run.Cat))
	for _, a := range run.Cat {
		verdict := "UNDETECTED"
		switch {
		case a.Det.Voltage() && a.Det.Current():
			verdict = "voltage+current"
		case a.Det.Voltage():
			verdict = "voltage only"
		case a.Det.Current():
			verdict = "current only"
		}
		fmt.Printf("  %4d×  %-34s sig=%-16s -> %s\n",
			a.Class.Count, a.Class.Fault, a.Resp.Voltage, verdict)
	}
	fmt.Println()

	repro.PrintMacro(os.Stdout, run)
}
