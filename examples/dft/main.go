// DfT study: reproduce the paper's §3.4 — how the two design-for-test
// measures (flipflop redesign eliminating the sampling-phase leakage, and
// re-ordering of the near-identical bias lines) change fault
// detectability.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
	"repro/internal/core"
	"repro/internal/faults"
)

func main() {
	log.SetFlags(0)
	cfg := repro.QuickConfig()
	cfg.MCSamples = 25
	p := core.NewPipeline(cfg)

	// Effect 1: the flipflop leakage spread dominates the pre-DfT
	// sampling-phase IVdd bound.
	pre, err := p.GoodSpace(context.Background(), false)
	if err != nil {
		log.Fatal(err)
	}
	post, err := p.GoodSpace(context.Background(), true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("sampling-phase IVdd detection threshold (3σ):")
	fmt.Printf("  before DfT: %.2f mA   (flipflop leakage spread — paper: ~15 mA)\n",
		1e3*pre.Threshold("ivdd.samp.lo"))
	fmt.Printf("  after  DfT: %.2f mA\n\n", 1e3*post.Threshold("ivdd.samp.lo"))

	// Effect 2: the canonical hard fault — a short between the two
	// nearly identical bias lines.
	biasShort := faults.Class{
		Fault: faults.Fault{Kind: faults.Short, Nets: []string{"vbn1", "vbn2"}, Res: 0.2},
		Count: 1,
	}
	for _, dft := range []bool{false, true} {
		a, err := p.AnalyzeClass(context.Background(), "biasgen", biasShort, false, dft)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("short(vbn1,vbn2) with DfT=%v: signature=%v detected=%v\n",
			dft, a.Resp.Voltage, a.Det.Any())
	}
	fmt.Println("(the short itself stays undetectable — the DfT layout re-order means")
	fmt.Println(" defects land between n- and p-bias lines instead, which ARE detectable:)")
	npShort := faults.Class{
		Fault: faults.Fault{Kind: faults.Short, Nets: []string{"vbn1", "vbp1"}, Res: 0.2},
		Count: 1,
	}
	a, err := p.AnalyzeClass(context.Background(), "biasgen", npShort, false, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("short(vbn1,vbp1) with DfT=true: detected=%v (IVdd=%v missing-code=%v)\n\n",
		a.Det.Any(), a.Det.IVdd, a.Det.Missing)

	// Effect 3: how the bias-line adjacency changes the defect
	// statistics — compare the sprinkle on both layouts.
	for _, dft := range []bool{false, true} {
		run, err := p.RunMacro(context.Background(), "biasgen", dft)
		if err != nil {
			log.Fatal(err)
		}
		cov := repro.MacroCoverage(run, false)
		fmt.Printf("biasgen coverage with DfT=%v: %.1f%% (undetected %.1f%%)\n",
			dft, cov.Total(), cov.Undetected)
	}

	// Full-chip comparison on the comparator macro.
	fmt.Println()
	for _, dft := range []bool{false, true} {
		run, err := p.RunMacro(context.Background(), "comparator", dft)
		if err != nil {
			log.Fatal(err)
		}
		cov := repro.MacroCoverage(run, false)
		fmt.Printf("comparator coverage with DfT=%v: %.1f%%\n", dft, cov.Total())
	}
}
