// Quickstart: run the defect-oriented test methodology end-to-end on the
// comparator macro with a small configuration and print the headline
// detectability numbers.
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	log.SetFlags(0)

	// A small, fast configuration: a few thousand sprinkled defects, a
	// dozen Monte Carlo dies for the good-signature space, and the 25
	// most likely fault classes analysed.
	cfg := repro.QuickConfig()
	p := repro.NewPipeline(cfg)

	fmt.Println("running the defect-oriented test path for the comparator macro...")
	run, err := p.RunMacro("comparator", false)
	if err != nil {
		log.Fatal(err)
	}

	repro.PrintMacro(os.Stdout, run)

	s := repro.Fig3(run, false)
	fmt.Printf("headline: %.1f%% of comparator faults detected by the simple test\n", s.Covered)
	fmt.Printf("          %.1f%% only by current measurements (the paper's key claim)\n", s.CurrentOnly)
	fmt.Printf("test cost: %s\n", repro.DefaultTestPlan())
}
