// Ladder study: analyse the dual reference ladder macro — the paper found
// 99.8 % of its faults current-detectable — and demonstrate how ladder
// faults propagate to the converter's static performance (missing codes,
// INL/DNL).
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
	"repro/internal/adc"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/macros"
)

func main() {
	log.SetFlags(0)
	cfg := repro.QuickConfig()
	cfg.Defects = 20000
	cfg.MaxClassesPerMacro = 60
	p := core.NewPipeline(cfg)

	run, err := p.RunMacro(context.Background(), "ladder", false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ladder: %d classes from %d faults\n", len(run.Classes), run.TotalFaults)
	fmt.Printf("current-detectable: %.1f%% (paper: 99.8%%)\n",
		core.CurrentDetectability(run, false))
	cov := repro.MacroCoverage(run, false)
	fmt.Printf("overall coverage:   %.1f%%\n\n", cov.Total())

	// Show the characteristic fault classes of the serpentine layout.
	fmt.Println("characteristic fault behaviours:")
	cases := []struct {
		label string
		f     faults.Fault
	}{
		{"adjacent-tap short (1 LSB apart)",
			faults.Fault{Kind: faults.Short, Nets: []string{"t100", "t101"}, Res: 25}},
		{"cross-row short (32 taps apart)",
			faults.Fault{Kind: faults.Short, Nets: []string{"t096", "t128"}, Res: 25}},
		{"tap-to-substrate pinhole",
			faults.Fault{Kind: faults.ThickOxPinhole, Nets: []string{"t128", "vss"}}},
		{"string open",
			faults.Fault{Kind: faults.Open, Nets: []string{"t050"},
				FarTerminals: []faults.Terminal{{Device: "r050", Net: "t050"}}}},
	}
	for _, c := range cases {
		a, err := p.AnalyzeClass(context.Background(), "ladder", faults.Class{Fault: c.f, Count: 1}, false, false)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-34s missing-code=%-5v Iinput=%-5v worst tap dev=%.2f mV\n",
			c.label, a.Det.Missing, a.Det.Iin, 1e3*a.Resp.OffsetV)
	}
	fmt.Println()

	// Propagate a tap error into converter static performance.
	veh := macros.DefaultVehicle()
	a := adc.New(veh.Comparators(), macros.VRefLo, macros.VRefHi)
	lsb := veh.LSB()
	a.Taps[128] += 1.5 * lsb
	inl, dnl := a.INLDNL(macros.VRefLo, macros.VRefHi)
	res := a.MissingCodeTest(macros.VRefLo, macros.VRefHi, 1000)
	fmt.Printf("behavioural check: a 1.5 LSB tap error gives INL=%.2f LSB, DNL=%.2f LSB, %s\n",
		inl, dnl, res)
}
