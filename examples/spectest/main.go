// Specification-vs-defect-oriented comparison: the paper's motivating
// claim (§1, §4) is that the defect-oriented simple test achieves higher
// defect coverage at a fraction of the cost of specification-oriented
// (functional) testing. This example evaluates both tests over the same
// fault population.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
	"repro/internal/core"
	"repro/internal/spectest"
	"repro/internal/testgen"
)

func main() {
	log.SetFlags(0)
	cfg := repro.QuickConfig()
	cfg.Defects = 8000
	cfg.MaxClassesPerMacro = 40
	p := core.NewPipeline(cfg)

	fmt.Println("evaluating both test strategies over the sprinkled fault population...")
	run, err := p.Run(context.Background(), false)
	if err != nil {
		log.Fatal(err)
	}

	simple := testgen.Default()
	spec := spectest.DefaultPlan()
	cmp := core.CompareBaseline(run, simple.Total().Seconds(), spec.Total().Seconds())

	fmt.Println()
	fmt.Printf("defect-oriented simple test (missing-code + 6 current measurements):\n")
	fmt.Printf("  coverage %5.1f%%   test time %s\n", cmp.SimpleCoverage, simple.Total())
	fmt.Printf("specification-oriented baseline (histogram INL/DNL + offset/gain + FFT):\n")
	fmt.Printf("  coverage %5.1f%%   test time %s\n", cmp.SpecCoverage, spec.Total())
	fmt.Println()
	fmt.Printf("cost ratio: the specification test takes %.1f× longer\n",
		cmp.SpecTestSeconds/cmp.SimpleTestSeconds)
	fmt.Println()
	fmt.Println("why the specification test loses coverage: it observes only the")
	fmt.Println("transfer curve, so every fault whose sole symptom is an elevated")
	fmt.Println("IVdd/IDDQ/Iinput escapes it — exactly the population the paper found")
	fmt.Println("detectable only by current measurements.")

	// Quantify that escape population.
	g := core.Fig4(run, false)
	fmt.Printf("current-only detectable share of all faults: %.1f%%\n", g.CurrentOnly)
}
