#!/bin/sh
# Regenerates the full-fidelity pipeline artifacts that EXPERIMENTS.md
# quotes. They are deterministic at the default seed (1995) and take
# tens of minutes, so they are gitignored rather than tracked — run this
# from the repository root whenever you need them:
#
#	./scripts/fullrun.sh              # serial (the reference ordering)
#	WORKERS=4 ./scripts/fullrun.sh    # parallel, byte-identical output
#
# Produces:
#   full_run_output.txt  — the rendered tables and figures
#   full_run.json        — machine-readable summary, pre-DfT
#   full_run.json.dft    — machine-readable summary, post-DfT
set -eu

go run ./cmd/dotest -workers "${WORKERS:-1}" -json full_run.json \
	| tee full_run_output.txt
