#!/bin/sh
# Tier-1 verification recipe. Run from the repository root:
#
#	./scripts/tier1.sh           # full pass (includes -race and slow pipeline tests)
#	SHORT=1 ./scripts/tier1.sh   # faster iteration: -short skips the slow comparisons
#
# Stages:
#   1. gofmt -l        — formatting drift fails the build
#   2. grep-lint       — no context.TODO() / bare time.Now() in the
#                        deterministic pipeline paths, and no new bare
#                        256/NumComparators vehicle constants in
#                        internal/macros or internal/adc outside the
#                        vehicle spec, and no direct netlist.NewBuilder
#                        in internal/core (engines must come through
#                        the pool/rebind seam)
#   3. go build / vet  — compile + static checks, whole tree
#   4. staticcheck     — when the binary is on PATH (skipped with a notice
#                        otherwise; the container does not ship it)
#   5. go test (+race) — unit + integration tests, plus a -shuffle=on
#                        pass so test-order dependencies (easy to
#                        introduce around shared pipelines and caches)
#                        cannot hide behind the default ordering
#   6. bench smoke     — every benchmark runs once (-benchtime=1x) so the
#                        table/figure and kernel benchmarks cannot bit-rot
#   7. bench guard     — a fresh kernel-benchmark run is compared against
#                        the checked-in BENCH_kernel.json snapshot; only a
#                        >2x ns/op regression or an allocs/op increase
#                        beyond 0.1% (exactly zero for the deterministic
#                        kernel cases) fails, so machine noise passes but
#                        a reverted kernel optimisation does not
#   8. vehicle smoke   — a quick 6-bit campaign runs the full
#                        sprinkle→collapse→inject→classify→detect flow
#                        (runs under SHORT=1 too: it is the only stage
#                        covering a non-default vehicle end-to-end)
#   9. campaignd smoke — (skipped with SHORT=1) start the job server,
#                        submit a -quick job over HTTP, stream it to
#                        completion, verify the result bytes are
#                        identical to a direct `dotest -quick` run, and
#                        shut the daemon down with SIGTERM (exit 130)
#  10. campaignw smoke  — (skipped with SHORT=1) attach two campaignw
#                        remote workers to the same daemon, run a second
#                        -quick job with units leasing out over the
#                        remote protocol, verify the served bytes are
#                        again identical to the direct CLI run, and stop
#                        the workers with SIGTERM (exit 130)
set -eu

fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
	echo "gofmt: needs formatting:" >&2
	echo "$fmt" >&2
	exit 1
fi

# Grep-lint: the deterministic pipeline must stay reproducible. A
# context.TODO() marks an unthreaded context (the API takes ctx
# everywhere now), and a bare time.Now() leaks wall-clock state into
# results. Wall-clock use is legitimate only in the observability and
# campaign-metrics layers (span timestamps, run wall time), the job
# server (lease deadlines and worker liveness are wall-clock state by
# design, and never flow into results) and in CLIs / tests, so those
# are excluded. internal/worker stays IN scope: the remote worker
# executes pipeline units and must stay wall-clock-free outside
# tickers/timers, or remote results could diverge from local ones.
lint=$(grep -rn --include='*.go' \
	--exclude='*_test.go' \
	--exclude-dir=obs --exclude-dir=campaign --exclude-dir=jobserver \
	-e 'context\.TODO()' -e 'time\.Now()' \
	internal/ repro.go 2>/dev/null || true)
if [ -n "$lint" ]; then
	echo "grep-lint: forbidden context.TODO()/time.Now() in deterministic pipeline paths:" >&2
	echo "$lint" >&2
	exit 1
fi

# Vehicle-constant lint: the resolution-dependent sizes derive from
# macros.Vehicle; a fresh bare 256 (or a resurrected NumComparators)
# in the macro or behavioural-ADC layers would silently pin a consumer
# back to the 8-bit case. The spec itself and tests are excluded.
vlint=$(grep -rn --include='*.go' 	--exclude='*_test.go' --exclude='vehicle.go' 	-e '\b256\b' -e 'NumComparators' 	internal/macros/ internal/adc/ 2>/dev/null || true)
if [ -n "$vlint" ]; then
	echo "grep-lint: bare 256/NumComparators in vehicle-parameterised layers (use macros.Vehicle):" >&2
	echo "$vlint" >&2
	exit 1
fi

# Rebind-seam lint: the per-die loops in internal/core must obtain
# engines through the macro pool/rebind seam (macros.Respond* with a
# shared EnginePool), never by compiling a netlist directly. A direct
# netlist.NewBuilder call in core would bypass the compile-once cache
# and silently reintroduce the per-die rebuild cost. Tests are
# excluded (they may build reference engines on purpose).
rlint=$(grep -rn --include='*.go' --exclude='*_test.go' \
	-e 'netlist\.NewBuilder' \
	internal/core/ 2>/dev/null || true)
if [ -n "$rlint" ]; then
	echo "grep-lint: direct netlist.NewBuilder in internal/core (use the macro pool/rebind seam):" >&2
	echo "$rlint" >&2
	exit 1
fi

short=${SHORT:+-short}

go build ./...
go vet ./...

if command -v staticcheck >/dev/null 2>&1; then
	staticcheck ./...
else
	echo "tier1: staticcheck not found, skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"
fi
go test $short ./...
go test $short -shuffle=on ./...
go test $short -race ./...
go test -bench=. -benchtime=1x ./...
go run ./cmd/benchkernel -benchtime 100ms -check BENCH_kernel.json

# Vehicle smoke: the non-default 6-bit vehicle must complete the whole
# methodology (layout → sprinkle → collapse → inject → classify →
# detect). Quick config, pre-DfT only, classes capped — this is a
# does-it-run gate, not a coverage measurement. Kept under SHORT=1: no
# other stage exercises a non-default vehicle end-to-end.
go run ./cmd/dotest -quick -bits 6 -dft pre -maxclasses 4 >/dev/null
echo "tier1: 6-bit vehicle smoke passed"

# Campaignd smoke: the service path must be byte-identical to the CLI.
# A job submitted over HTTP runs the same quick configuration as a
# direct dotest run; the served result bytes must match exactly, and a
# SIGTERM must drain the daemon to the conventional exit status 130.
if [ -z "${SHORT:-}" ]; then
	tmp=$(mktemp -d)
	trap 'rm -rf "$tmp"' EXIT
	go build -o "$tmp/dotest" ./cmd/dotest
	go build -o "$tmp/campaignd" ./cmd/campaignd
	go build -o "$tmp/campaignctl" ./cmd/campaignctl

	"$tmp/dotest" -quick -dft pre -workers 0 -json "$tmp/ref.json" >/dev/null

	"$tmp/campaignd" -addr 127.0.0.1:0 -addrfile "$tmp/addr" -store "$tmp/ckpts" &
	dpid=$!
	i=0
	while [ ! -s "$tmp/addr" ]; do
		i=$((i + 1))
		if [ "$i" -gt 1000 ]; then
			echo "campaignd smoke: daemon never wrote its address" >&2
			kill "$dpid" 2>/dev/null || true
			exit 1
		fi
		sleep 0.01
	done
	addr="http://$(cat "$tmp/addr")"

	id=$("$tmp/campaignctl" -server "$addr" submit -quick -dft pre -wait)
	"$tmp/campaignctl" -server "$addr" result "$id" -dft pre -o "$tmp/srv.json"
	cmp "$tmp/ref.json" "$tmp/srv.json"

	# Campaignw smoke: the remote-worker path must also be byte-identical.
	# Two workers attach to the daemon; a second job (different seed, so it
	# cannot dedup onto the finished one) runs with units leasing out over
	# the remote protocol, and the served bytes must again match the direct
	# CLI run exactly. The workers are parked before submission so units
	# demonstrably lease out; the Go tests assert remote participation,
	# this stage asserts the end-to-end binaries and byte-identity.
	go build -o "$tmp/campaignw" ./cmd/campaignw
	"$tmp/dotest" -quick -dft pre -seed 7 -workers 0 -json "$tmp/ref2.json" >/dev/null

	"$tmp/campaignw" -addr "$addr" -id smoke-w1 -wait 2s &
	wpid1=$!
	"$tmp/campaignw" -addr "$addr" -id smoke-w2 -wait 2s &
	wpid2=$!
	i=0
	while [ "$("$tmp/campaignctl" -server "$addr" workers | grep -c 'waiting for work')" -lt 2 ]; do
		i=$((i + 1))
		if [ "$i" -gt 1000 ]; then
			echo "campaignw smoke: workers never parked" >&2
			kill "$wpid1" "$wpid2" "$dpid" 2>/dev/null || true
			exit 1
		fi
		sleep 0.01
	done

	id2=$("$tmp/campaignctl" -server "$addr" submit -quick -dft pre -seed 7 -wait)
	"$tmp/campaignctl" -server "$addr" result "$id2" -dft pre -o "$tmp/srv2.json"
	cmp "$tmp/ref2.json" "$tmp/srv2.json"
	"$tmp/campaignctl" -server "$addr" workers >&2

	for wpid in "$wpid1" "$wpid2"; do
		kill -TERM "$wpid"
		set +e
		wait "$wpid"
		status=$?
		set -e
		if [ "$status" -ne 130 ]; then
			echo "campaignw smoke: worker exited $status, want 130" >&2
			exit 1
		fi
	done
	echo "tier1: campaignw smoke passed (remote workers byte-identical to dotest)"

	kill -TERM "$dpid"
	set +e
	wait "$dpid"
	status=$?
	set -e
	if [ "$status" -ne 130 ]; then
		echo "campaignd smoke: daemon exited $status, want 130" >&2
		exit 1
	fi
	echo "tier1: campaignd smoke passed (byte-identical to dotest)"
fi

echo "tier1: all stages passed"
