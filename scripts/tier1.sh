#!/bin/sh
# Tier-1 verification recipe. Run from the repository root:
#
#	./scripts/tier1.sh           # full pass (includes -race and slow pipeline tests)
#	SHORT=1 ./scripts/tier1.sh   # faster iteration: -short skips the slow comparisons
#
# Stages:
#   1. gofmt -l        — formatting drift fails the build
#   2. grep-lint       — no context.TODO() / bare time.Now() in the
#                        deterministic pipeline paths
#   3. go build / vet  — compile + static checks, whole tree
#   4. staticcheck     — when the binary is on PATH (skipped with a notice
#                        otherwise; the container does not ship it)
#   5. go test (+race) — unit + integration tests, plus a -shuffle=on
#                        pass so test-order dependencies (easy to
#                        introduce around shared pipelines and caches)
#                        cannot hide behind the default ordering
#   6. bench smoke     — every benchmark runs once (-benchtime=1x) so the
#                        table/figure and kernel benchmarks cannot bit-rot
#   7. bench guard     — a fresh kernel-benchmark run is compared against
#                        the checked-in BENCH_kernel.json snapshot; only a
#                        >2x ns/op regression or an allocs/op increase
#                        beyond 0.1% (exactly zero for the deterministic
#                        kernel cases) fails, so machine noise passes but
#                        a reverted kernel optimisation does not
set -eu

fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
	echo "gofmt: needs formatting:" >&2
	echo "$fmt" >&2
	exit 1
fi

# Grep-lint: the deterministic pipeline must stay reproducible. A
# context.TODO() marks an unthreaded context (the API takes ctx
# everywhere now), and a bare time.Now() leaks wall-clock state into
# results. Wall-clock use is legitimate only in the observability and
# campaign-metrics layers (span timestamps, run wall time) and in CLIs /
# tests, so those are excluded.
lint=$(grep -rn --include='*.go' \
	--exclude='*_test.go' \
	--exclude-dir=obs --exclude-dir=campaign \
	-e 'context\.TODO()' -e 'time\.Now()' \
	internal/ repro.go 2>/dev/null || true)
if [ -n "$lint" ]; then
	echo "grep-lint: forbidden context.TODO()/time.Now() in deterministic pipeline paths:" >&2
	echo "$lint" >&2
	exit 1
fi

short=${SHORT:+-short}

go build ./...
go vet ./...

if command -v staticcheck >/dev/null 2>&1; then
	staticcheck ./...
else
	echo "tier1: staticcheck not found, skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"
fi
go test $short ./...
go test $short -shuffle=on ./...
go test $short -race ./...
go test -bench=. -benchtime=1x ./...
go run ./cmd/benchkernel -benchtime 100ms -check BENCH_kernel.json

echo "tier1: all stages passed"
