#!/bin/sh
# Tier-1 verification recipe. Run from the repository root:
#
#	./scripts/tier1.sh           # full pass (includes -race and slow pipeline tests)
#	SHORT=1 ./scripts/tier1.sh   # faster iteration: -short skips the slow comparisons
#
# Stages:
#   1. gofmt -l        — formatting drift fails the build
#   2. go build / vet  — compile + static checks, whole tree
#   3. go test (+race) — unit + integration tests
#   4. bench smoke     — every benchmark runs once (-benchtime=1x) so the
#                        table/figure and kernel benchmarks cannot bit-rot
set -eu

fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
	echo "gofmt: needs formatting:" >&2
	echo "$fmt" >&2
	exit 1
fi

short=${SHORT:+-short}

go build ./...
go vet ./...
go test $short ./...
go test $short -race ./...
go test -bench=. -benchtime=1x ./...

echo "tier1: all stages passed"
