package repro_test

import (
	"bytes"
	"strings"
	"testing"

	"repro"
)

// TestPublicAPIQuick exercises the whole public surface end-to-end on the
// comparator macro with the quick configuration.
func TestPublicAPIQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the analog fault simulator for a few seconds")
	}
	cfg := repro.QuickConfig()
	cfg.MaxClassesPerMacro = 10
	p := repro.NewPipeline(cfg)
	run, err := p.RunMacro("comparator", false)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Cat) == 0 {
		t.Fatal("no analyses")
	}
	s := repro.Fig3(run, false)
	if s.Covered <= 0 || s.Covered > 100 {
		t.Fatalf("coverage = %g", s.Covered)
	}
	cov := repro.MacroCoverage(run, false)
	if cov.Total() <= 0 {
		t.Fatalf("macro coverage = %+v", cov)
	}
	var buf bytes.Buffer
	repro.PrintMacro(&buf, run)
	out := buf.String()
	for _, want := range []string{"Table 1", "Table 2", "Table 3", "Fig 3", "Short"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	plan := repro.DefaultTestPlan()
	if plan.Total() <= 0 {
		t.Fatal("test plan")
	}
}

// TestConfigsExposed checks the exported configuration constructors.
func TestConfigsExposed(t *testing.T) {
	if repro.DefaultConfig().Defects != 25000 {
		t.Fatal("default discovery sprinkle must match the paper's 25k")
	}
	if repro.QuickConfig().Defects >= repro.DefaultConfig().Defects {
		t.Fatal("quick config must be smaller")
	}
}
