package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// The daemon tests re-execute this test binary as a campaignd child
// (run() is main minus os.Exit), deliver real signals, and assert the
// service contract: a SIGTERM drains live jobs, flushes checkpoints and
// exits 130 — the same graceful-shutdown status the CLIs use.
func TestMain(m *testing.M) {
	if os.Getenv("CAMPAIGND_TEST_CHILD") == "1" {
		// run() parses os.Args; the parent passed the daemon flags.
		os.Exit(run())
	}
	os.Exit(m.Run())
}

// startDaemon launches a campaignd child on a free port and waits for
// its resolved address.
func startDaemon(t *testing.T, extra ...string) (*exec.Cmd, string) {
	t.Helper()
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	args := append([]string{"-addr", "127.0.0.1:0", "-addrfile", addrFile}, extra...)
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "CAMPAIGND_TEST_CHILD=1")
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if data, err := os.ReadFile(addrFile); err == nil && len(data) > 0 {
			return cmd, "http://" + strings.TrimSpace(string(data))
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatal("daemon never wrote its address file")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// exitCode waits for the child and returns its exit status.
func exitCode(t *testing.T, cmd *exec.Cmd, timeout time.Duration) int {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err == nil {
			return 0
		}
		var ee *exec.ExitError
		if ok := asExitError(err, &ee); ok {
			return ee.ExitCode()
		}
		t.Fatalf("wait: %v", err)
	case <-time.After(timeout):
		cmd.Process.Kill()
		<-done
		t.Fatal("daemon did not exit in time")
	}
	panic("unreachable")
}

func asExitError(err error, target **exec.ExitError) bool {
	ee, ok := err.(*exec.ExitError)
	if ok {
		*target = ee
	}
	return ok
}

// TestSigtermDrainsAndExits130: the daemon serves, accepts a job,
// and on SIGTERM cancels it, flushes its checkpoint to the store and
// exits with status 130.
func TestSigtermDrainsAndExits130(t *testing.T) {
	if testing.Short() {
		t.Skip("starts a real daemon and campaign")
	}
	store := t.TempDir()
	cmd, base := startDaemon(t, "-store", store, "-budget", "2")

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		cmd.Process.Kill()
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	// A small real job, interrupted mid-run by the shutdown.
	spec := []byte(`{"quick":true,"defects":400,"mc_samples":3,"max_classes_per_macro":1,"skip_non_cat":true,"dft":"pre"}`)
	resp, err = http.Post(base+"/api/v1/jobs", "application/json", bytes.NewReader(spec))
	if err != nil {
		cmd.Process.Kill()
		t.Fatal(err)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil || sub.ID == "" {
		t.Fatalf("submit: %v (%+v)", err, sub)
	}
	resp.Body.Close()

	// Let the run start some real work, then stop the service.
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(fmt.Sprintf("%s/api/v1/jobs/%s", base, sub.ID))
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			Progress map[string]struct{ Completed int } `json:"progress"`
		}
		json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if st.Progress["pre"].Completed >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job made no progress")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := exitCode(t, cmd, 90*time.Second); code != 130 {
		t.Fatalf("exit code %d, want 130", code)
	}

	// The interrupted job left a resumable checkpoint in the store.
	entries, err := os.ReadDir(store)
	if err != nil || len(entries) == 0 {
		t.Fatalf("no checkpoint in the store after drain: %v, %d entries", err, len(entries))
	}
}
