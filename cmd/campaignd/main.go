// Command campaignd serves the defect-oriented test methodology as a
// multi-tenant campaign job server. Clients POST a job spec (the JSON
// mirror of the dotest/campaign CLI flags) and get back a job id;
// progress streams as SSE or JSONL; results are the exact bytes
// `dotest -json` writes for the same parameters. Identical submissions
// dedup into a single run, concurrent jobs share a bounded global
// worker budget fairly, and with -store the checkpoints survive daemon
// restarts: resubmitting a job that died with the daemon resumes it.
//
// Usage:
//
//	campaignd [-addr host:port] [-addrfile file] [-store dir]
//	          [-objstore URL] [-budget N] [-grace dur]
//	          [-remoteslots N] [-leasettl dur]
//
// Remote campaignw workers connect over the lease protocol and add
// execution capacity beyond -budget: up to -remoteslots units at a time
// are leased out to parked workers, heartbeat-renewed, and re-queued
// locally if a worker goes silent for -leasettl. -objstore replaces the
// directory checkpoint store with an HTTP object bucket (see the
// README's "Scaling out across machines"), so a daemon restarted on a
// different machine still resumes its jobs.
//
// See the README's "Running as a service" section for the HTTP API and
// cmd/campaignctl for the matching client.
//
// SIGINT or SIGTERM begins a graceful shutdown: live jobs are
// cancelled — the cancellation reaches into the analog kernel's
// Newton/transient loops, so even a job mid-solve aborts in bounded
// time — checkpoints flush, open event streams close with a terminal
// state, and the process exits with status 130. A second signal
// force-quits. -grace bounds how long the drain may take.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/campaign"
	"repro/internal/jobserver"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("campaignd: ")
	os.Exit(run())
}

// run is main without os.Exit, so the shutdown paths are testable and
// deferred cleanups actually run.
func run() int {
	var (
		addr        = flag.String("addr", "127.0.0.1:8120", "listen address (host:port; port 0 picks a free port)")
		addrFile    = flag.String("addrfile", "", "write the resolved listen address to this file (for scripts using port 0)")
		storeDir    = flag.String("store", "", "checkpoint directory; \"\" disables checkpoint/resume")
		objStore    = flag.String("objstore", "", "checkpoint object-bucket base URL (overrides -store)")
		budget      = flag.Int("budget", 0, "global worker budget shared across jobs (0 = GOMAXPROCS)")
		remoteSlots = flag.Int("remoteslots", 0, "units leasable to remote campaignw workers at a time (0 = default, negative disables)")
		leaseTTL    = flag.Duration("leasettl", 0, "remote lease lifetime between heartbeats (0 = default)")
		grace       = flag.Duration("grace", 60*time.Second, "graceful-shutdown budget for draining jobs")
	)
	flag.Parse()

	opts := jobserver.Options{
		Budget:      *budget,
		RemoteSlots: *remoteSlots,
		LeaseTTL:    *leaseTTL,
		Logf:        log.Printf,
	}
	if *storeDir != "" {
		opts.Store = campaign.DirStore{Dir: *storeDir}
	}
	if *objStore != "" {
		opts.Store = campaign.NewHTTPObjectStore(*objStore)
	}
	srv := jobserver.New(opts)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Print(err)
		return 1
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			log.Print(err)
			return 1
		}
	}
	hs := &http.Server{Handler: srv.Handler()}

	// The first SIGINT/SIGTERM starts the graceful drain; stop() runs
	// the moment the context fires, restoring the default handler so a
	// second signal force-quits a wedged shutdown.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	log.Printf("listening on %s (budget %d, store %q)", ln.Addr(), *budget, *storeDir)

	select {
	case err := <-serveErr:
		log.Print(err)
		return 1
	case <-ctx.Done():
	}
	stop()
	log.Printf("shutting down: draining jobs (budget %s)", *grace)

	dctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	// Order matters: cancel the jobs first so SSE watchers receive their
	// terminal state and disconnect, then drain the HTTP server — open
	// event streams would otherwise hold Shutdown until the deadline.
	if err := srv.Shutdown(dctx); err != nil {
		log.Printf("job drain: %v", err)
	}
	if err := hs.Shutdown(dctx); err != nil {
		log.Printf("http drain: %v", err)
		hs.Close()
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Print(err)
	}
	log.Print("checkpoints flushed; bye")
	return 130
}
