// Command benchkernel runs the analog-kernel benchmark suite of
// internal/kernelbench outside the `go test` harness and writes a
// machine-readable snapshot, BENCH_kernel.json by default. The same cases
// are registered as BenchmarkKernel/* sub-benchmarks at the module root,
// so `go test -bench 'Kernel/'` measures the identical workloads; this
// command exists so campaign drivers and CI can archive the numbers
// without parsing bench output.
//
// Usage:
//
//	benchkernel [-o BENCH_kernel.json] [-benchtime 1s] [-v]
//	benchkernel -check BENCH_kernel.json [-benchtime 100ms]
//
// With -check the suite runs and is compared against the checked-in
// snapshot instead of writing one: the command fails only on a more than
// 2x ns/op regression or on an allocs/op increase beyond 0.1% (exactly
// zero for the kernel cases, whose counts are deterministic), thresholds
// loose enough that machine noise passes but a lost optimisation does
// not.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/kernelbench"
)

// Result is one benchmark measurement of the snapshot.
type Result struct {
	Name     string  `json:"name"`
	N        int     `json:"n"`
	NsPerOp  float64 `json:"ns_per_op"`
	AllocsOp int64   `json:"allocs_per_op"`
	BytesOp  int64   `json:"bytes_per_op"`
}

// Snapshot is the BENCH_kernel.json schema.
type Snapshot struct {
	GoVersion  string   `json:"go_version"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	BenchTime  string   `json:"benchtime"`
	Results    []Result `json:"results"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchkernel: ")
	testing.Init() // registers test.* flags so test.benchtime resolves
	var (
		out       = flag.String("o", "BENCH_kernel.json", "output file (\"-\" for stdout)")
		benchtime = flag.Duration("benchtime", time.Second, "minimum run time per case")
		verbose   = flag.Bool("v", false, "log each case as it completes")
		check     = flag.String("check", "", "compare against this snapshot instead of writing one")
	)
	flag.Parse()

	// testing.Benchmark honours the package-level benchtime flag.
	if err := flag.CommandLine.Lookup("test.benchtime").Value.Set(benchtime.String()); err != nil {
		log.Fatal(err)
	}

	snap := Snapshot{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		BenchTime:  benchtime.String(),
	}
	for _, c := range kernelbench.Cases() {
		r := testing.Benchmark(c.Bench)
		if r.N == 0 {
			// testing.Benchmark returns a zero result when the case
			// called b.Fatal — e.g. the rank1 case's counter assertions.
			log.Fatalf("%s: benchmark failed (see output above)", c.Name)
		}
		res := Result{
			Name:     c.Name,
			N:        r.N,
			NsPerOp:  float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsOp: r.AllocsPerOp(),
			BytesOp:  r.AllocedBytesPerOp(),
		}
		snap.Results = append(snap.Results, res)
		if *verbose {
			log.Printf("%-28s %12.0f ns/op %8d B/op %6d allocs/op",
				res.Name, res.NsPerOp, res.BytesOp, res.AllocsOp)
		}
	}

	if *check != "" {
		if err := checkAgainst(*check, snap.Results); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("bench guard: %d cases within bounds of %s\n", len(snap.Results), *check)
		return
	}

	data, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

// maxNsRegression is the ns/op regression factor the guard tolerates.
// Run-to-run noise on a loaded machine stays well under 2x; a reverted
// kernel optimisation (the sparse factorisation alone is worth more than
// that on the analyzeclass case) does not.
const maxNsRegression = 2.0

// checkAgainst compares fresh results to the snapshot at path. A case
// fails on a more than maxNsRegression ns/op slowdown or on an
// allocs/op increase beyond 0.1% of the snapshot. Kernel-level
// allocation counts are deterministic per op — for them the slack
// rounds to zero and any increase is a real regression — while
// whole-pipeline cases (goodspace compiles a fresh pipeline per op,
// ~1.4M allocs) jitter a few hundred allocs between runs from scheduler
// and map-growth amortisation. Cases on only one side are reported but
// do not fail (the suite grows over time; the snapshot is regenerated
// whenever it does).
func checkAgainst(path string, fresh []Result) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	base := map[string]Result{}
	for _, r := range snap.Results {
		base[r.Name] = r
	}
	var failed bool
	for _, r := range fresh {
		b, ok := base[r.Name]
		if !ok {
			log.Printf("%-28s not in snapshot, skipping", r.Name)
			continue
		}
		delete(base, r.Name)
		status := "ok"
		if r.NsPerOp > b.NsPerOp*maxNsRegression {
			status = fmt.Sprintf("FAIL: ns/op regressed %.2fx (limit %gx)",
				r.NsPerOp/b.NsPerOp, maxNsRegression)
			failed = true
		}
		if r.AllocsOp > b.AllocsOp+b.AllocsOp/1000 {
			status = fmt.Sprintf("FAIL: allocs/op %d -> %d", b.AllocsOp, r.AllocsOp)
			failed = true
		}
		log.Printf("%-28s %12.0f ns/op (snap %12.0f) %6d allocs/op (snap %6d)  %s",
			r.Name, r.NsPerOp, b.NsPerOp, r.AllocsOp, b.AllocsOp, status)
	}
	for name := range base {
		log.Printf("%-28s in snapshot but not measured", name)
	}
	if failed {
		return fmt.Errorf("kernel benchmarks regressed against %s", path)
	}
	return nil
}
