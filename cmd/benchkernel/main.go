// Command benchkernel runs the analog-kernel benchmark suite of
// internal/kernelbench outside the `go test` harness and writes a
// machine-readable snapshot, BENCH_kernel.json by default. The same cases
// are registered as BenchmarkKernel/* sub-benchmarks at the module root,
// so `go test -bench 'Kernel/'` measures the identical workloads; this
// command exists so campaign drivers and CI can archive the numbers
// without parsing bench output.
//
// Usage:
//
//	benchkernel [-o BENCH_kernel.json] [-benchtime 1s] [-v]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/kernelbench"
)

// Result is one benchmark measurement of the snapshot.
type Result struct {
	Name     string  `json:"name"`
	N        int     `json:"n"`
	NsPerOp  float64 `json:"ns_per_op"`
	AllocsOp int64   `json:"allocs_per_op"`
	BytesOp  int64   `json:"bytes_per_op"`
}

// Snapshot is the BENCH_kernel.json schema.
type Snapshot struct {
	GoVersion  string   `json:"go_version"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	BenchTime  string   `json:"benchtime"`
	Results    []Result `json:"results"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchkernel: ")
	testing.Init() // registers test.* flags so test.benchtime resolves
	var (
		out       = flag.String("o", "BENCH_kernel.json", "output file (\"-\" for stdout)")
		benchtime = flag.Duration("benchtime", time.Second, "minimum run time per case")
		verbose   = flag.Bool("v", false, "log each case as it completes")
	)
	flag.Parse()

	// testing.Benchmark honours the package-level benchtime flag.
	if err := flag.CommandLine.Lookup("test.benchtime").Value.Set(benchtime.String()); err != nil {
		log.Fatal(err)
	}

	snap := Snapshot{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		BenchTime:  benchtime.String(),
	}
	for _, c := range kernelbench.Cases() {
		r := testing.Benchmark(c.Bench)
		res := Result{
			Name:     c.Name,
			N:        r.N,
			NsPerOp:  float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsOp: r.AllocsPerOp(),
			BytesOp:  r.AllocedBytesPerOp(),
		}
		snap.Results = append(snap.Results, res)
		if *verbose {
			log.Printf("%-28s %12.0f ns/op %8d B/op %6d allocs/op",
				res.Name, res.NsPerOp, res.BytesOp, res.AllocsOp)
		}
	}

	data, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}
