// Command campaignctl is the client of the campaignd job server.
//
// Usage:
//
//	campaignctl [-server URL] submit [-quick] [-dft pre|post|both]
//	            [-seed S] [-defects N] [-mag N] [-mc N] [-nsigma X]
//	            [-maxclasses N] [-skipnoncat] [-workers N]
//	            [-spec JSON] [-wait]
//	campaignctl [-server URL] status  <job-id>
//	campaignctl [-server URL] watch   <job-id>      stream events (JSONL) until terminal
//	campaignctl [-server URL] result  <job-id> [-dft pre|post] [-o file]
//	campaignctl [-server URL] cancel  <job-id>
//	campaignctl [-server URL] jobs
//	campaignctl [-server URL] workers
//	campaignctl [-server URL] checkpoints
//
// submit prints the job id on stdout (and with -wait streams the job's
// events until it finishes, exiting non-zero if the job failed).
// result writes the raw result bytes — exactly what `dotest -json`
// produces for the same parameters — to stdout or -o.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/jobserver"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("campaignctl: ")

	server := flag.String("server", "http://127.0.0.1:8120", "campaignd base URL")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: campaignctl [-server URL] submit|status|watch|result|cancel|jobs|workers|checkpoints ...")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	c := &client{base: strings.TrimRight(*server, "/")}
	cmd, args := flag.Arg(0), flag.Args()[1:]
	var err error
	switch cmd {
	case "submit":
		err = c.submit(args)
	case "status":
		err = c.status(args)
	case "watch":
		err = c.watch(args)
	case "result":
		err = c.result(args)
	case "cancel":
		err = c.cancel(args)
	case "jobs":
		err = c.jobs()
	case "workers":
		err = c.workers()
	case "checkpoints":
		err = c.checkpoints()
	default:
		log.Printf("unknown command %q", cmd)
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}
}

type client struct {
	base string
}

// apiError decodes a non-2xx response into an error.
func apiError(resp *http.Response) error {
	data, _ := io.ReadAll(resp.Body)
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return fmt.Errorf("%s: %s", resp.Status, e.Error)
	}
	return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(data))
}

// get fetches path, returning the body for 2xx responses.
func (c *client) get(path string) ([]byte, error) {
	resp, err := http.Get(c.base + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, apiError(resp)
	}
	return io.ReadAll(resp.Body)
}

func jobArg(args []string) (string, []string, error) {
	if len(args) == 0 || strings.HasPrefix(args[0], "-") {
		return "", nil, fmt.Errorf("missing job id argument")
	}
	return args[0], args[1:], nil
}

func (c *client) submit(args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	var (
		quick      = fs.Bool("quick", false, "small, fast configuration")
		dft        = fs.String("dft", "", "DfT setting: pre, post or both (default both)")
		seed       = fs.Int64("seed", 0, "random seed (0 = server default)")
		bits       = fs.Int("bits", 0, "vehicle resolution in bits (0 = server default 8-bit vehicle)")
		defects    = fs.Int("defects", 0, "class-discovery sprinkle size per macro")
		mag        = fs.Int("mag", 0, "magnitude sprinkle size")
		mc         = fs.Int("mc", 0, "good-space Monte Carlo dies")
		nsigma     = fs.Float64("nsigma", 0, "current-detection threshold multiple")
		maxClasses = fs.Int("maxclasses", 0, "cap analysed classes per macro")
		skipNonCat = fs.Bool("skipnoncat", false, "skip the non-catastrophic analysis")
		workers    = fs.Int("workers", 0, "per-job worker hint")
		specJSON   = fs.String("spec", "", "submit this raw JSON spec instead of building one from flags")
		wait       = fs.Bool("wait", false, "stream events until the job is terminal")
	)
	fs.Parse(args)

	spec := core.JobSpec{
		Quick: *quick, Seed: *seed, Bits: *bits, Defects: *defects, MagnitudeDefects: *mag,
		MCSamples: *mc, NSigma: *nsigma, MaxClassesPerMacro: *maxClasses,
		SkipNonCat: *skipNonCat, DfT: *dft, Workers: *workers,
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	if *specJSON != "" {
		body = []byte(*specJSON)
	}
	resp, err := http.Post(c.base+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return apiError(resp)
	}
	var out jobserver.SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return err
	}
	if out.Deduped {
		log.Printf("deduped onto existing job (state %s)", out.State)
	}
	fmt.Println(out.ID)
	if *wait {
		return c.watch([]string{out.ID})
	}
	return nil
}

func (c *client) status(args []string) error {
	id, _, err := jobArg(args)
	if err != nil {
		return err
	}
	data, err := c.get("/api/v1/jobs/" + id)
	if err != nil {
		return err
	}
	os.Stdout.Write(data)
	return nil
}

// watch tails the job's JSONL event stream to stderr (progress) until
// the terminal state, failing when the job did not finish cleanly.
func (c *client) watch(args []string) error {
	id, _, err := jobArg(args)
	if err != nil {
		return err
	}
	resp, err := http.Get(c.base + "/api/v1/jobs/" + id + "/events?format=jsonl&spans=0")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return apiError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	final := jobserver.Event{}
	for sc.Scan() {
		var ev jobserver.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return fmt.Errorf("bad event %q: %v", sc.Text(), err)
		}
		switch ev.Type {
		case "progress":
			log.Printf("%s %s: %d/%d units (%d restored, %d failed)",
				id, ev.DfT, ev.Progress.Completed+ev.Progress.Restored,
				ev.Progress.Total, ev.Progress.Restored, ev.Progress.Failed)
		case "result":
			log.Printf("%s %s: result ready", id, ev.DfT)
		case "state":
			final = ev
			log.Printf("%s: %s", id, ev.State)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	switch final.State {
	case jobserver.StateDone:
		return nil
	case "":
		return fmt.Errorf("event stream ended without a terminal state")
	default:
		return fmt.Errorf("job %s: %s (%s)", id, final.State, final.Error)
	}
}

func (c *client) result(args []string) error {
	id, rest, err := jobArg(args)
	if err != nil {
		return err
	}
	fs := flag.NewFlagSet("result", flag.ExitOnError)
	dft := fs.String("dft", "", "DfT setting of the result (pre or post)")
	outFile := fs.String("o", "", "write the result bytes to this file instead of stdout")
	wait := fs.Bool("wait", false, "block until the job is terminal")
	fs.Parse(rest)

	path := "/api/v1/jobs/" + id + "/result"
	sep := "?"
	if *dft != "" {
		path += sep + "dft=" + *dft
		sep = "&"
	}
	if *wait {
		path += sep + "wait=1"
	}
	data, err := c.get(path)
	if err != nil {
		return err
	}
	if *outFile != "" {
		return os.WriteFile(*outFile, data, 0o644)
	}
	os.Stdout.Write(data)
	return nil
}

func (c *client) cancel(args []string) error {
	id, _, err := jobArg(args)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodDelete, c.base+"/api/v1/jobs/"+id, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return apiError(resp)
	}
	io.Copy(os.Stdout, resp.Body)
	return nil
}

func (c *client) jobs() error {
	data, err := c.get("/api/v1/jobs")
	if err != nil {
		return err
	}
	os.Stdout.Write(data)
	return nil
}

// workers prints the daemon's remote-worker registry, one line per
// worker: id, liveness, lifetime totals and the units currently held.
func (c *client) workers() error {
	data, err := c.get("/api/v1/workers")
	if err != nil {
		return err
	}
	var ws []jobserver.WorkerStatus
	if err := json.Unmarshal(data, &ws); err != nil {
		return err
	}
	if len(ws) == 0 {
		fmt.Println("no workers have connected")
		return nil
	}
	for _, w := range ws {
		state := "idle"
		switch {
		case len(w.Units) > 0:
			state = fmt.Sprintf("working on %s", strings.Join(w.Units, ", "))
		case w.Waiting:
			state = "waiting for work"
		}
		fmt.Printf("%s\tlast seen %dms ago\t%d leased / %d results / %d expired\t%s\n",
			w.ID, w.LastSeenMillis, w.Leased, w.Results, w.Expired, state)
	}
	return nil
}

func (c *client) checkpoints() error {
	data, err := c.get("/api/v1/checkpoints")
	if err != nil {
		return err
	}
	os.Stdout.Write(data)
	return nil
}
