// Command campaign runs the defect-oriented test methodology as a
// parallel fault-simulation campaign: per-macro defect sprinkles and
// per-fault-class analog fault simulations execute as independent units
// on a work-stealing worker pool, with checkpoint/resume and run
// metrics. Output is bit-identical to the serial cmd/dotest run at the
// same seed, for any worker count.
//
// Usage:
//
//	campaign [-bits N] [-workers N] [-gsworkers N] [-checkpoint file]
//	         [-resume] [-json-stats file] [-defects N] [-mag N] [-mc N]
//	         [-nsigma X] [-seed S] [-dft pre|post|both] [-maxclasses N]
//	         [-quick] [-json file] [-trace file.jsonl] [-v]
//
// -bits selects the vehicle: the N-bit member of the flash-converter
// family (default 8, the paper's case study). The resolution is part of
// the checkpoint fingerprint, so campaigns of different vehicles never
// share a checkpoint.
//
// The good-space Monte Carlo is die-sharded and overlapped with the
// campaign's sprinkle front half; -gsworkers bounds its worker group
// (0 inherits the campaign worker count). -mc and -nsigma override the
// good-space sampling and detection threshold — they flow into the
// checkpoint fingerprint, so checkpoints taken under different
// good-space settings refuse to merge — and survive -quick when given
// explicitly.
//
// A cancelled run (SIGINT or SIGTERM) flushes its checkpoint before
// exiting — the cancellation reaches into the Newton/transient loops,
// so even a unit stuck in a hard analog solve aborts in bounded time —
// and exits with status 130, distinct from unit failures:
//
//	campaign -checkpoint run.ckpt            # interrupt it mid-run …
//	campaign -checkpoint run.ckpt -resume    # … and pick up where it left off
//
// Run metrics always include the per-stage time breakdown (sprinkle,
// collapse, inject, faultsim, classify, detect, goodspace); -trace
// additionally streams every stage span as JSONL (see the README's
// "Tracing" section for the schema).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/macros"
	"repro/internal/obs"
	"repro/internal/report"
)

// interruptContext returns a context cancelled by the first SIGINT or
// SIGTERM — a service manager's stop signal gets the same graceful
// shutdown as a Ctrl-C. The first signal is consumed by
// signal.NotifyContext to begin a graceful shutdown (workers drain, the
// checkpoint flushes inside campaign.Execute before it returns); the
// moment cancellation starts, the default signal handler is restored so
// a second signal can force-quit a wedged run instead of being
// swallowed.
func interruptContext(parent context.Context) (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-ctx.Done()
		stop()
	}()
	return ctx, stop
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("campaign: ")

	var (
		bits       = flag.Int("bits", macros.DefaultBits, "vehicle resolution in bits (2^N comparators)")
		workers    = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		checkpoint = flag.String("checkpoint", "", "JSON checkpoint file (\"\" disables)")
		resume     = flag.Bool("resume", false, "resume from the checkpoint, skipping finished units")
		jsonStats  = flag.String("json-stats", "", "write the run-metrics snapshot to this file")
		defects    = flag.Int("defects", 25000, "class-discovery sprinkle size per macro")
		mag        = flag.Int("mag", 250000, "magnitude sprinkle size (0 = reuse discovery)")
		mc         = flag.Int("mc", 80, "good-space Monte Carlo dies")
		nsigma     = flag.Float64("nsigma", 3, "current-detection threshold multiple")
		gsworkers  = flag.Int("gsworkers", 0, "good-space die workers (0 = inherit -workers; any setting is bit-identical)")
		seed       = flag.Int64("seed", 1995, "random seed")
		dftMode    = flag.String("dft", "both", "DfT setting: pre, post or both")
		maxClasses = flag.Int("maxclasses", 0, "cap analysed classes per macro (0 = all)")
		quick      = flag.Bool("quick", false, "small, fast configuration")
		jsonOut    = flag.String("json", "", "also write a machine-readable summary to this file")
		trace      = flag.String("trace", "", "write a JSONL span trace of every methodology stage to this file")
		verbose    = flag.Bool("v", false, "log unit completions")
	)
	flag.Parse()

	cfg := core.Config{
		Seed:               *seed,
		Defects:            *defects,
		MagnitudeDefects:   *mag,
		MCSamples:          *mc,
		NSigma:             *nsigma,
		FloorA:             2e-6,
		MaxClassesPerMacro: *maxClasses,
	}
	if *quick {
		cfg = core.QuickConfig()
		cfg.Seed = *seed
		// -quick replaces the whole configuration, but an explicit
		// good-space override must not be silently dropped: re-apply
		// the flags the user actually set.
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "mc":
				cfg.MCSamples = *mc
			case "nsigma":
				cfg.NSigma = *nsigma
			}
		})
	}

	if _, err := macros.NewVehicle(*bits); err != nil {
		log.Fatal(err)
	}
	cfg.Bits = *bits

	var dfts []bool
	switch *dftMode {
	case "pre":
		dfts = []bool{false}
	case "post":
		dfts = []bool{true}
	case "both":
		dfts = []bool{false, true}
	default:
		log.Fatalf("bad -dft %q", *dftMode)
	}

	ctx, stop := interruptContext(context.Background())
	defer stop()

	var jw *obs.JSONLWriter
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		jw = obs.NewJSONLWriter(f)
	}

	start := time.Now()
	for _, dft := range dfts {
		label, suffix := "before DfT", ""
		if dft {
			label, suffix = "after DfT", ".dft"
		}
		opts := campaign.Options{
			Workers: *workers,
			Resume:  *resume,
		}
		if *checkpoint != "" {
			opts.Checkpoint = *checkpoint + suffix
		}
		if *verbose {
			opts.OnUnitDone = func(key string, restored bool) {
				if restored {
					log.Printf("restored %s", key)
				} else {
					log.Printf("done %s", key)
				}
			}
		}

		fmt.Printf("==== Parallel campaign (%s) ====\n\n", label)
		// One pipeline and one stage aggregator per DfT setting, so the
		// per-stage breakdown in the run metrics covers exactly this
		// campaign; the JSONL trace (if any) spans both settings, with
		// each record carrying its dft flag.
		p := core.NewPipeline(cfg)
		p.GoodSpaceWorkers = *gsworkers
		sinks := []obs.Sink{obs.NewAgg()}
		if jw != nil {
			sinks = append(sinks, jw)
		}
		p.Obs = obs.New(sinks...)
		run, out, err := p.RunParallel(ctx, dft, opts)
		if err != nil {
			if out != nil {
				out.Stats.Print(os.Stderr)
			}
			// A cancelled context is the user's doing, not a unit
			// failure: report it distinctly and exit with the
			// conventional SIGINT status. This branch also covers the
			// race where every unit finished but the cancellation
			// arrived before the merge — the partial Outcome is never
			// reported as a completed run.
			if ctx.Err() != nil {
				if *checkpoint != "" {
					log.Printf("interrupted; checkpoint flushed to %s — rerun with -resume", *checkpoint+suffix)
				}
				log.Printf("cancelled: %v", err)
				os.Exit(130)
			}
			log.Fatal(err)
		}

		report.PerMacro(os.Stdout, run)
		title := "Fig 4: global detectability"
		if dft {
			title = "Fig 5: global detectability after DfT"
		}
		report.Global(os.Stdout, title, run)
		out.Stats.Print(os.Stdout)
		fmt.Println()

		if *jsonOut != "" {
			data, err := report.JSON(run)
			if err != nil {
				log.Fatal(err)
			}
			if err := os.WriteFile(*jsonOut+suffix, data, 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s\n", *jsonOut+suffix)
		}
		if *jsonStats != "" {
			data, err := out.Stats.JSON()
			if err != nil {
				log.Fatal(err)
			}
			if err := os.WriteFile(*jsonStats+suffix, data, 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s\n", *jsonStats+suffix)
		}
	}
	fmt.Printf("total runtime: %s\n", time.Since(start).Round(time.Millisecond))
	if jw != nil {
		if err := jw.Err(); err != nil {
			log.Fatalf("trace write: %v", err)
		}
		fmt.Printf("wrote trace %s\n", *trace)
	}
}
