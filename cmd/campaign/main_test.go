package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
)

// The interrupt tests re-execute this test binary as a child that runs
// interruptContext around a slow "shutdown" (a stand-in for a checkpoint
// flush that is taking a while, or a wedged run). The parent delivers
// real SIGINTs and observes whether the child dies hard or finishes
// gracefully — the exact contract of the cmd/campaign signal handling.
func TestMain(m *testing.M) {
	if os.Getenv("CAMPAIGN_TEST_INTERRUPT_CHILD") == "1" {
		interruptChild()
		return
	}
	if os.Getenv("CAMPAIGN_TEST_ANALYZE_CHILD") == "1" {
		analyzeInterruptChild()
		return
	}
	os.Exit(m.Run())
}

// analyzeInterruptChild runs a real (quick) campaign under
// interruptContext, announcing unit completions on stdout so the parent
// can deliver a SIGINT while class analyses — long analog fault
// simulations — are in flight. The cancellation must reach into the
// Newton/transient loops and return in bounded time, with the
// checkpoint flushed.
func analyzeInterruptChild() {
	ctx, stop := interruptContext(context.Background())
	defer stop()
	cfg := core.QuickConfig()
	opts := campaign.Options{
		Workers:    2,
		Checkpoint: os.Getenv("CAMPAIGN_TEST_CHECKPOINT"),
		OnUnitDone: func(key string, restored bool) { fmt.Println("unit", key) },
	}
	fmt.Println("ready")
	_, _, err := core.RunParallel(ctx, cfg, false, opts)
	switch {
	case err != nil && ctx.Err() != nil:
		fmt.Println("cancelled")
	case err != nil:
		fmt.Println("error:", err)
		os.Exit(1)
	default:
		// The run outpaced the parent's SIGINT; the parent treats this
		// as inconclusive rather than failing.
		fmt.Println("finished")
	}
}

func interruptChild() {
	ctx, stop := interruptContext(context.Background())
	defer stop()
	fmt.Println("ready")
	<-ctx.Done()
	// Simulated post-cancellation shutdown work (checkpoint flush). A
	// second SIGINT during this window must kill the process; without
	// one the work completes and the exit is graceful.
	time.Sleep(2 * time.Second)
	fmt.Println("graceful")
}

// startInterruptChild launches the child and waits for it to install its
// signal handler.
func startInterruptChild(t *testing.T) (*exec.Cmd, *bufio.Reader) {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "CAMPAIGN_TEST_INTERRUPT_CHILD=1")
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(out)
	line, err := r.ReadString('\n')
	if err != nil || strings.TrimSpace(line) != "ready" {
		t.Fatalf("child handshake: %q, %v", line, err)
	}
	return cmd, r
}

// TestSecondInterruptForceQuits is the regression test for the swallowed
// second Ctrl-C: after the first SIGINT starts the graceful shutdown,
// interruptContext must restore the default handler so the next SIGINT
// terminates the process immediately.
func TestSecondInterruptForceQuits(t *testing.T) {
	cmd, _ := startInterruptChild(t)
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	// Give the cancellation goroutine time to restore the default
	// handler, then deliver the force-quit.
	time.Sleep(300 * time.Millisecond)
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("child exited cleanly; the second SIGINT was swallowed")
		}
	case <-time.After(1500 * time.Millisecond):
		cmd.Process.Kill()
		<-done
		t.Fatal("child survived a second SIGINT (still in its shutdown sleep)")
	}
}

// TestInterruptDuringAnalyzeLeavesResumableCheckpoint is the
// end-to-end cancellation contract: a SIGINT delivered while class
// analyses (long analog fault simulations) are running must (a) abort
// the campaign within a bounded deadline — the context check inside the
// Newton and transient loops is what makes this bounded, not the length
// of a solve — and (b) leave a fingerprint-valid checkpoint from which
// a second campaign resumes, restoring the interrupted run's completed
// units instead of recomputing them.
func TestInterruptDuringAnalyzeLeavesResumableCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real quick campaign twice")
	}
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"CAMPAIGN_TEST_ANALYZE_CHILD=1",
		"CAMPAIGN_TEST_CHECKPOINT="+ckpt)
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Collect child stdout lines; interrupt once a few units have
	// completed, which guarantees class analyses are in flight on the
	// other worker.
	lines := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(out)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	readLine := func(timeout time.Duration) string {
		select {
		case l, ok := <-lines:
			if !ok {
				t.Fatal("child stdout closed early")
			}
			return l
		case <-time.After(timeout):
			t.Fatal("timed out waiting for child output")
		}
		panic("unreachable")
	}
	if l := readLine(30 * time.Second); l != "ready" {
		t.Fatalf("handshake: %q", l)
	}
	units := 0
	for units < 3 {
		if strings.HasPrefix(readLine(60*time.Second), "unit ") {
			units++
		}
	}
	interruptAt := time.Now()
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}

	// Drain the remaining output, watching for the child's verdict.
	verdict := ""
	for l := range lines {
		if l == "cancelled" || l == "finished" || strings.HasPrefix(l, "error:") {
			verdict = l
		}
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("child exited with error: %v (verdict %q)", err, verdict)
		}
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		<-done
		t.Fatal("cancellation did not abort the campaign within the deadline")
	}
	t.Logf("child shut down %s after SIGINT, verdict %q", time.Since(interruptAt).Round(time.Millisecond), verdict)
	if verdict == "finished" {
		t.Skip("campaign completed before the SIGINT landed; nothing to resume")
	}
	if verdict != "cancelled" {
		t.Fatalf("child verdict %q, want cancelled", verdict)
	}

	// The flushed checkpoint must carry the configuration fingerprint
	// and at least the units the child reported before the interrupt.
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatalf("checkpoint not flushed: %v", err)
	}
	var ck struct {
		Version     int                        `json:"version"`
		Fingerprint string                     `json:"fingerprint"`
		Results     map[string]json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(data, &ck); err != nil {
		t.Fatalf("checkpoint unreadable: %v", err)
	}
	if want := core.Fingerprint(core.QuickConfig(), false); ck.Fingerprint != want {
		t.Fatalf("checkpoint fingerprint = %q, want %q", ck.Fingerprint, want)
	}
	if len(ck.Results) == 0 {
		t.Fatal("checkpoint has no completed units")
	}

	// And a resumed campaign must restore them rather than recompute.
	run, outc, err := core.RunParallel(context.Background(), core.QuickConfig(), false,
		campaign.Options{Workers: 2, Checkpoint: ckpt, Resume: true})
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	if run == nil || len(run.Macros) == 0 {
		t.Fatal("resumed run is empty")
	}
	if outc.Stats.Restored == 0 {
		t.Fatal("resume restored no units from the checkpoint")
	}
	t.Logf("resume restored %d/%d units", outc.Stats.Restored, outc.Stats.UnitsTotal)
}

// TestFirstInterruptShutsDownGracefully pins the other half of the
// contract: a single SIGINT must not kill the process before the
// shutdown work (the checkpoint flush) completes.
func TestFirstInterruptShutsDownGracefully(t *testing.T) {
	cmd, r := startInterruptChild(t)
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	line, err := r.ReadString('\n')
	if err != nil || strings.TrimSpace(line) != "graceful" {
		t.Fatalf("child did not finish its shutdown work: %q, %v", line, err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("graceful shutdown exited with error: %v", err)
	}
}

// TestSigtermShutsDownGracefully: a service manager's SIGTERM gets the
// same graceful shutdown as a Ctrl-C — the shutdown work (checkpoint
// flush) completes and the process exits cleanly instead of dying on
// the default SIGTERM disposition.
func TestSigtermShutsDownGracefully(t *testing.T) {
	cmd, r := startInterruptChild(t)
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	line, err := r.ReadString('\n')
	if err != nil || strings.TrimSpace(line) != "graceful" {
		t.Fatalf("child did not finish its shutdown work after SIGTERM: %q, %v", line, err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("graceful SIGTERM shutdown exited with error: %v", err)
	}
}

// TestSecondSignalAfterSigtermForceQuits: like the SIGINT pair, the
// default handler is restored once the SIGTERM-initiated shutdown
// starts, so a follow-up signal force-quits a wedged drain.
func TestSecondSignalAfterSigtermForceQuits(t *testing.T) {
	cmd, _ := startInterruptChild(t)
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("child exited cleanly; the second SIGTERM was swallowed")
		}
	case <-time.After(1500 * time.Millisecond):
		cmd.Process.Kill()
		<-done
		t.Fatal("child survived a second SIGTERM (still in its shutdown sleep)")
	}
}
