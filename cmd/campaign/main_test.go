package main

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"
)

// The interrupt tests re-execute this test binary as a child that runs
// interruptContext around a slow "shutdown" (a stand-in for a checkpoint
// flush that is taking a while, or a wedged run). The parent delivers
// real SIGINTs and observes whether the child dies hard or finishes
// gracefully — the exact contract of the cmd/campaign signal handling.
func TestMain(m *testing.M) {
	if os.Getenv("CAMPAIGN_TEST_INTERRUPT_CHILD") == "1" {
		interruptChild()
		return
	}
	os.Exit(m.Run())
}

func interruptChild() {
	ctx, stop := interruptContext(context.Background())
	defer stop()
	fmt.Println("ready")
	<-ctx.Done()
	// Simulated post-cancellation shutdown work (checkpoint flush). A
	// second SIGINT during this window must kill the process; without
	// one the work completes and the exit is graceful.
	time.Sleep(2 * time.Second)
	fmt.Println("graceful")
}

// startInterruptChild launches the child and waits for it to install its
// signal handler.
func startInterruptChild(t *testing.T) (*exec.Cmd, *bufio.Reader) {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "CAMPAIGN_TEST_INTERRUPT_CHILD=1")
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(out)
	line, err := r.ReadString('\n')
	if err != nil || strings.TrimSpace(line) != "ready" {
		t.Fatalf("child handshake: %q, %v", line, err)
	}
	return cmd, r
}

// TestSecondInterruptForceQuits is the regression test for the swallowed
// second Ctrl-C: after the first SIGINT starts the graceful shutdown,
// interruptContext must restore the default handler so the next SIGINT
// terminates the process immediately.
func TestSecondInterruptForceQuits(t *testing.T) {
	cmd, _ := startInterruptChild(t)
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	// Give the cancellation goroutine time to restore the default
	// handler, then deliver the force-quit.
	time.Sleep(300 * time.Millisecond)
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("child exited cleanly; the second SIGINT was swallowed")
		}
	case <-time.After(1500 * time.Millisecond):
		cmd.Process.Kill()
		<-done
		t.Fatal("child survived a second SIGINT (still in its shutdown sleep)")
	}
}

// TestFirstInterruptShutsDownGracefully pins the other half of the
// contract: a single SIGINT must not kill the process before the
// shutdown work (the checkpoint flush) completes.
func TestFirstInterruptShutsDownGracefully(t *testing.T) {
	cmd, r := startInterruptChild(t)
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	line, err := r.ReadString('\n')
	if err != nil || strings.TrimSpace(line) != "graceful" {
		t.Fatalf("child did not finish its shutdown work: %q, %v", line, err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("graceful shutdown exited with error: %v", err)
	}
}
