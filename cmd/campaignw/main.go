// Command campaignw is a remote campaign worker for campaignd: point it
// at a daemon and it long-polls for campaign units, executes them on a
// locally reconstructed pipeline, and streams the results back over the
// lease protocol. Results are byte-identical to local execution — the
// daemon merges worker results through the same decode path as
// checkpoint restores — so adding workers changes wall-clock time and
// nothing else.
//
// Usage:
//
//	campaignw -addr URL [-id name] [-job id] [-slots N] [-batch K] [-wait dur]
//
// The worker heartbeats each lease; if it dies, the daemon re-queues
// the unit locally after one lease TTL. SIGINT or SIGTERM stops
// gracefully: in-flight leases are released so the daemon re-queues
// them immediately, and the process exits with status 130.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/worker"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("campaignw: ")
	os.Exit(run())
}

// run is main without os.Exit, so deferred cleanups actually run.
func run() int {
	var (
		addr  = flag.String("addr", "", "daemon base URL (e.g. http://127.0.0.1:8120; required)")
		id    = flag.String("id", "", "worker id (default w-<pid>)")
		job   = flag.String("job", "", "lease only from this job id (default: any job)")
		slots = flag.Int("slots", 1, "units executed concurrently")
		batch = flag.Int("batch", 0, "max units leased per round-trip (0: bounded by free slots)")
		wait  = flag.Duration("wait", 30*time.Second, "lease long-poll bound")
		quiet = flag.Bool("q", false, "suppress per-unit log lines")
	)
	flag.Parse()
	if *addr == "" {
		log.Print("missing -addr (daemon base URL)")
		flag.Usage()
		return 2
	}
	if *id == "" {
		*id = fmt.Sprintf("w-%d", os.Getpid())
	}
	opts := worker.Options{
		Base:     *addr,
		ID:       *id,
		Job:      *job,
		Slots:    *slots,
		MaxBatch: *batch,
		Wait:     *wait,
		Logf:     log.Printf,
	}
	if *quiet {
		opts.Logf = nil
	}
	w, err := worker.New(opts)
	if err != nil {
		log.Print(err)
		return 1
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Printf("worker %s: leasing from %s (slots %d)", *id, *addr, *slots)
	w.Run(ctx)
	stop()

	st := w.Stats()
	log.Printf("worker %s: done (%d leased, %d batched, %d results, %d failed, %d abandoned, %d released)",
		*id, st.Leased, st.Batched, st.Results, st.Failed, st.Abandoned, st.Released)
	if ctx.Err() != nil {
		return 130
	}
	return 0
}
