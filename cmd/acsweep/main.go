// Command acsweep runs the AC-measurement extension: a small-signal sweep
// of the comparator's amplify path (vin → differential outputs), with an
// optional clock-line load fault injected, printing gain and -3 dB
// bandwidth plus the AC detection verdict. It demonstrates the paper's
// observation that clock-value faults — invisible to the simple DC
// tests — disturb the high-frequency behaviour.
//
// Usage:
//
//	acsweep [-fault clkload|none] [-res 800]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"repro/internal/faults"
	"repro/internal/macros"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("acsweep: ")
	var (
		faultKind = flag.String("fault", "none", "fault to inject: none or clkload")
		res       = flag.Float64("res", 800, "clock-load resistance (Ω) for -fault clkload")
	)
	flag.Parse()

	m := macros.NewComparator(macros.DefaultVehicle())
	opt := macros.RespondOpts{Var: macros.Nominal()}
	nom, err := m.AmplifierAC(context.Background(), nil, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("nominal amplify path: gain %.1f dB, -3 dB bandwidth %.3g Hz\n",
		nom.GainDB, nom.Bandwidth3dB)

	if *faultKind == "none" {
		return
	}
	if *faultKind != "clkload" {
		log.Fatalf("unknown fault %q", *faultKind)
	}
	f := &faults.Fault{Kind: faults.ThickOxPinhole, Nets: []string{"clk1", "vss"}, Res: *res}
	faulty, err := m.AmplifierAC(context.Background(), f, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with %g Ω on clk1:     gain %.1f dB, -3 dB bandwidth %.3g Hz\n",
		*res, faulty.GainDB, faulty.Bandwidth3dB)
	fmt.Printf("AC test verdict (±1 dB, ±30%% BW): detected=%v\n",
		macros.ACDeviates(nom, faulty, 1, 0.3))
}
