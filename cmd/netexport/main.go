// Command netexport emits a macro's transistor-level testbench netlist as
// a SPICE deck, so the reproduction's circuits can be cross-checked in an
// external simulator.
//
// Usage:
//
//	netexport [-macro comparator|clockgen|ladder] [-dft]
package main

import (
	"flag"
	"log"
	"os"

	"repro/internal/macros"
	"repro/internal/netlist"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("netexport: ")
	var (
		macroName = flag.String("macro", "comparator", "macro testbench to export")
		dft       = flag.Bool("dft", false, "export the DfT variant")
	)
	flag.Parse()

	var ckt *netlist.Circuit
	var title string
	switch *macroName {
	case "comparator":
		b := macros.BuildComparatorTestbench(macros.RespondOpts{Var: macros.Nominal(), DfT: *dft})
		ckt = b.C
		title = "comparator slice testbench (with bias and clock generators)"
	case "clockgen":
		b := macros.BuildClockgenTestbench(macros.Nominal())
		ckt = b.C
		title = "clock generator (static state 1,0,0)"
	case "ladder":
		b := macros.BuildLadderTestbench(macros.Nominal())
		ckt = b.C
		title = "reference ladder"
	default:
		log.Fatalf("unknown macro %q", *macroName)
	}
	if err := netlist.WriteSpice(os.Stdout, title, ckt); err != nil {
		log.Fatal(err)
	}
}
