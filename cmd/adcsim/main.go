// Command adcsim exercises the behavioural Flash ADC model: it runs the
// missing-code ramp test and the INL/DNL extraction on a fault-free
// converter or on one with an injected behavioural fault.
//
// Usage:
//
//	adcsim [-bits N] [-fault stuck|offset|tap|none] [-slice K] [-mag 0.012]
//	       [-samples N]
//
// -bits selects the vehicle resolution (2^N comparator slices; default
// 8). -slice -1 (the default) targets the mid-range slice of the chosen
// vehicle; -samples 0 (the default) runs the vehicle's scaled
// missing-code ramp.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/adc"
	"repro/internal/macros"
	"repro/internal/testgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("adcsim: ")
	var (
		bits      = flag.Int("bits", macros.DefaultBits, "vehicle resolution in bits (2^N comparator slices)")
		faultKind = flag.String("fault", "none", "behavioural fault: none, stuck, offset, tap")
		slice     = flag.Int("slice", -1, "affected comparator slice (-1 = mid-range)")
		mag       = flag.Float64("mag", 0.012, "fault magnitude (V) for offset/tap")
		samples   = flag.Int("samples", 0, "missing-code test samples (0 = vehicle default)")
	)
	flag.Parse()

	veh, err := macros.NewVehicle(*bits)
	if err != nil {
		log.Fatal(err)
	}
	if *slice < 0 {
		*slice = veh.Comparators() / 2
	}
	if *slice >= veh.Comparators() {
		log.Fatalf("slice %d out of range for the %s (%d slices)", *slice, veh, veh.Comparators())
	}
	plan := testgen.ForVehicle(veh)
	if *samples > 0 {
		plan.Samples = *samples
	}

	a := adc.New(veh.Comparators(), macros.VRefLo, macros.VRefHi)
	switch *faultKind {
	case "none":
	case "stuck":
		a.Comps[*slice].Stuck = 1
	case "offset":
		a.Comps[*slice].Offset = *mag
	case "tap":
		a.Taps[*slice] += *mag
	default:
		log.Fatalf("unknown fault %q", *faultKind)
	}

	res := a.MissingCodeTest(macros.VRefLo, macros.VRefHi, plan.Samples)
	fmt.Printf("missing-code test: %s\n", res)
	if res.HasMissing() {
		fmt.Printf("missing codes: %v\n", res.Missing)
	}
	inl, dnl := a.INLDNL(macros.VRefLo, macros.VRefHi)
	fmt.Printf("INL = %.3f LSB, DNL = %.3f LSB\n", inl, dnl)
	fmt.Printf("test plan: %s\n", plan)
}
