// Command adcsim exercises the behavioural Flash ADC model: it runs the
// missing-code ramp test and the INL/DNL extraction on a fault-free
// converter or on one with an injected behavioural fault.
//
// Usage:
//
//	adcsim [-fault stuck|offset|tap|none] [-slice 128] [-mag 0.012] [-samples 1000]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/adc"
	"repro/internal/macros"
	"repro/internal/testgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("adcsim: ")
	var (
		faultKind = flag.String("fault", "none", "behavioural fault: none, stuck, offset, tap")
		slice     = flag.Int("slice", 128, "affected comparator slice")
		mag       = flag.Float64("mag", 0.012, "fault magnitude (V) for offset/tap")
		samples   = flag.Int("samples", 1000, "missing-code test samples")
	)
	flag.Parse()

	a := adc.New(macros.NumComparators, macros.VRefLo, macros.VRefHi)
	switch *faultKind {
	case "none":
	case "stuck":
		a.Comps[*slice].Stuck = 1
	case "offset":
		a.Comps[*slice].Offset = *mag
	case "tap":
		a.Taps[*slice] += *mag
	default:
		log.Fatalf("unknown fault %q", *faultKind)
	}

	res := a.MissingCodeTest(macros.VRefLo, macros.VRefHi, *samples)
	fmt.Printf("missing-code test: %s\n", res)
	if res.HasMissing() {
		fmt.Printf("missing codes: %v\n", res.Missing)
	}
	inl, dnl := a.INLDNL(macros.VRefLo, macros.VRefHi)
	fmt.Printf("INL = %.3f LSB, DNL = %.3f LSB\n", inl, dnl)
	fmt.Printf("test plan: %s\n", testgen.Default())
}
