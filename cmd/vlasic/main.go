// Command vlasic runs the catastrophic spot-defect simulator standalone
// on one macro's layout (the reproduction's equivalent of the VLASIC
// yield simulator) and prints the extracted faults and their collapsed
// classes.
//
// Usage:
//
//	vlasic [-macro comparator] [-defects 25000] [-seed 1995] [-dft] [-classes 20]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/defectsim"
	"repro/internal/faults"
	"repro/internal/macros"
	"repro/internal/process"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vlasic: ")
	var (
		macroName = flag.String("macro", "comparator", "macro layout to attack")
		defects   = flag.Int("defects", 25000, "defects to sprinkle")
		seed      = flag.Int64("seed", 1995, "random seed")
		dft       = flag.Bool("dft", false, "use the DfT-modified layout")
		topN      = flag.Int("classes", 20, "largest classes to list")
	)
	flag.Parse()

	var m macros.Macro
	switch *macroName {
	case "comparator":
		m = macros.NewComparator(macros.DefaultVehicle())
	case "ladder":
		m = macros.NewLadder(macros.DefaultVehicle())
	case "biasgen":
		m = macros.NewBiasgen(macros.DefaultVehicle())
	case "clockgen":
		m = macros.NewClockgen(macros.DefaultVehicle())
	case "decoder":
		m = macros.NewDecoder(macros.DefaultVehicle())
	default:
		log.Fatalf("unknown macro %q", *macroName)
	}

	cell := m.Layout(*dft)
	fmt.Printf("macro %s: %d shapes, %.0f µm² bounding box\n",
		cell.Name, len(cell.Shapes), cell.Area())
	for net, comps := range defectsim.CheckConnectivity(cell) {
		if comps != 1 {
			log.Fatalf("layout net %q has %d components", net, comps)
		}
	}

	sim := defectsim.New(cell, process.Default())
	res, err := sim.Sprinkle(context.Background(), *defects, *seed)
	if err != nil {
		log.Fatal(err)
	}
	classes := faults.Collapse(res.Faults)
	fmt.Printf("%d defects -> %d faults (%.2f%%) -> %d classes\n\n",
		res.Defects, len(res.Faults), 100*res.FaultRate(), len(classes))

	run := &core.MacroRun{
		Name: m.Name(), Classes: classes,
		DiscoveryDefects: res.Defects, DiscoveryFaults: len(res.Faults),
		TotalFaults: len(res.Faults),
	}
	for _, f := range res.Faults {
		if f.Local {
			run.LocalFaults++
		}
	}
	report.Table1(os.Stdout, run)

	fmt.Printf("largest %d fault classes:\n", *topN)
	for i, c := range classes {
		if i >= *topN {
			break
		}
		fmt.Printf("  %4d×  %s\n", c.Count, c.Fault)
	}
}
