// Command dotest runs the defect-oriented test methodology over the Flash
// ADC case study and prints the paper's tables and figures.
//
// Usage:
//
//	dotest [-bits N] [-defects N] [-mag N] [-mc N] [-seed S]
//	       [-macro name|all] [-dft pre|post|both] [-maxclasses N]
//	       [-nsigma X] [-quick] [-workers N] [-gsworkers N]
//	       [-trace file.jsonl]
//
// With no flags it reproduces every experiment at full fidelity (several
// minutes of CPU). -bits selects the vehicle: the N-bit member of the
// flash-converter family (2^N comparators and ladder segments; default 8,
// the paper's case study). -workers > 1 runs the per-macro sprinkles and
// per-class fault simulations on the parallel campaign engine; the
// output is bit-identical to the serial run. For checkpoint/resume and
// run metrics use cmd/campaign.
//
// The good-space Monte Carlo is itself die-sharded: -gsworkers bounds
// its worker group (0 picks GOMAXPROCS, or the campaign worker count
// under -workers > 1; 1 compiles serially). Any setting is
// bit-identical. -mc and -nsigma override the good-space sampling and
// detection threshold, and survive -quick when given explicitly.
//
// -trace streams one JSON object per finished methodology-stage span
// (sprinkle, collapse, inject, faultsim, classify, detect, goodspace)
// to the given file; see the README's "Tracing" section for the schema.
// A SIGINT or SIGTERM cancels the run: the cancellation reaches into
// the Newton and transient loops, so even a long analog solve aborts in
// bounded time.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/macros"
	"repro/internal/obs"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dotest: ")

	var (
		bits       = flag.Int("bits", macros.DefaultBits, "vehicle resolution in bits (2^N comparators)")
		defects    = flag.Int("defects", 25000, "class-discovery sprinkle size per macro")
		mag        = flag.Int("mag", 250000, "magnitude sprinkle size (0 = reuse discovery)")
		mc         = flag.Int("mc", 80, "good-space Monte Carlo dies")
		seed       = flag.Int64("seed", 1995, "random seed")
		macroName  = flag.String("macro", "all", "macro to analyse (comparator|ladder|biasgen|clockgen|decoder|all)")
		dftMode    = flag.String("dft", "both", "DfT setting: pre, post or both")
		maxClasses = flag.Int("maxclasses", 0, "cap analysed classes per macro (0 = all)")
		nsigma     = flag.Float64("nsigma", 3, "current-detection threshold multiple")
		quick      = flag.Bool("quick", false, "small, fast configuration")
		jsonOut    = flag.String("json", "", "also write a machine-readable summary to this file")
		workers    = flag.Int("workers", 1, "parallel campaign workers (1 = serial, 0 = GOMAXPROCS)")
		gsworkers  = flag.Int("gsworkers", 0, "good-space die workers (0 = automatic, 1 = serial; any setting is bit-identical)")
		trace      = flag.String("trace", "", "write a JSONL span trace of every methodology stage to this file")
	)
	flag.Parse()

	cfg := core.Config{
		Seed:               *seed,
		Defects:            *defects,
		MagnitudeDefects:   *mag,
		MCSamples:          *mc,
		NSigma:             *nsigma,
		FloorA:             2e-6,
		MaxClassesPerMacro: *maxClasses,
	}
	if *quick {
		cfg = core.QuickConfig()
		cfg.Seed = *seed
		// -quick replaces the whole configuration, but an explicit
		// good-space override must not be silently dropped: re-apply
		// the flags the user actually set.
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "mc":
				cfg.MCSamples = *mc
			case "nsigma":
				cfg.NSigma = *nsigma
			}
		})
	}
	if _, err := macros.NewVehicle(*bits); err != nil {
		log.Fatal(err)
	}
	cfg.Bits = *bits
	p := core.NewPipeline(cfg)
	p.GoodSpaceWorkers = *gsworkers

	// Fail fast on a bad -macro before compiling the good space or
	// sprinkling a single defect.
	if *macroName != "all" {
		if err := p.ValidateMacro(*macroName); err != nil {
			log.Fatal(err)
		}
	}

	var jw *obs.JSONLWriter
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		jw = obs.NewJSONLWriter(f)
		p.Obs = obs.New(jw)
	}

	var dfts []bool
	switch *dftMode {
	case "pre":
		dfts = []bool{false}
	case "post":
		dfts = []bool{true}
	case "both":
		dfts = []bool{false, true}
	default:
		log.Fatalf("bad -dft %q", *dftMode)
	}

	// A SIGINT or SIGTERM cancels the context; the cancellation
	// propagates into the analog kernel's Newton/transient loops, so the
	// run aborts in bounded time even mid-solve.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	for _, dft := range dfts {
		label := "before DfT"
		if dft {
			label = "after DfT"
		}
		fmt.Printf("==== Defect-oriented test path (%s) ====\n\n", label)
		if *macroName != "all" {
			run, err := p.RunMacro(ctx, *macroName, dft)
			if err != nil {
				fatal(ctx, err)
			}
			printMacro(run)
			continue
		}
		var run *core.Run
		var err error
		if *workers == 1 {
			run, err = p.Run(ctx, dft)
		} else {
			run, _, err = p.RunParallel(ctx, dft,
				campaign.Options{Workers: *workers})
		}
		if err != nil {
			fatal(ctx, err)
		}
		cmp := run.Macro("comparator")
		printMacro(cmp)
		report.PerMacro(os.Stdout, run)
		title := "Fig 4: global detectability"
		if dft {
			title = "Fig 5: global detectability after DfT"
		}
		report.Global(os.Stdout, title, run)
		if *jsonOut != "" {
			name := *jsonOut
			if dft {
				name += ".dft"
			}
			data, err := report.JSON(run)
			if err != nil {
				log.Fatal(err)
			}
			if err := os.WriteFile(name, data, 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s\n", name)
		}
	}
	fmt.Printf("total runtime: %s\n", time.Since(start).Round(time.Millisecond))
	if jw != nil {
		if err := jw.Err(); err != nil {
			log.Fatalf("trace write: %v", err)
		}
		fmt.Printf("wrote trace %s\n", *trace)
	}
}

// fatal reports a run error, distinguishing a user-driven cancellation
// (exit 130, the conventional SIGINT status) from a pipeline failure.
func fatal(ctx context.Context, err error) {
	if ctx.Err() != nil {
		log.Printf("cancelled: %v", err)
		os.Exit(130)
	}
	log.Fatal(err)
}

func printMacro(run *core.MacroRun) {
	report.Table1(os.Stdout, run)
	report.Table2(os.Stdout, run)
	report.Table3(os.Stdout, run)
	report.Fig3(os.Stdout, run, false)
	if len(run.NonCat) > 0 {
		report.Fig3(os.Stdout, run, true)
	}
}
