// Package repro is the public API of the reproduction of
// "Defect-Oriented Test Methodology for Complex Mixed-Signal Circuits"
// (Kuijstermans, Thijssen, Sachdev — DATE 1995).
//
// The package re-exports the methodology pipeline (internal/core), which
// runs, for each macro cell of an 8-bit full-flash ADC, the complete
// defect-oriented test path: Monte Carlo spot-defect simulation over the
// macro's layout, fault collapsing into classes, circuit-level fault
// model injection, analog (or gate-level) fault simulation, macro-level
// fault-signature classification, propagation to the circuit edge through
// a high-level ADC model, and detection against the multi-dimensional
// good-signature space — before and after two DfT measures.
//
// Quick start:
//
//	p := repro.NewPipeline(repro.QuickConfig())
//	run, err := p.Run(false) // pre-DfT
//	...
//	cov := repro.Fig4(run, false)
//	fmt.Printf("fault coverage: %.1f%%\n", cov.Total())
//
// # Cancellation and observability
//
// The underlying pipeline (internal/core) takes a context.Context on
// every entry point — Run, RunMacro, DiscoverClasses, AnalyzeClass,
// GoodSpace — and honours cancellation deep inside the analog kernel:
// the Newton loop, the OP fallback ladder and the transient stepper all
// poll ctx.Done, so a cancelled context aborts a fault simulation
// mid-solve in bounded time. This package's Pipeline keeps the original
// context-free Run/RunMacro signatures as thin wrappers over
// context.Background; callers that need cancellation or per-stage
// tracing (see internal/obs) use the embedded core.Pipeline directly:
//
//	p := repro.NewPipeline(repro.QuickConfig())
//	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
//	defer cancel()
//	run, err := p.Pipeline.Run(ctx, false)
package repro

import (
	"context"
	"io"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/testgen"
)

// Re-exported pipeline types; see internal/core for full documentation.
type (
	// Config parameterises a methodology run (sprinkle sizes, Monte
	// Carlo depth, detection thresholds).
	Config = core.Config
	// Run is a full methodology outcome for one DfT setting.
	Run = core.Run
	// MacroRun is the per-macro outcome.
	MacroRun = core.MacroRun
	// ClassAnalysis is the per-fault-class outcome.
	ClassAnalysis = core.ClassAnalysis
	// Detection records the mechanisms that catch a fault.
	Detection = core.Detection
	// GlobalCoverage is the Fig 4/5 coverage split.
	GlobalCoverage = core.GlobalCoverage
	// Fig3Summary holds the headline comparator detectability numbers.
	Fig3Summary = core.Fig3Summary
	// TestPlan is the production test-time model.
	TestPlan = testgen.Plan
)

// Pipeline binds the five-macro Flash ADC case study to a Config. It
// wraps core.Pipeline, preserving the historical context-free Run and
// RunMacro signatures; the embedded core.Pipeline exposes the full
// context-taking API (Run, RunMacro, AnalyzeClass, RunParallel, …).
type Pipeline struct {
	*core.Pipeline
}

// NewPipeline constructs the case-study pipeline.
func NewPipeline(cfg Config) *Pipeline { return &Pipeline{core.NewPipeline(cfg)} }

// Run executes the whole methodology for one DfT setting under a
// background context. Use the embedded core.Pipeline's Run for
// cancellation.
func (p *Pipeline) Run(dft bool) (*Run, error) {
	return p.Pipeline.Run(context.Background(), dft)
}

// RunMacro executes the methodology for a single macro under a
// background context. Use the embedded core.Pipeline's RunMacro for
// cancellation.
func (p *Pipeline) RunMacro(macroName string, dft bool) (*MacroRun, error) {
	return p.Pipeline.RunMacro(context.Background(), macroName, dft)
}

// DefaultConfig is the full-fidelity configuration (minutes of CPU).
func DefaultConfig() Config { return core.DefaultConfig() }

// QuickConfig is a small configuration suitable for smoke tests.
func QuickConfig() Config { return core.QuickConfig() }

// Fig4 compiles the global (area-scaled) detectability of a run.
func Fig4(run *Run, nonCat bool) GlobalCoverage { return core.Fig4(run, nonCat) }

// Fig3 summarises a macro's detectability combinations.
func Fig3(m *MacroRun, nonCat bool) Fig3Summary {
	return core.SummarizeFig3(core.Fig3(m, nonCat))
}

// MacroCoverage computes one macro's detection split.
func MacroCoverage(m *MacroRun, nonCat bool) GlobalCoverage {
	return core.MacroCoverage(m, nonCat)
}

// DefaultTestPlan returns the paper's production test plan (1 000-sample
// missing-code test plus six settled current measurements).
func DefaultTestPlan() TestPlan { return testgen.Default() }

// PrintMacro renders a macro run's Tables 1–3 and Fig 3 to w.
func PrintMacro(w io.Writer, m *MacroRun) {
	report.Table1(w, m)
	report.Table2(w, m)
	report.Table3(w, m)
	report.Fig3(w, m, false)
	if len(m.NonCat) > 0 {
		report.Fig3(w, m, true)
	}
}

// PrintGlobal renders a run's global coverage (Fig 4/5) to w.
func PrintGlobal(w io.Writer, title string, run *Run) {
	report.PerMacro(w, run)
	report.Global(w, title, run)
}
