// Package repro is the public API of the reproduction of
// "Defect-Oriented Test Methodology for Complex Mixed-Signal Circuits"
// (Kuijstermans, Thijssen, Sachdev — DATE 1995).
//
// The package re-exports the methodology pipeline (internal/core), which
// runs, for each macro cell of an 8-bit full-flash ADC, the complete
// defect-oriented test path: Monte Carlo spot-defect simulation over the
// macro's layout, fault collapsing into classes, circuit-level fault
// model injection, analog (or gate-level) fault simulation, macro-level
// fault-signature classification, propagation to the circuit edge through
// a high-level ADC model, and detection against the multi-dimensional
// good-signature space — before and after two DfT measures.
//
// Quick start:
//
//	p := repro.NewPipeline(repro.QuickConfig())
//	run, err := p.Run(false) // pre-DfT
//	...
//	cov := repro.Fig4(run, false)
//	fmt.Printf("fault coverage: %.1f%%\n", cov.Total())
package repro

import (
	"io"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/testgen"
)

// Re-exported pipeline types; see internal/core for full documentation.
type (
	// Config parameterises a methodology run (sprinkle sizes, Monte
	// Carlo depth, detection thresholds).
	Config = core.Config
	// Pipeline binds the five-macro Flash ADC case study to a Config.
	Pipeline = core.Pipeline
	// Run is a full methodology outcome for one DfT setting.
	Run = core.Run
	// MacroRun is the per-macro outcome.
	MacroRun = core.MacroRun
	// ClassAnalysis is the per-fault-class outcome.
	ClassAnalysis = core.ClassAnalysis
	// Detection records the mechanisms that catch a fault.
	Detection = core.Detection
	// GlobalCoverage is the Fig 4/5 coverage split.
	GlobalCoverage = core.GlobalCoverage
	// Fig3Summary holds the headline comparator detectability numbers.
	Fig3Summary = core.Fig3Summary
	// TestPlan is the production test-time model.
	TestPlan = testgen.Plan
)

// NewPipeline constructs the case-study pipeline.
func NewPipeline(cfg Config) *Pipeline { return core.NewPipeline(cfg) }

// DefaultConfig is the full-fidelity configuration (minutes of CPU).
func DefaultConfig() Config { return core.DefaultConfig() }

// QuickConfig is a small configuration suitable for smoke tests.
func QuickConfig() Config { return core.QuickConfig() }

// Fig4 compiles the global (area-scaled) detectability of a run.
func Fig4(run *Run, nonCat bool) GlobalCoverage { return core.Fig4(run, nonCat) }

// Fig3 summarises a macro's detectability combinations.
func Fig3(m *MacroRun, nonCat bool) Fig3Summary {
	return core.SummarizeFig3(core.Fig3(m, nonCat))
}

// MacroCoverage computes one macro's detection split.
func MacroCoverage(m *MacroRun, nonCat bool) GlobalCoverage {
	return core.MacroCoverage(m, nonCat)
}

// DefaultTestPlan returns the paper's production test plan (1 000-sample
// missing-code test plus six settled current measurements).
func DefaultTestPlan() TestPlan { return testgen.Default() }

// PrintMacro renders a macro run's Tables 1–3 and Fig 3 to w.
func PrintMacro(w io.Writer, m *MacroRun) {
	report.Table1(w, m)
	report.Table2(w, m)
	report.Table3(w, m)
	report.Fig3(w, m, false)
	if len(m.NonCat) > 0 {
		report.Fig3(w, m, true)
	}
}

// PrintGlobal renders a run's global coverage (Fig 4/5) to w.
func PrintGlobal(w io.Writer, title string, run *Run) {
	report.PerMacro(w, run)
	report.Global(w, title, run)
}
