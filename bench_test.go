// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation, plus ablation benches for the design choices
// DESIGN.md calls out. Run with
//
//	go test -bench=. -benchmem
//
// Each bench logs the regenerated rows (visible with -v); the expensive
// pipeline runs are shared across benches through lazy caches so the full
// suite completes in minutes on one core. Absolute numbers come from the
// synthetic substrate; the paper-comparable shapes are recorded in
// EXPERIMENTS.md.
package repro_test

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"

	"repro"
	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/defectsim"
	"repro/internal/faults"
	"repro/internal/kernelbench"
	"repro/internal/macros"
	"repro/internal/netlist"
	"repro/internal/process"
	"repro/internal/report"
	"repro/internal/spectest"
	"repro/internal/spice"
)

// benchCfg is the shared mid-fidelity configuration: large enough to be
// statistically meaningful, small enough for a single-core bench run.
func benchCfg() core.Config {
	cfg := core.DefaultConfig()
	cfg.Defects = 6000
	cfg.MagnitudeDefects = 30000
	cfg.MCSamples = 18
	cfg.MaxClassesPerMacro = 45
	return cfg
}

var (
	benchOnce sync.Once
	benchPre  *core.Run
	benchPost *core.Run
	benchErr  error
)

// benchRuns lazily executes the full pipeline once for both DfT settings.
func benchRuns(b *testing.B) (*core.Run, *core.Run) {
	b.Helper()
	benchOnce.Do(func() {
		p := core.NewPipeline(benchCfg())
		benchPre, benchErr = p.Run(context.Background(), false)
		if benchErr != nil {
			return
		}
		benchPost, benchErr = p.Run(context.Background(), true)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchPre, benchPost
}

// logTable renders with the report package into the bench log.
func logTable(b *testing.B, render func(buf *bytes.Buffer)) {
	var buf bytes.Buffer
	render(&buf)
	b.Log("\n" + buf.String())
}

// BenchmarkTable1ComparatorFaults regenerates Table 1: catastrophic
// faults and fault classes for the comparator by mechanism.
func BenchmarkTable1ComparatorFaults(b *testing.B) {
	pre, _ := benchRuns(b)
	cmp := pre.Macro("comparator")
	logTable(b, func(buf *bytes.Buffer) { report.Table1(buf, cmp) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.Table1(cmp)
	}
}

// BenchmarkTable2VoltageSignatures regenerates Table 2: the voltage
// fault-signature distribution of the comparator.
func BenchmarkTable2VoltageSignatures(b *testing.B) {
	pre, _ := benchRuns(b)
	cmp := pre.Macro("comparator")
	logTable(b, func(buf *bytes.Buffer) { report.Table2(buf, cmp) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = core.Table2(cmp)
	}
}

// BenchmarkTable3CurrentSignatures regenerates Table 3: the current
// fault-signature distribution of the comparator.
func BenchmarkTable3CurrentSignatures(b *testing.B) {
	pre, _ := benchRuns(b)
	cmp := pre.Macro("comparator")
	logTable(b, func(buf *bytes.Buffer) { report.Table3(buf, cmp) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = core.Table3(cmp)
	}
}

// BenchmarkFig3ComparatorDetectability regenerates Fig 3: the
// detection-mechanism grid for comparator faults.
func BenchmarkFig3ComparatorDetectability(b *testing.B) {
	pre, _ := benchRuns(b)
	cmp := pre.Macro("comparator")
	logTable(b, func(buf *bytes.Buffer) {
		report.Fig3(buf, cmp, false)
		report.Fig3(buf, cmp, true)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.SummarizeFig3(core.Fig3(cmp, false))
	}
}

// BenchmarkFig4GlobalDetectability regenerates Fig 4: the global
// (area-scaled) detectability before DfT.
func BenchmarkFig4GlobalDetectability(b *testing.B) {
	pre, _ := benchRuns(b)
	logTable(b, func(buf *bytes.Buffer) {
		report.PerMacro(buf, pre)
		report.Global(buf, "Fig 4: global detectability", pre)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.Fig4(pre, false)
		_ = core.Fig4(pre, true)
	}
}

// BenchmarkFig5DfTDetectability regenerates Fig 5: global detectability
// after the two DfT measures.
func BenchmarkFig5DfTDetectability(b *testing.B) {
	pre, post := benchRuns(b)
	logTable(b, func(buf *bytes.Buffer) {
		report.PerMacro(buf, post)
		report.Global(buf, "Fig 5: global detectability after DfT", post)
		fmt.Fprintf(buf, "coverage before DfT: %.1f%%  after DfT: %.1f%%\n",
			core.Fig4(pre, false).Total(), core.Fig4(post, false).Total())
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.Fig4(post, false)
	}
}

// BenchmarkTestTime regenerates the paper's test-time estimate: the
// 1 000-sample missing-code test plus six settled current measurements.
func BenchmarkTestTime(b *testing.B) {
	plan := repro.DefaultTestPlan()
	b.Logf("test plan: %s", plan)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = plan.Total()
	}
}

// BenchmarkMacroCurrentDetectability regenerates the §3.3 per-macro
// current-detectability quotes (clock generator 93.8 %, ladder 99.8 %).
func BenchmarkMacroCurrentDetectability(b *testing.B) {
	pre, _ := benchRuns(b)
	logTable(b, func(buf *bytes.Buffer) {
		for _, m := range pre.Macros {
			fmt.Fprintf(buf, "%-12s current-detectable %5.1f%%\n",
				m.Name, core.CurrentDetectability(m, false))
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range pre.Macros {
			_ = core.CurrentDetectability(m, false)
		}
	}
}

// BenchmarkAblationDefectCount measures class discovery saturation: how
// the number of distinct fault classes grows with the sprinkle size (the
// reason the paper used 25 000 defects for discovery and 10 000 000 for
// magnitudes).
func BenchmarkAblationDefectCount(b *testing.B) {
	var buf bytes.Buffer
	p := core.NewPipeline(core.QuickConfig())
	for _, n := range []int{1000, 4000, 16000} {
		cfg := core.QuickConfig()
		cfg.Defects = n
		cfg.MaxClassesPerMacro = 1 // discovery stats only
		pp := core.NewPipeline(cfg)
		run, err := pp.RunMacro(context.Background(), "comparator", false)
		if err != nil {
			b.Fatal(err)
		}
		fmt.Fprintf(&buf, "%6d defects -> %4d faults -> %3d classes\n",
			run.DiscoveryDefects, run.DiscoveryFaults, len(run.Classes))
	}
	b.Log("\n" + buf.String())
	_ = p
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := core.QuickConfig()
		cfg.Defects = 1000
		cfg.MaxClassesPerMacro = 1
		pp := core.NewPipeline(cfg)
		if _, err := pp.RunMacro(context.Background(), "ladder", false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSigmaThreshold re-evaluates detection at 2σ/3σ/4σ
// bounds: tighter bounds catch more faults but risk yield loss — the
// methodology's key tuning knob.
func BenchmarkAblationSigmaThreshold(b *testing.B) {
	pre, _ := benchRuns(b)
	var buf bytes.Buffer
	good := pre.Good
	for _, ns := range []float64{2, 3, 4} {
		good.NSigma = ns
		detected := 0.0
		total := 0.0
		for _, m := range pre.Macros {
			for _, a := range m.Cat {
				total += float64(a.Class.Count)
				ivdd, iddq, iin := good.Detect(a.Chip)
				if a.Det.Missing || ivdd || iddq || iin {
					detected += float64(a.Class.Count)
				}
			}
		}
		fmt.Fprintf(&buf, "nσ=%.0f: covered %.1f%%\n", ns, 100*detected/total)
	}
	good.NSigma = 3
	b.Log("\n" + buf.String())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range pre.Macros {
			for _, a := range m.Cat {
				_, _, _ = good.Detect(a.Chip)
			}
		}
	}
}

// BenchmarkAblationNoIDDQ recomputes global coverage with the IDDQ
// mechanism removed — the paper's observation that many mixed-signal
// faults are only visible in the digital part's quiescent current.
func BenchmarkAblationNoIDDQ(b *testing.B) {
	pre, _ := benchRuns(b)
	var buf bytes.Buffer
	with := core.Fig4(pre, false).Total()
	without := coverageWithout(pre, "iddq")
	noIin := coverageWithout(pre, "iin")
	fmt.Fprintf(&buf, "full test: %.1f%%  without IDDQ: %.1f%%  without Iinput: %.1f%%\n",
		with, without, noIin)
	b.Log("\n" + buf.String())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = coverageWithout(pre, "iddq")
	}
}

// coverageWithout recomputes global coverage with one current mechanism
// disabled.
func coverageWithout(run *core.Run, drop string) float64 {
	var det, total float64
	for _, m := range run.Macros {
		w := m.Weight()
		mag := 0.0
		for _, a := range m.Cat {
			mag += float64(a.Class.Count)
		}
		if mag == 0 {
			continue
		}
		for _, a := range m.Cat {
			d := a.Det
			switch drop {
			case "iddq":
				d.IDDQ = false
			case "iin":
				d.Iin = false
			case "ivdd":
				d.IVdd = false
			}
			total += w * float64(a.Class.Count) / mag
			if d.Any() {
				det += w * float64(a.Class.Count) / mag
			}
		}
	}
	if total == 0 {
		return 0
	}
	return 100 * det / total
}

// BenchmarkAblationSpice measures the raw analog fault-simulation cost:
// one full two-cycle comparator transient per iteration.
func BenchmarkAblationSpice(b *testing.B) {
	m := macros.NewComparator(macros.DefaultVehicle())
	opt := macros.RespondOpts{Var: macros.Nominal(), CurrentsOnly: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Respond(context.Background(), nil, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSolver measures the raw DC solve cost on a CMOS
// circuit (the inner loop of every analysis).
func BenchmarkAblationSolver(b *testing.B) {
	bld := netlist.NewBuilder()
	bld.Vsrc("vdd", "vdd", "0", netlist.DC(5))
	in := "vdd"
	for i := 0; i < 20; i++ {
		out := fmt.Sprintf("n%d", i)
		bld.PMOS(fmt.Sprintf("p%d", i), out, in, "vdd", "vdd", 8, 1)
		bld.NMOS(fmt.Sprintf("n%dm", i), out, in, "0", 4, 1)
		in = out
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spice.New(bld.C, spice.DefaultOptions()).OP(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBaselineSpecTest compares the defect-oriented simple test
// against the specification-oriented baseline — the paper's §1/§4 claim:
// higher defect coverage at lower test cost.
func BenchmarkBaselineSpecTest(b *testing.B) {
	pre, _ := benchRuns(b)
	simple := repro.DefaultTestPlan().Total().Seconds()
	spec := spectest.DefaultPlan().Total().Seconds()
	cmp := core.CompareBaseline(pre, simple, spec)
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "defect-oriented simple test: %5.1f%% coverage in %7.0f µs\n",
		cmp.SimpleCoverage, cmp.SimpleTestSeconds*1e6)
	fmt.Fprintf(&buf, "specification test baseline: %5.1f%% coverage in %7.0f µs\n",
		cmp.SpecCoverage, cmp.SpecTestSeconds*1e6)
	b.Log("\n" + buf.String())
	if cmp.SpecCoverage > cmp.SimpleCoverage {
		b.Log("NOTE: baseline beat the simple test on this run (shape deviation)")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.SpecCoverage(pre, false, spectest.DefaultLimits())
	}
}

// BenchmarkAblationBridgeResistance sweeps the bridge-resistance of a
// hard-to-detect fault (the adjacent-tap ladder short) to locate the
// detection threshold — the boundary between the catastrophic and
// near-miss regimes the paper's non-catastrophic model probes.
func BenchmarkAblationBridgeResistance(b *testing.B) {
	cfg := core.QuickConfig()
	cfg.MCSamples = 10
	p := core.NewPipeline(cfg)
	var buf bytes.Buffer
	for _, r := range []float64{0.2, 2, 25, 250, 2500} {
		c := faults.Class{
			Fault: faults.Fault{Kind: faults.Short, Nets: []string{"t096", "t128"}, Res: r},
			Count: 1,
		}
		a, err := p.AnalyzeClass(context.Background(), "ladder", c, false, false)
		if err != nil {
			b.Fatal(err)
		}
		fmt.Fprintf(&buf, "bridge %7.1f Ω: missing-code=%-5v Iinput=%-5v\n",
			r, a.Det.Missing, a.Det.Iin)
	}
	b.Log("\n" + buf.String())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := faults.Class{
			Fault: faults.Fault{Kind: faults.Short, Nets: []string{"t096", "t128"}, Res: 25},
			Count: 1,
		}
		if _, err := p.AnalyzeClass(context.Background(), "ladder", c, false, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkYieldAndDefectLevel connects the coverage numbers to shipped
// quality: the Poisson yield model (VLASIC's original purpose) and the
// Williams–Brown defect level at the paper's pre/post-DfT coverages.
func BenchmarkYieldAndDefectLevel(b *testing.B) {
	proc := process.Default()
	y := defectsim.NewYieldModel(120) // defects/cm²
	for _, m := range []macros.Macro{
		macros.NewComparator(macros.DefaultVehicle()), macros.NewLadder(macros.DefaultVehicle()), macros.NewBiasgen(macros.DefaultVehicle()),
		macros.NewClockgen(macros.DefaultVehicle()), macros.NewDecoder(macros.DefaultVehicle()),
	} {
		y.AddMacro(context.Background(), m.Layout(false), proc, m.Count(), 4000, 1995)
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "critical area %.3g µm², λ=%.3g, yield %.1f%%\n",
		y.CriticalArea(), y.Lambda(), 100*y.Yield())
	fmt.Fprintf(&buf, "defect level at 93.3%% coverage (pre-DfT):  %6.0f DPM\n", y.DefectLevel(0.933))
	fmt.Fprintf(&buf, "defect level at 99.1%% coverage (post-DfT): %6.0f DPM\n", y.DefectLevel(0.991))
	b.Log("\n" + buf.String())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = y.DefectLevel(0.933)
	}
}

// BenchmarkExtensionACTest exercises the AC-measurement extension: the
// comparator's amplify-path gain/bandwidth, which exposes clock-value
// faults the simple DC tests miss.
func BenchmarkExtensionACTest(b *testing.B) {
	m := macros.NewComparator(macros.DefaultVehicle())
	opt := macros.RespondOpts{Var: macros.Nominal()}
	nom, err := m.AmplifierAC(context.Background(), nil, opt)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "nominal amplifier: %.1f dB, BW %.3g Hz\n", nom.GainDB, nom.Bandwidth3dB)
	for _, r := range []float64{2000, 1200, 800} {
		f := &faults.Fault{Kind: faults.ThickOxPinhole, Nets: []string{"clk1", "vss"}, Res: r}
		res, err := m.AmplifierAC(context.Background(), f, opt)
		if err != nil {
			b.Fatal(err)
		}
		fmt.Fprintf(&buf, "clk1 load %5.0f Ω: %.1f dB, BW %.3g Hz, AC-detected=%v\n",
			r, res.GainDB, res.Bandwidth3dB, macros.ACDeviates(nom, res, 1, 0.3))
	}
	b.Log("\n" + buf.String())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.AmplifierAC(context.Background(), nil, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernel runs the analog-kernel suite of internal/kernelbench:
// the solver, operating-point, transient and fault-class-analysis hot
// paths, with allocation reporting. cmd/benchkernel executes the same
// cases and archives them as BENCH_kernel.json (see EXPERIMENTS.md).
func BenchmarkKernel(b *testing.B) {
	for _, c := range kernelbench.Cases() {
		b.Run(c.Name, c.Bench)
	}
}

// campaignBenchCfg is the QuickConfig-scale workload the campaign
// speedup is measured on: every macro, three classes each, catastrophic
// path only — the per-class units dominate, which is the parallel axis.
func campaignBenchCfg() core.Config {
	cfg := core.QuickConfig()
	cfg.Defects = 1200
	cfg.MCSamples = 5
	cfg.MaxClassesPerMacro = 3
	cfg.SkipNonCat = true
	return cfg
}

// BenchmarkCampaignSerial is the baseline: the plain serial pipeline on
// the campaign workload.
func BenchmarkCampaignSerial(b *testing.B) {
	cfg := campaignBenchCfg()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.NewPipeline(cfg).Run(context.Background(), false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaignParallel runs the same workload through the
// work-stealing campaign engine at 4 workers. The speedup over
// BenchmarkCampaignSerial scales with available cores (the container the
// numbers in EXPERIMENTS.md come from has GOMAXPROCS=1, so they show
// engine overhead, not speedup; see EXPERIMENTS.md).
func BenchmarkCampaignParallel(b *testing.B) {
	cfg := campaignBenchCfg()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, out, err := core.RunParallel(context.Background(), cfg, false,
			campaign.Options{Workers: 4})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("units=%d utilization=%.2f steals=%d",
				out.Stats.UnitsTotal, out.Stats.Utilization, out.Stats.Steals)
		}
	}
}
